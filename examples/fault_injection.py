"""DUFP on degraded telemetry: fault injection end to end.

Runs CG twice at 10 % tolerated slowdown — once clean, once under a
fault plan with 1 % MSR read failures and 20 % RAPL cap-latch failures
— and prints the injected events alongside the run metrics.  The
controller is expected to shrug the faults off: the runtime holds the
last good sample through short outages and safe-resets after extended
ones, so the faulted run finishes within a few percent of the clean
one.

Usage::

    python examples/fault_injection.py [APP] [seed]
"""

import sys

from repro import ControllerConfig, DUFP, build_application, run_application
from repro.sim.faults import parse_fault_plan

PLAN_SPEC = "msr_fail=0.01,cap_latch_fail=0.2,latch_delay=0.2,power_dropout=0.01"


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "CG"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2022

    cfg = ControllerConfig(tolerated_slowdown=0.10)
    plan = parse_fault_plan(PLAN_SPEC)

    def run(faults):
        return run_application(
            build_application(app_name, scale=0.5),
            lambda: DUFP(cfg),
            controller_cfg=cfg,
            seed=seed,
            faults=faults,
        )

    print(f"Running {app_name} under DUFP, clean vs faulted ({PLAN_SPEC})…\n")
    clean = run(None)
    faulty = run(plan)

    print(f"  clean  : {clean.execution_time_s:6.2f} s  "
          f"{clean.avg_package_power_w:5.1f} W avg")
    print(f"  faulted: {faulty.execution_time_s:6.2f} s  "
          f"{faulty.avg_package_power_w:5.1f} W avg  "
          f"({len(faulty.fault_events)} fault events)")
    overhead = (faulty.execution_time_s / clean.execution_time_s - 1.0) * 100.0
    print(f"  overhead from faults: {overhead:+.2f} %\n")

    print("Injected fault events:")
    for e in faulty.fault_events:
        where = "node" if e.socket_id < 0 else f"socket {e.socket_id}"
        detail = f"  {e.detail}" if e.detail else ""
        print(f"  {e.time_s:7.3f} s  {where:9s}  {e.channel}{detail}")

    print(
        "\nA dropped cap-latch write is silently lost hardware-side; the\n"
        "controller detects consumption above the cap on a later tick and\n"
        "resets it — the same rule the paper applies to slow latching."
    )


if __name__ == "__main__":
    main()
