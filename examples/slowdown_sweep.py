"""Sweep tolerated slowdowns across applications (Figure 3 in miniature).

Runs DUF and DUFP at the paper's four tolerances on a subset of the
applications (3 runs per configuration instead of 10, for speed) and
prints the slowdown / power / energy table.

Usage::

    python examples/slowdown_sweep.py [APP[,APP...]] [runs]
"""

import sys

from repro.experiments.sweep import run_sweep


def main() -> None:
    apps = sys.argv[1].split(",") if len(sys.argv) > 1 else ["CG", "EP", "HPL"]
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    print(f"Sweeping {', '.join(apps)} at 0/5/10/20 % ({runs} runs each)…\n")
    sweep = run_sweep(apps=apps, runs=runs)

    header = (
        f"{'app':8s} {'tol%':>5s} | {'ctrl':5s} {'slowdown%':>10s} "
        f"{'power sav%':>11s} {'energy sav%':>12s}"
    )
    print(header)
    print("-" * len(header))
    for app in sweep.apps:
        for tol in sweep.tolerances_pct:
            for ctrl in ("duf", "dufp"):
                c = sweep.get(app, ctrl, tol)
                print(
                    f"{app:8s} {tol:5.0f} | {ctrl:5s} "
                    f"{c.slowdown_pct.mean:10.2f} "
                    f"{c.package_savings_pct.mean:11.2f} "
                    f"{c.energy_savings_pct.mean:12.2f}"
                )
    within, total = sweep.respected_count("dufp")
    print(f"\nDUFP respected the tolerance in {within}/{total} configurations")


if __name__ == "__main__":
    main()
