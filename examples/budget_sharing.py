"""Node-level power budget sharing across heterogeneous sockets.

The paper's related work places budget-distribution runtimes (GEOPM,
DAPS) as complementary to DUFP, and its future work asks about sharing
one budget between consumers with different needs.  This example runs
a memory-bound application (CG) and a compute-bound one (EP) on two
sockets of one node under a shared budget, comparing:

* a naive equal split (each socket statically capped at budget/2);
* the tolerance-aware coordinator: a socket meeting its tolerated
  slowdown under its cap offers watts back, a throttled socket bids
  for more.

Usage::

    python examples/budget_sharing.py [node_budget_watts]
"""

import sys

from repro import ControllerConfig, DefaultController, StaticPowerCap, build_application, run_application
from repro.core.budget import NodeBudgetCoordinator


def main() -> None:
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 190.0
    cfg = ControllerConfig(tolerated_slowdown=0.10)
    apps = [build_application("CG"), build_application("EP")]

    print(f"Node: 2 sockets, shared budget {budget:.0f} W "
          f"(default would be 2 x 125 W)\n")

    base = run_application(apps, DefaultController, controller_cfg=cfg, seed=9)

    def report(label, result):
        rows = []
        for app, sock in zip(apps, result.sockets):
            slow = 100.0 * (
                sock.finish_time_s / base.sockets[sock.socket_id].finish_time_s - 1
            )
            rows.append(f"{app.name}: {sock.finish_time_s:5.1f}s ({slow:+5.1f}%)")
        print(f"  {label:18s} {'   '.join(rows)}")

    report("uncapped", base)

    equal = run_application(
        apps, lambda: StaticPowerCap(budget / 2), controller_cfg=cfg, seed=9
    )
    report(f"equal {budget/2:.0f}W each", equal)

    coord = NodeBudgetCoordinator(
        total_budget_w=budget, cfg=cfg, per_socket_floor_w=80.0
    )
    coordinated = run_application(
        apps, coord.socket_controller, controller_cfg=cfg, seed=9
    )
    report("coordinated", coordinated)

    final = coord.history[-1][1]
    print(
        f"\nFinal allocation: CG {final[0]:.0f} W, EP {final[1]:.0f} W — the"
        "\nmemory-bound socket donates headroom; the compute-bound socket,"
        "\nwhich pays for every watt it loses, is protected."
    )


if __name__ == "__main__":
    main()
