"""Control a custom application, and poke the hardware interfaces.

Shows the extension points a downstream user needs:

* defining a new application from phases (a synthetic "stencil solver"
  alternating halo exchanges with vectorised sweeps);
* running it under DUFP and reading the controller's per-tick log;
* reading the same run's state through the *interfaces* layer — the
  powercap sysfs tree and the MSR register file — exactly where a real
  tool would look.

Usage::

    python examples/custom_application.py
"""

from repro import ControllerConfig, DUFP, Application, run_application
from repro.hardware.msr import MSR
from repro.interfaces.msr_tools import MSRTools
from repro.interfaces.powercap import PowercapTree
from repro.sim.machine import yeti_machine
from repro.workloads.phase import phase_from_duration as phase


def build_stencil_solver() -> Application:
    """A made-up app: vectorised sweeps + memory-bound halo exchanges."""
    sweep = phase(
        "stencil.sweep",
        0.6,
        oi=2.8,
        fpc=12.0,
        uncore_sensitivity=0.25,  # sweeps stream through the LLC
    )
    halo = phase("stencil.halo", 0.3, oi=0.05, fpc=0.8)
    return Application.from_pattern(
        "STENCIL",
        loop=[sweep, halo],
        iterations=15,
        structure="15 x (vector sweep + halo exchange)",
    )


def main() -> None:
    app = build_stencil_solver()
    cfg = ControllerConfig(tolerated_slowdown=0.10)

    # Keep handles on the machine and controller to inspect them after.
    machine = yeti_machine(socket_count=1)
    controllers = []

    def factory():
        c = DUFP(cfg)
        controllers.append(c)
        return c

    result = run_application(
        app, factory, controller_cfg=cfg, machine=machine, seed=7
    )

    print(f"{app.name}: {result.execution_time_s:.2f} s, "
          f"{result.avg_package_power_w:.1f} W package, "
          f"{result.total_energy_j / 1e3:.2f} kJ total\n")

    # --- the controller's own view -------------------------------------
    ctrl = controllers[0]
    resets = sum(1 for t in ctrl.ticks if t.phase_change)
    decreases = sum(1 for t in ctrl.ticks if t.cap_action == "decrease")
    print(f"controller ticks: {len(ctrl.ticks)} "
          f"(phase changes: {resets}, cap decreases: {decreases})")
    caps = [t.cap_w for t in ctrl.ticks]
    print(f"cap range      : {min(caps):.0f} W .. {max(caps):.0f} W\n")

    # --- the sysfs / MSR view (what a real tool sees) -------------------
    proc = machine.processor(0)
    tree = PowercapTree([proc.rapl])
    print("powercap sysfs after the run:")
    for attr in (
        "constraint_0_power_limit_uw",
        "constraint_1_power_limit_uw",
        "energy_uj",
    ):
        print(f"  intel-rapl:0/{attr} = {tree.read(f'intel-rapl:0/{attr}')}")

    msr = MSRTools(proc.msrs)
    ratio = msr.rdmsr(MSR.MSR_UNCORE_RATIO_LIMIT, field=(6, 0))
    print(f"\nMSR 0x620 max uncore ratio = {ratio} (= {ratio / 10:.1f} GHz)")
    print(f"MSR 0x611 package energy counter = {msr.rdmsr(MSR.MSR_PKG_ENERGY_STATUS)}")


if __name__ == "__main__":
    main()
