"""Quickstart: run CG under DUFP and compare with the default run.

Usage::

    python examples/quickstart.py [tolerated_slowdown_pct]

This is the smallest end-to-end use of the library: build one of the
paper's applications, run it on the simulated Skylake-SP socket under
the default configuration and under DUFP, and report the slowdown,
power savings and energy impact — the three quantities Figure 3 plots.
"""

import sys

from repro import (
    ControllerConfig,
    DefaultController,
    DUFP,
    build_application,
    run_application,
)


def main() -> None:
    tolerance_pct = float(sys.argv[1]) if len(sys.argv) > 1 else 10.0
    cfg = ControllerConfig(tolerated_slowdown=tolerance_pct / 100.0)
    app = build_application("CG")

    print(f"Application : {app.name} ({len(app.phases)} phases)")
    print(f"Structure   : {app.structure}")
    print(f"Tolerance   : {tolerance_pct:.0f} % tolerated slowdown\n")

    default = run_application(app, DefaultController, seed=1)
    dufp = run_application(app, lambda: DUFP(cfg), controller_cfg=cfg, seed=1)

    slowdown = 100.0 * (dufp.execution_time_s / default.execution_time_s - 1.0)
    power_savings = 100.0 * (
        1.0 - dufp.avg_package_power_w / default.avg_package_power_w
    )
    energy_savings = 100.0 * (1.0 - dufp.total_energy_j / default.total_energy_j)

    print(f"{'':>12s}  {'default':>10s}  {'dufp':>10s}")
    print(
        f"{'time (s)':>12s}  {default.execution_time_s:10.2f}  "
        f"{dufp.execution_time_s:10.2f}"
    )
    print(
        f"{'power (W)':>12s}  {default.avg_package_power_w:10.1f}  "
        f"{dufp.avg_package_power_w:10.1f}"
    )
    print(
        f"{'energy (kJ)':>12s}  {default.total_energy_j / 1e3:10.2f}  "
        f"{dufp.total_energy_j / 1e3:10.2f}"
    )
    print()
    print(f"slowdown      : {slowdown:+.2f} % (tolerated: {tolerance_pct:.0f} %)")
    print(f"power savings : {power_savings:+.2f} %")
    print(f"energy savings: {energy_savings:+.2f} %")


if __name__ == "__main__":
    main()
