"""The paper's motivating experiment (Section II-A, Figure 1).

Reproduces the three observations that motivate dynamic power capping:

1. a whole-run static cap on CG saves a lot of power but costs real
   execution time (Fig. 1a);
2. the same cap applied only to CG's initial memory-access phase cuts
   that phase's power almost as much (Fig. 1b) …
3. … at **zero** cost to the total execution time (Fig. 1c).

Usage::

    python examples/motivating_example.py
"""

from repro import (
    DefaultController,
    StaticPowerCap,
    TimeWindowCap,
    build_application,
    run_application,
)

BUDGET_W = 125.0


def report(label, result, default, window=None):
    time_pct = 100.0 * result.execution_time_s / default.execution_time_s
    if window is None:
        power = result.avg_package_power_w
    else:
        pkg_j, _ = result.socket(0).window_energy_j(*window)
        power = pkg_j / (window[1] - window[0])
    print(
        f"  {label:14s} time = {time_pct:6.2f} % of default   "
        f"power = {100.0 * power / BUDGET_W:6.2f} % of the {BUDGET_W:.0f} W budget"
    )


def main() -> None:
    app = build_application("CG")
    default = run_application(app, DefaultController, seed=3)

    print("Fig. 1a — whole-run static caps on CG")
    report("default", default, default)
    for cap in (110.0, 100.0):
        capped = run_application(app, lambda c=cap: StaticPowerCap(c), seed=3)
        report(f"cap {cap:.0f} W", capped, default)

    # Find the initial memory phase's window from the default run.
    span = default.socket(0).phase_span("cg.setup")
    window = (span.start_s, span.end_s)
    print(
        f"\nFig. 1b/1c — the caps applied only to the first phase "
        f"({span.duration_s:.1f} s, {100 * span.duration_s / default.execution_time_s:.0f} % of the run)"
    )
    report("default", default, default, window=window)
    for cap in (110.0, 100.0):
        capped = run_application(
            app,
            lambda c=cap: TimeWindowCap(c, 0.0, span.end_s * 1.02),
            seed=3,
        )
        report(f"cap {cap:.0f} W", capped, default, window=window)

    print(
        "\nCapping the memory phase cuts its power at no cost to the total\n"
        "execution time — the observation DUFP automates."
    )


if __name__ == "__main__":
    main()
