"""CPU + GPU under one power budget — the paper's closing question.

Section VII: "With a specified shared power budget to distribute over a
CPU and a GPU, can we benefit from dynamic power capping to reduce the
budget of the CPU when it does not need it and increase the GPU power
budget?"

This example runs memory-bound CG on the CPU socket next to a queue of
compute-heavy GPU kernels, under one budget, and compares a naive
50/50 split against the tolerance-aware coordinator.

Usage::

    python examples/cpu_gpu_budget.py [budget_watts]
"""

import sys

from repro import ControllerConfig, build_application
from repro.hardware.gpu import GPUKernel
from repro.sim.hetero import HeteroEngine


def main() -> None:
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 300.0
    app = build_application("CG", scale=0.5)
    kernels = [
        GPUKernel(f"dgemm[{i}]", flops=6e12, bytes=6e12 / 8.0) for i in range(8)
    ]
    cfg = ControllerConfig(tolerated_slowdown=0.10)

    cpu_nominal = app.nominal_duration()
    gpu_nominal = 8.0  # eight ~1 s kernels at full clocks

    print(
        f"Shared budget {budget:.0f} W for one CPU socket (CG, memory-bound)\n"
        f"and one GPU (DGEMM kernels, compute-hungry).\n"
    )

    for coordinated in (False, True):
        result = HeteroEngine(
            application=app,
            kernels=kernels,
            total_budget_w=budget,
            cfg=cfg,
            coordinated=coordinated,
        ).run()
        label = "coordinated" if coordinated else "static 50/50"
        _, cpu_w, gpu_w = result.allocations[-1]
        print(
            f"  {label:13s} CPU {result.cpu_finish_s:5.1f}s "
            f"({100 * (result.cpu_finish_s / cpu_nominal - 1):+5.1f}%)   "
            f"GPU {result.gpu_finish_s:5.1f}s "
            f"({100 * (result.gpu_finish_s / gpu_nominal - 1):+5.1f}%)   "
            f"split {cpu_w:.0f}/{gpu_w:.0f} W"
        )

    print(
        "\nThe coordinator drains watts from the cap-tolerant CPU into the\n"
        "GPU's power limit until both sit near the tolerated slowdown —\n"
        "dynamic power capping as the paper's future work imagines it."
    )


if __name__ == "__main__":
    main()
