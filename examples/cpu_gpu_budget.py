"""CPU + GPU under one power budget — the paper's closing question.

Section VII: "With a specified shared power budget to distribute over a
CPU and a GPU, can we benefit from dynamic power capping to reduce the
budget of the CPU when it does not need it and increase the GPU power
budget?"

This example runs memory-bound CG on the CPU socket next to a node of
compute-heavy GPU kernels, under one budget, and compares a naive
50/50 split against the tolerance-aware coordinator — through the same
``RunSpec`` machinery that drives sweeps, shards and the result cache.

Usage::

    python examples/cpu_gpu_budget.py [budget_watts]
"""

import sys

from repro import ControllerConfig, build_application
from repro.config import NoiseConfig
from repro.core.registry import make_spec, split_policy
from repro.experiments.executor import RunSpec, cell_seed, execute_spec, spec_key
from repro.hardware.gpu import GPUNodeConfig
from repro.sim.hetero import HeteroEngine


def main() -> None:
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 300.0
    app = build_application("CG", scale=0.5)
    node = GPUNodeConfig(kernel_count=8, kernel_flops=6e12, kernel_bytes=6e12 / 8.0)
    cfg = ControllerConfig(tolerated_slowdown=0.10)

    print(
        f"Shared budget {budget:.0f} W for one CPU socket (CG, memory-bound)\n"
        f"and one GPU (DGEMM-like kernels, compute-hungry).\n"
    )

    # Engine-level view: one deterministic co-sim per policy, with the
    # split policy resolved through the registry like any controller.
    policies = {
        "static 50/50": make_spec("hetero-static", budget_w=budget),
        "coordinated": make_spec("hetero-coord", budget_w=budget),
    }
    for label, policy in policies.items():
        result = HeteroEngine(
            application=app,
            node=node,
            policy=split_policy(policy, cfg),
            cfg=cfg,
        ).run()
        _, cpu_w, gpu_w = result.allocations[-1]
        print(
            f"  {label:13s} CPU {result.cpu_finish_s:5.1f}s   "
            f"GPU {result.gpu_finish_s:5.1f}s   "
            f"split {cpu_w:.0f}/{gpu_w:.0f} W   "
            f"transfers {result.transfer_s:.1f}s"
        )

    # Spec-level view: the same cell as a RunSpec — content-addressed,
    # cacheable, shardable, and runnable inside `repro sweep --gpus 1`.
    spec = RunSpec(
        app_name="CG",
        controller=policies["coordinated"],
        controller_cfg=cfg,
        runs=3,
        base_seed=cell_seed("CG", policies["coordinated"].label),
        app_scale=0.5,
        noise=NoiseConfig(),
        gpu=node,
    )
    proto = execute_spec(spec)
    print(
        f"\nAs a sweep cell [{spec_key(spec)[:12]}]: "
        f"{spec.runs} runs, mean makespan {proto.mean_time_s:.1f} s, "
        f"CPU {proto.mean_package_power_w:.0f} W / GPU {proto.mean_dram_power_w:.0f} W"
    )

    print(
        "\nThe coordinator drains watts from the cap-tolerant CPU into the\n"
        "GPU's power limit until both sit near the tolerated slowdown —\n"
        "dynamic power capping as the paper's future work imagines it."
    )


if __name__ == "__main__":
    main()
