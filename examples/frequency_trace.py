"""Core-frequency traces under DUF vs DUFP (Figure 5).

Runs CG at 10 % tolerated slowdown under both controllers and renders
the core-0 frequency over time as an ASCII strip chart, plus the
averages the paper quotes (≈ 2.8 GHz for DUF, ≈ 2.5 GHz for DUFP).

Usage::

    python examples/frequency_trace.py [APP] [tolerance_pct]
"""

import sys

from repro.experiments.fig5 import fig5


def strip_chart(times, values, lo=1.0, hi=2.8, width=100, label=""):
    """One-line-per-band ASCII rendering of a frequency series."""
    if len(values) > width:
        stride = -(-len(values) // width)  # ceil division
        times = times[::stride]
        values = values[::stride]
    bands = [2.8, 2.6, 2.4, 2.2, 2.0, 1.8, 1.6, 1.4, 1.2, 1.0]
    print(f"  {label}")
    for band in bands:
        row = "".join(
            "█" if v >= band - 0.1 else " " for v in values
        )
        print(f"  {band:3.1f} GHz |{row}|")
    print(f"          0s{' ' * (len(values) - 6)}{times[-1]:5.1f}s\n")


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "CG"
    tol = float(sys.argv[2]) if len(sys.argv) > 2 else 10.0

    print(f"Tracing {app} at {tol:.0f} % tolerated slowdown…\n")
    result = fig5(tolerance_pct=tol, app_name=app)

    strip_chart(*result.duf_series, label=f"DUF  (avg {result.duf_avg_ghz:.2f} GHz)")
    strip_chart(*result.dufp_series, label=f"DUFP (avg {result.dufp_avg_ghz:.2f} GHz)")

    print(
        "With uncore scaling alone the cores sit at the all-core turbo;\n"
        "dynamic capping converts the tolerated slowdown into a lower\n"
        "average core frequency — and the power savings of Fig. 3b."
    )


if __name__ == "__main__":
    main()
