"""Record a counter trace and replay it as a synthetic application.

Workflow a downstream user of the library would follow with *real*
PAPI logs: capture per-interval (FLOPS/s, bytes/s) samples once, turn
them into a replayable application, then study any controller
configuration against the replay without the original workload.

Usage::

    python examples/trace_replay.py [APP]
"""

import sys

from repro import (
    ControllerConfig,
    DefaultController,
    DUFP,
    build_application,
    run_application,
)
from repro.workloads.traces import application_from_trace, measurements_from_run


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "CG"
    original = build_application(app_name)

    # 1. Record: one instrumented run at the controller cadence.
    recorded = run_application(original, DefaultController, seed=21)
    samples = measurements_from_run(recorded, interval_s=0.2)
    print(
        f"recorded {len(samples)} samples over {recorded.execution_time_s:.1f} s "
        f"of {app_name}"
    )

    # 2. Replay: rebuild an application from the samples alone.
    replay = application_from_trace(samples, name=f"{app_name}-replay")
    print(
        f"replay: {len(replay.phases)} merged phases, nominal "
        f"{replay.nominal_duration():.1f} s\n"
    )

    # 3. Study the replay under DUFP at several tolerances.
    base = run_application(replay, DefaultController, seed=22)
    print(f"{'tolerance':>10s}  {'slowdown':>9s}  {'power savings':>14s}")
    for tol_pct in (0.0, 5.0, 10.0):
        cfg = ControllerConfig(tolerated_slowdown=tol_pct / 100.0)
        run = run_application(replay, lambda: DUFP(cfg), controller_cfg=cfg, seed=22)
        slow = 100.0 * (run.execution_time_s / base.execution_time_s - 1.0)
        save = 100.0 * (1.0 - run.avg_package_power_w / base.avg_package_power_w)
        print(f"{tol_pct:9.0f}%  {slow:+8.2f}%  {save:+13.2f}%")

    print(
        "\nThe replayed workload responds to the controller like the"
        "\noriginal — a trace captured once is enough to tune DUFP offline."
    )


if __name__ == "__main__":
    main()
