"""Figure 3: DUF/DUFP impact on performance, power and energy.

The heavy sweep runs once per session (see ``conftest.sweep``); each
panel benchmark times its projection and asserts the paper's shape:

* 3a — DUFP respects the tolerated slowdown for the large majority of
  the 40 configurations, and the known misses (LAMMPS, UA @ 0 %,
  CG @ 20 %) stay small;
* 3b — every application saves processor power; EP saves the most
  (uncore-dominated); DUFP ≥ DUF with the big gaps on CG and BT;
* 3c — no energy loss up to 10 % tolerance for most applications;
  CG @ 10 % saves both power and energy.
"""

from repro.experiments.fig3 import fig3a, fig3b, fig3c

from conftest import assert_shape


def test_fig3a(benchmark, sweep):
    panel = benchmark.pedantic(
        fig3a, kwargs={"sweep": sweep}, rounds=1, iterations=1
    )
    print("\n" + panel.render())
    within, total = sweep.respected_count("dufp", slack=0.5)
    assert_shape(total == 40, "3a: 10 apps x 4 tolerances")
    assert_shape(
        within >= 30,
        f"3a: tolerance respected for most configurations ({within}/{total}, paper 34/40)",
    )
    # Known violations stay small (paper: max 3.17 % over).
    for app, tol in (("UA", 0.0), ("CG", 20.0), ("LAMMPS", 0.0)):
        over = panel.get(app, "dufp", tol).mean - tol
        assert_shape(over < 4.0, f"3a: {app}@{tol:.0f}% miss is small ({over:.2f})")
    # DUF respects the tolerance everywhere (it drives one knob only).
    for app in sweep.apps:
        for tol in sweep.tolerances_pct:
            bar = panel.get(app, "duf", tol)
            assert_shape(
                bar.mean <= tol + 3.0, f"3a: DUF {app}@{tol:.0f}% within tolerance"
            )


def test_fig3b(benchmark, sweep):
    panel = benchmark.pedantic(
        fig3b, kwargs={"sweep": sweep}, rounds=1, iterations=1
    )
    print("\n" + panel.render())
    # Every app saves power under DUFP at 5 %+ tolerance.
    for app in sweep.apps:
        for tol in (5.0, 10.0, 20.0):
            assert_shape(
                panel.get(app, "dufp", tol).mean > 0.0,
                f"3b: DUFP saves power on {app}@{tol:.0f}%",
            )
    # EP posts the best savings (paper: 24.27 %), uncore-dominated.
    # Our deep-cap savings on CG/MG at 20 % exceed the paper's (see
    # EXPERIMENTS.md), so the ordering claim is checked at <= 10 %.
    ep_best = max(panel.get("EP", "dufp", t).mean for t in sweep.tolerances_pct)
    savers_at_5 = {
        app: panel.get(app, "dufp", 5.0).mean for app in sweep.apps
    }
    top_at_5 = sorted(savers_at_5, key=savers_at_5.get, reverse=True)[:3]
    assert_shape(ep_best > 12.0, "3b: EP saves heavily (paper 24.27 %)")
    assert_shape("EP" in top_at_5, "3b: EP among the biggest savers at 5 %")
    # DUFP adds savings over DUF; biggest reported gap is CG @ 20 %.
    cg_gap = (
        panel.get("CG", "dufp", 20.0).mean - panel.get("CG", "duf", 20.0).mean
    )
    assert_shape(cg_gap > 4.0, "3b: capping adds >4 % on CG@20 (paper +7.9 %)")
    bt_duf = panel.get("BT", "duf", 20.0).mean
    bt_dufp = panel.get("BT", "dufp", 20.0).mean
    assert_shape(
        bt_dufp > bt_duf + 2.0,
        "3b: DUFP saves where DUF could not on BT@20 (paper 5.14 vs 0.64)",
    )
    # CPU-intensive HPL stays a modest saver (paper < 7 %).
    assert_shape(
        panel.get("HPL", "duf", 10.0).mean < 8.0, "3b: HPL DUF savings modest"
    )


def test_fig3c(benchmark, sweep):
    panel = benchmark.pedantic(
        fig3c, kwargs={"sweep": sweep}, rounds=1, iterations=1
    )
    print("\n" + panel.render())
    # No energy loss up to 10 % tolerance for most applications.
    losses = [
        (app, tol)
        for app in sweep.apps
        for tol in (0.0, 5.0, 10.0)
        if panel.get(app, "dufp", tol).mean < -1.0
    ]
    assert_shape(
        len(losses) <= 3,
        f"3c: energy losses below 10 % tolerance are rare (got {losses})",
    )
    # CG @ 10 %: both power and energy saved (paper 13.98 % / 4.7 %).
    assert_shape(
        panel.get("CG", "dufp", 10.0).mean > 2.0,
        "3c: CG@10 saves energy as well as power",
    )
    # HPL: no or small savings, but no energy loss (paper Section V-D).
    for tol in sweep.tolerances_pct:
        assert_shape(
            panel.get("HPL", "dufp", tol).mean > -2.0,
            f"3c: HPL@{tol:.0f}% has no meaningful energy loss",
        )
