"""Figure 5: CPU frequency under DUF vs DUFP (CG at 10 %).

Shape claims: under DUF the cores ride the 2.8 GHz all-core turbo for
essentially the whole run; DUFP's dynamic cap pulls the average down to
≈ 2.5 GHz while staying within the tolerated slowdown.
"""

from repro.experiments.fig5 import fig5

from conftest import assert_shape


def test_fig5(benchmark):
    result = benchmark.pedantic(fig5, rounds=1, iterations=1)
    print("\n" + result.render())
    assert_shape(
        result.duf_avg_ghz > 2.75,
        f"5: DUF rides the turbo (avg {result.duf_avg_ghz:.2f}, paper 2.8 GHz)",
    )
    assert_shape(
        2.2 < result.dufp_avg_ghz < 2.7,
        f"5: DUFP lowers the average (avg {result.dufp_avg_ghz:.2f}, paper 2.5 GHz)",
    )
    # The DUFP trace actually visits reduced frequencies; DUF's doesn't.
    _, duf_freqs = result.duf_series
    _, dufp_freqs = result.dufp_series
    assert_shape(min(dufp_freqs) < 2.5, "5: DUFP visits low P-states")
    assert_shape(min(duf_freqs) > 2.6, "5: DUF never leaves the turbo range")
