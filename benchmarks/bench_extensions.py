"""Extension bench: DUFPF (direct CPU frequency management).

The paper's future work: "better handling CPU frequency under power
capping, instead of relying on power capping to change the CPU
frequency may improve even more both performance and power
consumption" (Section V-G).  DUFPF implements it; the bench measures
where the hypothesis holds on this substrate:

* on compute-dominated workloads (EP) the fine-grained, latch-free
  P-state ceiling spends the slowdown budget that DUFP's cap path
  cannot (its highly-CPU rule resets on every violation) — clearly
  more savings at compliant slowdown;
* on memory-bound workloads the serialized two-knob descent trades a
  few points of savings for tighter tolerance compliance.
"""

from repro.config import ControllerConfig, NoiseConfig
from repro.core.baselines import DefaultController
from repro.core.dufp import DUFP
from repro.core.extensions import DUFPF
from repro.sim.run import run_application
from repro.workloads.catalog import build_application

from conftest import assert_shape

QUIET = NoiseConfig(duration_jitter=0.001, counter_noise=0.001, power_noise=0.001)


def _compare(app_name: str, tol: float = 0.10, seed=51):
    cfg = ControllerConfig(tolerated_slowdown=tol)
    app = build_application(app_name)
    default = run_application(app, DefaultController, noise=QUIET, seed=seed)

    def pct(result):
        slow = 100.0 * (result.execution_time_s / default.execution_time_s - 1.0)
        save = 100.0 * (
            1.0 - result.avg_package_power_w / default.avg_package_power_w
        )
        return slow, save

    dufp = run_application(
        app, lambda: DUFP(cfg), controller_cfg=cfg, noise=QUIET, seed=seed
    )
    dufpf = run_application(
        app, lambda: DUFPF(cfg), controller_cfg=cfg, noise=QUIET, seed=seed
    )
    return pct(dufp), pct(dufpf)


def test_dufpf_improves_compute_bound_ep(benchmark):
    (dufp_slow, dufp_save), (dufpf_slow, dufpf_save) = benchmark.pedantic(
        _compare, args=("EP",), rounds=1, iterations=1
    )
    print(
        f"\nEP @10%: DUFP {dufp_slow:+.2f} % / {dufp_save:+.2f} %; "
        f"DUFPF {dufpf_slow:+.2f} % / {dufpf_save:+.2f} %"
    )
    assert_shape(
        dufpf_save > dufp_save + 3.0,
        "direct frequency control beats cap-mediated control on EP",
    )
    assert_shape(dufpf_slow < 10.0 + 2.0, "DUFPF stays within tolerance on EP")


def test_dufpf_compliance_on_memory_bound(benchmark):
    def sweep():
        return {app: _compare(app) for app in ("CG", "MG", "LAMMPS")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for app, ((dufp_slow, dufp_save), (dufpf_slow, dufpf_save)) in results.items():
        print(
            f"\n{app} @10%: DUFP {dufp_slow:+.2f} % / {dufp_save:+.2f} %; "
            f"DUFPF {dufpf_slow:+.2f} % / {dufpf_save:+.2f} %"
        )
        assert_shape(
            dufpf_slow <= dufp_slow + 1.0,
            f"DUFPF is at least as compliant as DUFP on {app}",
        )
        assert_shape(dufpf_save > 0.0, f"DUFPF still saves power on {app}")
