"""Related-work baseline: DNPC-style frequency-model capping.

The paper argues (Section VI) that DNPC's linear frequency→performance
model mis-handles memory-intensive workloads: a frequency drop on a
memory-bound phase is harmless, but the model backs the cap off anyway,
leaving savings on the table.  DUFP's FLOPS-based feedback does not.
"""

from repro.config import ControllerConfig, NoiseConfig
from repro.core.baselines import DefaultController, DNPCLike
from repro.core.dufp import DUFP
from repro.sim.run import run_application
from repro.workloads.catalog import build_application

from conftest import assert_shape

QUIET = NoiseConfig(duration_jitter=0.001, counter_noise=0.001, power_noise=0.001)


def _compare(app_name: str, tol: float = 0.10, seed=41):
    cfg = ControllerConfig(tolerated_slowdown=tol)
    app = build_application(app_name)
    default = run_application(app, DefaultController, noise=QUIET, seed=seed)

    def pct(result):
        slow = 100.0 * (result.execution_time_s / default.execution_time_s - 1.0)
        save = 100.0 * (
            1.0 - result.avg_package_power_w / default.avg_package_power_w
        )
        return slow, save

    dnpc = run_application(
        app, lambda: DNPCLike(cfg), controller_cfg=cfg, noise=QUIET, seed=seed
    )
    dufp = run_application(
        app, lambda: DUFP(cfg), controller_cfg=cfg, noise=QUIET, seed=seed
    )
    return pct(dnpc), pct(dufp)


def test_dnpc_vs_dufp_on_memory_bound_cg(benchmark):
    (dnpc_slow, dnpc_save), (dufp_slow, dufp_save) = benchmark.pedantic(
        _compare, args=("CG",), rounds=1, iterations=1
    )
    print(
        f"\nCG @10%: DNPC {dnpc_slow:+.2f} % slow / {dnpc_save:+.2f} % saved; "
        f"DUFP {dufp_slow:+.2f} % / {dufp_save:+.2f} %"
    )
    # The frequency model equates 10 % frequency loss with 10 % slowdown
    # and stops there; DUFP's counters let it push further on a
    # memory-bound workload.
    assert_shape(
        dufp_save > dnpc_save,
        "DUFP out-saves the frequency-model baseline on memory-bound CG",
    )


def test_dnpc_reasonable_on_compute_bound_ep(benchmark):
    (dnpc_slow, dnpc_save), (dufp_slow, dufp_save) = benchmark.pedantic(
        _compare, args=("EP",), rounds=1, iterations=1
    )
    print(
        f"\nEP @10%: DNPC {dnpc_slow:+.2f} % slow / {dnpc_save:+.2f} % saved; "
        f"DUFP {dufp_slow:+.2f} % / {dufp_save:+.2f} %"
    )
    # On a purely frequency-coupled workload the linear model is
    # adequate for the *cap*, but it has no uncore lever at all.
    assert_shape(
        dufp_save > dnpc_save + 5.0,
        "the uncore lever gives DUFP a clear edge on EP",
    )
    assert_shape(dnpc_slow < 13.0, "DNPC holds EP near the tolerance")
