"""Figure 4: DUFP impact on DRAM power.

Shape claims: savings for most configurations, the best on CG at 20 %
(paper 8.83 %); losses, where they appear, are sub-percent (paper: MG
at 0 % loses 0.81 %).
"""

from repro.experiments.fig4 import fig4

from conftest import assert_shape


def test_fig4(benchmark, sweep):
    panel = benchmark.pedantic(
        fig4, kwargs={"sweep": sweep}, rounds=1, iterations=1
    )
    print("\n" + panel.render())
    # Most configurations save (or at least do not lose) DRAM power.
    losing = [
        (app, tol)
        for app in sweep.apps
        for tol in sweep.tolerances_pct
        if panel.get(app, "dufp", tol).mean < -1.0
    ]
    assert_shape(not losing, f"4: no meaningful DRAM power losses (got {losing})")
    # CG posts the best DRAM savings at 20 % (paper 8.83 %).
    cg20 = panel.get("CG", "dufp", 20.0).mean
    assert_shape(cg20 > 4.0, "4: CG@20 has strong DRAM savings (paper 8.83 %)")
    best = max(
        panel.get(app, "dufp", 20.0).mean for app in sweep.apps
    )
    assert_shape(cg20 >= best - 2.0, "4: CG is among the best DRAM savers at 20 %")
    # DUFP outperforms DUF on DRAM power for most configurations.
    better = sum(
        1
        for app in sweep.apps
        for tol in sweep.tolerances_pct
        if panel.get(app, "dufp", tol).mean >= panel.get(app, "duf", tol).mean - 0.3
    )
    assert_shape(better >= 30, f"4: DUFP >= DUF on DRAM power mostly ({better}/40)")
