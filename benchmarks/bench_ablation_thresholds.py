"""Ablation: the operational-intensity thresholds (paper Section V-G).

DUFP classifies phases with three empirical OI thresholds: memory vs
CPU at 1, *highly* memory below 0.02 (cap drops freely), *highly* CPU
above 100 (violations reset instead of stepping).  The paper itself
flags these as architecture-agnostic approximations.  This bench probes
their contribution:

* removing the highly-memory fast path slows the descent on CG's setup
  phase (less savings there);
* removing the highly-CPU reset makes HPL recover by 5 W steps instead
  of a reset, so violations linger longer.
"""

from repro.config import ControllerConfig, NoiseConfig
from repro.core.baselines import DefaultController
from repro.core.dufp import DUFP
from repro.sim.run import run_application
from repro.workloads.catalog import build_application

from conftest import assert_shape

QUIET = NoiseConfig(duration_jitter=0.001, counter_noise=0.001, power_noise=0.001)


def _run(app_name: str, cfg: ControllerConfig, seed=31):
    app = build_application(app_name)
    default = run_application(app, DefaultController, noise=QUIET, seed=seed)
    dufp = run_application(
        app, lambda: DUFP(cfg), controller_cfg=cfg, noise=QUIET, seed=seed
    )
    slowdown = 100.0 * (dufp.execution_time_s / default.execution_time_s - 1.0)
    savings = 100.0 * (1.0 - dufp.avg_package_power_w / default.avg_package_power_w)
    return slowdown, savings


def test_highly_memory_fast_path(benchmark):
    def sweep():
        base = _run("CG", ControllerConfig(tolerated_slowdown=0.0))
        # Threshold so low the fast path never fires.
        no_fast = _run(
            "CG", ControllerConfig(tolerated_slowdown=0.0, oi_highly_memory=1e-6)
        )
        return base, no_fast

    (s_base, p_base), (s_off, p_off) = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    print(f"\nCG @0%: fast path {p_base:+.2f} % saved vs disabled {p_off:+.2f} %")
    assert_shape(
        p_base >= p_off - 0.2,
        "the OI<0.02 fast path contributes savings at 0 % tolerance",
    )


def test_highly_cpu_reset(benchmark):
    def sweep():
        base = _run("HPL", ControllerConfig(tolerated_slowdown=0.10))
        # Threshold so high the reset never fires: violations recover
        # by single 5 W steps.
        no_reset = _run(
            "HPL", ControllerConfig(tolerated_slowdown=0.10, oi_highly_cpu=1e9)
        )
        return base, no_reset

    (s_base, p_base), (s_off, p_off) = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    print(
        f"\nHPL @10%: with reset {s_base:+.2f} % slow / {p_base:+.2f} % saved; "
        f"without {s_off:+.2f} % / {p_off:+.2f} %"
    )
    assert_shape(
        s_base <= s_off + 1.0,
        "the highly-CPU reset protects HPL's performance",
    )


def test_memory_boundary_placement(benchmark):
    def sweep():
        base = _run("UA", ControllerConfig(tolerated_slowdown=0.05))
        # Boundary at 20: UA's compute iterations (OI 8) now count as
        # memory, so the regime switch is never detected.
        blind = _run(
            "UA",
            ControllerConfig(
                tolerated_slowdown=0.05, oi_memory_boundary=20.0, oi_highly_cpu=100.0
            ),
        )
        return base, blind

    (s_base, _), (s_blind, _) = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nUA @5%: boundary@1 {s_base:+.2f} % slow vs boundary@20 {s_blind:+.2f} %")
    assert_shape(
        s_blind >= s_base - 0.5,
        "mis-placing the memory/CPU boundary cannot improve UA",
    )
