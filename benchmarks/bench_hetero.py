"""Extension bench: CPU + GPU shared power budget (paper §VII future work).

Shape claim: under a shared budget, the tolerance-aware coordinator
drains watts from the cap-tolerant (memory-bound) CPU into the GPU's
power limit, reducing the worst relative slowdown across the two
devices compared to a naive 50/50 split.
"""

from repro.config import ControllerConfig
from repro.hardware.gpu import GPUKernel
from repro.sim.hetero import HeteroEngine
from repro.workloads.catalog import build_application

from conftest import assert_shape

BUDGET_W = 300.0


def _scenario():
    app = build_application("CG", scale=0.5)
    kernels = [
        GPUKernel(f"dgemm[{i}]", flops=6e12, bytes=6e12 / 8.0) for i in range(8)
    ]
    cfg = ControllerConfig(tolerated_slowdown=0.10)
    static = HeteroEngine(
        application=app,
        kernels=kernels,
        total_budget_w=BUDGET_W,
        cfg=cfg,
        coordinated=False,
    ).run()
    coordinated = HeteroEngine(
        application=app,
        kernels=kernels,
        total_budget_w=BUDGET_W,
        cfg=cfg,
        coordinated=True,
    ).run()
    return app.nominal_duration(), static, coordinated


def test_cpu_gpu_budget_sharing(benchmark):
    cpu_nominal, static, coordinated = benchmark.pedantic(
        _scenario, rounds=1, iterations=1
    )
    gpu_nominal = 8.0

    def worst(r):
        return max(r.cpu_finish_s / cpu_nominal, r.gpu_finish_s / gpu_nominal)

    print(
        f"\nstatic 50/50: CPU {static.cpu_finish_s:.1f} s, GPU "
        f"{static.gpu_finish_s:.1f} s; coordinated: CPU "
        f"{coordinated.cpu_finish_s:.1f} s, GPU {coordinated.gpu_finish_s:.1f} s; "
        f"final split {coordinated.allocations[-1][1]:.0f}/"
        f"{coordinated.allocations[-1][2]:.0f} W"
    )
    assert_shape(
        coordinated.allocations[-1][2] > static.allocations[-1][2],
        "watts flow from the CPU cap to the GPU limit",
    )
    assert_shape(
        worst(coordinated) < worst(static),
        "coordination reduces the worst relative slowdown",
    )
    for _, cpu_w, gpu_w in coordinated.allocations:
        assert_shape(cpu_w + gpu_w <= BUDGET_W + 1e-6, "budget respected")
