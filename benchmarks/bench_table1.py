"""Table I: architecture characteristics of the simulated machine."""

from repro.experiments.table1 import table1

from conftest import assert_shape


def test_table1(benchmark):
    result = benchmark(table1)
    print("\n" + result.render())
    assert_shape(result.cores == 64, "Table I: 64 cores")
    assert_shape(
        (result.uncore_min_ghz, result.uncore_max_ghz) == (1.2, 2.4),
        "Table I: uncore range 1.2-2.4 GHz",
    )
    assert_shape(result.long_term_w == 125.0, "Table I: PL1 = 125 W")
    assert_shape(result.short_term_w == 150.0, "Table I: PL2 = 150 W")
