"""Executor benchmarks: parallel speedup and warm-cache latency.

Times the same reduced sweep grid five ways — serial, process-pool
parallel, single-process batch-engine, batch-sharded multiprocess,
and warm-cache — so the scaling the executor exists for is measured,
not assumed.  Asserts the invariants the layer guarantees: parallel,
batch, and sharded results are bit-identical to serial, and a warm
rerun executes zero protocol cells.
"""

from __future__ import annotations

import os

from repro.config import NoiseConfig
from repro.experiments.sweep import run_sweep

from conftest import BENCH_RUNS, assert_shape

QUIET = NoiseConfig(duration_jitter=0.001, counter_noise=0.001, power_noise=0.001)

#: A grid big enough to amortise pool start-up, small enough for CI.
GRID = dict(
    apps=("CG", "EP", "FT"),
    tolerances_pct=(0.0, 10.0),
    runs=min(BENCH_RUNS, 5),
    noise=QUIET,
)

WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0")) or (os.cpu_count() or 2)


def test_sweep_serial(benchmark):
    result = benchmark.pedantic(
        lambda: run_sweep(**GRID, workers=1), rounds=1, iterations=1
    )
    assert_shape(
        result.execution.executed == result.execution.total,
        "serial sweep executes every cell",
    )


def test_sweep_parallel_matches_serial(benchmark):
    serial = run_sweep(**GRID, workers=1)
    parallel = benchmark.pedantic(
        lambda: run_sweep(**GRID, workers=WORKERS), rounds=1, iterations=1
    )
    assert_shape(
        parallel.comparisons == serial.comparisons,
        "parallel sweep is bit-identical to serial",
    )


def test_sweep_batch_engine_matches_serial(benchmark):
    """The vectorized lockstep path: all grid cells in one batch."""
    serial = run_sweep(**GRID, workers=1)
    batch = benchmark.pedantic(
        lambda: run_sweep(**GRID, engine="batch"), rounds=1, iterations=1
    )
    assert_shape(
        batch.comparisons == serial.comparisons,
        "batch-engine sweep is numerically identical to serial scalar",
    )


def test_sweep_sharded_batch_matches_serial(benchmark):
    """The tentpole path: shard-level lockstep batches, stolen dynamically.

    At least two workers even on a one-core machine, so the sharded
    pool path (not the serial fallback) is what gets measured.
    """
    serial = run_sweep(**GRID, workers=1)
    sharded = benchmark.pedantic(
        lambda: run_sweep(
            **GRID, engine="batch", workers=max(2, WORKERS), shard_size=2
        ),
        rounds=1,
        iterations=1,
    )
    assert_shape(
        sharded.comparisons == serial.comparisons,
        "sharded multi-worker batch sweep is bit-identical to serial",
    )
    assert_shape(
        sharded.execution.shard_count >= 1,
        "sharded sweep reports its shard plan",
    )


def test_sweep_warm_cache(benchmark, tmp_path):
    run_sweep(**GRID, cache=str(tmp_path))  # cold fill

    warm = benchmark.pedantic(
        lambda: run_sweep(**GRID, workers=WORKERS, cache=str(tmp_path)),
        rounds=1,
        iterations=1,
    )
    assert_shape(
        warm.execution.executed == 0 and warm.execution.hits == warm.execution.total,
        "warm-cache rerun serves every cell from the cache",
    )
