"""Shared fixtures for the benchmark suite.

The evaluation sweep behind Figures 3 and 4 is expensive (10 apps × 2
controllers × 4 tolerances × N runs), so it executes once per session
and the per-figure benchmarks time their projection over it while
asserting the paper's shape claims.

``REPRO_BENCH_RUNS`` overrides the runs-per-configuration (default 10,
the paper's protocol; set 2–3 for a quick pass).  ``REPRO_BENCH_WORKERS``
fans the sweep grid over that many processes, and ``REPRO_BENCH_CACHE``
names a content-addressed result-cache directory so repeated benchmark
sessions skip already-computed cells (see repro.experiments.executor).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.sweep import run_sweep

#: Runs per configuration for every benchmark in the suite.
BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "10"))

#: Process-pool width for the sweep fixture (1 = classic serial path).
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

#: Optional result-cache directory shared across benchmark sessions.
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE") or None


@pytest.fixture(scope="session")
def sweep():
    """The full evaluation sweep (all apps, all tolerances)."""
    return run_sweep(runs=BENCH_RUNS, workers=BENCH_WORKERS, cache=BENCH_CACHE)


def assert_shape(condition: bool, claim: str) -> None:
    """Readable shape-claim assertions for the reproduction benches."""
    assert condition, f"paper-shape claim failed: {claim}"
