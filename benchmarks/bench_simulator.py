"""Microbenchmarks: simulator throughput.

These time the substrate itself (steps/second, full-run wall time) so
regressions in the hot path — the per-step roofline + RAPL loop — are
visible.  Unlike the figure benches these use pytest-benchmark's
statistical timing (many rounds of a cheap operation).

The batch-engine scaling curve (``test_batch_run_dufp[N]``) times one
lockstep batch at widths 1/4/16/64 of the same run; per-run cost
should *fall* as N grows — that amortisation is the engine's entire
reason to exist (scripts/bench_baseline.py gates the 64-cell speedup
in CI; these curves show where it comes from).
"""

import pytest

from repro.config import ControllerConfig, NoiseConfig, yeti_socket_config
from repro.core.baselines import DefaultController
from repro.core.dufp import DUFP
from repro.hardware.processor import PhaseWork, SimulatedProcessor
from repro.sim.batch import run_batch
from repro.sim.run import build_engine, run_application
from repro.workloads.catalog import build_application

QUIET = NoiseConfig(duration_jitter=0.0, counter_noise=0.0, power_noise=0.0)
WORK = PhaseWork(flops=1e12, bytes=1e12, fpc=2.0)


def test_processor_step_throughput(benchmark):
    proc = SimulatedProcessor(yeti_socket_config())

    def hundred_steps():
        for _ in range(100):
            proc.step(0.01, WORK)

    benchmark(hundred_steps)


def test_rapl_enforcement_step(benchmark):
    proc = SimulatedProcessor(yeti_socket_config())
    proc.rapl.set_limits(100.0, 100.0)

    def hundred_capped_steps():
        for _ in range(100):
            proc.step(0.01, WORK)

    benchmark(hundred_capped_steps)


def test_full_cg_run_default(benchmark):
    app = build_application("CG", scale=0.3)
    benchmark.pedantic(
        lambda: run_application(app, DefaultController, noise=QUIET, seed=1),
        rounds=3,
        iterations=1,
    )


def test_full_cg_run_dufp(benchmark):
    app = build_application("CG", scale=0.3)
    cfg = ControllerConfig(tolerated_slowdown=0.10)

    benchmark.pedantic(
        lambda: run_application(
            app, lambda: DUFP(cfg), controller_cfg=cfg, noise=QUIET, seed=1
        ),
        rounds=3,
        iterations=1,
    )


def _batch_engines(n):
    """``n`` independently seeded copies of the DUFP CG run."""
    app = build_application("CG", scale=0.3)
    cfg = ControllerConfig(tolerated_slowdown=0.10)
    return [
        build_engine(
            app,
            lambda: DUFP(cfg),
            controller_cfg=cfg,
            noise=QUIET,
            seed=seed,
            record_trace=False,
        )
        for seed in range(n)
    ]


@pytest.mark.parametrize("n", (1, 4, 16, 64))
def test_batch_run_dufp(benchmark, n):
    """Batch-width scaling: wall time per lockstep batch of ``n`` runs.

    Divide by ``n`` (and compare against ``test_full_cg_run_dufp``)
    for the per-run amortisation curve.
    """
    benchmark.pedantic(
        lambda: run_batch(_batch_engines(n)), rounds=2, iterations=1
    )


def test_batch_chunked_64_by_16(benchmark):
    """The same 64 runs through ``max_batch=16`` chunks — the memory-
    bounded path — to keep chunking overhead visible next to the
    single-batch number."""
    benchmark.pedantic(
        lambda: run_batch(_batch_engines(64), max_batch=16),
        rounds=2,
        iterations=1,
    )
