"""Microbenchmarks: simulator throughput.

These time the substrate itself (steps/second, full-run wall time) so
regressions in the hot path — the per-step roofline + RAPL loop — are
visible.  Unlike the figure benches these use pytest-benchmark's
statistical timing (many rounds of a cheap operation).
"""

from repro.config import ControllerConfig, NoiseConfig, yeti_socket_config
from repro.core.baselines import DefaultController
from repro.core.dufp import DUFP
from repro.hardware.processor import PhaseWork, SimulatedProcessor
from repro.sim.run import run_application
from repro.workloads.catalog import build_application

QUIET = NoiseConfig(duration_jitter=0.0, counter_noise=0.0, power_noise=0.0)
WORK = PhaseWork(flops=1e12, bytes=1e12, fpc=2.0)


def test_processor_step_throughput(benchmark):
    proc = SimulatedProcessor(yeti_socket_config())

    def hundred_steps():
        for _ in range(100):
            proc.step(0.01, WORK)

    benchmark(hundred_steps)


def test_rapl_enforcement_step(benchmark):
    proc = SimulatedProcessor(yeti_socket_config())
    proc.rapl.set_limits(100.0, 100.0)

    def hundred_capped_steps():
        for _ in range(100):
            proc.step(0.01, WORK)

    benchmark(hundred_capped_steps)


def test_full_cg_run_default(benchmark):
    app = build_application("CG", scale=0.3)
    benchmark.pedantic(
        lambda: run_application(app, DefaultController, noise=QUIET, seed=1),
        rounds=3,
        iterations=1,
    )


def test_full_cg_run_dufp(benchmark):
    app = build_application("CG", scale=0.3)
    cfg = ControllerConfig(tolerated_slowdown=0.10)

    benchmark.pedantic(
        lambda: run_application(
            app, lambda: DUFP(cfg), controller_cfg=cfg, noise=QUIET, seed=1
        ),
        rounds=3,
        iterations=1,
    )
