"""Figure 1: the motivating experiment — static capping of CG.

Shape claims (paper, Section II-A):

* 1a — whole-run caps save power roughly in proportion to the cap
  (110 W → ~16 %, 100 W → ~24 % of the budget) but cost real time
  (~7 % and ~12 %);
* 1b — the same caps applied only to the initial memory phase cut that
  phase's power by ~16–19 %;
* 1c — those phase-local caps do not change total execution time.
"""

from repro.experiments.fig1 import fig1a, fig1b, fig1c

from conftest import BENCH_RUNS, assert_shape


def test_fig1a(benchmark):
    result = benchmark.pedantic(
        fig1a, kwargs={"runs": BENCH_RUNS}, rounds=1, iterations=1
    )
    print("\n" + result.render())
    default_power = result.row("default").power_pct_of_budget
    assert_shape(default_power > 90.0, "1a: default CG runs near the budget")
    r110, r100 = result.row("ufs+110W"), result.row("ufs+100W")
    assert_shape(
        default_power - r110.power_pct_of_budget > 8.0,
        "1a: the 110 W cap saves >8 % of the budget (paper ~16 %)",
    )
    assert_shape(
        default_power - r100.power_pct_of_budget > 15.0,
        "1a: the 100 W cap saves >15 % of the budget (paper ~24 %)",
    )
    assert_shape(
        3.0 < r110.time_pct_of_default - 100.0 < 11.0,
        "1a: the 110 W cap costs ~7 % time",
    )
    assert_shape(
        8.0 < r100.time_pct_of_default - 100.0 < 17.0,
        "1a: the 100 W cap costs ~12 % time",
    )


def test_fig1b(benchmark):
    result = benchmark.pedantic(
        fig1b, kwargs={"runs": BENCH_RUNS}, rounds=1, iterations=1
    )
    print("\n" + result.render())
    default_power = result.row("default").power_pct_of_budget
    assert_shape(
        default_power - result.row("ufs+110W").power_pct_of_budget > 5.0,
        "1b: capping the memory phase at 110 W cuts its power (paper ~16 %)",
    )
    assert_shape(
        default_power - result.row("ufs+100W").power_pct_of_budget > 12.0,
        "1b: capping the memory phase at 100 W cuts its power (paper ~19 %)",
    )


def test_fig1c(benchmark):
    result = benchmark.pedantic(
        fig1c, kwargs={"runs": BENCH_RUNS}, rounds=1, iterations=1
    )
    print("\n" + result.render())
    for label in ("ufs+110W", "ufs+100W"):
        assert_shape(
            abs(result.row(label).time_pct_of_default - 100.0) < 1.0,
            f"1c: phase-local cap {label} leaves total time unchanged",
        )
