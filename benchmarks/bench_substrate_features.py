"""Substrate-feature benches: AVX licenses and thermals (opt-in models).

Neither feature is part of the paper's evaluation (both default off),
but each closes a loop the paper opens:

* **AVX frequency licenses** — wide-vector code self-derates the turbo
  on real Skylake-SP.  With the license enabled, HPL's DGEMM updates
  run at the AVX clock, its default power drops, and DUFP's remaining
  savings shrink accordingly: a capping runtime has less to harvest
  from a workload the silicon already slowed.
* **Thermals** — §II-B grounds capping in cooling limits.  With an
  undersized cooler, the default run PROCHOT-throttles; under DUFP's
  cap the package stays below the trip entirely — power capping as
  thermal management.
"""

from dataclasses import replace

from repro.config import (
    ControllerConfig,
    MachineConfig,
    NoiseConfig,
    ThermalConfig,
    yeti_socket_config,
)
from repro.core.baselines import DefaultController
from repro.core.dufp import DUFP
from repro.sim.machine import SimulatedMachine
from repro.sim.run import run_application
from repro.workloads.catalog import build_application

from conftest import assert_shape

QUIET = NoiseConfig(duration_jitter=0.001, counter_noise=0.001, power_noise=0.001)


def _run(app_name, factory, socket, cfg, seed=61):
    machine = SimulatedMachine(MachineConfig(socket=socket, socket_count=1))
    return run_application(
        build_application(app_name, socket=socket),
        factory,
        controller_cfg=cfg,
        machine=machine,
        noise=QUIET,
        seed=seed,
    )


def test_avx_license_shrinks_dufp_headroom(benchmark):
    def scenario():
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        plain = yeti_socket_config()
        licensed = replace(
            plain, core=replace(plain.core, avx_license_fpc=16.0)
        )
        out = {}
        for label, socket in (("plain", plain), ("licensed", licensed)):
            default = _run("HPL", DefaultController, socket, cfg)
            dufp = _run("HPL", lambda: DUFP(cfg), socket, cfg)
            out[label] = (
                default.avg_package_power_w,
                1 - dufp.avg_package_power_w / default.avg_package_power_w,
                dufp.execution_time_s / default.execution_time_s - 1,
            )
        return out

    out = benchmark.pedantic(scenario, rounds=1, iterations=1)
    (p_plain, s_plain, _), (p_lic, s_lic, slow_lic) = out["plain"], out["licensed"]
    print(
        f"\nHPL default power: plain {p_plain:.1f} W vs licensed {p_lic:.1f} W; "
        f"DUFP savings: {100 * s_plain:.2f} % vs {100 * s_lic:.2f} %"
    )
    assert_shape(
        p_lic < p_plain - 5.0, "the AVX license lowers HPL's default power"
    )
    assert_shape(
        slow_lic < 0.10 + 0.02,
        "DUFP still respects the tolerance on the derated workload",
    )
    assert_shape(s_lic > 0.0, "DUFP still finds savings under the license")


def test_capping_doubles_as_thermal_management(benchmark):
    def scenario():
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        # An undersized cooler: sustained default power would trip.
        hot = replace(
            yeti_socket_config(),
            thermal=ThermalConfig(r_thermal_c_per_w=0.55, tau_s=4.0),
        )
        default = _run("EP", DefaultController, hot, cfg)
        dufp = _run("EP", lambda: DUFP(cfg), hot, cfg)

        def peak_temp(run):
            return max(
                s.temperature_c
                for s in run.socket(0).trace
                if s.temperature_c is not None
            )

        return peak_temp(default), peak_temp(dufp)

    t_default, t_dufp = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print(f"\npeak package temperature: default {t_default:.1f} C vs DUFP {t_dufp:.1f} C")
    assert_shape(
        t_dufp < t_default - 3.0,
        "DUFP's power savings translate into thermal headroom",
    )
    assert_shape(t_dufp < 96.0, "DUFP keeps the package below the PROCHOT trip")
