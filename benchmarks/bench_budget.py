"""Extension bench: node-level budget distribution (GEOPM-style).

The paper positions budget distribution as the complementary layer
above node-level DUFP (§VI) and asks, as future work, how to share a
budget between consumers with different needs.  The bench runs the
heterogeneous-node scenario (memory-bound CG + compute-bound EP under
one budget) and checks the coordinator's value proposition:

* the instantaneous node budget is respected;
* the compute-bound socket — which pays for every watt it loses — runs
  faster than under a naive equal split of the same budget.
"""

from repro.config import ControllerConfig, NoiseConfig
from repro.core.baselines import StaticPowerCap
from repro.core.budget import NodeBudgetCoordinator
from repro.sim.run import run_application
from repro.workloads.catalog import build_application

from conftest import assert_shape

QUIET = NoiseConfig(duration_jitter=0.001, counter_noise=0.001, power_noise=0.001)
BUDGET_W = 190.0


def _scenario():
    cfg = ControllerConfig(tolerated_slowdown=0.10)
    apps = [build_application("CG"), build_application("EP")]
    coord = NodeBudgetCoordinator(
        total_budget_w=BUDGET_W, cfg=cfg, per_socket_floor_w=80.0
    )
    coordinated = run_application(
        apps, coord.socket_controller, controller_cfg=cfg, noise=QUIET, seed=9
    )
    equal = run_application(
        apps,
        lambda: StaticPowerCap(BUDGET_W / 2),
        controller_cfg=cfg,
        noise=QUIET,
        seed=9,
    )
    return coord, coordinated, equal


def test_budget_sharing(benchmark):
    coord, coordinated, equal = benchmark.pedantic(
        _scenario, rounds=1, iterations=1
    )
    final = coord.history[-1][1]
    ep_coord = coordinated.sockets[1].finish_time_s
    ep_equal = equal.sockets[1].finish_time_s
    print(
        f"\nbudget {BUDGET_W:.0f} W: final allocation CG {final[0]:.0f} W / "
        f"EP {final[1]:.0f} W; EP finishes {ep_coord:.1f} s coordinated vs "
        f"{ep_equal:.1f} s equal-split"
    )
    assert_shape(final[1] > final[0], "the compute socket gets the bigger share")
    assert_shape(
        ep_coord < ep_equal, "the compute socket is protected vs equal split"
    )
    for _, alloc in coord.history:
        assert_shape(
            sum(alloc) <= BUDGET_W + 1e-6, "allocations respect the node budget"
        )
