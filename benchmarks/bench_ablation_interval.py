"""Ablation: the 200 ms measurement interval (paper Section IV-D).

The paper chose 200 ms as "a good trade off between overhead and
accuracy" and explains the LAMMPS/UA violations by bursts a 200 ms
average cannot resolve.  This bench sweeps the interval and checks:

* shortening the interval to 50 ms shrinks the hidden slowdown on the
  burst-prone applications (UA's 0 %-tolerance miss);
* lengthening it to 400 ms grows the miss.
"""

import pytest

from repro.config import ControllerConfig, NoiseConfig
from repro.core.baselines import DefaultController
from repro.core.dufp import DUFP
from repro.sim.run import run_application
from repro.workloads.catalog import build_application

from conftest import assert_shape

QUIET = NoiseConfig(duration_jitter=0.001, counter_noise=0.001, power_noise=0.001)


def _violation(app_name: str, interval_s: float, tol: float = 0.0) -> float:
    cfg = ControllerConfig(tolerated_slowdown=tol, interval_s=interval_s)
    app = build_application(app_name)
    default = run_application(app, DefaultController, noise=QUIET, seed=17)
    dufp = run_application(
        app, lambda: DUFP(cfg), controller_cfg=cfg, noise=QUIET, seed=17
    )
    return 100.0 * (dufp.execution_time_s / default.execution_time_s - 1.0) - tol * 100


@pytest.mark.parametrize("interval_ms", [50, 200, 400])
def test_interval_sweep_ua(benchmark, interval_ms):
    over = benchmark.pedantic(
        _violation,
        args=("UA", interval_ms / 1000.0),
        rounds=1,
        iterations=1,
    )
    print(f"\nUA @0% with {interval_ms} ms interval: {over:+.2f} % over tolerance")
    if interval_ms == 400:
        assert_shape(over > -0.5, "coarser sampling does not reduce the miss")


def test_finer_interval_shrinks_ua_miss(benchmark):
    def sweep():
        return _violation("UA", 0.05), _violation("UA", 0.4)

    fine, coarse = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nUA @0% miss: 50 ms -> {fine:+.2f} %, 400 ms -> {coarse:+.2f} %")
    assert_shape(
        fine < coarse + 0.2,
        "a finer interval catches the compute iteration sooner (paper V-A)",
    )
