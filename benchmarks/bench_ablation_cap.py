"""Ablation: power-cap actuator parameters (step size and floor).

The paper fixes the cap step at 5 W and floors the dynamic cap at 65 W
(Section IV-A).  This bench sweeps both on CG:

* a larger step descends faster but overshoots the tolerance more;
* raising the floor forfeits part of the memory-phase savings, while
  removing it (floor = hardware minimum) buys almost nothing — the
  cores are already at their lowest P-state near 65 W, which is why
  the paper picked that floor.
"""

import pytest

from repro.config import ControllerConfig, NoiseConfig
from repro.core.baselines import DefaultController
from repro.core.dufp import DUFP
from repro.sim.run import run_application
from repro.workloads.catalog import build_application

from conftest import assert_shape

QUIET = NoiseConfig(duration_jitter=0.001, counter_noise=0.001, power_noise=0.001)


def _run_cg(cfg: ControllerConfig):
    app = build_application("CG")
    default = run_application(app, DefaultController, noise=QUIET, seed=23)
    dufp = run_application(
        app, lambda: DUFP(cfg), controller_cfg=cfg, noise=QUIET, seed=23
    )
    slowdown = 100.0 * (dufp.execution_time_s / default.execution_time_s - 1.0)
    savings = 100.0 * (1.0 - dufp.avg_package_power_w / default.avg_package_power_w)
    return slowdown, savings


@pytest.mark.parametrize("step_w", [2.5, 5.0, 10.0])
def test_cap_step_sweep(benchmark, step_w):
    cfg = ControllerConfig(tolerated_slowdown=0.10, cap_step_w=step_w)
    slowdown, savings = benchmark.pedantic(
        _run_cg, args=(cfg,), rounds=1, iterations=1
    )
    print(f"\nCG @10% with {step_w} W steps: {slowdown:+.2f} % slow, {savings:+.2f} % saved")
    assert_shape(savings > 5.0, f"step {step_w} W still saves power")
    if step_w <= 5.0:
        assert_shape(
            slowdown < 10.0 + 4.0, f"step {step_w} W roughly holds the tolerance"
        )


def test_large_steps_overshoot(benchmark):
    # The ablation finding behind the paper's 5 W choice: doubling the
    # step makes each decrease overshoot the tolerance badly before the
    # (equally coarse) recovery can react.
    def sweep():
        s5, _ = _run_cg(ControllerConfig(tolerated_slowdown=0.10, cap_step_w=5.0))
        s10, _ = _run_cg(ControllerConfig(tolerated_slowdown=0.10, cap_step_w=10.0))
        return s5, s10

    s5, s10 = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nCG @10% overshoot: 5 W step -> {s5:+.2f} %, 10 W step -> {s10:+.2f} %")
    assert_shape(s10 >= s5 - 1.0, "coarser steps overshoot at least as much")


@pytest.mark.parametrize("floor_w", [65.0, 85.0, 105.0])
def test_cap_floor_sweep(benchmark, floor_w):
    cfg = ControllerConfig(tolerated_slowdown=0.10, cap_floor_w=floor_w)
    slowdown, savings = benchmark.pedantic(
        _run_cg, args=(cfg,), rounds=1, iterations=1
    )
    print(f"\nCG @10% with {floor_w:.0f} W floor: {slowdown:+.2f} % slow, {savings:+.2f} % saved")


def test_raising_floor_costs_savings(benchmark):
    def sweep():
        lo = _run_cg(ControllerConfig(tolerated_slowdown=0.10, cap_floor_w=65.0))
        hi = _run_cg(ControllerConfig(tolerated_slowdown=0.10, cap_floor_w=105.0))
        return lo, hi

    (s65, p65), (s105, p105) = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nfloor 65 W: {p65:+.2f} % saved; floor 105 W: {p105:+.2f} % saved")
    assert_shape(p65 >= p105 - 0.3, "lowering the floor never hurts savings")
