"""Property-based tests on the budget allocator and GPU model."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.core.budget import allocate_budget
from repro.hardware.gpu import GPUConfig, GPUKernel, SimulatedGPU

# Hypothesis budget-property sweeps: tier 2 (`pytest -m slow`).
pytestmark = pytest.mark.slow


demands = st.lists(
    st.floats(min_value=0.0, max_value=500.0), min_size=1, max_size=8
)


@given(d=demands, extra=st.floats(min_value=0.0, max_value=200.0))
@settings(max_examples=100)
def test_allocation_never_exceeds_budget(d, extra):
    total = 65.0 * len(d) + extra
    alloc = allocate_budget(d, total, 65.0, 125.0)
    assert sum(alloc) <= total + 1e-6


@given(d=demands, extra=st.floats(min_value=0.0, max_value=200.0))
@settings(max_examples=100)
def test_allocation_bounds(d, extra):
    total = 65.0 * len(d) + extra
    alloc = allocate_budget(d, total, 65.0, 125.0)
    assert all(65.0 - 1e-9 <= a <= 125.0 + 1e-9 for a in alloc)


@given(d=demands)
@settings(max_examples=100)
def test_generous_budget_serves_all_demand(d):
    total = sum(min(max(x, 65.0), 125.0) for x in d) + 10.0
    alloc = allocate_budget(d, total, 65.0, 125.0)
    for want, got in zip(d, alloc):
        assert got >= min(max(want, 65.0), 125.0) - 1e-6


@given(
    d=st.lists(st.floats(min_value=70.0, max_value=120.0), min_size=2, max_size=6),
    bump=st.floats(min_value=5.0, max_value=50.0),
    idx=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=100)
def test_raising_one_demand_never_lowers_own_share(d, bump, idx):
    idx = idx % len(d)
    total = 65.0 * len(d) + 60.0
    before = allocate_budget(d, total, 65.0, 125.0)
    d2 = list(d)
    d2[idx] = min(d2[idx] + bump, 500.0)
    after = allocate_budget(d2, total, 65.0, 125.0)
    assert after[idx] >= before[idx] - 1e-6


@given(
    limit=st.floats(min_value=100.0, max_value=300.0),
    flops=st.floats(min_value=1e11, max_value=2e13),
    ratio=st.floats(min_value=4.0, max_value=64.0),
)
@settings(max_examples=60)
def test_gpu_power_respects_limit(limit, flops, ratio):
    gpu = SimulatedGPU()
    gpu.set_power_limit(limit)
    gpu.step(0.01, GPUKernel("k", flops=flops, bytes=flops / ratio))
    cfg = GPUConfig()
    # The device throttles to its lowest clock if it must; only at the
    # clock floor may power exceed the limit (like RAPL at deep caps).
    if gpu.state.freq_hz > cfg.min_freq_hz:
        assert gpu.state.power_w <= limit + 1e-9


@given(
    flops=st.floats(min_value=1e11, max_value=2e13),
    ratio=st.floats(min_value=4.0, max_value=64.0),
)
@settings(max_examples=60)
def test_gpu_kernel_time_monotone_in_clock(flops, ratio):
    gpu = SimulatedGPU()
    kernel = GPUKernel("k", flops=flops, bytes=flops / ratio)
    t_fast = gpu.kernel_time(kernel, 1.38e9)
    t_slow = gpu.kernel_time(kernel, 0.8e9)
    assert t_slow >= t_fast - 1e-12
