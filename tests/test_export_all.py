"""The results-bundle exporter and its CLI subcommands."""

import csv

import pytest

from repro.cli import main
from repro.config import NoiseConfig
from repro.errors import ExperimentError
from repro.experiments.export_all import export_all
from repro.experiments.sweep import run_sweep


QUIET = NoiseConfig(duration_jitter=0.002, counter_noise=0.001, power_noise=0.001)


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    out = tmp_path_factory.mktemp("results")
    sweep = run_sweep(apps=["CG", "EP"], tolerances_pct=(0.0, 10.0), runs=2, noise=QUIET)
    manifest = export_all(str(out), runs=2, sweep=sweep, include_scorecard=False)
    return out, manifest


class TestExportAll:
    def test_expected_files_present(self, bundle):
        out, manifest = bundle
        for name in (
            "table1.txt",
            "fig1a.txt",
            "fig1b.txt",
            "fig1c.txt",
            "fig3a.txt",
            "fig3b_bars.txt",
            "fig4.txt",
            "fig5.txt",
            "sweep.csv",
            "INDEX.md",
        ):
            assert (out / name).exists(), name

    def test_index_lists_every_file(self, bundle):
        out, manifest = bundle
        index = (out / "INDEX.md").read_text()
        for name in manifest.files:
            if name != "INDEX.md":
                assert name in index

    def test_sweep_csv_parses(self, bundle):
        out, _ = bundle
        with open(out / "sweep.csv") as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == 2 * 2 * 2  # apps x controllers x tolerances
        row = rows[0]
        assert row["app"] in ("CG", "EP")
        float(row["slowdown_pct"])
        float(row["package_savings_pct"])

    def test_reports_render_content(self, bundle):
        out, _ = bundle
        assert "Table I" in (out / "table1.txt").read_text()
        assert "CG" in (out / "fig3b.txt").read_text()

    def test_zero_runs_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            export_all(str(tmp_path), runs=0)


class TestHeteroCLI:
    def test_hetero_subcommand(self, capsys):
        assert main(["hetero", "--budget", "300"]) == 0
        out = capsys.readouterr().out
        assert "coordinated" in out and "static 50/50" in out
