"""DUF and DUFP decision logic, driven by hand-crafted measurements."""

import pytest

from repro.config import ControllerConfig, yeti_socket_config
from repro.core.baselines import DefaultController
from repro.core.duf import DUF
from repro.core.dufp import DUFP, OVER_CAP_MARGIN
from repro.core.runtime import ControllerRuntime
from repro.hardware.processor import SimulatedProcessor
from repro.papi.highlevel import Measurement


def make(controller_cls, tol=0.10):
    """One socket + one controller, wired through the real runtime."""
    cfg = ControllerConfig(tolerated_slowdown=tol)
    proc = SimulatedProcessor(yeti_socket_config())
    ctrl = controller_cls(cfg) if controller_cls is not DefaultController else controller_cls()
    runtime = ControllerRuntime(processors=[proc], controllers=[ctrl], cfg=cfg)
    runtime.start()
    return ctrl, proc, runtime


def m(flops, bw, power=100.0, dram=25.0, dt=0.2):
    return Measurement(
        dt_s=dt,
        flops_per_s=flops,
        bytes_per_s=bw,
        package_power_w=power,
        dram_power_w=dram,
    )


def latch(proc):
    proc.rapl.step(0.01, 100.0, 20.0)


MEM = dict(flops=12e9, bw=100e9)  # OI 0.12: memory class
CPU = dict(flops=200e9, bw=50e9)  # OI 4: cpu class
HI_MEM = dict(flops=1.5e9, bw=100e9)  # OI 0.015: highly memory
HI_CPU = dict(flops=900e9, bw=6e9)  # OI 150: highly cpu


class TestDUF:
    def test_attach_pins_uncore_at_max(self):
        ctrl, proc, _ = make(DUF)
        assert proc.uncore.pinned
        assert proc.uncore.frequency_hz == pytest.approx(2.4e9)

    def test_steady_phase_decreases_uncore(self):
        ctrl, proc, _ = make(DUF)
        for i in range(5):
            ctrl.tick(0.2 * (i + 1), m(**MEM))
        # First tick is the initial phase change; then 4 decreases.
        assert proc.uncore.frequency_hz == pytest.approx(2.0e9)

    def test_flops_drop_increases_uncore(self):
        ctrl, proc, _ = make(DUF)
        ctrl.tick(0.2, m(**MEM))
        ctrl.tick(0.4, m(**MEM))  # decrease -> 2.3
        ctrl.tick(0.6, m(flops=9e9, bw=75e9))  # 25% drop > 10% tol
        assert proc.uncore.frequency_hz == pytest.approx(2.4e9)
        assert ctrl.ticks[-1].uncore_action == "increase"

    def test_bw_drop_alone_increases_uncore(self):
        ctrl, proc, _ = make(DUF)
        ctrl.tick(0.2, m(**CPU))
        ctrl.tick(0.4, m(**CPU))
        # FLOPS fine but bandwidth collapsed: DUF watches bw everywhere.
        ctrl.tick(0.6, m(flops=200e9, bw=20e9))
        assert ctrl.ticks[-1].uncore_action == "increase"

    def test_phase_change_resets_uncore(self):
        ctrl, proc, _ = make(DUF)
        for i in range(6):
            ctrl.tick(0.2 * (i + 1), m(**MEM))
        ctrl.tick(1.4, m(**CPU))  # memory -> cpu regime
        assert ctrl.ticks[-1].phase_change
        assert proc.uncore.frequency_hz == pytest.approx(2.4e9)

    def test_boundary_holds(self):
        cfg_tol = 0.10
        ctrl, proc, _ = make(DUF, tol=cfg_tol)
        ctrl.tick(0.2, m(**MEM))
        ctrl.tick(0.4, m(**MEM))
        before = proc.uncore.frequency_hz
        # Exactly at the 10 % line: hold.
        ctrl.tick(0.6, m(flops=12e9 * 0.9, bw=100e9 * 0.9))
        assert proc.uncore.frequency_hz == pytest.approx(before)
        assert ctrl.ticks[-1].uncore_action == "hold"

    def test_duf_never_touches_power_cap(self):
        ctrl, proc, _ = make(DUF)
        for i in range(10):
            ctrl.tick(0.2 * (i + 1), m(**MEM))
        latch(proc)
        assert proc.rapl.pl1.limit_w == pytest.approx(125.0)

    def test_tick_before_attach_raises(self):
        cfg = ControllerConfig()
        with pytest.raises(RuntimeError):
            DUF(cfg).tick(0.2, m(**MEM))


class TestDUFPCapLogic:
    def test_steady_memory_phase_decreases_cap(self):
        ctrl, proc, _ = make(DUFP)
        for i in range(4):
            ctrl.tick(0.2 * (i + 1), m(**MEM))
            latch(proc)
        assert proc.rapl.pl1.limit_w == pytest.approx(110.0)
        assert proc.rapl.pl2.limit_w == pytest.approx(110.0)

    def test_highly_memory_decreases_unconditionally(self):
        ctrl, proc, _ = make(DUFP)
        ctrl.tick(0.2, m(**HI_MEM))
        latch(proc)
        # Even a huge flops drop cannot stop the descent in OI < 0.02.
        ctrl.tick(0.4, m(flops=0.5e9, bw=100e9))
        latch(proc)
        assert ctrl.ticks[-1].cap_action == "decrease"

    def test_flops_drop_increases_cap(self):
        ctrl, proc, _ = make(DUFP)
        ctrl.tick(0.2, m(**MEM))
        for i in range(3):
            ctrl.tick(0.4 + 0.2 * i, m(**MEM))
            latch(proc)
        cap_before = proc.rapl.pl1.limit_w
        ctrl.tick(1.2, m(flops=9e9, bw=75e9))
        latch(proc)
        assert proc.rapl.pl1.limit_w == pytest.approx(cap_before + 5.0)

    def test_highly_cpu_violation_resets_cap(self):
        ctrl, proc, _ = make(DUFP)
        ctrl.tick(0.2, m(**HI_CPU))
        for i in range(3):
            ctrl.tick(0.4 + 0.2 * i, m(**HI_CPU))
            latch(proc)
        assert proc.rapl.pl1.limit_w < 125.0
        # 30 % drop in a highly-CPU phase: reset, not a 5 W increase.
        ctrl.tick(1.2, m(flops=600e9, bw=4e9))
        latch(proc)
        assert ctrl.ticks[-1].cap_action == "reset"
        assert proc.rapl.pl1.limit_w == pytest.approx(125.0)

    def test_highly_cpu_bw_violation_resets_cap(self):
        ctrl, proc, _ = make(DUFP)
        ctrl.tick(0.2, m(**HI_CPU))
        ctrl.tick(0.4, m(**HI_CPU))
        latch(proc)
        # FLOPS at the boundary but bandwidth collapsed.
        ctrl.tick(0.6, m(flops=900e9 * 0.9, bw=1e9))
        latch(proc)
        assert ctrl.ticks[-1].cap_action == "reset"

    def test_phase_change_resets_both(self):
        ctrl, proc, _ = make(DUFP)
        for i in range(5):
            ctrl.tick(0.2 * (i + 1), m(**MEM))
            latch(proc)
        assert proc.rapl.pl1.limit_w < 125.0
        ctrl.tick(1.2, m(**CPU))
        latch(proc)
        assert ctrl.ticks[-1].phase_change
        assert proc.rapl.pl1.limit_w == pytest.approx(125.0)
        assert proc.uncore.frequency_hz == pytest.approx(2.4e9)

    def test_power_over_cap_resets(self):
        ctrl, proc, _ = make(DUFP)
        ctrl.tick(0.2, m(**MEM))
        for i in range(3):
            ctrl.tick(0.4 + 0.2 * i, m(**MEM))
            latch(proc)
        cap = proc.rapl.pl1.limit_w
        over = cap * OVER_CAP_MARGIN + 1.0
        ctrl.tick(1.2, m(flops=12e9, bw=100e9, power=over))
        latch(proc)
        assert ctrl.ticks[-1].cap_action == "reset"
        assert proc.rapl.pl1.limit_w == pytest.approx(125.0)

    def test_small_overshoot_tolerated(self):
        ctrl, proc, _ = make(DUFP)
        ctrl.tick(0.2, m(**MEM))
        ctrl.tick(0.4, m(**MEM))
        latch(proc)
        cap = proc.rapl.pl1.limit_w
        ctrl.tick(0.6, m(flops=12e9, bw=100e9, power=cap * 1.02))
        assert ctrl.ticks[-1].cap_action != "reset"

    def test_post_reset_tightens_pl2_when_power_fits(self):
        ctrl, proc, _ = make(DUFP)
        ctrl.tick(0.2, m(**MEM))  # initial phase change -> reset
        latch(proc)
        assert proc.rapl.pl2.limit_w == pytest.approx(150.0)
        ctrl.tick(0.4, m(flops=12e9, bw=100e9, power=100.0))
        latch(proc)
        # PL2 tied down to PL1 because power < cap... unless the tick
        # also decreased; either way the constraints end up tied.
        assert proc.rapl.pl2.limit_w == pytest.approx(proc.rapl.pl1.limit_w)

    def test_futile_uncore_increase_raises_cap(self):
        ctrl, proc, _ = make(DUFP)
        ctrl.tick(0.2, m(**MEM))
        for i in range(3):
            ctrl.tick(0.4 + 0.2 * i, m(**MEM))
            latch(proc)
        cap_before = proc.rapl.pl1.limit_w
        # Drop: uncore increases (cap increases too, flops below tol).
        ctrl.tick(1.2, m(flops=9e9, bw=75e9))
        latch(proc)
        assert ctrl.engine.last_increase_flops is not None
        cap_mid = proc.rapl.pl1.limit_w
        # Next tick: flops did NOT improve, but are back within the
        # tolerance band relative to phase max? No: keep them low but
        # craft them within tolerance is impossible after a 25 % drop,
        # so use the interaction flag directly: flops unchanged.
        ctrl.tick(1.4, m(flops=9e9, bw=75e9))
        latch(proc)
        assert proc.rapl.pl1.limit_w >= cap_mid

    def test_cap_floor_respected(self):
        # Power tracks just under the floor so the over-cap reset never
        # fires and the descent can bottom out.
        ctrl, proc, _ = make(DUFP)
        for i in range(30):
            ctrl.tick(0.2 * (i + 1), m(**HI_MEM, power=66.0))
            latch(proc)
        assert proc.rapl.pl1.limit_w == pytest.approx(65.0)

    def test_over_cap_reset_limits_descent_under_sticky_power(self):
        # If consumption refuses to follow the cap down, the over-cap
        # rule keeps resetting: the cap sawtooths instead of pinning to
        # the floor.
        ctrl, proc, _ = make(DUFP)
        caps = []
        for i in range(30):
            ctrl.tick(0.2 * (i + 1), m(**HI_MEM, power=90.0))
            latch(proc)
            caps.append(proc.rapl.pl1.limit_w)
        assert min(caps) >= 80.0
        assert 125.0 in caps[1:]  # at least one reset happened


class TestDefaultController:
    def test_default_never_actuates(self):
        ctrl, proc, _ = make(DefaultController)
        for i in range(5):
            ctrl.tick(0.2 * (i + 1), m(**MEM))
        latch(proc)
        assert proc.rapl.pl1.limit_w == pytest.approx(125.0)
        assert not proc.uncore.pinned
        assert len(ctrl.ticks) == 5
