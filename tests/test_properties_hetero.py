"""Property-based tests on the CPU+GPU co-simulation engine.

Randomised hetero compositions — split policies, budgets, node shapes,
seeds and GPU fault plans drawn by hypothesis — check the invariants
any shared-budget run must preserve:

* every run finishes with finite times, energies and transfer seconds;
* the budget is conserved at every re-allocation: per-device
  allocations stay inside ``[floor, ceiling]`` and never sum above the
  shared budget;
* runs are deterministic: the same seed replays to an identical
  :class:`~repro.sim.hetero.HeteroResult`, fault draws included.

Hypothesis examples simulate full (short) co-runs, so the sweeps carry
the ``slow`` marker; a deterministic smoke case keeps tier-1 coverage
of every property.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import ControllerConfig, NoiseConfig
from repro.core.registry import make_spec, split_policy
from repro.hardware.gpu import GPUNodeConfig
from repro.sim.faults import FaultPlan
from repro.sim.hetero import HeteroEngine
from repro.workloads.catalog import build_application

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

POLICIES = ("hetero-static", "hetero-coord", "hetero-fair")

plans = st.sampled_from(
    [
        None,
        FaultPlan(gpu_cap_latch_fail_rate=0.2),
        FaultPlan(gpu_queue_stall_rate=0.3, gpu_stall_s=0.2),
        FaultPlan(cap_latch_fail_rate=0.1, gpu_cap_latch_fail_rate=0.1),
    ]
)

members = st.tuples(
    st.sampled_from(POLICIES),
    st.sampled_from((280.0, 350.0, 450.0)),  # budget
    st.sampled_from(("EP", "CG")),
    st.integers(min_value=1, max_value=2),  # gpu_count
    st.integers(min_value=1, max_value=3),  # kernel_count
    st.integers(min_value=0, max_value=10_000),  # seed
    plans,
)


def _build(policy, budget, app, gpu_count, kernel_count, seed, plan):
    cfg = ControllerConfig(tolerated_slowdown=0.10)
    node = GPUNodeConfig(
        gpu_count=gpu_count,
        kernel_count=kernel_count,
        kernel_flops=1.2e12,
        kernel_bytes=0.15e12,
    )
    return HeteroEngine(
        application=build_application(app, scale=0.1),
        node=node,
        policy=split_policy(make_spec(policy, budget_w=budget), cfg),
        cfg=cfg,
        seed=seed,
        noise=NoiseConfig(),
        faults=plan,
    )


def _signature(result):
    return (
        result.cpu_finish_s,
        result.gpu_finish_times_s,
        result.cpu_energy_j,
        result.gpu_energies_j,
        result.transfer_s,
        tuple(result.device_allocations),
        tuple(
            (e.time_s, e.socket_id, e.channel, e.detail)
            for e in result.fault_events
        ),
    )


def check_invariants(member, result):
    policy, budget, _, gpu_count, _, _, _ = member
    assert math.isfinite(result.cpu_finish_s) and result.cpu_finish_s > 0
    # A GPU left without kernels (fewer kernels than devices) finishes
    # immediately at t = 0; busy devices finish strictly later.
    assert all(math.isfinite(t) and t >= 0 for t in result.gpu_finish_times_s)
    assert result.gpu_finish_s > 0
    assert len(result.gpu_finish_times_s) == gpu_count
    assert result.cpu_energy_j > 0 and result.gpu_energy_j > 0
    assert math.isfinite(result.transfer_s) and result.transfer_s >= 0
    cfg = ControllerConfig()
    floors = [cfg.cap_floor_w] + [100.0] * gpu_count
    ceilings = [125.0] + [250.0] * gpu_count
    assert result.device_allocations
    for _, allocs in result.device_allocations:
        assert len(allocs) == 1 + gpu_count
        assert sum(allocs) <= budget + 1e-6
        for a, lo, hi in zip(allocs, floors, ceilings):
            assert lo - 1e-9 <= a <= hi + 1e-9
    if policy in ("hetero-static", "hetero-fair"):
        assert len(result.device_allocations) == 1  # static: decided once


@pytest.mark.slow
@given(m=members)
@SLOW
def test_random_hetero_runs_finish_conserving_the_budget(m):
    check_invariants(m, _build(*m).run())


@pytest.mark.slow
@given(m=members)
@SLOW
def test_same_seed_replays_identically(m):
    assert _signature(_build(*m).run()) == _signature(_build(*m).run())


def test_smoke_properties_deterministic():
    """Tier-1 pin of every property on fixed mixed members."""
    comp = [
        ("hetero-coord", 350.0, "CG", 2, 3, 11, FaultPlan(gpu_queue_stall_rate=0.3)),
        ("hetero-static", 280.0, "EP", 1, 2, 22, None),
        ("hetero-fair", 450.0, "EP", 2, 1, 33, FaultPlan(gpu_cap_latch_fail_rate=0.2)),
    ]
    for m in comp:
        result = _build(*m).run()
        check_invariants(m, result)
        assert _signature(result) == _signature(_build(*m).run())
