"""Result export: CSV traces and JSON summaries."""

import csv
import io
import json

import pytest

from repro.config import NoiseConfig
from repro.core.baselines import DefaultController
from repro.errors import SimulationError
from repro.sim.export import (
    TRACE_FIELDS,
    run_summary,
    trace_csv_string,
    trace_to_csv,
    write_summary_json,
    write_trace_csv,
)
from repro.sim.run import run_application
from repro.workloads.application import Application
from repro.workloads.phase import phase_from_duration as pfd


QUIET = NoiseConfig(duration_jitter=0.0, counter_noise=0.0, power_noise=0.0)


@pytest.fixture(scope="module")
def result():
    app = Application(
        "tiny",
        phases=(
            pfd("a", 0.3, oi=4.0, fpc=2.0),
            pfd("b", 0.2, oi=0.1, fpc=1.0),
        ),
    )
    return run_application(app, DefaultController, noise=QUIET, seed=1)


class TestTraceCSV:
    def test_header(self, result):
        text = trace_csv_string(result)
        header = text.splitlines()[0].split(",")
        assert tuple(header) == TRACE_FIELDS

    def test_row_count_matches_trace(self, result):
        text = trace_csv_string(result)
        n_rows = len(text.strip().splitlines()) - 1
        assert n_rows == len(result.socket(0).trace)

    def test_values_parse_back(self, result):
        reader = csv.DictReader(io.StringIO(trace_csv_string(result)))
        rows = list(reader)
        first = rows[0]
        assert float(first["time_s"]) == pytest.approx(0.01)
        assert float(first["core_freq_hz"]) == pytest.approx(2.8e9)
        assert 0 < float(first["package_power_w"]) < 160

    def test_times_monotone(self, result):
        reader = csv.DictReader(io.StringIO(trace_csv_string(result)))
        times = [float(r["time_s"]) for r in reader]
        assert times == sorted(times)

    def test_write_to_file(self, result, tmp_path):
        path = tmp_path / "trace.csv"
        rows = write_trace_csv(result, str(path))
        assert rows > 0
        assert path.read_text().startswith("time_s,")

    def test_traceless_run_rejected(self):
        app = Application("t", phases=(pfd("a", 0.1, oi=1.0, fpc=1.0),))
        run = run_application(
            app, DefaultController, noise=QUIET, record_trace=False
        )
        with pytest.raises(SimulationError):
            trace_csv_string(run)

    def test_returned_count_matches_stream(self, result):
        buf = io.StringIO()
        count = trace_to_csv(result.socket(0), buf)
        assert count == len(buf.getvalue().strip().splitlines()) - 1


class TestSummaryJSON:
    def test_summary_fields(self, result):
        s = run_summary(result)
        assert s["application"] == "tiny"
        assert s["controller"] == "default"
        assert s["execution_time_s"] == pytest.approx(result.execution_time_s)
        assert s["total_energy_j"] == pytest.approx(result.total_energy_j)

    def test_summary_phases(self, result):
        s = run_summary(result)
        names = [p["name"] for p in s["sockets"][0]["phases"]]
        assert names == ["a", "b"]

    def test_summary_is_json_serialisable(self, result):
        text = json.dumps(run_summary(result))
        assert "tiny" in text

    def test_write_to_file(self, result, tmp_path):
        path = tmp_path / "summary.json"
        write_summary_json(result, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["application"] == "tiny"
        assert loaded["sockets"][0]["avg_core_freq_hz"] > 1e9
