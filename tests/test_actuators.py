"""Cap and uncore actuators: stepping rules and constraint handling."""

import pytest

from repro.config import ControllerConfig, yeti_socket_config
from repro.core.capping import CapActuator
from repro.core.uncore_actuator import UncoreActuator
from repro.errors import ControllerError
from repro.hardware.processor import SimulatedProcessor
from repro.interfaces.msr_tools import MSRTools
from repro.interfaces.powercap import PowercapTree


@pytest.fixture
def proc():
    return SimulatedProcessor(yeti_socket_config())


@pytest.fixture
def cap(proc):
    zone = PowercapTree([proc.rapl]).package_zone(0)
    return CapActuator(zone, ControllerConfig()), proc


@pytest.fixture
def uncore(proc):
    return (
        UncoreActuator(MSRTools(proc.msrs), proc.config.uncore, ControllerConfig()),
        proc,
    )


def latch(proc):
    """Advance past the RAPL actuation delay so pending limits apply."""
    proc.rapl.step(0.01, 100.0, 20.0)


class TestCapDecrease:
    def test_decrease_steps_5w(self, cap):
        actuator, proc = cap
        assert actuator.decrease()
        latch(proc)
        assert actuator.cap_w == pytest.approx(120.0)

    def test_decrease_ties_both_constraints(self, cap):
        actuator, proc = cap
        actuator.decrease()
        latch(proc)
        assert actuator.short_term_w == pytest.approx(actuator.cap_w)

    def test_decrease_floors_at_65(self, cap):
        actuator, proc = cap
        for _ in range(30):
            actuator.decrease()
            latch(proc)
        assert actuator.cap_w == pytest.approx(65.0)
        assert actuator.at_floor
        assert actuator.decrease() is False


class TestCapIncrease:
    def test_increase_at_default_is_noop(self, cap):
        actuator, _ = cap
        assert actuator.at_default
        assert actuator.increase() is False

    def test_increase_steps_back_up(self, cap):
        actuator, proc = cap
        for _ in range(4):
            actuator.decrease()
            latch(proc)
        assert actuator.increase()
        latch(proc)
        assert actuator.cap_w == pytest.approx(110.0)
        assert actuator.short_term_w == pytest.approx(110.0)

    def test_increase_reaching_default_resets(self, cap):
        # Paper: "if the value reached by the long term constraint is
        # equal to its default value, the power cap is reset" — both
        # constraints return to their defaults (125/150).
        actuator, proc = cap
        actuator.decrease()
        latch(proc)
        assert actuator.increase()
        latch(proc)
        assert actuator.cap_w == pytest.approx(125.0)
        assert actuator.short_term_w == pytest.approx(150.0)
        assert actuator.just_reset


class TestCapReset:
    def test_reset_restores_defaults(self, cap):
        actuator, proc = cap
        for _ in range(5):
            actuator.decrease()
            latch(proc)
        actuator.reset()
        latch(proc)
        assert actuator.cap_w == pytest.approx(125.0)
        assert actuator.short_term_w == pytest.approx(150.0)

    def test_after_reset_tighten_when_power_fits(self, cap):
        actuator, proc = cap
        actuator.reset()
        latch(proc)
        assert actuator.after_reset_tighten(package_power_w=100.0) is True
        latch(proc)
        assert actuator.short_term_w == pytest.approx(125.0)

    def test_after_reset_no_tighten_when_power_high(self, cap):
        actuator, proc = cap
        actuator.reset()
        latch(proc)
        assert actuator.after_reset_tighten(package_power_w=130.0) is False
        latch(proc)
        assert actuator.short_term_w == pytest.approx(150.0)

    def test_tighten_only_fires_once(self, cap):
        actuator, proc = cap
        actuator.reset()
        latch(proc)
        actuator.after_reset_tighten(100.0)
        assert actuator.after_reset_tighten(100.0) is False

    def test_decrease_clears_just_reset(self, cap):
        actuator, proc = cap
        actuator.reset()
        latch(proc)
        actuator.decrease()
        assert actuator.just_reset is False

    def test_dram_zone_rejected(self, proc):
        dram = PowercapTree([proc.rapl]).dram_zone(0)
        with pytest.raises(ControllerError):
            CapActuator(dram, ControllerConfig())


class TestUncoreActuator:
    def test_starts_wherever_hardware_is(self, uncore):
        actuator, _ = uncore
        assert actuator.pinned_freq_hz == pytest.approx(2.4e9)

    def test_decrease_steps_100mhz(self, uncore):
        actuator, _ = uncore
        actuator.reset()
        assert actuator.decrease()
        assert actuator.pinned_freq_hz == pytest.approx(2.3e9)

    def test_decrease_floors_at_min(self, uncore):
        actuator, _ = uncore
        actuator.reset()
        for _ in range(20):
            actuator.decrease()
        assert actuator.pinned_freq_hz == pytest.approx(1.2e9)
        assert actuator.at_min
        assert actuator.decrease() is False

    def test_increase_ceils_at_max(self, uncore):
        actuator, _ = uncore
        actuator.reset()
        assert actuator.at_max
        assert actuator.increase() is False

    def test_reset_pins_max(self, uncore):
        actuator, _ = uncore
        actuator.reset()
        actuator.decrease()
        actuator.decrease()
        actuator.reset()
        assert actuator.pinned_freq_hz == pytest.approx(2.4e9)

    def test_pin_goes_through_msr(self, uncore):
        actuator, proc = uncore
        actuator.reset()
        actuator.decrease()
        # The behavioural model observed the MSR write.
        assert proc.uncore.pinned
        assert proc.uncore.frequency_hz == pytest.approx(2.3e9)

    def test_measured_freq_reads_status_msr(self, uncore):
        actuator, proc = uncore
        actuator.reset()
        proc.step(0.01, None)
        assert actuator.measured_freq_hz == pytest.approx(2.4e9)

    def test_ensure_reset_retries_when_low(self, uncore):
        actuator, proc = uncore
        # Simulate the lag: hardware still below max after a reset.
        proc.uncore.pin(2.0e9)
        assert actuator.ensure_reset() is True
        assert proc.uncore.frequency_hz == pytest.approx(2.4e9)

    def test_ensure_reset_noop_at_max(self, uncore):
        actuator, proc = uncore
        actuator.reset()
        assert actuator.ensure_reset() is False

    def test_release_reopens_window(self, uncore):
        actuator, proc = uncore
        actuator.reset()
        actuator.release()
        assert not proc.uncore.pinned
