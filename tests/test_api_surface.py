"""The public API surface: everything exported actually exists."""

import importlib

import pytest

import repro


PUBLIC_MODULES = [
    "repro.config",
    "repro.errors",
    "repro.units",
    "repro.hardware",
    "repro.hardware.msr",
    "repro.hardware.dvfs",
    "repro.hardware.uncore",
    "repro.hardware.rapl",
    "repro.hardware.power",
    "repro.hardware.memory",
    "repro.hardware.perf",
    "repro.hardware.processor",
    "repro.hardware.thermal",
    "repro.hardware.gpu",
    "repro.interfaces",
    "repro.papi",
    "repro.workloads",
    "repro.core",
    "repro.cluster",
    "repro.sim",
    "repro.sim.faults",
    "repro.sim.hetero",
    "repro.experiments",
    "repro.analysis",
    "repro.cli",
]


class TestModules:
    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_module_imports(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_resolves(self):
        for symbol in repro.__all__:
            assert hasattr(repro, symbol)

    def test_quickstart_symbols(self):
        # The README's quickstart names must stay importable.
        from repro import (  # noqa: F401
            ControllerConfig,
            DUFP,
            DefaultController,
            build_application,
            run_application,
        )

    def test_every_public_symbol_has_a_docstring(self):
        undocumented = [
            s
            for s in repro.__all__
            if s != "__version__"
            and callable(getattr(repro, s))
            and not (getattr(repro, s).__doc__ or "").strip()
        ]
        assert not undocumented, f"missing docstrings: {undocumented}"


class TestErrorsHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_catching_the_base_catches_everything(self):
        from repro.errors import MSRError, ReproError, WorkloadError

        for exc_type in (MSRError, WorkloadError):
            with pytest.raises(ReproError):
                raise exc_type("x")
