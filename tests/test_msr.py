"""MSR register file: bitfields, window codec, access semantics."""

import pytest

from repro.errors import MSRError, MSRPermissionError
from repro.hardware.msr import (
    MSR,
    MSRFile,
    decode_rapl_window,
    encode_rapl_window,
    get_bits,
    set_bits,
)


class TestBitfields:
    def test_get_low_bits(self):
        assert get_bits(0b1011, 1, 0) == 0b11

    def test_get_high_bits(self):
        assert get_bits(0xFF00, 15, 8) == 0xFF

    def test_get_single_bit(self):
        assert get_bits(1 << 63, 63, 63) == 1

    def test_set_bits_replaces_field(self):
        assert set_bits(0xFFFF, 7, 4, 0) == 0xFF0F

    def test_set_bits_keeps_others(self):
        v = set_bits(0, 14, 8, 0x7F)
        assert get_bits(v, 14, 8) == 0x7F
        assert get_bits(v, 7, 0) == 0

    def test_set_bits_top_of_register(self):
        v = set_bits(0, 63, 63, 1)
        assert v == 1 << 63

    def test_roundtrip_many_fields(self):
        v = 0
        v = set_bits(v, 6, 0, 24)
        v = set_bits(v, 14, 8, 12)
        v = set_bits(v, 46, 32, 880)
        assert get_bits(v, 6, 0) == 24
        assert get_bits(v, 14, 8) == 12
        assert get_bits(v, 46, 32) == 880

    def test_invalid_range_rejected(self):
        with pytest.raises(MSRError):
            get_bits(0, 3, 5)
        with pytest.raises(MSRError):
            get_bits(0, 64, 0)

    def test_oversized_field_value_rejected(self):
        with pytest.raises(MSRError):
            set_bits(0, 3, 0, 16)


class TestRAPLWindowCodec:
    TIME_UNIT = 2.0**-10  # Skylake default ~976 us

    def test_one_second_roundtrip(self):
        field = encode_rapl_window(1.0, self.TIME_UNIT)
        assert decode_rapl_window(field, self.TIME_UNIT) == pytest.approx(1.0, rel=0.15)

    def test_ten_ms_roundtrip(self):
        field = encode_rapl_window(0.01, self.TIME_UNIT)
        assert decode_rapl_window(field, self.TIME_UNIT) == pytest.approx(0.01, rel=0.25)

    def test_decode_formula(self):
        # Y=0, Z=0 -> exactly one time unit.
        assert decode_rapl_window(0, self.TIME_UNIT) == pytest.approx(self.TIME_UNIT)

    def test_decode_z_fraction(self):
        # Z=1 adds a quarter: 2^0 * 1.25 * unit.
        field = (1 << 5) | 0
        assert decode_rapl_window(field, self.TIME_UNIT) == pytest.approx(
            1.25 * self.TIME_UNIT
        )

    def test_field_is_7_bits(self):
        with pytest.raises(MSRError):
            decode_rapl_window(0x80, self.TIME_UNIT)

    def test_encode_rejects_nonpositive(self):
        with pytest.raises(MSRError):
            encode_rapl_window(0.0, self.TIME_UNIT)

    def test_monotone_windows(self):
        w1 = decode_rapl_window(
            encode_rapl_window(0.01, self.TIME_UNIT), self.TIME_UNIT
        )
        w2 = decode_rapl_window(
            encode_rapl_window(1.0, self.TIME_UNIT), self.TIME_UNIT
        )
        assert w1 < w2


class TestMSRFile:
    def test_define_read_write(self):
        f = MSRFile()
        f.define(0x10, initial=42)
        assert f.read(0x10) == 42
        f.write(0x10, 99)
        assert f.read(0x10) == 99

    def test_unknown_address_faults_on_read(self):
        with pytest.raises(MSRError, match="#GP"):
            MSRFile().read(0xDEAD)

    def test_unknown_address_faults_on_write(self):
        with pytest.raises(MSRError, match="#GP"):
            MSRFile().write(0xDEAD, 1)

    def test_double_define_rejected(self):
        f = MSRFile()
        f.define(0x10)
        with pytest.raises(MSRError):
            f.define(0x10)

    def test_readonly_register(self):
        f = MSRFile()
        f.define(0x611, writable=False)
        with pytest.raises(MSRPermissionError):
            f.write(0x611, 1)

    def test_write_hook_invoked(self):
        seen = []
        f = MSRFile()
        f.define(0x620, write_hook=seen.append)
        f.write(0x620, 0x1818)
        assert seen == [0x1818]

    def test_read_hook_supplies_value(self):
        f = MSRFile()
        f.define(0xE8, read_hook=lambda: 12345)
        assert f.read(0xE8) == 12345

    def test_poke_bypasses_hooks(self):
        seen = []
        f = MSRFile()
        f.define(0x10, write_hook=seen.append)
        f.poke(0x10, 7)
        assert f.read(0x10) == 7
        assert seen == []

    def test_value_must_fit_64_bits(self):
        f = MSRFile()
        f.define(0x10)
        with pytest.raises(MSRError):
            f.write(0x10, 1 << 64)

    def test_defined(self):
        f = MSRFile()
        f.define(0x10)
        assert f.defined(0x10)
        assert not f.defined(0x11)

    def test_well_known_addresses(self):
        assert MSR.MSR_UNCORE_RATIO_LIMIT == 0x620
        assert MSR.MSR_PKG_POWER_LIMIT == 0x610
        assert MSR.MSR_PKG_ENERGY_STATUS == 0x611
        assert MSR.MSR_RAPL_POWER_UNIT == 0x606
        assert MSR.MSR_DRAM_ENERGY_STATUS == 0x619
