"""Configuration validation and the yeti presets."""

from dataclasses import replace

import pytest

from repro.config import (
    ControllerConfig,
    CoreConfig,
    EngineConfig,
    MachineConfig,
    MemoryConfig,
    NoiseConfig,
    PowerModelConfig,
    RAPLConfig,
    SocketConfig,
    UncoreConfig,
    with_slowdown,
    yeti_machine_config,
    yeti_socket_config,
)
from repro.errors import ConfigurationError


class TestCoreConfig:
    def test_default_is_valid(self):
        CoreConfig().validate()

    def test_table1_frequencies(self):
        cfg = CoreConfig()
        assert cfg.count == 16
        assert cfg.max_freq_hz == pytest.approx(2.8e9)

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(CoreConfig(), count=0).validate()

    def test_inverted_freqs_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(CoreConfig(), min_freq_hz=3e9).validate()

    def test_non_positive_step_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(CoreConfig(), step_hz=0.0).validate()

    def test_voltage_endpoints(self):
        cfg = CoreConfig()
        assert cfg.voltage_at(cfg.min_freq_hz) == pytest.approx(cfg.v_min)
        assert cfg.voltage_at(cfg.max_freq_hz) == pytest.approx(cfg.v_max)

    def test_voltage_clamps_outside_range(self):
        cfg = CoreConfig()
        assert cfg.voltage_at(0.1e9) == pytest.approx(cfg.v_min)
        assert cfg.voltage_at(9e9) == pytest.approx(cfg.v_max)

    def test_voltage_monotonic(self):
        cfg = CoreConfig()
        freqs = [1.0e9, 1.5e9, 2.0e9, 2.5e9, 2.8e9]
        volts = [cfg.voltage_at(f) for f in freqs]
        assert volts == sorted(volts)


class TestUncoreConfig:
    def test_table1_range(self):
        cfg = UncoreConfig()
        assert cfg.min_freq_hz == pytest.approx(1.2e9)
        assert cfg.max_freq_hz == pytest.approx(2.4e9)

    def test_inverted_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(UncoreConfig(), min_freq_hz=3e9).validate()

    def test_voltage_midpoint(self):
        cfg = UncoreConfig()
        mid = (cfg.min_freq_hz + cfg.max_freq_hz) / 2
        assert cfg.v_min < cfg.voltage_at(mid) < cfg.v_max


class TestRAPLConfig:
    def test_table1_limits(self):
        cfg = RAPLConfig()
        assert cfg.pl1_default_w == 125.0
        assert cfg.pl2_default_w == 150.0

    def test_pl1_above_pl2_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(RAPLConfig(), pl1_default_w=200.0).validate()

    def test_bad_counter_width_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(RAPLConfig(), counter_bits=48).validate()

    def test_min_limit_above_pl1_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(RAPLConfig(), min_limit_w=130.0).validate()

    def test_energy_unit_is_2_pow_neg14(self):
        assert RAPLConfig().energy_unit_j == pytest.approx(2.0**-14)


class TestPowerModelConfig:
    def test_default_valid(self):
        PowerModelConfig().validate()

    def test_negative_static_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(PowerModelConfig(), static_w=-1.0).validate()

    def test_idle_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            replace(PowerModelConfig(), core_idle_fraction=1.5).validate()


class TestMemoryConfig:
    def test_default_valid(self):
        MemoryConfig().validate()

    def test_nonpositive_peak_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(MemoryConfig(), peak_bw_bytes=0.0).validate()

    def test_core_bw_covers_peak_at_min_freq(self):
        # The 65 W floor argument: 16 cores at 1.0 GHz must still
        # (barely) saturate the memory channels.
        mem = MemoryConfig()
        core = CoreConfig()
        assert mem.bw_per_core_hz * core.count * core.min_freq_hz >= mem.peak_bw_bytes


class TestControllerConfig:
    def test_paper_defaults(self):
        cfg = ControllerConfig()
        assert cfg.interval_s == pytest.approx(0.2)
        assert cfg.cap_step_w == 5.0
        assert cfg.cap_floor_w == 65.0
        assert cfg.uncore_step_hz == pytest.approx(1e8)
        assert cfg.oi_highly_memory == pytest.approx(0.02)
        assert cfg.oi_highly_cpu == pytest.approx(100.0)

    def test_slowdown_bounds(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(tolerated_slowdown=1.0).validate()
        with pytest.raises(ConfigurationError):
            ControllerConfig(tolerated_slowdown=-0.1).validate()

    def test_oi_threshold_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            replace(ControllerConfig(), oi_highly_memory=2.0).validate()

    def test_phase_jump_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            replace(ControllerConfig(), phase_flops_jump=0.9).validate()

    def test_with_slowdown(self):
        cfg = with_slowdown(ControllerConfig(), 10.0)
        assert cfg.tolerated_slowdown == pytest.approx(0.10)

    def test_with_slowdown_preserves_other_fields(self):
        base = replace(ControllerConfig(), cap_step_w=10.0)
        assert with_slowdown(base, 20.0).cap_step_w == 10.0


class TestMachineConfig:
    def test_yeti_machine(self):
        cfg = yeti_machine_config()
        assert cfg.socket_count == 4
        assert cfg.total_cores == 64

    def test_socket_preset(self):
        yeti_socket_config().validate()

    def test_zero_sockets_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(socket_count=0).validate()


class TestNoiseAndEngine:
    def test_noise_default_valid(self):
        NoiseConfig().validate()

    def test_excess_noise_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(NoiseConfig(), counter_noise=0.5).validate()

    def test_engine_default_valid(self):
        EngineConfig().validate()

    def test_engine_nonpositive_dt_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(dt_s=0.0).validate()


class TestSocketConfigComposition:
    def test_validate_cascades(self):
        bad = replace(
            SocketConfig(), rapl=replace(RAPLConfig(), pl1_default_w=500.0)
        )
        with pytest.raises(ConfigurationError):
            bad.validate()
