"""GPU model and CPU+GPU shared-budget co-simulation."""

import pytest

from repro.config import ControllerConfig
from repro.errors import ConfigurationError, HardwareError, SimulationError
from repro.hardware.gpu import GPUConfig, GPUKernel, SimulatedGPU
from repro.sim.hetero import HeteroEngine
from repro.workloads.catalog import build_application


def balanced_kernels(n=8, flops_each=6e12):
    """DGEMM-ish kernels at ~0.5 compute utilisation (192 W at speed)."""
    return [
        GPUKernel(f"k[{i}]", flops=flops_each, bytes=flops_each / 8.0)
        for i in range(n)
    ]


class TestGPUConfig:
    def test_default_valid(self):
        GPUConfig().validate()

    def test_bad_clock_range(self):
        with pytest.raises(ConfigurationError):
            GPUConfig(min_freq_hz=2e9, max_freq_hz=1e9).validate()

    def test_kernel_validation(self):
        with pytest.raises(ConfigurationError):
            GPUKernel("k", flops=0.0, bytes=0.0)
        with pytest.raises(ConfigurationError):
            GPUKernel("k", flops=-1.0, bytes=1.0)


class TestGPUDevice:
    def test_power_limit_controls(self):
        gpu = SimulatedGPU()
        gpu.set_power_limit(150.0)
        assert gpu.power_limit_w == 150.0
        gpu.reset_power_limit()
        assert gpu.power_limit_w == 250.0

    def test_power_limit_bounds(self):
        gpu = SimulatedGPU()
        with pytest.raises(HardwareError):
            gpu.set_power_limit(50.0)

    def test_full_speed_under_default_limit(self):
        gpu = SimulatedGPU()
        kernel = GPUKernel("k", flops=1e12, bytes=1e12 / 8)
        gpu.step(0.01, kernel)
        assert gpu.state.freq_hz == pytest.approx(1.38e9, rel=0.02)

    def test_limit_throttles_clock(self):
        gpu = SimulatedGPU()
        kernel = GPUKernel("k", flops=1e13, bytes=1e10)  # compute-hungry
        gpu.step(0.01, kernel)
        fast = gpu.state.freq_hz
        gpu.set_power_limit(150.0)
        gpu.step(0.01, kernel)
        assert gpu.state.freq_hz < fast

    def test_power_respects_limit(self):
        gpu = SimulatedGPU()
        gpu.set_power_limit(150.0)
        gpu.step(0.01, GPUKernel("k", flops=1e13, bytes=1e10))
        assert gpu.state.power_w <= 150.0 + 1e-9

    def test_energy_integrates(self):
        gpu = SimulatedGPU()
        kernel = GPUKernel("k", flops=1e12, bytes=1e11)
        for _ in range(100):
            gpu.step(0.01, kernel)
        assert gpu.energy_j == pytest.approx(gpu.state.power_w * 1.0, rel=0.05)

    def test_memory_bound_kernel_insensitive_to_limit(self):
        gpu = SimulatedGPU()
        kernel = GPUKernel("k", flops=1e10, bytes=9e11)  # HBM-bound
        t_full = gpu.kernel_time(kernel, 1.38e9)
        t_slow = gpu.kernel_time(kernel, 0.8e9)
        assert t_slow == pytest.approx(t_full, rel=0.05)

    def test_idle_draws_static_ish_power(self):
        gpu = SimulatedGPU()
        gpu.step(0.01, None)
        assert gpu.state.power_w < 100.0

    def test_state_before_step_raises(self):
        with pytest.raises(SimulationError):
            _ = SimulatedGPU().state


class TestHeteroEngine:
    @pytest.fixture(scope="class")
    def scenario(self):
        """Feasible budget: CG needs ~100 W, the GPU ~192 W; 300 W total."""
        app = build_application("CG", scale=0.5)
        kernels = balanced_kernels()
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        static = HeteroEngine(
            application=app,
            kernels=kernels,
            total_budget_w=300.0,
            cfg=cfg,
            coordinated=False,
        ).run()
        coordinated = HeteroEngine(
            application=app,
            kernels=kernels,
            total_budget_w=300.0,
            cfg=cfg,
            coordinated=True,
        ).run()
        return static, coordinated

    def test_budget_always_respected(self, scenario):
        _, coordinated = scenario
        for _, cpu_w, gpu_w in coordinated.allocations:
            assert cpu_w + gpu_w <= 300.0 + 1e-6

    def test_coordination_moves_watts_to_the_gpu(self, scenario):
        static, coordinated = scenario
        final_static = static.allocations[-1]
        final_coord = coordinated.allocations[-1]
        assert final_coord[2] > final_static[2]

    def test_gpu_faster_when_coordinated(self, scenario):
        static, coordinated = scenario
        assert coordinated.gpu_finish_s < static.gpu_finish_s

    def test_coordination_balances_slowdowns(self, scenario):
        # The coordinator's objective is the paper's: meet both
        # devices' needs.  The worst relative slowdown across the two
        # devices must improve over the naive equal split (which
        # starves the GPU while the CPU idles below its tolerance).
        static, coordinated = scenario
        app = build_application("CG", scale=0.5)
        cpu_nominal = app.nominal_duration()
        gpu_nominal = 8.0 * 1.0  # eight ~1 s kernels at full speed

        def worst(result):
            return max(
                result.cpu_finish_s / cpu_nominal,
                result.gpu_finish_s / gpu_nominal,
            )

        assert worst(coordinated) < worst(static)

    def test_infeasible_budget_rejected(self):
        with pytest.raises(SimulationError):
            HeteroEngine(
                application=build_application("CG", scale=0.2),
                kernels=balanced_kernels(2),
                total_budget_w=100.0,
            )

    def test_empty_kernel_queue_rejected(self):
        with pytest.raises(SimulationError):
            HeteroEngine(
                application=build_application("CG", scale=0.2),
                kernels=[],
                total_budget_w=300.0,
            )


class TestHeteroDetails:
    def test_static_mode_allocates_once(self):
        from repro.config import ControllerConfig

        result = HeteroEngine(
            application=build_application("EP", scale=0.1),
            kernels=balanced_kernels(2, flops_each=2e12),
            total_budget_w=300.0,
            cfg=ControllerConfig(tolerated_slowdown=0.10),
            coordinated=False,
        ).run()
        assert len(result.allocations) == 1

    def test_result_accessors(self):
        from repro.config import ControllerConfig

        result = HeteroEngine(
            application=build_application("EP", scale=0.1),
            kernels=balanced_kernels(2, flops_each=2e12),
            total_budget_w=300.0,
            cfg=ControllerConfig(tolerated_slowdown=0.10),
        ).run()
        assert result.makespan_s == max(result.cpu_finish_s, result.gpu_finish_s)
        assert result.total_energy_j == pytest.approx(
            result.cpu_energy_j + result.gpu_energy_j
        )
        assert result.cpu_energy_j > 0 and result.gpu_energy_j > 0
