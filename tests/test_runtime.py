"""Controller runtime: per-socket instances, tick scheduling."""

import pytest

from repro.config import ControllerConfig, yeti_socket_config
from repro.core.baselines import DefaultController
from repro.core.runtime import ControllerRuntime
from repro.errors import ControllerError
from repro.hardware.processor import PhaseWork, SimulatedProcessor


WORK = PhaseWork(flops=1e12, bytes=1e12, fpc=2.0)


def build(n_sockets=1, interval=0.2):
    cfg = ControllerConfig(interval_s=interval)
    procs = [
        SimulatedProcessor(yeti_socket_config(), socket_id=i)
        for i in range(n_sockets)
    ]
    ctrls = [DefaultController() for _ in range(n_sockets)]
    return ControllerRuntime(processors=procs, controllers=ctrls, cfg=cfg), procs, ctrls


class TestConstruction:
    def test_controller_count_must_match(self):
        cfg = ControllerConfig()
        procs = [SimulatedProcessor(yeti_socket_config())]
        with pytest.raises(ControllerError):
            ControllerRuntime(
                processors=procs,
                controllers=[DefaultController(), DefaultController()],
                cfg=cfg,
            )

    def test_needs_at_least_one_socket(self):
        with pytest.raises(ControllerError):
            ControllerRuntime(processors=[], controllers=[], cfg=ControllerConfig())

    def test_contexts_are_per_socket(self):
        runtime, procs, _ = build(n_sockets=3)
        assert len(runtime.contexts) == 3
        ids = {ctx.powercap.name for ctx in runtime.contexts}
        assert ids == {"intel-rapl:0", "intel-rapl:1", "intel-rapl:2"}


class TestTicking:
    def test_tick_fires_at_interval(self):
        runtime, procs, ctrls = build()
        runtime.start()
        now = 0.0
        for _ in range(25):  # 25 x 10 ms = 0.25 s
            procs[0].step(0.01, WORK)
            now += 0.01
            runtime.on_time(now)
        assert len(ctrls[0].ticks) == 1

    def test_tick_rate_is_one_per_interval(self):
        runtime, procs, ctrls = build()
        runtime.start()
        now = 0.0
        for _ in range(100):
            procs[0].step(0.01, WORK)
            now += 0.01
            runtime.on_time(now)
        assert len(ctrls[0].ticks) == 5

    def test_no_tick_before_interval(self):
        runtime, procs, ctrls = build()
        runtime.start()
        procs[0].step(0.01, WORK)
        assert runtime.on_time(0.01) is False

    def test_tick_requires_start(self):
        runtime, _, _ = build()
        with pytest.raises(ControllerError):
            runtime.on_time(0.2)

    def test_double_start_rejected(self):
        runtime, _, _ = build()
        runtime.start()
        with pytest.raises(ControllerError):
            runtime.start()

    def test_all_sockets_tick(self):
        runtime, procs, ctrls = build(n_sockets=2)
        runtime.start()
        now = 0.0
        for _ in range(20):
            for p in procs:
                p.step(0.01, WORK)
            now += 0.01
            runtime.on_time(now)
        assert len(ctrls[0].ticks) == 1
        assert len(ctrls[1].ticks) == 1

    def test_measurements_reflect_execution(self):
        runtime, procs, ctrls = build()
        runtime.start()
        now = 0.0
        for _ in range(20):
            procs[0].step(0.01, WORK)
            now += 0.01
            runtime.on_time(now)
        # DefaultController logs cap/uncore; the measurement drove it
        # without error, and the tick time matches.
        assert ctrls[0].ticks[0].time_s == pytest.approx(0.2)
