"""Named application suites."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.catalog import application_names
from repro.workloads.suites import SUITES, suite, suite_names


class TestSuites:
    def test_paper_suite_is_complete(self):
        assert suite("paper") == application_names()

    def test_quick_suite(self):
        assert suite("quick") == ("CG", "EP")

    def test_case_insensitive(self):
        assert suite("PAPER") == suite("paper")

    def test_unknown_rejected(self):
        with pytest.raises(WorkloadError):
            suite("everything")

    def test_all_members_exist_in_catalog(self):
        names = set(application_names())
        for members in SUITES.values():
            assert set(members) <= names

    def test_suite_names(self):
        assert set(suite_names()) == set(SUITES)

    def test_violators_match_paper_section_va(self):
        assert set(suite("violators")) == {"UA", "LAMMPS", "CG"}
