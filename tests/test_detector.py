"""Phase-change detection: OI classes, regime switches, FLOPS jumps."""

import pytest

from repro.config import ControllerConfig
from repro.core.detector import OIClass, PhaseDetector, classify_oi
from repro.errors import ControllerError


CFG = ControllerConfig()


class TestClassification:
    @pytest.mark.parametrize(
        "oi,expected",
        [
            (0.001, OIClass.HIGHLY_MEMORY),
            (0.019, OIClass.HIGHLY_MEMORY),
            (0.02, OIClass.MEMORY),
            (0.5, OIClass.MEMORY),
            (1.0, OIClass.CPU),
            (50.0, OIClass.CPU),
            (100.0, OIClass.CPU),
            (150.0, OIClass.HIGHLY_CPU),
            (float("inf"), OIClass.HIGHLY_CPU),
        ],
    )
    def test_thresholds(self, oi, expected):
        assert classify_oi(oi, CFG) is expected

    def test_is_memory_property(self):
        assert OIClass.HIGHLY_MEMORY.is_memory
        assert OIClass.MEMORY.is_memory
        assert not OIClass.CPU.is_memory
        assert not OIClass.HIGHLY_CPU.is_memory

    def test_nan_rejected(self):
        with pytest.raises(ControllerError):
            classify_oi(float("nan"), CFG)

    def test_negative_rejected(self):
        with pytest.raises(ControllerError):
            classify_oi(-1.0, CFG)


class TestDetection:
    def test_first_sample_is_phase_change(self):
        d = PhaseDetector(CFG)
        assert d.update(0.5, 10e9) is True

    def test_stable_phase_no_change(self):
        d = PhaseDetector(CFG)
        d.update(0.5, 10e9)
        assert d.update(0.5, 10e9) is False
        assert d.update(0.52, 10.1e9) is False

    def test_memory_to_cpu_switch(self):
        d = PhaseDetector(CFG)
        d.update(0.5, 10e9)
        assert d.update(2.0, 11e9) is True

    def test_cpu_to_memory_switch(self):
        d = PhaseDetector(CFG)
        d.update(5.0, 100e9)
        assert d.update(0.1, 90e9) is True

    def test_within_memory_classes_no_switch(self):
        # highly-memory <-> memory is not a regime change.
        d = PhaseDetector(CFG)
        d.update(0.01, 1e9)
        assert d.update(0.5, 1.5e9) is False

    def test_within_cpu_classes_no_switch(self):
        d = PhaseDetector(CFG)
        d.update(5.0, 100e9)
        assert d.update(150.0, 120e9) is False

    def test_flops_doubling_is_phase_change(self):
        d = PhaseDetector(CFG)
        d.update(5.0, 100e9)
        assert d.update(5.0, 250e9) is True

    def test_doubling_compares_to_previous_tick(self):
        # HPL's sawtooth: drop to the panel rate, then the 4x return
        # jump must fire even though the old maximum is not exceeded.
        d = PhaseDetector(CFG)
        d.update(150.0, 1000e9)
        assert d.update(37.0, 260e9) is False  # drop: not a change
        assert d.update(150.0, 1000e9) is True  # 4x jump: change

    def test_sub_doubling_growth_ignored(self):
        d = PhaseDetector(CFG)
        d.update(5.0, 100e9)
        assert d.update(5.0, 190e9) is False

    def test_oi_class_exposed(self):
        d = PhaseDetector(CFG)
        d.update(0.005, 1e9)
        assert d.oi_class is OIClass.HIGHLY_MEMORY

    def test_oi_class_before_update_rejected(self):
        with pytest.raises(ControllerError):
            _ = PhaseDetector(CFG).oi_class

    def test_reset_forgets_history(self):
        d = PhaseDetector(CFG)
        d.update(0.5, 10e9)
        d.reset()
        assert d.update(0.5, 10e9) is True

    def test_negative_flops_rejected(self):
        with pytest.raises(ControllerError):
            PhaseDetector(CFG).update(1.0, -1.0)
