"""Roofline execution model: phase times and instantaneous rates."""

import pytest

from repro.config import CoreConfig, MemoryConfig, UncoreConfig
from repro.hardware.memory import MemorySystem
from repro.hardware.perf import PhaseExecutionModel


@pytest.fixture
def model():
    mem = MemorySystem(MemoryConfig(), CoreConfig(), UncoreConfig())
    return PhaseExecutionModel(CoreConfig(), mem)


F_MAX = 2.8e9
U_MAX = 2.4e9


class TestPhaseTime:
    def test_compute_bound_time(self, model):
        # 1e12 flops at 16 cores * 4 flops/cycle * 2.8 GHz.
        t = model.phase_time(1e12, 0.0, 4.0, F_MAX, U_MAX)
        assert t == pytest.approx(1e12 / (16 * 4 * F_MAX))

    def test_memory_bound_time(self, model):
        t = model.phase_time(1e9, 105e9, 0.5, F_MAX, U_MAX)
        assert t == pytest.approx(1.0, rel=0.05)

    def test_compute_time_scales_with_core_freq(self, model):
        t_fast = model.phase_time(1e12, 0.0, 4.0, F_MAX, U_MAX)
        t_slow = model.phase_time(1e12, 0.0, 4.0, 1.4e9, U_MAX)
        assert t_slow == pytest.approx(2.0 * t_fast)

    def test_memory_time_scales_with_uncore_below_saturation(self, model):
        t_fast = model.phase_time(0.0, 1e12, 1.0, F_MAX, U_MAX)
        t_slow = model.phase_time(0.0, 1e12, 1.0, F_MAX, 1.2e9)
        assert t_slow > t_fast * 1.5

    def test_uncore_sensitivity_inflates_compute(self, model):
        base = model.phase_time(1e12, 1e6, 4.0, F_MAX, 1.2e9)
        sensitive = model.phase_time(
            1e12, 1e6, 4.0, F_MAX, 1.2e9, uncore_sensitivity=0.3
        )
        assert sensitive == pytest.approx(base * 1.3, rel=0.01)

    def test_latency_sensitivity_inflates_memory(self, model):
        base = model.phase_time(0.0, 1e12, 1.0, F_MAX, 1.2e9)
        sensitive = model.phase_time(
            0.0, 1e12, 1.0, F_MAX, 1.2e9, latency_sensitivity=0.5
        )
        assert sensitive == pytest.approx(base * 1.5, rel=0.01)

    def test_no_penalty_at_max_uncore(self, model):
        base = model.phase_time(1e11, 1e11, 2.0, F_MAX, U_MAX)
        with_sens = model.phase_time(
            1e11, 1e11, 2.0, F_MAX, U_MAX,
            latency_sensitivity=0.5, uncore_sensitivity=0.5,
        )
        assert with_sens == pytest.approx(base)

    def test_balanced_phase_costs_more_than_either_roof(self, model):
        # Imperfect overlap: a balanced phase exceeds max(t_c, t_m).
        flops, bytes_ = 1.2e11, 1e12
        t = model.phase_time(flops, bytes_, 0.32, F_MAX, U_MAX)
        t_c = flops / (16 * 0.32 * F_MAX)
        t_m = bytes_ / 105e9
        assert t > max(t_c, t_m)
        assert t < t_c + t_m

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.phase_time(-1.0, 0.0, 1.0, F_MAX, U_MAX)
        with pytest.raises(ValueError):
            model.phase_time(1.0, 0.0, 0.0, F_MAX, U_MAX)
        with pytest.raises(ValueError):
            model.phase_time(1.0, 0.0, 1.0, 0.0, U_MAX)


class TestInstantaneousRates:
    def test_rates_consistent_with_time(self, model):
        flops, bytes_ = 2e11, 1e12
        r = model.instantaneous(flops, bytes_, 0.5, F_MAX, U_MAX)
        t = model.phase_time(flops, bytes_, 0.5, F_MAX, U_MAX)
        assert r.flops_rate == pytest.approx(flops / t)
        assert r.bytes_rate == pytest.approx(bytes_ / t)
        assert r.progress_rate == pytest.approx(1.0 / t)

    def test_oi_preserved_by_measurement(self, model):
        # Measured FLOPS/s / bytes/s equals the phase's static OI: the
        # paper's phase classifier is throttle-invariant.
        r_fast = model.instantaneous(2e11, 1e12, 0.5, F_MAX, U_MAX)
        r_slow = model.instantaneous(2e11, 1e12, 0.5, 1.2e9, 1.2e9)
        assert r_fast.flops_rate / r_fast.bytes_rate == pytest.approx(0.2)
        assert r_slow.flops_rate / r_slow.bytes_rate == pytest.approx(0.2)

    def test_bound_classification_compute(self, model):
        r = model.instantaneous(1e12, 1e6, 4.0, F_MAX, U_MAX)
        assert r.bound == "compute"
        assert r.core_activity > 0.9

    def test_bound_classification_memory(self, model):
        r = model.instantaneous(1e9, 1e12, 0.5, F_MAX, U_MAX)
        assert r.bound == "memory"
        assert r.core_activity < 0.2

    def test_bound_classification_balanced(self, model):
        # Construct t_c == t_m exactly.
        flops = 16 * 1.0 * F_MAX  # 1 second of compute at fpc=1
        bytes_ = 105e9  # 1 second of memory
        r = model.instantaneous(flops, bytes_, 1.0, F_MAX, U_MAX)
        assert r.bound == "balanced"

    def test_traffic_util_tracks_bandwidth(self, model):
        r = model.instantaneous(1e9, 1e12, 0.5, F_MAX, U_MAX)
        assert 0.8 < r.traffic_util <= 1.0

    def test_empty_phase_rejected(self, model):
        with pytest.raises(ValueError):
            model.instantaneous(0.0, 0.0, 1.0, F_MAX, U_MAX)

    def test_slower_clocks_never_raise_rates(self, model):
        fast = model.instantaneous(2e11, 1e12, 0.5, F_MAX, U_MAX)
        slow = model.instantaneous(2e11, 1e12, 0.5, 2.0e9, 1.8e9)
        assert slow.flops_rate <= fast.flops_rate + 1e-6
        assert slow.bytes_rate <= fast.bytes_rate + 1e-6
