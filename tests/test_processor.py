"""The composed socket model: stepping, capping behaviour, counters."""

import pytest

from repro.errors import SimulationError
from repro.hardware.processor import PhaseWork, SimulatedProcessor

from tests.conftest import settle


class TestStepping:
    def test_state_before_step_raises(self, processor):
        with pytest.raises(SimulationError):
            _ = processor.state

    def test_nonpositive_dt_rejected(self, processor, compute_work):
        with pytest.raises(SimulationError):
            processor.step(0.0, compute_work)

    def test_time_advances(self, processor, compute_work):
        processor.step(0.01, compute_work)
        processor.step(0.02, compute_work)
        assert processor.now_s == pytest.approx(0.03)

    def test_progress_returned(self, processor):
        # A phase sized to one second of compute: 10 ms ~ 1 % progress.
        work = PhaseWork(flops=16 * 4 * 2.8e9, bytes=0.0, fpc=4.0)
        progress = processor.step(0.01, work)
        assert progress == pytest.approx(0.01, rel=0.05)

    def test_idle_step_makes_no_progress(self, processor):
        assert processor.step(0.01, None) == 0.0

    def test_counters_accumulate(self, processor, compute_work):
        settle(processor, compute_work, steps=100)
        assert processor.flops_retired > 0
        expected = processor.state.flops_rate * processor.now_s
        assert processor.flops_retired == pytest.approx(expected, rel=0.01)

    def test_energy_integrates_power(self, processor, memory_work):
        settle(processor, memory_work, steps=100)
        avg_power = processor.package_energy_j / processor.now_s
        assert avg_power == pytest.approx(
            processor.state.package.total_w, rel=0.1
        )


class TestDefaultBehaviour:
    def test_default_runs_at_turbo(self, processor, compute_work):
        s = settle(processor, compute_work)
        assert s.core_freq_hz == pytest.approx(2.8e9)

    def test_default_uncore_high_when_busy(self, processor, compute_work):
        s = settle(processor, compute_work)
        assert s.uncore_freq_hz >= 2.2e9

    def test_default_power_within_budget(self, processor, balanced_work):
        s = settle(processor, balanced_work)
        assert s.package.total_w <= 125.5

    def test_memory_bound_power_near_budget(self, processor, balanced_work):
        # The paper: default CG sits "almost at the maximum budget".
        s = settle(processor, balanced_work)
        assert s.package.total_w > 110.0


class TestPowerCapping:
    def test_cap_reduces_power(self, socket_cfg, balanced_work):
        p = SimulatedProcessor(socket_cfg)
        p.rapl.set_limits(100.0, 100.0)
        s = settle(p, balanced_work, steps=300)
        assert s.package.total_w <= 101.0

    def test_cap_reduces_core_frequency(self, socket_cfg, balanced_work):
        p = SimulatedProcessor(socket_cfg)
        p.rapl.set_limits(100.0, 100.0)
        s = settle(p, balanced_work, steps=300)
        assert s.core_freq_hz < 2.8e9

    def test_deep_cap_hits_frequency_floor(self, socket_cfg, memory_work):
        p = SimulatedProcessor(socket_cfg)
        p.rapl.set_limits(65.0, 65.0)
        s = settle(p, memory_work, steps=300)
        assert s.core_freq_hz == pytest.approx(1.0e9)

    def test_memory_phase_unharmed_at_floor_cap(self, socket_cfg, memory_work):
        # Fig. 1b/1c: the 65 W cap does not slow the memory phase.
        p_ref = SimulatedProcessor(socket_cfg)
        ref = settle(p_ref, memory_work, steps=300)
        p = SimulatedProcessor(socket_cfg)
        p.rapl.set_limits(65.0, 65.0)
        s = settle(p, memory_work, steps=300)
        assert s.flops_rate == pytest.approx(ref.flops_rate, rel=0.01)

    def test_compute_phase_slowed_by_cap(self, socket_cfg, compute_work):
        p_ref = SimulatedProcessor(socket_cfg)
        ref = settle(p_ref, compute_work)
        p = SimulatedProcessor(socket_cfg)
        p.rapl.set_limits(90.0, 90.0)
        s = settle(p, compute_work, steps=300)
        assert s.flops_rate < ref.flops_rate * 0.95

    def test_floor_cap_may_overshoot(self, socket_cfg, memory_work):
        # RAPL cannot clock below the minimum P-state, so a 65 W cap on
        # a memory-saturating phase consumes slightly above the cap —
        # the situation DUFP's margin absorbs.
        p = SimulatedProcessor(socket_cfg)
        p.rapl.set_limits(65.0, 65.0)
        s = settle(p, memory_work, steps=300)
        assert 64.0 < s.package.total_w < 65.0 * 1.04


class TestUncoreInteraction:
    def test_pinned_uncore_cuts_bandwidth(self, socket_cfg, memory_work):
        p = SimulatedProcessor(socket_cfg)
        p.uncore.pin(1.2e9)
        s = settle(p, memory_work, steps=200)
        assert s.bytes_rate < 70e9

    def test_pinned_uncore_saves_power_on_compute(self, socket_cfg, compute_work):
        p_ref = SimulatedProcessor(socket_cfg)
        ref = settle(p_ref, compute_work)
        p = SimulatedProcessor(socket_cfg)
        p.uncore.pin(1.2e9)
        s = settle(p, compute_work)
        assert s.package.total_w < ref.package.total_w - 10.0
        assert s.flops_rate == pytest.approx(ref.flops_rate, rel=1e-6)


class TestPowerBoost:
    def test_boost_raises_power(self, socket_cfg):
        plain = PhaseWork(flops=1e12, bytes=4e11, fpc=7.0)
        boosted = PhaseWork(flops=1e12, bytes=4e11, fpc=7.0, power_boost=1.4)
        p1 = settle(SimulatedProcessor(socket_cfg), plain)
        p2 = settle(SimulatedProcessor(socket_cfg), boosted)
        assert p2.package.core_w > p1.package.core_w

    def test_boost_throttles_under_cap(self, socket_cfg):
        boosted = PhaseWork(flops=1e12, bytes=4e11, fpc=7.0, power_boost=1.5)
        p_free = SimulatedProcessor(socket_cfg)
        free = settle(p_free, boosted, steps=300)
        p_capped = SimulatedProcessor(socket_cfg)
        p_capped.rapl.set_limits(100.0, 100.0)
        capped = settle(p_capped, boosted, steps=300)
        assert capped.core_freq_hz < free.core_freq_hz


class TestOverfetch:
    def test_overfetch_raises_dram_power_below_saturation(self, socket_cfg):
        plain = PhaseWork(flops=2.5e10, bytes=1e11, fpc=1.0)
        fetchy = PhaseWork(flops=2.5e10, bytes=1e11, fpc=1.0, overfetch=0.5)
        for proc_pin in (True,):
            p1 = SimulatedProcessor(socket_cfg)
            p1.uncore.pin(1.5e9)
            s1 = settle(p1, plain, steps=100)
            p2 = SimulatedProcessor(socket_cfg)
            p2.uncore.pin(1.5e9)
            s2 = settle(p2, fetchy, steps=100)
            assert s2.dram_power_w > s1.dram_power_w

    def test_no_overfetch_at_saturated_uncore(self, socket_cfg):
        fetchy = PhaseWork(flops=2.5e10, bytes=1e11, fpc=1.0, overfetch=0.5)
        plain = PhaseWork(flops=2.5e10, bytes=1e11, fpc=1.0)
        s1 = settle(SimulatedProcessor(socket_cfg), plain, steps=100)
        s2 = settle(SimulatedProcessor(socket_cfg), fetchy, steps=100)
        assert s2.dram_power_w == pytest.approx(s1.dram_power_w, rel=0.01)


class TestPreview:
    def test_preview_matches_settled_rate(self, processor, balanced_work):
        settle(processor, balanced_work, steps=50)
        preview = processor.preview_progress_rate(balanced_work)
        actual = processor.step(0.01, balanced_work) / 0.01
        assert preview == pytest.approx(actual, rel=0.05)

    def test_preview_of_empty_work_is_zero(self, processor):
        assert processor.preview_progress_rate(
            PhaseWork(flops=0.0, bytes=0.0, fpc=1.0)
        ) == 0.0
