"""Node budget distribution: allocator and coordinated controllers."""

import pytest

from repro.config import ControllerConfig, NoiseConfig
from repro.core.baselines import DefaultController, StaticPowerCap
from repro.core.budget import (
    NodeBudgetCoordinator,
    allocate_budget,
)
from repro.errors import ControllerError
from repro.sim.run import run_application
from repro.workloads.catalog import build_application


QUIET = NoiseConfig(duration_jitter=0.001, counter_noise=0.001, power_noise=0.001)


class TestAllocator:
    def test_budget_covers_demand(self):
        alloc = allocate_budget([100.0, 80.0], 250.0, 65.0, 125.0)
        assert alloc == [pytest.approx(100.0), pytest.approx(80.0)]

    def test_total_never_exceeded(self):
        alloc = allocate_budget([120.0, 120.0, 120.0], 300.0, 65.0, 125.0)
        assert sum(alloc) <= 300.0 + 1e-6

    def test_floor_respected(self):
        alloc = allocate_budget([10.0, 300.0], 200.0, 65.0, 125.0)
        assert all(a >= 65.0 - 1e-9 for a in alloc)

    def test_ceiling_respected(self):
        alloc = allocate_budget([500.0, 500.0], 400.0, 65.0, 125.0)
        assert all(a <= 125.0 + 1e-9 for a in alloc)

    def test_proportional_shrink(self):
        alloc = allocate_budget([125.0, 85.0], 180.0, 65.0, 125.0)
        # Both shrink above the floor; the hungrier socket keeps more.
        assert alloc[0] > alloc[1]
        assert sum(alloc) == pytest.approx(180.0)

    def test_impossible_budget_rejected(self):
        with pytest.raises(ControllerError):
            allocate_budget([100.0, 100.0], 100.0, 65.0, 125.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ControllerError):
            allocate_budget([-1.0], 100.0, 65.0, 125.0)

    def test_empty_rejected(self):
        with pytest.raises(ControllerError):
            allocate_budget([], 100.0, 65.0, 125.0)


class TestCoordinator:
    def test_bad_budget_rejected(self):
        with pytest.raises(ControllerError):
            NodeBudgetCoordinator(total_budget_w=0.0, cfg=ControllerConfig())

    def test_bad_period_rejected(self):
        with pytest.raises(ControllerError):
            NodeBudgetCoordinator(
                total_budget_w=200.0, cfg=ControllerConfig(), period_ticks=0
            )

    def test_registers_members(self):
        coord = NodeBudgetCoordinator(total_budget_w=200.0, cfg=ControllerConfig())
        a = coord.socket_controller()
        b = coord.socket_controller()
        assert (a.index, b.index) == (0, 1)


class TestCoordinatedRun:
    @pytest.fixture(scope="class")
    def scenario(self):
        """CG (memory-tolerant) + EP (compute-hungry) under 190 W."""
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        apps = [build_application("CG"), build_application("EP")]
        base = run_application(
            apps, DefaultController, controller_cfg=cfg, noise=QUIET, seed=9
        )
        coord = NodeBudgetCoordinator(
            total_budget_w=190.0, cfg=cfg, per_socket_floor_w=80.0
        )
        coordinated = run_application(
            apps, coord.socket_controller, controller_cfg=cfg, noise=QUIET, seed=9
        )
        equal = run_application(
            apps,
            lambda: StaticPowerCap(95.0),
            controller_cfg=cfg,
            noise=QUIET,
            seed=9,
        )
        return base, coord, coordinated, equal

    def test_budget_respected(self, scenario):
        base, coord, coordinated, _ = scenario
        for _, alloc in coord.history:
            assert sum(alloc) <= 190.0 + 1e-6

    def test_allocations_favor_compute_socket(self, scenario):
        _, coord, _, _ = scenario
        final = coord.history[-1][1]
        assert final[1] > final[0]  # EP's socket gets the bigger share

    def test_floor_bounds_reference_drift(self, scenario):
        _, coord, _, _ = scenario
        for _, alloc in coord.history:
            assert all(a >= 80.0 - 1e-6 for a in alloc)

    def test_compute_socket_protected_vs_equal_split(self, scenario):
        base, _, coordinated, equal = scenario
        ep_coord = coordinated.sockets[1].finish_time_s
        ep_equal = equal.sockets[1].finish_time_s
        assert ep_coord < ep_equal  # EP runs faster under coordination

    def test_total_power_under_budget(self, scenario):
        # The node invariant is instantaneous: at every trace step the
        # summed package power respects the budget (slack for the
        # initial pre-allocation second and re-allocation transients).
        _, _, coordinated, _ = scenario
        traces = [s.trace for s in coordinated.sockets]
        over = 0
        total = 0
        for samples in zip(*traces):
            t = samples[0].time_s
            if t < 1.5:  # before the first allocation round settles
                continue
            total += 1
            if sum(s.package_power_w for s in samples) > 190.0 * 1.02:
                over += 1
        assert total > 0
        assert over / total < 0.02, f"{over}/{total} steps over budget"


class TestHeterogeneousEngine:
    def test_per_socket_applications(self):
        cfg = ControllerConfig()
        apps = [build_application("EP", scale=0.2), build_application("CG", scale=0.2)]
        r = run_application(apps, DefaultController, controller_cfg=cfg, noise=QUIET)
        assert r.app_name == "EP+CG"
        assert len(r.sockets) == 2
        # Different apps, different finish times.
        assert r.sockets[0].finish_time_s != r.sockets[1].finish_time_s

    def test_application_count_must_match_sockets(self):
        from repro.errors import SimulationError
        from repro.sim.machine import yeti_machine

        cfg = ControllerConfig()
        apps = [build_application("EP", scale=0.2)]
        with pytest.raises(SimulationError):
            run_application(
                apps,
                DefaultController,
                controller_cfg=cfg,
                machine=yeti_machine(3),
            )

    def test_socket_count_inferred_from_list(self):
        cfg = ControllerConfig()
        apps = [build_application("EP", scale=0.1)] * 3
        r = run_application(apps, DefaultController, controller_cfg=cfg, noise=QUIET)
        assert len(r.sockets) == 3
