"""The reproduction scorecard."""

import pytest

from repro.config import NoiseConfig
from repro.experiments.scorecard import ClaimResult, Scorecard, run_scorecard
from repro.experiments.sweep import run_sweep


QUIET = NoiseConfig(duration_jitter=0.002, counter_noise=0.001, power_noise=0.001)


@pytest.fixture(scope="module")
def card():
    sweep = run_sweep(runs=2, noise=QUIET)
    return run_scorecard(sweep=sweep, include_figures=False)


class TestScorecardStructure:
    def test_has_sweep_claims(self, card):
        ids = {c.claim_id for c in card.claims}
        for expected in (
            "3a.respected",
            "3b.all-apps-save",
            "3b.ep-heavy",
            "3b.cg20-gap",
            "3c.no-loss-le10",
            "4.cg20-dram",
        ):
            assert expected in ids

    def test_claim_lookup(self, card):
        c = card.claim("3a.respected")
        assert isinstance(c, ClaimResult)
        assert "/40" in c.measured

    def test_unknown_claim_raises(self, card):
        with pytest.raises(KeyError):
            card.claim("nope")

    def test_counts(self, card):
        assert 0 < card.passed <= card.total

    def test_render_contains_verdicts(self, card):
        out = card.render()
        assert "PASS" in out
        assert f"{card.passed}/{card.total}" in out


class TestScorecardVerdicts:
    def test_all_sweep_claims_pass(self, card):
        failing = [c.claim_id for c in card.claims if not c.passed]
        assert not failing, f"claims failing: {failing}"

    def test_scorecard_object_api(self):
        card = Scorecard(
            claims=[ClaimResult("x", "paper", "measured", True)]
        )
        assert card.passed == card.total == 1
