"""Statistics, tables and series helpers."""

import pytest

from repro.analysis.series import resample_series, time_weighted_average
from repro.analysis.stats import (
    ErrorBar,
    error_bar,
    keep_indices_drop_extremes,
    percent_ratio_series,
    trimmed_mean_drop_extremes,
)
from repro.analysis.tables import format_table
from repro.errors import ExperimentError


class TestTrimming:
    def test_drops_one_min_one_max(self):
        values = [5.0, 1.0, 3.0, 9.0, 4.0]
        keep = keep_indices_drop_extremes(values)
        assert sorted(values[i] for i in keep) == [3.0, 4.0, 5.0]

    def test_paper_protocol_10_runs_keep_8(self):
        values = list(range(10))
        assert len(keep_indices_drop_extremes(values)) == 8

    def test_ties_drop_single_instance(self):
        values = [1.0, 1.0, 2.0, 3.0, 3.0]
        keep = keep_indices_drop_extremes(values)
        assert sorted(values[i] for i in keep) == [1.0, 2.0, 3.0]

    def test_small_samples_untouched(self):
        assert keep_indices_drop_extremes([1.0, 2.0]) == [0, 1]

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            keep_indices_drop_extremes([])

    def test_trimmed_mean(self):
        assert trimmed_mean_drop_extremes([1.0, 2.0, 3.0, 4.0, 100.0]) == pytest.approx(
            3.0
        )

    def test_trimmed_mean_robust_to_outliers(self):
        clean = trimmed_mean_drop_extremes([10.0, 10.0, 10.0, 10.0])
        dirty = trimmed_mean_drop_extremes([10.0, 10.0, 10.0, 10.0, 1000.0, 0.001])
        assert dirty == pytest.approx(clean)


class TestErrorBars:
    def test_basic(self):
        bar = error_bar([1.0, 2.0, 3.0], keep=[0, 1, 2])
        assert bar.mean == pytest.approx(2.0)
        assert bar.low == 1.0
        assert bar.high == 3.0
        assert bar.spread == pytest.approx(2.0)

    def test_keep_subset(self):
        bar = error_bar([1.0, 100.0, 3.0], keep=[0, 2])
        assert bar.high == 3.0

    def test_default_keep_trims(self):
        bar = error_bar([1.0, 2.0, 3.0, 4.0, 100.0])
        assert bar.high == 4.0

    def test_inconsistent_bar_rejected(self):
        with pytest.raises(ExperimentError):
            ErrorBar(mean=5.0, low=6.0, high=7.0)

    def test_empty_keep_rejected(self):
        with pytest.raises(ExperimentError):
            error_bar([1.0], keep=[])


class TestPercentSeries:
    def test_ratio_series(self):
        assert percent_ratio_series([110.0, 100.0], 125.0) == [
            pytest.approx(88.0),
            pytest.approx(80.0),
        ]

    def test_bad_reference(self):
        with pytest.raises(ExperimentError):
            percent_ratio_series([1.0], 0.0)


class TestTables:
    def test_renders_headers_and_rows(self):
        out = format_table(["a", "bb"], [[1, 2.5], [3, 4.25]])
        lines = out.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.50" in out and "4.25" in out

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table I")
        assert out.splitlines()[0] == "Table I"

    def test_row_width_mismatch(self):
        with pytest.raises(ExperimentError):
            format_table(["a", "b"], [[1]])

    def test_no_headers_rejected(self):
        with pytest.raises(ExperimentError):
            format_table([], [])

    def test_columns_aligned(self):
        out = format_table(["col"], [[1], [100]])
        lines = out.splitlines()
        assert len(lines[-1]) == len(lines[-2])


class TestSeries:
    def test_resample_holds_values(self):
        times = [0.1, 0.2, 0.3, 0.4]
        values = [1.0, 2.0, 3.0, 4.0]
        grid_t, grid_v = resample_series(times, values, 0.2)
        assert grid_t == [pytest.approx(0.2), pytest.approx(0.4)]
        assert grid_v == [2.0, 4.0]

    def test_resample_coarse_series(self):
        grid_t, grid_v = resample_series([1.0], [7.0], 0.25)
        assert len(grid_t) == 4
        assert set(grid_v) == {7.0}

    def test_resample_validation(self):
        with pytest.raises(ExperimentError):
            resample_series([1.0], [1.0, 2.0], 0.1)
        with pytest.raises(ExperimentError):
            resample_series([], [], 0.1)

    def test_time_weighted_average(self):
        # 1.0 for the first second, 3.0 for the next three.
        assert time_weighted_average([1.0, 4.0], [1.0, 3.0]) == pytest.approx(2.5)

    def test_time_weighted_average_validation(self):
        with pytest.raises(ExperimentError):
            time_weighted_average([2.0, 1.0], [1.0, 1.0])
