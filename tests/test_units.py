"""Unit helpers: conversions, ratios, smooth_max."""

import math

import pytest

from repro import units


class TestFrequencyConversions:
    def test_ghz(self):
        assert units.ghz(2.4) == 2.4e9

    def test_mhz(self):
        assert units.mhz(100) == 1e8

    def test_khz(self):
        assert units.khz(5) == 5e3

    def test_to_ghz_roundtrip(self):
        assert units.to_ghz(units.ghz(1.7)) == pytest.approx(1.7)


class TestBandwidthAndFlops:
    def test_gb_per_s_roundtrip(self):
        assert units.to_gb_per_s(units.gb_per_s(105.0)) == pytest.approx(105.0)

    def test_gflops_roundtrip(self):
        assert units.to_gflops(units.gflops(896.0)) == pytest.approx(896.0)


class TestTimeConversions:
    def test_ms(self):
        assert units.ms(200) == pytest.approx(0.2)

    def test_us(self):
        assert units.us(976) == pytest.approx(976e-6)

    def test_seconds_to_us_is_integral(self):
        assert units.seconds_to_us(0.01) == 10_000

    def test_us_to_seconds(self):
        assert units.us_to_seconds(10_000) == pytest.approx(0.01)


class TestPowercapUnits:
    def test_watts_to_uw(self):
        assert units.watts_to_uw(125.0) == 125_000_000

    def test_uw_to_watts(self):
        assert units.uw_to_watts(65_000_000) == pytest.approx(65.0)

    def test_watts_uw_roundtrip(self):
        assert units.uw_to_watts(units.watts_to_uw(99.5)) == pytest.approx(99.5)


class TestRatios:
    def test_percent(self):
        assert units.percent(0.05) == pytest.approx(5.0)

    def test_fraction(self):
        assert units.fraction(20.0) == pytest.approx(0.2)

    def test_ratio_over(self):
        assert units.ratio_over(110.0, 125.0) == pytest.approx(0.88)

    def test_ratio_over_zero_reference(self):
        with pytest.raises(ZeroDivisionError):
            units.ratio_over(1.0, 0.0)

    def test_percent_change_slowdown(self):
        assert units.percent_change(112.0, 100.0) == pytest.approx(12.0)

    def test_percent_change_speedup_is_negative(self):
        assert units.percent_change(90.0, 100.0) == pytest.approx(-10.0)

    def test_percent_savings(self):
        assert units.percent_savings(90.0, 100.0) == pytest.approx(10.0)

    def test_percent_savings_loss_is_negative(self):
        assert units.percent_savings(110.0, 100.0) < 0


class TestClamp:
    def test_inside(self):
        assert units.clamp(5.0, 0.0, 10.0) == 5.0

    def test_below(self):
        assert units.clamp(-1.0, 0.0, 10.0) == 0.0

    def test_above(self):
        assert units.clamp(11.0, 0.0, 10.0) == 10.0

    def test_inverted_bounds_raise(self):
        with pytest.raises(ValueError):
            units.clamp(5.0, 10.0, 0.0)


class TestSnapToStep:
    def test_exact_multiple(self):
        assert units.snap_to_step(2.4e9, 1e8) == pytest.approx(2.4e9)

    def test_rounds_to_nearest(self):
        assert units.snap_to_step(2.34e9, 1e8) == pytest.approx(2.3e9)

    def test_with_base(self):
        assert units.snap_to_step(67.0, 5.0, base=125.0) == pytest.approx(65.0)

    def test_non_positive_step_raises(self):
        with pytest.raises(ValueError):
            units.snap_to_step(1.0, 0.0)


class TestSmoothMax:
    def test_upper_bound_is_sum_like(self):
        # p-norm lies between max and sum.
        a, b = 3.0, 4.0
        s = units.smooth_max(a, b)
        assert max(a, b) <= s <= a + b

    def test_dominant_term_wins(self):
        assert units.smooth_max(10.0, 0.1) == pytest.approx(10.0, rel=1e-6)

    def test_symmetry(self):
        assert units.smooth_max(2.0, 5.0) == units.smooth_max(5.0, 2.0)

    def test_zero_both(self):
        assert units.smooth_max(0.0, 0.0) == 0.0

    def test_zero_one_side(self):
        assert units.smooth_max(0.0, 7.0) == pytest.approx(7.0)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            units.smooth_max(-1.0, 1.0)

    def test_sharpness_controls_overlap(self):
        soft = units.smooth_max(1.0, 1.0, sharpness=2.0)
        sharp = units.smooth_max(1.0, 1.0, sharpness=20.0)
        assert soft > sharp > 1.0

    def test_scale_invariance(self):
        assert units.smooth_max(2e9, 3e9) == pytest.approx(
            1e9 * units.smooth_max(2.0, 3.0)
        )


class TestTimeWeightedMean:
    def test_uniform_weights(self):
        assert units.time_weighted_mean([1.0, 3.0], [1.0, 1.0]) == pytest.approx(2.0)

    def test_weighted(self):
        assert units.time_weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            units.time_weighted_mean([1.0], [1.0, 2.0])

    def test_zero_duration(self):
        with pytest.raises(ValueError):
            units.time_weighted_mean([1.0], [0.0])

    def test_fsum_precision(self):
        values = [0.1] * 1000
        durations = [1.0] * 1000
        assert units.time_weighted_mean(values, durations) == pytest.approx(0.1)

    def test_nan_free_for_floats(self):
        out = units.time_weighted_mean([1e300, 1e300], [1.0, 1.0])
        assert math.isfinite(out)
