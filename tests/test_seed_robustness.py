"""Seed robustness: conclusions hold across independent seeds.

Single-seed integration tests can pass by luck; these sweep a handful
of seeds for the load-bearing claims.
"""

import pytest

from repro.config import ControllerConfig, NoiseConfig
from repro.core.baselines import DefaultController
from repro.core.dufp import DUFP
from repro.sim.run import run_application
from repro.workloads.catalog import build_application


NOISE = NoiseConfig()  # the default (realistic) noise levels
SEEDS = (101, 202, 303, 404, 505)


@pytest.fixture(scope="module")
def cg_runs():
    cfg = ControllerConfig(tolerated_slowdown=0.10)
    app = build_application("CG", scale=0.6)
    out = []
    for seed in SEEDS:
        default = run_application(
            app, DefaultController, controller_cfg=cfg, noise=NOISE, seed=seed
        )
        dufp = run_application(
            app, lambda: DUFP(cfg), controller_cfg=cfg, noise=NOISE, seed=seed
        )
        out.append((default, dufp))
    return out


class TestSeedRobustness:
    def test_tolerance_respected_across_seeds(self, cg_runs):
        misses = []
        for default, dufp in cg_runs:
            slowdown = dufp.execution_time_s / default.execution_time_s - 1
            if slowdown > 0.10 + 0.02:
                misses.append(slowdown)
        assert not misses, f"tolerance misses: {misses}"

    def test_savings_across_seeds(self, cg_runs):
        for default, dufp in cg_runs:
            saving = 1 - dufp.avg_package_power_w / default.avg_package_power_w
            assert saving > 0.08, f"saving collapsed to {saving:.3f}"

    def test_no_energy_loss_across_seeds(self, cg_runs):
        for default, dufp in cg_runs:
            assert dufp.total_energy_j < default.total_energy_j * 1.01

    def test_run_to_run_spread_is_paperlike(self, cg_runs):
        # Section V: "the measurement difference is lower than 2 % for
        # most of the configurations".
        times = [dufp.execution_time_s for _, dufp in cg_runs]
        spread = (max(times) - min(times)) / min(times)
        assert spread < 0.05
