"""Seed robustness: conclusions hold across independent seeds.

Single-seed integration tests can pass by luck; these sweep a handful
of seeds for the load-bearing claims.
"""

import pytest

from repro.config import ControllerConfig, NoiseConfig
from repro.core.baselines import DefaultController
from repro.core.dufp import DUFP
from repro.sim.batch import run_batch
from repro.sim.faults import FaultPlan
from repro.sim.run import build_engine, run_application
from repro.workloads.catalog import build_application


NOISE = NoiseConfig()  # the default (realistic) noise levels
SEEDS = (101, 202, 303, 404, 505)


@pytest.fixture(scope="module")
def cg_runs():
    cfg = ControllerConfig(tolerated_slowdown=0.10)
    app = build_application("CG", scale=0.6)
    out = []
    for seed in SEEDS:
        default = run_application(
            app, DefaultController, controller_cfg=cfg, noise=NOISE, seed=seed
        )
        dufp = run_application(
            app, lambda: DUFP(cfg), controller_cfg=cfg, noise=NOISE, seed=seed
        )
        out.append((default, dufp))
    return out


class TestSeedRobustness:
    def test_tolerance_respected_across_seeds(self, cg_runs):
        misses = []
        for default, dufp in cg_runs:
            slowdown = dufp.execution_time_s / default.execution_time_s - 1
            if slowdown > 0.10 + 0.02:
                misses.append(slowdown)
        assert not misses, f"tolerance misses: {misses}"

    def test_savings_across_seeds(self, cg_runs):
        for default, dufp in cg_runs:
            saving = 1 - dufp.avg_package_power_w / default.avg_package_power_w
            assert saving > 0.08, f"saving collapsed to {saving:.3f}"

    def test_no_energy_loss_across_seeds(self, cg_runs):
        for default, dufp in cg_runs:
            assert dufp.total_energy_j < default.total_energy_j * 1.01

    def test_run_to_run_spread_is_paperlike(self, cg_runs):
        # Section V: "the measurement difference is lower than 2 % for
        # most of the configurations".
        times = [dufp.execution_time_s for _, dufp in cg_runs]
        spread = (max(times) - min(times)) / min(times)
        assert spread < 0.05


def _signature(result):
    """One run's seed-determined observables as comparable tuples."""
    return (
        tuple(
            (e.time_s, e.socket_id, e.channel, e.detail)
            for e in result.fault_events
        ),
        tuple(
            (s.finish_time_s, s.package_energy_j, s.dram_energy_j)
            for s in result.sockets
        ),
    )


class TestFaultStreamIsolationUnderBatching:
    """Fault masks must draw from the injector's stream, never the
    workload's.

    When runs advance in lockstep, a neighbour's fault draws must not
    shift this run's noise stream (and vice versa): each run owns a
    seed, and each seed fully determines both its workload realisation
    and its fault realisation regardless of execution strategy or
    co-batched company.
    """

    PLAN = FaultPlan(
        msr_read_fail_rate=0.05,
        cap_latch_fail_rate=0.10,
        tick_miss_rate=0.03,
        tick_jitter_rate=0.05,
    )

    def _engine(self, seed, *, faults=None):
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        return build_engine(
            build_application("CG", scale=0.1),
            lambda: DUFP(cfg),
            controller_cfg=cfg,
            noise=NOISE,
            seed=seed,
            faults=faults,
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_faulted_neighbour_does_not_perturb_clean_run(self, seed):
        scalar = self._engine(seed).run()
        alone = run_batch([self._engine(seed)])[0]
        with_neighbour = run_batch(
            [self._engine(seed), self._engine(seed + 1, faults=self.PLAN)]
        )[0]
        assert _signature(alone) == _signature(scalar)
        assert _signature(with_neighbour) == _signature(scalar)
        assert not with_neighbour.fault_events

    @pytest.mark.parametrize("seed", SEEDS)
    def test_batch_fault_realisation_matches_scalar(self, seed):
        scalar = self._engine(seed, faults=self.PLAN).run()
        batch = run_batch(
            [
                self._engine(seed, faults=self.PLAN),
                self._engine(seed + 1),  # clean co-batched neighbour
            ]
        )[0]
        assert _signature(batch) == _signature(scalar)

    def test_fault_realisations_differ_across_seeds(self):
        # The isolation claim is only meaningful if the plan actually
        # draws: distinct seeds must yield distinct fault streams.
        sigs = {
            _signature(run_batch([self._engine(s, faults=self.PLAN)])[0])[0]
            for s in SEEDS
        }
        assert len(sigs) == len(SEEDS)
        assert all(sig for sig in sigs)
