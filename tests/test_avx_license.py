"""AVX frequency licenses (opt-in core-frequency derating)."""

from dataclasses import replace

import pytest

from repro.config import CoreConfig, yeti_socket_config
from repro.errors import ConfigurationError
from repro.hardware.processor import PhaseWork, SimulatedProcessor

from tests.conftest import settle


def licensed_socket(threshold=16.0, avx_ghz=2.4):
    base = yeti_socket_config()
    return replace(
        base,
        core=replace(
            base.core, avx_license_fpc=threshold, avx_max_freq_hz=avx_ghz * 1e9
        ),
    )


WIDE = PhaseWork(flops=1e13, bytes=5e10, fpc=24.0)
NARROW = PhaseWork(flops=1e12, bytes=5e10, fpc=4.0)


class TestConfig:
    def test_disabled_by_default(self):
        assert yeti_socket_config().core.avx_license_fpc == float("inf")

    def test_bad_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(CoreConfig(), avx_license_fpc=0.0).validate()

    def test_avx_freq_must_be_in_range(self):
        with pytest.raises(ConfigurationError):
            replace(CoreConfig(), avx_max_freq_hz=5e9).validate()


class TestDerating:
    def test_wide_vector_phase_derated(self):
        p = SimulatedProcessor(licensed_socket())
        s = settle(p, WIDE)
        assert s.core_freq_hz == pytest.approx(2.4e9)

    def test_narrow_phase_unaffected(self):
        p = SimulatedProcessor(licensed_socket())
        s = settle(p, NARROW)
        assert s.core_freq_hz == pytest.approx(2.8e9)

    def test_disabled_license_means_full_turbo(self):
        p = SimulatedProcessor(yeti_socket_config())
        s = settle(p, WIDE)
        assert s.core_freq_hz == pytest.approx(2.8e9)

    def test_derating_reduces_flops_rate(self):
        plain = settle(SimulatedProcessor(yeti_socket_config()), WIDE)
        derated = settle(SimulatedProcessor(licensed_socket()), WIDE)
        assert derated.flops_rate == pytest.approx(
            plain.flops_rate * 2.4 / 2.8, rel=0.02
        )

    def test_derating_reduces_power(self):
        plain = settle(SimulatedProcessor(yeti_socket_config()), WIDE)
        derated = settle(SimulatedProcessor(licensed_socket()), WIDE)
        assert derated.package.total_w < plain.package.total_w

    def test_rapl_clamp_still_binds_below_license(self):
        p = SimulatedProcessor(licensed_socket())
        p.rapl.set_limits(80.0, 80.0)
        s = settle(p, WIDE, steps=300)
        assert s.core_freq_hz < 2.4e9

    def test_preview_consistent_with_step(self):
        p = SimulatedProcessor(licensed_socket())
        settle(p, WIDE, steps=50)
        preview = p.preview_progress_rate(WIDE)
        actual = p.step(0.01, WIDE) / 0.01
        assert preview == pytest.approx(actual, rel=0.05)
