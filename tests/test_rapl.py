"""RAPL model: limits, latching, energy counters, MSR layout."""

import math

import pytest

from repro.config import RAPLConfig
from repro.errors import RAPLError
from repro.hardware.msr import MSR, MSRFile, get_bits, set_bits
from repro.hardware.rapl import RAPLDomain, RAPLPackage


@pytest.fixture
def rapl():
    return RAPLPackage(RAPLConfig())


class TestDomainCounters:
    def test_energy_accumulates(self):
        d = RAPLDomain("pkg", 2.0**-14)
        d.accumulate(1.0)
        assert d.total_energy_j == pytest.approx(1.0)

    def test_counter_in_units(self):
        d = RAPLDomain("pkg", 2.0**-14)
        d.accumulate(1.0)
        assert d.counter == int(2**14)

    def test_counter_wraps_at_32_bits(self):
        d = RAPLDomain("pkg", 2.0**-14)
        wrap_j = (1 << 32) * 2.0**-14  # ~262 kJ
        d.accumulate(wrap_j + 16.0)
        assert d.counter == pytest.approx(16.0 * 2**14, abs=2)

    def test_energy_between_handles_wrap(self):
        d = RAPLDomain("pkg", 2.0**-14)
        before = (1 << 32) - 100
        after = 50
        assert d.energy_between(before, after) == pytest.approx(150 * 2.0**-14)

    def test_negative_energy_rejected(self):
        with pytest.raises(RAPLError):
            RAPLDomain("pkg", 1.0).accumulate(-1.0)


class TestLimitProgramming:
    def test_defaults(self, rapl):
        assert rapl.pl1.limit_w == 125.0
        assert rapl.pl2.limit_w == 150.0

    def test_set_limits_latches_after_delay(self, rapl):
        rapl.set_limits(100.0, 100.0)
        # Before the actuation delay elapses the old limits hold.
        assert rapl.pl1.limit_w == 125.0
        rapl.step(0.01, 100.0, 20.0)
        assert rapl.pl1.limit_w == 100.0
        assert rapl.pl2.limit_w == 100.0

    def test_reset_restores_defaults(self, rapl):
        rapl.set_limits(80.0, 80.0)
        rapl.step(0.01, 100.0, 20.0)
        rapl.reset_limits()
        rapl.step(0.01, 100.0, 20.0)
        assert rapl.pl1.limit_w == 125.0
        assert rapl.pl2.limit_w == 150.0

    def test_pl1_above_pl2_rejected(self, rapl):
        with pytest.raises(RAPLError):
            rapl.set_limits(120.0, 100.0)

    def test_below_hardware_floor_rejected(self, rapl):
        with pytest.raises(RAPLError):
            rapl.set_limits(10.0, 10.0)

    def test_newer_write_supersedes_pending(self, rapl):
        rapl.set_limits(100.0, 100.0)
        rapl.set_limits(90.0, 90.0)
        rapl.step(0.01, 100.0, 20.0)
        assert rapl.pl1.limit_w == 90.0


class TestBudget:
    def test_headroom_allows_burst_up_to_pl2(self, rapl):
        # Average well below PL1: budget hits the PL2 ceiling.
        for _ in range(300):
            rapl.step(0.01, 60.0, 10.0)
        assert rapl.allowed_power() == pytest.approx(150.0)

    def test_sustained_load_converges_to_pl1(self, rapl):
        for _ in range(1000):
            budget = rapl.allowed_power()
            rapl.step(0.01, min(budget, 200.0), 20.0)
        assert rapl._avg_pl1_w <= 126.5

    def test_overage_pulls_budget_below_pl1(self, rapl):
        for _ in range(200):
            rapl.step(0.01, 160.0, 20.0)
        assert rapl.allowed_power() < 125.0

    def test_disabled_limits_give_infinite_budget(self, rapl):
        rapl.pl1.enabled = False
        rapl.pl2.enabled = False
        assert math.isinf(rapl.allowed_power())

    def test_step_validates_inputs(self, rapl):
        with pytest.raises(RAPLError):
            rapl.step(0.0, 100.0, 10.0)
        with pytest.raises(RAPLError):
            rapl.step(0.01, -1.0, 10.0)


class TestEnergyMetering:
    def test_package_energy_integral(self, rapl):
        for _ in range(100):
            rapl.step(0.01, 100.0, 25.0)
        assert rapl.package.total_energy_j == pytest.approx(100.0)
        assert rapl.dram.total_energy_j == pytest.approx(25.0)


class TestMSRLayout:
    @pytest.fixture
    def wired(self, rapl):
        msrs = MSRFile()
        rapl.attach_msrs(msrs)
        return rapl, msrs

    def test_power_unit_register(self, wired):
        _, msrs = wired
        v = msrs.read(MSR.MSR_RAPL_POWER_UNIT)
        assert get_bits(v, 3, 0) == 3  # 1/8 W
        assert get_bits(v, 12, 8) == 14  # 2^-14 J
        assert get_bits(v, 19, 16) == 10  # ~976 us

    def test_limit_register_encodes_defaults(self, wired):
        _, msrs = wired
        v = msrs.read(MSR.MSR_PKG_POWER_LIMIT)
        assert get_bits(v, 14, 0) * 0.125 == pytest.approx(125.0)
        assert get_bits(v, 46, 32) * 0.125 == pytest.approx(150.0)
        assert get_bits(v, 15, 15) == 1  # PL1 enabled
        assert get_bits(v, 47, 47) == 1  # PL2 enabled

    def test_limit_register_write_programs_limits(self, wired):
        rapl, msrs = wired
        v = msrs.read(MSR.MSR_PKG_POWER_LIMIT)
        v = set_bits(v, 14, 0, int(100 / 0.125))
        v = set_bits(v, 46, 32, int(110 / 0.125))
        msrs.write(MSR.MSR_PKG_POWER_LIMIT, v)
        rapl.step(0.01, 100.0, 10.0)
        assert rapl.pl1.limit_w == pytest.approx(100.0)
        assert rapl.pl2.limit_w == pytest.approx(110.0)

    def test_energy_status_wraps(self, wired):
        rapl, msrs = wired
        assert msrs.read(MSR.MSR_PKG_ENERGY_STATUS) == 0
        rapl.step(1.0, 100.0, 10.0)
        assert msrs.read(MSR.MSR_PKG_ENERGY_STATUS) == rapl.package.counter

    def test_dram_energy_status(self, wired):
        rapl, msrs = wired
        rapl.step(1.0, 100.0, 30.0)
        assert msrs.read(MSR.MSR_DRAM_ENERGY_STATUS) == rapl.dram.counter
