"""Differential equivalence: the batch engine vs the scalar engine.

The batch engine's headline guarantee (docs/BATCHING.md) is that it is
an *execution strategy*, not an approximation: for any run the scalar
engine can execute, the vectorized engine produces numerically
identical traces, fault events, phases and summaries — exact for
integers, booleans and strings, within 1e-9 relative for floats.

This suite enforces the contract differentially: every case builds the
same run twice (identical seeds, configs and fault plans), executes one
copy per engine, and compares everything the run exposes — the full
per-sample trace, phase spans, fault-event streams and the
JSON-serialisable :func:`~repro.sim.export.run_summary`.  A fast smoke
subset stays in tier 1; the full policies × workloads × fault-plans
matrix runs under ``-m slow``.  The committed golden fault trace is one
case: the batch engine must reproduce it byte for byte.
"""

import math
import pathlib
import sys

import pytest

from repro.config import ControllerConfig, NoiseConfig
from repro.core.registry import as_spec, policy_info, policy_names
from repro.sim.batch import BatchSimulationEngine, run_batch
from repro.sim.export import run_summary, write_trace_jsonl
from repro.sim.faults import FaultPlan
from repro.sim.run import build_engine
from repro.workloads.catalog import build_application

# The golden-scenario constants live with the regeneration script so
# this suite, tests/test_golden_trace.py and the regenerator can never
# drift apart.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "scripts"))
from regen_golden_trace import CFG as GOLDEN_CFG  # noqa: E402
from regen_golden_trace import PLAN as GOLDEN_PLAN  # noqa: E402
from regen_golden_trace import QUIET as GOLDEN_QUIET  # noqa: E402
from regen_golden_trace import SEED as GOLDEN_SEED  # noqa: E402

GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_dufp_trace.jsonl"

#: The contract's float tolerance.  In practice the engines agree bit
#: for bit (the golden-trace case proves it), but the public promise
#: is 1e-9 relative so numerically neutral refactors stay legal.
REL_TOL = 1e-9

#: A moderate all-channel plan (distinct from the golden plan so the
#: matrix exercises a second fault realisation).
PLAN = FaultPlan(
    msr_read_fail_rate=0.04,
    counter_stuck_rate=0.03,
    power_dropout_rate=0.02,
    cap_latch_fail_rate=0.08,
    latch_delay_rate=0.08,
    tick_miss_rate=0.03,
    tick_jitter_rate=0.04,
)


def _policy(name: str, sockets: int = 1) -> str:
    """Registry selector for ``name`` with runnable default parameters.

    The budget coordinator needs a per-node watt budget covering every
    socket's 65 W floor, so matrix cells size one to the socket count.
    """
    return f"budget:watts={130 * sockets}" if name == "budget" else name


def _engine_pair(policy, app_name, *, faults, seed, scale=0.1, sockets=1):
    """Two independently built, identically configured engines."""
    cfg = ControllerConfig(tolerated_slowdown=0.10)
    spec = as_spec(_policy(policy, sockets))

    def build():
        return build_engine(
            build_application(app_name, scale=scale),
            spec.build(cfg),
            controller_cfg=cfg,
            socket_count=sockets,
            noise=NoiseConfig(),
            seed=seed,
            faults=faults,
        )

    return build(), build()


def _assert_float(a, b, what):
    if a is None or b is None:
        assert a is b, f"{what}: {a!r} vs {b!r}"
        return
    assert math.isfinite(a) == math.isfinite(b), f"{what}: {a!r} vs {b!r}"
    if a != b:  # fast path: bit-equal (the common case)
        assert math.isclose(a, b, rel_tol=REL_TOL, abs_tol=0.0), (
            f"{what}: {a!r} vs {b!r}"
        )


def _assert_summary(a, b, path="summary"):
    """Recursive comparison: exact for ints/bools/strings, 1e-9 floats."""
    assert type(a) is type(b) or (
        isinstance(a, float) and isinstance(b, float)
    ), f"{path}: {type(a)} vs {type(b)}"
    if isinstance(a, dict):
        assert a.keys() == b.keys(), f"{path}: key sets differ"
        for k in a:
            _assert_summary(a[k], b[k], f"{path}.{k}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: lengths {len(a)} vs {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_summary(x, y, f"{path}[{i}]")
    elif isinstance(a, bool) or not isinstance(a, float):
        assert a == b, f"{path}: {a!r} vs {b!r}"
    else:
        _assert_float(a, b, path)


def assert_runs_equivalent(scalar, batch):
    """The full contract, field by field, over two RunResults."""
    assert batch.app_name == scalar.app_name
    assert batch.controller_name == scalar.controller_name

    # Fault events: count, order, channels and timestamps must match —
    # the injector draws from its own stream in both engines.
    assert len(batch.fault_events) == len(scalar.fault_events)
    for eb, es in zip(batch.fault_events, scalar.fault_events):
        assert (eb.socket_id, eb.channel, eb.detail) == (
            es.socket_id,
            es.channel,
            es.detail,
        )
        _assert_float(eb.time_s, es.time_s, f"fault_event[{eb.channel}].time_s")

    assert len(batch.sockets) == len(scalar.sockets)
    for sb, ss in zip(batch.sockets, scalar.sockets):
        assert sb.socket_id == ss.socket_id
        _assert_float(sb.finish_time_s, ss.finish_time_s, "finish_time_s")
        _assert_float(sb.package_energy_j, ss.package_energy_j, "package_energy_j")
        _assert_float(sb.dram_energy_j, ss.dram_energy_j, "dram_energy_j")
        assert [p.name for p in sb.phases] == [p.name for p in ss.phases]
        for pb, ps in zip(sb.phases, ss.phases):
            _assert_float(pb.start_s, ps.start_s, f"phase[{pb.name}].start_s")
            _assert_float(pb.end_s, ps.end_s, f"phase[{pb.name}].end_s")
        assert len(sb.trace) == len(ss.trace), "trace lengths differ"
        for i, (tb, ts) in enumerate(zip(sb.trace, ss.trace)):
            for fname in (
                "time_s",
                "core_freq_hz",
                "uncore_freq_hz",
                "package_power_w",
                "dram_power_w",
                "cap_w",
                "flops_rate",
                "bytes_rate",
                "temperature_c",
            ):
                _assert_float(
                    getattr(tb, fname),
                    getattr(ts, fname),
                    f"trace[{i}].{fname}",
                )

    _assert_summary(run_summary(scalar), run_summary(batch))


def _run_pair(policy, app_name, *, faults=None, seed=0, scale=0.1, sockets=1):
    scalar_eng, batch_eng = _engine_pair(
        policy, app_name, faults=faults, seed=seed, scale=scale, sockets=sockets
    )
    scalar = scalar_eng.run()
    (batch,) = BatchSimulationEngine([batch_eng]).run()
    assert_runs_equivalent(scalar, batch)


# ---------------------------------------------------------------- tier 1

SMOKE_CASES = [
    ("dufp", "CG", PLAN, 7),
    ("duf", "EP", None, 3),
    ("dnpc", "FT", PLAN, 11),
    ("default", "BT", None, 1),
]


@pytest.mark.parametrize(
    "policy, app, faults, seed",
    SMOKE_CASES,
    ids=[f"{p}-{a}-{'faults' if f else 'clean'}" for p, a, f, _ in SMOKE_CASES],
)
def test_smoke_equivalence(policy, app, faults, seed):
    _run_pair(policy, app, faults=faults, seed=seed)


def test_two_socket_equivalence():
    _run_pair("budget", "LU", faults=PLAN, seed=5, sockets=2)


def test_mixed_batch_matches_individual_scalar_runs():
    """Co-batched heterogeneous runs must not perturb one another."""
    cases = [
        ("dufp", "CG", PLAN, 0),
        ("duf", "EP", None, 1),
        ("static", "FT", PLAN, 2),
        ("uncore", "UA", None, 3),
    ]
    pairs = [
        _engine_pair(p, a, faults=f, seed=s, scale=0.08)
        for p, a, f, s in cases
    ]
    scalars = [se.run() for se, _ in pairs]
    batched = run_batch([be for _, be in pairs])
    for scalar, batch in zip(scalars, batched):
        assert_runs_equivalent(scalar, batch)


@pytest.mark.slow
def test_batch_reproduces_golden_trace_byte_for_byte(tmp_path):
    """The committed golden fault trace, through the batch engine.

    tests/test_golden_trace.py pins the scalar engine to this file;
    pinning the batch engine to the *same bytes* pins the two engines
    to each other at every layer at once — sample encoding, fault draw
    order, controller decisions and the hardening paths they exercise.
    """
    engine = build_engine(
        build_application("CG", scale=0.3),
        as_spec("dufp").build(GOLDEN_CFG),
        controller_cfg=GOLDEN_CFG,
        noise=GOLDEN_QUIET,
        seed=GOLDEN_SEED,
        faults=GOLDEN_PLAN,
    )
    (result,) = run_batch([engine])
    fresh = tmp_path / "fresh.jsonl"
    write_trace_jsonl(result, str(fresh))
    assert fresh.read_bytes() == GOLDEN.read_bytes(), (
        "batch engine diverged from the golden scalar trace; the "
        "engines are contractually identical — fix the engine, do not "
        "regenerate the file"
    )


# ------------------------------------------------------------- full matrix

MATRIX_APPS = ("CG", "EP", "SP")
MATRIX_PLANS = {"clean": None, "faults": PLAN}


@pytest.mark.slow
@pytest.mark.parametrize("app", MATRIX_APPS)
@pytest.mark.parametrize("plan_name", sorted(MATRIX_PLANS))
@pytest.mark.parametrize(
    # Hetero split and fleet partitioning policies build budget-split
    # objects for the hetero/cluster engines, not per-socket controller
    # factories; their scalar-vs-batch behaviour is covered by the
    # hetero and cluster suites.
    "policy",
    [
        n
        for n in policy_names()
        if not policy_info(n).hetero and not policy_info(n).fleet
    ],
)
def test_matrix_equivalence(policy, app, plan_name):
    """Every registered CPU policy × workload sample × fault plan."""
    seed = 1009 * len(policy) + len(app) + (17 if plan_name == "faults" else 0)
    _run_pair(
        policy, app, faults=MATRIX_PLANS[plan_name], seed=seed, scale=0.08
    )
