"""Property-based tests of controller behaviour under arbitrary faults.

For any valid :class:`~repro.sim.faults.FaultPlan` and seed, a run
must complete with finite metrics, the cap must stay within
``[floor, default]`` and the uncore within its hardware range — faults
may degrade efficiency, never safety.  And the all-zero plan must be
indistinguishable from no plan at all.
"""

import pytest

import io
import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import ControllerConfig, NoiseConfig
from repro.core.dufp import DUFP
from repro.sim.export import trace_to_jsonl
from repro.sim.faults import FaultPlan
from repro.sim.run import run_application
from repro.workloads.generator import random_application

# Hypothesis fault-property sweeps: tier 2 (`pytest -m slow`).
pytestmark = pytest.mark.slow


QUIET = NoiseConfig(duration_jitter=0.0, counter_noise=0.0, power_noise=0.0)
SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

rates = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)

fault_plans = st.builds(
    FaultPlan,
    msr_read_fail_rate=rates,
    counter_stuck_rate=rates,
    counter_rollover_rate=rates,
    power_dropout_rate=rates,
    cap_latch_fail_rate=rates,
    latch_delay_rate=rates,
    latch_delay_extra_s=st.floats(min_value=0.0, max_value=0.5),
    tick_miss_rate=st.floats(min_value=0.0, max_value=0.8),
    tick_jitter_rate=rates,
    tick_jitter_max_s=st.floats(min_value=0.0, max_value=0.1),
    seed_salt=st.integers(min_value=0, max_value=1_000),
)


def short_app(seed):
    return random_application(seed, max_phases=4, max_duration_s=0.6)


@given(plan=fault_plans, seed=st.integers(min_value=0, max_value=5_000))
@SLOW
def test_any_fault_plan_completes_with_finite_metrics(plan, seed):
    plan.validate()
    cfg = ControllerConfig(tolerated_slowdown=0.10)
    result = run_application(
        short_app(seed),
        lambda: DUFP(cfg),
        controller_cfg=cfg,
        noise=QUIET,
        seed=seed,
        faults=plan,
    )
    assert math.isfinite(result.execution_time_s)
    assert result.execution_time_s > 0
    assert math.isfinite(result.total_energy_j)
    assert result.total_energy_j > 0
    for sample in result.socket(0).trace:
        assert math.isfinite(sample.package_power_w)
        assert math.isfinite(sample.cap_w)


@given(plan=fault_plans, seed=st.integers(min_value=0, max_value=5_000))
@SLOW
def test_cap_and_uncore_stay_in_bounds_under_faults(plan, seed):
    cfg = ControllerConfig(tolerated_slowdown=0.10)
    controllers = []

    def factory():
        c = DUFP(cfg)
        controllers.append(c)
        return c

    run_application(
        short_app(seed),
        factory,
        controller_cfg=cfg,
        noise=QUIET,
        seed=seed,
        faults=plan,
    )
    for tick in controllers[0].ticks:
        assert cfg.cap_floor_w - 1e-9 <= tick.cap_w <= 125.0 + 1e-9
        assert 1.2e9 - 1 <= tick.uncore_hz <= 2.4e9 + 1


@given(seed=st.integers(min_value=0, max_value=5_000))
@SLOW
def test_all_zero_plan_is_byte_identical_to_no_plan(seed):
    cfg = ControllerConfig(tolerated_slowdown=0.10)
    app = short_app(seed)

    def run(faults):
        return run_application(
            app,
            lambda: DUFP(cfg),
            controller_cfg=cfg,
            noise=QUIET,
            seed=seed,
            faults=faults,
        )

    clean, zeroed = run(None), run(FaultPlan.zero())
    buf_a, buf_b = io.StringIO(), io.StringIO()
    trace_to_jsonl(clean.socket(0), buf_a)
    trace_to_jsonl(zeroed.socket(0), buf_b)
    assert buf_a.getvalue() == buf_b.getvalue()
    assert clean.execution_time_s == zeroed.execution_time_s


@given(plan=fault_plans, seed=st.integers(min_value=0, max_value=5_000))
@SLOW
def test_fault_realisations_are_reproducible(plan, seed):
    cfg = ControllerConfig(tolerated_slowdown=0.10)
    app = short_app(seed)

    def run():
        return run_application(
            app,
            lambda: DUFP(cfg),
            controller_cfg=cfg,
            noise=QUIET,
            seed=seed,
            faults=plan,
        )

    a, b = run(), run()
    assert a.execution_time_s == b.execution_time_s
    assert a.fault_events == b.fault_events
