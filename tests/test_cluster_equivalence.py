"""Differential matrix: a 1-node cluster degenerates to the plain run.

The cluster engine's core contract is that it *adds nothing* beneath
the fleet layer: a single-node cluster whose fleet policy allocates
the node's full ceiling performs exactly the operations of the plain
node run — no extra RAPL writes, no RNG draws, no reordered sink
calls.  These tests enforce that contract bit for bit: identical
``run_summary`` dictionaries (every timing, energy and phase span) and
identical per-socket trace sample lists, across node controllers ×
workloads × fault plans (the shape of ``tests/test_batch_equivalence.
py``).  The committed golden cluster trace then pins the *multi*-node
behaviour — fleet re-allocation cadence, node seed stride, global
socket ids — byte for byte.
"""

import pathlib
import sys

import pytest

from repro.cluster import ClusterEngine, ClusterSpec
from repro.config import ControllerConfig, NoiseConfig
from repro.core.registry import (
    controller_factory,
    fleet_policy,
    make_spec,
    policy_info,
    policy_names,
)
from repro.sim.export import run_summary
from repro.sim.faults import FaultPlan
from repro.sim.run import build_engine
from repro.workloads.catalog import build_application

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "scripts"))
from regen_golden_trace import golden_cluster_run  # noqa: E402

from repro.sim.trace import StreamingTraceSink  # noqa: E402

GOLDEN_CLUSTER = (
    pathlib.Path(__file__).parent / "data" / "golden_cluster_trace.jsonl"
)

CFG = ControllerConfig(tolerated_slowdown=0.10)
NOISE = NoiseConfig()
#: Covers the single node's ceiling (125 W), so a correct fleet layer
#: has nothing to do — the precondition of the bit-identity contract.
COVERING_BUDGET_W = 125.0

MATRIX_APPS = ("CG", "EP", "UA", "WEB")
MATRIX_PLANS = {
    "clean": None,
    "faults": FaultPlan(msr_read_fail_rate=0.05, cap_latch_fail_rate=0.10),
}
#: Fleet policies whose covering-budget allocation sits exactly at the
#: ceiling: fleet-static (share = budget = ceiling) and fleet-fair
#: (range fraction t = 1).  fleet-demand allocates measured demand
#: (below the ceiling), so it genuinely caps even one node.
CEILING_FLEETS = ("fleet-static", "fleet-fair")


def _scalar_run(app_name, node_controller, seed, faults=None):
    return build_engine(
        build_application(app_name, scale=0.3),
        controller_factory(node_controller, CFG),
        controller_cfg=CFG,
        noise=NOISE,
        seed=seed,
        faults=faults,
    ).run()


def _cluster_run(app_name, fleet, node_controller, seed, faults=None):
    cluster = ClusterSpec(node_count=1, node_controller=node_controller)
    result = ClusterEngine(
        applications=[build_application(app_name, scale=0.3)],
        cluster=cluster,
        policy=fleet_policy(make_spec(fleet, budget_w=COVERING_BUDGET_W), CFG),
        controller_cfg=CFG,
        noise=NOISE,
        seed=seed,
        faults=faults,
    ).run()
    assert len(result.nodes) == 1
    return result.nodes[0]


def assert_bit_identical(scalar, node):
    assert run_summary(scalar) == run_summary(node)
    assert len(scalar.sockets) == len(node.sockets)
    for a, b in zip(scalar.sockets, node.sockets):
        assert a.trace == b.trace
    assert [
        (e.time_s, e.socket_id, e.channel, e.detail)
        for e in scalar.fault_events
    ] == [
        (e.time_s, e.socket_id, e.channel, e.detail)
        for e in node.fault_events
    ]


class TestSingleNodeDegeneracy:
    def test_smoke_fleet_static_single_node_is_the_plain_run(self):
        """Tier-1 pin of the bit-identity contract (dufp × CG)."""
        scalar = _scalar_run("CG", "dufp", seed=42)
        node = _cluster_run("CG", "fleet-static", "dufp", seed=42)
        assert_bit_identical(scalar, node)

    def test_smoke_fleet_fair_and_faulted_single_node(self):
        plan = MATRIX_PLANS["faults"]
        scalar = _scalar_run("UA", "dufp", seed=7, faults=plan)
        node = _cluster_run("UA", "fleet-fair", "dufp", seed=7, faults=plan)
        assert_bit_identical(scalar, node)

    def test_non_covering_budget_actually_caps(self):
        """The counter-example guarding against the skip-write rule
        growing too eager: a budget below the ceiling allocates below
        it, the RAPL write happens, and the run genuinely diverges
        from the uncapped plain run."""
        scalar = _scalar_run("CG", "default", seed=42)
        cluster = ClusterSpec(node_count=1, node_controller="default")
        node = ClusterEngine(
            applications=[build_application("CG", scale=0.3)],
            cluster=cluster,
            policy=fleet_policy(make_spec("fleet-static", budget_w=90.0), CFG),
            controller_cfg=CFG,
            noise=NOISE,
            seed=42,
        ).run().nodes[0]
        assert run_summary(scalar) != run_summary(node)
        assert node.execution_time_s > scalar.execution_time_s


@pytest.mark.slow
@pytest.mark.parametrize("app", MATRIX_APPS)
@pytest.mark.parametrize("plan_name", sorted(MATRIX_PLANS))
@pytest.mark.parametrize("fleet", CEILING_FLEETS)
@pytest.mark.parametrize(
    # Fleet and hetero policies are not per-socket node controllers.
    "policy",
    [
        n
        for n in policy_names()
        if not policy_info(n).hetero and not policy_info(n).fleet
    ],
)
def test_matrix_single_node_equivalence(policy, fleet, app, plan_name):
    """Every CPU policy × ceiling fleet × workload × fault plan."""
    seed = 1009 * len(policy) + len(app) + (17 if plan_name == "faults" else 0)
    plan = MATRIX_PLANS[plan_name]
    scalar = _scalar_run(app, policy, seed=seed, faults=plan)
    node = _cluster_run(app, fleet, policy, seed=seed, faults=plan)
    assert_bit_identical(scalar, node)


class TestGoldenClusterTrace:
    def test_shape(self):
        """Tier-1: the committed trace has both nodes and fault events."""
        import json

        records = [
            json.loads(line)
            for line in GOLDEN_CLUSTER.read_text().splitlines()
        ]
        samples = [r for r in records if "event" not in r]
        events = [r for r in records if "event" in r]
        assert {s["socket_id"] for s in samples} == {0, 1}
        assert events, "the pinned scenario must inject faults"
        # Events form one trailing block after the samples.
        kinds = ["event" in r for r in records]
        assert kinds == sorted(kinds)

    @pytest.mark.slow
    def test_golden_cluster_trace_is_byte_identical(self, tmp_path):
        fresh = tmp_path / "fresh.jsonl"
        golden_cluster_run(StreamingTraceSink(fresh))
        assert fresh.read_bytes() == GOLDEN_CLUSTER.read_bytes(), (
            "cluster trace diverged from the golden reference; if "
            "intentional, regenerate with scripts/regen_golden_trace.py"
        )
