"""The cluster layer: spec, fleet policies, metrics, engine, CLI.

Unit coverage for :mod:`repro.cluster` and the fleet policy half of
the registry — validation surfaces, the three partitioning strategies'
exact arithmetic, the fairness/tail metrics against hand-computed
values, the engine's allocation bookkeeping (demand release on node
finish, budget conservation, the shared trace sink's global socket
ids), the ``RunSpec``/digest threading, and the ``repro cluster`` CLI.
"""

import math
from dataclasses import replace

import pytest

from repro.cli import main as cli_main
from repro.cluster import (
    FLEET_HEADROOM_W,
    ClusterEngine,
    ClusterSpec,
    NODE_SEED_STRIDE,
    jain_index,
    percentile,
    slowdown_ratios,
)
from repro.config import ControllerConfig, NoiseConfig
from repro.core.registry import (
    PolicyError,
    fleet_policy,
    make_spec,
    parse_policy,
    policy_info,
    split_policy,
)
from repro.errors import ExperimentError, ReproError
from repro.experiments.executor import RunSpec, execute_spec, spec_key
from repro.experiments.protocol import run_cluster_protocol
from repro.sim.trace import InMemoryTraceSink
from repro.workloads.catalog import (
    SERVICE_APPLICATIONS,
    application_names,
    build_application,
)

CFG = ControllerConfig(tolerated_slowdown=0.10)
QUIET = NoiseConfig(duration_jitter=0.0, counter_noise=0.0, power_noise=0.0)


def _engine(policy="fleet-demand", budget=180.0, **cluster_kw):
    cluster_kw.setdefault("node_count", 2)
    cluster_kw.setdefault("node_apps", ("WEB", "BATCH"))
    cluster_kw.setdefault("period_s", 0.5)
    cluster = ClusterSpec(**cluster_kw)
    apps = [
        build_application(cluster.app_for(i, "WEB"), scale=0.2)
        for i in range(cluster.node_count)
    ]
    return ClusterEngine(
        applications=apps,
        cluster=cluster,
        policy=fleet_policy(make_spec(policy, budget_w=budget), CFG),
        controller_cfg=CFG,
        noise=QUIET,
        seed=7,
    )


class TestClusterSpec:
    def test_defaults_validate(self):
        ClusterSpec().validate()

    @pytest.mark.parametrize(
        "kw",
        [
            dict(node_count=0),
            dict(sockets_per_node=0),
            dict(period_s=0.0),
            dict(node_floor_w=-5.0),
            dict(node_controller="no-such-policy"),
            dict(node_controller="hetero-coord"),
            dict(node_controller="fleet-demand"),
        ],
    )
    def test_rejects_bad_topologies(self, kw):
        with pytest.raises(ReproError):
            ClusterSpec(**kw).validate()

    def test_node_apps_must_be_a_tuple(self):
        with pytest.raises(ExperimentError):
            ClusterSpec(node_apps=["WEB"]).validate()  # type: ignore[arg-type]

    def test_app_cycling(self):
        spec = ClusterSpec(node_count=5, node_apps=("WEB", "BATCH"))
        assert [spec.app_for(i, "CG") for i in range(4)] == [
            "WEB",
            "BATCH",
            "WEB",
            "BATCH",
        ]
        assert ClusterSpec(node_apps=()).app_for(3, "CG") == "CG"


class TestFleetPolicies:
    FLOORS = [65.0, 65.0, 65.0]
    CEILINGS = [125.0, 125.0, 125.0]

    def test_registry_flags_and_resolution(self):
        for name in ("fleet-static", "fleet-demand", "fleet-fair"):
            info = policy_info(name)
            assert info.fleet and not info.hetero
            fleet = fleet_policy(make_spec(name, budget_w=250.0), CFG)
            assert fleet.budget_w == 250.0
        assert policy_info("fleet-demand").paper_section.startswith("VI")

    def test_fleet_resolver_rejects_non_fleet_and_vice_versa(self):
        with pytest.raises(PolicyError):
            fleet_policy(make_spec("dufp"), CFG)
        with pytest.raises(PolicyError):
            fleet_policy(make_spec("hetero-coord", budget_w=300.0), CFG)
        with pytest.raises(PolicyError):
            split_policy(make_spec("fleet-demand", budget_w=250.0), CFG)

    def test_parse_policy_grammar(self):
        spec = parse_policy("fleet-demand:budget_w=190")
        assert spec.label == "fleet-demand-190W"
        assert fleet_policy(spec, CFG).budget_w == 190.0

    def test_static_fleet_equal_shares(self):
        fleet = fleet_policy(make_spec("fleet-static", budget_w=300.0), CFG)
        alloc = fleet.allocate([0.0] * 3, self.FLOORS, self.CEILINGS)
        assert alloc == pytest.approx([100.0] * 3)
        assert fleet.is_static

    def test_static_fleet_clamps_to_a_tight_ceiling(self):
        fleet = fleet_policy(make_spec("fleet-static", budget_w=300.0), CFG)
        # share 100, one tight band [65, 70]: that node clamps to 70.
        alloc = fleet.allocate([0.0] * 3, self.FLOORS, [70.0, 125.0, 125.0])
        assert alloc == pytest.approx([70.0, 100.0, 100.0])

    def test_static_fleet_pays_back_floor_overshoot(self):
        fleet = fleet_policy(make_spec("fleet-static", budget_w=245.0), CFG)
        # share 81.67, one high floor at 100: lifting it overshoots the
        # budget; the excess comes back from the other nodes' slack.
        alloc = fleet.allocate(
            [0.0] * 3, [100.0, 65.0, 65.0], self.CEILINGS
        )
        assert alloc[0] == pytest.approx(100.0)
        assert alloc[1] == pytest.approx(alloc[2])
        assert sum(alloc) == pytest.approx(245.0)

    def test_demand_fleet_serves_demand_and_conserves(self):
        # Ample budget (260 ≥ Σbids): every node gets its bid exactly.
        fleet = fleet_policy(make_spec("fleet-demand", budget_w=260.0), CFG)
        alloc = fleet.allocate([70.0, 120.0, 65.0], self.FLOORS, self.CEILINGS)
        assert alloc == pytest.approx([70.0, 120.0, 65.0])
        # Tight budget: demand above the floor shrinks proportionally,
        # the floor-bidding node is untouched.
        tight = fleet_policy(make_spec("fleet-demand", budget_w=250.0), CFG)
        alloc = tight.allocate([70.0, 120.0, 65.0], self.FLOORS, self.CEILINGS)
        assert sum(alloc) == pytest.approx(250.0)
        assert alloc[1] > alloc[0] > alloc[2]
        assert alloc[2] == pytest.approx(65.0)

    def test_demand_fleet_initial_is_the_even_split(self):
        fleet = fleet_policy(make_spec("fleet-demand", budget_w=240.0), CFG)
        assert fleet.initial(self.FLOORS, self.CEILINGS) == pytest.approx(
            [80.0] * 3
        )

    def test_fair_fleet_equal_range_fraction(self):
        fleet = fleet_policy(make_spec("fleet-fair", budget_w=285.0), CFG)
        # t = (285 - 195) / 180 = 0.5 → everyone at floor + half range.
        alloc = fleet.allocate([0.0] * 3, self.FLOORS, self.CEILINGS)
        assert alloc == pytest.approx([95.0] * 3)
        assert fleet.is_static

    def test_infeasible_budget_raises_not_crashes(self):
        for name in ("fleet-static", "fleet-demand", "fleet-fair"):
            fleet = fleet_policy(make_spec(name, budget_w=100.0), CFG)
            with pytest.raises(ReproError):
                fleet.allocate([120.0] * 3, self.FLOORS, self.CEILINGS)
            with pytest.raises(ReproError):
                fleet.initial(self.FLOORS, self.CEILINGS)


class TestMetrics:
    def test_jain_index(self):
        assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jain_index([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)
        assert jain_index([0.0, 0.0]) == 1.0
        with pytest.raises(ExperimentError):
            jain_index([])
        with pytest.raises(ExperimentError):
            jain_index([-1.0])

    def test_percentile_matches_linear_interpolation(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 4.0
        assert percentile(values, 50.0) == pytest.approx(2.5)
        assert percentile([1.0, 2.0], 99.0) == pytest.approx(1.99)
        with pytest.raises(ExperimentError):
            percentile([], 50.0)
        with pytest.raises(ExperimentError):
            percentile([1.0], 101.0)

    def test_slowdown_ratios(self):
        assert slowdown_ratios([2.0, 3.0], [1.0, 2.0]) == [2.0, 1.5]
        with pytest.raises(ExperimentError):
            slowdown_ratios([1.0], [1.0, 2.0])
        with pytest.raises(ExperimentError):
            slowdown_ratios([1.0], [0.0])


class TestClusterEngine:
    def test_mismatched_application_count_raises(self):
        cluster = ClusterSpec(node_count=2)
        with pytest.raises(ReproError):
            ClusterEngine(
                applications=[build_application("EP", scale=0.1)],
                cluster=cluster,
                policy=fleet_policy(make_spec("fleet-static"), CFG),
            )

    def test_demand_fleet_releases_budget_when_a_node_finishes(self):
        # EP (short at 0.2 scale) next to CG: once EP's node finishes
        # it bids its floor, and CG's node allocation grows.
        result = _engine(node_apps=("EP", "CG"), budget=170.0).run()
        assert len(result.allocations) > 1
        for _, alloc in result.allocations:
            assert sum(alloc) <= 170.0 + 1e-6
        finishes = sorted(result.node_makespans_s)
        assert finishes[0] < finishes[1]
        last = result.allocations[-1][1]
        first = result.allocations[1][1]
        ep_node, cg_node = (
            (0, 1) if result.node_makespans_s[0] < result.node_makespans_s[1]
            else (1, 0)
        )
        assert last[ep_node] == pytest.approx(65.0)
        assert last[cg_node] >= first[cg_node]

    def test_static_policies_allocate_once_and_never_measure(self):
        result = _engine(policy="fleet-fair", budget=170.0).run()
        assert len(result.allocations) == 1
        assert result.allocations[0][0] == 0.0

    def test_metrics_are_consistent(self):
        result = _engine(budget=170.0).run()
        assert result.makespan_s == max(result.node_makespans_s)
        assert result.total_energy_j == pytest.approx(
            result.package_energy_j + result.dram_energy_j
        )
        assert len(result.slowdowns) == 2
        assert 0.0 < result.fairness_index <= 1.0
        assert result.p99_slowdown == pytest.approx(
            percentile(result.slowdowns, 99.0)
        )
        assert all(s > 0.9 for s in result.slowdowns)

    def test_node_seeds_differ_by_the_stride(self):
        # Same app on both nodes under *noisy* defaults: the node seed
        # stride keeps the two RNG streams distinct.
        engine = _engine(
            node_apps=("CG", "CG"),
            budget=260.0,
            policy="fleet-static",
        )
        engine.noise = NoiseConfig()
        result = engine.run()
        t0 = [s.time_s for s in result.nodes[0].sockets[0].trace]
        p0 = [s.package_power_w for s in result.nodes[0].sockets[0].trace]
        p1 = [s.package_power_w for s in result.nodes[1].sockets[0].trace]
        assert t0  # traces recorded
        assert NODE_SEED_STRIDE > 1009  # above the per-run stride
        assert p0 != p1  # distinct streams under identical configs

    def test_shared_sink_gets_global_socket_ids(self):
        sink = InMemoryTraceSink()
        engine = _engine(budget=170.0, sockets_per_node=1)
        engine.trace_sink = sink
        engine.run()
        assert sink.collected(0) and sink.collected(1)

    def test_headroom_constant_is_the_coordinator_default(self):
        from repro.core.budget import NodeBudgetCoordinator

        assert FLEET_HEADROOM_W == NodeBudgetCoordinator.headroom_w


class TestClusterProtocolAndSpec:
    def test_run_cluster_protocol_metrics(self):
        apps = [build_application(a, scale=0.2) for a in ("WEB", "BATCH")]
        cluster = ClusterSpec(node_count=2, node_apps=("WEB", "BATCH"))
        proto = run_cluster_protocol(
            apps,
            make_spec("fleet-demand", budget_w=180.0),
            cluster,
            controller_cfg=CFG,
            runs=3,
            noise=QUIET,
        )
        assert proto.app_name == "WEB+BATCH"
        assert len(proto.times_s) == 3
        assert all(t > 0 for t in proto.times_s)
        assert all(e > 0 for e in proto.total_energy_j)
        # Deterministic noise: repetitions still differ by run seed.
        assert math.isfinite(proto.mean_time_s)

    def test_cluster_spec_key_is_stable_and_distinct(self):
        plain = RunSpec(app_name="CG", controller="dufp", runs=2)
        assert spec_key(plain) == spec_key(
            replace(plain, cluster=None)
        )  # the omitted default: pre-cluster digests unchanged
        a = RunSpec(
            app_name="CG",
            controller="fleet-static",
            runs=2,
            cluster=ClusterSpec(node_count=2),
        )
        b = replace(a, cluster=ClusterSpec(node_count=3))
        assert spec_key(a) != spec_key(b)
        assert spec_key(a) != spec_key(plain)

    def test_execute_spec_routes_cluster_cells(self):
        spec = RunSpec(
            app_name="EP",
            controller="fleet-static:budget_w=250",
            runs=2,
            app_scale=0.2,
            noise=QUIET,
            cluster=ClusterSpec(node_count=2),
        )
        proto = execute_spec(spec)
        assert len(proto.times_s) == 2
        assert proto.controller_name == "fleet-static-250W"

    def test_batch_engine_normalises_for_cluster_cells(self):
        spec = RunSpec(
            app_name="EP",
            controller="fleet-static",
            engine="batch",
            cluster=ClusterSpec(node_count=2),
        )
        assert spec.engine == "scalar"


class TestClusterCLI:
    def test_cluster_command_prints_machine_readable_lines(self, capsys):
        assert (
            cli_main(
                [
                    "cluster",
                    "--nodes",
                    "2",
                    "--budget",
                    "170",
                    "--scale",
                    "0.2",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        cluster_lines = [
            line for line in out.splitlines() if line.startswith("CLUSTER ")
        ]
        assert len(cluster_lines) == 2  # fleet-static vs fleet-demand
        for line in cluster_lines:
            assert "app=WEB+BATCH" in line
            assert "jain=" in line and "p99_slowdown=" in line

    def test_cluster_command_custom_policy_and_apps(self, capsys):
        assert (
            cli_main(
                [
                    "cluster",
                    "--nodes",
                    "2",
                    "--apps",
                    "EP",
                    "CG",
                    "--scale",
                    "0.2",
                    "--policy",
                    "fleet-fair:budget_w=170",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "policy=fleet-fair-170W" in out
        assert "app=EP+CG" in out

    def test_sweep_rejects_gpus_with_nodes(self, capsys):
        assert (
            cli_main(
                ["sweep", "--apps", "EP", "--nodes", "2", "--gpus", "1"]
            )
            == 1
        )
        assert "mutually exclusive" in capsys.readouterr().err

    def test_policies_lists_fleet_policies(self, capsys):
        assert cli_main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("fleet-static", "fleet-demand", "fleet-fair"):
            assert name in out


class TestServiceCatalog:
    def test_pinned_names_unchanged_and_service_resolvable(self):
        assert len(application_names()) == 10
        assert "WEB" not in application_names()
        assert set(SERVICE_APPLICATIONS) == {"WEB", "BATCH"}
        for name in SERVICE_APPLICATIONS:
            app = build_application(name, scale=0.5)
            assert app.nominal_duration(None) > 0

    def test_web_is_latency_sensitive_batch_is_memory_bound(self):
        web = build_application("WEB")
        batch = build_application("BATCH")
        assert any(p.latency_sensitivity > 0.3 for p in web.phases)
        scan = max(batch.phases, key=lambda p: p.bytes)
        assert scan.bytes > 10 * scan.flops
