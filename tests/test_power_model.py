"""Package power model: forward evaluation and inversion."""

import pytest

from repro.config import CoreConfig, PowerModelConfig, UncoreConfig
from repro.hardware.power import PackagePowerModel


@pytest.fixture
def model():
    return PackagePowerModel(CoreConfig(), UncoreConfig(), PowerModelConfig())


class TestForwardModel:
    def test_power_increases_with_frequency(self, model):
        low = model.core_power(1.5e9, 1.0)
        high = model.core_power(2.8e9, 1.0)
        assert high > low

    def test_power_superlinear_in_frequency(self, model):
        # V scales with f, so power grows faster than linearly.
        p1 = model.core_power(1.4e9, 1.0)
        p2 = model.core_power(2.8e9, 1.0)
        assert p2 > 2.0 * p1

    def test_activity_scales_core_power(self, model):
        idle = model.core_power(2.8e9, 0.0)
        busy = model.core_power(2.8e9, 1.0)
        assert 0 < idle < busy
        # Idle fraction: stalled cores still burn most of the power.
        assert idle / busy == pytest.approx(
            PowerModelConfig().core_idle_fraction, rel=1e-6
        )

    def test_traffic_scales_uncore_power(self, model):
        quiet = model.uncore_power(2.4e9, 0.0)
        loud = model.uncore_power(2.4e9, 1.0)
        assert 0 < quiet < loud

    def test_uncore_range_spans_significant_power(self, model):
        # The EP headline: dropping uncore 2.4 -> 1.2 must free roughly
        # 15-25 W (the paper's ~24 % savings are uncore-dominated).
        saving = model.uncore_power(2.4e9, 0.0) - model.uncore_power(1.2e9, 0.0)
        assert 12.0 < saving < 30.0

    def test_package_breakdown_sums(self, model):
        b = model.package_power(2.8e9, 2.4e9, 1.0, 0.5)
        assert b.total_w == pytest.approx(b.static_w + b.core_w + b.uncore_w)

    def test_calibration_memory_bound_near_budget(self, model):
        # CG-like: stalled-but-clocking cores + saturated uncore should
        # sit near (but under) the 125 W budget.
        b = model.package_power(2.8e9, 2.4e9, 0.45, 1.0)
        assert 110.0 < b.total_w < 125.5

    def test_core_boost_scales_core_only(self, model):
        plain = model.package_power(2.8e9, 2.4e9, 1.0, 0.0)
        boosted = model.package_power(2.8e9, 2.4e9, 1.0, 0.0, core_boost=1.5)
        assert boosted.core_w == pytest.approx(1.5 * plain.core_w)
        assert boosted.uncore_w == plain.uncore_w

    def test_activity_bounds_checked(self, model):
        with pytest.raises(ValueError):
            model.core_power(2.8e9, 1.5)
        with pytest.raises(ValueError):
            model.uncore_power(2.4e9, -0.1)

    def test_bad_boost_rejected(self, model):
        with pytest.raises(ValueError):
            model.package_power(2.8e9, 2.4e9, 1.0, 0.0, core_boost=0.0)


class TestInversion:
    def test_generous_budget_gives_max_freq(self, model):
        f = model.max_core_freq_under(500.0, 2.4e9, 1.0, 1.0)
        assert f == pytest.approx(2.8e9)

    def test_tiny_budget_gives_min_freq(self, model):
        f = model.max_core_freq_under(20.0, 2.4e9, 1.0, 1.0)
        assert f == pytest.approx(1.0e9)

    def test_inversion_consistent_with_forward(self, model):
        budget = 100.0
        f = model.max_core_freq_under(budget, 2.4e9, 0.8, 0.9)
        total = model.package_power(2.8e9 if False else f, 2.4e9, 0.8, 0.9).total_w
        assert total <= budget + 1e-9

    def test_inversion_is_maximal(self, model):
        budget = 100.0
        f = model.max_core_freq_under(budget, 2.4e9, 0.8, 0.9)
        if f < 2.8e9:
            one_up = f + CoreConfig().step_hz
            assert (
                model.package_power(one_up, 2.4e9, 0.8, 0.9).total_w > budget
            )

    def test_inversion_monotone_in_budget(self, model):
        freqs = [
            model.max_core_freq_under(b, 2.4e9, 0.9, 0.9)
            for b in (70.0, 90.0, 110.0, 130.0)
        ]
        assert freqs == sorted(freqs)

    def test_lower_uncore_frees_core_budget(self, model):
        f_hi = model.max_core_freq_under(95.0, 2.4e9, 1.0, 0.5)
        f_lo = model.max_core_freq_under(95.0, 1.2e9, 1.0, 0.5)
        assert f_lo >= f_hi

    def test_boost_reduces_allowed_frequency(self, model):
        f_plain = model.max_core_freq_under(110.0, 2.4e9, 1.0, 0.5)
        f_boost = model.max_core_freq_under(110.0, 2.4e9, 1.0, 0.5, core_boost=1.5)
        assert f_boost < f_plain
