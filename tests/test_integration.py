"""End-to-end integration: the paper's qualitative claims, small scale.

Single-seed runs (deterministic) of the real applications under the
real controllers; each test asserts one conclusion from the paper's
evaluation at reduced statistical weight.  The full-protocol versions
live under ``benchmarks/``.
"""

import pytest

from repro.config import ControllerConfig, NoiseConfig
from repro.core.baselines import DefaultController, StaticPowerCap
from repro.core.duf import DUF
from repro.core.dufp import DUFP
from repro.sim.run import run_application
from repro.workloads.catalog import build_application


QUIET = NoiseConfig(duration_jitter=0.001, counter_noise=0.001, power_noise=0.001)


def run(app_name, factory, cfg=None, seed=11, scale=1.0):
    return run_application(
        build_application(app_name, scale=scale),
        factory,
        controller_cfg=cfg or ControllerConfig(),
        noise=QUIET,
        seed=seed,
    )


@pytest.fixture(scope="module")
def cg_default():
    return run("CG", DefaultController)


@pytest.fixture(scope="module")
def ep_default():
    return run("EP", DefaultController)


class TestMotivation:
    """Section II-A: static capping of CG."""

    def test_static_cap_saves_power_but_costs_time(self, cg_default):
        capped = run("CG", lambda: StaticPowerCap(100.0))
        assert capped.avg_package_power_w < cg_default.avg_package_power_w - 15.0
        slowdown = capped.execution_time_s / cg_default.execution_time_s - 1
        assert 0.06 < slowdown < 0.20  # paper: 12 %

    def test_cg_default_power_near_budget(self, cg_default):
        # "the power consumption is almost at the maximum processor budget"
        assert cg_default.avg_package_power_w > 0.90 * 125.0


class TestHeadlines:
    """Section V: DUFP's headline behaviours."""

    def test_dufp_saves_power_on_every_app(self):
        cfg = ControllerConfig(tolerated_slowdown=0.05)
        for app in ("CG", "EP", "BT", "MG"):
            default = run(app, DefaultController)
            dufp = run(app, lambda: DUFP(cfg), cfg)
            assert (
                dufp.avg_package_power_w < default.avg_package_power_w
            ), f"{app}: no savings"

    def test_dufp_beats_duf_on_cg(self, cg_default):
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        duf = run("CG", lambda: DUF(cfg), cfg)
        dufp = run("CG", lambda: DUFP(cfg), cfg)
        assert dufp.avg_package_power_w < duf.avg_package_power_w - 3.0

    def test_ep_savings_are_uncore_dominated(self, ep_default):
        # DUF alone (no capping) already recovers most of EP's savings.
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        duf = run("EP", lambda: DUF(cfg), cfg)
        dufp = run("EP", lambda: DUFP(cfg), cfg)
        duf_save = ep_default.avg_package_power_w - duf.avg_package_power_w
        dufp_save = ep_default.avg_package_power_w - dufp.avg_package_power_w
        assert duf_save > 10.0
        assert duf_save > 0.6 * dufp_save

    def test_ep_unharmed_by_duf(self, ep_default):
        cfg = ControllerConfig(tolerated_slowdown=0.05)
        duf = run("EP", lambda: DUF(cfg), cfg)
        slowdown = duf.execution_time_s / ep_default.execution_time_s - 1
        assert abs(slowdown) < 0.01

    def test_hpl_savings_modest(self):
        # Paper: CPU-intensive apps stay below ~7 % savings.
        cfg = ControllerConfig(tolerated_slowdown=0.05)
        default = run("HPL", DefaultController)
        dufp = run("HPL", lambda: DUFP(cfg), cfg)
        saving = 1 - dufp.avg_package_power_w / default.avg_package_power_w
        assert saving < 0.08

    def test_dufp_respects_5pct_tolerance_on_cg(self, cg_default):
        cfg = ControllerConfig(tolerated_slowdown=0.05)
        dufp = run("CG", lambda: DUFP(cfg), cfg)
        slowdown = dufp.execution_time_s / cg_default.execution_time_s - 1
        assert slowdown < 0.05 + 0.02

    def test_no_energy_loss_at_5pct_on_cg(self, cg_default):
        cfg = ControllerConfig(tolerated_slowdown=0.05)
        dufp = run("CG", lambda: DUFP(cfg), cfg)
        assert dufp.total_energy_j <= cg_default.total_energy_j * 1.005

    def test_dufp_lowers_cg_core_frequency(self, cg_default):
        # Fig. 5: capping pulls the average core frequency down.
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        duf = run("CG", lambda: DUF(cfg), cfg)
        dufp = run("CG", lambda: DUFP(cfg), cfg)
        f_duf = duf.socket(0).average_core_freq_hz()
        f_dufp = dufp.socket(0).average_core_freq_hz()
        assert f_duf > 2.75e9
        assert f_dufp < f_duf - 0.15e9

    def test_ua_violates_zero_tolerance_slightly(self):
        # Paper: UA misses the 0 % tolerance by ~1 % because the short
        # memory block drags the cap down before compute returns.
        cfg = ControllerConfig(tolerated_slowdown=0.0)
        default = run("UA", DefaultController)
        dufp = run("UA", lambda: DUFP(cfg), cfg)
        slowdown = dufp.execution_time_s / default.execution_time_s - 1
        assert 0.001 < slowdown < 0.04

    def test_lammps_bursts_cost_hidden_time(self):
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        default = run("LAMMPS", DefaultController)
        dufp = run("LAMMPS", lambda: DUFP(cfg), cfg)
        slowdown = dufp.execution_time_s / default.execution_time_s - 1
        assert slowdown > 0.01  # the bursts are not free under a cap

    def test_mg_dram_power_not_improved_at_zero(self):
        # Fig. 4: MG at 0 % has a slight DRAM power loss (overfetch).
        cfg = ControllerConfig(tolerated_slowdown=0.0)
        default = run("MG", DefaultController)
        dufp = run("MG", lambda: DUFP(cfg), cfg)
        assert dufp.avg_dram_power_w >= default.avg_dram_power_w * 0.995


class TestControllerTraces:
    def test_dufp_tick_log_complete(self):
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        controllers = []

        def factory():
            c = DUFP(cfg)
            controllers.append(c)
            return c

        result = run("CG", factory, cfg)
        ticks = controllers[0].ticks
        expected = int(result.execution_time_s / cfg.interval_s)
        assert abs(len(ticks) - expected) <= 2

    def test_dufp_visits_multiple_caps_on_cg(self):
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        controllers = []

        def factory():
            c = DUFP(cfg)
            controllers.append(c)
            return c

        run("CG", factory, cfg)
        caps = {t.cap_w for t in controllers[0].ticks}
        assert len(caps) >= 4
        assert min(caps) < 110.0
