"""Property-based tests (hypothesis) on core invariants."""

import pytest

from hypothesis import given, settings, strategies as st

from repro import units
from repro.analysis.stats import keep_indices_drop_extremes, trimmed_mean_drop_extremes
from repro.config import ControllerConfig, CoreConfig, yeti_socket_config
from repro.core.detector import classify_oi
from repro.core.tolerance import SlowdownTracker, ToleranceVerdict
from repro.hardware.msr import (
    decode_rapl_window,
    encode_rapl_window,
    get_bits,
    set_bits,
)
from repro.hardware.power import PackagePowerModel
from repro.hardware.rapl import RAPLDomain
from repro.config import PowerModelConfig, UncoreConfig

# Hypothesis unit-property sweeps: tier 2 (`pytest -m slow`).
pytestmark = pytest.mark.slow


# ---------------------------------------------------------------------------
# Bit-field codecs
# ---------------------------------------------------------------------------


@given(
    value=st.integers(min_value=0, max_value=(1 << 64) - 1),
    lo=st.integers(min_value=0, max_value=60),
    width=st.integers(min_value=1, max_value=16),
)
def test_set_then_get_roundtrips(value, lo, width):
    hi = min(lo + width - 1, 63)
    field = (1 << (hi - lo + 1)) - 1  # all-ones field
    out = set_bits(value, hi, lo, field)
    assert get_bits(out, hi, lo) == field
    # Bits outside the field are untouched.
    mask = ((1 << (hi - lo + 1)) - 1) << lo
    assert out & ~mask == value & ~mask & ((1 << 64) - 1)


@given(seconds=st.floats(min_value=1e-3, max_value=40.0))
def test_rapl_window_codec_relative_error_bounded(seconds):
    unit = 2.0**-10
    field = encode_rapl_window(seconds, unit)
    decoded = decode_rapl_window(field, unit)
    # The (Y, Z) format has ~12 % max quantisation error inside its
    # range; clamp behaviour at the bottom end is absolute.
    assert decoded <= 2**31 * 1.75 * unit
    if seconds >= unit:
        assert abs(decoded - seconds) / seconds < 0.15


# ---------------------------------------------------------------------------
# Energy counters
# ---------------------------------------------------------------------------


@given(
    increments=st.lists(
        st.floats(min_value=0.0, max_value=5e4), min_size=1, max_size=30
    )
)
def test_energy_counter_wrap_reconstruction(increments):
    d = RAPLDomain("pkg", 2.0**-14)
    total_reconstructed = 0.0
    prev = d.counter
    for inc in increments:
        d.accumulate(inc)
        cur = d.counter
        total_reconstructed += d.energy_between(prev, cur)
        prev = cur
    # Each increment stays below the wrap range (~262 kJ), so the
    # wrap-corrected deltas reconstruct the true total to counter
    # resolution.
    assert total_reconstructed == units.clamp(
        total_reconstructed,
        d.total_energy_j - len(increments) * d.energy_unit_j * 2,
        d.total_energy_j + len(increments) * d.energy_unit_j * 2,
    )


# ---------------------------------------------------------------------------
# Power model
# ---------------------------------------------------------------------------


def _model():
    return PackagePowerModel(CoreConfig(), UncoreConfig(), PowerModelConfig())


@given(
    f=st.floats(min_value=1.0e9, max_value=2.8e9),
    act=st.floats(min_value=0.0, max_value=1.0),
)
def test_core_power_monotone_in_activity(f, act):
    m = _model()
    assert m.core_power(f, act) <= m.core_power(f, 1.0) + 1e-12


@given(
    budget=st.floats(min_value=30.0, max_value=200.0),
    fu=st.floats(min_value=1.2e9, max_value=2.4e9),
    act=st.floats(min_value=0.0, max_value=1.0),
    traffic=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=60)
def test_rapl_inversion_never_exceeds_budget_above_floor(budget, fu, act, traffic):
    m = _model()
    f = m.max_core_freq_under(budget, fu, act, traffic)
    core_cfg = CoreConfig()
    assert core_cfg.min_freq_hz <= f <= core_cfg.max_freq_hz
    if f > core_cfg.min_freq_hz:
        # Above the floor the choice must actually fit the budget.
        assert m.package_power(f, fu, act, traffic).total_w <= budget + 1e-9


@given(
    b1=st.floats(min_value=40.0, max_value=150.0),
    b2=st.floats(min_value=40.0, max_value=150.0),
)
@settings(max_examples=40)
def test_rapl_inversion_monotone(b1, b2):
    m = _model()
    lo, hi = sorted((b1, b2))
    f_lo = m.max_core_freq_under(lo, 2.4e9, 0.9, 0.9)
    f_hi = m.max_core_freq_under(hi, 2.4e9, 0.9, 0.9)
    assert f_lo <= f_hi


# ---------------------------------------------------------------------------
# smooth_max
# ---------------------------------------------------------------------------


@given(
    a=st.floats(min_value=0.0, max_value=1e6),
    b=st.floats(min_value=0.0, max_value=1e6),
)
def test_smooth_max_bounds(a, b):
    s = units.smooth_max(a, b)
    assert max(a, b) <= s + 1e-9
    assert s <= a + b + 1e-9


@given(
    a=st.floats(min_value=1e-3, max_value=1e6),
    b=st.floats(min_value=1e-3, max_value=1e6),
    k=st.floats(min_value=0.1, max_value=100.0),
)
def test_smooth_max_homogeneous(a, b, k):
    assert units.smooth_max(k * a, k * b) == units.clamp(
        units.smooth_max(k * a, k * b),
        k * units.smooth_max(a, b) * (1 - 1e-9),
        k * units.smooth_max(a, b) * (1 + 1e-9),
    )


# ---------------------------------------------------------------------------
# Tolerance trackers
# ---------------------------------------------------------------------------


@given(
    tol=st.floats(min_value=0.0, max_value=0.5),
    maximum=st.floats(min_value=1.0, max_value=1e12),
    value=st.floats(min_value=0.0, max_value=1e12),
)
def test_tracker_verdicts_are_ordered(tol, maximum, value):
    t = SlowdownTracker(tolerated_slowdown=tol, measurement_error=0.01)
    t.observe(maximum)
    verdict = t.judge(value)
    if value >= maximum:
        assert verdict is ToleranceVerdict.WITHIN
    if value < maximum * (1 - tol - 0.05):
        assert verdict is ToleranceVerdict.BELOW


@given(values=st.lists(st.floats(min_value=0.0, max_value=1e9), min_size=1))
def test_tracker_max_is_running_max(values):
    t = SlowdownTracker(tolerated_slowdown=0.1, measurement_error=0.01)
    for v in values:
        t.observe(v)
    assert t.phase_max == max(values)


# ---------------------------------------------------------------------------
# OI classification
# ---------------------------------------------------------------------------


@given(oi=st.floats(min_value=0.0, max_value=1e6))
def test_oi_classification_total_and_consistent(oi):
    cfg = ControllerConfig()
    c = classify_oi(oi, cfg)
    assert c.is_memory == (oi < cfg.oi_memory_boundary)


# ---------------------------------------------------------------------------
# Trimmed statistics
# ---------------------------------------------------------------------------


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6), min_size=3, max_size=30
    )
)
def test_trim_drops_exactly_two(values):
    keep = keep_indices_drop_extremes(values)
    assert len(keep) == len(values) - 2


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6), min_size=3, max_size=30
    )
)
def test_trimmed_mean_within_minmax(values):
    mean = trimmed_mean_drop_extremes(values)
    assert min(values) - 1e-6 <= mean <= max(values) + 1e-6


@given(
    values=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=3, max_size=20),
    outlier=st.floats(min_value=1e8, max_value=1e12),
)
def test_trimmed_mean_ignores_single_high_outlier(values, outlier):
    base = trimmed_mean_drop_extremes(sorted(values))
    with_outlier = trimmed_mean_drop_extremes(sorted(values)[:-1] + [outlier])
    assert with_outlier < outlier


# ---------------------------------------------------------------------------
# Voltage curve
# ---------------------------------------------------------------------------


@given(f=st.floats(min_value=0.5e9, max_value=4.0e9))
def test_voltage_curve_bounded(f):
    cfg = yeti_socket_config().core
    v = cfg.voltage_at(f)
    assert cfg.v_min <= v <= cfg.v_max
