"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_subcommands_exist(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.command == "table1"

    def test_runs_flag(self):
        args = build_parser().parse_args(["fig3a", "--runs", "3"])
        assert args.runs == 3

    def test_run_subcommand(self):
        args = build_parser().parse_args(
            ["run", "CG", "--controller", "duf", "--slowdown", "20"]
        )
        assert args.app == "CG"
        assert args.controller == "duf"
        assert args.slowdown == 20.0

    def test_bad_controller_rejected(self, capsys):
        # Unknown policies now fail at registry resolution, not argparse.
        assert main(["run", "CG", "--controller", "magic"]) == 1
        err = capsys.readouterr().err
        assert "error" in err and "magic" in err

    def test_sweep_controller_flag(self):
        args = build_parser().parse_args(
            ["sweep", "--controller", "dnpc", "--controller", "budget:watts=95"]
        )
        assert args.controller == ["dnpc", "budget:watts=95"]

    def test_workers_and_cache_flags(self):
        args = build_parser().parse_args(
            ["fig3a", "--workers", "4", "--cache", "/tmp/c"]
        )
        assert args.workers == 4
        assert args.cache == "/tmp/c"

    def test_sweep_grid_flags(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "--apps", "CG", "EP",
                "--tolerances", "0", "10",
                "--scale", "0.5",
                "--workers", "2",
            ]
        )
        assert args.apps == ["CG", "EP"]
        assert args.tolerances == [0.0, 10.0]
        assert args.scale == 0.5


class TestMain:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "repro" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "CG" in out and "fig3a" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_run_single(self, capsys):
        assert main(["run", "EP", "--controller", "default"]) == 0
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "avg package power" in out

    def test_run_dufp(self, capsys):
        assert main(["run", "CG", "--controller", "dufp", "--slowdown", "10"]) == 0
        assert "dufp" in capsys.readouterr().out

    def test_run_static_cap(self, capsys):
        assert main(
            ["run", "EP", "--controller", "static", "--cap", "100"]
        ) == 0
        assert "static-100W" in capsys.readouterr().out

    def test_unknown_app_is_clean_error(self, capsys):
        assert main(["run", "NOPE"]) == 1
        assert "error" in capsys.readouterr().err

    def test_sweep_reduced_grid(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--apps", "EP",
            "--tolerances", "0",
            "--runs", "1",
            "--scale", "0.2",
            "--cache", str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "executed 3 of 3" in out  # default + duf + dufp
        assert main(argv) == 0  # warm rerun: everything cached
        assert "executed 0 of 3" in capsys.readouterr().out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro 1.0.0" in capsys.readouterr().out
