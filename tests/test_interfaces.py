"""User-space interfaces: msr-tools, powercap sysfs, cpufreq."""

import pytest

from repro.config import yeti_socket_config
from repro.errors import MSRError, PowercapError
from repro.hardware.msr import MSR
from repro.hardware.processor import SimulatedProcessor
from repro.interfaces.cpufreq import CpufreqView
from repro.interfaces.msr_tools import MSRTools
from repro.interfaces.powercap import PowercapTree


@pytest.fixture
def proc():
    return SimulatedProcessor(yeti_socket_config())


@pytest.fixture
def tools(proc):
    return MSRTools(proc.msrs)


@pytest.fixture
def tree(proc):
    return PowercapTree([proc.rapl])


class TestMSRTools:
    def test_rdmsr_by_int(self, tools):
        assert tools.rdmsr(MSR.MSR_RAPL_POWER_UNIT) != 0

    def test_rdmsr_by_hex_string(self, tools):
        assert tools.rdmsr("0x606") == tools.rdmsr(MSR.MSR_RAPL_POWER_UNIT)

    def test_rdmsr_by_decimal_string(self, tools):
        assert tools.rdmsr(str(MSR.MSR_RAPL_POWER_UNIT)) == tools.rdmsr(0x606)

    def test_rdmsr_field_extraction(self, tools):
        # Like `rdmsr -f 6:0 0x620`: the uncore max ratio.
        assert tools.rdmsr(MSR.MSR_UNCORE_RATIO_LIMIT, field=(6, 0)) == 24

    def test_wrmsr(self, tools, proc):
        tools.wrmsr(MSR.MSR_UNCORE_RATIO_LIMIT, (18 << 8) | 18)
        assert proc.uncore.frequency_hz == pytest.approx(1.8e9)

    def test_update_field_rmw(self, tools):
        tools.update_field(MSR.MSR_UNCORE_RATIO_LIMIT, 6, 0, 20)
        assert tools.rdmsr(MSR.MSR_UNCORE_RATIO_LIMIT, field=(6, 0)) == 20
        assert tools.rdmsr(MSR.MSR_UNCORE_RATIO_LIMIT, field=(14, 8)) == 12

    def test_bad_address_string(self, tools):
        with pytest.raises(MSRError):
            tools.rdmsr("zzz")


class TestPowercapTree:
    def test_zone_names(self, tree):
        assert tree.zone("intel-rapl:0").domain == "package"
        assert tree.zone("intel-rapl:0:0").domain == "dram"

    def test_unknown_zone(self, tree):
        with pytest.raises(PowercapError):
            tree.zone("intel-rapl:9")

    def test_read_name(self, tree):
        assert tree.read("intel-rapl:0/name") == "package-0"
        assert tree.read("intel-rapl:0:0/name") == "dram"

    def test_read_constraint_names(self, tree):
        assert tree.read("intel-rapl:0/constraint_0_name") == "long_term"
        assert tree.read("intel-rapl:0/constraint_1_name") == "short_term"

    def test_read_default_limits_uw(self, tree):
        assert tree.read("intel-rapl:0/constraint_0_power_limit_uw") == "125000000"
        assert tree.read("intel-rapl:0/constraint_1_power_limit_uw") == "150000000"

    def test_write_long_term_limit(self, tree, proc):
        tree.write("intel-rapl:0/constraint_0_power_limit_uw", "100000000")
        proc.rapl.step(0.01, 100.0, 10.0)  # latch
        assert proc.rapl.pl1.limit_w == pytest.approx(100.0)

    def test_write_long_above_short_drags_short_up(self, tree, proc):
        tree.write("intel-rapl:0/constraint_1_power_limit_uw", "100000000")
        proc.rapl.step(0.01, 100.0, 10.0)
        tree.write("intel-rapl:0/constraint_0_power_limit_uw", "120000000")
        proc.rapl.step(0.01, 100.0, 10.0)
        assert proc.rapl.pl1.limit_w == pytest.approx(120.0)
        assert proc.rapl.pl2.limit_w == pytest.approx(120.0)

    def test_energy_uj_reads_counter(self, tree, proc):
        proc.rapl.step(1.0, 100.0, 25.0)
        pkg = int(tree.read("intel-rapl:0/energy_uj"))
        dram = int(tree.read("intel-rapl:0:0/energy_uj"))
        assert pkg == pytest.approx(100e6, rel=0.01)
        assert dram == pytest.approx(25e6, rel=0.01)

    def test_max_energy_range(self, tree):
        rng = int(tree.read("intel-rapl:0/max_energy_range_uj"))
        assert rng == int((1 << 32) * 2.0**-14 * 1e6)

    def test_dram_zone_refuses_capping(self, tree):
        # The paper: "memory power capping is not available on the
        # processor that we used".
        with pytest.raises(PowercapError):
            tree.zone("intel-rapl:0:0").set_power_limit_uw(0, 10_000_000)

    def test_dram_zone_has_no_constraints(self, tree):
        assert tree.zone("intel-rapl:0:0").constraints == ()

    def test_sysfs_prefix_stripped(self, tree):
        v = tree.read("/sys/class/powercap/intel-rapl:0/energy_uj")
        assert int(v) >= 0

    def test_bad_attribute(self, tree):
        with pytest.raises(PowercapError):
            tree.read("intel-rapl:0/nonsense")

    def test_non_integer_write_rejected(self, tree):
        with pytest.raises(PowercapError):
            tree.write("intel-rapl:0/constraint_0_power_limit_uw", "lots")

    def test_set_both_limits_atomic(self, tree, proc):
        tree.package_zone(0).set_both_limits_uw(90_000_000, 90_000_000)
        proc.rapl.step(0.01, 90.0, 10.0)
        assert proc.rapl.pl1.limit_w == pytest.approx(90.0)
        assert proc.rapl.pl2.limit_w == pytest.approx(90.0)

    def test_time_window_write(self, tree, proc):
        tree.write("intel-rapl:0/constraint_0_time_window_us", "500000")
        proc.rapl.step(0.01, 90.0, 10.0)
        assert proc.rapl.pl1.window_s == pytest.approx(0.5)

    def test_multi_socket_tree(self):
        procs = [SimulatedProcessor(yeti_socket_config(), socket_id=i) for i in range(4)]
        tree = PowercapTree([p.rapl for p in procs])
        assert len(tree.zones) == 8
        tree.package_zone(3).set_both_limits_uw(80_000_000, 80_000_000)
        procs[3].rapl.step(0.01, 80.0, 10.0)
        assert procs[3].rapl.pl1.limit_w == pytest.approx(80.0)
        assert procs[0].rapl.pl1.limit_w == pytest.approx(125.0)


class TestCpufreq:
    def test_current_frequency_khz(self, proc):
        view = CpufreqView(proc.dvfs)
        assert view.scaling_cur_freq_khz == 2_800_000

    def test_limits(self, proc):
        view = CpufreqView(proc.dvfs)
        assert view.scaling_min_freq_khz == 1_000_000
        assert view.scaling_max_freq_khz == 2_800_000
        assert view.base_frequency_khz == 2_100_000

    def test_governor_name(self, proc):
        assert CpufreqView(proc.dvfs).scaling_governor == "performance"

    def test_available_frequencies(self, proc):
        freqs = CpufreqView(proc.dvfs).scaling_available_frequencies_khz
        assert len(freqs) == 19
        assert freqs[0] == 1_000_000

    def test_aperf_mperf_average(self, proc):
        proc.dvfs.set_rapl_clamp(1.4e9)
        proc.dvfs.advance(1.0)
        view = CpufreqView(proc.dvfs)
        f = view.aperf_mperf_freq_hz(proc.dvfs.aperf, proc.dvfs.mperf)
        assert f == pytest.approx(1.4e9, rel=1e-6)
