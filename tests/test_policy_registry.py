"""The policy registry: specs, parsing, cache digests, end-to-end runs."""

import pickle

import pytest

from repro.config import ControllerConfig, NoiseConfig, config_digest
from repro.core.registry import (
    PolicySpec,
    as_spec,
    controller_factory,
    describe_policies,
    make_spec,
    parse_policy,
    policy_info,
    policy_label,
    policy_names,
    register_policy,
)
from repro.errors import PolicyError
from repro.experiments.executor import RunSpec, spec_key
from repro.experiments.protocol import run_protocol
from repro.experiments.sweep import run_sweep
from repro.workloads.catalog import build_application


QUIET = NoiseConfig(duration_jitter=0.002, counter_noise=0.001, power_noise=0.001)


class TestRegistry:
    def test_every_controller_registered(self):
        names = policy_names()
        for expected in (
            "default",
            "duf",
            "dufp",
            "dufpf",
            "dufp-adaptive",
            "static",
            "uncore",
            "window",
            "dnpc",
            "budget",
        ):
            assert expected in names

    def test_info_carries_metadata(self):
        info = policy_info("dufp")
        assert info.display_name
        assert info.paper_section
        assert info.summary

    def test_unknown_policy_rejected(self):
        with pytest.raises(PolicyError):
            policy_info("magic")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(PolicyError):
            register_policy("dufp", display_name="again")(
                policy_info("dufp").param_cls
            )

    def test_describe_lists_every_policy(self):
        text = describe_policies()
        for name in policy_names():
            assert name in text
        assert "cap_w=110.0" in text  # parameters are rendered


class TestSpec:
    def test_defaults_resolved_at_construction(self):
        spec = PolicySpec("static")
        assert spec.params.cap_w == 110.0

    def test_make_spec_overrides_defaults(self):
        assert make_spec("static", cap_w=95.0).params.cap_w == 95.0

    def test_make_spec_rejects_unknown_param(self):
        with pytest.raises(PolicyError):
            make_spec("static", watts=95.0)

    def test_wrong_param_type_rejected(self):
        with pytest.raises(PolicyError):
            PolicySpec("static", params=policy_info("budget").defaults)

    def test_label_specialised_by_params(self):
        assert make_spec("static", cap_w=100.0).label == "static-100W"
        assert make_spec("uncore", freq_ghz=1.8).label == "uncore-1.8GHz"
        assert as_spec("dufp").label == "dufp"
        assert policy_label("budget") == "budget"

    def test_spec_is_picklable(self):
        spec = make_spec("budget", watts=95.0, period_ticks=3)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.params.watts == 95.0

    def test_spec_is_hashable(self):
        assert hash(make_spec("static", cap_w=95.0)) == hash(
            make_spec("static", cap_w=95.0)
        )


class TestParsePolicy:
    def test_bare_name(self):
        assert parse_policy("dnpc") == PolicySpec("dnpc")

    def test_params_coerced_by_field_type(self):
        spec = parse_policy("budget:watts=95,period_ticks=3")
        assert spec.params.watts == 95.0
        assert spec.params.period_ticks == 3
        assert isinstance(spec.params.period_ticks, int)

    def test_unknown_name_rejected(self):
        with pytest.raises(PolicyError):
            parse_policy("magic")

    def test_unknown_key_rejected(self):
        with pytest.raises(PolicyError):
            parse_policy("static:watts=95")

    def test_malformed_pair_rejected(self):
        with pytest.raises(PolicyError):
            parse_policy("static:cap_w")

    def test_as_spec_passthrough_and_rejection(self):
        spec = make_spec("static", cap_w=95.0)
        assert as_spec(spec) is spec
        with pytest.raises(PolicyError):
            as_spec(42)


class TestCacheDigest:
    def test_digest_stable_across_constructions(self):
        a = config_digest(make_spec("budget", watts=95.0))
        b = config_digest(make_spec("budget", watts=95.0))
        assert a == b

    def test_param_change_changes_digest(self):
        assert config_digest(make_spec("budget", watts=95.0)) != config_digest(
            make_spec("budget", watts=100.0)
        )

    def test_param_change_changes_spec_key(self):
        base = dict(app_name="EP", runs=1, app_scale=0.2, noise=QUIET)
        a = RunSpec(controller=make_spec("static", cap_w=100.0), **base)
        b = RunSpec(controller=make_spec("static", cap_w=95.0), **base)
        c = RunSpec(controller="static:cap_w=100", **base)
        assert spec_key(a) != spec_key(b)
        assert spec_key(a) == spec_key(c)  # CLI syntax hits the same address


class TestEndToEnd:
    def test_protocol_name_comes_from_registry(self):
        result = run_protocol(
            build_application("EP", scale=0.2),
            make_spec("static", cap_w=100.0),
            runs=1,
            noise=QUIET,
        )
        assert result.controller_name == "static-100W"

    @pytest.mark.parametrize(
        "controller",
        ["dnpc", "window:cap_w=100,end_s=5", "uncore:freq_ghz=1.8",
         "static:cap_w=95", "budget:watts=95", "dufp-adaptive", "dufpf"],
    )
    def test_each_policy_completes_a_one_cell_sweep(self, controller):
        sweep = run_sweep(
            apps=["EP"],
            tolerances_pct=(10.0,),
            runs=1,
            app_scale=0.2,
            noise=QUIET,
            controllers=(controller,),
        )
        label = as_spec(controller).label
        cmp_ = sweep.get("EP", label, 10.0)
        assert cmp_.controller_name == label

    def test_budget_coordinator_fresh_per_run(self):
        # Two protocol runs on a 2-socket node: a stale coordinator
        # would keep accumulating member sockets across runs.
        result = run_protocol(
            build_application("EP", scale=0.2),
            make_spec("budget", watts=190.0),
            runs=2,
            socket_count=2,
            noise=QUIET,
        )
        assert len(result.times_s) == 2
        assert result.controller_name == "budget"

    def test_factory_fresh_per_call(self):
        factory = controller_factory("dufp", ControllerConfig())
        assert factory() is not factory()

    def test_parallel_equals_serial_for_registry_policy(self):
        grid = dict(
            apps=["EP"],
            tolerances_pct=(0.0,),
            runs=2,
            app_scale=0.2,
            noise=QUIET,
            controllers=("dnpc", "static:cap_w=100"),
        )
        serial = run_sweep(**grid, workers=1)
        parallel = run_sweep(**grid, workers=4)
        assert serial.comparisons == parallel.comparisons
