"""Hetero runs as first-class citizens of the spec/registry layer.

The CPU+GPU co-sim is addressable like any other cell: budget-split
policies live in the registry (``hetero-static``, ``hetero-coord``,
``hetero-fair``), a :class:`RunSpec` carries an optional
:class:`GPUNodeConfig`, and the spec digest folds the GPU side in via
``digest_omit_default`` — so every pre-existing CPU-only digest stays
byte-identical (pinned here against frozen hashes).

Engine-level acceptance: determinism (same seed, same result),
budget conservation on every re-allocation, multi-GPU queues with
uncore-coupled transfer phases, seeded GPU fault channels, and
per-device trace records.
"""

import dataclasses

import pytest

from repro.config import ControllerConfig, NoiseConfig
from repro.core.registry import (
    describe_policies,
    make_spec,
    parse_policy,
    split_policy,
)
from repro.core.split import CoordinatedSplit, FairShareSplit, StaticSplit
from repro.errors import (
    ConfigurationError,
    ControllerError,
    ExperimentError,
    PolicyError,
    SimulationError,
)
from repro.experiments.executor import (
    RunSpec,
    cell_seed,
    estimate_spec_ticks,
    execute_spec,
    spec_key,
)
from repro.experiments.protocol import run_hetero_protocol
from repro.hardware.gpu import GPUNodeConfig
from repro.sim.faults import FaultPlan
from repro.sim.hetero import HeteroEngine
from repro.sim.trace import InMemoryTraceSink
from repro.workloads.catalog import build_application

#: A node small enough for tier-1 wall clock.
SMALL_NODE = GPUNodeConfig(
    kernel_count=3, kernel_flops=1.5e12, kernel_bytes=0.2e12
)


def small_engine(**overrides) -> HeteroEngine:
    base = dict(
        application=build_application("CG", scale=0.15),
        node=SMALL_NODE,
        policy=CoordinatedSplit(300.0),
        cfg=ControllerConfig(tolerated_slowdown=0.10),
        seed=3,
        noise=NoiseConfig(),
    )
    base.update(overrides)
    return HeteroEngine(**base)


class TestGPUNodeConfig:
    def test_defaults_validate_and_build_kernels(self):
        node = GPUNodeConfig()
        node.validate()
        kernels = node.build_kernels()
        assert len(kernels) == node.kernel_count
        assert kernels[0].name == "kernel[0]"
        assert all(k.flops == node.kernel_flops for k in kernels)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("gpu_count", 0),
            ("kernel_count", 0),
            ("kernel_flops", -1.0),
            ("kernel_bytes", -1.0),
            ("input_bytes", -1.0),
            ("output_bytes", -1.0),
            ("link_bw_bytes", 0.0),
            ("link_uncore_sensitivity", 1.5),
        ],
    )
    def test_bad_values_rejected(self, field, value):
        node = dataclasses.replace(GPUNodeConfig(), **{field: value})
        with pytest.raises(ConfigurationError):
            node.validate()

    def test_workless_kernels_rejected(self):
        node = dataclasses.replace(
            GPUNodeConfig(), kernel_flops=0.0, kernel_bytes=0.0
        )
        with pytest.raises(ConfigurationError):
            node.validate()

    def test_link_bandwidth_rides_the_uncore(self):
        node = GPUNodeConfig(link_bw_bytes=16e9, link_uncore_sensitivity=0.6)
        assert node.link_bw_at(1.0) == pytest.approx(16e9)
        assert node.link_bw_at(0.0) == pytest.approx(16e9 * 0.4)
        assert node.link_bw_at(0.5) == pytest.approx(16e9 * 0.7)
        # Out-of-range fractions clamp instead of extrapolating.
        assert node.link_bw_at(2.0) == pytest.approx(16e9)
        insensitive = GPUNodeConfig(link_uncore_sensitivity=0.0)
        assert insensitive.link_bw_at(0.1) == insensitive.link_bw_bytes


class TestSplitPolicies:
    FLOORS = [40.0, 100.0]
    CEILINGS = [125.0, 250.0]

    def test_static_split_shares_and_clamps(self):
        alloc = StaticSplit(300.0, cpu_fraction=0.5).allocate(
            [0.0, 0.0], self.FLOORS, self.CEILINGS
        )
        assert alloc == [125.0, 150.0]  # CPU clamps to its ceiling
        assert StaticSplit.is_static

    def test_coordinated_moves_spare_watts_to_the_bidder(self):
        policy = CoordinatedSplit(300.0)
        alloc = policy.allocate([60.0, 260.0], self.FLOORS, self.CEILINGS)
        assert sum(alloc) <= 300.0 + 1e-9
        assert alloc[1] > alloc[0]
        assert alloc[0] >= self.FLOORS[0] and alloc[1] <= self.CEILINGS[1]

    def test_fair_share_is_proportional_between_bounds(self):
        policy = FairShareSplit(300.0)
        alloc = policy.allocate([0.0, 0.0], self.FLOORS, self.CEILINGS)
        span = sum(c - f for c, f in zip(self.CEILINGS, self.FLOORS))
        t = (300.0 - sum(self.FLOORS)) / span
        for a, lo, hi in zip(alloc, self.FLOORS, self.CEILINGS):
            assert a == pytest.approx(lo + t * (hi - lo))
        assert sum(alloc) == pytest.approx(300.0)

    def test_infeasible_and_invalid_inputs_rejected(self):
        with pytest.raises(ControllerError):
            StaticSplit(0.0)
        with pytest.raises(ControllerError):
            CoordinatedSplit(100.0).allocate([0, 0], self.FLOORS, self.CEILINGS)
        with pytest.raises(ControllerError):
            CoordinatedSplit(300.0).allocate([0.0], self.FLOORS, self.CEILINGS)

    def test_registry_resolves_hetero_policies_only(self):
        policy = split_policy("hetero-coord")
        assert isinstance(policy, CoordinatedSplit)
        assert policy.budget_w == 300.0
        parsed = parse_policy("hetero-fair:budget_w=250")
        assert isinstance(split_policy(parsed), FairShareSplit)
        assert split_policy(parsed).budget_w == 250.0
        with pytest.raises(PolicyError):
            split_policy("duf")  # a per-socket controller, not a split

    def test_labels_and_catalog_tag(self):
        assert make_spec("hetero-static", budget_w=280).label == "hetero-static-280W"
        text = describe_policies()
        assert "(hetero split)" in text
        assert "hetero-coord" in text


#: Digests of representative CPU-only specs frozen before the GPU
#: field existed.  ``digest_omit_default`` must keep them stable for
#: every spec that does not opt into hetero execution.
FROZEN_DIGESTS = {
    "plain_dufp": (
        dict(
            app_name="CG",
            controller="dufp",
            runs=3,
            base_seed=cell_seed("CG", "dufp", 10.0),
        ),
        "476e93f671689bf3a586f95f99908f8887834d8acbc9a46a4522d092594d8f44",
    ),
    "static_param": (
        dict(app_name="EP", controller="static:cap_w=90", runs=2),
        "485d614b5b221d583c56f2f82e4a82b144b4ede5f80b2f172decb092bcf96876",
    ),
    "faulted": (
        dict(
            app_name="EP",
            controller="duf",
            runs=2,
            faults=FaultPlan(msr_read_fail_rate=0.01, cap_latch_fail_rate=0.05),
        ),
        "6dd1d80f1e3e8ed720386cc62555fb7856639e951594b1220f38b291290cbd98",
    ),
    "noise_scaled": (
        dict(
            app_name="MG",
            controller="budget:watts=95",
            runs=4,
            app_scale=0.3,
            noise=NoiseConfig(
                duration_jitter=0.002, counter_noise=0.001, power_noise=0.001
            ),
        ),
        "20830abe6e56ed20c31691aced00cbfaadd6c960d16d224324507ed58741c17b",
    ),
}


class TestSpecDigests:
    @pytest.mark.parametrize("name", sorted(FROZEN_DIGESTS))
    def test_cpu_only_digests_unchanged(self, name):
        kwargs, digest = FROZEN_DIGESTS[name]
        assert spec_key(RunSpec(**kwargs)) == digest

    def test_gpu_field_addresses_the_cache(self):
        spec = RunSpec(
            app_name="CG", controller="hetero-coord", runs=2, gpu=SMALL_NODE
        )
        other = dataclasses.replace(
            spec, gpu=dataclasses.replace(SMALL_NODE, gpu_count=2)
        )
        assert spec_key(spec) != spec_key(other)

    def test_batch_engine_normalises_to_scalar_for_hetero(self):
        spec = RunSpec(
            app_name="CG",
            controller="hetero-coord",
            runs=2,
            gpu=SMALL_NODE,
            engine="batch",
        )
        assert spec.engine == "scalar"

    def test_validation_pairs_gpu_with_hetero_controllers(self):
        with pytest.raises(ExperimentError):
            RunSpec(app_name="CG", controller="duf", gpu=SMALL_NODE).validate()
        with pytest.raises(ExperimentError):
            RunSpec(app_name="CG", controller="hetero-coord").validate()
        with pytest.raises(ExperimentError):
            RunSpec(
                app_name="CG",
                controller="hetero-coord",
                gpu=SMALL_NODE,
                socket_count=2,
            ).validate()

    def test_hetero_ticks_weight_the_gpu_side(self):
        cpu_only = RunSpec(app_name="CG", controller="duf", runs=2, app_scale=0.2)
        hetero = RunSpec(
            app_name="CG",
            controller="hetero-coord",
            runs=2,
            app_scale=0.2,
            gpu=GPUNodeConfig(kernel_count=64),
        )
        assert estimate_spec_ticks(hetero) > estimate_spec_ticks(cpu_only)
        assert estimate_spec_ticks(
            dataclasses.replace(hetero, runs=4)
        ) == pytest.approx(2 * estimate_spec_ticks(hetero))


def result_signature(result):
    return (
        result.cpu_finish_s,
        result.gpu_finish_times_s,
        result.cpu_energy_j,
        result.gpu_energies_j,
        result.transfer_s,
        tuple(result.device_allocations),
        tuple((e.time_s, e.socket_id, e.channel) for e in result.fault_events),
    )


class TestHeteroEngine:
    def test_same_seed_identical_result(self):
        a = small_engine(seed=17).run()
        b = small_engine(seed=17).run()
        assert result_signature(a) == result_signature(b)

    def test_seed_moves_the_outcome(self):
        a = small_engine(seed=17).run()
        b = small_engine(seed=18).run()
        assert result_signature(a) != result_signature(b)

    def test_budget_conserved_every_reallocation(self):
        result = small_engine().run()
        floors = [ControllerConfig().cap_floor_w, 100.0]
        assert len(result.device_allocations) > 1
        for _, allocs in result.device_allocations:
            assert sum(allocs) <= 300.0 + 1e-6
            for a, lo in zip(allocs, floors):
                assert a >= lo - 1e-9

    def test_multi_gpu_round_robin(self):
        node = dataclasses.replace(SMALL_NODE, gpu_count=2, kernel_count=5)
        result = small_engine(
            node=node, policy=CoordinatedSplit(500.0)
        ).run()
        assert len(result.gpu_finish_times_s) == 2
        assert len(result.gpu_energies_j) == 2
        assert result.gpu_energy_j == pytest.approx(sum(result.gpu_energies_j))
        assert result.gpu_finish_s == max(result.gpu_finish_times_s)
        # 3 vs 2 kernels: the busier device finishes no earlier.
        assert result.gpu_finish_times_s[0] >= result.gpu_finish_times_s[1]
        for _, allocs in result.device_allocations:
            assert len(allocs) == 3

    def test_transfers_slow_down_with_a_weak_link(self):
        fast = small_engine(
            node=dataclasses.replace(SMALL_NODE, link_bw_bytes=32e9)
        ).run()
        slow = small_engine(
            node=dataclasses.replace(SMALL_NODE, link_bw_bytes=2e9)
        ).run()
        assert slow.transfer_s > fast.transfer_s
        assert fast.transfer_s > 0.0

    def test_uncore_sensitivity_couples_into_transfer_time(self):
        heavy_io = dataclasses.replace(
            SMALL_NODE, input_bytes=8e9, output_bytes=4e9
        )
        insensitive = small_engine(
            node=dataclasses.replace(heavy_io, link_uncore_sensitivity=0.0)
        ).run()
        sensitive = small_engine(
            node=dataclasses.replace(heavy_io, link_uncore_sensitivity=0.95)
        ).run()
        # The uncore governor sits below its ceiling for stretches of
        # the run, so a sensitivity-coupled link moves strictly less
        # data per tick than an insensitive one.
        assert sensitive.transfer_s > insensitive.transfer_s

    def test_gpu_queue_stalls_delay_the_queue_and_log_events(self):
        clean = small_engine().run()
        stalled = small_engine(
            faults=FaultPlan(gpu_queue_stall_rate=0.9, gpu_stall_s=0.5)
        ).run()
        assert stalled.gpu_finish_s > clean.gpu_finish_s
        channels = {e.channel for e in stalled.fault_events}
        assert "gpu_stall" in channels
        assert all(
            e.socket_id >= 1
            for e in stalled.fault_events
            if e.channel == "gpu_stall"
        )

    def test_gpu_latch_faults_pin_the_initial_limit(self):
        latched = small_engine(
            faults=FaultPlan(gpu_cap_latch_fail_rate=1.0)
        ).run()
        assert any(
            e.channel == "gpu_cap_latch_fail" for e in latched.fault_events
        )

    def test_infeasible_budget_rejected_at_construction(self):
        with pytest.raises(SimulationError):
            small_engine(policy=CoordinatedSplit(100.0))

    def test_trace_sink_sees_every_device(self):
        sink = InMemoryTraceSink()
        result = small_engine(
            node=dataclasses.replace(SMALL_NODE, gpu_count=2),
            policy=CoordinatedSplit(500.0),
            trace_sink=sink,
        ).run()
        ticks = round(result.makespan_s / 0.01)
        counts = {len(sink.collected(socket_id)) for socket_id in (0, 1, 2)}
        assert len(counts) == 1  # every device sampled every tick
        assert abs(counts.pop() - ticks) <= 1
        gpu_trace = sink.collected(1)
        assert any(s.bytes_rate > 0 for s in gpu_trace)  # transfers visible
        assert all(100.0 <= s.cap_w <= 250.0 for s in gpu_trace)
        cpu_trace = sink.collected(0)
        assert all(s.uncore_freq_hz > 0 for s in cpu_trace)


class TestHeteroProtocolAndSpec:
    def test_protocol_metric_mapping(self):
        proto = run_hetero_protocol(
            build_application("CG", scale=0.15),
            make_spec("hetero-coord", budget_w=300),
            SMALL_NODE,
            runs=3,
            noise=NoiseConfig(),
        )
        assert len(proto.times_s) == 3
        for t, pkg, dram, total in zip(
            proto.times_s,
            proto.package_power_w,
            proto.dram_power_w,
            proto.total_energy_j,
        ):
            assert t > 0
            # CPU energy maps to package, GPU energy to dram rails.
            assert (pkg + dram) * t == pytest.approx(total)

    def test_execute_spec_routes_hetero_cells(self):
        spec = RunSpec(
            app_name="CG",
            controller=make_spec("hetero-coord", budget_w=300),
            runs=2,
            app_scale=0.15,
            gpu=SMALL_NODE,
        )
        proto = execute_spec(spec)
        assert len(proto.times_s) == 2
        assert proto.controller_name == "hetero-coord-300W"

    def test_runs_are_independent_and_seeded(self):
        spec = RunSpec(
            app_name="CG",
            controller=make_spec("hetero-coord", budget_w=300),
            runs=2,
            app_scale=0.15,
            gpu=SMALL_NODE,
        )
        again = execute_spec(spec)
        assert execute_spec(spec).times_s == again.times_s
        assert len(set(again.times_s)) == 2  # per-run seeds differ
