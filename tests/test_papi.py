"""PAPI layer: registry, event sets, components, interval meter."""

import numpy as np
import pytest

from repro.config import yeti_socket_config
from repro.errors import EventSetStateError, PAPIError
from repro.hardware.processor import PhaseWork, SimulatedProcessor
from repro.papi.components import bind_components
from repro.papi.events import Event, EventRegistry, default_registry
from repro.papi.eventset import EventSet, EventSetState
from repro.papi.highlevel import IntervalMeter


@pytest.fixture
def proc():
    return SimulatedProcessor(yeti_socket_config())


@pytest.fixture
def components(proc):
    return bind_components(proc)


WORK = PhaseWork(flops=1e12, bytes=1e12, fpc=2.0)


class TestRegistry:
    def test_default_events_present(self):
        reg = default_registry()
        names = reg.names()
        assert "PAPI_DP_OPS" in names
        assert "skx_unc_imc::UNC_M_CAS_COUNT:ALL" in names
        assert "rapl:::PACKAGE_ENERGY:PACKAGE0" in names
        assert "rapl:::DRAM_ENERGY:PACKAGE0" in names

    def test_resolve_by_name_and_code(self):
        reg = default_registry()
        e = reg.resolve("PAPI_DP_OPS")
        assert reg.resolve(e.code) is e

    def test_unknown_event(self):
        with pytest.raises(PAPIError):
            default_registry().resolve("PAPI_NOPE")

    def test_multi_socket_registry(self):
        reg = default_registry(socket_count=4)
        assert "rapl:::PACKAGE_ENERGY:PACKAGE3" in reg.names()

    def test_duplicate_registration_rejected(self):
        reg = EventRegistry()
        e = Event("X", 1, "c", "", "")
        reg.register(e)
        with pytest.raises(PAPIError):
            reg.register(Event("X", 2, "c", "", ""))
        with pytest.raises(PAPIError):
            reg.register(Event("Y", 1, "c", "", ""))

    def test_by_component(self):
        reg = default_registry()
        rapl_events = reg.by_component("rapl")
        assert len(rapl_events) == 2


class TestEventSetLifecycle:
    def test_initial_state_stopped(self, components):
        assert EventSet(components).state is EventSetState.STOPPED

    def test_add_while_running_rejected(self, components):
        es = EventSet(components)
        es.add_event("PAPI_DP_OPS")
        es.start()
        with pytest.raises(EventSetStateError):
            es.add_event("skx_unc_imc::UNC_M_CAS_COUNT:ALL")

    def test_duplicate_add_rejected(self, components):
        es = EventSet(components)
        es.add_event("PAPI_DP_OPS")
        with pytest.raises(PAPIError):
            es.add_event("PAPI_DP_OPS")

    def test_start_empty_rejected(self, components):
        with pytest.raises(EventSetStateError):
            EventSet(components).start()

    def test_double_start_rejected(self, components):
        es = EventSet(components)
        es.add_event("PAPI_DP_OPS")
        es.start()
        with pytest.raises(EventSetStateError):
            es.start()

    def test_read_when_stopped_rejected(self, components):
        es = EventSet(components)
        es.add_event("PAPI_DP_OPS")
        with pytest.raises(EventSetStateError):
            es.read()

    def test_remove_event(self, components):
        es = EventSet(components)
        es.add_event("PAPI_DP_OPS")
        es.remove_event("PAPI_DP_OPS")
        assert es.events == ()

    def test_remove_missing_rejected(self, components):
        es = EventSet(components)
        with pytest.raises(PAPIError):
            es.remove_event("PAPI_DP_OPS")


class TestCounting:
    def _counting_set(self, components):
        es = EventSet(components)
        es.add_event("PAPI_DP_OPS")
        es.add_event("rapl:::PACKAGE_ENERGY:PACKAGE0")
        es.start()
        return es

    def test_counts_since_start(self, proc, components):
        es = self._counting_set(components)
        for _ in range(10):
            proc.step(0.01, WORK)
        flops, energy_nj = es.read()
        assert flops == pytest.approx(proc.flops_retired, rel=0.01)
        assert energy_nj > 0

    def test_read_keeps_accumulating(self, proc, components):
        es = self._counting_set(components)
        proc.step(0.1, WORK)
        first, _ = es.read()
        proc.step(0.1, WORK)
        second, _ = es.read()
        assert second > first

    def test_reset_zeroes_virtual_counters(self, proc, components):
        es = self._counting_set(components)
        proc.step(0.1, WORK)
        es.read()
        es.reset()
        flops, _ = es.read()
        assert flops == 0

    def test_stop_returns_final_counts(self, proc, components):
        es = self._counting_set(components)
        proc.step(0.1, WORK)
        flops, _ = es.stop()
        assert flops > 0
        assert es.state is EventSetState.STOPPED

    def test_energy_wrap_corrected(self, proc, components):
        # Push the 32-bit energy counter across its wrap point between
        # two reads; the event set must report the true delta.
        es = self._counting_set(components)
        wrap_j = (1 << 32) * proc.rapl.package.energy_unit_j
        proc.rapl.package._energy_j = wrap_j - 5.0
        es.reset()
        before = proc.rapl.package.total_energy_j
        proc.rapl.package.accumulate(10.0)
        _, energy_nj = es.read()
        assert energy_nj * 1e-9 == pytest.approx(10.0, rel=0.01)
        assert proc.rapl.package.total_energy_j > before


class TestIntervalMeter:
    def test_sample_rates(self, proc):
        meter = IntervalMeter(proc)
        meter.start()
        for _ in range(20):
            proc.step(0.01, WORK)
        m = meter.sample(0.2)
        assert m.flops_per_s == pytest.approx(proc.state.flops_rate, rel=0.02)
        assert m.bytes_per_s == pytest.approx(proc.state.bytes_rate, rel=0.02)
        assert m.package_power_w == pytest.approx(
            proc.state.package.total_w, rel=0.05
        )

    def test_operational_intensity(self, proc):
        meter = IntervalMeter(proc)
        meter.start()
        for _ in range(20):
            proc.step(0.01, WORK)
        m = meter.sample(0.2)
        assert m.operational_intensity == pytest.approx(1.0, rel=0.05)

    def test_oi_infinite_without_traffic(self, proc):
        meter = IntervalMeter(proc)
        meter.start()
        m = meter.sample(0.2)  # no work executed: zero bytes
        assert m.operational_intensity == float("inf")

    def test_sample_before_start_rejected(self, proc):
        with pytest.raises(PAPIError):
            IntervalMeter(proc).sample(0.2)

    def test_noise_requires_rng(self, proc):
        with pytest.raises(PAPIError):
            IntervalMeter(proc, counter_noise=0.01)

    def test_noise_perturbs_readings(self, proc):
        rng = np.random.default_rng(7)
        meter = IntervalMeter(proc, rng=rng, counter_noise=0.05)
        meter.start()
        samples = []
        for _ in range(20):
            proc.step(0.01, WORK)
            samples.append(meter.sample(0.01).flops_per_s)
        assert len(set(samples)) > 1

    def test_sequential_samples_are_independent_intervals(self, proc):
        for _ in range(20):  # let the uncore governor settle
            proc.step(0.01, WORK)
        meter = IntervalMeter(proc)
        meter.start()
        proc.step(0.2, WORK)
        m1 = meter.sample(0.2)
        proc.step(0.2, WORK)
        m2 = meter.sample(0.2)
        assert m2.flops_per_s == pytest.approx(m1.flops_per_s, rel=0.05)
