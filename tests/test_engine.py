"""Simulation engine: phase sequencing, boundary splitting, results."""

import pytest

from repro.config import ControllerConfig, EngineConfig, NoiseConfig
from repro.core.baselines import DefaultController
from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.machine import yeti_machine
from repro.sim.run import run_application
from repro.workloads.application import Application
from repro.workloads.phase import phase_from_duration as pfd


def tiny_app(durations=(0.5, 0.3), ois=(4.0, 0.1)):
    phases = [
        pfd(f"p{i}", d, oi=oi, fpc=2.0)
        for i, (d, oi) in enumerate(zip(durations, ois))
    ]
    return Application(name="tiny", phases=tuple(phases))


QUIET = NoiseConfig(duration_jitter=0.0, counter_noise=0.0, power_noise=0.0)


class TestEngineBasics:
    def test_runs_to_completion(self):
        result = run_application(tiny_app(), DefaultController, noise=QUIET)
        assert result.execution_time_s == pytest.approx(0.8, rel=0.05)

    def test_phase_spans_recorded(self):
        result = run_application(tiny_app(), DefaultController, noise=QUIET)
        spans = result.socket(0).phases
        assert [s.name for s in spans] == ["p0", "p1"]
        assert spans[0].start_s == 0.0
        assert spans[0].end_s == pytest.approx(0.5, rel=0.05)
        assert spans[1].end_s == pytest.approx(0.8, rel=0.05)

    def test_sub_step_phases_timed_accurately(self):
        # 30 ms phases on a 10 ms grid: boundary splitting must keep
        # the total accurate.
        app = tiny_app(durations=(0.03,) * 10, ois=(2.0,) * 10)
        result = run_application(app, DefaultController, noise=QUIET)
        assert result.execution_time_s == pytest.approx(0.3, rel=0.05)

    def test_controller_count_mismatch_rejected(self):
        machine = yeti_machine(2)
        with pytest.raises(SimulationError):
            SimulationEngine(
                machine=machine,
                application=tiny_app(),
                controllers=[DefaultController()],
                controller_cfg=ControllerConfig(),
            )

    def test_engine_step_must_divide_interval(self):
        machine = yeti_machine(1)
        with pytest.raises(SimulationError):
            SimulationEngine(
                machine=machine,
                application=tiny_app(),
                controllers=[DefaultController()],
                controller_cfg=ControllerConfig(interval_s=0.2),
                engine_cfg=EngineConfig(dt_s=0.03),
            )

    def test_timeout_guard(self):
        machine = yeti_machine(1)
        engine = SimulationEngine(
            machine=machine,
            application=tiny_app(durations=(100.0,), ois=(2.0,)),
            controllers=[DefaultController()],
            controller_cfg=ControllerConfig(),
            engine_cfg=EngineConfig(dt_s=0.01, max_sim_time_s=1.0),
            noise=QUIET,
        )
        with pytest.raises(SimulationError):
            engine.run()


class TestWorkConservation:
    def test_all_flops_retired(self):
        app = tiny_app()
        result = run_application(app, DefaultController, noise=QUIET, seed=1)
        machine_flops = app.total_flops
        # The socket executed exactly the application's work (within
        # the final idle step's rounding).
        sock = result.socket(0)
        retired = sum(
            s.flops_rate * (s.time_s - prev)
            for prev, s in zip(
                [0.0] + [t.time_s for t in sock.trace[:-1]], sock.trace
            )
        )
        assert retired == pytest.approx(machine_flops, rel=0.02)

    def test_energy_consistency(self):
        result = run_application(tiny_app(), DefaultController, noise=QUIET)
        sock = result.socket(0)
        trace_energy = sum(
            s.package_power_w * (s.time_s - prev)
            for prev, s in zip(
                [0.0] + [t.time_s for t in sock.trace[:-1]], sock.trace
            )
        )
        assert sock.package_energy_j == pytest.approx(trace_energy, rel=0.02)


class TestDeterminismAndNoise:
    def test_same_seed_same_result(self):
        a = run_application(tiny_app(), DefaultController, seed=5)
        b = run_application(tiny_app(), DefaultController, seed=5)
        assert a.execution_time_s == b.execution_time_s
        assert a.package_energy_j == b.package_energy_j

    def test_different_seed_differs(self):
        a = run_application(tiny_app(), DefaultController, seed=5)
        b = run_application(tiny_app(), DefaultController, seed=6)
        assert a.execution_time_s != b.execution_time_s

    def test_quiet_noise_is_nominal(self):
        a = run_application(tiny_app(), DefaultController, noise=QUIET, seed=1)
        b = run_application(tiny_app(), DefaultController, noise=QUIET, seed=2)
        assert a.execution_time_s == pytest.approx(b.execution_time_s, rel=1e-9)


class TestMultiSocket:
    def test_sockets_run_identical_work(self):
        result = run_application(
            tiny_app(), DefaultController, socket_count=2, noise=QUIET
        )
        t0 = result.socket(0).finish_time_s
        t1 = result.socket(1).finish_time_s
        assert t0 == pytest.approx(t1, rel=0.05)

    def test_execution_time_is_slowest_socket(self):
        result = run_application(
            tiny_app(), DefaultController, socket_count=2, seed=3
        )
        assert result.execution_time_s == max(
            s.finish_time_s for s in result.sockets
        )

    def test_energy_sums_over_sockets(self):
        result = run_application(
            tiny_app(), DefaultController, socket_count=2, noise=QUIET
        )
        assert result.package_energy_j == pytest.approx(
            sum(s.package_energy_j for s in result.sockets)
        )


class TestRunResultViews:
    def test_avg_powers_are_per_socket(self):
        r1 = run_application(tiny_app(), DefaultController, noise=QUIET)
        r2 = run_application(
            tiny_app(), DefaultController, socket_count=2, noise=QUIET
        )
        assert r2.avg_package_power_w == pytest.approx(
            r1.avg_package_power_w, rel=0.05
        )

    def test_window_energy(self):
        r = run_application(tiny_app(), DefaultController, noise=QUIET)
        sock = r.socket(0)
        pkg_all, dram_all = sock.window_energy_j(0.0, r.execution_time_s + 0.01)
        assert pkg_all == pytest.approx(sock.package_energy_j, rel=0.05)
        pkg_half, _ = sock.window_energy_j(0.0, r.execution_time_s / 2)
        assert 0 < pkg_half < pkg_all

    def test_phase_span_lookup(self):
        r = run_application(tiny_app(), DefaultController, noise=QUIET)
        span = r.socket(0).phase_span("p1")
        assert span.name == "p1"
        with pytest.raises(SimulationError):
            r.socket(0).phase_span("nope")

    def test_average_core_freq(self):
        r = run_application(tiny_app(), DefaultController, noise=QUIET)
        f = r.socket(0).average_core_freq_hz()
        assert 1.0e9 <= f <= 2.8e9

    def test_missing_socket_rejected(self):
        r = run_application(tiny_app(), DefaultController, noise=QUIET)
        with pytest.raises(SimulationError):
            r.socket(3)
