"""Protocol edge cases not covered by the main experiment tests."""

import pytest

from repro.config import NoiseConfig
from repro.core.baselines import DefaultController
from repro.experiments.protocol import run_protocol
from repro.workloads.catalog import build_application


QUIET = NoiseConfig(duration_jitter=0.002, counter_noise=0.001, power_noise=0.001)


@pytest.fixture(scope="module")
def ep():
    return build_application("EP", scale=0.15)


class TestProtocolEdges:
    def test_single_run_keeps_itself(self, ep):
        res = run_protocol(ep, DefaultController, runs=1, noise=QUIET)
        assert res.keep == [0]
        assert res.mean_time_s == res.times_s[0]

    def test_last_run_has_trace_by_default(self, ep):
        res = run_protocol(ep, DefaultController, runs=2, noise=QUIET)
        assert res.last_run is not None
        assert res.last_run.socket(0).trace

    def test_base_seed_shifts_results(self, ep):
        a = run_protocol(ep, DefaultController, runs=2, noise=QUIET, base_seed=0)
        b = run_protocol(ep, DefaultController, runs=2, noise=QUIET, base_seed=999)
        assert a.times_s != b.times_s

    def test_same_protocol_is_deterministic(self, ep):
        a = run_protocol(ep, DefaultController, runs=3, noise=QUIET)
        b = run_protocol(ep, DefaultController, runs=3, noise=QUIET)
        assert a.times_s == b.times_s
        assert a.package_power_w == b.package_power_w

    def test_runs_have_distinct_seeds(self, ep):
        res = run_protocol(ep, DefaultController, runs=4, noise=QUIET)
        assert len(set(res.times_s)) > 1

    def test_metric_bars_use_time_keep_set(self, ep):
        res = run_protocol(ep, DefaultController, runs=5, noise=QUIET)
        bar = res.bar("package_power_w")
        kept_powers = [res.package_power_w[i] for i in res.keep]
        assert bar.low == min(kept_powers)
        assert bar.high == max(kept_powers)

    def test_controller_name_recorded(self, ep):
        res = run_protocol(ep, DefaultController, runs=1, noise=QUIET)
        assert res.controller_name == "default"
        assert res.app_name == "EP"

    def test_socket_count_plumbs_through(self, ep):
        res = run_protocol(
            ep, DefaultController, runs=1, noise=QUIET, socket_count=2
        )
        assert len(res.last_run.sockets) == 2
