"""Property-based tests on the fleet policies and the cluster engine.

Randomised fleets — policy, budget, node bands, demand bids, node
count, seeds — check the invariants any hierarchical capping run must
preserve:

* global budget conservation: ``sum(alloc) <= budget`` at every
  allocation the policies emit and every re-partition the engine
  records;
* band respect: every node allocation stays inside
  ``[floor_i, ceiling_i]``;
* permutation equivariance: node identity carries no weight —
  permuting the bids permutes the allocations identically;
* the fleet-fair bound: every node receives the *same* fraction of
  its floor-to-ceiling range;
* determinism: the same seed replays a cluster run to identical
  allocations, makespans, energies and fault draws.

Policy properties run pure allocations (cheap, many examples); the
engine sweeps simulate short full runs and keep few examples.  A
deterministic smoke case keeps tier-1 coverage of every property.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import ClusterEngine, ClusterSpec
from repro.config import ControllerConfig, NoiseConfig
from repro.core.registry import fleet_policy, make_spec
from repro.errors import ReproError
from repro.sim.faults import FaultPlan
from repro.workloads.catalog import build_application

POLICIES = ("fleet-static", "fleet-demand", "fleet-fair")
CFG = ControllerConfig(tolerated_slowdown=0.10)

ENGINE_SWEEP = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Node bands: floors in [40, 80], spans in [10, 120] — every band is
#: non-degenerate and floors never exceed ceilings.
bands = st.lists(
    st.tuples(
        st.floats(min_value=40.0, max_value=80.0),
        st.floats(min_value=10.0, max_value=120.0),
    ),
    min_size=1,
    max_size=8,
).map(lambda rows: ([lo for lo, _ in rows], [lo + w for lo, w in rows]))


def _fleet(policy, budget):
    return fleet_policy(make_spec(policy, budget_w=budget), CFG)


def _bids(floors, ceilings, fractions):
    return [
        lo + f * (hi - lo)
        for lo, hi, f in zip(floors, ceilings, fractions)
    ]


@pytest.mark.slow
class TestPolicyInvariants:
    @given(
        policy=st.sampled_from(POLICIES),
        b=bands,
        fractions=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=8, max_size=8
        ),
        extra=st.floats(min_value=0.0, max_value=400.0),
    )
    @settings(max_examples=100)
    def test_budget_conserved_and_bands_respected(
        self, policy, b, fractions, extra
    ):
        floors, ceilings = b
        budget = sum(floors) + extra
        fleet = _fleet(policy, budget)
        bids = _bids(floors, ceilings, fractions[: len(floors)])
        for alloc in (
            fleet.initial(floors, ceilings),
            fleet.allocate(bids, floors, ceilings),
        ):
            assert len(alloc) == len(floors)
            assert sum(alloc) <= budget + 1e-6
            for a, lo, hi in zip(alloc, floors, ceilings):
                assert lo - 1e-9 <= a <= hi + 1e-9
                assert math.isfinite(a)

    @given(
        policy=st.sampled_from(POLICIES),
        lo=st.floats(min_value=40.0, max_value=80.0),
        width=st.floats(min_value=10.0, max_value=120.0),
        n=st.integers(min_value=2, max_value=8),
        fractions=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=8, max_size=8
        ),
        extra=st.floats(min_value=0.0, max_value=300.0),
        shift=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=100)
    def test_allocation_is_permutation_equivariant(
        self, policy, lo, width, n, fractions, extra, shift
    ):
        # Uniform bands isolate the bid permutation: node identity must
        # carry no weight, so rotating the bids rotates the allocation.
        floors, ceilings = [lo] * n, [lo + width] * n
        budget = sum(floors) + extra
        fleet = _fleet(policy, budget)
        bids = _bids(floors, ceilings, fractions[:n])
        k = shift % n
        rotated = bids[k:] + bids[:k]
        alloc = fleet.allocate(bids, floors, ceilings)
        alloc_rotated = fleet.allocate(rotated, floors, ceilings)
        assert alloc_rotated == pytest.approx(alloc[k:] + alloc[:k])

    @given(
        b=bands,
        fractions=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=8, max_size=8
        ),
        extra=st.floats(min_value=0.0, max_value=400.0),
    )
    @settings(max_examples=100)
    def test_fleet_fair_grants_equal_range_fractions(
        self, b, fractions, extra
    ):
        floors, ceilings = b
        budget = sum(floors) + extra
        fleet = _fleet("fleet-fair", budget)
        bids = _bids(floors, ceilings, fractions[: len(floors)])
        alloc = fleet.allocate(bids, floors, ceilings)
        granted = [
            (a - lo) / (hi - lo)
            for a, lo, hi in zip(alloc, floors, ceilings)
        ]
        assert max(granted) - min(granted) < 1e-9

    @given(b=bands)
    @settings(max_examples=50)
    def test_floors_above_budget_raise(self, b):
        floors, ceilings = b
        budget = sum(floors) - 1.0
        for policy in POLICIES:
            with pytest.raises(ReproError):
                _fleet(policy, budget).allocate(
                    list(ceilings), floors, ceilings
                )


# -- engine sweeps ------------------------------------------------------

plans = st.sampled_from(
    [None, FaultPlan(msr_read_fail_rate=0.05, cap_latch_fail_rate=0.10)]
)

members = st.tuples(
    st.sampled_from(POLICIES),
    # Budgets cover three 65 W node floors (195 W) but sit below three
    # 125 W ceilings (375 W), so the fleet layer genuinely arbitrates.
    st.sampled_from((200.0, 260.0, 320.0)),  # budget
    st.integers(min_value=1, max_value=3),  # node_count
    st.sampled_from(((), ("EP", "CG"), ("WEB", "BATCH"))),  # node_apps
    st.integers(min_value=0, max_value=10_000),  # seed
    plans,
)


def _build(policy, budget, node_count, node_apps, seed, plan):
    cluster = ClusterSpec(
        node_count=node_count, node_apps=node_apps, period_s=0.5
    )
    apps = [
        build_application(cluster.app_for(i, "EP"), scale=0.1)
        for i in range(node_count)
    ]
    return ClusterEngine(
        applications=apps,
        cluster=cluster,
        policy=_fleet(policy, budget),
        controller_cfg=CFG,
        noise=NoiseConfig(),
        seed=seed,
        faults=plan,
    )


def _signature(result):
    return (
        tuple(result.node_makespans_s),
        result.package_energy_j,
        result.dram_energy_j,
        tuple(result.allocations),
        tuple(
            (e.time_s, e.socket_id, e.channel, e.detail)
            for e in result.fault_events
        ),
    )


def check_invariants(member, result):
    policy, budget, node_count, _, _, _ = member
    floor = CFG.cap_floor_w
    ceiling = 125.0
    assert len(result.nodes) == node_count
    assert all(math.isfinite(m) and m > 0 for m in result.node_makespans_s)
    assert result.total_energy_j > 0
    assert result.allocations
    for _, alloc in result.allocations:
        assert len(alloc) == node_count
        assert sum(alloc) <= budget + 1e-6
        for a in alloc:
            assert floor - 1e-9 <= a <= ceiling + 1e-9
    if policy in ("fleet-static", "fleet-fair"):
        assert len(result.allocations) == 1  # static: decided once
    assert all(s >= 1.0 - 0.05 for s in result.slowdowns)  # jitter slack
    assert 0.0 < result.fairness_index <= 1.0
    assert result.p99_slowdown >= min(result.slowdowns)


@pytest.mark.slow
@given(m=members)
@ENGINE_SWEEP
def test_random_cluster_runs_conserve_the_budget(m):
    check_invariants(m, _build(*m).run())


@pytest.mark.slow
@given(m=members)
@ENGINE_SWEEP
def test_same_seed_replays_identically(m):
    assert _signature(_build(*m).run()) == _signature(_build(*m).run())


def test_smoke_properties_deterministic():
    """Tier-1 pin of every property on fixed mixed members."""
    comp = [
        ("fleet-demand", 150.0, 2, ("WEB", "BATCH"), 11, None),
        ("fleet-static", 200.0, 3, ("EP", "CG"), 22, None),
        (
            "fleet-fair",
            260.0,
            2,
            (),
            33,
            FaultPlan(msr_read_fail_rate=0.05, cap_latch_fail_rate=0.10),
        ),
    ]
    for m in comp:
        result = _build(*m).run()
        check_invariants(m, result)
        assert _signature(result) == _signature(_build(*m).run())
