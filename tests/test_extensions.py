"""Future-work extension controllers (DUFPF, AdaptiveIntervalDUFP)."""

import pytest

from repro.config import ControllerConfig, NoiseConfig
from repro.core.baselines import DefaultController
from repro.core.dufp import DUFP
from repro.core.extensions import DUFPF, AdaptiveIntervalDUFP
from repro.sim.run import run_application
from repro.workloads.catalog import build_application


QUIET = NoiseConfig(duration_jitter=0.001, counter_noise=0.001, power_noise=0.001)


def run(app_name, factory, cfg, seed=5):
    return run_application(
        build_application(app_name), factory, controller_cfg=cfg, noise=QUIET, seed=seed
    )


class TestDUFPF:
    def test_name(self):
        assert DUFPF(ControllerConfig()).name == "dufpf"

    def test_ep_gains_over_dufp(self):
        # The headline of the extension: explicit frequency control
        # spends the slowdown budget where RAPL's indirect control
        # could not (EP's cap path resets on every violation).
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        default = run("EP", DefaultController, cfg)
        dufp = run("EP", lambda: DUFP(cfg), cfg)
        dufpf = run("EP", lambda: DUFPF(cfg), cfg)
        save_dufp = 1 - dufp.avg_package_power_w / default.avg_package_power_w
        save_dufpf = 1 - dufpf.avg_package_power_w / default.avg_package_power_w
        assert save_dufpf > save_dufp + 0.03

    def test_ep_respects_tolerance(self):
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        default = run("EP", DefaultController, cfg)
        dufpf = run("EP", lambda: DUFPF(cfg), cfg)
        slowdown = dufpf.execution_time_s / default.execution_time_s - 1
        assert slowdown < 0.10 + 0.015

    def test_ceiling_actuated_through_perf_ctl(self):
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        controllers = []

        def factory():
            c = DUFPF(cfg)
            controllers.append(c)
            return c

        run("EP", factory, cfg)
        # The final tick sees the idle tail and resets the ceiling, so
        # check the action log: the ceiling stepped down repeatedly.
        decreases = sum(
            1 for t in controllers[0].ticks if t.cap_action == "decrease"
        )
        assert decreases >= 3

    def test_follower_cap_stays_above_power(self):
        # The cap must shadow consumption, not constrain the ceiling.
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        controllers = []

        def factory():
            c = DUFPF(cfg)
            controllers.append(c)
            return c

        result = run("CG", factory, cfg)
        assert result.avg_package_power_w < 125.0

    def test_tolerance_compliance_everywhere(self):
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        for app in ("CG", "MG", "HPL"):
            default = run(app, DefaultController, cfg)
            dufpf = run(app, lambda: DUFPF(cfg), cfg)
            slowdown = dufpf.execution_time_s / default.execution_time_s - 1
            assert slowdown < 0.10 + 0.02, f"{app}: {slowdown:.3f}"


class TestAdaptiveInterval:
    def test_name(self):
        assert AdaptiveIntervalDUFP(ControllerConfig()).name == "dufp-adaptive"

    def test_bad_fine_ticks_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveIntervalDUFP(ControllerConfig(), fine_ticks=0)

    def test_behaves_like_dufp_in_steady_state(self):
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        dufp = run("EP", lambda: DUFP(cfg), cfg)
        adaptive = run("EP", lambda: AdaptiveIntervalDUFP(cfg), cfg)
        assert adaptive.avg_package_power_w == pytest.approx(
            dufp.avg_package_power_w, rel=0.05
        )

    def test_error_band_restored_after_fine_window(self):
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        controllers = []

        def factory():
            c = AdaptiveIntervalDUFP(cfg, fine_ticks=2)
            controllers.append(c)
            return c

        run("UA", factory, cfg)
        c = controllers[0]
        assert c.cap_flops.measurement_error == cfg.measurement_error
        assert c.engine.flops.measurement_error == cfg.measurement_error

    def test_does_not_hurt_ua_compliance(self):
        cfg = ControllerConfig(tolerated_slowdown=0.0)
        default = run("UA", DefaultController, cfg)
        dufp = run("UA", lambda: DUFP(cfg), cfg)
        adaptive = run("UA", lambda: AdaptiveIntervalDUFP(cfg), cfg)
        miss_dufp = dufp.execution_time_s / default.execution_time_s - 1
        miss_adaptive = adaptive.execution_time_s / default.execution_time_s - 1
        assert miss_adaptive <= miss_dufp + 0.01
