"""Machine topology: yeti layout, round-robin numbering, lookups."""

import pytest

from repro.config import yeti_machine_config
from repro.errors import ConfigurationError
from repro.hardware.topology import build_machine


@pytest.fixture
def machine():
    return build_machine()


class TestYetiLayout:
    def test_four_sockets(self, machine):
        assert machine.socket_count == 4

    def test_sixteen_cores_per_socket(self, machine):
        assert all(s.core_count == 16 for s in machine.sockets)

    def test_sixty_four_cores_total(self, machine):
        assert machine.total_cores == 64

    def test_numa_node_per_socket(self, machine):
        for s in machine.sockets:
            assert s.numa.socket_id == s.socket_id
            assert s.numa.memory_bytes == 64 * 1024**3


class TestRoundRobinNumbering:
    def test_cpu0_on_socket0(self, machine):
        assert machine.core_by_cpu_id(0).socket_id == 0

    def test_cpu1_on_socket1(self, machine):
        # OpenMP threads bound round-robin: consecutive CPUs alternate
        # sockets, as on the real yeti node.
        assert machine.core_by_cpu_id(1).socket_id == 1

    def test_cpu_ids_unique_and_dense(self, machine):
        ids = sorted(c.cpu_id for c in machine.all_cores())
        assert ids == list(range(64))

    def test_local_ids_dense_within_socket(self, machine):
        for s in machine.sockets:
            assert sorted(c.local_id for c in s.cores) == list(range(16))


class TestLookups:
    def test_socket_lookup(self, machine):
        assert machine.socket(2).socket_id == 2

    def test_bad_socket_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            machine.socket(7)

    def test_core_lookup(self, machine):
        core = machine.socket(1).core(3)
        assert core.local_id == 3

    def test_bad_core_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            machine.socket(0).core(16)

    def test_bad_cpu_id_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            machine.core_by_cpu_id(99)


class TestDescribe:
    def test_table1_fields(self, machine):
        d = machine.describe()
        assert d["cores"] == 64
        assert d["uncore_freq_ghz"] == (1.2, 2.4)
        assert d["long_term_w"] == 125.0
        assert d["short_term_w"] == 150.0

    def test_custom_socket_count(self):
        m = build_machine(yeti_machine_config(socket_count=2))
        assert m.total_cores == 32
