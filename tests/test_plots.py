"""ASCII plotting helpers."""

import pytest

from repro.analysis.plots import bar_chart, grouped_bar_chart, sparkline
from repro.errors import ExperimentError


class TestBarChart:
    def test_renders_all_labels(self):
        out = bar_chart({"CG": 13.98, "EP": 24.27})
        assert "CG" in out and "EP" in out

    def test_values_shown(self):
        out = bar_chart({"CG": 13.98})
        assert "+13.98" in out

    def test_largest_bar_fills_width(self):
        out = bar_chart({"a": 10.0, "b": 5.0}, width=20)
        a_line = next(l for l in out.splitlines() if l.startswith("a"))
        assert a_line.count("█") == 20

    def test_proportionality(self):
        out = bar_chart({"a": 10.0, "b": 5.0}, width=20)
        b_line = next(l for l in out.splitlines() if l.startswith("b"))
        assert b_line.count("█") == 10

    def test_negative_marked(self):
        out = bar_chart({"loss": -3.0, "gain": 6.0})
        loss_line = next(l for l in out.splitlines() if "loss" in l)
        assert "|-" in loss_line
        assert "-3.00" in loss_line

    def test_title(self):
        out = bar_chart({"a": 1.0}, title="Fig X")
        assert out.splitlines()[0] == "Fig X"

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            bar_chart({})

    def test_all_zero_values(self):
        out = bar_chart({"a": 0.0})
        assert "+0.00" in out


class TestGroupedBarChart:
    def test_groups_and_series(self):
        out = grouped_bar_chart(
            ["CG", "EP"],
            {"@5%": {"CG": 2.0, "EP": 16.0}, "@10%": {"CG": 18.0, "EP": 16.5}},
        )
        assert out.splitlines()[0] == "CG"
        assert "@5%" in out and "@10%" in out

    def test_missing_group_entry_skipped(self):
        out = grouped_bar_chart(["A", "B"], {"s": {"A": 1.0}})
        assert "B" in out
        assert out.count("|") == 2  # only one bar rendered

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            grouped_bar_chart([], {})


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▏▎▍▌▋▊▉█"

    def test_flat_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1

    def test_explicit_bounds_clamp(self):
        line = sparkline([0.0, 10.0], lo=2.0, hi=4.0)
        assert line[0] == "▏"
        assert line[1] == "█"

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            sparkline([])

    def test_non_finite_bounds_rejected(self):
        with pytest.raises(ExperimentError):
            sparkline([float("nan")])
