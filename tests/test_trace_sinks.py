"""Trace sinks: in-memory equivalence, streaming byte-identity, bounds."""

import io

import pytest

from repro.config import ControllerConfig, NoiseConfig
from repro.core.registry import controller_factory
from repro.errors import SimulationError
from repro.sim.export import trace_to_jsonl
from repro.sim.run import run_application
from repro.sim.trace import (
    CSV_HEADER,
    CompositeTraceSink,
    InMemoryTraceSink,
    RingBufferTraceSink,
    StreamingTraceSink,
)
from repro.workloads.catalog import build_application


QUIET = NoiseConfig(duration_jitter=0.002, counter_noise=0.001, power_noise=0.001)
CFG = ControllerConfig(tolerated_slowdown=0.10)


def _run(**kwargs):
    return run_application(
        build_application("EP", scale=0.2),
        controller_factory("dufp", CFG),
        controller_cfg=CFG,
        noise=QUIET,
        seed=7,
        **kwargs,
    )


class TestInMemorySink:
    def test_matches_classic_recording(self):
        classic = _run(record_trace=True)
        sink = InMemoryTraceSink()
        observed = _run(record_trace=False, trace_sink=sink)
        assert observed.socket(0).trace == classic.socket(0).trace
        assert observed.execution_time_s == classic.execution_time_s

    def test_explicit_sink_wins_over_record_trace(self):
        sink = RingBufferTraceSink(capacity=5)
        result = _run(record_trace=True, trace_sink=sink)
        assert len(result.socket(0).trace) == 5


class TestStreamingJsonl:
    def test_byte_identical_to_serialised_memory_trace(self):
        classic = _run(record_trace=True)
        expected = io.StringIO()
        trace_to_jsonl(classic.socket(0), expected)

        streamed = io.StringIO()
        sink = StreamingTraceSink(streamed, fmt="jsonl")
        _run(record_trace=False, trace_sink=sink)
        assert streamed.getvalue() == expected.getvalue()
        assert sink.rows == len(classic.socket(0).trace)

    def test_path_target_owned_by_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = StreamingTraceSink(path)
        _run(record_trace=False, trace_sink=sink)
        lines = path.read_text().splitlines()
        assert len(lines) == sink.rows > 0
        assert lines[0].startswith('{"socket_id":0,')

    def test_streamed_result_retains_no_trace(self):
        result = _run(record_trace=False, trace_sink=StreamingTraceSink(io.StringIO()))
        assert result.socket(0).trace == []


class TestStreamingCsv:
    def test_header_and_row_count(self, tmp_path):
        path = tmp_path / "trace.csv"
        sink = StreamingTraceSink(path, fmt="csv")
        _run(record_trace=False, trace_sink=sink)
        lines = path.read_text().splitlines()
        assert lines[0] == ",".join(CSV_HEADER)
        assert len(lines) == sink.rows + 1

    def test_unknown_format_rejected(self):
        with pytest.raises(SimulationError):
            StreamingTraceSink(io.StringIO(), fmt="parquet")

    def test_record_before_open_rejected(self):
        sink = StreamingTraceSink(io.StringIO())
        with pytest.raises(SimulationError):
            sink.record(0, _run(record_trace=True).socket(0).trace[0])


class TestRingBufferSink:
    def test_keeps_only_the_tail(self):
        classic = _run(record_trace=True)
        sink = RingBufferTraceSink(capacity=10)
        result = _run(record_trace=False, trace_sink=sink)
        full = classic.socket(0).trace
        assert result.socket(0).trace == full[-10:]
        assert sink.seen[0] == len(full)

    def test_capacity_validated(self):
        with pytest.raises(SimulationError):
            RingBufferTraceSink(capacity=0)


class TestCompositeSink:
    def test_streams_and_retains_at_once(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        streaming = StreamingTraceSink(path)
        memory = InMemoryTraceSink()
        result = _run(
            record_trace=False, trace_sink=CompositeTraceSink(streaming, memory)
        )
        trace = result.socket(0).trace
        assert len(trace) > 0
        assert len(path.read_text().splitlines()) == len(trace)

    def test_needs_a_child(self):
        with pytest.raises(SimulationError):
            CompositeTraceSink()
