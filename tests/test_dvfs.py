"""Core DVFS: P-states, governors, clamps, APERF/MPERF."""

import pytest

from repro.config import CoreConfig
from repro.errors import FrequencyError
from repro.hardware.dvfs import PerformanceGovernor, PowersaveGovernor, PStateDriver
from repro.hardware.msr import MSR, MSRFile, set_bits


@pytest.fixture
def driver():
    return PStateDriver(CoreConfig())


class TestPStates:
    def test_pstate_grid(self, driver):
        states = driver.available_pstates()
        assert states[0] == pytest.approx(1.0e9)
        assert states[-1] == pytest.approx(2.8e9)
        assert len(states) == 19  # 1.0 .. 2.8 in 100 MHz steps

    def test_snap_floors_to_grid(self, driver):
        assert driver.snap(2.349e9) == pytest.approx(2.3e9)

    def test_snap_clamps_low(self, driver):
        assert driver.snap(0.5e9) == pytest.approx(1.0e9)

    def test_snap_clamps_high(self, driver):
        assert driver.snap(5e9) == pytest.approx(2.8e9)


class TestGovernors:
    def test_performance_requests_max(self, driver):
        assert driver.effective_freq() == pytest.approx(2.8e9)

    def test_powersave_requests_min(self):
        d = PStateDriver(CoreConfig(), governor=PowersaveGovernor())
        assert d.effective_freq() == pytest.approx(1.0e9)

    def test_governor_names(self):
        assert PerformanceGovernor().name == "performance"
        assert PowersaveGovernor().name == "powersave"


class TestClamps:
    def test_rapl_clamp_limits_frequency(self, driver):
        driver.set_rapl_clamp(2.0e9)
        assert driver.effective_freq() == pytest.approx(2.0e9)

    def test_rapl_clamp_clamped_to_range(self, driver):
        driver.set_rapl_clamp(0.1e9)
        assert driver.effective_freq() == pytest.approx(1.0e9)

    def test_clear_rapl_clamp(self, driver):
        driver.set_rapl_clamp(1.5e9)
        driver.clear_rapl_clamp()
        assert driver.effective_freq() == pytest.approx(2.8e9)

    def test_lowest_clamp_wins(self, driver):
        driver.set_rapl_clamp(2.2e9)
        driver.perf_ctl_ceiling_hz = 2.0e9
        assert driver.effective_freq() == pytest.approx(2.0e9)


class TestAperfMperf:
    def test_accumulation_at_full_speed(self, driver):
        driver.advance(1.0)
        assert driver.aperf == pytest.approx(2.8e9, rel=1e-9)
        assert driver.mperf == pytest.approx(2.1e9, rel=1e-9)

    def test_measured_freq_formula(self, driver):
        driver.advance(1.0)
        f = driver.measured_freq(driver.aperf, driver.mperf)
        assert f == pytest.approx(2.8e9, rel=1e-6)

    def test_measured_freq_under_clamp(self, driver):
        driver.set_rapl_clamp(1.4e9)
        driver.advance(2.0)
        f = driver.measured_freq(driver.aperf, driver.mperf)
        assert f == pytest.approx(1.4e9, rel=1e-6)

    def test_negative_dt_rejected(self, driver):
        with pytest.raises(FrequencyError):
            driver.advance(-0.1)

    def test_zero_mperf_delta_rejected(self, driver):
        with pytest.raises(FrequencyError):
            driver.measured_freq(100, 0)


class TestMSRWiring:
    @pytest.fixture
    def wired(self, driver):
        msrs = MSRFile()
        driver.attach_msrs(msrs)
        return driver, msrs

    def test_perf_status_reports_ratio(self, wired):
        driver, msrs = wired
        status = msrs.read(MSR.IA32_PERF_STATUS)
        assert (status >> 8) & 0xFF == 28  # 2.8 GHz = ratio 28

    def test_perf_ctl_sets_ceiling(self, wired):
        driver, msrs = wired
        msrs.write(MSR.IA32_PERF_CTL, set_bits(0, 15, 8, 20))
        assert driver.effective_freq() == pytest.approx(2.0e9)

    def test_perf_ctl_zero_ratio_faults(self, wired):
        _, msrs = wired
        with pytest.raises(FrequencyError):
            msrs.write(MSR.IA32_PERF_CTL, 0)

    def test_aperf_mperf_registers(self, wired):
        driver, msrs = wired
        driver.advance(0.5)
        assert msrs.read(MSR.IA32_APERF) == driver.aperf
        assert msrs.read(MSR.IA32_MPERF) == driver.mperf

    def test_aperf_is_read_only(self, wired):
        _, msrs = wired
        from repro.errors import MSRPermissionError

        with pytest.raises(MSRPermissionError):
            msrs.write(MSR.IA32_APERF, 0)
