"""Memory system: bandwidth rooflines and DRAM power."""

import pytest

from repro.config import CoreConfig, MemoryConfig, UncoreConfig
from repro.hardware.memory import MemorySystem


@pytest.fixture
def mem():
    return MemorySystem(MemoryConfig(), CoreConfig(), UncoreConfig())


class TestBandwidthRooflines:
    def test_peak_at_max_clocks(self, mem):
        bw = mem.achievable_bandwidth(2.8e9, 2.4e9)
        assert bw == pytest.approx(105e9)

    def test_uncore_limit_linear_below_saturation(self, mem):
        bw = mem.uncore_bw_limit(1.2e9)
        assert bw == pytest.approx(52.0 * 1.2e9)
        assert bw < 105e9

    def test_uncore_saturation_point(self, mem):
        sat = mem.saturation_uncore_hz()
        assert mem.uncore_bw_limit(sat) == pytest.approx(105e9)
        assert 1.8e9 < sat < 2.2e9

    def test_core_limit_binds_at_low_frequency(self, mem):
        # This is the 65 W floor story: at 1.0 GHz the cores can just
        # barely keep the channels fed.
        bw = mem.achievable_bandwidth(1.0e9, 2.4e9)
        assert bw == pytest.approx(105e9, rel=0.05)

    def test_lower_uncore_cuts_bandwidth(self, mem):
        hi = mem.achievable_bandwidth(2.8e9, 2.4e9)
        lo = mem.achievable_bandwidth(2.8e9, 1.2e9)
        assert lo < hi

    def test_active_core_scaling(self, mem):
        all_cores = mem.core_bw_limit(2.8e9)
        four = mem.core_bw_limit(2.8e9, active_cores=4)
        assert four == pytest.approx(all_cores / 4.0)

    def test_invalid_inputs_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.uncore_bw_limit(0.0)
        with pytest.raises(ValueError):
            mem.core_bw_limit(2.8e9, active_cores=0)
        with pytest.raises(ValueError):
            mem.achievable_bandwidth(-1.0, 2.4e9)


class TestTrafficUtilisation:
    def test_zero_traffic(self, mem):
        assert mem.traffic_utilisation(0.0) == 0.0

    def test_full_traffic(self, mem):
        assert mem.traffic_utilisation(105e9) == pytest.approx(1.0)

    def test_clamped_above_peak(self, mem):
        assert mem.traffic_utilisation(300e9) == 1.0

    def test_negative_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.traffic_utilisation(-1.0)


class TestDRAMPower:
    def test_static_floor(self, mem):
        assert mem.dram_power(0.0) == pytest.approx(14.0)

    def test_linear_in_bandwidth(self, mem):
        p0 = mem.dram_power(0.0)
        p1 = mem.dram_power(50e9)
        p2 = mem.dram_power(100e9)
        assert p2 - p1 == pytest.approx(p1 - p0)

    def test_full_bandwidth_power_plausible(self, mem):
        # ~14 W static + ~16 W dynamic at 105 GB/s, matching the
        # magnitude of the paper's per-socket DRAM measurements.
        assert 25.0 < mem.dram_power(105e9) < 35.0

    def test_negative_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.dram_power(-1.0)
