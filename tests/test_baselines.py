"""Baseline controllers: static caps, window caps, DNPC-like."""

import pytest

from repro.config import ControllerConfig, yeti_socket_config
from repro.core.baselines import (
    DNPCLike,
    StaticPowerCap,
    StaticUncore,
    TimeWindowCap,
)
from repro.core.runtime import ControllerRuntime
from repro.errors import ControllerError
from repro.hardware.processor import SimulatedProcessor
from repro.papi.highlevel import Measurement


def wire(ctrl, tol=0.10):
    cfg = ControllerConfig(tolerated_slowdown=tol)
    proc = SimulatedProcessor(yeti_socket_config())
    runtime = ControllerRuntime(processors=[proc], controllers=[ctrl], cfg=cfg)
    runtime.start()
    return proc


def m(flops=12e9, bw=100e9, power=100.0):
    return Measurement(
        dt_s=0.2,
        flops_per_s=flops,
        bytes_per_s=bw,
        package_power_w=power,
        dram_power_w=25.0,
    )


def latch(proc):
    proc.rapl.step(0.01, 100.0, 20.0)


class TestStaticPowerCap:
    def test_cap_applied_at_attach(self):
        ctrl = StaticPowerCap(110.0)
        proc = wire(ctrl)
        latch(proc)
        assert proc.rapl.pl1.limit_w == pytest.approx(110.0)
        assert proc.rapl.pl2.limit_w == pytest.approx(110.0)

    def test_cap_never_changes(self):
        ctrl = StaticPowerCap(100.0)
        proc = wire(ctrl)
        latch(proc)
        for i in range(10):
            ctrl.tick(0.2 * (i + 1), m())
        latch(proc)
        assert proc.rapl.pl1.limit_w == pytest.approx(100.0)

    def test_name_includes_cap(self):
        assert StaticPowerCap(110.0).name == "static-110W"

    def test_bad_cap_rejected(self):
        with pytest.raises(ControllerError):
            StaticPowerCap(0.0)


class TestStaticUncore:
    def test_pins_at_attach(self):
        ctrl = StaticUncore(1.8e9)
        proc = wire(ctrl)
        assert proc.uncore.pinned
        assert proc.uncore.frequency_hz == pytest.approx(1.8e9)

    def test_bad_freq_rejected(self):
        with pytest.raises(ControllerError):
            StaticUncore(0.0)


class TestTimeWindowCap:
    def test_cap_active_from_zero(self):
        ctrl = TimeWindowCap(100.0, 0.0, 1.0)
        proc = wire(ctrl)
        latch(proc)
        assert proc.rapl.pl1.limit_w == pytest.approx(100.0)

    def test_cap_released_after_window(self):
        ctrl = TimeWindowCap(100.0, 0.0, 1.0)
        proc = wire(ctrl)
        latch(proc)
        ctrl.tick(0.8, m())
        latch(proc)
        assert proc.rapl.pl1.limit_w == pytest.approx(100.0)
        ctrl.tick(1.2, m())
        latch(proc)
        assert proc.rapl.pl1.limit_w == pytest.approx(125.0)

    def test_cap_applies_mid_run(self):
        ctrl = TimeWindowCap(100.0, 1.0, 2.0)
        proc = wire(ctrl)
        latch(proc)
        assert proc.rapl.pl1.limit_w == pytest.approx(125.0)
        ctrl.tick(1.2, m())
        latch(proc)
        assert proc.rapl.pl1.limit_w == pytest.approx(100.0)

    def test_bad_window_rejected(self):
        with pytest.raises(ControllerError):
            TimeWindowCap(100.0, 2.0, 1.0)


class TestDNPCLike:
    def test_decreases_cap_when_frequency_high(self):
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        ctrl = DNPCLike(cfg)
        proc = wire(ctrl)
        # Running at full frequency: estimated degradation 0, slack 10 %.
        ctrl.tick(0.2, m())
        latch(proc)
        assert proc.rapl.pl1.limit_w == pytest.approx(120.0)

    def test_increases_cap_when_frequency_low(self):
        cfg = ControllerConfig(tolerated_slowdown=0.05)
        ctrl = DNPCLike(cfg)
        proc = wire(ctrl)
        for i in range(5):
            ctrl.tick(0.2 * (i + 1), m())
            latch(proc)
        cap_low = proc.rapl.pl1.limit_w
        # Clamp the frequency well below the tolerance (20 % down).
        proc.dvfs.set_rapl_clamp(2.2e9)
        ctrl.tick(1.2, m())
        latch(proc)
        assert proc.rapl.pl1.limit_w > cap_low

    def test_frequency_model_is_blind_to_memory_boundness(self):
        # The paper's critique: on a memory-bound phase a frequency drop
        # does not mean a performance drop, but DNPC backs off anyway.
        cfg = ControllerConfig(tolerated_slowdown=0.05)
        ctrl = DNPCLike(cfg)
        proc = wire(ctrl)
        for i in range(3):  # walk the cap below the default first
            ctrl.tick(0.2 * (i + 1), m())
            latch(proc)
        proc.dvfs.set_rapl_clamp(2.2e9)  # 21 % frequency cut
        ctrl.tick(0.8, m())  # flops unchanged (memory bound)!
        assert ctrl.ticks[-1].cap_action == "increase"
