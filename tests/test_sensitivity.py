"""Calibration sensitivity analysis."""

import pytest

from repro.config import NoiseConfig
from repro.errors import ExperimentError
from repro.experiments.sensitivity import (
    PARAMETERS,
    SensitivityPoint,
    run_sensitivity,
)


QUIET = NoiseConfig(duration_jitter=0.001, counter_noise=0.001, power_noise=0.001)


@pytest.fixture(scope="module")
def result():
    # A reduced probe: two load-bearing parameters at +/- 20 %.
    return run_sensitivity(
        parameters=["k_uncore", "core_idle_fraction"], noise=QUIET
    )


class TestHarness:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(ExperimentError):
            run_sensitivity(parameters=["warp_drive"])

    def test_parameter_factories_validate(self):
        from repro.config import yeti_socket_config

        base = yeti_socket_config()
        for name, fn in PARAMETERS.items():
            for f in (0.8, 1.2):
                fn(base, f).validate()

    def test_baseline_present(self, result):
        assert result.baseline.parameter == "baseline"
        assert result.baseline.factor == 1.0

    def test_two_points_per_parameter(self, result):
        assert len(result.for_parameter("k_uncore")) == 2

    def test_missing_parameter_lookup(self, result):
        with pytest.raises(ExperimentError):
            result.for_parameter("static_w")

    def test_render(self, result):
        out = result.render()
        assert "k_uncore" in out
        assert "x0.80" in out and "x1.20" in out


class TestShapes:
    def test_baseline_holds(self, result):
        assert result.baseline.holds

    def test_probed_parameters_hold(self, result):
        # These two constants are robust at +/- 20 % (EXPERIMENTS.md).
        for p in result.points:
            assert p.holds, f"{p.parameter} x{p.factor} broke the shape"

    def test_holds_criteria(self):
        good = SensitivityPoint("x", 1.0, 8.0, 15.0, 16.0)
        assert good.holds
        assert not SensitivityPoint("x", 1.0, 20.0, 15.0, 16.0).holds
        assert not SensitivityPoint("x", 1.0, 8.0, 0.5, 16.0).holds
