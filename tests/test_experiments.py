"""Experiment harnesses: protocol, sweep, figures, registry.

These run reduced protocols (2-3 runs, scaled apps) so the suite stays
fast; the full 10-run protocol lives in the benchmarks.
"""

import pytest

from repro.config import ControllerConfig, NoiseConfig
from repro.core.baselines import DefaultController
from repro.core.dufp import DUFP
from repro.errors import ExperimentError, PolicyError
from repro.experiments.fig1 import fig1a, fig1b, fig1c
from repro.experiments.fig3 import fig3a, fig3b, fig3c
from repro.experiments.fig4 import fig4
from repro.experiments.fig5 import fig5
from repro.experiments.protocol import compare, run_protocol
from repro.experiments.registry import experiment_ids, run_experiment
from repro.experiments.sweep import run_sweep
from repro.experiments.table1 import table1
from repro.workloads.catalog import build_application


QUIET = NoiseConfig(duration_jitter=0.002, counter_noise=0.001, power_noise=0.001)


@pytest.fixture(scope="module")
def small_sweep():
    """A reduced sweep shared by the figure tests."""
    return run_sweep(
        apps=["CG", "EP"],
        tolerances_pct=(0.0, 10.0),
        runs=3,
        noise=QUIET,
    )


class TestProtocol:
    def test_runs_recorded(self):
        app = build_application("EP", scale=0.2)
        res = run_protocol(app, DefaultController, runs=3, noise=QUIET)
        assert len(res.times_s) == 3
        assert len(res.package_power_w) == 3

    def test_keep_trims_by_time(self):
        app = build_application("EP", scale=0.2)
        res = run_protocol(app, DefaultController, runs=4, noise=QUIET)
        assert len(res.keep) == 2

    def test_zero_runs_rejected(self):
        app = build_application("EP", scale=0.2)
        with pytest.raises(ExperimentError):
            run_protocol(app, DefaultController, runs=0)

    def test_compare_same_app_required(self):
        ep = run_protocol(build_application("EP", scale=0.2), DefaultController, runs=1)
        cg = run_protocol(build_application("CG", scale=0.2), DefaultController, runs=1)
        with pytest.raises(ExperimentError):
            compare(ep, cg)

    def test_compare_default_to_itself_is_zero(self):
        app = build_application("EP", scale=0.2)
        res = run_protocol(app, DefaultController, runs=3, noise=QUIET)
        cmp_ = compare(res, res)
        assert cmp_.slowdown_pct.mean == pytest.approx(0.0, abs=0.5)
        assert cmp_.package_savings_pct.mean == pytest.approx(0.0, abs=0.5)

    def test_comparison_signs(self):
        app = build_application("CG", scale=0.3)
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        default = run_protocol(app, DefaultController, runs=2, noise=QUIET)
        dufp = run_protocol(
            app, lambda: DUFP(cfg), controller_cfg=cfg, runs=2, noise=QUIET
        )
        cmp_ = compare(dufp, default)
        assert cmp_.package_savings_pct.mean > 0  # saved power
        assert cmp_.slowdown_pct.mean >= -1.0  # did not speed up


class TestSweep:
    def test_sweep_structure(self, small_sweep):
        assert small_sweep.apps == ("CG", "EP")
        assert small_sweep.tolerances_pct == (0.0, 10.0)
        assert len(small_sweep.comparisons) == 2 * 2 * 2  # apps x ctrl x tol

    def test_get_lookup(self, small_sweep):
        c = small_sweep.get("cg", "dufp", 10)
        assert c.app_name == "CG"

    def test_unknown_key_rejected(self, small_sweep):
        with pytest.raises(ExperimentError):
            small_sweep.get("CG", "dufp", 99.0)

    def test_respected_count(self, small_sweep):
        within, total = small_sweep.respected_count("dufp", slack=1.0)
        assert total == 4
        assert within >= 3

    def test_unknown_controller_rejected(self):
        with pytest.raises(PolicyError):
            run_sweep(apps=["EP"], controllers=("magic",), runs=1)

    def test_dufp_beats_duf_on_cg_at_10(self, small_sweep):
        duf = small_sweep.get("CG", "duf", 10.0)
        dufp = small_sweep.get("CG", "dufp", 10.0)
        assert dufp.package_savings_pct.mean > duf.package_savings_pct.mean


class TestTable1:
    def test_values_match_paper(self):
        t = table1()
        assert t.cores == 64
        assert (t.uncore_min_ghz, t.uncore_max_ghz) == (1.2, 2.4)
        assert t.long_term_w == 125.0
        assert t.short_term_w == 150.0

    def test_render(self):
        out = table1().render()
        assert "64" in out and "125" in out and "150" in out


class TestFig1:
    def test_fig1a_shape(self):
        r = fig1a(runs=2, noise=QUIET)
        labels = [row.label for row in r.rows]
        assert labels == ["default", "ufs", "ufs+110W", "ufs+100W"]
        # Static caps save power but cost time.
        assert r.row("ufs+100W").power_pct_of_budget < r.row("default").power_pct_of_budget
        assert r.row("ufs+100W").time_pct_of_default > 105.0

    def test_fig1a_cap_ordering(self):
        r = fig1a(runs=2, noise=QUIET)
        assert (
            r.row("ufs+100W").power_pct_of_budget
            < r.row("ufs+110W").power_pct_of_budget
        )

    def test_fig1b_phase_power_reduced(self):
        r = fig1b(runs=2, noise=QUIET)
        assert r.row("ufs+100W").power_pct_of_budget < r.row("default").power_pct_of_budget - 8.0

    def test_fig1c_time_unaffected(self):
        # The headline of the motivation: capping the memory phase is
        # free.
        r = fig1c(runs=2, noise=QUIET)
        for label in ("ufs+110W", "ufs+100W"):
            assert r.row(label).time_pct_of_default == pytest.approx(100.0, abs=1.0)

    def test_unknown_row_rejected(self):
        r = fig1a(runs=1, noise=QUIET)
        with pytest.raises(ExperimentError):
            r.row("nope")


class TestFig3AndFig4:
    def test_fig3a_panel(self, small_sweep):
        panel = fig3a(sweep=small_sweep)
        bar = panel.get("CG", "dufp", 10.0)
        assert bar.mean <= 12.0  # respects (or nearly) the tolerance

    def test_fig3b_panel(self, small_sweep):
        panel = fig3b(sweep=small_sweep)
        assert panel.get("EP", "duf", 10.0).mean > 10.0  # EP's uncore win

    def test_fig3c_panel(self, small_sweep):
        panel = fig3c(sweep=small_sweep)
        assert panel.get("EP", "duf", 10.0).mean > 5.0

    def test_fig4_panel(self, small_sweep):
        panel = fig4(sweep=small_sweep)
        assert panel.get("CG", "dufp", 10.0).mean > 0.0

    def test_render_contains_all_apps(self, small_sweep):
        out = fig3a(sweep=small_sweep).render()
        assert "CG" in out and "EP" in out and "duf" in out and "dufp" in out


class TestFig5:
    def test_dufp_lowers_average_frequency(self):
        r = fig5(noise=QUIET)
        assert r.duf_avg_ghz == pytest.approx(2.8, abs=0.05)
        assert r.dufp_avg_ghz < r.duf_avg_ghz - 0.15

    def test_series_shapes(self):
        r = fig5(noise=QUIET)
        t, v = r.dufp_series
        assert len(t) == len(v) > 10
        assert all(1.0 <= x <= 2.8 for x in v)


class TestRegistry:
    def test_all_ids_present(self):
        ids = experiment_ids()
        for expected in ("table1", "fig1a", "fig3a", "fig4", "fig5", "all"):
            assert expected in ids

    def test_unknown_id_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")

    def test_run_table1(self):
        out = run_experiment("table1")
        assert "Table I" in out
