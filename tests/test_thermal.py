"""Thermal model: RC dynamics, PROCHOT, MSR readouts, integration."""

from dataclasses import replace

import pytest

from repro.config import ThermalConfig, yeti_socket_config
from repro.errors import ConfigurationError, HardwareError
from repro.hardware.processor import SimulatedProcessor
from repro.hardware.thermal import (
    MSR_IA32_THERM_STATUS,
    MSR_TEMPERATURE_TARGET,
    ThermalModel,
)
from repro.hardware.msr import get_bits

from tests.conftest import settle


def hot_config(**kwargs):
    """A deliberately undersized cooler for throttle tests."""
    defaults = dict(r_thermal_c_per_w=0.8, tau_s=2.0)
    defaults.update(kwargs)
    return ThermalConfig(**defaults)


class TestConfig:
    def test_default_valid(self):
        ThermalConfig().validate()

    def test_tdp_guarantee(self):
        # Sustained TDP (125 W) settles safely below the PROCHOT trip.
        cfg = ThermalConfig()
        assert cfg.steady_state_c(125.0) < cfg.t_prochot_c - 5.0

    def test_max_dissipation_above_tdp(self):
        assert ThermalConfig().max_dissipation_w > 125.0

    def test_bad_resistance_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(ThermalConfig(), r_thermal_c_per_w=0.0).validate()

    def test_ambient_must_be_below_trip(self):
        with pytest.raises(ConfigurationError):
            replace(ThermalConfig(), ambient_c=100.0).validate()


class TestRCDynamics:
    def test_starts_at_ambient(self):
        m = ThermalModel(ThermalConfig())
        assert m.temperature_c == pytest.approx(40.0)

    def test_converges_to_steady_state(self):
        m = ThermalModel(ThermalConfig())
        for _ in range(100):
            m.step(1.0, 100.0)
        assert m.temperature_c == pytest.approx(
            ThermalConfig().steady_state_c(100.0), abs=0.1
        )

    def test_first_order_lag(self):
        m = ThermalModel(ThermalConfig(tau_s=8.0))
        m.step(8.0, 100.0)  # one time constant
        target = ThermalConfig().steady_state_c(100.0)
        expected = 40.0 + (target - 40.0) * (1.0 - 2.718281828**-1)
        assert m.temperature_c == pytest.approx(expected, rel=0.01)

    def test_cooling_when_power_drops(self):
        m = ThermalModel(ThermalConfig())
        for _ in range(100):
            m.step(1.0, 125.0)
        hot = m.temperature_c
        for _ in range(100):
            m.step(1.0, 30.0)
        assert m.temperature_c < hot

    def test_step_validation(self):
        m = ThermalModel(ThermalConfig())
        with pytest.raises(HardwareError):
            m.step(0.0, 10.0)
        with pytest.raises(HardwareError):
            m.step(1.0, -1.0)


class TestProchot:
    def test_asserts_above_trip(self):
        m = ThermalModel(hot_config())
        for _ in range(50):
            m.step(1.0, 125.0)  # steady state 140 C with the bad cooler
        assert m.prochot
        assert m.freq_clamp_hz() == pytest.approx(1.2e9)

    def test_hysteresis(self):
        m = ThermalModel(hot_config())
        for _ in range(50):
            m.step(1.0, 125.0)
        assert m.prochot
        # Cool gradually: just under the trip it stays asserted.
        while m.temperature_c > 94.5:
            m.step(0.02, 20.0)
        assert m.prochot
        while m.temperature_c > 90.0:
            m.step(0.02, 20.0)
        assert not m.prochot

    def test_no_clamp_when_cool(self):
        m = ThermalModel(ThermalConfig())
        assert m.freq_clamp_hz() == float("inf")


class TestMSRs:
    def test_therm_status_readout(self):
        from repro.hardware.msr import MSRFile

        m = ThermalModel(ThermalConfig())
        msrs = MSRFile()
        m.attach_msrs(msrs)
        v = msrs.read(MSR_IA32_THERM_STATUS)
        assert get_bits(v, 0, 0) == 0  # no PROCHOT
        assert get_bits(v, 22, 16) == int(m.headroom_c)
        assert get_bits(v, 31, 31) == 1  # valid

    def test_temperature_target(self):
        from repro.hardware.msr import MSRFile

        m = ThermalModel(ThermalConfig())
        msrs = MSRFile()
        m.attach_msrs(msrs)
        v = msrs.read(MSR_TEMPERATURE_TARGET)
        assert get_bits(v, 23, 16) == 96


class TestProcessorIntegration:
    def test_disabled_by_default(self, processor, compute_work):
        s = settle(processor, compute_work)
        assert processor.thermal is None
        assert s.temperature_c is None

    def test_enabled_tracks_temperature(self, compute_work):
        cfg = replace(yeti_socket_config(), thermal=ThermalConfig())
        p = SimulatedProcessor(cfg)
        s = settle(p, compute_work, steps=500, dt=0.1)
        target = ThermalConfig().steady_state_c(s.package.total_w)
        assert s.temperature_c == pytest.approx(target, abs=1.0)

    def test_no_throttle_within_tdp(self, compute_work):
        cfg = replace(yeti_socket_config(), thermal=ThermalConfig())
        p = SimulatedProcessor(cfg)
        s = settle(p, compute_work, steps=500, dt=0.1)
        assert s.core_freq_hz == pytest.approx(2.8e9)

    def test_undersized_cooler_throttles(self, compute_work):
        cfg = replace(yeti_socket_config(), thermal=hot_config())
        p = SimulatedProcessor(cfg)
        s = settle(p, compute_work, steps=600, dt=0.1)
        assert p.thermal.prochot
        assert s.core_freq_hz <= 1.2e9 + 1e6

    def test_prochot_bounds_temperature(self, compute_work):
        # The safety property: with PROCHOT active the package may
        # limit-cycle around the trip but never runs away above it.
        cfg = replace(yeti_socket_config(), thermal=hot_config())
        p = SimulatedProcessor(cfg)
        settle(p, compute_work, steps=600, dt=0.1)
        peak = 0.0
        for _ in range(300):
            p.step(0.1, compute_work)
            peak = max(peak, p.thermal.temperature_c)
        assert peak < hot_config().t_prochot_c + 2.0
