"""Full-node (4-socket) validation: per-socket independence.

The paper runs one DUFP instance per socket of a 4-socket node and
reports per-socket metrics; the experiments here simulate one socket
for speed.  These tests justify that: with identical per-socket work,
a 4-socket node reproduces the single-socket numbers.
"""

import pytest

from repro.config import ControllerConfig, NoiseConfig
from repro.core.baselines import DefaultController
from repro.core.dufp import DUFP
from repro.sim.run import run_application
from repro.workloads.catalog import build_application


QUIET = NoiseConfig(duration_jitter=0.0, counter_noise=0.0, power_noise=0.0)


@pytest.fixture(scope="module")
def runs():
    cfg = ControllerConfig(tolerated_slowdown=0.10)
    app = build_application("CG", scale=0.5)
    one = {
        "default": run_application(
            app, DefaultController, controller_cfg=cfg, noise=QUIET, seed=13
        ),
        "dufp": run_application(
            app, lambda: DUFP(cfg), controller_cfg=cfg, noise=QUIET, seed=13
        ),
    }
    four = {
        "default": run_application(
            app,
            DefaultController,
            controller_cfg=cfg,
            socket_count=4,
            noise=QUIET,
            seed=13,
        ),
        "dufp": run_application(
            app,
            lambda: DUFP(cfg),
            controller_cfg=cfg,
            socket_count=4,
            noise=QUIET,
            seed=13,
        ),
    }
    return one, four


class TestNodeScale:
    def test_four_sockets_run(self, runs):
        _, four = runs
        assert len(four["dufp"].sockets) == 4

    def test_per_socket_power_matches_single_socket(self, runs):
        one, four = runs
        assert four["dufp"].avg_package_power_w == pytest.approx(
            one["dufp"].avg_package_power_w, rel=0.03
        )

    def test_execution_time_matches(self, runs):
        one, four = runs
        assert four["dufp"].execution_time_s == pytest.approx(
            one["dufp"].execution_time_s, rel=0.03
        )

    def test_sockets_behave_identically_without_noise(self, runs):
        _, four = runs
        times = [s.finish_time_s for s in four["dufp"].sockets]
        assert max(times) - min(times) < 0.2

    def test_node_energy_scales_linearly(self, runs):
        one, four = runs
        assert four["default"].package_energy_j == pytest.approx(
            4 * one["default"].package_energy_j, rel=0.03
        )

    def test_savings_ratio_preserved_at_node_scale(self, runs):
        one, four = runs
        save_one = 1 - one["dufp"].avg_package_power_w / one["default"].avg_package_power_w
        save_four = (
            1 - four["dufp"].avg_package_power_w / four["default"].avg_package_power_w
        )
        assert save_four == pytest.approx(save_one, abs=0.02)


class TestDUFPJointResetRetry:
    def test_interaction_two_reissues_uncore_reset(self):
        """§III interaction 2: the joint reset is verified next tick."""
        from repro.core.runtime import ControllerRuntime
        from repro.hardware.processor import SimulatedProcessor
        from repro.config import yeti_socket_config
        from repro.papi.highlevel import Measurement

        cfg = ControllerConfig(tolerated_slowdown=0.10)
        proc = SimulatedProcessor(yeti_socket_config())
        ctrl = DUFP(cfg)
        runtime = ControllerRuntime(processors=[proc], controllers=[ctrl], cfg=cfg)
        runtime.start()

        def m(flops, bw):
            return Measurement(
                dt_s=0.2,
                flops_per_s=flops,
                bytes_per_s=bw,
                package_power_w=100.0,
                dram_power_w=25.0,
            )

        ctrl.tick(0.2, m(12e9, 100e9))  # first tick: joint reset
        assert ctrl._joint_reset_pending
        # Simulate the uncore lagging below max despite the reset.
        proc.uncore.pin(2.0e9)
        ctrl.tick(0.4, m(12e9, 100e9))
        # The retry re-pinned the uncore at its maximum before the
        # tick's own decision ran (which may then step it down once).
        assert proc.uncore.frequency_hz >= 2.3e9
        assert not ctrl._joint_reset_pending
