"""Parallel executor and content-addressed result cache.

The acceptance properties of the execution layer: parallel sweeps are
bit-identical to serial ones, warm-cache reruns execute nothing, any
config change invalidates the address, and corrupted entries recover
by recomputation.
"""

from dataclasses import replace

import pytest

from repro.config import NoiseConfig, config_digest, yeti_socket_config
from repro.core.registry import make_spec
from repro.errors import ExperimentError, PolicyError
from repro.experiments.cache import ResultCache
from repro.experiments.executor import (
    RunSpec,
    cell_seed,
    execute_spec,
    run_specs,
    spec_key,
)
from repro.experiments.sweep import run_sweep, sweep_specs


QUIET = NoiseConfig(duration_jitter=0.002, counter_noise=0.001, power_noise=0.001)

#: A grid small enough to execute many times in one test module.
GRID = dict(
    apps=["EP"], tolerances_pct=(0.0,), runs=2, app_scale=0.2, noise=QUIET
)


def small_spec(**overrides) -> RunSpec:
    base = dict(
        app_name="EP",
        controller="duf",
        runs=2,
        app_scale=0.2,
        noise=QUIET,
        label="EP/duf",
    )
    base.update(overrides)
    return RunSpec(**base)


class TestSpecKey:
    def test_stable_across_calls(self):
        assert spec_key(small_spec()) == spec_key(small_spec())

    def test_label_excluded(self):
        assert spec_key(small_spec(label="a")) == spec_key(small_spec(label="b"))

    def test_config_change_invalidates(self):
        a = small_spec()
        b = small_spec(
            controller_cfg=replace(a.controller_cfg, cap_step_w=10.0)
        )
        assert spec_key(a) != spec_key(b)

    def test_every_field_reaches_the_key(self):
        a = small_spec()
        variants = [
            small_spec(app_name="CG"),
            small_spec(controller="dufp"),
            small_spec(runs=3),
            small_spec(base_seed=1),
            small_spec(app_scale=0.3),
            small_spec(noise=replace(QUIET, seed=1)),
            small_spec(socket=yeti_socket_config()),
            small_spec(socket_count=2),
            small_spec(record_trace=True),
            small_spec(controller="static"),
            small_spec(controller=make_spec("static", cap_w=100.0)),
            small_spec(controller="budget:watts=95"),
        ]
        keys = {spec_key(v) for v in variants}
        assert spec_key(a) not in keys
        assert len(keys) == len(variants)

    def test_digest_rejects_unhashable(self):
        with pytest.raises(Exception):
            config_digest(object())

    def test_cell_seed_deterministic_and_distinct(self):
        assert cell_seed("CG", "duf", 10.0) == cell_seed("CG", "duf", 10.0)
        assert cell_seed("CG", "duf", 10.0) != cell_seed("CG", "dufp", 10.0)
        assert cell_seed("CG", "duf", 10.0) != cell_seed("CG", "duf", 20.0)


class TestSpecValidation:
    def test_unknown_controller_rejected(self):
        # Policy-id strings resolve at construction, so the bad name
        # fails fast inside RunSpec.__post_init__.
        with pytest.raises(PolicyError):
            small_spec(controller="magic")

    def test_zero_runs_rejected(self):
        with pytest.raises(ExperimentError):
            small_spec(runs=0).validate()

    def test_run_specs_needs_a_worker(self):
        with pytest.raises(ExperimentError):
            run_specs([small_spec()], workers=0)


class TestCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = execute_spec(small_spec())
        key = spec_key(small_spec())
        cache.put(key, result)
        got = cache.get(key)
        assert got is not None
        assert got.times_s == result.times_s
        assert cache.stats.hits == 1

    def test_miss_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(spec_key(small_spec())) is None
        assert cache.stats.misses == 1

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = spec_key(small_spec())
        cache.put(key, execute_spec(small_spec()))
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert cache.stats.corrupted == 1
        assert not path.exists()  # removed, so the rerun can repopulate
        results, summary = run_specs([small_spec()], cache=cache)
        assert summary.executed == 1
        assert cache.get(key) is not None

    def test_malformed_key_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            ResultCache(tmp_path).get("../escape")

    def test_cache_path_must_be_a_directory(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.raises(ExperimentError):
            ResultCache(blocker)

    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(spec_key(small_spec()), execute_spec(small_spec()))
        assert len(cache) == 1


class TestParallelEquality:
    def test_parallel_equals_serial_sweep(self):
        serial = run_sweep(**GRID, workers=1)
        parallel = run_sweep(**GRID, workers=4)
        # Exact Comparison equality: identical seeds, identical floats.
        assert serial.comparisons == parallel.comparisons
        for app in serial.defaults:
            assert (
                serial.defaults[app].times_s == parallel.defaults[app].times_s
            )

    def test_order_independent_seeds(self):
        specs, _ = sweep_specs(**GRID)
        forward, _ = run_specs(specs)
        backward, _ = run_specs(list(reversed(specs)))
        for f, b in zip(forward, reversed(backward)):
            assert f.times_s == b.times_s


class TestWarmCache:
    def test_warm_rerun_executes_nothing(self, tmp_path):
        cold = run_sweep(**GRID, cache=str(tmp_path))
        warm = run_sweep(**GRID, workers=2, cache=str(tmp_path))
        assert cold.execution.executed == cold.execution.total > 0
        assert warm.execution.executed == 0
        assert warm.execution.hits == warm.execution.total
        assert warm.comparisons == cold.comparisons

    def test_config_change_misses(self, tmp_path):
        run_sweep(**GRID, cache=str(tmp_path))
        changed = dict(GRID, runs=3)
        assert run_sweep(**changed, cache=str(tmp_path)).execution.hits == 0

    def test_summary_renders(self, tmp_path):
        sweep = run_sweep(**GRID, cache=str(tmp_path))
        text = sweep.execution.render(per_cell=True)
        assert "executed" in text and "EP/duf@0%" in text
        warm = run_sweep(**GRID, cache=str(tmp_path))
        assert "cache hits" in warm.execution.render()


class TestInterruptedSweepResumes:
    def test_partial_cache_completes_the_rest(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs, _ = sweep_specs(**GRID)
        # Simulate an interrupted sweep: only the first cell persisted.
        cache.put(spec_key(specs[0]), execute_spec(specs[0]))
        sweep = run_sweep(**GRID, cache=cache)
        assert sweep.execution.hits == 1
        assert sweep.execution.executed == len(specs) - 1
