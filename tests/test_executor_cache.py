"""Parallel executor and content-addressed result cache.

The acceptance properties of the execution layer: parallel sweeps are
bit-identical to serial ones, warm-cache reruns execute nothing, any
config change invalidates the address, and corrupted entries recover
by recomputation.
"""

from dataclasses import replace

import pytest

from repro.config import NoiseConfig, config_digest, yeti_socket_config
from repro.core.registry import make_spec
from repro.errors import ExperimentError, PolicyError
from repro.experiments.cache import ResultCache
from repro.experiments.executor import (
    RunSpec,
    cell_seed,
    execute_spec,
    run_specs,
    spec_key,
)
from repro.experiments.sweep import run_sweep, sweep_specs
from repro.sim.faults import FaultPlan


QUIET = NoiseConfig(duration_jitter=0.002, counter_noise=0.001, power_noise=0.001)

#: A grid small enough to execute many times in one test module.
GRID = dict(
    apps=["EP"], tolerances_pct=(0.0,), runs=2, app_scale=0.2, noise=QUIET
)


def small_spec(**overrides) -> RunSpec:
    base = dict(
        app_name="EP",
        controller="duf",
        runs=2,
        app_scale=0.2,
        noise=QUIET,
        label="EP/duf",
    )
    base.update(overrides)
    return RunSpec(**base)


class TestSpecKey:
    def test_stable_across_calls(self):
        assert spec_key(small_spec()) == spec_key(small_spec())

    def test_label_excluded(self):
        assert spec_key(small_spec(label="a")) == spec_key(small_spec(label="b"))

    def test_config_change_invalidates(self):
        a = small_spec()
        b = small_spec(
            controller_cfg=replace(a.controller_cfg, cap_step_w=10.0)
        )
        assert spec_key(a) != spec_key(b)

    def test_every_field_reaches_the_key(self):
        a = small_spec()
        variants = [
            small_spec(app_name="CG"),
            small_spec(controller="dufp"),
            small_spec(runs=3),
            small_spec(base_seed=1),
            small_spec(app_scale=0.3),
            small_spec(noise=replace(QUIET, seed=1)),
            small_spec(socket=yeti_socket_config()),
            small_spec(socket_count=2),
            small_spec(record_trace=True),
            small_spec(controller="static"),
            small_spec(controller=make_spec("static", cap_w=100.0)),
            small_spec(controller="budget:watts=95"),
        ]
        keys = {spec_key(v) for v in variants}
        assert spec_key(a) not in keys
        assert len(keys) == len(variants)

    def test_digest_rejects_unhashable(self):
        with pytest.raises(Exception):
            config_digest(object())

    def test_cell_seed_deterministic_and_distinct(self):
        assert cell_seed("CG", "duf", 10.0) == cell_seed("CG", "duf", 10.0)
        assert cell_seed("CG", "duf", 10.0) != cell_seed("CG", "dufp", 10.0)
        assert cell_seed("CG", "duf", 10.0) != cell_seed("CG", "duf", 20.0)


class TestFaultPlanDigest:
    """The faults field folds into the content address — except when
    it is contractually a no-op (None or the all-zero plan), where the
    digest must equal the historic fault-free one."""

    def test_none_and_zero_plan_share_one_digest(self):
        assert spec_key(small_spec()) == spec_key(
            small_spec(faults=FaultPlan())
        )

    def test_zero_plan_normalised_to_none(self):
        assert small_spec(faults=FaultPlan.zero()).faults is None

    def test_active_plan_changes_the_digest(self):
        assert spec_key(small_spec()) != spec_key(
            small_spec(faults=FaultPlan(msr_read_fail_rate=0.01))
        )

    def test_every_fault_parameter_reaches_the_key(self):
        base = FaultPlan(msr_read_fail_rate=0.01)
        variants = [
            small_spec(faults=replace(base, msr_read_fail_rate=0.02)),
            small_spec(faults=replace(base, counter_stuck_rate=0.1)),
            small_spec(faults=replace(base, counter_rollover_rate=0.1)),
            small_spec(faults=replace(base, power_dropout_rate=0.1)),
            small_spec(faults=replace(base, cap_latch_fail_rate=0.1)),
            small_spec(faults=replace(base, latch_delay_rate=0.1)),
            small_spec(faults=replace(base, latch_delay_extra_s=0.2)),
            small_spec(faults=replace(base, tick_miss_rate=0.1)),
            small_spec(faults=replace(base, tick_jitter_rate=0.1)),
            small_spec(faults=replace(base, tick_jitter_max_s=0.1)),
            small_spec(faults=replace(base, start_s=1.0)),
            small_spec(faults=replace(base, stop_s=9.0)),
            small_spec(faults=replace(base, seed_salt=1)),
        ]
        keys = {spec_key(v) for v in variants}
        assert spec_key(small_spec(faults=base)) not in keys
        assert len(keys) == len(variants)

    def test_invalid_plan_rejected_at_validate(self):
        import pytest as _pytest
        from repro.errors import ConfigurationError

        with _pytest.raises(ConfigurationError):
            small_spec(faults=FaultPlan(msr_read_fail_rate=2.0)).validate()


class TestFaultedExecutionDeterminism:
    PLAN = FaultPlan(msr_read_fail_rate=0.05, cap_latch_fail_rate=0.1)

    def test_serial_equals_parallel_with_faults(self):
        specs, _ = sweep_specs(**GRID, faults=self.PLAN)
        serial, _ = run_specs(specs, workers=1)
        parallel, _ = run_specs(specs, workers=2)
        for s, p in zip(serial, parallel):
            assert s.times_s == p.times_s
            assert s.total_energy_j == p.total_energy_j

    def test_faulted_cells_cache_and_rerun_warm(self, tmp_path):
        specs, _ = sweep_specs(**GRID, faults=self.PLAN)
        cold, cold_summary = run_specs(specs, cache=str(tmp_path))
        warm, warm_summary = run_specs(specs, cache=str(tmp_path))
        assert cold_summary.executed == len(specs)
        assert warm_summary.hits == len(specs)
        for c, w in zip(cold, warm):
            assert c.times_s == w.times_s

    def test_faulted_and_fault_free_grids_never_share_cells(self, tmp_path):
        clean_specs, _ = sweep_specs(**GRID)
        fault_specs, _ = sweep_specs(**GRID, faults=self.PLAN)
        run_specs(clean_specs, cache=str(tmp_path))
        _, summary = run_specs(fault_specs, cache=str(tmp_path))
        assert summary.hits == 0


class TestSpecValidation:
    def test_unknown_controller_rejected(self):
        # Policy-id strings resolve at construction, so the bad name
        # fails fast inside RunSpec.__post_init__.
        with pytest.raises(PolicyError):
            small_spec(controller="magic")

    def test_zero_runs_rejected(self):
        with pytest.raises(ExperimentError):
            small_spec(runs=0).validate()

    def test_run_specs_needs_a_worker(self):
        with pytest.raises(ExperimentError):
            run_specs([small_spec()], workers=0)


class TestCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = execute_spec(small_spec())
        key = spec_key(small_spec())
        cache.put(key, result)
        got = cache.get(key)
        assert got is not None
        assert got.times_s == result.times_s
        assert cache.stats.hits == 1

    def test_miss_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(spec_key(small_spec())) is None
        assert cache.stats.misses == 1

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = spec_key(small_spec())
        cache.put(key, execute_spec(small_spec()))
        # Trash the segment bytes behind the manifest entry.
        seg, off, length, _crc = cache._index[key]
        seg_path = cache._segment_root / seg
        blob = bytearray(seg_path.read_bytes())
        blob[off : off + length] = b"\0" * length
        seg_path.write_bytes(bytes(blob))
        cache._segment_readers.clear()  # drop the stale read handle
        assert cache.get(key) is None
        assert cache.stats.corrupted == 1
        results, summary = run_specs([small_spec()], cache=cache)
        assert summary.executed == 1
        assert cache.get(key) is not None

    def test_malformed_key_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            ResultCache(tmp_path).get("../escape")

    def test_cache_path_must_be_a_directory(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.raises(ExperimentError):
            ResultCache(blocker)

    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(spec_key(small_spec()), execute_spec(small_spec()))
        assert len(cache) == 1


class TestParallelEquality:
    def test_parallel_equals_serial_sweep(self):
        serial = run_sweep(**GRID, workers=1)
        parallel = run_sweep(**GRID, workers=4)
        # Exact Comparison equality: identical seeds, identical floats.
        assert serial.comparisons == parallel.comparisons
        for app in serial.defaults:
            assert (
                serial.defaults[app].times_s == parallel.defaults[app].times_s
            )

    def test_order_independent_seeds(self):
        specs, _ = sweep_specs(**GRID)
        forward, _ = run_specs(specs)
        backward, _ = run_specs(list(reversed(specs)))
        for f, b in zip(forward, reversed(backward)):
            assert f.times_s == b.times_s


class TestWarmCache:
    def test_warm_rerun_executes_nothing(self, tmp_path):
        cold = run_sweep(**GRID, cache=str(tmp_path))
        warm = run_sweep(**GRID, workers=2, cache=str(tmp_path))
        assert cold.execution.executed == cold.execution.total > 0
        assert warm.execution.executed == 0
        assert warm.execution.hits == warm.execution.total
        assert warm.comparisons == cold.comparisons

    def test_config_change_misses(self, tmp_path):
        run_sweep(**GRID, cache=str(tmp_path))
        changed = dict(GRID, runs=3)
        assert run_sweep(**changed, cache=str(tmp_path)).execution.hits == 0

    def test_summary_renders(self, tmp_path):
        sweep = run_sweep(**GRID, cache=str(tmp_path))
        text = sweep.execution.render(per_cell=True)
        assert "executed" in text and "EP/duf@0%" in text
        warm = run_sweep(**GRID, cache=str(tmp_path))
        assert "cache hits" in warm.execution.render()


class TestInterruptedSweepResumes:
    def test_partial_cache_completes_the_rest(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs, _ = sweep_specs(**GRID)
        # Simulate an interrupted sweep: only the first cell persisted.
        cache.put(spec_key(specs[0]), execute_spec(specs[0]))
        sweep = run_sweep(**GRID, cache=cache)
        assert sweep.execution.hits == 1
        assert sweep.execution.executed == len(specs) - 1
