"""Property-based tests on the simulator and controllers end-to-end.

Slower than the unit properties: each example simulates a short random
application, so example counts are kept small.
"""

import pytest

from hypothesis import assume, given, settings, strategies as st, HealthCheck

from repro.config import ControllerConfig, NoiseConfig
from repro.core.baselines import DefaultController
from repro.core.duf import DUF
from repro.core.dufp import DUFP
from repro.sim.run import run_application
from repro.workloads.generator import random_application

# Hypothesis end-to-end sweeps: tier 2 (`pytest -m slow`).
pytestmark = pytest.mark.slow


QUIET = NoiseConfig(duration_jitter=0.0, counter_noise=0.0, power_noise=0.0)
SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def short_app(seed):
    return random_application(seed, max_phases=5, max_duration_s=0.8)


@given(seed=st.integers(min_value=0, max_value=10_000))
@SLOW
def test_default_run_completes_all_work(seed):
    app = short_app(seed)
    result = run_application(app, DefaultController, noise=QUIET, seed=seed)
    assert result.execution_time_s > 0
    # Work conservation: the default run is never faster than the
    # nominal duration (default clocks ARE the nominal clocks).
    assert result.execution_time_s >= app.nominal_duration() * 0.98


@given(seed=st.integers(min_value=0, max_value=10_000))
@SLOW
def test_pl1_average_respected_under_dufp(seed):
    app = short_app(seed)
    cfg = ControllerConfig(tolerated_slowdown=0.10)
    result = run_application(
        app, lambda: DUFP(cfg), controller_cfg=cfg, noise=QUIET, seed=seed
    )
    sock = result.socket(0)
    # Whole-run average power can never exceed the default PL1 by more
    # than the burst allowance (PL2 headroom on transients).
    assert sock.avg_package_power_w <= 150.0 + 1e-6


@given(seed=st.integers(min_value=0, max_value=10_000))
@SLOW
def test_dufp_never_uses_more_power_than_default(seed):
    app = short_app(seed)
    # Sub-interval runs end before the controller ever ticks; there the
    # attach-time uncore pin (max) can out-draw the default governor's
    # lazy ramp-up.  The property is about *controlled* runs.
    assume(app.nominal_duration() >= 3 * ControllerConfig().interval_s)
    cfg = ControllerConfig(tolerated_slowdown=0.10)
    default = run_application(app, DefaultController, noise=QUIET, seed=seed)
    dufp = run_application(
        app, lambda: DUFP(cfg), controller_cfg=cfg, noise=QUIET, seed=seed
    )
    # A capping controller may only reduce average power (small slack
    # for the uncore pin vs the default governor's resting point).
    assert dufp.avg_package_power_w <= default.avg_package_power_w * 1.03


@given(seed=st.integers(min_value=0, max_value=10_000))
@SLOW
def test_duf_uncore_stays_on_grid(seed):
    app = short_app(seed)
    cfg = ControllerConfig(tolerated_slowdown=0.10)
    controllers = []

    def factory():
        c = DUF(cfg)
        controllers.append(c)
        return c

    run_application(app, factory, controller_cfg=cfg, noise=QUIET, seed=seed)
    for tick in controllers[0].ticks:
        ratio = tick.uncore_hz / 1e8
        assert abs(ratio - round(ratio)) < 1e-6
        assert 1.2e9 - 1 <= tick.uncore_hz <= 2.4e9 + 1


@given(seed=st.integers(min_value=0, max_value=10_000))
@SLOW
def test_dufp_cap_stays_in_bounds(seed):
    app = short_app(seed)
    cfg = ControllerConfig(tolerated_slowdown=0.20)
    controllers = []

    def factory():
        c = DUFP(cfg)
        controllers.append(c)
        return c

    run_application(app, factory, controller_cfg=cfg, noise=QUIET, seed=seed)
    for tick in controllers[0].ticks:
        assert 65.0 - 1e-9 <= tick.cap_w <= 125.0 + 1e-9


@given(
    seed=st.integers(min_value=0, max_value=3_000),
    tol=st.sampled_from([0.05, 0.10, 0.20]),
)
@SLOW
def test_larger_tolerance_never_raises_power_much(seed, tol):
    # Savings should be (weakly) monotone in the tolerance; allow slack
    # for controller hysteresis on adversarial phase patterns.
    app = short_app(seed)
    cfg_lo = ControllerConfig(tolerated_slowdown=0.0)
    cfg_hi = ControllerConfig(tolerated_slowdown=tol)
    lo = run_application(
        app, lambda: DUFP(cfg_lo), controller_cfg=cfg_lo, noise=QUIET, seed=seed
    )
    hi = run_application(
        app, lambda: DUFP(cfg_hi), controller_cfg=cfg_hi, noise=QUIET, seed=seed
    )
    assert hi.avg_package_power_w <= lo.avg_package_power_w * 1.08


@given(seed=st.integers(min_value=0, max_value=10_000))
@SLOW
def test_trace_time_is_monotone(seed):
    app = short_app(seed)
    result = run_application(app, DefaultController, noise=QUIET, seed=seed)
    times = [s.time_s for s in result.socket(0).trace]
    assert times == sorted(times)
    assert all(b > a for a, b in zip(times, times[1:]))


@given(seed=st.integers(min_value=0, max_value=10_000))
@SLOW
def test_energy_is_positive_and_consistent(seed):
    app = short_app(seed)
    result = run_application(app, DefaultController, noise=QUIET, seed=seed)
    sock = result.socket(0)
    assert sock.package_energy_j > 0
    assert sock.dram_energy_j > 0
    avg = sock.package_energy_j / sock.finish_time_s
    assert 15.0 < avg < 150.0
