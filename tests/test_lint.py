"""Repository hygiene enforced as tests."""

import ast
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "scripts"))

from lint_imports import check_file  # noqa: E402
from lint_policy_imports import check_file as check_policy_imports  # noqa: E402

SOURCE_FILES = sorted((REPO / "src").rglob("*.py"))


class TestImports:
    @pytest.mark.parametrize(
        "path", SOURCE_FILES, ids=lambda p: str(p.relative_to(REPO))
    )
    def test_no_unused_imports(self, path):
        assert check_file(path) == []


class TestPolicyImports:
    """Concrete controller classes stay behind the policy registry."""

    @pytest.mark.parametrize(
        "path", SOURCE_FILES, ids=lambda p: str(p.relative_to(REPO))
    )
    def test_no_out_of_registry_controller_imports(self, path):
        assert check_policy_imports(path, root=REPO) == []

    def test_linter_catches_an_offender(self, tmp_path):
        bad = tmp_path / "offender.py"
        bad.write_text("from repro.core.dufp import DUFP\n")
        problems = check_policy_imports(bad, root=tmp_path)
        assert len(problems) == 1 and "DUFP" in problems[0]


class TestDocstrings:
    @pytest.mark.parametrize(
        "path", SOURCE_FILES, ids=lambda p: str(p.relative_to(REPO))
    )
    def test_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        if path.name == "__main__.py":
            return
        assert ast.get_docstring(tree), f"{path} has no module docstring"

    def test_public_classes_documented(self):
        missing = []
        for path in SOURCE_FILES:
            tree = ast.parse(path.read_text())
            for node in tree.body:
                if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                    if not ast.get_docstring(node):
                        missing.append(f"{path.name}:{node.name}")
        assert not missing, f"classes without docstrings: {missing}"

    def test_public_functions_documented(self):
        missing = []
        for path in SOURCE_FILES:
            tree = ast.parse(path.read_text())
            for node in tree.body:
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and not node.name.startswith("_"):
                    if not ast.get_docstring(node):
                        missing.append(f"{path.name}:{node.name}")
        assert not missing, f"functions without docstrings: {missing}"


class TestCompileAll:
    @pytest.mark.parametrize(
        "path", SOURCE_FILES, ids=lambda p: str(p.relative_to(REPO))
    )
    def test_compiles(self, path):
        compile(path.read_text(), str(path), "exec")
