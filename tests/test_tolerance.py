"""Slowdown trackers: thresholds, verdicts, error bands."""

import pytest

from repro.core.tolerance import SlowdownTracker, ToleranceVerdict
from repro.errors import ControllerError


def tracker(tol=0.10, err=0.01):
    return SlowdownTracker(tolerated_slowdown=tol, measurement_error=err)


class TestConstruction:
    def test_bad_slowdown_rejected(self):
        with pytest.raises(ControllerError):
            SlowdownTracker(tolerated_slowdown=1.0, measurement_error=0.01)

    def test_bad_error_rejected(self):
        with pytest.raises(ControllerError):
            SlowdownTracker(tolerated_slowdown=0.1, measurement_error=0.6)


class TestPhaseMax:
    def test_observe_tracks_max(self):
        t = tracker()
        t.observe(100.0)
        t.observe(80.0)
        assert t.phase_max == 100.0

    def test_reset_reseeds(self):
        t = tracker()
        t.observe(100.0)
        t.reset(40.0)
        assert t.phase_max == 40.0

    def test_negative_rejected(self):
        with pytest.raises(ControllerError):
            tracker().observe(-1.0)


class TestVerdicts:
    def test_within_when_nothing_observed(self):
        assert tracker().judge(50.0) is ToleranceVerdict.WITHIN

    def test_clearly_within(self):
        t = tracker(tol=0.10)
        t.observe(100.0)
        assert t.judge(98.0) is ToleranceVerdict.WITHIN

    def test_clearly_below(self):
        t = tracker(tol=0.10)
        t.observe(100.0)
        assert t.judge(80.0) is ToleranceVerdict.BELOW

    def test_boundary_holds(self):
        t = tracker(tol=0.10, err=0.01)
        t.observe(100.0)
        assert t.judge(90.0) is ToleranceVerdict.AT_BOUNDARY

    def test_threshold_value(self):
        t = tracker(tol=0.10)
        t.observe(200.0)
        assert t.threshold == pytest.approx(180.0)

    def test_band_edges(self):
        t = tracker(tol=0.10, err=0.02)
        t.observe(100.0)
        # WITHIN above threshold + half band; BELOW under threshold - band.
        assert t.judge(91.1) is ToleranceVerdict.WITHIN
        assert t.judge(90.5) is ToleranceVerdict.AT_BOUNDARY
        assert t.judge(87.9) is ToleranceVerdict.BELOW


class TestZeroToleranceSemantics:
    def test_effective_slowdown_floored_at_error(self):
        t = tracker(tol=0.0, err=0.01)
        assert t.effective_slowdown == pytest.approx(0.01)

    def test_noise_level_values_still_within(self):
        # The 0 %-tolerance savings of the paper: noise-sized drops are
        # indistinguishable from no drop, so the knob keeps moving.
        t = tracker(tol=0.0, err=0.01)
        t.observe(100.0)
        assert t.judge(99.6) is ToleranceVerdict.WITHIN

    def test_real_drops_still_caught(self):
        t = tracker(tol=0.0, err=0.01)
        t.observe(100.0)
        assert t.judge(97.0) is ToleranceVerdict.BELOW

    def test_large_tolerance_unaffected_by_floor(self):
        t = tracker(tol=0.20, err=0.01)
        assert t.effective_slowdown == pytest.approx(0.20)
