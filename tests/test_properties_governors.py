"""Property-based tests on the frequency-governor baselines.

The four cpufreq-style governors (``repro.core.governors``) actuate
the core-frequency ceiling through ``IA32_PERF_CTL``; whatever the
utilisation signal does, three properties must hold:

* every traced operating point stays inside the platform bounds —
  core and uncore frequency windows, the RAPL cap window;
* the ``powersave`` operating point is monotone non-increasing in the
  socket's EPP hint (leaning toward energy never *raises* the clock);
* runs are seed-deterministic: the same (policy, app, seed) produces
  the same finish time and energies, with full noise on.

Hypothesis sweeps carry the ``slow`` marker; deterministic smoke
cases keep tier-1 coverage of each property.
"""

import math
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import ControllerConfig, EPBConfig, NoiseConfig, SocketConfig
from repro.core.registry import make_spec
from repro.hardware.topology import MachineConfig
from repro.sim.machine import SimulatedMachine
from repro.sim.run import run_application
from repro.workloads.catalog import application_names, build_application

GOVERNORS = (
    "governor-performance",
    "governor-powersave",
    "governor-ondemand",
    "governor-schedutil",
)
BOUNDS = SocketConfig()
QUIET = NoiseConfig(duration_jitter=0.0, counter_noise=0.0, power_noise=0.0)
NOISY = NoiseConfig()
SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: The HWP preference grid the monotonicity sweep walks (ascending).
EPP_LEVELS = (0, 64, 128, 192, 255)


def _run(policy, app, seed, *, epp=None, noise=QUIET, scale=0.06):
    """One run of ``app`` under a governor, optionally EPP-hinted."""
    sock = machine = None
    if epp is not None:
        sock = replace(SocketConfig(), epb=EPBConfig(epp=epp))
        machine = SimulatedMachine(MachineConfig(socket=sock, socket_count=1))
    cfg = ControllerConfig()
    return run_application(
        build_application(app, scale=scale, socket=sock),
        make_spec(policy).build(cfg),
        controller_cfg=cfg,
        machine=machine,
        noise=noise,
        seed=seed,
    )


def _signature(result):
    return (
        result.execution_time_s,
        result.package_energy_j,
        result.dram_energy_j,
        tuple(
            (t.time_s, t.core_freq_hz, t.uncore_freq_hz, t.cap_w)
            for s in result.sockets
            for t in s.trace
        ),
    )


def check_within_platform_bounds(result):
    """Every traced actuator setting respects the socket's windows."""
    for sock in result.sockets:
        assert math.isfinite(sock.finish_time_s) and sock.finish_time_s > 0
        for t in sock.trace:
            assert (
                BOUNDS.core.min_freq_hz
                <= t.core_freq_hz
                <= BOUNDS.core.max_freq_hz
            )
            assert (
                BOUNDS.uncore.min_freq_hz
                <= t.uncore_freq_hz
                <= BOUNDS.uncore.max_freq_hz
            )
            assert BOUNDS.rapl.min_limit_w <= t.cap_w <= BOUNDS.rapl.pl2_default_w


members = st.tuples(
    st.sampled_from(GOVERNORS),
    st.sampled_from(sorted(application_names())),
    st.integers(min_value=0, max_value=10_000),
)


@pytest.mark.slow
@given(m=members, epp=st.sampled_from((None,) + EPP_LEVELS))
@SLOW
def test_frequencies_within_platform_bounds(m, epp):
    """No governor ever drives an actuator outside the platform."""
    policy, app, seed = m
    check_within_platform_bounds(_run(policy, app, seed, epp=epp))


@pytest.mark.slow
@given(
    app=st.sampled_from(sorted(application_names())),
    seed=st.integers(min_value=0, max_value=10_000),
)
@SLOW
def test_powersave_monotone_in_epp(app, seed):
    """Leaning EPP toward energy never raises the powersave clock."""
    freqs = [
        _run("governor-powersave", app, seed, epp=epp)
        .socket(0)
        .average_core_freq_hz()
        for epp in EPP_LEVELS
    ]
    for lo_hint, hi_hint in zip(freqs, freqs[1:]):
        assert hi_hint <= lo_hint + 1e-6


@pytest.mark.slow
@given(m=members)
@SLOW
def test_seed_determinism(m):
    """Same (policy, app, seed) twice — identical run, noise and all."""
    policy, app, seed = m
    first = _run(policy, app, seed, noise=NOISY)
    second = _run(policy, app, seed, noise=NOISY)
    assert _signature(first) == _signature(second)


def test_smoke_bounds_deterministic():
    """Tier-1 pin: each governor stays in bounds on one fixed cell."""
    for policy in GOVERNORS:
        check_within_platform_bounds(_run(policy, "CG", 3, epp=192))


def test_smoke_monotone_deterministic():
    """Tier-1 pin of the EPP monotonicity on one fixed cell."""
    freqs = [
        _run("governor-powersave", "EP", 5, epp=epp)
        .socket(0)
        .average_core_freq_hz()
        for epp in EPP_LEVELS
    ]
    for lo_hint, hi_hint in zip(freqs, freqs[1:]):
        assert hi_hint <= lo_hint + 1e-6
    # The grid must actually bite: full-performance vs full-power
    # hints land on different operating points.
    assert freqs[0] > freqs[-1]


def test_smoke_determinism_deterministic():
    """Tier-1 pin of seed determinism with full noise on."""
    first = _run("governor-ondemand", "FT", 9, noise=NOISY)
    second = _run("governor-ondemand", "FT", 9, noise=NOISY)
    assert _signature(first) == _signature(second)
