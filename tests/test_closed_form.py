"""Closed-form cross-checks: the models against their own algebra.

Unlike the behavioural tests, these derive the expected value from the
model equations independently and check the implementation reproduces
it exactly — catching silent drift in the arithmetic.
"""

import math

import pytest

from repro.config import (
    CoreConfig,
    MemoryConfig,
    PowerModelConfig,
    ThermalConfig,
    UncoreConfig,
    yeti_socket_config,
)
from repro.hardware.memory import MemorySystem
from repro.hardware.perf import PhaseExecutionModel
from repro.hardware.power import PackagePowerModel
from repro.hardware.rapl import RAPLPackage
from repro.config import RAPLConfig
from repro.hardware.thermal import ThermalModel


class TestPowerAlgebra:
    def test_core_power_formula(self):
        cfg = PowerModelConfig()
        core = CoreConfig()
        m = PackagePowerModel(core, UncoreConfig(), cfg)
        f = 2.3e9
        act = 0.6
        v = core.v_min + (f - core.min_freq_hz) / (
            core.max_freq_hz - core.min_freq_hz
        ) * (core.v_max - core.v_min)
        expected = (
            core.count
            * cfg.k_core
            * v
            * v
            * (f / 1e9)
            * (cfg.core_idle_fraction + (1 - cfg.core_idle_fraction) * act)
        )
        assert m.core_power(f, act) == pytest.approx(expected, rel=1e-12)

    def test_uncore_power_formula(self):
        cfg = PowerModelConfig()
        unc = UncoreConfig()
        m = PackagePowerModel(CoreConfig(), unc, cfg)
        fu = 1.9e9
        traffic = 0.4
        v = unc.v_min + (fu - unc.min_freq_hz) / (
            unc.max_freq_hz - unc.min_freq_hz
        ) * (unc.v_max - unc.v_min)
        expected = (
            cfg.k_uncore
            * v
            * v
            * (fu / 1e9)
            * (cfg.uncore_idle_fraction + (1 - cfg.uncore_idle_fraction) * traffic)
        )
        assert m.uncore_power(fu, traffic) == pytest.approx(expected, rel=1e-12)


class TestRooflineAlgebra:
    def test_pnorm_overlap(self):
        mem = MemorySystem(MemoryConfig(), CoreConfig(), UncoreConfig())
        model = PhaseExecutionModel(CoreConfig(), mem)
        flops, bytes_, fpc = 3e11, 4e11, 2.0
        f, fu = 2.8e9, 2.4e9
        t_c = flops / (16 * fpc * f)
        bw = min(105e9, 52.0 * fu, 6.6 * 16 * f)
        t_m = bytes_ / bw
        p = model.overlap_sharpness
        expected = (t_c**p + t_m**p) ** (1.0 / p)
        assert model.phase_time(flops, bytes_, fpc, f, fu) == pytest.approx(
            expected, rel=1e-12
        )

    def test_sensitivity_terms_multiply(self):
        mem = MemorySystem(MemoryConfig(), CoreConfig(), UncoreConfig())
        model = PhaseExecutionModel(CoreConfig(), mem)
        fu = 1.6e9
        ratio = 2.4e9 / fu
        base_c = model.phase_time(1e12, 0.0, 4.0, 2.8e9, fu)
        with_us = model.phase_time(
            1e12, 0.0, 4.0, 2.8e9, fu, uncore_sensitivity=0.3
        )
        assert with_us == pytest.approx(base_c * (1 + 0.3 * (ratio - 1)), rel=1e-12)


class TestRAPLBudgetAlgebra:
    def test_budget_formula_with_headroom(self):
        rapl = RAPLPackage(RAPLConfig())
        rapl._avg_pl1_w = 100.0
        # budget = min(PL2, PL1 + 2*(PL1 - avg))
        assert rapl.allowed_power() == pytest.approx(min(150.0, 125.0 + 2 * 25.0))

    def test_budget_formula_over_average(self):
        rapl = RAPLPackage(RAPLConfig())
        rapl._avg_pl1_w = 135.0
        assert rapl.allowed_power() == pytest.approx(125.0 + 2 * (125.0 - 135.0))

    def test_ema_update_coefficient(self):
        rapl = RAPLPackage(RAPLConfig())
        avg0 = rapl._avg_pl1_w
        dt, p = 0.01, 120.0
        alpha = 1.0 - math.exp(-dt / rapl.pl1.window_s)
        rapl.step(dt, p, 10.0)
        assert rapl._avg_pl1_w == pytest.approx(avg0 + alpha * (p - avg0), rel=1e-12)


class TestThermalAlgebra:
    def test_rc_update(self):
        cfg = ThermalConfig()
        m = ThermalModel(cfg)
        t0 = m.temperature_c
        dt, p = 0.5, 110.0
        alpha = 1.0 - math.exp(-dt / cfg.tau_s)
        target = cfg.ambient_c + p * cfg.r_thermal_c_per_w
        m.step(dt, p)
        assert m.temperature_c == pytest.approx(t0 + alpha * (target - t0), rel=1e-12)

    def test_steady_state_formula(self):
        cfg = ThermalConfig()
        assert cfg.steady_state_c(125.0) == pytest.approx(
            cfg.ambient_c + 125.0 * cfg.r_thermal_c_per_w
        )


class TestToleranceAlgebra:
    def test_threshold_formula(self):
        from repro.core.tolerance import SlowdownTracker

        t = SlowdownTracker(tolerated_slowdown=0.2, measurement_error=0.01)
        t.observe(1000.0)
        assert t.threshold == pytest.approx(1000.0 * (1 - 0.2))

    def test_effective_floor(self):
        from repro.core.tolerance import SlowdownTracker

        t = SlowdownTracker(tolerated_slowdown=0.005, measurement_error=0.01)
        assert t.effective_slowdown == pytest.approx(0.01)


class TestMachineAlgebra:
    def test_default_power_budget_is_pl1(self):
        from repro.sim.machine import yeti_machine

        m = yeti_machine(1)
        assert m.default_power_budget_w() == yeti_socket_config().rapl.pl1_default_w
