"""The fault-injection subsystem: plans, injectors, hardening, traces.

Covers the contract layer by layer: plan validation and the CLI
grammar, injector determinism and per-channel behaviour, meter/RAPL
fault semantics, the runtime's degraded-telemetry handling (last-good
hold, safe reset), event recording across every sink, and the headline
invariant — a run without a plan is byte-identical to a run with the
all-zero plan.
"""

import io
import math
from dataclasses import replace

import pytest

from repro.config import ControllerConfig, NoiseConfig, RAPLConfig
from repro.core.dufp import DUFP
from repro.errors import ConfigurationError, FaultInjectionError, MSRError
from repro.hardware.rapl import RAPLPackage
from repro.sim.export import run_summary, trace_to_jsonl, write_trace_jsonl
from repro.sim.faults import (
    FAULT_CHANNELS,
    NODE_WIDE,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    parse_fault_plan,
)
from repro.sim.run import run_application
from repro.sim.trace import (
    CompositeTraceSink,
    InMemoryTraceSink,
    RingBufferTraceSink,
    StreamingTraceSink,
    jsonl_event_line,
)
from repro.workloads.catalog import build_application


QUIET = NoiseConfig(duration_jitter=0.0, counter_noise=0.0, power_noise=0.0)
CFG = ControllerConfig(tolerated_slowdown=0.10)


def small_run(faults=None, seed=3, app="CG", scale=0.3, **kwargs):
    return run_application(
        build_application(app, scale=scale),
        lambda: DUFP(CFG),
        controller_cfg=CFG,
        noise=QUIET,
        seed=seed,
        faults=faults,
        **kwargs,
    )


class TestFaultPlan:
    def test_default_plan_is_inactive(self):
        assert not FaultPlan().active
        assert not FaultPlan.zero().active

    def test_any_rate_makes_it_active(self):
        for field_name in FAULT_CHANNELS.values():
            assert FaultPlan(**{field_name: 0.5}).active, field_name

    def test_negative_rate_names_the_field(self):
        with pytest.raises(ConfigurationError, match="msr_read_fail_rate"):
            FaultPlan(msr_read_fail_rate=-0.1).validate()

    def test_rate_above_one_names_the_field(self):
        with pytest.raises(ConfigurationError, match="cap_latch_fail_rate"):
            FaultPlan(cap_latch_fail_rate=1.5).validate()

    def test_every_rate_field_is_bounded(self):
        for field_name in FAULT_CHANNELS.values():
            with pytest.raises(ConfigurationError, match=field_name):
                FaultPlan(**{field_name: 2.0}).validate()

    def test_magnitudes_bounded(self):
        with pytest.raises(ConfigurationError, match="latch_delay_extra_s"):
            FaultPlan(latch_delay_extra_s=-1.0).validate()
        with pytest.raises(ConfigurationError, match="tick_jitter_max_s"):
            FaultPlan(tick_jitter_max_s=100.0).validate()

    def test_window_must_be_ordered(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(start_s=5.0, stop_s=1.0).validate()
        with pytest.raises(FaultInjectionError):
            FaultPlan(start_s=-1.0).validate()

    def test_plan_is_picklable(self):
        import pickle

        plan = FaultPlan(msr_read_fail_rate=0.01, seed_salt=7)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestParseGrammar:
    def test_channel_aliases(self):
        plan = parse_fault_plan("msr_fail=0.01,cap_latch_fail=0.05")
        assert plan.msr_read_fail_rate == 0.01
        assert plan.cap_latch_fail_rate == 0.05

    def test_full_field_names_accepted(self):
        plan = parse_fault_plan("msr_read_fail_rate=0.02")
        assert plan.msr_read_fail_rate == 0.02

    def test_scheduling_and_magnitude_fields(self):
        plan = parse_fault_plan(
            "tick_jitter=0.1,tick_jitter_max_s=0.5,start_s=1,stop_s=9,seed_salt=3"
        )
        assert plan.tick_jitter_max_s == 0.5
        assert plan.start_s == 1.0 and plan.stop_s == 9.0
        assert plan.seed_salt == 3 and isinstance(plan.seed_salt, int)

    def test_unknown_key_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown fault channel"):
            parse_fault_plan("gamma_rays=0.5")

    def test_malformed_pair_rejected(self):
        with pytest.raises(FaultInjectionError, match="not key=value"):
            parse_fault_plan("msr_fail")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(FaultInjectionError, match="not a number"):
            parse_fault_plan("msr_fail=lots")

    def test_duplicate_key_rejected(self):
        with pytest.raises(FaultInjectionError, match="duplicate"):
            parse_fault_plan("msr_fail=0.1,msr_read_fail_rate=0.2")

    def test_empty_spec_rejected(self):
        with pytest.raises(FaultInjectionError):
            parse_fault_plan("   ")

    def test_out_of_range_value_rejected(self):
        with pytest.raises(ConfigurationError, match="msr_read_fail_rate"):
            parse_fault_plan("msr_fail=1.5")


class TestInjector:
    def test_refuses_inactive_plan(self):
        with pytest.raises(FaultInjectionError):
            FaultInjector(FaultPlan(), seed=1)

    def test_deterministic_per_seed(self):
        plan = FaultPlan(msr_read_fail_rate=0.5)
        a = FaultInjector(plan, seed=42)
        b = FaultInjector(plan, seed=42)
        draws_a = [a.msr_read_fails(0) for _ in range(100)]
        draws_b = [b.msr_read_fails(0) for _ in range(100)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    @staticmethod
    def _stream(plan, seed, n=64):
        inj = FaultInjector(plan, seed=seed)
        return tuple(inj.msr_read_fails(0) for _ in range(n))

    def test_seed_changes_the_stream(self):
        plan = FaultPlan(msr_read_fail_rate=0.5)
        assert self._stream(plan, 1) != self._stream(plan, 2)

    def test_seed_salt_changes_the_stream(self):
        base = FaultPlan(msr_read_fail_rate=0.5)
        assert self._stream(base, 9) != self._stream(
            replace(base, seed_salt=1), 9
        )

    def test_outside_window_never_fires_and_draws_nothing(self):
        plan = FaultPlan(msr_read_fail_rate=1.0, start_s=5.0, stop_s=10.0)
        inj = FaultInjector(plan, seed=0)
        inj.advance(1.0)
        assert not inj.msr_read_fails(0)
        state_before = inj.rng.bit_generator.state
        assert not inj.power_dropout(0)
        assert inj.rng.bit_generator.state == state_before
        inj.advance(5.0)
        assert inj.msr_read_fails(0)

    def test_events_recorded_with_time_and_socket(self):
        plan = FaultPlan(msr_read_fail_rate=1.0)
        inj = FaultInjector(plan, seed=0)
        inj.advance(2.5)
        inj.msr_read_fails(3)
        assert inj.events == [
            FaultEvent(time_s=2.5, socket_id=3, channel="msr_fail", detail="")
        ]

    def test_emit_forwards_to_sink(self):
        sink = InMemoryTraceSink()
        sink.open(1)
        plan = FaultPlan(tick_miss_rate=1.0)
        inj = FaultInjector(plan, seed=0, emit=sink.record_event)
        assert inj.tick_missed()
        assert sink.events()[0].channel == "tick_miss"
        assert sink.events()[0].socket_id == NODE_WIDE

    def test_latch_port_drop_and_delay(self):
        drop = FaultInjector(FaultPlan(cap_latch_fail_rate=1.0), seed=0)
        assert drop.latch_port(0)() == (True, 0.0)
        delay = FaultInjector(
            FaultPlan(latch_delay_rate=1.0, latch_delay_extra_s=0.2), seed=0
        )
        assert delay.latch_port(0)() == (False, 0.2)

    def test_tick_jitter_bounded(self):
        inj = FaultInjector(
            FaultPlan(tick_jitter_rate=1.0, tick_jitter_max_s=0.05), seed=0
        )
        for _ in range(50):
            assert 0.0 <= inj.tick_jitter_s() <= 0.05

    def test_note_consumes_no_randomness(self):
        inj = FaultInjector(FaultPlan(msr_read_fail_rate=0.5), seed=0)
        state = inj.rng.bit_generator.state
        inj.note(0, "safe_reset", "x")
        assert inj.rng.bit_generator.state == state
        assert inj.events[-1].channel == "safe_reset"


class TestRAPLLatchFaults:
    def test_dropped_write_never_latches(self):
        rapl = RAPLPackage(RAPLConfig())
        rapl.latch_fault = lambda: (True, 0.0)
        rapl.set_limits(80.0, 80.0)
        for _ in range(100):
            rapl.step(0.01, 100.0, 10.0)
        assert rapl.pl1.limit_w == RAPLConfig().pl1_default_w

    def test_extra_delay_stretches_actuation(self):
        cfg = RAPLConfig()
        rapl = RAPLPackage(cfg)
        rapl.latch_fault = lambda: (False, 0.5)
        rapl.set_limits(80.0, 80.0)
        # Past the nominal delay but inside the injected extra: old cap.
        steps = int(cfg.actuation_delay_s / 0.01) + 2
        for _ in range(steps):
            rapl.step(0.01, 100.0, 10.0)
        assert rapl.pl1.limit_w == cfg.pl1_default_w
        for _ in range(60):
            rapl.step(0.01, 100.0, 10.0)
        assert rapl.pl1.limit_w == 80.0


class TestRuntimeHardening:
    def test_msr_faults_do_not_crash_the_run(self):
        res = small_run(FaultPlan(msr_read_fail_rate=0.3), app="EP", scale=0.2)
        assert math.isfinite(res.execution_time_s)
        assert any(e.channel == "msr_fail" for e in res.fault_events)

    def test_power_dropout_keeps_metrics_finite(self):
        res = small_run(FaultPlan(power_dropout_rate=0.5), app="EP", scale=0.2)
        assert math.isfinite(res.execution_time_s)
        assert math.isfinite(res.total_energy_j)

    def test_total_outage_triggers_safe_reset(self):
        # Every sample fails: after MAX_CONSECUTIVE_FAILURES the
        # runtime must reset cap and uncore and log the event.
        res = small_run(FaultPlan(msr_read_fail_rate=1.0), app="EP", scale=0.2)
        assert any(e.channel == "safe_reset" for e in res.fault_events)
        # Safe state: the final trace sample shows the default cap.
        assert res.socket(0).trace[-1].cap_w == 125.0

    def test_fault_run_matches_fault_free_duration_within_tolerance(self):
        clean = small_run(None)
        faulty = small_run(
            FaultPlan(msr_read_fail_rate=0.01, cap_latch_fail_rate=0.05)
        )
        assert faulty.execution_time_s <= clean.execution_time_s * 1.10
        assert faulty.execution_time_s >= clean.execution_time_s * 0.90

    def test_tick_faults_do_not_stall_the_run(self):
        res = small_run(
            FaultPlan(tick_miss_rate=0.2, tick_jitter_rate=0.3),
            app="EP",
            scale=0.2,
        )
        assert math.isfinite(res.execution_time_s)

    def test_identical_plan_and_seed_reproduce_events(self):
        plan = FaultPlan(msr_read_fail_rate=0.1, cap_latch_fail_rate=0.2)
        a = small_run(plan, app="EP", scale=0.2)
        b = small_run(plan, app="EP", scale=0.2)
        assert a.fault_events == b.fault_events
        assert a.execution_time_s == b.execution_time_s


class TestZeroCostWhenDisabled:
    def test_zero_plan_is_byte_identical_to_no_plan(self):
        clean = small_run(None)
        zeroed = small_run(FaultPlan.zero())
        buf_a, buf_b = io.StringIO(), io.StringIO()
        trace_to_jsonl(clean.socket(0), buf_a)
        trace_to_jsonl(zeroed.socket(0), buf_b)
        assert buf_a.getvalue() == buf_b.getvalue()
        assert clean.execution_time_s == zeroed.execution_time_s
        assert zeroed.fault_events == []

    def test_zero_plan_with_noise_is_bitwise_identical(self):
        noisy = NoiseConfig(
            duration_jitter=0.01, counter_noise=0.01, power_noise=0.01
        )
        clean = small_run(None, app="EP", scale=0.2)
        a = run_application(
            build_application("EP", scale=0.2),
            lambda: DUFP(CFG),
            controller_cfg=CFG,
            noise=noisy,
            seed=11,
        )
        b = run_application(
            build_application("EP", scale=0.2),
            lambda: DUFP(CFG),
            controller_cfg=CFG,
            noise=noisy,
            seed=11,
            faults=FaultPlan.zero(),
        )
        assert a.execution_time_s == b.execution_time_s
        assert [s.package_power_w for s in a.socket(0).trace] == [
            s.package_power_w for s in b.socket(0).trace
        ]
        del clean


class TestEventExport:
    def test_streamed_equals_exported_with_events(self, tmp_path):
        plan = FaultPlan(msr_read_fail_rate=0.1, cap_latch_fail_rate=0.2)
        streamed = tmp_path / "streamed.jsonl"
        sink = StreamingTraceSink(streamed)
        mem = InMemoryTraceSink()
        res = small_run(
            plan,
            app="EP",
            scale=0.2,
            trace_sink=CompositeTraceSink(sink, mem),
        )
        exported = tmp_path / "exported.jsonl"
        write_trace_jsonl(res, exported)
        assert streamed.read_bytes() == exported.read_bytes()
        assert res.fault_events  # the comparison exercised real events

    def test_exported_trace_contains_event_lines(self, tmp_path):
        res = small_run(FaultPlan(msr_read_fail_rate=0.2), app="EP", scale=0.2)
        path = tmp_path / "t.jsonl"
        write_trace_jsonl(res, str(path))
        lines = path.read_text().splitlines()
        assert any('"event":"msr_fail"' in line for line in lines)
        # Samples first, events as a trailing block.
        first_event = next(
            i for i, line in enumerate(lines) if '"event"' in line
        )
        assert all('"event"' in line for line in lines[first_event:])

    def test_ring_buffer_keeps_event_tail(self):
        sink = RingBufferTraceSink(capacity=3)
        sink.open(1)
        for t in range(5):
            sink.record_event(
                0, FaultEvent(time_s=float(t), socket_id=0, channel="msr_fail")
            )
        assert [e.time_s for e in sink.events()] == [2.0, 3.0, 4.0]

    def test_event_line_shape(self):
        line = jsonl_event_line(
            FaultEvent(time_s=1.5, socket_id=-1, channel="tick_miss")
        )
        assert (
            line
            == '{"event":"tick_miss","time_s":1.5,"socket_id":-1,"detail":""}\n'
        )

    def test_summary_gains_events_only_when_faulted(self):
        clean = small_run(None, app="EP", scale=0.2)
        assert "fault_events" not in run_summary(clean)
        faulty = small_run(
            FaultPlan(msr_read_fail_rate=0.3), app="EP", scale=0.2
        )
        summary = run_summary(faulty)
        assert summary["fault_events"]
        assert summary["fault_events"][0]["channel"] == "msr_fail"


class TestPlatformFaultChannels:
    """The C-state rollover and EPP write-latch channels.

    Both only bite on sockets that opt into the platform models
    (``SocketConfig.cstates`` / ``SocketConfig.epb``); at zero rate —
    or on legacy sockets — they draw nothing, keeping every existing
    stream and digest byte-identical.
    """

    @staticmethod
    def _platform_socket():
        from repro.config import CStateConfig, EPBConfig, SocketConfig

        return replace(
            SocketConfig(), cstates=CStateConfig(), epb=EPBConfig()
        )

    @staticmethod
    def _idle_app(scale=0.3, idleness=0.3):
        app = build_application("CG", scale=scale)
        phases = tuple(replace(p, idleness=idleness) for p in app.phases)
        return type(app)(
            name=app.name, phases=phases, structure=app.structure
        )

    def _platform_run(self, faults, seed=3):
        from repro.hardware.topology import MachineConfig
        from repro.sim.machine import SimulatedMachine

        socket = self._platform_socket()
        return run_application(
            self._idle_app(),
            lambda: DUFP(CFG),
            controller_cfg=CFG,
            machine=SimulatedMachine(
                MachineConfig(socket=socket, socket_count=1)
            ),
            noise=QUIET,
            seed=seed,
            faults=faults,
        )

    def test_parse_grammar_accepts_the_new_channels(self):
        plan = parse_fault_plan("cstate_rollover=0.1,epp_latch_fail=0.2")
        assert plan.cstate_rollover_rate == 0.1
        assert plan.epp_write_latch_fail_rate == 0.2

    def test_rollover_truncates_residency_counters(self):
        from repro.config import CStateConfig, yeti_socket_config
        from repro.hardware.cstates import CStateModel

        wrap = 1 << 32
        model = CStateModel(CStateConfig(), yeti_socket_config().core)
        sl = model.resolve(0.9, 0.0)
        model.advance(10.0, sl)
        # Sanity: enough residency accumulated for the wrap to matter.
        assert model._c6_raw > wrap
        faulted = CStateModel(CStateConfig(), yeti_socket_config().core)
        faulted.rollover_fault = lambda: True
        faulted.advance(10.0, sl)
        assert 0 <= faulted._c1_raw < wrap
        assert 0 <= faulted._c6_raw < wrap
        # The truncation is the 32-bit wrap, not a reset.
        assert faulted._c6_raw == model._c6_raw % wrap

    def test_rollover_events_recorded_end_to_end(self):
        res = self._platform_run(FaultPlan(cstate_rollover_rate=0.5))
        assert math.isfinite(res.execution_time_s)
        assert any(e.channel == "cstate_rollover" for e in res.fault_events)

    def test_epp_latch_fault_drops_the_write(self):
        from repro.config import EPBConfig
        from repro.hardware.epb import EPBModel
        from repro.hardware.msr import MSR, MSRFile, get_bits, set_bits

        model = EPBModel(EPBConfig())
        model.write_latch_fault = lambda: True
        assert model.set_epp(42) is False
        assert model.epp == EPBConfig().epp
        # Same through the HWP-request MSR path.
        msrs = MSRFile()
        model.attach_msrs(msrs)
        msrs.write(MSR.IA32_HWP_REQUEST, set_bits(0, 31, 24, 42))
        assert get_bits(msrs.read(MSR.IA32_HWP_REQUEST), 31, 24) == 128
        model.write_latch_fault = lambda: False
        assert model.set_epp(42) is True
        assert model.epp == 42

    def test_epp_latch_injector_records_events(self):
        inj = FaultInjector(
            FaultPlan(epp_write_latch_fail_rate=1.0), seed=0
        )
        assert inj.epp_write_latch_fails(2)
        assert inj.events[-1].channel == "epp_latch_fail"
        assert inj.events[-1].socket_id == 2

    def test_engine_wires_the_platform_hooks(self):
        from repro.hardware.topology import MachineConfig
        from repro.sim.machine import SimulatedMachine
        from repro.sim.run import build_engine

        socket = self._platform_socket()
        engine = build_engine(
            self._idle_app(),
            lambda: DUFP(CFG),
            controller_cfg=CFG,
            machine=SimulatedMachine(
                MachineConfig(socket=socket, socket_count=1)
            ),
            noise=QUIET,
            seed=3,
            faults=FaultPlan(
                cstate_rollover_rate=1.0, epp_write_latch_fail_rate=1.0
            ),
        )
        ctx = engine.prepare()
        proc = engine.machine.processors[0]
        assert proc.cstates is not None
        assert proc.cstates.rollover_fault is not None
        assert proc.epb_model is not None
        assert proc.epb_model.write_latch_fault is not None
        assert proc.epb_model.set_epp(7) is False
        assert any(
            e.channel == "epp_latch_fail" for e in ctx.injector.events
        )

    def test_zero_rates_on_platform_socket_are_byte_identical(self):
        clean = self._platform_run(None)
        zeroed = self._platform_run(FaultPlan.zero())
        buf_a, buf_b = io.StringIO(), io.StringIO()
        trace_to_jsonl(clean.socket(0), buf_a)
        trace_to_jsonl(zeroed.socket(0), buf_b)
        assert buf_a.getvalue() == buf_b.getvalue()
        assert clean.execution_time_s == zeroed.execution_time_s
        assert zeroed.fault_events == []


class TestMeterFaultSemantics:
    def _meter(self, plan):
        from repro.hardware.processor import SimulatedProcessor
        from repro.config import yeti_socket_config
        from repro.papi.highlevel import IntervalMeter

        proc = SimulatedProcessor(yeti_socket_config())
        inj = FaultInjector(plan, seed=0)
        meter = IntervalMeter(proc, faults=inj)
        meter.start()
        return proc, meter, inj

    def test_msr_fail_raises_msr_error(self):
        proc, meter, _ = self._meter(FaultPlan(msr_read_fail_rate=1.0))
        proc.step(0.1, None)
        with pytest.raises(MSRError):
            meter.sample(0.1)

    def test_stuck_counters_return_previous_sample(self):
        proc, meter, inj = self._meter(FaultPlan(counter_stuck_rate=1.0))
        proc.step(0.1, None)
        first = meter.sample(0.1)  # no previous sample: fault cannot fire
        proc.step(0.1, None)
        second = meter.sample(0.1)
        assert second is first
        assert any(e.channel == "stuck" for e in inj.events)

    def test_rollover_zeroes_the_interval_energy(self):
        proc, meter, _ = self._meter(FaultPlan(counter_rollover_rate=1.0))
        proc.step(0.1, None)
        m = meter.sample(0.1)
        assert m.package_power_w == 0.0
        assert m.dram_power_w == 0.0

    def test_dropout_yields_nan_power_finite_counters(self):
        proc, meter, _ = self._meter(FaultPlan(power_dropout_rate=1.0))
        proc.step(0.1, None)
        m = meter.sample(0.1)
        assert math.isnan(m.package_power_w)
        assert math.isnan(m.dram_power_w)
        assert math.isfinite(m.flops_per_s)
        assert not m.finite
