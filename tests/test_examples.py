"""Every shipped example must run end-to-end.

Executed in-process (import + ``main()``) so failures carry real
tracebacks; stdout is captured and sanity-checked for each script's
headline output.
"""

import importlib.util
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [str(path)] + argv
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", ["10"], capsys)
        assert "power savings" in out
        assert "slowdown" in out

    def test_motivating_example(self, capsys):
        out = run_example("motivating_example.py", [], capsys)
        assert "Fig. 1a" in out
        assert "cap 100 W" in out

    def test_slowdown_sweep(self, capsys):
        out = run_example("slowdown_sweep.py", ["EP", "2"], capsys)
        assert "dufp" in out
        assert "respected the tolerance" in out

    def test_frequency_trace(self, capsys):
        out = run_example("frequency_trace.py", ["CG", "10"], capsys)
        assert "DUF" in out and "DUFP" in out
        assert "GHz" in out

    def test_custom_application(self, capsys):
        out = run_example("custom_application.py", [], capsys)
        assert "STENCIL" in out
        assert "intel-rapl:0" in out
        assert "MSR 0x620" in out

    def test_budget_sharing(self, capsys):
        out = run_example("budget_sharing.py", ["200"], capsys)
        assert "coordinated" in out
        assert "Final allocation" in out

    def test_fault_injection(self, capsys):
        out = run_example("fault_injection.py", ["EP", "7"], capsys)
        assert "fault events" in out
        assert "clean" in out and "faulted" in out

    def test_cpu_gpu_budget(self, capsys):
        out = run_example("cpu_gpu_budget.py", ["300"], capsys)
        assert "static 50/50" in out
        assert "coordinated" in out

    def test_trace_replay(self, capsys):
        out = run_example("trace_replay.py", ["EP"], capsys)
        assert "recorded" in out
        assert "replay" in out

    def test_every_example_has_a_test(self):
        tested = {
            "quickstart.py",
            "motivating_example.py",
            "slowdown_sweep.py",
            "frequency_trace.py",
            "custom_application.py",
            "budget_sharing.py",
            "cpu_gpu_budget.py",
            "trace_replay.py",
            "fault_injection.py",
        }
        shipped = {p.name for p in EXAMPLES.glob("*.py")}
        assert shipped == tested, f"untested examples: {shipped - tested}"
