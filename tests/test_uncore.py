"""Uncore clock domain: window control, HW governor, MSR 0x620."""

import pytest

from repro.config import UncoreConfig
from repro.errors import FrequencyError
from repro.hardware.msr import MSR, MSRFile, get_bits, set_bits
from repro.hardware.uncore import DefaultUncoreGovernor, UncoreDriver


@pytest.fixture
def driver():
    return UncoreDriver(UncoreConfig())


class TestWindowControl:
    def test_starts_at_full_window(self, driver):
        assert driver.window_lo_hz == pytest.approx(1.2e9)
        assert driver.window_hi_hz == pytest.approx(2.4e9)
        assert not driver.pinned

    def test_pin(self, driver):
        driver.pin(1.8e9)
        assert driver.pinned
        assert driver.frequency_hz == pytest.approx(1.8e9)

    def test_pin_snaps_to_grid(self, driver):
        driver.pin(1.84e9)
        assert driver.frequency_hz == pytest.approx(1.8e9)

    def test_pin_clamps_to_range(self, driver):
        driver.pin(0.5e9)
        assert driver.frequency_hz == pytest.approx(1.2e9)
        driver.pin(9e9)
        assert driver.frequency_hz == pytest.approx(2.4e9)

    def test_release_reopens_window(self, driver):
        driver.pin(1.5e9)
        driver.release()
        assert not driver.pinned

    def test_inverted_window_rejected(self, driver):
        with pytest.raises(FrequencyError):
            driver.set_window(2.0e9, 1.5e9)

    def test_available_frequencies(self, driver):
        freqs = driver.available_frequencies()
        assert len(freqs) == 13  # 1.2 .. 2.4 in 100 MHz steps
        assert freqs[0] == pytest.approx(1.2e9)
        assert freqs[-1] == pytest.approx(2.4e9)


class TestDefaultGovernor:
    def test_busy_socket_rides_high(self, driver):
        # Compute-only work: no traffic, but busy cores.
        for _ in range(30):
            driver.advance(traffic_util=0.0, busy_util=1.0)
        assert driver.frequency_hz >= 2.2e9

    def test_idle_socket_drops_low(self, driver):
        for _ in range(30):
            driver.advance(traffic_util=0.0, busy_util=0.0)
        assert driver.frequency_hz == pytest.approx(1.2e9)

    def test_traffic_rides_high(self, driver):
        for _ in range(30):
            driver.advance(traffic_util=0.9, busy_util=0.0)
        assert driver.frequency_hz >= 2.2e9

    def test_pinned_ignores_governor(self, driver):
        driver.pin(1.3e9)
        driver.advance(traffic_util=1.0, busy_util=1.0)
        assert driver.frequency_hz == pytest.approx(1.3e9)

    def test_governor_respects_window(self, driver):
        driver.set_window(1.2e9, 1.8e9)
        for _ in range(30):
            driver.advance(traffic_util=1.0, busy_util=1.0)
        assert driver.frequency_hz <= 1.8e9

    def test_bad_util_rejected(self):
        gov = DefaultUncoreGovernor()
        with pytest.raises(FrequencyError):
            gov.target_freq(1.5, 0.0, 1.2e9, 2.4e9)
        with pytest.raises(FrequencyError):
            gov.target_freq(0.0, -0.1, 1.2e9, 2.4e9)

    def test_response_is_gradual(self, driver):
        driver.advance(traffic_util=1.0, busy_util=1.0)
        first = driver.frequency_hz
        for _ in range(20):
            driver.advance(traffic_util=1.0, busy_util=1.0)
        # The governor lags: the first step should not jump to max...
        assert first <= driver.frequency_hz


class TestMSRWiring:
    @pytest.fixture
    def wired(self, driver):
        msrs = MSRFile()
        driver.attach_msrs(msrs)
        return driver, msrs

    def test_initial_register_encodes_full_window(self, wired):
        _, msrs = wired
        v = msrs.read(MSR.MSR_UNCORE_RATIO_LIMIT)
        assert get_bits(v, 6, 0) == 24  # max ratio 2.4 GHz
        assert get_bits(v, 14, 8) == 12  # min ratio 1.2 GHz

    def test_write_pins_uncore(self, wired):
        driver, msrs = wired
        v = set_bits(set_bits(0, 6, 0, 18), 14, 8, 18)
        msrs.write(MSR.MSR_UNCORE_RATIO_LIMIT, v)
        assert driver.pinned
        assert driver.frequency_hz == pytest.approx(1.8e9)

    def test_zero_max_ratio_faults(self, wired):
        _, msrs = wired
        with pytest.raises(FrequencyError):
            msrs.write(MSR.MSR_UNCORE_RATIO_LIMIT, 0)

    def test_perf_status_reflects_frequency(self, wired):
        driver, msrs = wired
        driver.pin(2.0e9)
        status = msrs.read(MSR.MSR_UNCORE_PERF_STATUS)
        assert get_bits(status, 6, 0) == 20
