"""Counter-trace recording and replay."""

import pytest

from repro.config import ControllerConfig, NoiseConfig
from repro.core.baselines import DefaultController
from repro.core.dufp import DUFP
from repro.errors import WorkloadError
from repro.sim.run import run_application
from repro.workloads.catalog import build_application
from repro.workloads.traces import (
    TraceSample,
    application_from_trace,
    measurements_from_run,
)


QUIET = NoiseConfig(duration_jitter=0.0, counter_noise=0.0, power_noise=0.0)


@pytest.fixture(scope="module")
def cg_run():
    return run_application(
        build_application("CG", scale=0.5), DefaultController, noise=QUIET, seed=3
    )


class TestTraceSamples:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            TraceSample(dt_s=0.0, flops_per_s=1.0, bytes_per_s=1.0)
        with pytest.raises(WorkloadError):
            TraceSample(dt_s=0.1, flops_per_s=-1.0, bytes_per_s=1.0)

    def test_extraction_cadence(self, cg_run):
        samples = measurements_from_run(cg_run, interval_s=0.2)
        assert len(samples) >= 10
        # All full samples carry the controller cadence.
        for s in samples[:-1]:
            assert s.dt_s == pytest.approx(0.2, rel=0.05)

    def test_extraction_totals_match(self, cg_run):
        samples = measurements_from_run(cg_run)
        traced_flops = sum(s.flops_per_s * s.dt_s for s in samples)
        sock = cg_run.socket(0)
        engine_flops = sum(
            t.flops_rate * (t.time_s - p)
            for p, t in zip([0.0] + [x.time_s for x in sock.trace[:-1]], sock.trace)
        )
        assert traced_flops == pytest.approx(engine_flops, rel=0.02)

    def test_traceless_run_rejected(self):
        run = run_application(
            build_application("EP", scale=0.1),
            DefaultController,
            noise=QUIET,
            record_trace=False,
        )
        with pytest.raises(WorkloadError):
            measurements_from_run(run)


class TestReplay:
    def test_replay_duration_matches_original(self, cg_run):
        samples = measurements_from_run(cg_run)
        replay = application_from_trace(samples, name="cg-replay")
        assert replay.nominal_duration() == pytest.approx(
            cg_run.execution_time_s, rel=0.25
        )

    def test_replay_merges_similar_samples(self, cg_run):
        samples = measurements_from_run(cg_run)
        replay = application_from_trace(samples)
        assert len(replay.phases) < len(samples)

    def test_replay_preserves_volumes(self, cg_run):
        samples = measurements_from_run(cg_run)
        replay = application_from_trace(samples)
        traced_flops = sum(s.flops_per_s * s.dt_s for s in samples)
        assert replay.total_flops == pytest.approx(traced_flops, rel=0.01)

    def test_replay_is_runnable(self, cg_run):
        samples = measurements_from_run(cg_run)
        replay = application_from_trace(samples, name="cg-replay")
        result = run_application(replay, DefaultController, noise=QUIET, seed=4)
        assert result.execution_time_s == pytest.approx(
            cg_run.execution_time_s, rel=0.3
        )

    def test_replay_controllable(self, cg_run):
        # The replayed workload responds to DUFP like the original:
        # power drops, runtime within tolerance.
        samples = measurements_from_run(cg_run)
        replay = application_from_trace(samples, name="cg-replay")
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        default = run_application(replay, DefaultController, noise=QUIET, seed=4)
        dufp = run_application(
            replay, lambda: DUFP(cfg), controller_cfg=cfg, noise=QUIET, seed=4
        )
        assert dufp.avg_package_power_w < default.avg_package_power_w
        assert dufp.execution_time_s < default.execution_time_s * 1.15

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            application_from_trace([])

    def test_workless_trace_rejected(self):
        with pytest.raises(WorkloadError):
            application_from_trace(
                [TraceSample(dt_s=0.2, flops_per_s=0.0, bytes_per_s=0.0)]
            )

    def test_synthetic_compute_trace(self):
        samples = [
            TraceSample(dt_s=0.2, flops_per_s=100e9, bytes_per_s=1e9)
            for _ in range(10)
        ]
        app = application_from_trace(samples, name="synth")
        assert len(app.phases) == 1  # merged
        assert app.nominal_duration() == pytest.approx(2.0, rel=0.1)
