"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    ControllerConfig,
    EngineConfig,
    NoiseConfig,
    yeti_socket_config,
)
from repro.hardware.processor import PhaseWork, SimulatedProcessor


@pytest.fixture
def socket_cfg():
    return yeti_socket_config()


@pytest.fixture
def processor(socket_cfg):
    return SimulatedProcessor(socket_cfg)


@pytest.fixture
def controller_cfg():
    return ControllerConfig()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def quiet_noise():
    """No stochastic variation: deterministic runs for exact assertions."""
    return NoiseConfig(duration_jitter=0.0, counter_noise=0.0, power_noise=0.0)


@pytest.fixture
def fast_engine():
    return EngineConfig(dt_s=0.01)


# Representative phase characters used across hardware tests.
@pytest.fixture
def compute_work():
    """EP-like: pure compute, negligible memory."""
    return PhaseWork(flops=1e12, bytes=1e7, fpc=4.0)


@pytest.fixture
def memory_work():
    """CG-setup-like: almost pure memory streaming."""
    return PhaseWork(flops=1.5e10, bytes=1e12, fpc=0.5)


@pytest.fixture
def balanced_work():
    """Roofline-balanced phase."""
    return PhaseWork(flops=1.2e11, bytes=1e12, fpc=0.32)


def settle(processor, work, steps=200, dt=0.01):
    """Advance a processor until its state stabilises; returns the state."""
    for _ in range(steps):
        processor.step(dt, work)
    return processor.state
