"""Property-based tests on the vectorized batch engine.

Randomised mixed compositions — policies, workloads, seeds, fault
plans drawn by hypothesis — exercise the batch engine where example-
based differential tests cannot reach, checking the properties any
lockstep execution must preserve:

* every run finishes, with finite times, energies and trace samples;
* traced actuator settings stay inside the socket's physical bounds
  (core/uncore frequency ranges, the RAPL window);
* results are invariant to batch *order* — a run's outcome depends
  only on its own configuration, never on its neighbours;
* results are invariant to batch *splitting* — one batch of N equals
  any partition of the same engines into smaller batches;
* a batch of one equals the scalar run, trace for trace — for every
  policy spec, fault plan, and noise setting, whether the run takes
  the lane-parallel controller path or the scatter/gather fallback;
* the lane-parallel/fallback routing decision
  (:func:`~repro.sim.batch.controller_lane_fallback_reason`) is exact:
  ``None`` for clean DUF/DUFP runs, a named reason for everything
  else, and lane *permutation* on eligible batches never leaks one
  lane's state into another.

Hypothesis examples simulate full (short) applications, so the heavy
sweeps carry the ``slow`` marker; a small deterministic smoke case
keeps tier-1 coverage of every property.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import ControllerConfig, NoiseConfig, SocketConfig
from repro.core.registry import as_spec
from repro.sim.batch import controller_lane_fallback_reason, run_batch
from repro.sim.faults import FaultPlan
from repro.sim.run import build_engine
from repro.workloads.catalog import application_names, build_application

BOUNDS = SocketConfig()
QUIET = NoiseConfig(duration_jitter=0.0, counter_noise=0.0, power_noise=0.0)
NOISY = NoiseConfig()  # the defaults: jitter, counter and power noise on
SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Policies sampled into compositions (budget excluded: its default
#: watt budget is composition-dependent; it has dedicated differential
#: coverage in test_batch_equivalence.py).
POLICIES = ("default", "duf", "dufp", "dufpf", "static", "uncore", "dnpc")

#: Policy selections for the scalar/vector equality sweep: the plain
#: names plus parameterized ``name:k=v`` specs and a DUFP subclass, so
#: non-default policy params and the automatic fallback for subclassed
#: controllers both get differential coverage.
SPECS = POLICIES + ("static:cap_w=90", "dufp-adaptive")

#: Members guaranteed eligible for lane-parallel controller ticks:
#: clean (fault-free) DUF/DUFP runs.
VECTOR_POLICIES = ("duf", "dufp")

plans = st.sampled_from(
    [
        None,
        FaultPlan(msr_read_fail_rate=0.05, cap_latch_fail_rate=0.1),
        FaultPlan(tick_miss_rate=0.05, tick_jitter_rate=0.05),
    ]
)

members = st.tuples(
    st.sampled_from(POLICIES),
    st.sampled_from(sorted(application_names())),
    st.integers(min_value=0, max_value=10_000),  # seed
    st.sampled_from((0.0, 0.05, 0.10, 0.20)),  # tolerated slowdown
    plans,
)

compositions = st.lists(members, min_size=2, max_size=6)

spec_members = st.tuples(
    st.sampled_from(SPECS),
    st.sampled_from(sorted(application_names())),
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from((0.0, 0.05, 0.10, 0.20)),
    plans,
)

vector_members = st.tuples(
    st.sampled_from(VECTOR_POLICIES),
    st.sampled_from(sorted(application_names())),
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from((0.0, 0.05, 0.10, 0.20)),
    st.none(),
)

vector_compositions = st.lists(vector_members, min_size=2, max_size=6)


def _build(policy, app, seed, tol, plan, scale=0.06, noise=QUIET, **cfg_kwargs):
    cfg = ControllerConfig(tolerated_slowdown=tol, **cfg_kwargs)
    return build_engine(
        build_application(app, scale=scale),
        as_spec(policy).build(cfg),
        controller_cfg=cfg,
        noise=noise,
        seed=seed,
        faults=plan,
    )


def _signature(result):
    """Everything order/split invariance compares, as plain tuples."""
    return (
        result.app_name,
        result.controller_name,
        tuple(
            (e.time_s, e.socket_id, e.channel, e.detail)
            for e in result.fault_events
        ),
        tuple(
            (
                s.socket_id,
                s.finish_time_s,
                s.package_energy_j,
                s.dram_energy_j,
                tuple(
                    (t.time_s, t.core_freq_hz, t.uncore_freq_hz, t.cap_w)
                    for t in s.trace
                ),
            )
            for s in result.sockets
        ),
    )


def check_well_formed(result):
    """Finite-finish and actuator-bound assertions for one run."""
    for sock in result.sockets:
        assert math.isfinite(sock.finish_time_s) and sock.finish_time_s > 0
        assert math.isfinite(sock.package_energy_j) and sock.package_energy_j > 0
        assert math.isfinite(sock.dram_energy_j) and sock.dram_energy_j >= 0
        for t in sock.trace:
            assert (
                BOUNDS.core.min_freq_hz
                <= t.core_freq_hz
                <= BOUNDS.core.max_freq_hz
            )
            assert (
                BOUNDS.uncore.min_freq_hz
                <= t.uncore_freq_hz
                <= BOUNDS.uncore.max_freq_hz
            )
            assert BOUNDS.rapl.min_limit_w <= t.cap_w <= BOUNDS.rapl.pl2_default_w
            assert math.isfinite(t.package_power_w) and t.package_power_w >= 0
            assert math.isfinite(t.dram_power_w) and t.dram_power_w >= 0


@pytest.mark.slow
@given(comp=compositions)
@SLOW
def test_mixed_compositions_finish_finite_within_bounds(comp):
    results = run_batch([_build(*m) for m in comp])
    assert len(results) == len(comp)
    for result in results:
        check_well_formed(result)


@pytest.mark.slow
@given(comp=compositions, order_seed=st.integers(min_value=0, max_value=999))
@SLOW
def test_batch_order_invariance(comp, order_seed):
    """Shuffling a batch permutes the results and changes nothing else."""
    import random

    perm = list(range(len(comp)))
    random.Random(order_seed).shuffle(perm)
    straight = run_batch([_build(*m) for m in comp])
    shuffled = run_batch([_build(*comp[i]) for i in perm])
    for out_pos, in_pos in enumerate(perm):
        assert _signature(shuffled[out_pos]) == _signature(straight[in_pos])


@pytest.mark.slow
@given(comp=compositions, split=st.integers(min_value=1, max_value=5))
@SLOW
def test_batch_split_invariance(comp, split):
    """One batch of N equals the same engines in chunks of ``split``."""
    whole = run_batch([_build(*m) for m in comp])
    chunked = run_batch([_build(*m) for m in comp], max_batch=split)
    for a, b in zip(whole, chunked):
        assert _signature(a) == _signature(b)


@pytest.mark.slow
@given(m=spec_members)
@SLOW
def test_scalar_batch_trace_equality_random(m):
    """A batch of one equals the scalar run for any policy spec + plan.

    Samples the full spec space — parameterized policies, subclassed
    controllers, fault plans — so both the lane-parallel path and the
    scatter/gather fallback are held to the same trace-for-trace
    equality the example-based differential suite pins.
    """
    scalar = _build(*m).run()
    [batched] = run_batch([_build(*m)])
    assert _signature(batched) == _signature(scalar)


@pytest.mark.slow
@given(comp=vector_compositions, order_seed=st.integers(min_value=0, max_value=999))
@SLOW
def test_lane_permutation_invariance(comp, order_seed):
    """Lane order never leaks between vector-eligible runs.

    Every member is a clean DUF/DUFP run, so the whole batch takes
    the lane-parallel controller path (asserted, not assumed) — with
    full noise on, exercising the batched per-run RNG draws.
    """
    import random

    engines = [_build(*m, noise=NOISY) for m in comp]
    assert all(controller_lane_fallback_reason(e) is None for e in engines)
    perm = list(range(len(comp)))
    random.Random(order_seed).shuffle(perm)
    straight = run_batch(engines)
    shuffled = run_batch([_build(*comp[i], noise=NOISY) for i in perm])
    for out_pos, in_pos in enumerate(perm):
        assert _signature(shuffled[out_pos]) == _signature(straight[in_pos])


def test_lane_fallback_reasons():
    """The lane-parallel/scatter routing decision is exact and named."""
    for policy in VECTOR_POLICIES:
        assert controller_lane_fallback_reason(_build(policy, "EP", 1, 0.05, None)) is None
    # An all-zero plan injects nothing and keeps the vector path.
    assert (
        controller_lane_fallback_reason(_build("duf", "EP", 1, 0.05, FaultPlan()))
        is None
    )
    # Exact-type registry: subclasses (dufpf, dufp-adaptive) fall back
    # alongside genuinely scalar-only controllers.
    for policy in ("default", "dufpf", "dufp-adaptive", "static", "uncore", "dnpc"):
        reason = controller_lane_fallback_reason(_build(policy, "EP", 1, 0.05, None))
        assert reason is not None and "no vector tick form" in reason
    reason = controller_lane_fallback_reason(
        _build("dufp", "EP", 1, 0.05, FaultPlan(msr_read_fail_rate=0.05))
    )
    assert reason is not None and "fault plan" in reason
    reason = controller_lane_fallback_reason(
        _build("dufp", "EP", 1, 0.05, None, cap_floor_w=30.0)
    )
    assert reason is not None and "RAPL minimum" in reason


def test_multi_die_lane_fallback_reason_is_pinned():
    """Multi-die uncore configs report their own named lane reason.

    The lane kernels model exactly one uncore clock per lane, so a
    ``die_count > 1`` socket must take the scatter/gather path — and
    say so distinctly (not hide behind the generic "no vector tick
    form" or fault-plan reasons).
    """
    from dataclasses import replace

    from repro.hardware.topology import MachineConfig
    from repro.sim.machine import SimulatedMachine

    for dies in (2, 4):
        sock = SocketConfig()
        sock = replace(sock, uncore=replace(sock.uncore, die_count=dies))
        cfg = ControllerConfig(tolerated_slowdown=0.05)
        engine = build_engine(
            build_application("EP", scale=0.06, socket=sock),
            as_spec("dufp").build(cfg),
            controller_cfg=cfg,
            machine=SimulatedMachine(MachineConfig(socket=sock, socket_count=1)),
            noise=QUIET,
            seed=1,
        )
        reason = controller_lane_fallback_reason(engine)
        assert reason == (
            f"multi-die uncore ({dies} dies): "
            "lane kernels model one uncore clock per lane"
        )


def test_scalar_batch_trace_equality_deterministic():
    """Tier-1 pin: noisy scalar and batch runs agree trace for trace.

    Full default noise makes this cover the batched RNG draws on the
    lane-parallel path; one DUF and one DUFP cell keep it fast.
    """
    for policy, app, seed, tol in (("duf", "CG", 5, 0.05), ("dufp", "EP", 7, 0.10)):
        probe = _build(policy, app, seed, tol, None, noise=NOISY)
        assert controller_lane_fallback_reason(probe) is None
        scalar = _build(policy, app, seed, tol, None, noise=NOISY).run()
        [batched] = run_batch([_build(policy, app, seed, tol, None, noise=NOISY)])
        assert _signature(batched) == _signature(scalar)


def test_smoke_properties_deterministic():
    """Tier-1 pin of every property on one fixed mixed composition."""
    comp = [
        ("dufp", "CG", 11, 0.10, FaultPlan(msr_read_fail_rate=0.05)),
        ("duf", "EP", 22, 0.05, None),
        ("dnpc", "FT", 33, 0.0, None),
        ("static", "LU", 44, 0.20, FaultPlan(tick_miss_rate=0.05)),
    ]
    whole = run_batch([_build(*m) for m in comp])
    for result in whole:
        check_well_formed(result)
    reversed_ = run_batch([_build(*m) for m in reversed(comp)])
    chunked = run_batch([_build(*m) for m in comp], max_batch=2)
    for i in range(len(comp)):
        sig = _signature(whole[i])
        assert _signature(reversed_[len(comp) - 1 - i]) == sig
        assert _signature(chunked[i]) == sig
