"""The batch-sharded scheduler and the v2 compressed result cache.

Acceptance properties of the sharded execution layer: multi-worker
sharded sweeps are result- and digest-identical to ``workers=1`` (both
the scalar oracle and the pooled lockstep batch), shard partitioning is
a pure load-balancing concern (results are invariant under spec
permutation and any shard size), pooled batch timing apportions by
simulated ticks, completed shards write through to the cache before
the pool drains, and the compressed log-structured cache round-trips
with transparent legacy reads.
"""

import pickle
import random

import pytest

from repro.cluster.spec import ClusterSpec
from repro.config import NoiseConfig
from repro.errors import ExperimentError
from repro.experiments.cache import ResultCache
from repro.experiments.executor import (
    SHARD_OVERSUBSCRIPTION,
    RunSpec,
    cell_seed,
    estimate_spec_ticks,
    execute_spec,
    plan_shards,
    run_specs,
    spec_key,
)
from repro.experiments.sweep import run_sweep, sweep_specs
from repro.hardware.gpu import GPUNodeConfig
from repro.workloads.catalog import build_application

QUIET = NoiseConfig(duration_jitter=0.002, counter_noise=0.001, power_noise=0.001)

#: Small enough to execute repeatedly, big enough to cut real shards.
GRID = dict(
    apps=["EP", "CG"],
    tolerances_pct=(0.0, 10.0),
    runs=2,
    app_scale=0.2,
    noise=QUIET,
)


def small_spec(**overrides) -> RunSpec:
    base = dict(
        app_name="EP",
        controller="duf",
        runs=2,
        app_scale=0.2,
        noise=QUIET,
        label="EP/duf",
    )
    base.update(overrides)
    return RunSpec(**base)


def batch_specs():
    specs, _ = sweep_specs(**GRID, engine="batch")
    return specs


class TestShardPlanning:
    def test_plan_covers_every_cell_exactly_once(self):
        specs = batch_specs()
        plan = plan_shards(specs, workers=3)
        flat = sorted(i for shard in plan for i in shard)
        assert flat == list(range(len(specs)))

    def test_over_decomposition(self):
        # Ten cells on two workers: more shards than workers (steal
        # slack), never more shards than cells.
        specs = batch_specs()
        plan = plan_shards(specs, workers=2)
        assert 2 < len(plan) <= min(len(specs), 2 * SHARD_OVERSUBSCRIPTION)

    def test_shard_size_caps_cells_per_shard(self):
        specs = batch_specs()
        for cap in (1, 2, 3):
            plan = plan_shards(specs, workers=2, shard_size=cap)
            assert max(len(shard) for shard in plan) <= cap

    def test_plan_balances_estimated_ticks(self):
        # MG simulates far longer than EP; LPT must not stack the
        # heavy cells into one shard while another idles.
        specs = [
            small_spec(app_name=name, label=name, runs=r)
            for name, r in (("MG", 2), ("EP", 1), ("EP", 1), ("EP", 1))
        ]
        plan = plan_shards(specs, workers=2)
        loads = [
            sum(estimate_spec_ticks(specs[i]) for i in shard) for shard in plan
        ]
        # The heaviest cell alone defines the heaviest shard.
        assert max(loads) <= max(estimate_spec_ticks(s) for s in specs) * 2
        assert specs[plan[0][0]].app_name == "MG"  # heaviest dispatched first

    def test_plan_deterministic(self):
        specs = batch_specs()
        assert plan_shards(specs, workers=4) == plan_shards(specs, workers=4)

    def test_empty_and_invalid(self):
        assert plan_shards([], workers=2) == []
        with pytest.raises(ExperimentError):
            plan_shards(batch_specs(), workers=0)
        with pytest.raises(ExperimentError):
            plan_shards(batch_specs(), workers=2, shard_size=0)
        with pytest.raises(ExperimentError):
            run_specs(batch_specs(), workers=2, shard_size=0)

    def test_estimate_tracks_runs_and_unknown_apps_fall_back(self):
        assert estimate_spec_ticks(small_spec(runs=4)) == pytest.approx(
            2 * estimate_spec_ticks(small_spec(runs=2))
        )
        # Unknown apps still get a planning weight; execution raises.
        assert estimate_spec_ticks(small_spec(app_name="NOPE")) > 0


class TestShardedEquivalence:
    def test_sharded_equals_scalar_oracle_and_pooled_batch(self):
        scalar_specs, _ = sweep_specs(**GRID)
        oracle, _ = run_specs(scalar_specs, workers=1)
        pooled, _ = run_specs(batch_specs(), workers=1)
        sharded, summary = run_specs(batch_specs(), workers=2, shard_size=3)
        for o, p, s in zip(oracle, pooled, sharded):
            assert o.times_s == p.times_s == s.times_s
            assert o.total_energy_j == p.total_energy_j == s.total_energy_j
        assert summary.shard_count > 2
        assert summary.executed == len(sharded)

    def test_sharded_sweep_digest_identical(self, tmp_path):
        # A sharded multi-worker batch sweep fills the cache; the
        # workers=1 scalar sweep must be served entirely from it.
        cold = run_sweep(**GRID, engine="batch", workers=2, shard_size=2,
                         cache=str(tmp_path))
        warm = run_sweep(**GRID, cache=str(tmp_path))
        assert cold.execution.executed == cold.execution.total > 0
        assert warm.execution.executed == 0
        assert warm.comparisons == cold.comparisons

    def test_results_invariant_under_permutation_and_shard_size(self):
        specs = batch_specs()
        baseline, _ = run_specs(specs, workers=1)
        order = list(range(len(specs)))
        random.Random(7).shuffle(order)
        shuffled = [specs[i] for i in order]
        for shard_size in (None, 1, 4):
            permuted, _ = run_specs(
                shuffled, workers=2, shard_size=shard_size
            )
            for pos, i in enumerate(order):
                assert permuted[pos].times_s == baseline[i].times_s

    def test_summary_reports_shards_and_render_mentions_them(self):
        _, summary = run_specs(batch_specs(), workers=2)
        assert summary.shard_count > 0
        assert sum(s.cells for s in summary.shards) == summary.executed
        assert all(s.est_ticks > 0 and s.seconds >= 0 for s in summary.shards)
        assert summary.steals >= 0
        text = summary.render()
        assert "shards over" in text and "steal" in text


class TestMixedEnginePending:
    def test_mixed_engines_match_all_scalar(self):
        # Half the pending list batch-engined, half scalar: the batch
        # subset pools, the rest runs scalar, nothing is dropped.
        scalar_specs, _ = sweep_specs(**GRID)
        mixed = [
            spec if i % 2 == 0 else batch_specs()[i]
            for i, spec in enumerate(scalar_specs)
        ]
        oracle, _ = run_specs(scalar_specs, workers=1)
        got, _ = run_specs(mixed, workers=1)
        for o, g in zip(oracle, got):
            assert o.times_s == g.times_s

    def test_batch_subset_actually_pools(self, monkeypatch):
        import repro.sim.batch as batch_mod

        calls = []
        real = batch_mod.run_batch

        def spy(engines, **kwargs):
            calls.append(len(engines))
            return real(engines, **kwargs)

        monkeypatch.setattr(batch_mod, "run_batch", spy)
        mixed = [
            small_spec(engine="batch", base_seed=cell_seed("m", i), label=f"b{i}")
            for i in range(3)
        ] + [
            small_spec(base_seed=cell_seed("s", i), label=f"s{i}")
            for i in range(2)
        ]
        results, _ = run_specs(mixed, workers=1)
        assert len(results) == 5
        # One pooled call covering all three batch cells' repetitions.
        assert calls == [3 * 2]


class TestTickApportionment:
    def test_pooled_seconds_split_by_simulated_ticks(self):
        # One heavy cell (4 runs) and one light cell (1 run) pooled in
        # one lockstep batch: seconds must follow tick counts, not be
        # split evenly by engine count.
        specs = [
            small_spec(engine="batch", runs=4, label="heavy"),
            small_spec(
                engine="batch", runs=1, base_seed=cell_seed("light"), label="light"
            ),
        ]
        _, summary = run_specs(specs, workers=1)
        by_label = {c.label: c for c in summary.cells}
        heavy, light = by_label["heavy"], by_label["light"]
        assert heavy.ticks > 3 * light.ticks
        assert heavy.seconds > 2 * light.seconds
        # Apportionment is exact: seconds ratio equals ticks ratio.
        assert heavy.seconds / light.seconds == pytest.approx(
            heavy.ticks / light.ticks
        )

    def test_cell_ticks_recorded_for_solo_cells_too(self):
        _, summary = run_specs([small_spec()], workers=1)
        (cell,) = summary.cells
        app_ticks = build_application("EP", scale=0.2).nominal_duration(None)
        assert cell.ticks == pytest.approx(
            2 * app_ticks / 0.01, rel=0.2  # 2 runs / 10 ms dt, ±jitter
        )


class TestWriteThrough:
    def test_completed_shards_survive_a_failing_shard(self, tmp_path):
        # "NOPE" passes submission-time validation (policies are
        # checked, applications resolve in the worker) and crashes its
        # shard; with one cell per shard every other shard completes
        # and must already be cached when the failure propagates.
        good = batch_specs()
        bad = small_spec(app_name="NOPE", label="poison")
        cache = ResultCache(tmp_path)
        with pytest.raises(Exception) as excinfo:
            run_specs(good + [bad], workers=2, shard_size=1, cache=cache)
        assert "NOPE" in str(excinfo.value)
        for spec in good:
            assert spec_key(spec) in cache

        warm, summary = run_specs(good, workers=2, cache=cache)
        assert summary.hits == len(good)
        oracle, _ = run_specs(good, workers=1)
        for w, o in zip(warm, oracle):
            assert w.times_s == o.times_s

    def test_serial_scalar_cells_write_through_incrementally(self, tmp_path):
        # The workers=1 path persists each solo cell before the next
        # executes: a poison cell at the end leaves the rest cached.
        specs, _ = sweep_specs(**GRID)
        cache = ResultCache(tmp_path)
        with pytest.raises(Exception):
            run_specs(
                specs + [small_spec(app_name="NOPE", label="poison")],
                workers=1,
                cache=cache,
            )
        _, summary = run_specs(specs, workers=1, cache=cache)
        assert summary.hits == len(specs)


#: A hetero grid sized for tier-1: one app, two split policies.
HETERO_NODE = GPUNodeConfig(
    kernel_count=3, kernel_flops=1.2e12, kernel_bytes=0.15e12
)
HETERO_GRID = dict(
    apps=["CG"],
    tolerances_pct=(0.0,),
    runs=2,
    app_scale=0.15,
    noise=QUIET,
    controllers=("hetero-coord", "hetero-fair"),
    gpu=HETERO_NODE,
)


class TestHeteroSharding:
    def test_hetero_sweep_rejects_per_socket_controllers(self):
        with pytest.raises(ExperimentError) as excinfo:
            sweep_specs(**{**HETERO_GRID, "controllers": ("duf", "hetero-coord")})
        assert "duf" in str(excinfo.value)

    def test_hetero_cells_weighted_by_the_gpu_side(self):
        specs, _ = sweep_specs(**HETERO_GRID)
        cpu_twin = RunSpec(
            app_name="CG", controller="duf", runs=2, app_scale=0.15, noise=QUIET
        )
        for spec in specs:
            assert estimate_spec_ticks(spec) > estimate_spec_ticks(cpu_twin)

    def test_sharded_hetero_sweep_bit_identical_to_serial(self):
        serial = run_sweep(**HETERO_GRID)
        sharded = run_sweep(**HETERO_GRID, workers=2, shard_size=1)
        assert serial.comparisons.keys() == sharded.comparisons.keys()
        for key in serial.comparisons:
            a, b = serial.comparisons[key], sharded.comparisons[key]
            assert a.slowdown_pct == b.slowdown_pct
            assert a.energy_savings_pct == b.energy_savings_pct
        assert sharded.execution.shard_count == sharded.execution.executed == 3

    def test_mixed_hetero_and_cpu_grid_shards_and_caches(self, tmp_path):
        hetero_specs, _ = sweep_specs(**HETERO_GRID)
        cpu_specs, _ = sweep_specs(**GRID, engine="batch")
        mixed = hetero_specs + cpu_specs
        cache = ResultCache(tmp_path)
        serial, _ = run_specs(mixed, workers=1)
        sharded, summary = run_specs(mixed, workers=2, shard_size=2, cache=cache)
        for s, p in zip(serial, sharded):
            assert s.times_s == p.times_s
            assert s.total_energy_j == p.total_energy_j
        assert summary.executed == len(mixed)
        for spec in mixed:
            assert spec_key(spec) in cache
        warm, warm_summary = run_specs(mixed, workers=2, cache=cache)
        assert warm_summary.executed == 0
        assert warm_summary.hits == len(mixed)
        for s, w in zip(serial, warm):
            assert s.times_s == w.times_s


CLUSTER_GRID = dict(
    apps=["CG"],
    tolerances_pct=(0.0,),
    runs=2,
    app_scale=0.15,
    noise=QUIET,
    controllers=("fleet-demand:budget_w=160", "fleet-fair:budget_w=160"),
    cluster=ClusterSpec(node_count=2, node_apps=("EP", "CG")),
)


class TestClusterSharding:
    def test_cluster_sweep_rejects_per_socket_controllers(self):
        with pytest.raises(ExperimentError) as excinfo:
            sweep_specs(
                **{**CLUSTER_GRID, "controllers": ("duf", "fleet-demand")}
            )
        assert "duf" in str(excinfo.value)

    def test_cluster_estimate_sums_per_node_app_ticks(self):
        # LPT weight of a multi-node cell: runs × Σ_nodes(spn × node-app
        # ticks) — each node's *own* application, not app_name × nodes.
        spec = small_spec(
            app_name="CG",
            controller="fleet-demand",
            cluster=ClusterSpec(node_count=2, node_apps=("EP", "CG")),
        )
        ep = small_spec(app_name="EP")
        cg = small_spec(app_name="CG")
        expected = (
            estimate_spec_ticks(ep) + estimate_spec_ticks(cg)
        )  # same runs/scale, spn=1
        assert estimate_spec_ticks(spec) == pytest.approx(expected)
        # Sockets per node multiply the weight.
        wide = small_spec(
            app_name="CG",
            controller="fleet-demand",
            cluster=ClusterSpec(
                node_count=2, node_apps=("EP", "CG"), sockets_per_node=2
            ),
        )
        assert estimate_spec_ticks(wide) == pytest.approx(2 * expected)
        # A homogeneous 3-node cell weighs 3× its single-node twin.
        homo = small_spec(
            app_name="EP",
            controller="fleet-demand",
            cluster=ClusterSpec(node_count=3),
        )
        assert estimate_spec_ticks(homo) == pytest.approx(
            3 * estimate_spec_ticks(ep)
        )

    def test_sharded_cluster_sweep_bit_identical_to_serial(self):
        serial = run_sweep(**CLUSTER_GRID)
        sharded = run_sweep(**CLUSTER_GRID, workers=2, shard_size=1)
        assert serial.comparisons.keys() == sharded.comparisons.keys()
        for key in serial.comparisons:
            a, b = serial.comparisons[key], sharded.comparisons[key]
            assert a.slowdown_pct == b.slowdown_pct
            assert a.energy_savings_pct == b.energy_savings_pct
        assert sharded.execution.shard_count == sharded.execution.executed == 3

    def test_cluster_cells_cache_and_warm_rerun(self, tmp_path):
        specs, _ = sweep_specs(**CLUSTER_GRID)
        cache = ResultCache(tmp_path)
        _, summary = run_specs(specs, workers=2, shard_size=1, cache=cache)
        assert summary.executed == len(specs)
        for spec in specs:
            assert spec_key(spec) in cache
        _, warm = run_specs(specs, workers=2, cache=cache)
        assert warm.executed == 0
        assert warm.hits == len(specs)


class TestCacheV2:
    def test_compressed_roundtrip_and_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = execute_spec(small_spec())
        key = spec_key(small_spec())
        cache.put(key, result)
        assert (tmp_path / "manifest.jsonl").exists()
        segs = list((tmp_path / "segments").glob("*.seg"))
        assert len(segs) == 1
        # The stored blob is genuinely compressed.
        raw = len(pickle.dumps(result))
        assert segs[0].stat().st_size < raw / 2
        got = cache.get(key)
        assert got is not None and got.times_s == result.times_s

    def test_fresh_instance_serves_from_manifest_only(self, tmp_path):
        writer = ResultCache(tmp_path)
        key = spec_key(small_spec())
        writer.put(key, execute_spec(small_spec()))
        reader = ResultCache(tmp_path)
        assert key in reader
        assert reader.get(key) is not None
        assert reader.stats.hits == 1
        assert reader.stats.legacy_hits == 0

    def test_legacy_uncompressed_entry_read_transparently(self, tmp_path):
        result = execute_spec(small_spec())
        key = spec_key(small_spec())
        legacy = tmp_path / key[:2] / f"{key[2:]}.pkl"
        legacy.parent.mkdir(parents=True)
        legacy.write_bytes(pickle.dumps(result))

        cache = ResultCache(tmp_path)
        assert key in cache
        assert len(cache) == 1
        got = cache.get(key)
        assert got is not None and got.times_s == result.times_s
        assert cache.stats.legacy_hits == 1
        # A warm sweep over a v1-only cache executes nothing.
        _, summary = run_specs([small_spec()], cache=cache)
        assert summary.hits == 1

    def test_new_write_supersedes_legacy_entry(self, tmp_path):
        key = spec_key(small_spec())
        legacy = tmp_path / key[:2] / f"{key[2:]}.pkl"
        legacy.parent.mkdir(parents=True)
        legacy.write_bytes(pickle.dumps("stale"))
        cache = ResultCache(tmp_path)
        cache.put(key, "fresh")
        assert cache.get(key) == "fresh"
        assert len(cache) == 1  # one key, two formats

    def test_torn_manifest_tail_is_ignored(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = spec_key(small_spec())
        cache.put(key, "value")
        with (tmp_path / "manifest.jsonl").open("ab") as fh:
            fh.write(b'{"k":"dead')  # crash mid-append: no newline
        reader = ResultCache(tmp_path)
        assert reader.get(key) == "value"

    def test_corrupt_manifest_line_loses_one_entry_only(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = spec_key(small_spec())
        cache.put(key, "value")
        with (tmp_path / "manifest.jsonl").open("ab") as fh:
            fh.write(b"garbage line\n")
        cache.put("f" * 64, "other")
        reader = ResultCache(tmp_path)
        assert reader.get(key) == "value"
        assert reader.get("f" * 64) == "other"
        assert reader.stats.corrupted == 1

    def test_two_writers_share_one_root(self, tmp_path):
        a, b = ResultCache(tmp_path), ResultCache(tmp_path)
        a.put("a" * 64, "from-a")
        b.put("b" * 64, "from-b")
        assert a.get("b" * 64) == "from-b"  # sees b's append via refresh
        assert b.get("a" * 64) == "from-a"
        assert len(ResultCache(tmp_path)) == 2
