"""Workload models: phases, applications, the ten-app catalog."""

import numpy as np
import pytest

from repro.config import yeti_socket_config
from repro.errors import WorkloadError
from repro.workloads import (
    Application,
    Phase,
    application_names,
    build_application,
    random_application,
)
from repro.workloads.phase import NominalRates, phase_from_duration


class TestPhase:
    def test_oi(self):
        p = Phase("x", flops=2.0, bytes=10.0, fpc=1.0)
        assert p.operational_intensity == pytest.approx(0.2)

    def test_oi_infinite_without_bytes(self):
        p = Phase("x", flops=2.0, bytes=0.0, fpc=1.0)
        assert p.operational_intensity == float("inf")

    def test_empty_phase_rejected(self):
        with pytest.raises(WorkloadError):
            Phase("x", flops=0.0, bytes=0.0, fpc=1.0)

    def test_negative_volume_rejected(self):
        with pytest.raises(WorkloadError):
            Phase("x", flops=-1.0, bytes=1.0, fpc=1.0)

    def test_bad_fpc_rejected(self):
        with pytest.raises(WorkloadError):
            Phase("x", flops=1.0, bytes=1.0, fpc=0.0)

    def test_bad_boost_rejected(self):
        with pytest.raises(WorkloadError):
            Phase("x", flops=1.0, bytes=1.0, fpc=1.0, power_boost=0.0)

    def test_scaled(self):
        p = Phase("x", flops=2.0, bytes=10.0, fpc=1.0).scaled(3.0)
        assert p.flops == 6.0
        assert p.bytes == 30.0

    def test_scaled_preserves_character(self):
        p = Phase("x", 2.0, 10.0, 1.0, latency_sensitivity=0.3, power_boost=1.2)
        q = p.scaled(2.0)
        assert q.latency_sensitivity == 0.3
        assert q.power_boost == 1.2

    def test_to_work_mirrors_fields(self):
        p = Phase("x", 2.0, 10.0, 1.5, uncore_sensitivity=0.2, overfetch=0.1)
        w = p.to_work()
        assert (w.flops, w.bytes, w.fpc) == (2.0, 10.0, 1.5)
        assert w.uncore_sensitivity == 0.2
        assert w.overfetch == 0.1


class TestPhaseFromDuration:
    def test_duration_inversion_accurate(self):
        p = phase_from_duration("x", 1.5, oi=0.12, fpc=0.32)
        rates = NominalRates(yeti_socket_config())
        assert rates.duration(p) == pytest.approx(1.5, rel=1e-6)

    def test_duration_inversion_compute_phase(self):
        p = phase_from_duration("x", 2.0, oi=4000.0, fpc=4.0)
        rates = NominalRates(yeti_socket_config())
        assert rates.duration(p) == pytest.approx(2.0, rel=1e-6)

    def test_oi_preserved(self):
        p = phase_from_duration("x", 1.0, oi=0.5, fpc=1.0)
        assert p.operational_intensity == pytest.approx(0.5)

    def test_bad_duration_rejected(self):
        with pytest.raises(WorkloadError):
            phase_from_duration("x", 0.0, oi=1.0, fpc=1.0)

    def test_sensitivities_affect_volumes(self):
        plain = phase_from_duration("x", 1.0, oi=1.0, fpc=1.0)
        sens = phase_from_duration(
            "x", 1.0, oi=1.0, fpc=1.0, uncore_sensitivity=0.5
        )
        # Same nominal duration at max clocks -> same volumes (penalty
        # terms vanish at the maximum uncore frequency).
        assert sens.flops == pytest.approx(plain.flops)


class TestApplication:
    def test_from_pattern_expands_iterations(self):
        p = Phase("k", 1.0, 1.0, 1.0)
        app = Application.from_pattern("A", loop=[p], iterations=3)
        assert len(app.phases) == 3
        assert app.phases[1].name == "k[1]"

    def test_setup_and_teardown_order(self):
        s = Phase("s", 1.0, 1.0, 1.0)
        k = Phase("k", 1.0, 1.0, 1.0)
        t = Phase("t", 1.0, 1.0, 1.0)
        app = Application.from_pattern(
            "A", setup=[s], loop=[k], iterations=2, teardown=[t]
        )
        assert [p.name for p in app.phases] == ["s", "k[0]", "k[1]", "t"]

    def test_empty_application_rejected(self):
        with pytest.raises(WorkloadError):
            Application("A", phases=())

    def test_totals(self):
        p = Phase("k", 2.0, 3.0, 1.0)
        app = Application.from_pattern("A", loop=[p], iterations=4)
        assert app.total_flops == pytest.approx(8.0)
        assert app.total_bytes == pytest.approx(12.0)

    def test_jitter_reproducible(self):
        app = build_application("CG")
        a = app.jittered(np.random.default_rng(3), 0.01)
        b = app.jittered(np.random.default_rng(3), 0.01)
        assert [p.flops for p in a.phases] == [p.flops for p in b.phases]

    def test_jitter_zero_is_identity(self):
        app = build_application("CG")
        assert app.jittered(np.random.default_rng(3), 0.0) is app

    def test_jitter_small(self):
        app = build_application("EP")
        j = app.jittered(np.random.default_rng(3), 0.01)
        for p0, p1 in zip(app.phases, j.phases):
            assert p1.flops == pytest.approx(p0.flops, rel=0.1)


class TestCatalog:
    def test_ten_applications(self):
        assert len(application_names()) == 10
        assert application_names() == (
            "BT", "CG", "EP", "FT", "LU", "MG", "SP", "UA", "HPL", "LAMMPS",
        )

    def test_case_insensitive_lookup(self):
        assert build_application("cg").name == "CG"

    def test_unknown_app_rejected(self):
        with pytest.raises(WorkloadError):
            build_application("NOPE")

    @pytest.mark.parametrize("name", application_names())
    def test_nominal_durations_in_range(self, name):
        # The paper picks problem sizes for 20-400 s runs; our scaled
        # models target roughly 15-40 s.
        d = build_application(name).nominal_duration()
        assert 10.0 < d < 60.0, f"{name}: {d:.1f}s"

    def test_cg_opens_with_highly_memory_setup(self):
        cg = build_application("CG")
        setup = cg.phases[0]
        assert setup.name == "cg.setup"
        assert setup.operational_intensity < 0.02

    def test_cg_setup_is_about_5_percent_of_run(self):
        cg = build_application("CG")
        rates = NominalRates(yeti_socket_config())
        frac = rates.duration(cg.phases[0]) / cg.nominal_duration()
        assert 0.03 < frac < 0.08

    def test_ep_is_compute_only(self):
        ep = build_application("EP")
        assert all(p.operational_intensity > 100 for p in ep.phases)

    def test_hpl_update_is_highly_cpu(self):
        hpl = build_application("HPL")
        updates = [p for p in hpl.phases if "update" in p.name]
        assert updates
        assert all(p.operational_intensity > 100 for p in updates)

    def test_ua_alternates_compute_and_memory(self):
        ua = build_application("UA")
        classes = [p.operational_intensity >= 1.0 for p in ua.phases[:3]]
        assert classes == [True, False, False]

    def test_lammps_has_bursts(self):
        lam = build_application("LAMMPS")
        bursts = [p for p in lam.phases if "burst" in p.name]
        assert bursts
        # Bursts are sub-interval (< 200 ms) and power-hungry.
        rates = NominalRates(yeti_socket_config())
        assert all(rates.duration(p) < 0.2 for p in bursts)
        assert all(p.power_boost > 1.0 for p in bursts)

    def test_lammps_seeded(self):
        from repro.workloads.lammps import lammps

        a = lammps(seed=1)
        b = lammps(seed=1)
        c = lammps(seed=2)
        assert [p.name for p in a.phases] == [p.name for p in b.phases]
        assert [p.name for p in a.phases] != [p.name for p in c.phases]

    def test_mg_segments_are_sub_interval(self):
        mg = build_application("MG")
        rates = NominalRates(yeti_socket_config())
        assert all(rates.duration(p) < 0.1 for p in mg.phases)

    def test_scale_parameter(self):
        short = build_application("EP", scale=0.5)
        full = build_application("EP")
        assert short.nominal_duration() == pytest.approx(
            full.nominal_duration() / 2, rel=0.01
        )


class TestRandomApplications:
    def test_reproducible(self):
        a = random_application(7)
        b = random_application(7)
        assert [p.flops for p in a.phases] == [p.flops for p in b.phases]

    def test_different_seeds_differ(self):
        a = random_application(7)
        b = random_application(8)
        assert [p.flops for p in a.phases] != [p.flops for p in b.phases]

    def test_phase_count_bounded(self):
        for seed in range(20):
            app = random_application(seed, max_phases=5)
            assert 1 <= len(app.phases) <= 5

    def test_durations_bounded(self):
        rates = NominalRates(yeti_socket_config())
        for seed in range(10):
            app = random_application(seed, min_duration_s=0.1, max_duration_s=0.5)
            for p in app.phases:
                assert 0.05 < rates.duration(p) < 0.75

    def test_bad_bounds_rejected(self):
        with pytest.raises(WorkloadError):
            random_application(1, max_phases=0)
        with pytest.raises(WorkloadError):
            random_application(1, min_duration_s=2.0, max_duration_s=1.0)
