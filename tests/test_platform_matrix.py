"""Differential scenario-grid suite over the platform models.

The headline test of the platform-model layer: every registered
frequency policy x workload x platform configuration (C-states on/off,
EPP bias levels, 1/2/4 uncore dies) runs through the scalar AND the
batch engine, asserting in every cell:

* **scalar == batch** — ``run_batch`` must route platform-model
  engines to whatever path reproduces the scalar run trace-for-trace
  (multi-die / C-state / EPB engines take the transparent scalar
  fallback; the routing is asserted, not assumed);
* **determinism** — the same cell twice is the same signature;
* **digest stability** — the new config fields are
  ``digest_omit_default``: an all-defaults socket canonicalises
  without them, so every pre-PR cache address survives, while any
  non-default platform value lands in the digest;
* **legacy byte-identity** — a ``die_count=1`` socket builds the
  plain single-domain uncore and an all-defaults platform run is
  bit-for-bit the pre-platform-model run;
* **physical orderings** — powersave draws no more average power and
  never finishes earlier than performance; the C-state model strictly
  cuts power on idle-heavy work and is an exact no-op on idle-free
  work; a power-leaning EPP hint never raises the uncore clock.

The full grid is tier-2 (``-m slow``); a pinned sub-grid keeps every
assertion in tier-1.
"""

import math
from dataclasses import replace

import pytest

from repro.config import (
    ControllerConfig,
    CStateConfig,
    EPBConfig,
    NoiseConfig,
    SocketConfig,
    canonical_value,
    config_digest,
)
from repro.core.registry import as_spec
from repro.hardware.topology import MachineConfig
from repro.hardware.uncore import TpmiUncore, UncoreDriver
from repro.sim.batch import (
    batch_fallback_reason,
    controller_lane_fallback_reason,
    run_batch,
)
from repro.sim.machine import SimulatedMachine
from repro.sim.run import build_engine
from repro.workloads.catalog import build_application

QUIET = NoiseConfig(duration_jitter=0.0, counter_noise=0.0, power_noise=0.0)
CFG = ControllerConfig(tolerated_slowdown=0.10)

#: The platform axis of the grid.
PLATFORMS = {
    "default": SocketConfig(),
    "cstates": replace(SocketConfig(), cstates=CStateConfig()),
    "epp-perf": replace(SocketConfig(), epb=EPBConfig(epp=0, epb=0)),
    "epp-power": replace(SocketConfig(), epb=EPBConfig(epp=255, epb=15)),
    "dies-2": replace(
        SocketConfig(),
        uncore=replace(SocketConfig().uncore, die_count=2),
    ),
    "dies-4": replace(
        SocketConfig(),
        uncore=replace(SocketConfig().uncore, die_count=4),
    ),
}

#: The policy axis: the paper's controllers plus the governor baselines.
POLICIES = (
    "default",
    "dufp",
    "governor-performance",
    "governor-powersave",
    "governor-ondemand",
    "governor-schedutil",
)

#: Compute-saturated and memory-heavy representatives.
APPS = ("EP", "CG")


def _machine(socket):
    return SimulatedMachine(MachineConfig(socket=socket, socket_count=1))


def _idle_app(app, scale, socket=None, idleness=0.3):
    base = build_application(app, scale=scale, socket=socket)
    phases = tuple(replace(p, idleness=idleness) for p in base.phases)
    return type(base)(
        name=base.name, phases=phases, structure=base.structure
    )


def _build(policy, app, socket, seed=5, scale=0.06, idleness=0.0):
    if idleness > 0.0:
        application = _idle_app(app, scale, socket=socket, idleness=idleness)
    else:
        application = build_application(app, scale=scale, socket=socket)
    return build_engine(
        application,
        as_spec(policy).build(CFG),
        controller_cfg=CFG,
        machine=_machine(socket),
        noise=QUIET,
        seed=seed,
    )


def _signature(result):
    return (
        result.app_name,
        result.controller_name,
        tuple(
            (e.time_s, e.socket_id, e.channel, e.detail)
            for e in result.fault_events
        ),
        tuple(
            (
                s.socket_id,
                s.finish_time_s,
                s.package_energy_j,
                s.dram_energy_j,
                tuple(
                    (
                        t.time_s,
                        t.core_freq_hz,
                        t.uncore_freq_hz,
                        t.cap_w,
                        t.package_power_w,
                    )
                    for t in s.trace
                ),
            )
            for s in result.sockets
        ),
    )


def _check_cell(policy, app, platform, socket):
    """One grid cell: scalar == batch, deterministic, well-formed."""
    scalar = _build(policy, app, socket).run()
    again = _build(policy, app, socket).run()
    [batched] = run_batch([_build(policy, app, socket)])
    sig = _signature(scalar)
    assert _signature(again) == sig, f"{policy}/{app}/{platform} not deterministic"
    assert _signature(batched) == sig, f"{policy}/{app}/{platform} scalar != batch"
    for sock in scalar.sockets:
        assert math.isfinite(sock.finish_time_s) and sock.finish_time_s > 0
        assert math.isfinite(sock.package_energy_j) and sock.package_energy_j > 0
    return scalar


# ---------------------------------------------------------------------------
# The grid
# ---------------------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("platform", sorted(PLATFORMS))
@pytest.mark.parametrize("policy", POLICIES)
def test_grid_cell_scalar_equals_batch(policy, platform):
    """Full grid: every policy x app x platform, both engines."""
    for app in APPS:
        _check_cell(policy, app, platform, PLATFORMS[platform])


def test_grid_smoke_scalar_equals_batch():
    """Tier-1 sub-grid: one policy per family x every platform."""
    for policy in ("default", "dufp", "governor-powersave"):
        for platform in ("default", "cstates", "epp-power", "dies-2"):
            _check_cell(policy, "CG", platform, PLATFORMS[platform])


def test_platform_engines_take_the_scalar_route_in_batches():
    """The batch router names a reason for every platform model."""
    cases = {
        "dies-2": "multi-die uncore",
        "dies-4": "multi-die uncore",
        "cstates": "C-state residency",
        "epp-power": "EPB/EPP hint",
    }
    for platform, needle in cases.items():
        engine = _build("dufp", "EP", PLATFORMS[platform])
        reason = batch_fallback_reason(engine)
        assert reason is not None and needle in reason, (platform, reason)
    # The default platform keeps the vector path end to end.
    clean = _build("dufp", "EP", PLATFORMS["default"])
    assert batch_fallback_reason(clean) is None
    assert controller_lane_fallback_reason(clean) is None


# ---------------------------------------------------------------------------
# Digest stability
# ---------------------------------------------------------------------------


def test_default_socket_canonical_form_omits_platform_fields():
    """All-defaults sockets canonicalise without the new fields.

    This is what keeps every pre-PR cache address and frozen digest
    alive: a config that never opted into the platform models hashes
    as if the fields did not exist.
    """
    canon = canonical_value(SocketConfig())
    assert "cstates" not in canon
    assert "epb" not in canon
    assert "die_count" not in canon["uncore"]
    assert "die_traffic_spread" not in canon["uncore"]


def test_non_default_platform_fields_land_in_the_digest():
    base = config_digest(SocketConfig())
    assert config_digest(PLATFORMS["dies-2"]) != base
    assert config_digest(PLATFORMS["cstates"]) != base
    assert config_digest(PLATFORMS["epp-power"]) != base
    # Explicitly writing the defaults is the same address as omitting
    # them (digest_omit_default, not field presence).
    explicit = replace(
        SocketConfig(),
        uncore=replace(SocketConfig().uncore, die_count=1),
    )
    assert config_digest(explicit) == base


def test_platform_sweep_cells_have_stable_distinct_digests():
    from repro.experiments.executor import spec_key
    from repro.experiments.sweep import sweep_specs

    keys = {}
    for platform in ("default", "dies-2", "epp-power"):
        specs, _ = sweep_specs(
            apps=("CG",),
            tolerances_pct=(10.0,),
            runs=1,
            controllers=("governor-powersave",),
            socket=(
                None if platform == "default" else PLATFORMS[platform]
            ),
        )
        keys[platform] = tuple(spec_key(s) for s in specs)
        # Stable: rebuilding the same grid readdresses identically.
        specs2, _ = sweep_specs(
            apps=("CG",),
            tolerances_pct=(10.0,),
            runs=1,
            controllers=("governor-powersave",),
            socket=(
                None if platform == "default" else PLATFORMS[platform]
            ),
        )
        assert tuple(spec_key(s) for s in specs2) == keys[platform]
    assert len(set(keys.values())) == 3, "platforms must not share addresses"


# ---------------------------------------------------------------------------
# Legacy byte-identity
# ---------------------------------------------------------------------------


def test_one_die_socket_builds_the_legacy_uncore():
    machine = _machine(SocketConfig())
    uncore = machine.processors[0].uncore
    assert type(uncore) is UncoreDriver
    assert not isinstance(uncore, TpmiUncore)
    multi = _machine(PLATFORMS["dies-2"]).processors[0].uncore
    assert isinstance(multi, TpmiUncore)
    assert len(multi.dies) == 2


def test_all_defaults_run_is_bit_identical_to_legacy_path():
    """An explicit all-defaults machine equals the implicit one."""
    explicit = _build("dufp", "CG", SocketConfig()).run()
    implicit = build_engine(
        build_application("CG", scale=0.06),
        as_spec("dufp").build(CFG),
        controller_cfg=CFG,
        noise=QUIET,
        seed=5,
    ).run()
    assert _signature(explicit) == _signature(implicit)


def test_cstates_model_is_exact_noop_on_idle_free_work():
    """With zero idleness the C-state model is bitwise invisible.

    ``idle_scale`` resolves to exactly 1.0 and the core-power scale
    ``a0 * 1.0 + ...`` is IEEE-exact, so enabling the model on
    idle-free work must not move a single bit of the trace.
    """
    plain = _build("default", "EP", SocketConfig()).run()
    modelled = _build("default", "EP", PLATFORMS["cstates"]).run()
    assert _signature(modelled) == _signature(plain)


# ---------------------------------------------------------------------------
# Physical orderings
# ---------------------------------------------------------------------------


def _metrics(result):
    sock = result.sockets[0]
    time_s = sock.finish_time_s
    energy = sock.package_energy_j + sock.dram_energy_j
    return time_s, energy / time_s, energy


def test_powersave_orders_against_performance():
    """Powersave never draws more power nor finishes earlier."""
    for app in APPS:
        t_perf, p_perf, _ = _metrics(
            _build("governor-performance", app, SocketConfig()).run()
        )
        t_save, p_save, _ = _metrics(
            _build("governor-powersave", app, SocketConfig()).run()
        )
        assert p_save <= p_perf * (1 + 1e-9), app
        assert t_save >= t_perf * (1 - 1e-9), app


def test_governors_are_distinct_on_memory_heavy_work():
    """The four baselines land on four different (time, energy) points."""
    outcomes = {
        policy: _metrics(_build(policy, "CG", SocketConfig()).run())[::2]
        for policy in POLICIES[2:]
    }
    assert len(set(outcomes.values())) == len(outcomes), outcomes


def test_cstates_cut_power_on_idle_heavy_work():
    """At equal clocks, C-state residency strictly lowers avg power."""
    t_off, p_off, _ = _metrics(
        _build("default", "CG", SocketConfig(), idleness=0.3).run()
    )
    t_on, p_on, _ = _metrics(
        _build("default", "CG", PLATFORMS["cstates"], idleness=0.3).run()
    )
    assert p_on < p_off
    # Wakeup exit latencies only ever stretch the run.
    assert t_on >= t_off * (1 - 1e-9)


def test_epp_bias_never_raises_the_uncore_clock():
    """A power-leaning hint shrinks the uncore window monotonically."""

    def avg_uncore_hz(socket):
        result = _build("default", "CG", socket).run()
        trace = result.sockets[0].trace
        return sum(t.uncore_freq_hz for t in trace) / len(trace)

    plain = avg_uncore_hz(SocketConfig())
    perf_hint = avg_uncore_hz(PLATFORMS["epp-perf"])
    power_hint = avg_uncore_hz(PLATFORMS["epp-power"])
    assert power_hint <= perf_hint <= plain * (1 + 1e-9)
    assert power_hint < plain


def test_multi_die_uncore_aggregates_and_stays_bounded():
    """Per-die clocks stay in the window; the package clock is their mean."""
    bounds = SocketConfig().uncore
    for platform in ("dies-2", "dies-4"):
        engine = _build("default", "CG", PLATFORMS[platform])
        result = engine.run()
        uncore = engine.machine.processors[0].uncore
        assert isinstance(uncore, TpmiUncore)
        freqs = uncore.die_frequencies
        assert len(freqs) == PLATFORMS[platform].uncore.die_count
        for f in freqs:
            assert bounds.min_freq_hz <= f <= bounds.max_freq_hz
        for t in result.sockets[0].trace:
            assert (
                bounds.min_freq_hz
                <= t.uncore_freq_hz
                <= bounds.max_freq_hz
            )
