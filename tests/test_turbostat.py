"""turbostat-style trace reporting."""

import pytest

from repro.config import ControllerConfig, NoiseConfig
from repro.core.baselines import DefaultController
from repro.core.dufp import DUFP
from repro.errors import SimulationError
from repro.interfaces.turbostat import turbostat_report, turbostat_rows
from repro.sim.run import run_application
from repro.workloads.catalog import build_application


QUIET = NoiseConfig(duration_jitter=0.0, counter_noise=0.0, power_noise=0.0)


@pytest.fixture(scope="module")
def sock():
    run = run_application(
        build_application("CG", scale=0.3), DefaultController, noise=QUIET, seed=2
    )
    return run.socket(0)


class TestRows:
    def test_interval_cadence(self, sock):
        rows = turbostat_rows(sock, interval_s=1.0)
        assert len(rows) >= 7
        assert rows[0].time_s == pytest.approx(1.0, abs=0.02)
        assert rows[1].time_s == pytest.approx(2.0, abs=0.02)

    def test_default_run_values(self, sock):
        rows = turbostat_rows(sock, interval_s=1.0)
        mid = rows[len(rows) // 2]
        assert mid.avg_ghz == pytest.approx(2.8, abs=0.05)
        assert 2.0 < mid.uncore_ghz <= 2.4 + 1e-9
        assert 60.0 < mid.pkg_watt < 130.0
        assert mid.cap_watt == pytest.approx(125.0)

    def test_power_consistent_with_energy(self, sock):
        rows = turbostat_rows(sock, interval_s=1.0)
        approx_energy = sum(r.pkg_watt for r in rows[:-1])  # ~1 s each
        assert approx_energy == pytest.approx(sock.package_energy_j, rel=0.1)

    def test_cap_column_tracks_controller(self):
        cfg = ControllerConfig(tolerated_slowdown=0.10)
        run = run_application(
            build_application("CG", scale=0.3),
            lambda: DUFP(cfg),
            controller_cfg=cfg,
            noise=QUIET,
            seed=2,
        )
        rows = turbostat_rows(run.socket(0), interval_s=1.0)
        caps = {r.cap_watt for r in rows}
        assert len(caps) > 1  # the dynamic cap moved

    def test_bad_interval_rejected(self, sock):
        with pytest.raises(SimulationError):
            turbostat_rows(sock, interval_s=0.0)

    def test_traceless_rejected(self):
        run = run_application(
            build_application("EP", scale=0.1),
            DefaultController,
            noise=QUIET,
            record_trace=False,
        )
        with pytest.raises(SimulationError):
            turbostat_rows(run.socket(0))


class TestReport:
    def test_render(self, sock):
        out = turbostat_report(sock, interval_s=2.0)
        assert "Avg_GHz" in out and "PkgWatt" in out
        assert "turbostat (socket 0" in out
        assert len(out.splitlines()) >= 5
