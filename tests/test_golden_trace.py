"""Golden-trace regression: a pinned fault-injected run, byte for byte.

The committed reference (``tests/data/golden_dufp_trace.jsonl``) locks
down the full stack at once — sample encoding, event encoding, fault
draw order, the injector's RNG stream, controller decisions and the
hardening paths they exercise.  An unintentional change to any of them
shows up as a byte diff here.  Intentional changes regenerate the file:

    PYTHONPATH=src python scripts/regen_golden_trace.py
"""

import pytest

import json
import pathlib
import sys

GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_dufp_trace.jsonl"
GOLDEN_POWERSAVE = (
    pathlib.Path(__file__).parent / "data" / "golden_powersave_trace.jsonl"
)

# The regeneration script owns the pinned scenarios; import it so the
# test and the regenerator can never drift apart.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "scripts"))
from regen_golden_trace import golden_powersave_run, golden_run  # noqa: E402

from repro.sim.export import write_trace_jsonl  # noqa: E402

# Golden byte-for-byte regressions: tier 2 (`pytest -m slow`).
pytestmark = pytest.mark.slow


def test_golden_trace_is_byte_identical(tmp_path):
    fresh = tmp_path / "fresh.jsonl"
    write_trace_jsonl(golden_run(), str(fresh))
    assert fresh.read_bytes() == GOLDEN.read_bytes(), (
        "fault-injected DUFP trace diverged from the golden reference; "
        "if intentional, regenerate with scripts/regen_golden_trace.py"
    )


def test_golden_trace_contains_fault_events():
    lines = GOLDEN.read_text().splitlines()
    events = [json.loads(line) for line in lines if '"event"' in line]
    assert events, "the pinned scenario must actually inject faults"
    channels = {e["event"] for e in events}
    assert "cap_latch_fail" in channels
    # Events form one trailing block after the samples.
    first_event = next(i for i, line in enumerate(lines) if '"event"' in line)
    assert all('"event"' in line for line in lines[first_event:])
    assert all('"event"' not in line for line in lines[:first_event])


def test_golden_samples_are_well_formed():
    for line in GOLDEN.read_text().splitlines():
        record = json.loads(line)
        if "event" in record:
            assert set(record) == {"event", "time_s", "socket_id", "detail"}
        else:
            assert record["socket_id"] == 0
            assert record["time_s"] > 0


def test_golden_powersave_trace_is_byte_identical(tmp_path):
    """The powersave-governor platform run, byte for byte.

    This one locks down the new platform layers at once: the
    governor's PERF_CTL actuation, the EPP-biased operating point, the
    C-state idle-power path, phase idleness plumbing, and the
    ``cstate_rollover`` fault channel's draw order and event encoding.
    """
    fresh = tmp_path / "fresh.jsonl"
    write_trace_jsonl(golden_powersave_run(), str(fresh))
    assert fresh.read_bytes() == GOLDEN_POWERSAVE.read_bytes(), (
        "powersave-governor platform trace diverged from the golden "
        "reference; if intentional, regenerate with "
        "scripts/regen_golden_trace.py"
    )


def test_golden_powersave_trace_shape():
    lines = GOLDEN_POWERSAVE.read_text().splitlines()
    records = [json.loads(line) for line in lines]
    events = [r for r in records if "event" in r]
    samples = [r for r in records if "event" not in r]
    assert {e["event"] for e in events} == {"cstate_rollover"}
    # The EPP-192 hint pins powersave well below the 2.8 GHz ceiling.
    assert samples, "the pinned scenario records trace samples"
    assert all(s["core_freq_hz"] < 2.0e9 for s in samples)
