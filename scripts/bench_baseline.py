"""Scalar-vs-batch throughput baseline and regression gate.

Times one *locked* 64-cell sweep composition — every cell a full
application run — through both execution engines and records the
result in ``BENCH_simulator.json`` at the repository root:

    PYTHONPATH=src python scripts/bench_baseline.py --write   # refresh
    PYTHONPATH=src python scripts/bench_baseline.py --check   # CI gate

``--check`` re-measures and fails (exit 1) when either

* the batch engine's speedup over scalar drops below ``MIN_SPEEDUP``
  (3x — the committed baseline is ~5x; the floor absorbs runner
  noise, not regressions), or
* fresh scalar throughput falls below ``MIN_SCALAR_RATIO`` (80 %) of
  the committed baseline — the batch engine must never be paid for by
  slowing the scalar path down.

The composition is part of the file's contract: changing it requires
``--write`` and a justified diff.  Timings are min-of-``--reps`` so
one noisy rep cannot fail the gate; simulated-tick counts come from
the run results themselves and are engine-independent (the engines
are numerically identical — see tests/test_batch_equivalence.py).

Absolute ticks/s are not comparable across machines or interpreter
versions, so the baseline also records a *calibration* probe — a
fixed pure-Python arithmetic loop timed the same way — and the scalar
floor compares throughputs normalised by it.  A slower runner slows
probe and engine alike and passes; only the engine regressing
*relative to the interpreter* fails.  (The speedup floor is already a
same-run ratio and needs no normalisation.)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.config import ControllerConfig, EngineConfig, with_slowdown
from repro.core.registry import as_spec
from repro.sim.batch import run_batch
from repro.sim.run import build_engine
from repro.workloads.catalog import build_application

BASELINE = pathlib.Path(__file__).resolve().parents[1] / "BENCH_simulator.json"

#: The locked composition: 8 applications x {duf, dufp} x 4 tolerances
#: = 64 cells, one full-scale run each, seeds sequential over cells.
#: (MG is excluded deliberately: its 600 phases make phase-crossing
#: bookkeeping, not the per-tick physics, the dominant cost.)
APPS = ("BT", "CG", "EP", "FT", "LU", "UA", "SP", "HPL")
POLICIES = ("duf", "dufp")
TOLERANCES_PCT = (0.0, 5.0, 10.0, 20.0)
APP_SCALE = 1.0

MIN_SPEEDUP = 3.0
MIN_SCALAR_RATIO = 0.8


def calibrate(reps: int = 5, n: int = 2_000_000) -> float:
    """Interpreter-speed probe: fixed arithmetic loop-ops per second.

    Deliberately plain Python (no numpy) with the mix the scalar
    engine's hot path is made of — float multiply-add and compare —
    so machine and interpreter speed changes move probe and engine
    together.
    """
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        acc = 0.0
        x = 1.000000001
        for i in range(n):
            acc += x * i
            if acc > 1e12:
                acc *= 0.5
        best = min(best, time.perf_counter() - t0)
    return n / best


def build_cells():
    """The 64 unrun engines of the locked composition, in seed order."""
    engines = []
    seed = 0
    for app_name in APPS:
        app = build_application(app_name, scale=APP_SCALE)
        for policy in POLICIES:
            for tol in TOLERANCES_PCT:
                cfg = with_slowdown(ControllerConfig(), tol)
                engines.append(
                    build_engine(
                        app,
                        as_spec(policy).build(cfg),
                        controller_cfg=cfg,
                        seed=seed,
                        record_trace=False,
                    )
                )
                seed += 1
    return engines


def simulated_ticks(results) -> int:
    """Engine-steps the composition simulates (identical per engine)."""
    dt = EngineConfig().dt_s
    return round(
        sum(s.finish_time_s / dt for r in results for s in r.sockets)
    )


def measure(reps: int) -> dict:
    """min-of-``reps`` wall clock for both engines over the composition."""
    scalar_walls, batch_walls = [], []
    ticks = 0
    for rep in range(reps):
        engines = build_cells()
        t0 = time.perf_counter()
        results = [e.run() for e in engines]
        scalar_walls.append(time.perf_counter() - t0)
        ticks = simulated_ticks(results)

        engines = build_cells()
        t0 = time.perf_counter()
        run_batch(engines)
        batch_walls.append(time.perf_counter() - t0)
        print(
            f"rep {rep + 1}/{reps}: scalar {scalar_walls[-1]:.2f} s, "
            f"batch {batch_walls[-1]:.2f} s "
            f"({scalar_walls[-1] / batch_walls[-1]:.2f}x)",
            file=sys.stderr,
        )
    scalar_wall, batch_wall = min(scalar_walls), min(batch_walls)
    return {
        "schema": 1,
        "calibration_ops_per_s": round(calibrate(), 1),
        "composition": {
            "apps": list(APPS),
            "policies": list(POLICIES),
            "tolerances_pct": list(TOLERANCES_PCT),
            "app_scale": APP_SCALE,
            "cells": len(APPS) * len(POLICIES) * len(TOLERANCES_PCT),
        },
        "reps": reps,
        "simulated_ticks": ticks,
        "scalar": {
            "wall_s": round(scalar_wall, 4),
            "ticks_per_s": round(ticks / scalar_wall, 1),
        },
        "batch": {
            "wall_s": round(batch_wall, 4),
            "ticks_per_s": round(ticks / batch_wall, 1),
        },
        "speedup": round(scalar_wall / batch_wall, 3),
    }


def check(fresh: dict) -> list[str]:
    """Gate violations of ``fresh`` against the committed baseline."""
    if not BASELINE.exists():
        return [f"no committed baseline at {BASELINE}; run --write first"]
    committed = json.loads(BASELINE.read_text())
    problems = []
    if committed["composition"] != fresh["composition"]:
        problems.append(
            "benchmark composition drifted from the committed baseline; "
            "rerun --write and justify the diff"
        )
    if fresh["speedup"] < MIN_SPEEDUP:
        problems.append(
            f"batch speedup {fresh['speedup']:.2f}x fell below the "
            f"{MIN_SPEEDUP:.1f}x floor (committed: "
            f"{committed['speedup']:.2f}x)"
        )
    # Normalise the committed throughput to this machine's speed via
    # the calibration probe before applying the regression floor.
    machine = (
        fresh["calibration_ops_per_s"] / committed["calibration_ops_per_s"]
    )
    expected = committed["scalar"]["ticks_per_s"] * machine
    if fresh["scalar"]["ticks_per_s"] < MIN_SCALAR_RATIO * expected:
        problems.append(
            f"scalar throughput {fresh['scalar']['ticks_per_s']:.0f} "
            f"ticks/s regressed below {MIN_SCALAR_RATIO:.0%} of the "
            f"committed baseline ({committed['scalar']['ticks_per_s']:.0f} "
            f"ticks/s, {expected:.0f} after the {machine:.2f}x machine-"
            f"speed normalisation)"
        )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--write", action="store_true", help="record a new baseline"
    )
    mode.add_argument(
        "--check", action="store_true", help="gate against the baseline"
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        help="timing repetitions (default: 5 for --write, 3 for --check)",
    )
    args = parser.parse_args()

    reps = args.reps or (5 if args.write else 3)
    fresh = measure(reps)
    print(
        f"scalar {fresh['scalar']['wall_s']:.2f} s "
        f"({fresh['scalar']['ticks_per_s']:.0f} ticks/s), "
        f"batch {fresh['batch']['wall_s']:.2f} s "
        f"({fresh['batch']['ticks_per_s']:.0f} ticks/s), "
        f"speedup {fresh['speedup']:.2f}x over "
        f"{fresh['composition']['cells']} cells"
    )
    if args.write:
        BASELINE.write_text(json.dumps(fresh, indent=2) + "\n")
        print(f"wrote baseline to {BASELINE}")
        return 0
    problems = check(fresh)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("benchmark gate passed")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
