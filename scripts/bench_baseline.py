"""Scalar-vs-batch throughput baselines and regression gate.

Times two *locked* sweep compositions — every cell a full application
run — through both execution engines and records the result in
``BENCH_simulator.json`` at the repository root:

    PYTHONPATH=src python scripts/bench_baseline.py --write   # refresh
    PYTHONPATH=src python scripts/bench_baseline.py --check   # CI gate

The compositions exercise the regimes the batch engine and the
sharded scheduler must win:

* ``cells64`` — 8 applications x {duf, dufp} x 4 tolerances, one seed
  per cell, full scale: the original sweep-sized workload;
* ``cells1024`` — the same grid x 16 seeds: the lane-parallel
  controller path at scale, where per-run Python overhead would
  dominate a scatter/gather design;
* ``cells1024_sharded`` — the same 1024 engine-runs expressed as 64
  batch-engined ``RunSpec`` grid cells (16 runs each), executed
  through :func:`repro.experiments.executor.run_specs`: single-worker
  pooled batch versus the batch-sharded multiprocess scheduler at 8
  workers.  Its ``min_speedup`` floor (2.5x) is enforced only on
  machines with at least ``min_cores`` (8) CPUs — below that the
  measurement is recorded but cannot gate, since the speedup is a
  property of real parallel hardware.

``--check`` re-measures and fails (exit 1) when, for any composition,

* the batch engine's speedup over scalar (or, for the sharded
  composition on a big-enough machine, the multi-worker speedup over
  the single-worker pooled batch) drops below the composition's
  ``min_speedup`` floor (the floors sit well under the committed
  numbers; they absorb runner noise, not regressions), or
* fresh scalar throughput falls below ``MIN_SCALAR_RATIO`` (80 %) of
  the committed baseline — the batch engine must never be paid for by
  slowing the scalar path down.

``--json PATH`` additionally writes the fresh measurement plus the
gate verdict as machine-readable JSON (CI uploads it on failure, so a
tripped gate is diagnosable without re-running).

Each composition is part of the file's contract: changing one
requires ``--write`` and a justified diff.  Timings are min-of-reps
so one noisy rep cannot fail the gate; simulated-tick counts come
from the run results themselves and are engine-independent (the
engines are numerically identical — see
tests/test_batch_equivalence.py).

Absolute ticks/s are not comparable across machines or interpreter
versions, so the baseline also records a *calibration* probe — a
fixed pure-Python arithmetic loop timed the same way — and the scalar
floor compares throughputs normalised by it.  A slower runner slows
probe and engine alike and passes; only the engine regressing
*relative to the interpreter* fails.  (The speedup floors are already
same-run ratios and need no normalisation.)
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.config import ControllerConfig, EngineConfig, with_slowdown
from repro.core.registry import as_spec
from repro.experiments.executor import RunSpec, run_specs
from repro.sim.batch import run_batch
from repro.sim.run import build_engine
from repro.workloads.catalog import build_application

BASELINE = pathlib.Path(__file__).resolve().parents[1] / "BENCH_simulator.json"

#: Both compositions share the application/policy/tolerance grid; they
#: differ in how many seeds replicate each grid cell.  (MG is excluded
#: deliberately: its 600 phases make phase-crossing bookkeeping, not
#: the per-tick physics, the dominant cost.)
APPS = ("BT", "CG", "EP", "FT", "LU", "UA", "SP", "HPL")
POLICIES = ("duf", "dufp")
TOLERANCES_PCT = (0.0, 5.0, 10.0, 20.0)
APP_SCALE = 1.0

#: The locked compositions.  ``min_speedup`` floors sit at roughly
#: 60 % of the committed numbers so runner noise cannot trip the gate
#: but a real regression does.  The 1024-cell scalar pass is
#: expensive, so its rep counts are lower — at ~90 s a rep,
#: interference noise averages out within one rep.
COMPOSITIONS: dict[str, dict] = {
    "cells64": {
        "seeds_per_cell": 1,
        "min_speedup": 5.0,
        "write_reps": 5,
        "check_reps": 3,
    },
    "cells1024": {
        "seeds_per_cell": 16,
        "min_speedup": 15.0,
        "write_reps": 2,
        "check_reps": 1,
    },
    "cells1024_sharded": {
        "kind": "sharded",
        "seeds_per_cell": 16,
        "min_speedup": 2.5,
        "min_cores": 8,
        "target_workers": 8,
        "write_reps": 2,
        "check_reps": 1,
    },
}

MIN_SCALAR_RATIO = 0.8


def calibrate(reps: int = 5, n: int = 2_000_000) -> float:
    """Interpreter-speed probe: fixed arithmetic loop-ops per second.

    Deliberately plain Python (no numpy) with the mix the scalar
    engine's hot path is made of — float multiply-add and compare —
    so machine and interpreter speed changes move probe and engine
    together.
    """
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        acc = 0.0
        x = 1.000000001
        for i in range(n):
            acc += x * i
            if acc > 1e12:
                acc *= 0.5
        best = min(best, time.perf_counter() - t0)
    return n / best


def composition_spec(name: str) -> dict:
    """The locked, committed description of composition ``name``.

    Machine-independent by construction: the sharded composition pins
    ``target_workers``, while the workers/cores actually measured are
    recorded next to the timings, outside this contract.
    """
    conf = COMPOSITIONS[name]
    seeds = conf["seeds_per_cell"]
    spec = {
        "apps": list(APPS),
        "policies": list(POLICIES),
        "tolerances_pct": list(TOLERANCES_PCT),
        "app_scale": APP_SCALE,
        "seeds_per_cell": seeds,
        "cells": len(APPS) * len(POLICIES) * len(TOLERANCES_PCT) * seeds,
    }
    if conf.get("kind") == "sharded":
        spec.update(
            engine="batch",
            grid_cells=len(APPS) * len(POLICIES) * len(TOLERANCES_PCT),
            target_workers=conf["target_workers"],
            min_cores=conf["min_cores"],
        )
    return spec


def build_cells(name: str):
    """The unrun engines of composition ``name``, in seed order."""
    seeds_per_cell = COMPOSITIONS[name]["seeds_per_cell"]
    engines = []
    seed = 0
    for app_name in APPS:
        app = build_application(app_name, scale=APP_SCALE)
        for policy in POLICIES:
            for tol in TOLERANCES_PCT:
                for _ in range(seeds_per_cell):
                    cfg = with_slowdown(ControllerConfig(), tol)
                    engines.append(
                        build_engine(
                            app,
                            as_spec(policy).build(cfg),
                            controller_cfg=cfg,
                            seed=seed,
                            record_trace=False,
                        )
                    )
                    seed += 1
    return engines


def build_sharded_specs(name: str) -> list[RunSpec]:
    """The grid of batch-engined RunSpecs for a sharded composition."""
    runs = COMPOSITIONS[name]["seeds_per_cell"]
    specs = []
    for i, app_name in enumerate(APPS):
        for policy in POLICIES:
            for tol in TOLERANCES_PCT:
                cfg = with_slowdown(ControllerConfig(), tol)
                specs.append(
                    RunSpec(
                        app_name=app_name,
                        controller=policy,
                        controller_cfg=cfg,
                        runs=runs,
                        app_scale=APP_SCALE,
                        base_seed=1_000_000 * i,
                        engine="batch",
                        label=f"{app_name}/{policy}@{tol:g}",
                    )
                )
    return specs


def measure_sharded(name: str, reps: int) -> dict:
    """min-of-``reps`` wall clock: one-worker pooled batch vs sharded."""
    conf = COMPOSITIONS[name]
    cores = os.cpu_count() or 1
    workers = max(2, min(conf["target_workers"], cores))
    serial_walls, sharded_walls = [], []
    ticks = 0
    for rep in range(reps):
        specs = build_sharded_specs(name)
        t0 = time.perf_counter()
        _, summary = run_specs(specs, workers=1)
        serial_walls.append(time.perf_counter() - t0)
        ticks = round(sum(c.ticks for c in summary.cells))

        t0 = time.perf_counter()
        run_specs(specs, workers=workers)
        sharded_walls.append(time.perf_counter() - t0)
        print(
            f"{name} rep {rep + 1}/{reps}: "
            f"serial {serial_walls[-1]:.2f} s, "
            f"sharded(w={workers}) {sharded_walls[-1]:.2f} s "
            f"({serial_walls[-1] / sharded_walls[-1]:.2f}x)",
            file=sys.stderr,
        )
    serial_wall, sharded_wall = min(serial_walls), min(sharded_walls)
    return {
        "composition": composition_spec(name),
        "reps": reps,
        "simulated_ticks": ticks,
        "measured_workers": workers,
        "measured_cpu_count": cores,
        "serial": {
            "wall_s": round(serial_wall, 4),
            "ticks_per_s": round(ticks / serial_wall, 1),
        },
        "sharded": {
            "wall_s": round(sharded_wall, 4),
            "ticks_per_s": round(ticks / sharded_wall, 1),
        },
        "speedup": round(serial_wall / sharded_wall, 3),
    }


def simulated_ticks(results) -> int:
    """Engine-steps the composition simulates (identical per engine)."""
    dt = EngineConfig().dt_s
    return round(
        sum(s.finish_time_s / dt for r in results for s in r.sockets)
    )


def measure_composition(name: str, reps: int) -> dict:
    """min-of-``reps`` wall clock for both engines over ``name``."""
    scalar_walls, batch_walls = [], []
    ticks = 0
    for rep in range(reps):
        engines = build_cells(name)
        t0 = time.perf_counter()
        results = [e.run() for e in engines]
        scalar_walls.append(time.perf_counter() - t0)
        ticks = simulated_ticks(results)

        engines = build_cells(name)
        t0 = time.perf_counter()
        run_batch(engines)
        batch_walls.append(time.perf_counter() - t0)
        print(
            f"{name} rep {rep + 1}/{reps}: "
            f"scalar {scalar_walls[-1]:.2f} s, "
            f"batch {batch_walls[-1]:.2f} s "
            f"({scalar_walls[-1] / batch_walls[-1]:.2f}x)",
            file=sys.stderr,
        )
    scalar_wall, batch_wall = min(scalar_walls), min(batch_walls)
    return {
        "composition": composition_spec(name),
        "reps": reps,
        "simulated_ticks": ticks,
        "scalar": {
            "wall_s": round(scalar_wall, 4),
            "ticks_per_s": round(ticks / scalar_wall, 1),
        },
        "batch": {
            "wall_s": round(batch_wall, 4),
            "ticks_per_s": round(ticks / batch_wall, 1),
        },
        "speedup": round(scalar_wall / batch_wall, 3),
    }


def measure(write: bool, reps_override: int | None) -> dict:
    """Measure every composition; ``reps_override`` applies to all."""
    out = {
        "schema": 3,
        "calibration_ops_per_s": round(calibrate(), 1),
        "compositions": {},
    }
    for name, spec in COMPOSITIONS.items():
        reps = reps_override or (
            spec["write_reps"] if write else spec["check_reps"]
        )
        if spec.get("kind") == "sharded":
            out["compositions"][name] = measure_sharded(name, reps)
        else:
            out["compositions"][name] = measure_composition(name, reps)
    return out


def check(fresh: dict) -> list[str]:
    """Gate violations of ``fresh`` against the committed baseline."""
    if not BASELINE.exists():
        return [f"no committed baseline at {BASELINE}; run --write first"]
    committed = json.loads(BASELINE.read_text())
    if committed.get("schema") != fresh["schema"]:
        return [
            "committed baseline uses a different schema; rerun --write "
            "and justify the diff"
        ]
    problems = []
    machine = (
        fresh["calibration_ops_per_s"] / committed["calibration_ops_per_s"]
    )
    for name, floor_spec in COMPOSITIONS.items():
        f = fresh["compositions"][name]
        c = committed["compositions"].get(name)
        if c is None:
            problems.append(
                f"{name}: missing from the committed baseline; "
                "rerun --write and justify the diff"
            )
            continue
        if c["composition"] != f["composition"]:
            problems.append(
                f"{name}: benchmark composition drifted from the "
                "committed baseline; rerun --write and justify the diff"
            )
        min_speedup = floor_spec["min_speedup"]
        if floor_spec.get("kind") == "sharded":
            # The multi-worker speedup is a property of real parallel
            # hardware; below min_cores the measurement is informative
            # but cannot gate.  No throughput-ratio check either: the
            # calibration probe tracks the interpreter, not numpy or
            # process-spawn costs.
            cores = os.cpu_count() or 1
            if cores < floor_spec["min_cores"]:
                print(
                    f"{name}: {cores} cores < min_cores "
                    f"{floor_spec['min_cores']}; speedup floor not "
                    f"enforced (measured {f['speedup']:.2f}x)",
                    file=sys.stderr,
                )
            elif f["speedup"] < min_speedup:
                problems.append(
                    f"{name}: sharded speedup {f['speedup']:.2f}x over "
                    f"the single-worker pooled batch fell below the "
                    f"{min_speedup:.1f}x floor on a "
                    f"{cores}-core machine"
                )
            continue
        if f["speedup"] < min_speedup:
            problems.append(
                f"{name}: batch speedup {f['speedup']:.2f}x fell below "
                f"the {min_speedup:.1f}x floor (committed: "
                f"{c['speedup']:.2f}x)"
            )
        # Normalise the committed throughput to this machine's speed
        # via the calibration probe before applying the floor.
        expected = c["scalar"]["ticks_per_s"] * machine
        if f["scalar"]["ticks_per_s"] < MIN_SCALAR_RATIO * expected:
            problems.append(
                f"{name}: scalar throughput "
                f"{f['scalar']['ticks_per_s']:.0f} ticks/s regressed "
                f"below {MIN_SCALAR_RATIO:.0%} of the committed "
                f"baseline ({c['scalar']['ticks_per_s']:.0f} ticks/s, "
                f"{expected:.0f} after the {machine:.2f}x machine-"
                f"speed normalisation)"
            )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--write", action="store_true", help="record a new baseline"
    )
    mode.add_argument(
        "--check", action="store_true", help="gate against the baseline"
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        help="timing repetitions for every composition (default: each "
        "composition's committed write/check rep count)",
    )
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="also write the fresh measurement and gate verdict as JSON",
    )
    args = parser.parse_args()

    fresh = measure(args.write, args.reps)
    for name, f in fresh["compositions"].items():
        if "sharded" in f:
            print(
                f"{name}: serial {f['serial']['wall_s']:.2f} s "
                f"({f['serial']['ticks_per_s']:.0f} ticks/s), "
                f"sharded(w={f['measured_workers']}) "
                f"{f['sharded']['wall_s']:.2f} s "
                f"({f['sharded']['ticks_per_s']:.0f} ticks/s), "
                f"speedup {f['speedup']:.2f}x over "
                f"{f['composition']['cells']} cells"
            )
            continue
        print(
            f"{name}: scalar {f['scalar']['wall_s']:.2f} s "
            f"({f['scalar']['ticks_per_s']:.0f} ticks/s), "
            f"batch {f['batch']['wall_s']:.2f} s "
            f"({f['batch']['ticks_per_s']:.0f} ticks/s), "
            f"speedup {f['speedup']:.2f}x over "
            f"{f['composition']['cells']} cells"
        )
    if args.write:
        BASELINE.write_text(json.dumps(fresh, indent=2) + "\n")
        print(f"wrote baseline to {BASELINE}")
        if args.json:
            report = dict(fresh, gate={"checked": False, "problems": []})
            args.json.write_text(json.dumps(report, indent=2) + "\n")
        return 0
    problems = check(fresh)
    if args.json:
        report = dict(
            fresh,
            gate={
                "checked": True,
                "passed": not problems,
                "problems": problems,
                "floors": {
                    name: spec["min_speedup"]
                    for name, spec in COMPOSITIONS.items()
                },
                "min_scalar_ratio": MIN_SCALAR_RATIO,
            },
        )
        args.json.write_text(json.dumps(report, indent=2) + "\n")
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("benchmark gate passed")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
