"""Lint: concrete controller classes stay behind the policy registry.

The policy registry (``repro.core.registry``) is the single point where
concrete controller classes are wired to names; every other layer —
experiments, CLI, sim — selects controllers through
:class:`~repro.core.registry.PolicySpec`.  This linter walks the AST of
every Python file under the given roots and flags imports of concrete
controller class names outside ``src/repro/core/``.

Allowed everywhere: the abstract ``Controller`` protocol and plain
functions (``allocate_budget``).  ``src/repro/__init__.py`` is
whitelisted — it re-exports the concrete classes as public API.

Usage: python scripts/lint_policy_imports.py [root ...]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Concrete controller classes that only the registry may wire up.
CONTROLLER_CLASSES = frozenset(
    {
        "DUF",
        "DUFP",
        "DUFPF",
        "AdaptiveIntervalDUFP",
        "DefaultController",
        "StaticPowerCap",
        "StaticUncore",
        "TimeWindowCap",
        "DNPCLike",
        "BudgetedSocketController",
        "NodeBudgetCoordinator",
        # Frequency-governor baselines (repro.core.governors).
        "FrequencyGovernorBase",
        "PerformanceFreqGovernor",
        "PowersaveFreqGovernor",
        "OndemandFreqGovernor",
        "SchedutilFreqGovernor",
        # Hetero budget-split strategies (selected via split_policy()).
        "StaticSplit",
        "CoordinatedSplit",
        "FairShareSplit",
        # Fleet partitioning strategies (selected via fleet_policy()).
        # The abstract FleetPolicy marker stays importable, like the
        # Controller protocol and SplitPolicy.
        "StaticFleet",
        "DemandFleet",
        "FairShareFleet",
    }
)

#: Module paths (relative, POSIX-style) that may import the classes.
#: ``sim/hetero.py`` is the one engine-side exception: its legacy
#: ``coordinated=True/False`` constructor maps the flag onto concrete
#: split classes; everything else selects splits through the registry.
ALLOWED = (
    "src/repro/core/",
    "src/repro/__init__.py",
    "src/repro/sim/hetero.py",
)


def _is_allowed(relative: str) -> bool:
    return any(
        relative == entry or relative.startswith(entry) for entry in ALLOWED
    )


def check_file(path: Path, root: Path | None = None) -> list[str]:
    """Offending ``path:line: message`` strings for one file."""
    relative = path.as_posix()
    if root is not None:
        relative = path.resolve().relative_to(root.resolve()).as_posix()
    if _is_allowed(relative):
        return []
    tree = ast.parse(path.read_text(), filename=str(path))
    problems = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in CONTROLLER_CLASSES:
                    problems.append(
                        f"{path}:{node.lineno}: imports concrete controller "
                        f"{alias.name!r}; select policies through "
                        "repro.core.registry instead"
                    )
    return problems


def main(roots: list[str]) -> int:
    """Lint every ``*.py`` under the roots; exit 1 on any offence."""
    repo = Path(__file__).resolve().parent.parent
    problems: list[str] = []
    for root in roots or ["src"]:
        for path in sorted(Path(root).rglob("*.py")):
            problems.extend(check_file(path, root=repo))
    for p in problems:
        print(p)
    print(f"{len(problems)} out-of-registry controller imports")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
