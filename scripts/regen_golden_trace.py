"""Regenerate the golden fault-injection trace under tests/data/.

The golden trace pins the *exact* byte content of a fault-injected
DUFP run: sample encoding, event encoding, fault draw order and the
injector's RNG stream.  Any intentional change to one of those layers
must regenerate the file (and justify the diff in review):

    PYTHONPATH=src python scripts/regen_golden_trace.py

``tests/test_golden_trace.py`` byte-compares a fresh run against the
committed file.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.config import ControllerConfig, NoiseConfig
from repro.core.dufp import DUFP
from repro.sim.export import write_trace_jsonl
from repro.sim.faults import FaultPlan
from repro.sim.run import run_application
from repro.workloads.catalog import build_application

GOLDEN = pathlib.Path(__file__).resolve().parents[1] / "tests" / "data"

#: The pinned scenario; tests/test_golden_trace.py mirrors these.
SEED = 20220530  # the paper's IPDPSW date
PLAN = FaultPlan(
    msr_read_fail_rate=0.05,
    counter_stuck_rate=0.02,
    power_dropout_rate=0.03,
    cap_latch_fail_rate=0.10,
    latch_delay_rate=0.10,
    tick_miss_rate=0.02,
    tick_jitter_rate=0.05,
)
CFG = ControllerConfig(tolerated_slowdown=0.10)
QUIET = NoiseConfig(duration_jitter=0.0, counter_noise=0.0, power_noise=0.0)


def golden_run():
    """The run whose trace is pinned (shared with the test module)."""
    return run_application(
        build_application("CG", scale=0.3),
        lambda: DUFP(CFG),
        controller_cfg=CFG,
        noise=QUIET,
        seed=SEED,
        faults=PLAN,
    )


def main() -> None:
    GOLDEN.mkdir(parents=True, exist_ok=True)
    path = GOLDEN / "golden_dufp_trace.jsonl"
    result = golden_run()
    lines = write_trace_jsonl(result, str(path))
    events = sum(1 for e in result.fault_events)
    print(f"wrote {lines} lines ({events} fault events) to {path}")


if __name__ == "__main__":
    main()
