"""Regenerate the golden fault-injection trace under tests/data/.

The golden trace pins the *exact* byte content of a fault-injected
DUFP run: sample encoding, event encoding, fault draw order and the
injector's RNG stream.  Any intentional change to one of those layers
must regenerate the file (and justify the diff in review):

    PYTHONPATH=src python scripts/regen_golden_trace.py

``tests/test_golden_trace.py`` byte-compares a fresh run against the
committed file.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.config import ControllerConfig, NoiseConfig
from repro.core.dufp import DUFP
from repro.sim.export import write_trace_jsonl
from repro.sim.faults import FaultPlan
from repro.sim.run import run_application
from repro.workloads.catalog import build_application

GOLDEN = pathlib.Path(__file__).resolve().parents[1] / "tests" / "data"

#: The pinned scenario; tests/test_golden_trace.py mirrors these.
SEED = 20220530  # the paper's IPDPSW date
PLAN = FaultPlan(
    msr_read_fail_rate=0.05,
    counter_stuck_rate=0.02,
    power_dropout_rate=0.03,
    cap_latch_fail_rate=0.10,
    latch_delay_rate=0.10,
    tick_miss_rate=0.02,
    tick_jitter_rate=0.05,
)
CFG = ControllerConfig(tolerated_slowdown=0.10)
QUIET = NoiseConfig(duration_jitter=0.0, counter_noise=0.0, power_noise=0.0)


def golden_run():
    """The run whose trace is pinned (shared with the test module)."""
    return run_application(
        build_application("CG", scale=0.3),
        lambda: DUFP(CFG),
        controller_cfg=CFG,
        noise=QUIET,
        seed=SEED,
        faults=PLAN,
    )


#: The powersave-governor scenario: an EPP-hinted socket with the
#: C-state model on, running CG with idle gaps, under a fault plan
#: that exercises the C-state rollover channel.  Pins the governor's
#: PERF_CTL actuation, the EPP-biased operating point, the C-state
#: power path and the new event encodings in one trace.
POWERSAVE_SEED = 20220530
POWERSAVE_PLAN = FaultPlan(cstate_rollover_rate=0.05)


def _powersave_socket():
    from dataclasses import replace

    from repro.config import CStateConfig, EPBConfig, SocketConfig

    return replace(
        SocketConfig(), epb=EPBConfig(epp=192), cstates=CStateConfig()
    )


def _powersave_application():
    """CG at 0.3 scale with 20 % idle gaps in its memory phases."""
    from dataclasses import replace as dc_replace

    app = build_application("CG", scale=0.3)
    phases = tuple(
        dc_replace(p, idleness=0.2) if p.bytes > p.flops else p
        for p in app.phases
    )
    return type(app)(name="CG-idle", phases=phases, structure=app.structure)


def golden_powersave_run():
    """The powersave-governor run whose trace is pinned."""
    from repro.core.registry import make_spec
    from repro.hardware.topology import MachineConfig
    from repro.sim.machine import SimulatedMachine

    socket = _powersave_socket()
    return run_application(
        _powersave_application(),
        make_spec("governor-powersave").build(CFG),
        controller_cfg=CFG,
        machine=SimulatedMachine(MachineConfig(socket=socket, socket_count=1)),
        noise=QUIET,
        seed=POWERSAVE_SEED,
        faults=POWERSAVE_PLAN,
    )


#: The cluster scenario: two nodes (latency-sensitive WEB + streaming
#: BATCH) under a demand-driven fleet partition of a 150 W global
#: budget that genuinely caps (ceilings sum to 250 W), with a fault
#: plan exercising the per-node event id-shifting.  Pins the fleet
#: loop's allocation cadence, the node seed stride, the shared-sink
#: global socket ids and the streamed sample/event encodings at once.
CLUSTER_SEED = 20220530
CLUSTER_BUDGET_W = 150.0
CLUSTER_PLAN = FaultPlan(msr_read_fail_rate=0.05, cap_latch_fail_rate=0.10)


def golden_cluster_run(sink=None):
    """The cluster run whose streamed trace is pinned."""
    from repro.cluster import ClusterEngine, ClusterSpec
    from repro.core.registry import fleet_policy, make_spec

    cluster = ClusterSpec(
        node_count=2, node_apps=("WEB", "BATCH"), period_s=0.5
    )
    apps = [
        build_application(cluster.app_for(i, "WEB"), scale=0.3)
        for i in range(cluster.node_count)
    ]
    return ClusterEngine(
        applications=apps,
        cluster=cluster,
        policy=fleet_policy(
            make_spec("fleet-demand", budget_w=CLUSTER_BUDGET_W), CFG
        ),
        controller_cfg=CFG,
        noise=QUIET,
        seed=CLUSTER_SEED,
        trace_sink=sink,
        faults=CLUSTER_PLAN,
    ).run()


def main() -> None:
    from repro.sim.trace import StreamingTraceSink

    GOLDEN.mkdir(parents=True, exist_ok=True)
    for fname, run in (
        ("golden_dufp_trace.jsonl", golden_run),
        ("golden_powersave_trace.jsonl", golden_powersave_run),
    ):
        path = GOLDEN / fname
        result = run()
        lines = write_trace_jsonl(result, str(path))
        events = sum(1 for e in result.fault_events)
        print(f"wrote {lines} lines ({events} fault events) to {path}")
    path = GOLDEN / "golden_cluster_trace.jsonl"
    sink = StreamingTraceSink(path)
    result = golden_cluster_run(sink)
    print(
        f"wrote {sink.rows} lines ({len(result.fault_events)} fault "
        f"events) to {path}"
    )


if __name__ == "__main__":
    main()
