"""Calibration harness: quick sweep printed against the paper's targets."""
import sys, time
from repro.experiments.sweep import run_sweep

apps = sys.argv[1].split(",") if len(sys.argv) > 1 else None
runs = int(sys.argv[2]) if len(sys.argv) > 2 else 2
t0 = time.time()
sw = run_sweep(apps=apps, runs=runs)
print(f"sweep wall time: {time.time()-t0:.1f}s")
print(f"{'app':7s} {'tol':>4s} | {'DUF slow':>8s} {'P':>6s} {'DRAM':>6s} {'E':>6s} | {'DUFP slow':>9s} {'P':>6s} {'DRAM':>6s} {'E':>6s}")
for app in sw.apps:
    for tol in sw.tolerances_pct:
        d = sw.get(app, "duf", tol); p = sw.get(app, "dufp", tol)
        print(f"{app:7s} {tol:4.0f} | {d.slowdown_pct.mean:8.2f} {d.package_savings_pct.mean:6.2f} {d.dram_savings_pct.mean:6.2f} {d.energy_savings_pct.mean:6.2f} | "
              f"{p.slowdown_pct.mean:9.2f} {p.package_savings_pct.mean:6.2f} {p.dram_savings_pct.mean:6.2f} {p.energy_savings_pct.mean:6.2f}")
w, t = sw.respected_count("dufp")
print(f"DUFP respected tolerance: {w}/{t}")
