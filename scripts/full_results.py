"""Generate the full-protocol results used by EXPERIMENTS.md."""
import json, time
from repro.experiments.sweep import run_sweep
from repro.experiments.fig1 import fig1a, fig1b, fig1c
from repro.experiments.fig5 import fig5

t0 = time.time()
out = {}
sw = run_sweep(runs=10)
out["sweep"] = {
    f"{app}|{ctrl}|{tol:.0f}": {
        "slow": round(c.slowdown_pct.mean, 2),
        "pkg": round(c.package_savings_pct.mean, 2),
        "dram": round(c.dram_savings_pct.mean, 2),
        "energy": round(c.energy_savings_pct.mean, 2),
    }
    for (app, ctrl, tol), c in sw.comparisons.items()
}
w, t = sw.respected_count("dufp", slack=0.5)
out["respected"] = [w, t]
for name, fn in (("fig1a", fig1a), ("fig1b", fig1b), ("fig1c", fig1c)):
    r = fn(runs=10)
    out[name] = {row.label: [round(row.time_pct_of_default, 2), round(row.power_pct_of_budget, 2)] for row in r.rows}
f5 = fig5()
out["fig5"] = {"duf_ghz": round(f5.duf_avg_ghz, 2), "dufp_ghz": round(f5.dufp_avg_ghz, 2)}
out["wall_s"] = round(time.time() - t0, 1)
json.dump(out, open("/root/repo/scripts/full_results.json", "w"), indent=1)
print("done", out["wall_s"], "s; respected:", out["respected"])
