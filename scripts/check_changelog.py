"""CI gate: every change set must append a line to CHANGES.md.

CHANGES.md is the repo's session journal — one line per PR describing
what changed, so the next contributor (or CI archaeologist) does not
need to replay git history.  This script fails when the diff against
the given base ref adds no lines to it.

Usage: python scripts/check_changelog.py [base-ref]   (default origin/main)
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def added_changelog_lines(base: str) -> int:
    """Lines added to CHANGES.md between ``base`` and HEAD."""
    out = subprocess.run(
        ["git", "diff", "--numstat", f"{base}...HEAD", "--", "CHANGES.md"],
        capture_output=True,
        text=True,
        check=True,
        cwd=REPO,
    ).stdout.strip()
    if not out:
        return 0
    added = out.split()[0]
    return 0 if added == "-" else int(added)


def main(argv: list[str]) -> int:
    """Exit 0 when CHANGES.md gained at least one line, 1 otherwise."""
    base = argv[0] if argv else "origin/main"
    added = added_changelog_lines(base)
    if added < 1:
        print(
            f"CHANGES.md gained no lines relative to {base}: append one "
            "line describing this change set.",
            file=sys.stderr,
        )
        return 1
    print(f"CHANGES.md: +{added} line(s) relative to {base}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
