"""Minimal unused-import linter (no external dependencies).

Walks the AST of every Python file under the given roots and reports
imported names never referenced in the module.  ``__init__.py`` re-
exports are exempt when the name appears in ``__all__``.

Usage: python scripts/lint_imports.py [root ...]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path


def imported_names(tree: ast.Module):
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                yield name, node.lineno
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                yield (alias.asname or alias.name), node.lineno


def used_names(tree: ast.Module) -> set[str]:
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            base = node
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name):
                used.add(base.id)
    return used


def exported(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        for elt in node.value.elts:
                            if isinstance(elt, ast.Constant):
                                names.add(str(elt.value))
    return names


def string_annotations(tree: ast.Module) -> set[str]:
    """Names referenced inside string annotations (forward refs)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        ann = getattr(node, "annotation", None)
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            for token in ann.value.replace("[", " ").replace("]", " ").split():
                names.add(token.strip("\"'| ,"))
    return names


def check_file(path: Path) -> list[str]:
    source = path.read_text()
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    used = used_names(tree) | exported(tree) | string_annotations(tree)
    problems = []
    for name, lineno in imported_names(tree):
        if name == "annotations":  # from __future__ import annotations
            continue
        if "noqa" in lines[lineno - 1]:
            continue
        if name not in used and not name.startswith("_"):
            problems.append(f"{path}:{lineno}: unused import {name!r}")
    return problems


def main(roots: list[str]) -> int:
    problems: list[str] = []
    for root in roots or ["src"]:
        for path in sorted(Path(root).rglob("*.py")):
            problems.extend(check_file(path))
    for p in problems:
        print(p)
    print(f"{len(problems)} unused imports")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
