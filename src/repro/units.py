"""Unit helpers and conversions used across the simulator.

The library stores physical quantities in SI base units as plain floats:

* time — seconds
* frequency — hertz
* power — watts
* energy — joules
* bandwidth — bytes per second

The helpers here exist to make call sites read unambiguously
(``ghz(2.4)`` instead of a bare ``2.4e9``) and to centralise the handful
of non-trivial conversions (RAPL register units, percent ratios).
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Scalar constructors
# ---------------------------------------------------------------------------

KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

KB = 1e3
MB = 1e6
GB = 1e9
KIB = 1024.0
MIB = 1024.0**2
GIB = 1024.0**3

MICRO = 1e-6
MILLI = 1e-3


def khz(value: float) -> float:
    """Kilohertz to hertz."""
    return value * KHZ


def mhz(value: float) -> float:
    """Megahertz to hertz."""
    return value * MHZ


def ghz(value: float) -> float:
    """Gigahertz to hertz."""
    return value * GHZ


def to_ghz(hz: float) -> float:
    """Hertz to gigahertz."""
    return hz / GHZ


def gb_per_s(value: float) -> float:
    """GB/s (decimal) to bytes per second."""
    return value * GB


def to_gb_per_s(bps: float) -> float:
    """Bytes per second to GB/s (decimal)."""
    return bps / GB


def gflops(value: float) -> float:
    """GFLOP/s to FLOP/s."""
    return value * 1e9


def to_gflops(flops: float) -> float:
    """FLOP/s to GFLOP/s."""
    return flops / 1e9


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return value * MILLI


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * MICRO


def watts_to_uw(watts: float) -> int:
    """Watts to integer microwatts (powercap sysfs unit)."""
    return int(round(watts / MICRO))


def uw_to_watts(uw: float) -> float:
    """Microwatts to watts."""
    return uw * MICRO


def seconds_to_us(seconds: float) -> int:
    """Seconds to integer microseconds (powercap sysfs time unit)."""
    return int(round(seconds / MICRO))


def us_to_seconds(micro: float) -> float:
    """Microseconds to seconds."""
    return micro * MICRO


# ---------------------------------------------------------------------------
# Ratios and percentages
# ---------------------------------------------------------------------------


def percent(fraction: float) -> float:
    """Fraction (0.05) to percent (5.0)."""
    return fraction * 100.0


def fraction(pct: float) -> float:
    """Percent (5.0) to fraction (0.05)."""
    return pct / 100.0


def ratio_over(value: float, reference: float) -> float:
    """``value / reference`` guarding against a zero reference."""
    if reference == 0.0:
        raise ZeroDivisionError("ratio_over: reference value is zero")
    return value / reference


def percent_change(value: float, reference: float) -> float:
    """Signed percent change of ``value`` relative to ``reference``.

    Positive means ``value`` is larger than ``reference`` — for an
    execution time this is a slowdown, for power it is an increase.
    """
    return percent(ratio_over(value, reference) - 1.0)


def percent_savings(value: float, reference: float) -> float:
    """Percent *reduction* of ``value`` relative to ``reference``.

    Positive means ``value`` improved (is lower than ``reference``):
    ``percent_savings(90, 100) == 10.0``.
    """
    return -percent_change(value, reference)


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into ``[lo, hi]``; ``lo`` must not exceed ``hi``."""
    if lo > hi:
        raise ValueError(f"clamp: lo={lo!r} > hi={hi!r}")
    return min(max(value, lo), hi)


def snap_to_step(value: float, step: float, *, base: float = 0.0) -> float:
    """Snap ``value`` to the nearest multiple of ``step`` above ``base``.

    Used for frequency steps (100 MHz) and power-cap steps (5 W) so that
    actuators only take values the hardware exposes.
    """
    if step <= 0:
        raise ValueError(f"snap_to_step: non-positive step {step!r}")
    return base + round((value - base) / step) * step


def smooth_max(a: float, b: float, sharpness: float = 6.0) -> float:
    """A differentiable approximation of ``max(a, b)`` (p-norm).

    Used by the roofline execution model: the true execution time of a
    phase lies between perfect compute/memory overlap (``max``) and no
    overlap (``a + b``); the p-norm with ``sharpness`` ≈ 6 sits close to
    ``max`` with a small additive penalty when the two terms are
    comparable, matching measured behaviour on balanced phases.
    """
    if a < 0 or b < 0:
        raise ValueError("smooth_max: operands must be non-negative")
    if a == 0.0 and b == 0.0:
        return 0.0
    m = max(a, b)
    # Factor out the max for numerical stability.
    return m * ((a / m) ** sharpness + (b / m) ** sharpness) ** (1.0 / sharpness)


def time_weighted_mean(values, durations) -> float:
    """Mean of ``values`` weighted by the matching ``durations``."""
    values = list(values)
    durations = list(durations)
    if len(values) != len(durations):
        raise ValueError("time_weighted_mean: length mismatch")
    total = math.fsum(durations)
    if total <= 0.0:
        raise ValueError("time_weighted_mean: total duration is not positive")
    return math.fsum(v * d for v, d in zip(values, durations)) / total
