"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still distinguishing hardware-model errors from controller or
experiment errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class HardwareError(ReproError):
    """Base class for simulated-hardware errors."""


class MSRError(HardwareError):
    """Invalid MSR access (unknown address, reserved bits, bad width)."""


class MSRPermissionError(MSRError):
    """Write attempted on a read-only MSR."""


class RAPLError(HardwareError):
    """Invalid RAPL operation (bad domain, limit out of range, locked)."""


class FrequencyError(HardwareError):
    """Requested frequency outside the supported P-state/uncore range."""


class PowercapError(ReproError):
    """Invalid operation on the powercap sysfs emulation."""


class PAPIError(ReproError):
    """PAPI-layer failure (unknown event, bad event-set state)."""


class EventSetStateError(PAPIError):
    """Event-set operation illegal in its current lifecycle state."""


class WorkloadError(ReproError):
    """A workload/application definition is invalid."""


class SimulationError(ReproError):
    """The simulation engine reached an invalid state."""


class FaultInjectionError(SimulationError):
    """A fault-injection plan or injector was malformed or misused."""


class ControllerError(ReproError):
    """A runtime controller (DUF/DUFP/baseline) was misused."""


class ExperimentError(ReproError):
    """An experiment harness failure (unknown id, invalid protocol)."""


class PolicyError(ReproError):
    """A policy-registry failure (unknown policy, bad parameters)."""
