"""PAPI event-set lifecycle: create → add → start → read/accum → stop.

Semantics follow the PAPI C API:

* events can only be added while the set is stopped;
* ``start`` latches the raw counters and zeroes the virtual ones;
* ``read`` returns counts accumulated since ``start`` (or the last
  ``reset``) without stopping;
* ``stop`` returns the final counts and returns the set to stopped;
* wrap-prone counters (RAPL energy) are delta-corrected modulo their
  wrap range on every read, so a single wrap between consecutive reads
  is invisible to callers — exactly what the PAPI rapl component does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import EventSetStateError, PAPIError
from .components import ComponentSet
from .events import Event

__all__ = ["EventSet", "EventSetState"]


class EventSetState(enum.Enum):
    """PAPI event-set lifecycle states."""

    STOPPED = "stopped"
    RUNNING = "running"


@dataclass
class _Slot:
    event: Event
    #: Raw counter value at start / last read.
    last_raw: int = 0
    #: Accumulated virtual count since start/reset.
    accumulated: int = 0
    #: Bound raw-read callable and wrap modulus, cached at ``start``
    #: (events cannot change while the set is running).
    reader: object = None
    wrap: int | None = None


@dataclass
class EventSet:
    """An ordered set of events counted together."""

    components: ComponentSet
    _slots: list[_Slot] = field(default_factory=list)
    state: EventSetState = EventSetState.STOPPED

    def add_event(self, name_or_code: str | int) -> None:
        """Add an event by name or code; duplicates are rejected."""
        if self.state is not EventSetState.STOPPED:
            raise EventSetStateError("cannot add events to a running set")
        event = self.components.registry.resolve(name_or_code)
        if any(s.event.code == event.code for s in self._slots):
            raise PAPIError(f"event {event.name!r} already in set")
        self._slots.append(_Slot(event))

    def remove_event(self, name_or_code: str | int) -> None:
        if self.state is not EventSetState.STOPPED:
            raise EventSetStateError("cannot remove events from a running set")
        event = self.components.registry.resolve(name_or_code)
        before = len(self._slots)
        self._slots = [s for s in self._slots if s.event.code != event.code]
        if len(self._slots) == before:
            raise PAPIError(f"event {event.name!r} not in set")

    @property
    def events(self) -> tuple[Event, ...]:
        return tuple(s.event for s in self._slots)

    def start(self) -> None:
        if self.state is EventSetState.RUNNING:
            raise EventSetStateError("event set already running")
        if not self._slots:
            raise EventSetStateError("cannot start an empty event set")
        for slot in self._slots:
            slot.reader = self.components.reader(slot.event)
            slot.wrap = self.components.wrap_range(slot.event)
            slot.last_raw = slot.reader()
            slot.accumulated = 0
        self.state = EventSetState.RUNNING

    def _advance(self) -> None:
        for slot in self._slots:
            raw = slot.reader()
            wrap = slot.wrap
            if wrap is None:
                delta = raw - slot.last_raw
                if delta < 0:
                    raise PAPIError(
                        f"monotonic counter {slot.event.name!r} went backwards"
                    )
            else:
                delta = (raw - slot.last_raw) % wrap
            slot.last_raw = raw
            slot.accumulated += delta

    def read(self) -> tuple[int, ...]:
        """Counts since start/reset; the set keeps running."""
        if self.state is not EventSetState.RUNNING:
            raise EventSetStateError("read on a stopped event set")
        self._advance()
        return tuple(s.accumulated for s in self._slots)

    def read_reset(self) -> tuple[int, ...]:
        """``read`` immediately followed by ``reset``, with one raw read.

        No simulated time can pass between the two calls, so the second
        advance's deltas are identically zero; folding them into one
        keeps the returned counts and the set state bit-for-bit equal to
        the two-call sequence while halving the raw-counter reads.
        """
        if self.state is not EventSetState.RUNNING:
            raise EventSetStateError("read on a stopped event set")
        self._advance()
        out = tuple(s.accumulated for s in self._slots)
        for slot in self._slots:
            slot.accumulated = 0
        return out

    def reset(self) -> None:
        """Zero the virtual counters without stopping."""
        if self.state is not EventSetState.RUNNING:
            raise EventSetStateError("reset on a stopped event set")
        self._advance()
        for slot in self._slots:
            slot.accumulated = 0

    def stop(self) -> tuple[int, ...]:
        """Final counts; the set returns to stopped."""
        if self.state is not EventSetState.RUNNING:
            raise EventSetStateError("stop on a stopped event set")
        self._advance()
        self.state = EventSetState.STOPPED
        return tuple(s.accumulated for s in self._slots)
