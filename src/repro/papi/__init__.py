"""PAPI-style measurement layer over the simulated hardware.

DUF and DUFP read FLOPS, memory bandwidth and energy through PAPI on
the real machine.  This package reproduces the parts of the PAPI
contract the controllers rely on: named events resolved through
components, event-set lifecycle (create → add → start → read/stop),
monotonically increasing raw counters with hardware wraparound, and a
high-level interval meter that turns counter deltas into the derived
rates (FLOPS/s, bytes/s, watts) the control algorithms consume.
"""

from .events import Event, EventRegistry, default_registry
from .eventset import EventSet, EventSetState
from .components import PerfComponent, RAPLComponent, bind_components
from .highlevel import IntervalMeter, Measurement

__all__ = [
    "Event",
    "EventRegistry",
    "default_registry",
    "EventSet",
    "EventSetState",
    "PerfComponent",
    "RAPLComponent",
    "bind_components",
    "IntervalMeter",
    "Measurement",
]
