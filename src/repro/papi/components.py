"""PAPI components: the glue between events and the simulated socket.

A component owns the raw-counter read path for its events.  Raw values
behave like the hardware's: monotonically increasing except where the
underlying register wraps (RAPL energy), in which case the wrapped
value is surfaced and the event-set layer is responsible for delta
arithmetic — same contract as real PAPI.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PAPIError
from ..hardware.processor import SimulatedProcessor
from .events import CACHE_LINE_BYTES, Event, EventRegistry, default_registry

__all__ = ["PerfComponent", "RAPLComponent", "bind_components", "ComponentSet"]


@dataclass
class PerfComponent:
    """perf_event + uncore counters of one socket."""

    processor: SimulatedProcessor

    def read_raw(self, event: Event) -> int:
        return self.reader(event)()

    def reader(self, event: Event):
        """Bound zero-arg read callable, resolving the dispatch once."""
        proc = self.processor
        if event.name == "PAPI_DP_OPS":
            return lambda: int(proc.flops_retired)
        if event.name == "skx_unc_imc::UNC_M_CAS_COUNT:ALL":
            return lambda: int(proc.bytes_transferred / CACHE_LINE_BYTES)
        raise PAPIError(f"perf component cannot read {event.name!r}")


@dataclass
class RAPLComponent:
    """RAPL energy counters of one socket, scaled to nanojoules.

    The PAPI rapl component multiplies the raw register by the energy
    unit and reports nJ; the wrapped register makes the nJ value wrap
    too, at ``2**32 × energy_unit × 1e9``.
    """

    processor: SimulatedProcessor

    def read_raw(self, event: Event) -> int:
        return self.reader(event)()

    def reader(self, event: Event):
        """Bound zero-arg read callable, resolving the dispatch once."""
        rapl = self.processor.rapl
        if event.name.startswith("rapl:::PACKAGE_ENERGY"):
            domain = rapl.package
        elif event.name.startswith("rapl:::DRAM_ENERGY"):
            domain = rapl.dram
        else:
            raise PAPIError(f"rapl component cannot read {event.name!r}")
        return lambda: int(domain.counter * domain.energy_unit_j * 1e9)

    def wrap_range_nj(self) -> int:
        """The nJ value at which the scaled counter wraps."""
        domain = self.processor.rapl.package
        return int((1 << domain.counter_bits) * domain.energy_unit_j * 1e9)


@dataclass
class ComponentSet:
    """All components of one socket plus the registry that names them."""

    registry: EventRegistry
    perf: PerfComponent
    rapl: RAPLComponent

    def read_raw(self, event: Event) -> int:
        if event.component in ("perf_event", "perf_event_uncore"):
            return self.perf.read_raw(event)
        if event.component == "rapl":
            return self.rapl.read_raw(event)
        raise PAPIError(f"no component {event.component!r}")

    def reader(self, event: Event):
        """Bound zero-arg read callable for hot paths (see components)."""
        if event.component in ("perf_event", "perf_event_uncore"):
            return self.perf.reader(event)
        if event.component == "rapl":
            return self.rapl.reader(event)
        raise PAPIError(f"no component {event.component!r}")

    def wrap_range(self, event: Event) -> int | None:
        """Counter wrap modulus for the event, or ``None`` if monotonic."""
        if event.component == "rapl":
            return self.rapl.wrap_range_nj()
        return None


def bind_components(
    processor: SimulatedProcessor, registry: EventRegistry | None = None
) -> ComponentSet:
    """Build the component set for one socket."""
    return ComponentSet(
        registry=registry or default_registry(),
        perf=PerfComponent(processor),
        rapl=RAPLComponent(processor),
    )
