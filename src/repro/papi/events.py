"""PAPI event names, codes and the registry that resolves them.

The names mirror the events the real tool uses on Skylake-SP:

* ``PAPI_DP_OPS`` — retired double-precision FLOPs (preset);
* ``skx_unc_imc::UNC_M_CAS_COUNT:ALL`` — DRAM CAS operations, one per
  64-byte line, summed over the socket's memory controllers;
* ``rapl:::PACKAGE_ENERGY:PACKAGE<n>`` / ``rapl:::DRAM_ENERGY:PACKAGE<n>``
  — energy counters in nanojoules, as the PAPI rapl component scales
  them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PAPIError

__all__ = ["Event", "EventRegistry", "default_registry", "CACHE_LINE_BYTES"]

#: DRAM transaction granularity: one CAS moves one 64-byte line.
CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class Event:
    """A resolvable PAPI event."""

    name: str
    code: int
    component: str
    description: str
    units: str


class EventRegistry:
    """Name → event resolution, as ``PAPI_event_name_to_code`` does."""

    def __init__(self) -> None:
        self._by_name: dict[str, Event] = {}
        self._by_code: dict[int, Event] = {}

    def register(self, event: Event) -> None:
        if event.name in self._by_name:
            raise PAPIError(f"event {event.name!r} already registered")
        if event.code in self._by_code:
            raise PAPIError(f"event code {event.code:#x} already registered")
        self._by_name[event.name] = event
        self._by_code[event.code] = event

    def resolve(self, name_or_code: str | int) -> Event:
        if isinstance(name_or_code, int):
            event = self._by_code.get(name_or_code)
        else:
            event = self._by_name.get(name_or_code)
        if event is None:
            raise PAPIError(f"unknown PAPI event {name_or_code!r}")
        return event

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._by_name))

    def by_component(self, component: str) -> tuple[Event, ...]:
        return tuple(
            e for e in self._by_name.values() if e.component == component
        )


def default_registry(socket_count: int = 1) -> EventRegistry:
    """The event set the DUFP tool stack uses, for ``socket_count`` sockets."""
    reg = EventRegistry()
    reg.register(
        Event(
            name="PAPI_DP_OPS",
            code=0x80000068,
            component="perf_event",
            description="Retired double-precision floating-point operations",
            units="ops",
        )
    )
    reg.register(
        Event(
            name="skx_unc_imc::UNC_M_CAS_COUNT:ALL",
            code=0x40000000,
            component="perf_event_uncore",
            description="DRAM CAS commands, all channels (64 B per count)",
            units="transactions",
        )
    )
    for sock in range(socket_count):
        reg.register(
            Event(
                name=f"rapl:::PACKAGE_ENERGY:PACKAGE{sock}",
                code=0x44000000 + 2 * sock,
                component="rapl",
                description=f"Package {sock} energy consumed",
                units="nJ",
            )
        )
        reg.register(
            Event(
                name=f"rapl:::DRAM_ENERGY:PACKAGE{sock}",
                code=0x44000001 + 2 * sock,
                component="rapl",
                description=f"Package {sock} DRAM energy consumed",
                units="nJ",
            )
        )
    return reg
