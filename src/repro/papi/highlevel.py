"""High-level interval metering: the numbers the controllers consume.

Every controller tick, DUFP needs four derived quantities for its
socket: FLOPS/s, memory bandwidth, package power and DRAM power.
:class:`IntervalMeter` owns an event set with the four underlying
events, reads it once per tick, and converts deltas to rates.

Real measurements are noisy — the paper keeps an explicit
"equivalent within measurement error" branch in the algorithm because
of it — so the meter optionally injects multiplicative Gaussian noise
from a seeded generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..errors import MSRError, PAPIError
from ..hardware.processor import SimulatedProcessor
from .components import bind_components
from .events import CACHE_LINE_BYTES
from .eventset import EventSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.faults import FaultInjector

__all__ = ["Measurement", "IntervalMeter"]


@dataclass(frozen=True)
class Measurement:
    """Derived rates over one controller interval."""

    #: Interval length, seconds.
    dt_s: float
    #: Floating-point rate, FLOP/s.
    flops_per_s: float
    #: Memory bandwidth, bytes/s.
    bytes_per_s: float
    #: Average package power, watts.
    package_power_w: float
    #: Average DRAM power, watts.
    dram_power_w: float

    @property
    def operational_intensity(self) -> float:
        """FLOPS/s over bandwidth, the paper's phase classifier.

        Returns ``inf`` for an interval with no measured memory traffic
        (a compute-only phase is infinitely CPU-intensive).
        """
        if self.bytes_per_s <= 0.0:
            return float("inf")
        return self.flops_per_s / self.bytes_per_s

    @property
    def finite(self) -> bool:
        """True when every rate is a finite number.

        A dropped power-meter read (or any other telemetry fault)
        surfaces as NaN here; the controller runtime checks this before
        letting a controller act on the sample.
        """
        return (
            math.isfinite(self.flops_per_s)
            and math.isfinite(self.bytes_per_s)
            and math.isfinite(self.package_power_w)
            and math.isfinite(self.dram_power_w)
        )


@dataclass
class IntervalMeter:
    """Per-socket measurement front-end for the controllers."""

    processor: SimulatedProcessor
    socket_id: int = 0
    rng: np.random.Generator | None = None
    counter_noise: float = 0.0
    power_noise: float = 0.0
    #: Optional fault injector; ``None`` keeps the fault-free fast path
    #: (no extra draws, no extra branches reachable).
    faults: "FaultInjector | None" = None
    _events: EventSet = field(init=False)
    _started: bool = field(init=False, default=False)
    _last: Measurement | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.counter_noise < 0 or self.power_noise < 0:
            raise PAPIError("noise levels must be non-negative")
        if (self.counter_noise or self.power_noise) and self.rng is None:
            raise PAPIError("noise injection requires a seeded generator")
        components = bind_components(self.processor)
        es = EventSet(components)
        es.add_event("PAPI_DP_OPS")
        es.add_event("skx_unc_imc::UNC_M_CAS_COUNT:ALL")
        es.add_event("rapl:::PACKAGE_ENERGY:PACKAGE0")
        es.add_event("rapl:::DRAM_ENERGY:PACKAGE0")
        self._events = es

    def start(self) -> None:
        """Begin metering; the first :meth:`sample` measures from here."""
        self._events.start()
        self._started = True

    def sample(self, dt_s: float) -> Measurement:
        """Read the interval that just elapsed and reset for the next.

        Fault channels (when an injector is attached) perturb the read
        exactly where real telemetry breaks: an injected ``rdmsr``
        failure raises *before* the counters are consumed (they keep
        accumulating, like a missed read), a stuck read returns the
        previous interval's values verbatim, a rollover collapses the
        interval's energy to zero (finite but wrong), and a power-meter
        dropout yields NaN power for the runtime to catch.
        """
        if not self._started:
            raise PAPIError("IntervalMeter.sample before start()")
        if dt_s <= 0:
            raise PAPIError("sample: non-positive interval")
        inj = self.faults
        if inj is not None and inj.msr_read_fails(self.socket_id):
            raise MSRError(
                f"injected rdmsr failure on socket {self.socket_id}"
            )
        flops, cas, pkg_nj, dram_nj = self._events.read_reset()
        dropout = False
        if inj is not None:
            if self._last is not None and inj.counter_stuck(self.socket_id):
                return self._last
            if inj.counter_rollover(self.socket_id):
                pkg_nj = dram_nj = 0
            dropout = inj.power_dropout(self.socket_id)
        # Draw order (flops, bytes, pkg, dram) matches the historic
        # argument-evaluation order: the fault-free noise stream is
        # bit-for-bit unchanged.
        flops_v = self._noisy(flops / dt_s, self.counter_noise)
        bytes_v = self._noisy(cas * CACHE_LINE_BYTES / dt_s, self.counter_noise)
        if dropout:
            pkg_w = dram_w = float("nan")
        else:
            pkg_w = self._noisy(pkg_nj * 1e-9 / dt_s, self.power_noise)
            dram_w = self._noisy(dram_nj * 1e-9 / dt_s, self.power_noise)
        m = Measurement(
            dt_s=dt_s,
            flops_per_s=flops_v,
            bytes_per_s=bytes_v,
            package_power_w=pkg_w,
            dram_power_w=dram_w,
        )
        if m.finite:
            self._last = m
        return m

    def _noisy(self, value: float, sigma: float) -> float:
        if sigma <= 0.0 or self.rng is None or value == 0.0:
            return value
        return max(value * (1.0 + sigma * self.rng.standard_normal()), 0.0)
