"""Configuration dataclasses for the simulated machine and controllers.

All tunable model constants live here, grouped by subsystem, so the whole
simulation can be calibrated from one place.  The defaults describe one
socket of ``yeti-2`` from the paper's testbed (Intel Xeon Gold 6130,
Skylake-SP): 16 cores, uncore 1.2–2.4 GHz, RAPL PL1 = 125 W /
PL2 = 150 W, all-core turbo 2.8 GHz.

Calibration anchors (paper, Section IV/V):

* default package power of a bandwidth-saturating run sits "almost at the
  maximum processor budget" (≈ 120 W of the 125 W PL1);
* dropping the uncore from 2.4 GHz to 1.2 GHz on a compute-only workload
  (EP) recovers on the order of 15–20 W;
* power caps below ≈ 65 W begin to throttle memory bandwidth, which is
  why the paper floors the dynamic cap at 65 W.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, field, replace

from .errors import ConfigurationError
from .units import ghz, mhz

__all__ = [
    "CoreConfig",
    "CStateConfig",
    "EPBConfig",
    "ThermalConfig",
    "UncoreConfig",
    "RAPLConfig",
    "PowerModelConfig",
    "MemoryConfig",
    "SocketConfig",
    "MachineConfig",
    "ControllerConfig",
    "NoiseConfig",
    "EngineConfig",
    "yeti_socket_config",
    "yeti_machine_config",
    "canonical_value",
    "config_digest",
    "validate_bounded_fields",
]


def validate_bounded_fields(obj) -> None:
    """Range-check every dataclass field carrying ``range`` metadata.

    A field declared as ``field(default=0.0, metadata={"range": (lo,
    hi)})`` must satisfy ``lo <= value <= hi`` (``"hi_open": True``
    makes the upper bound exclusive).  Violations raise
    :class:`ConfigurationError` naming the offending field, so adding a
    bounded parameter to a config class can never silently escape
    validation — the historic failure mode of listing field names by
    hand in each ``validate``.
    """
    for f in dataclasses.fields(obj):
        bound = f.metadata.get("range")
        if bound is None:
            continue
        lo, hi = bound
        value = getattr(obj, f.name)
        hi_open = f.metadata.get("hi_open", False)
        ok = (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and lo <= value
            and (value < hi if hi_open else value <= hi)
        )
        if not ok:
            span = f"[{lo}, {hi}{')' if hi_open else ']'}"
            raise ConfigurationError(
                f"{type(obj).__name__}.{f.name} must be in {span} "
                f"(got {value!r})"
            )


@dataclass(frozen=True)
class CoreConfig:
    """Core clock domain: P-states and the voltage/frequency curve."""

    count: int = 16
    min_freq_hz: float = ghz(1.0)
    base_freq_hz: float = ghz(2.1)
    #: Maximum sustained all-core turbo; the paper's Fig. 5 caption notes
    #: 2.8 GHz is the maximum achieved with all 16 cores active.
    max_freq_hz: float = ghz(2.8)
    step_hz: float = mhz(100)
    #: Voltage at ``min_freq_hz`` (volts).  Skylake-SP cores floor
    #: around 0.8 V — deep power caps therefore save less than a naive
    #: V ∝ f model predicts, which is what turns 20 %-tolerance runs
    #: into net energy losses in the paper.
    v_min: float = 0.80
    #: Voltage at ``max_freq_hz`` (volts); linear in between.
    v_max: float = 1.02
    #: AVX frequency licenses (opt-in): phases achieving at least this
    #: many FLOPs/cycle/core run under the derated turbo below.  Real
    #: Skylake-SP drops to its AVX-512 license frequency under wide
    #: vector code; the paper's runs do not isolate the effect, so the
    #: default (``inf``) disables it to keep the calibration intact.
    avx_license_fpc: float = float("inf")
    #: All-core turbo while an AVX license is active, Hz.
    avx_max_freq_hz: float = ghz(2.4)

    def validate(self) -> None:
        if self.count <= 0:
            raise ConfigurationError("CoreConfig.count must be positive")
        if not (0 < self.min_freq_hz <= self.base_freq_hz <= self.max_freq_hz):
            raise ConfigurationError(
                "CoreConfig frequencies must satisfy 0 < min <= base <= max"
            )
        if self.step_hz <= 0:
            raise ConfigurationError("CoreConfig.step_hz must be positive")
        if not (0 < self.v_min <= self.v_max):
            raise ConfigurationError("CoreConfig voltages must satisfy 0 < v_min <= v_max")
        if self.avx_license_fpc <= 0:
            raise ConfigurationError("CoreConfig.avx_license_fpc must be positive")
        if not self.min_freq_hz <= self.avx_max_freq_hz <= self.max_freq_hz:
            raise ConfigurationError(
                "CoreConfig.avx_max_freq_hz must lie within [min_freq, max_freq]"
            )

    def voltage_at(self, freq_hz: float) -> float:
        """Linear V/f curve between ``(min_freq, v_min)`` and ``(max_freq, v_max)``."""
        if self.max_freq_hz == self.min_freq_hz:
            return self.v_max
        t = (freq_hz - self.min_freq_hz) / (self.max_freq_hz - self.min_freq_hz)
        t = min(max(t, 0.0), 1.0)
        return self.v_min + t * (self.v_max - self.v_min)


@dataclass(frozen=True)
class UncoreConfig:
    """Uncore clock domain (LLC, mesh, memory controllers)."""

    min_freq_hz: float = ghz(1.2)
    max_freq_hz: float = ghz(2.4)
    step_hz: float = mhz(100)
    #: Voltage at the uncore minimum / maximum frequency.
    v_min: float = 0.70
    v_max: float = 0.95
    #: Number of independently clocked uncore dies (TPMI-era UFS exposes
    #: one frequency domain per compute die).  The default single-die
    #: layout is the legacy Skylake-SP path and is preserved bit-for-bit;
    #: the field vanishes from cache digests while it holds the default.
    die_count: int = field(default=1, metadata={"digest_omit_default": True})
    #: How unevenly memory traffic lands across dies: die *i* of *N* sees
    #: its traffic scaled by ``1 + spread·(N-1-2i)/(N-1)`` (die 0 hottest,
    #: last die coldest; weights average to 1 so aggregate demand is
    #: unchanged).  Zero spreads traffic evenly.
    die_traffic_spread: float = field(
        default=0.5,
        metadata={"range": (0.0, 1.0), "digest_omit_default": True},
    )

    def validate(self) -> None:
        if not (0 < self.min_freq_hz <= self.max_freq_hz):
            raise ConfigurationError("UncoreConfig frequencies must satisfy 0 < min <= max")
        if self.step_hz <= 0:
            raise ConfigurationError("UncoreConfig.step_hz must be positive")
        if self.die_count < 1:
            raise ConfigurationError("UncoreConfig.die_count must be >= 1")
        validate_bounded_fields(self)

    def voltage_at(self, freq_hz: float) -> float:
        if self.max_freq_hz == self.min_freq_hz:
            return self.v_max
        t = (freq_hz - self.min_freq_hz) / (self.max_freq_hz - self.min_freq_hz)
        t = min(max(t, 0.0), 1.0)
        return self.v_min + t * (self.v_max - self.v_min)


@dataclass(frozen=True)
class RAPLConfig:
    """RAPL package-domain limits and counter characteristics."""

    #: Default long-term (PL1) power limit, watts.
    pl1_default_w: float = 125.0
    #: Default short-term (PL2) power limit, watts.
    pl2_default_w: float = 150.0
    #: Default PL1 averaging window, seconds (Skylake-SP ships ~1 s).
    pl1_window_s: float = 1.0
    #: Default PL2 averaging window, seconds.
    pl2_window_s: float = 0.01
    #: RAPL energy-counter resolution, joules (2**-14 J on server parts).
    energy_unit_j: float = 2.0**-14
    #: RAPL power unit, watts (1/8 W).
    power_unit_w: float = 0.125
    #: Energy counter width in bits; the register wraps at 2**width units.
    counter_bits: int = 32
    #: Latency before a newly written limit takes effect, seconds.  The
    #: paper observes "some time is needed to apply a new power cap"; the
    #: simulator reproduces the one-interval lag this induces.
    actuation_delay_s: float = 0.004
    #: Hard lower bound accepted by the hardware for either limit, watts.
    min_limit_w: float = 40.0

    def validate(self) -> None:
        if not (0 < self.pl1_default_w <= self.pl2_default_w):
            raise ConfigurationError("RAPLConfig requires 0 < PL1 <= PL2")
        if self.pl1_window_s <= 0 or self.pl2_window_s <= 0:
            raise ConfigurationError("RAPLConfig windows must be positive")
        if self.counter_bits not in (32, 64):
            raise ConfigurationError("RAPLConfig.counter_bits must be 32 or 64")
        if self.min_limit_w <= 0 or self.min_limit_w > self.pl1_default_w:
            raise ConfigurationError("RAPLConfig.min_limit_w out of range")


@dataclass(frozen=True)
class PowerModelConfig:
    """Package power model coefficients.

    ``P_pkg = static + Σ_cores k_core · V(f)² · f · (a0 + a1·activity)
             + k_uncore · Vu(fu)² · fu · (u0 + u1·traffic)``

    ``activity`` is the fraction of cycles the core retires work (1.0 for
    a compute-saturated phase); ``traffic`` is memory-bandwidth
    utilisation of the uncore.  ``a0``/``u0`` capture clock-tree and idle
    switching power that flows even when the unit is stalled.
    """

    #: Leakage + always-on logic, watts per socket.
    static_w: float = 16.0
    #: Core dynamic coefficient, watts per (GHz · V²) per core.
    k_core: float = 1.55
    #: Fraction of core dynamic power present even when fully stalled.
    #: High on Skylake under the performance governor: a stalled core
    #: still clocks, speculates and spins in the load/store queues.
    core_idle_fraction: float = 0.80
    #: Uncore dynamic coefficient, watts per (GHz · V²).
    k_uncore: float = 17.0
    #: Fraction of uncore dynamic power present with zero traffic.
    #: High: the mesh and LLC clock tree burn most of their power just
    #: by toggling, which is why idle-traffic workloads (EP) gain the
    #: most from uncore scaling.
    uncore_idle_fraction: float = 0.75

    def validate(self) -> None:
        if self.static_w < 0 or self.k_core <= 0 or self.k_uncore <= 0:
            raise ConfigurationError("PowerModelConfig coefficients out of range")
        for name in ("core_idle_fraction", "uncore_idle_fraction"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ConfigurationError(f"PowerModelConfig.{name} must be in [0,1]")


@dataclass(frozen=True)
class MemoryConfig:
    """DRAM subsystem: bandwidth roofline and DRAM power."""

    #: Saturated socket bandwidth with uncore at max, bytes/s.
    peak_bw_bytes: float = 105e9
    #: Bandwidth delivered per Hz of uncore clock below saturation,
    #: bytes/s per Hz (the mesh/memory-controller limit).
    bw_per_uncore_hz: float = 52.0
    #: Bandwidth each core can request per Hz of core clock, bytes/s per
    #: Hz per core.  At the core-frequency floor (1.0 GHz) 16 cores can
    #: just barely keep the channels saturated; power caps deep enough
    #: to need even lower frequencies cannot be honoured, which is why
    #: caps below ~65 W stop being useful — the paper's floor.
    bw_per_core_hz: float = 6.6
    #: DRAM background (refresh + idle) power per socket, watts.
    dram_static_w: float = 14.0
    #: DRAM energy per byte transferred, joules/byte (~0.15 W per GB/s).
    dram_energy_per_byte: float = 0.15e-9

    def validate(self) -> None:
        if self.peak_bw_bytes <= 0 or self.bw_per_uncore_hz <= 0:
            raise ConfigurationError("MemoryConfig bandwidth parameters must be positive")
        if self.bw_per_core_hz <= 0:
            raise ConfigurationError("MemoryConfig.bw_per_core_hz must be positive")
        if self.dram_static_w < 0 or self.dram_energy_per_byte < 0:
            raise ConfigurationError("MemoryConfig power parameters must be non-negative")


@dataclass(frozen=True)
class ThermalConfig:
    """Package thermal characteristics (see :mod:`repro.hardware.thermal`).

    With the defaults, sustained TDP (125 W) settles ≈ 84 °C, below the
    96 °C PROCHOT trip — the guarantee the paper's §II-B describes TDP
    encoding.  ``None`` in :class:`SocketConfig` disables the model.
    """

    #: Junction-to-ambient thermal resistance, °C per watt.
    r_thermal_c_per_w: float = 0.35
    #: Thermal time constant, seconds (package + heatsink mass).
    tau_s: float = 8.0
    #: Inlet/ambient temperature, °C.
    ambient_c: float = 40.0
    #: PROCHOT trip point (Tj,max), °C.
    t_prochot_c: float = 96.0
    #: Frequency clamp applied while PROCHOT is asserted, Hz.
    prochot_freq_hz: float = 1.2e9
    #: Hysteresis: PROCHOT deasserts this many °C below the trip.
    hysteresis_c: float = 3.0

    def validate(self) -> None:
        if self.r_thermal_c_per_w <= 0 or self.tau_s <= 0:
            raise ConfigurationError("thermal resistance and tau must be positive")
        if not 0 < self.ambient_c < self.t_prochot_c:
            raise ConfigurationError("need 0 < ambient < prochot temperature")
        if self.prochot_freq_hz <= 0:
            raise ConfigurationError("prochot frequency must be positive")
        if self.hysteresis_c < 0:
            raise ConfigurationError("hysteresis must be non-negative")

    def steady_state_c(self, power_w: float) -> float:
        """Settled package temperature at sustained ``power_w``."""
        if power_w < 0:
            raise ConfigurationError("negative power")
        return self.ambient_c + power_w * self.r_thermal_c_per_w

    @property
    def max_dissipation_w(self) -> float:
        """The sustained power whose steady state sits at the PROCHOT trip.

        The cooling solution's true limit; it exceeds the 125 W TDP by
        the designed safety margin (TDP guarantees operation *below*
        the trip, per the paper's §II-B definition).
        """
        return (self.t_prochot_c - self.ambient_c) / self.r_thermal_c_per_w


@dataclass(frozen=True)
class CStateConfig:
    """Core C-state model (see :mod:`repro.hardware.cstates`).

    Phases declare an ``idleness`` fraction; cores spend that fraction of
    wall time parked, split between a shallow state (C1) and a deep state
    (C6).  Deep residency cuts the ``core_idle_fraction`` power term but
    costs exit latency on every wakeup.  ``None`` in :class:`SocketConfig`
    disables the model — the legacy always-C0 path, bit-for-bit.
    """

    #: C1 exit latency, seconds (~2 µs on Skylake-SP).
    c1_exit_latency_s: float = field(
        default=2e-6, metadata={"range": (0.0, 1e-3)}
    )
    #: C6 exit latency, seconds (~133 µs on Skylake-SP).
    c6_exit_latency_s: float = field(
        default=133e-6, metadata={"range": (0.0, 1e-2)}
    )
    #: Fraction of a C1-resident core's idle dynamic power that still
    #: flows (clock gated, caches live).
    c1_power_fraction: float = field(
        default=0.70, metadata={"range": (0.0, 1.0)}
    )
    #: Fraction for C6 (power gated; near zero).
    c6_power_fraction: float = field(
        default=0.05, metadata={"range": (0.0, 1.0)}
    )
    #: Maximum share of idle time promoted to C6 at full idleness.  The
    #: cpuidle menu governor demotes shallow sleeps; latency-sensitive
    #: phases pull the achieved share below this ceiling.
    c6_max_share: float = field(default=0.85, metadata={"range": (0.0, 1.0)})
    #: Wakeups per second of idle time — each one pays the exit latency.
    wakeup_rate_hz: float = field(
        default=250.0, metadata={"range": (0.0, 1e6)}
    )

    def validate(self) -> None:
        validate_bounded_fields(self)
        if self.c1_exit_latency_s > self.c6_exit_latency_s:
            raise ConfigurationError(
                "CStateConfig exit latencies must satisfy C1 <= C6"
            )
        if self.c6_power_fraction > self.c1_power_fraction:
            raise ConfigurationError(
                "CStateConfig power fractions must satisfy C6 <= C1"
            )


@dataclass(frozen=True)
class EPBConfig:
    """Energy-performance bias / HWP preference model.

    Mirrors the two hint registers real platforms expose: the legacy
    ``IA32_ENERGY_PERF_BIAS`` (0–15, 0 = performance) and the HWP request
    ``energy_performance_preference`` byte (0–255, 0 = performance).
    Hints bias operating points only: the uncore window ceiling shrinks
    toward its floor and the ``powersave`` governor target drops as the
    preference moves toward energy.  ``None`` disables the model.
    """

    #: IA32_ENERGY_PERF_BIAS initial value (0 = performance, 15 = power).
    epb: int = field(default=6, metadata={"range": (0, 15)})
    #: HWP energy_performance_preference initial value (0 = performance,
    #: 255 = power; 128 = balanced).
    epp: int = field(default=128, metadata={"range": (0, 255)})
    #: How strongly a full-power preference (EPP 255) pulls the uncore
    #: window ceiling toward the floor: 1.0 collapses the window.
    uncore_bias_strength: float = field(
        default=0.5, metadata={"range": (0.0, 1.0)}
    )
    #: How strongly the preference biases governor frequency targets.
    dvfs_bias_strength: float = field(
        default=1.0, metadata={"range": (0.0, 1.0)}
    )

    def validate(self) -> None:
        validate_bounded_fields(self)
        if not isinstance(self.epb, int) or not isinstance(self.epp, int):
            raise ConfigurationError("EPBConfig hints must be integers")


@dataclass(frozen=True)
class SocketConfig:
    """One processor socket: clocks, power model, memory, RAPL, thermals."""

    core: CoreConfig = field(default_factory=CoreConfig)
    uncore: UncoreConfig = field(default_factory=UncoreConfig)
    rapl: RAPLConfig = field(default_factory=RAPLConfig)
    power: PowerModelConfig = field(default_factory=PowerModelConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    thermal: ThermalConfig | None = None
    #: Optional C-state model; ``None`` keeps the legacy always-C0 path.
    #: Omitted from digests at the default so pre-existing cache entries
    #: stay addressable.
    cstates: CStateConfig | None = field(
        default=None, metadata={"digest_omit_default": True}
    )
    #: Optional EPB/EPP hint model; ``None`` keeps hints unmodelled.
    epb: EPBConfig | None = field(
        default=None, metadata={"digest_omit_default": True}
    )

    def validate(self) -> None:
        self.core.validate()
        self.uncore.validate()
        self.rapl.validate()
        self.power.validate()
        self.memory.validate()
        if self.thermal is not None:
            self.thermal.validate()
        if self.cstates is not None:
            self.cstates.validate()
        if self.epb is not None:
            self.epb.validate()


@dataclass(frozen=True)
class MachineConfig:
    """A multi-socket machine built from identical sockets."""

    socket: SocketConfig = field(default_factory=SocketConfig)
    socket_count: int = 4
    name: str = "yeti-2"

    def validate(self) -> None:
        if self.socket_count <= 0:
            raise ConfigurationError("MachineConfig.socket_count must be positive")
        self.socket.validate()

    @property
    def total_cores(self) -> int:
        return self.socket_count * self.socket.core.count


@dataclass(frozen=True)
class ControllerConfig:
    """Shared DUF/DUFP controller parameters (paper Sections III–IV)."""

    #: Tolerated slowdown as a fraction (0.05 == 5 %).
    tolerated_slowdown: float = 0.05
    #: Controller tick, seconds (paper: 200 ms).
    interval_s: float = 0.200
    #: Relative measurement-error band within which FLOPS/s are treated
    #: as "equivalent to the slowdown" and the actuators hold steady.
    measurement_error: float = 0.01
    #: Power-cap actuator step, watts (paper: 5 W).
    cap_step_w: float = 5.0
    #: Dynamic power-cap floor, watts (paper: 65 W).
    cap_floor_w: float = 65.0
    #: Uncore actuator step, hertz (paper: 100 MHz).
    uncore_step_hz: float = mhz(100)
    #: Operational-intensity boundary between memory- and CPU-intensive.
    oi_memory_boundary: float = 1.0
    #: OI below which a phase counts as *highly* memory-intensive and the
    #: cap may be lowered regardless of FLOPS/s (paper: 0.02).
    oi_highly_memory: float = 0.02
    #: OI above which a phase counts as *highly* CPU-intensive and any
    #: violation resets the cap (paper: 100).
    oi_highly_cpu: float = 100.0
    #: FLOPS/s growth factor within a phase that is treated as a phase
    #: change (paper: FLOPS/s double).
    phase_flops_jump: float = 2.0

    def validate(self) -> None:
        if not 0.0 <= self.tolerated_slowdown < 1.0:
            raise ConfigurationError("tolerated_slowdown must be in [0, 1)")
        if self.interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        if not 0.0 <= self.measurement_error < 0.5:
            raise ConfigurationError("measurement_error must be in [0, 0.5)")
        if self.cap_step_w <= 0 or self.cap_floor_w <= 0:
            raise ConfigurationError("cap step/floor must be positive")
        if self.uncore_step_hz <= 0:
            raise ConfigurationError("uncore_step_hz must be positive")
        if not (0 < self.oi_highly_memory < self.oi_memory_boundary < self.oi_highly_cpu):
            raise ConfigurationError(
                "OI thresholds must satisfy 0 < highly_memory < boundary < highly_cpu"
            )
        if self.phase_flops_jump <= 1.0:
            raise ConfigurationError("phase_flops_jump must exceed 1.0")


@dataclass(frozen=True)
class NoiseConfig:
    """Run-to-run and measurement noise (drives the paper's error bars)."""

    #: Std-dev of the multiplicative phase-duration jitter per run.
    duration_jitter: float = field(
        default=0.004, metadata={"range": (0.0, 0.2), "hi_open": True}
    )
    #: Std-dev of multiplicative noise on each counter read.
    counter_noise: float = field(
        default=0.002, metadata={"range": (0.0, 0.2), "hi_open": True}
    )
    #: Std-dev of multiplicative noise on each energy/power read.
    power_noise: float = field(
        default=0.003, metadata={"range": (0.0, 0.2), "hi_open": True}
    )
    #: Master seed; each run derives a child seed from it.
    seed: int = 20220509

    def validate(self) -> None:
        validate_bounded_fields(self)


@dataclass(frozen=True)
class EngineConfig:
    """Simulation-engine resolution."""

    #: Macro time step, seconds.  Must divide the controller interval.
    dt_s: float = 0.010
    #: Safety limit on simulated time per run, seconds.
    max_sim_time_s: float = 3600.0

    def validate(self) -> None:
        if self.dt_s <= 0:
            raise ConfigurationError("EngineConfig.dt_s must be positive")
        if self.max_sim_time_s <= 0:
            raise ConfigurationError("EngineConfig.max_sim_time_s must be positive")


def yeti_socket_config() -> SocketConfig:
    """One socket of yeti-2 (Intel Xeon Gold 6130) as described in Table I."""
    return SocketConfig()


def yeti_machine_config(socket_count: int = 4) -> MachineConfig:
    """The yeti-2 node: four Xeon Gold 6130 sockets, 64 cores total."""
    cfg = MachineConfig(socket=yeti_socket_config(), socket_count=socket_count)
    cfg.validate()
    return cfg


def with_slowdown(cfg: ControllerConfig, slowdown_pct: float) -> ControllerConfig:
    """Copy ``cfg`` with the tolerated slowdown set from a percentage."""
    return replace(cfg, tolerated_slowdown=slowdown_pct / 100.0)


def canonical_value(value):
    """Reduce ``value`` to a JSON-serialisable canonical form.

    Dataclasses become ``{"__class__": name, fields...}`` so two config
    types with coincidentally equal fields hash differently; non-finite
    floats (``CoreConfig.avx_license_fpc`` defaults to ``inf``) become
    tagged strings, since JSON has no representation for them.  The
    result is stable across processes and interpreter runs — unlike
    ``hash()``, which Python salts per process.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {"__class__": type(value).__name__}
        for f in dataclasses.fields(value):
            v = getattr(value, f.name)
            # Fields opting into ``digest_omit_default`` vanish from
            # the canonical form while they hold their default, so a
            # feature added behind such a field (e.g. RunSpec.faults)
            # leaves every pre-existing digest untouched until used.
            if f.metadata.get("digest_omit_default") and v == f.default:
                continue
            out[f.name] = canonical_value(v)
        return out
    if isinstance(value, dict):
        return {str(k): canonical_value(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return f"__float__:{value!r}"
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        f"cannot canonicalise {type(value).__name__!r} for hashing"
    )


def config_digest(*values) -> str:
    """Stable SHA-256 hex digest of any nest of config dataclasses.

    The content-address under the experiment result cache: equal configs
    produce equal digests, any field change produces a new one.
    """
    payload = json.dumps(
        [canonical_value(v) for v in values],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()
