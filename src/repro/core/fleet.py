"""Fleet policies: one global power budget partitioned across nodes.

The paper frames DUFP as the node-level half of a hierarchical story
(§VI): a budget-distribution runtime hands each node a power cap, and
DUFP (or the :class:`~repro.core.budget.NodeBudgetCoordinator` stack)
optimises beneath it.  This module supplies the fleet half as
node-agnostic strategy objects, the cluster-scale siblings of the
CPU/GPU :class:`~repro.core.split.SplitPolicy` hierarchy: given one
demand figure per *node*, a :class:`FleetPolicy` partitions the global
budget into per-node allocations between each node's floor and
ceiling, with ``sum(alloc) <= budget`` always (the hypothesis suite in
``tests/test_properties_cluster.py`` enforces it).

Three strategies span the design space:

* :class:`StaticFleet` — the operator default: every node receives an
  equal share of the budget, clamped into its band, decided once at
  t = 0 and never revisited.
* :class:`DemandFleet` — demand/offer water-filling extending
  :func:`repro.core.budget.allocate_budget` across nodes: a node whose
  applications finished (or that runs below its allocation) offers
  watts back, a power-hungry node bids above its cap, and the fleet
  coordinator re-partitions every allocation period.
* :class:`FairShareFleet` — the FastCap-style baseline (PAPERS.md):
  every node receives the *same fraction of its floor-to-ceiling
  range*, blind to demand — fair by construction, the bound the
  property suite pins.

Like the per-socket controllers and the hetero splits, concrete fleet
policies are wired to names only in :mod:`repro.core.registry`
(``fleet-static``, ``fleet-demand``, ``fleet-fair``) and selected
everywhere else via :class:`~repro.core.registry.PolicySpec` — the
registry lint enforces it.  Policies are deliberately free of node
knowledge: the cluster engine measures demands and owns
floors/ceilings; policies only split watts.
"""

from __future__ import annotations

from .budget import allocate_budget
from .split import SplitPolicy, _check_devices, _fit_budget

__all__ = [
    "FleetPolicy",
    "StaticFleet",
    "DemandFleet",
    "FairShareFleet",
]


class FleetPolicy(SplitPolicy):
    """How one global power budget partitions across cluster nodes.

    Same ``allocate``/``initial`` contract as :class:`SplitPolicy`,
    with index ``i`` meaning *node i* instead of a device: floors and
    ceilings are node-level watt bands (socket count × per-socket
    bounds), demands are node-level bids, and the returned allocations
    satisfy ``floor_i <= alloc_i <= ceiling_i`` and ``sum(alloc) <=
    budget``.  Policies with :attr:`is_static` true are evaluated once
    at t = 0 — the cluster engine never measures demand for them,
    which is what keeps a 1-node ``fleet-static`` cluster bit-identical
    to a plain node run.
    """

    name = "fleet"


class StaticFleet(FleetPolicy):
    """Equal static shares: the fleet operator's naive configuration.

    Every node receives ``budget / n`` clamped into its band; floor
    clamping overshoot is paid back from nodes above their floor.
    Decided once at t = 0, never revisited — the baseline every
    dynamic fleet policy is measured against, and (with the budget at
    or above the summed ceilings) the degenerate no-op whose 1-node
    cluster is bit-identical to the plain socket/node run.
    """

    name = "fleet-static"
    is_static = True

    def allocate(
        self,
        demands_w: list[float],
        floors_w: list[float],
        ceilings_w: list[float],
    ) -> list[float]:
        _check_devices(self.budget_w, demands_w, floors_w, ceilings_w)
        share = self.budget_w / len(floors_w)
        alloc = [
            min(max(share, lo), hi)
            for lo, hi in zip(floors_w, ceilings_w)
        ]
        return _fit_budget(alloc, self.budget_w, floors_w)


class DemandFleet(FleetPolicy):
    """Demand/offer water-filling across the fleet's nodes.

    :func:`repro.core.budget.allocate_budget`'s within-node socket
    split lifted one level up: each node bids its measured power draw
    plus headroom (a finished node bids its floor), and the
    water-filling serves demand above the floor proportionally until
    the global budget is exhausted.  Per-node band clamping and the
    overshoot payback keep every allocation feasible.
    """

    name = "fleet-demand"

    def allocate(
        self,
        demands_w: list[float],
        floors_w: list[float],
        ceilings_w: list[float],
    ) -> list[float]:
        _check_devices(self.budget_w, demands_w, floors_w, ceilings_w)
        alloc = allocate_budget(
            demands_w,
            self.budget_w,
            min(floors_w),
            ceiling_w=max(ceilings_w),
        )
        alloc = [
            min(max(a, lo), hi)
            for a, lo, hi in zip(alloc, floors_w, ceilings_w)
        ]
        return _fit_budget(alloc, self.budget_w, floors_w)

    def initial(
        self, floors_w: list[float], ceilings_w: list[float]
    ) -> list[float]:
        """Start from the even split (the operator default) and let the
        demand/offer loop move watts from there — dynamic partitioning
        as a *correction* to a statically provisioned fleet."""
        n = len(floors_w)
        alloc = [
            min(max(self.budget_w / n, lo), hi)
            for lo, hi in zip(floors_w, ceilings_w)
        ]
        return _fit_budget(alloc, self.budget_w, floors_w)


class FairShareFleet(FleetPolicy):
    """FastCap-style fair partitioning: equal fractions of each range.

    Every node receives ``floor + t · (ceiling - floor)`` with one
    common ``t`` chosen so the total meets the budget — demand-blind,
    so heterogeneous fleets (a latency-sensitive service node next to
    a batch node) are throttled by the *same* relative amount.  The
    property suite pins exactly this bound: all nodes share one range
    fraction, ``0 <= t <= 1``.
    """

    name = "fleet-fair"
    is_static = True

    def allocate(
        self,
        demands_w: list[float],
        floors_w: list[float],
        ceilings_w: list[float],
    ) -> list[float]:
        _check_devices(self.budget_w, demands_w, floors_w, ceilings_w)
        spare = self.budget_w - sum(floors_w)
        span = sum(hi - lo for lo, hi in zip(floors_w, ceilings_w))
        t = min(max(spare / span, 0.0), 1.0) if span > 0 else 0.0
        return [
            lo + t * (hi - lo) for lo, hi in zip(floors_w, ceilings_w)
        ]
