"""Linux cpufreq-governor baselines as per-socket controllers.

*How to Increase Energy Efficiency with a Single Linux Command*
(PAPERS.md) shows the stock ``powersave`` governor alone is a strong
energy baseline; the paper's own testbed pins ``performance``.  These
controllers reproduce the four classic governor policies at the
controller tick granularity, actuating the core-frequency *ceiling*
through ``IA32_PERF_CTL`` — the same MSR path ``intel_pstate`` uses —
while leaving the RAPL cap and the uncore window untouched:

* ``performance`` — ceiling pinned to the maximum P-state;
* ``powersave`` — an energy-biased fixed operating point pulled down
  from the maximum by the socket's EPP hint (HWP-style);
* ``ondemand`` — jump to the maximum above ``up_threshold``
  utilisation, proportional below it;
* ``schedutil`` — the kernel's ``1.25 · f_max · util`` rule.

Utilisation is *compute* pressure: achieved FLOPS/s against the
platform peak.  Cycles stalled on DRAM do not raise core clocks — the
kernel's frequency-invariant utilisation discounts them the same way,
and it mirrors the paper's separation of concerns (core clocks follow
compute demand; memory demand is the *uncore's* problem).  The
practical consequence matches the published measurements: on
memory-heavy codes ``ondemand``/``schedutil`` declock the cores and
trade runtime for power — sometimes winning energy (FT, MG), sometimes
losing it to the runtime stretch (CG) — while on compute-saturated
codes they are indistinguishable from ``performance``.

The controllers live behind the policy registry like every other
controller (``governor-performance``, ``governor-powersave``, …); only
:mod:`repro.core.registry` may import the concrete classes.
"""

from __future__ import annotations

from ..config import ControllerConfig
from ..errors import ControllerError
from ..hardware.msr import MSR
from ..papi.highlevel import Measurement
from .base import Controller, TickLog

__all__ = [
    "PerformanceFreqGovernor",
    "PowersaveFreqGovernor",
    "OndemandFreqGovernor",
    "SchedutilFreqGovernor",
]

#: IA32_PERF_CTL ratio unit (100 MHz), matching the P-state driver.
_RATIO_HZ = 100e6


class FrequencyGovernorBase(Controller):
    """Shared machinery: utilisation estimate and PERF_CTL actuation."""

    name = "governor"

    def __init__(
        self,
        cfg: ControllerConfig,
        peak_gflops: float = 180.0,
    ) -> None:
        super().__init__()
        if peak_gflops <= 0:
            raise ControllerError(f"{self.name}: peak_gflops must be positive")
        self.cfg = cfg
        self.peak_flops = peak_gflops * 1e9
        self.ceiling_hz = 0.0

    # -- plumbing -------------------------------------------------------------

    def attach(self, ctx) -> None:
        super().attach(ctx)
        self.set_ceiling(self.initial_target_hz())

    def utilisation(self, m: Measurement) -> float:
        """Compute pressure in [0, 1]: achieved FLOPS/s against peak.

        DRAM-stalled cycles deliberately do not count — raising core
        clocks cannot retire them any faster.
        """
        return min(max(m.flops_per_s / self.peak_flops, 0.0), 1.0)

    def set_ceiling(self, target_hz: float) -> None:
        """Program the P-state ceiling through IA32_PERF_CTL."""
        core = self.ctx.processor.config.core
        clamped = min(max(target_hz, core.min_freq_hz), core.max_freq_hz)
        ratio = int(round(clamped / _RATIO_HZ))
        self.ctx.msr.update_field(MSR.IA32_PERF_CTL, 15, 8, ratio)
        self.ceiling_hz = ratio * _RATIO_HZ

    def epp_preference(self) -> float:
        """The socket's energy preference in [0, 1] (0 = performance).

        Reads the HWP view; sockets without an EPB/EPP model report the
        kernel's neutral 128.  When the model is present its configured
        bias strength scales the effect, like firmware-mediated HWP.
        """
        model = self.ctx.processor.epb_model
        if model is not None:
            return min(max(model.dvfs_preference(), 0.0), 1.0)
        return self.ctx.cpufreq.energy_performance_preference_raw / 255.0

    # -- per-governor policy --------------------------------------------------

    def initial_target_hz(self) -> float:
        """Ceiling programmed at attach time (before any measurement)."""
        return self.ctx.processor.config.core.max_freq_hz

    def target_hz(self, m: Measurement) -> float:
        """The governor's frequency decision for one interval."""
        raise NotImplementedError

    def tick(self, now_s: float, m: Measurement) -> None:
        self.set_ceiling(self.target_hz(m))
        self.log(
            TickLog(
                time_s=now_s,
                cap_w=self.ctx.cap.cap_w,
                uncore_hz=self.ctx.processor.uncore.frequency_hz,
            )
        )


class PerformanceFreqGovernor(FrequencyGovernorBase):
    """Ceiling pinned to the maximum P-state (the paper's testbed)."""

    name = "governor-performance"

    def target_hz(self, m: Measurement) -> float:
        return self.ctx.processor.config.core.max_freq_hz


class PowersaveFreqGovernor(FrequencyGovernorBase):
    """An EPP-biased fixed operating point below the maximum.

    ``intel_pstate``'s ``powersave`` with HWP: the platform picks an
    operating point between the floor and ``range_fraction`` of the
    floor-to-ceiling span, pulled toward the floor as the EPP hint
    leans toward energy.  Monotone non-increasing in EPP by
    construction (the property suite pins this).
    """

    name = "governor-powersave"

    def __init__(
        self,
        cfg: ControllerConfig,
        peak_gflops: float = 180.0,
        range_fraction: float = 0.5,
    ) -> None:
        super().__init__(cfg, peak_gflops)
        if not 0.0 <= range_fraction <= 1.0:
            raise ControllerError(f"{self.name}: range_fraction outside [0, 1]")
        self.range_fraction = range_fraction

    def initial_target_hz(self) -> float:
        core = self.ctx.processor.config.core
        span = core.max_freq_hz - core.min_freq_hz
        reach = span * self.range_fraction
        return core.min_freq_hz + reach * (1.0 - self.epp_preference())

    def target_hz(self, m: Measurement) -> float:
        return self.initial_target_hz()


class OndemandFreqGovernor(FrequencyGovernorBase):
    """Jump to maximum above ``up_threshold``, proportional below."""

    name = "governor-ondemand"

    def __init__(
        self,
        cfg: ControllerConfig,
        peak_gflops: float = 180.0,
        up_threshold: float = 0.8,
    ) -> None:
        super().__init__(cfg, peak_gflops)
        if not 0.0 < up_threshold <= 1.0:
            raise ControllerError(f"{self.name}: up_threshold outside (0, 1]")
        self.up_threshold = up_threshold

    def target_hz(self, m: Measurement) -> float:
        core = self.ctx.processor.config.core
        util = self.utilisation(m)
        if util >= self.up_threshold:
            return core.max_freq_hz
        span = core.max_freq_hz - core.min_freq_hz
        return core.min_freq_hz + span * (util / self.up_threshold)


class SchedutilFreqGovernor(FrequencyGovernorBase):
    """The kernel's ``margin · f_max · util`` rule, clamped to bounds."""

    name = "governor-schedutil"

    def __init__(
        self,
        cfg: ControllerConfig,
        peak_gflops: float = 180.0,
        margin: float = 1.25,
    ) -> None:
        super().__init__(cfg, peak_gflops)
        if margin < 1.0:
            raise ControllerError(f"{self.name}: margin must be >= 1.0")
        self.margin = margin

    def target_hz(self, m: Measurement) -> float:
        core = self.ctx.processor.config.core
        return self.margin * core.max_freq_hz * self.utilisation(m)
