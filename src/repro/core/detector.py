"""Phase-change detection from operational intensity and FLOPS/s.

The paper treats as a phase change "any important variation in the
behavior of the applications": a switch between CPU- and
memory-intensive regimes (operational intensity crossing 1), or the
FLOPS/s doubling within the same regime.  Intensity classes follow the
paper's empirical thresholds: OI < 0.02 is *highly* memory-intensive,
OI > 100 is *highly* CPU-intensive.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from ..config import ControllerConfig
from ..errors import ControllerError

__all__ = [
    "OIClass",
    "classify_oi",
    "PhaseDetector",
    "OI_HIGHLY_MEMORY",
    "OI_MEMORY",
    "OI_CPU",
    "OI_HIGHLY_CPU",
    "classify_oi_lanes",
    "PhaseDetectorLanes",
]


class OIClass(enum.Enum):
    """The paper's empirical operational-intensity buckets."""

    HIGHLY_MEMORY = "highly_memory"
    MEMORY = "memory"
    CPU = "cpu"
    HIGHLY_CPU = "highly_cpu"

    @property
    def is_memory(self) -> bool:
        return self in (OIClass.HIGHLY_MEMORY, OIClass.MEMORY)


def classify_oi(oi: float, cfg: ControllerConfig) -> OIClass:
    """Bucket an operational intensity per the paper's thresholds."""
    if math.isnan(oi) or oi < 0.0:
        raise ControllerError(f"invalid operational intensity {oi!r}")
    if oi < cfg.oi_highly_memory:
        return OIClass.HIGHLY_MEMORY
    if oi < cfg.oi_memory_boundary:
        return OIClass.MEMORY
    if oi > cfg.oi_highly_cpu:
        return OIClass.HIGHLY_CPU
    return OIClass.CPU


@dataclass
class PhaseDetector:
    """Detects phase changes across controller ticks."""

    cfg: ControllerConfig
    _current_class: OIClass | None = field(default=None, init=False)
    _prev_flops: float = field(default=0.0, init=False)

    def update(self, oi: float, flops_per_s: float) -> bool:
        """Fold one measurement; returns ``True`` on a phase change.

        The first measurement always starts a phase.  The doubling test
        compares against the *previous* interval: "the FLOPS/s double
        within the same phase" is a sudden jump in rate (a new kernel
        became dominant), not growth relative to some long-ago maximum.
        """
        if flops_per_s < 0.0:
            raise ControllerError("flops_per_s must be non-negative")
        new_class = classify_oi(oi, self.cfg)
        changed = False
        if self._current_class is None:
            changed = True
        elif new_class.is_memory != self._current_class.is_memory:
            # Memory <-> CPU regime switch.
            changed = True
        elif (
            self._prev_flops > 0.0
            and flops_per_s >= self.cfg.phase_flops_jump * self._prev_flops
        ):
            # FLOPS/s doubled since the last interval: new behaviour
            # (e.g. HPL's panel gives way to the DGEMM update).
            changed = True

        self._prev_flops = flops_per_s
        self._current_class = new_class
        return changed

    @property
    def oi_class(self) -> OIClass:
        if self._current_class is None:
            raise ControllerError("detector has not seen a measurement yet")
        return self._current_class

    def reset(self) -> None:
        """Forget all history (controller restart)."""
        self._current_class = None
        self._prev_flops = 0.0


#: Integer class codes used by the lane-parallel classifier; ordered so
#: ``code <= OI_MEMORY`` is exactly :attr:`OIClass.is_memory`.
OI_HIGHLY_MEMORY, OI_MEMORY, OI_CPU, OI_HIGHLY_CPU = 0, 1, 2, 3


def classify_oi_lanes(
    oi: np.ndarray,
    highly_memory: np.ndarray,
    memory_boundary: np.ndarray,
    highly_cpu: np.ndarray,
) -> np.ndarray:
    """Bucket operational intensities lane-parallel; per-lane thresholds.

    Mirrors :func:`classify_oi`'s comparison chain (the later masked
    stores narrow the earlier ones, so write order matters).  ``inf``
    classifies as highly CPU-intensive, matching the scalar path for a
    zero-bandwidth interval.
    """
    out = np.full(len(oi), OI_CPU, dtype=np.int8)
    out[oi > highly_cpu] = OI_HIGHLY_CPU
    out[oi < memory_boundary] = OI_MEMORY
    out[oi < highly_memory] = OI_HIGHLY_MEMORY
    return out


class PhaseDetectorLanes:
    """Lane-parallel mirror of :class:`PhaseDetector`.

    Keeps every lane's regime (seen / memory-vs-CPU) and previous
    FLOPS/s; :meth:`update` applies the scalar detector's three phase
    tests as one boolean expression — the OR of mutually exclusive
    conditions is equivalent to the scalar if/elif chain.
    """

    __slots__ = ("seen", "is_memory", "prev_flops", "_jump")

    def __init__(self, phase_flops_jump: np.ndarray):
        self._jump = np.asarray(phase_flops_jump, dtype=float)
        n = len(self._jump)
        self.seen = np.zeros(n, dtype=bool)
        self.is_memory = np.zeros(n, dtype=bool)
        self.prev_flops = np.zeros(n)

    def update(
        self, idx: np.ndarray, codes: np.ndarray, flops: np.ndarray
    ) -> np.ndarray:
        """Fold one measurement per lane; ``True`` marks a phase change."""
        new_memory = codes <= OI_MEMORY
        changed = (
            ~self.seen[idx]
            | (new_memory != self.is_memory[idx])
            | (
                (self.prev_flops[idx] > 0.0)
                & (flops >= self._jump[idx] * self.prev_flops[idx])
            )
        )
        self.seen[idx] = True
        self.is_memory[idx] = new_memory
        self.prev_flops[idx] = flops
        return changed
