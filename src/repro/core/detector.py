"""Phase-change detection from operational intensity and FLOPS/s.

The paper treats as a phase change "any important variation in the
behavior of the applications": a switch between CPU- and
memory-intensive regimes (operational intensity crossing 1), or the
FLOPS/s doubling within the same regime.  Intensity classes follow the
paper's empirical thresholds: OI < 0.02 is *highly* memory-intensive,
OI > 100 is *highly* CPU-intensive.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from ..config import ControllerConfig
from ..errors import ControllerError

__all__ = ["OIClass", "classify_oi", "PhaseDetector"]


class OIClass(enum.Enum):
    """The paper's empirical operational-intensity buckets."""

    HIGHLY_MEMORY = "highly_memory"
    MEMORY = "memory"
    CPU = "cpu"
    HIGHLY_CPU = "highly_cpu"

    @property
    def is_memory(self) -> bool:
        return self in (OIClass.HIGHLY_MEMORY, OIClass.MEMORY)


def classify_oi(oi: float, cfg: ControllerConfig) -> OIClass:
    """Bucket an operational intensity per the paper's thresholds."""
    if math.isnan(oi) or oi < 0.0:
        raise ControllerError(f"invalid operational intensity {oi!r}")
    if oi < cfg.oi_highly_memory:
        return OIClass.HIGHLY_MEMORY
    if oi < cfg.oi_memory_boundary:
        return OIClass.MEMORY
    if oi > cfg.oi_highly_cpu:
        return OIClass.HIGHLY_CPU
    return OIClass.CPU


@dataclass
class PhaseDetector:
    """Detects phase changes across controller ticks."""

    cfg: ControllerConfig
    _current_class: OIClass | None = field(default=None, init=False)
    _prev_flops: float = field(default=0.0, init=False)

    def update(self, oi: float, flops_per_s: float) -> bool:
        """Fold one measurement; returns ``True`` on a phase change.

        The first measurement always starts a phase.  The doubling test
        compares against the *previous* interval: "the FLOPS/s double
        within the same phase" is a sudden jump in rate (a new kernel
        became dominant), not growth relative to some long-ago maximum.
        """
        if flops_per_s < 0.0:
            raise ControllerError("flops_per_s must be non-negative")
        new_class = classify_oi(oi, self.cfg)
        changed = False
        if self._current_class is None:
            changed = True
        elif new_class.is_memory != self._current_class.is_memory:
            # Memory <-> CPU regime switch.
            changed = True
        elif (
            self._prev_flops > 0.0
            and flops_per_s >= self.cfg.phase_flops_jump * self._prev_flops
        ):
            # FLOPS/s doubled since the last interval: new behaviour
            # (e.g. HPL's panel gives way to the DGEMM update).
            changed = True

        self._prev_flops = flops_per_s
        self._current_class = new_class
        return changed

    @property
    def oi_class(self) -> OIClass:
        if self._current_class is None:
            raise ControllerError("detector has not seen a measurement yet")
        return self._current_class

    def reset(self) -> None:
        """Forget all history (controller restart)."""
        self._current_class = None
        self._prev_flops = 0.0
