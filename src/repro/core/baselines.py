"""Baseline controllers the experiments compare against.

* :class:`DefaultController` — the untouched machine (default uncore
  governor, default RAPL limits): the denominator of every ratio in
  the paper's figures.
* :class:`StaticPowerCap` — a fixed cap applied before the run and
  never changed, with the default uncore scaling underneath: the
  configuration of the motivating experiment (Fig. 1a).
* :class:`TimeWindowCap` — a cap applied only during a time window,
  used by Fig. 1b/1c to cap CG's initial memory phase.
* :class:`StaticUncore` — the uncore pinned to a fixed frequency.
* :class:`DNPCLike` — a frequency-model dynamic capper in the spirit
  of DNPC (Sharma et al., CLUSTER 2021): assumes performance scales
  linearly with core frequency, which the paper criticises for
  memory-intensive and vectorised workloads.
"""

from __future__ import annotations

from ..config import ControllerConfig
from ..errors import ControllerError
from ..papi.highlevel import Measurement
from ..units import watts_to_uw
from .base import Controller, TickLog

__all__ = [
    "Controller",
    "DefaultController",
    "StaticPowerCap",
    "StaticUncore",
    "TimeWindowCap",
    "DNPCLike",
]


class DefaultController(Controller):
    """No-op: the architecture's default configuration."""

    name = "default"

    def tick(self, now_s: float, m: Measurement) -> None:
        self.log(
            TickLog(
                time_s=now_s,
                cap_w=self.ctx.cap.cap_w,
                uncore_hz=self.ctx.processor.uncore.frequency_hz,
            )
        )


class StaticPowerCap(Controller):
    """A fixed package power cap for the whole run (Fig. 1a)."""

    def __init__(self, cap_w: float):
        super().__init__()
        if cap_w <= 0:
            raise ControllerError("static cap must be positive")
        self.cap_w = cap_w
        self.name = f"static-{cap_w:.0f}W"

    def attach(self, ctx) -> None:
        super().attach(ctx)
        cap_uw = watts_to_uw(self.cap_w)
        ctx.cap.zone.set_both_limits_uw(cap_uw, cap_uw)

    def tick(self, now_s: float, m: Measurement) -> None:
        self.log(
            TickLog(
                time_s=now_s,
                cap_w=self.ctx.cap.cap_w,
                uncore_hz=self.ctx.processor.uncore.frequency_hz,
            )
        )


class TimeWindowCap(Controller):
    """A cap active only inside ``[start_s, end_s)`` (Fig. 1b/1c).

    The paper applies the cap to CG's initial memory phase and resets
    it to the default once the phase completes.
    """

    def __init__(self, cap_w: float, start_s: float, end_s: float):
        super().__init__()
        if cap_w <= 0:
            raise ControllerError("cap must be positive")
        if not 0.0 <= start_s < end_s:
            raise ControllerError("need 0 <= start < end")
        self.cap_w = cap_w
        self.start_s = start_s
        self.end_s = end_s
        self.name = f"window-{cap_w:.0f}W"
        self._active = False

    def attach(self, ctx) -> None:
        super().attach(ctx)
        if self.start_s == 0.0:
            self._apply()

    def _apply(self) -> None:
        cap_uw = watts_to_uw(self.cap_w)
        self.ctx.cap.zone.set_both_limits_uw(cap_uw, cap_uw)
        self._active = True

    def tick(self, now_s: float, m: Measurement) -> None:
        if not self._active and self.start_s <= now_s < self.end_s:
            self._apply()
        elif self._active and now_s >= self.end_s:
            self.ctx.cap.zone.reset()
            self._active = False
        self.log(
            TickLog(
                time_s=now_s,
                cap_w=self.ctx.cap.cap_w,
                uncore_hz=self.ctx.processor.uncore.frequency_hz,
            )
        )


class StaticUncore(Controller):
    """The uncore pinned to one frequency for the whole run."""

    def __init__(self, freq_hz: float):
        super().__init__()
        if freq_hz <= 0:
            raise ControllerError("uncore frequency must be positive")
        self.freq_hz = freq_hz
        self.name = f"uncore-{freq_hz / 1e9:.1f}GHz"

    def attach(self, ctx) -> None:
        super().attach(ctx)
        ctx.processor.uncore.pin(self.freq_hz)

    def tick(self, now_s: float, m: Measurement) -> None:
        self.log(
            TickLog(
                time_s=now_s,
                cap_w=self.ctx.cap.cap_w,
                uncore_hz=self.ctx.processor.uncore.frequency_hz,
            )
        )


class DNPCLike(Controller):
    """Frequency-linear dynamic capping (DNPC-style related work).

    Estimates performance degradation as ``1 − f/f_max`` from the
    measured average core frequency and steps the cap to keep the
    estimate at the tolerated slowdown.  On memory-bound phases the
    frequency model overestimates degradation, so this baseline leaves
    savings on the table relative to DUFP — the comparison the paper
    draws qualitatively in its related work.
    """

    name = "dnpc"

    def __init__(self, cfg: ControllerConfig):
        super().__init__()
        cfg.validate()
        self.cfg = cfg

    def tick(self, now_s: float, m: Measurement) -> None:
        ctx = self.ctx
        f = ctx.processor.dvfs.effective_freq()
        f_max = ctx.processor.config.core.max_freq_hz
        degradation = 1.0 - f / f_max
        slack = self.cfg.tolerated_slowdown - degradation
        if slack > self.cfg.measurement_error:
            action = "decrease" if ctx.cap.decrease() else "hold"
        elif slack < -self.cfg.measurement_error:
            action = "increase" if ctx.cap.increase() else "hold"
        else:
            action = "hold"
        self.log(
            TickLog(
                time_s=now_s,
                cap_w=ctx.cap.cap_w,
                uncore_hz=ctx.processor.uncore.frequency_hz,
                cap_action=action,
            )
        )
