"""Per-socket controller runtime: measurement ticks at fixed intervals.

The paper starts "one instance of DUFP on each user-specified socket".
:class:`ControllerRuntime` owns those instances: it builds each
socket's context (PAPI meter, powercap zone, MSR tools, actuators),
starts the meters, and fires every controller's :meth:`tick` each time
a measurement interval elapses in simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ControllerConfig
from ..errors import ControllerError
from ..hardware.processor import SimulatedProcessor
from ..interfaces.cpufreq import CpufreqView
from ..interfaces.msr_tools import MSRTools
from ..interfaces.powercap import PowercapTree, PowercapZone
from ..papi.highlevel import IntervalMeter
from .base import Controller
from .capping import CapActuator
from .uncore_actuator import UncoreActuator

__all__ = ["SocketContext", "ControllerRuntime"]


@dataclass
class SocketContext:
    """Everything a controller can touch on its socket."""

    processor: SimulatedProcessor
    meter: IntervalMeter
    msr: MSRTools
    powercap: PowercapZone
    cpufreq: CpufreqView
    cap: CapActuator
    uncore: UncoreActuator


@dataclass
class ControllerRuntime:
    """Drives one controller instance per socket."""

    processors: list[SimulatedProcessor]
    controllers: list[Controller]
    cfg: ControllerConfig
    rng: np.random.Generator | None = None
    counter_noise: float = 0.0
    power_noise: float = 0.0
    contexts: list[SocketContext] = field(init=False)
    _next_tick_s: float = field(init=False)
    _started: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        if not self.processors:
            raise ControllerError("runtime needs at least one socket")
        if len(self.processors) != len(self.controllers):
            raise ControllerError(
                "need exactly one controller per socket "
                f"({len(self.processors)} sockets, {len(self.controllers)} controllers)"
            )
        self.cfg.validate()
        tree = PowercapTree([p.rapl for p in self.processors])
        self.contexts = []
        for i, (proc, ctrl) in enumerate(zip(self.processors, self.controllers)):
            msr = MSRTools(proc.msrs)
            zone = tree.package_zone(i)
            ctx = SocketContext(
                processor=proc,
                meter=IntervalMeter(
                    proc,
                    socket_id=i,
                    rng=self.rng,
                    counter_noise=self.counter_noise,
                    power_noise=self.power_noise,
                ),
                msr=msr,
                powercap=zone,
                cpufreq=CpufreqView(proc.dvfs),
                cap=CapActuator(zone, self.cfg),
                uncore=UncoreActuator(msr, proc.config.uncore, self.cfg),
            )
            self.contexts.append(ctx)
            ctrl.attach(ctx)
        self._next_tick_s = self.cfg.interval_s

    def start(self) -> None:
        """Arm the meters; call once before stepping simulated time."""
        if self._started:
            raise ControllerError("runtime already started")
        for ctx in self.contexts:
            ctx.meter.start()
        self._started = True

    def on_time(self, now_s: float) -> bool:
        """Fire ticks due at ``now_s``; returns True if any tick fired.

        The engine calls this after every simulation step.  A tick
        consumes exactly one measurement interval; if the engine's step
        overshoots the boundary slightly the interval stretches with it
        (real timers drift the same way).
        """
        if not self._started:
            raise ControllerError("runtime not started")
        if now_s + 1e-12 < self._next_tick_s:
            return False
        dt = self.cfg.interval_s + (now_s - self._next_tick_s)
        for ctx, ctrl in zip(self.contexts, self.controllers):
            m = ctx.meter.sample(dt)
            ctrl.tick(now_s, m)
        self._next_tick_s = now_s + self.cfg.interval_s
        return True
