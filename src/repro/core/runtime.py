"""Per-socket controller runtime: measurement ticks at fixed intervals.

The paper starts "one instance of DUFP on each user-specified socket".
:class:`ControllerRuntime` owns those instances: it builds each
socket's context (PAPI meter, powercap zone, MSR tools, actuators),
starts the meters, and fires every controller's :meth:`tick` each time
a measurement interval elapses in simulated time.

The runtime is also the first line of defence against broken
telemetry.  A meter read that raises (an ``rdmsr`` failure) or returns
non-finite rates (a power-meter dropout) never reaches a controller
raw: the runtime holds the socket's last good measurement for a
bounded number of consecutive failures, and past that bound performs a
*safe reset* — power cap back to its default (TDP), uncore back to its
maximum — so a blind controller can never leave stale throttling
programmed into the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..config import ControllerConfig
from ..errors import ControllerError, HardwareError, PAPIError
from ..hardware.processor import SimulatedProcessor
from ..interfaces.cpufreq import CpufreqView
from ..interfaces.msr_tools import MSRTools
from ..interfaces.powercap import PowercapTree, PowercapZone
from ..papi.highlevel import IntervalMeter, Measurement
from .base import Controller
from .capping import CapActuator
from .uncore_actuator import UncoreActuator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.faults import FaultInjector

__all__ = ["SocketContext", "ControllerRuntime", "MAX_CONSECUTIVE_FAILURES"]

#: Consecutive failed samples a socket tolerates (holding the last good
#: measurement) before the runtime performs a safe reset.
MAX_CONSECUTIVE_FAILURES = 5


@dataclass
class SocketContext:
    """Everything a controller can touch on its socket."""

    processor: SimulatedProcessor
    meter: IntervalMeter
    msr: MSRTools
    powercap: PowercapZone
    cpufreq: CpufreqView
    cap: CapActuator
    uncore: UncoreActuator


@dataclass
class ControllerRuntime:
    """Drives one controller instance per socket."""

    processors: list[SimulatedProcessor]
    controllers: list[Controller]
    cfg: ControllerConfig
    rng: np.random.Generator | None = None
    counter_noise: float = 0.0
    power_noise: float = 0.0
    #: Optional fault injector shared with the meters and the RAPL
    #: models; also the source of missed/jittered tick faults.
    injector: "FaultInjector | None" = None
    #: Failure bound before the safe reset fires, per socket.
    max_consecutive_failures: int = MAX_CONSECUTIVE_FAILURES
    contexts: list[SocketContext] = field(init=False)
    _next_tick_s: float = field(init=False)
    _started: bool = field(init=False, default=False)
    #: Extra seconds (jitter, missed ticks) the *next* fired tick's
    #: interval must account for on top of the nominal interval.
    _dt_extra_s: float = field(init=False, default=0.0)
    #: Per-socket interval debt from reads that failed before the
    #: counters were consumed (the next good read spans them too).
    _dt_debt: list[float] = field(init=False)
    _last_good: list[Measurement | None] = field(init=False)
    _failures: list[int] = field(init=False)

    def __post_init__(self) -> None:
        if not self.processors:
            raise ControllerError("runtime needs at least one socket")
        if len(self.processors) != len(self.controllers):
            raise ControllerError(
                "need exactly one controller per socket "
                f"({len(self.processors)} sockets, {len(self.controllers)} controllers)"
            )
        if self.max_consecutive_failures < 1:
            raise ControllerError("max_consecutive_failures must be at least 1")
        self.cfg.validate()
        tree = PowercapTree([p.rapl for p in self.processors])
        self.contexts = []
        for i, (proc, ctrl) in enumerate(zip(self.processors, self.controllers)):
            msr = MSRTools(proc.msrs)
            zone = tree.package_zone(i)
            ctx = SocketContext(
                processor=proc,
                meter=IntervalMeter(
                    proc,
                    socket_id=i,
                    rng=self.rng,
                    counter_noise=self.counter_noise,
                    power_noise=self.power_noise,
                    faults=self.injector,
                ),
                msr=msr,
                powercap=zone,
                cpufreq=CpufreqView(proc.dvfs, epb=proc.epb_model),
                cap=CapActuator(zone, self.cfg),
                uncore=UncoreActuator(msr, proc.config.uncore, self.cfg),
            )
            self.contexts.append(ctx)
            ctrl.attach(ctx)
        self._next_tick_s = self.cfg.interval_s
        n = len(self.processors)
        self._dt_debt = [0.0] * n
        self._last_good = [None] * n
        self._failures = [0] * n

    def start(self) -> None:
        """Arm the meters; call once before stepping simulated time."""
        if self._started:
            raise ControllerError("runtime already started")
        for ctx in self.contexts:
            ctx.meter.start()
        self._started = True

    def on_time(self, now_s: float) -> bool:
        """Fire ticks due at ``now_s``; returns True if any tick fired.

        The engine calls this after every simulation step.  A tick
        consumes exactly one measurement interval; if the engine's step
        overshoots the boundary slightly the interval stretches with it
        (real timers drift the same way).  Injected tick faults extend
        the same mechanism: a missed tick folds its interval into the
        next fired tick's, a jittered tick schedules the next one late.
        """
        if not self._started:
            raise ControllerError("runtime not started")
        if now_s + 1e-12 < self._next_tick_s:
            return False
        if self.injector is not None and self.injector.tick_missed():
            # The timer never fired: no socket samples or acts, the
            # meters keep accumulating, and the skipped span is folded
            # into the next tick's interval.
            self._dt_extra_s += self.cfg.interval_s + (now_s - self._next_tick_s)
            self._next_tick_s = now_s + self.cfg.interval_s
            return False
        dt = self.cfg.interval_s + self._dt_extra_s + (now_s - self._next_tick_s)
        self._dt_extra_s = 0.0
        for sid, (ctx, ctrl) in enumerate(zip(self.contexts, self.controllers)):
            m = self._sample(sid, ctx, dt)
            if m is not None:
                ctrl.tick(now_s, m)
        jitter_s = 0.0
        if self.injector is not None:
            jitter_s = self.injector.tick_jitter_s()
            self._dt_extra_s = jitter_s
        self._next_tick_s = now_s + self.cfg.interval_s + jitter_s
        return True

    # -- degraded-telemetry handling ---------------------------------------------

    def _sample(self, sid: int, ctx: SocketContext, dt: float) -> Measurement | None:
        """One socket's measurement, or a degraded substitute.

        Returns ``None`` when the controller should skip this tick
        entirely (no good data yet, or a safe reset just fired).
        """
        try:
            m = ctx.meter.sample(dt + self._dt_debt[sid])
        except (HardwareError, PAPIError):
            # Read failed before the counters were consumed: they keep
            # accumulating, so the next good read must span this
            # interval too.
            self._dt_debt[sid] += dt
            return self._degraded(sid, ctx)
        self._dt_debt[sid] = 0.0
        if not m.finite:
            # The counters were consumed but the values are unusable
            # (power-meter dropout): no debt, but no fresh data either.
            return self._degraded(sid, ctx)
        self._failures[sid] = 0
        self._last_good[sid] = m
        return m

    def _degraded(self, sid: int, ctx: SocketContext) -> Measurement | None:
        self._failures[sid] += 1
        if self._failures[sid] >= self.max_consecutive_failures:
            self._safe_reset(sid, ctx)
            return None
        # Hold the last good sample so the controller keeps a coherent
        # (if stale) view; before any good sample exists, skip the tick.
        return self._last_good[sid]

    def _safe_reset(self, sid: int, ctx: SocketContext) -> None:
        """Telemetry is gone: return the socket to its safe operating
        point (cap at TDP, uncore unthrottled) rather than leave stale
        throttling programmed by a now-blind controller."""
        ctx.cap.reset()
        ctx.uncore.reset()
        self._failures[sid] = 0
        self._last_good[sid] = None
        if self.injector is not None:
            self.injector.note(sid, "safe_reset", "cap->default uncore->max")

    def failure_count(self, socket_id: int) -> int:
        """Current consecutive-failure count of one socket (for tests)."""
        return self._failures[socket_id]
