"""DUF: dynamic uncore frequency scaling (André et al., CCPE 2021).

The algorithm the paper builds on, summarised in its Section II-C:
every interval DUF reads FLOPS/s and memory bandwidth, computes the
operational intensity and

* resets the uncore frequency on a phase change;
* increases it when the FLOPS/s dropped below the tolerated slowdown
  (relative to the phase maximum), or when the memory bandwidth did —
  DUF watches bandwidth in *all* phases;
* holds when the FLOPS/s are equivalent to the slowdown limit within
  measurement error;
* otherwise keeps decreasing toward the uncore minimum.

The uncore-decision core is factored into :class:`UncoreDecisionEngine`
so DUFP reuses the *identical* logic (the paper: "DUFP uses the same
algorithm as DUF when it comes to uncore frequency").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ControllerConfig
from ..papi.highlevel import Measurement
from .base import Controller, TickLog
from .detector import PhaseDetector
from .tolerance import SlowdownTracker, ToleranceVerdict
from .uncore_actuator import UncoreActuator

__all__ = ["DUF", "UncoreDecisionEngine"]

#: Bandwidth below this is treated as "no memory traffic": the
#: bandwidth-drop guard is meaningless on compute-only phases.
_BW_FLOOR_BYTES = 1e8


@dataclass
class UncoreDecisionEngine:
    """The per-tick uncore decision, shared verbatim by DUF and DUFP."""

    cfg: ControllerConfig
    actuator: UncoreActuator
    flops: SlowdownTracker = field(init=False)
    bandwidth: SlowdownTracker = field(init=False)
    #: Set when the last action was an increase, with the FLOPS/s that
    #: motivated it — DUFP's first interaction rule reads these.
    last_increase_flops: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.cfg.validate()
        self.flops = SlowdownTracker(
            self.cfg.tolerated_slowdown, self.cfg.measurement_error
        )
        self.bandwidth = SlowdownTracker(
            self.cfg.tolerated_slowdown, self.cfg.measurement_error
        )

    def on_phase_change(self, m: Measurement) -> None:
        """Reset the uncore and restart the phase trackers."""
        self.actuator.reset()
        self.flops.reset(m.flops_per_s)
        self.bandwidth.reset(m.bytes_per_s)
        self.last_increase_flops = None

    def decide(self, m: Measurement) -> str:
        """One within-phase decision; returns the action taken."""
        self.flops.observe(m.flops_per_s)
        self.bandwidth.observe(m.bytes_per_s)

        verdict = self.flops.judge(m.flops_per_s)
        bw_violated = (
            self.bandwidth.phase_max > _BW_FLOOR_BYTES
            and self.bandwidth.judge(m.bytes_per_s) is ToleranceVerdict.BELOW
        )

        if verdict is ToleranceVerdict.BELOW or bw_violated:
            self.last_increase_flops = m.flops_per_s
            return "increase" if self.actuator.increase() else "hold"
        self.last_increase_flops = None
        if verdict is ToleranceVerdict.AT_BOUNDARY:
            return "hold"
        return "decrease" if self.actuator.decrease() else "hold"

    def increase_was_futile(self, m: Measurement) -> bool:
        """True if the last tick raised the uncore and FLOPS/s did not improve.

        The improvement test uses the measurement-error band, the same
        equivalence notion as the slowdown comparison.
        """
        if self.last_increase_flops is None:
            return False
        band = self.cfg.measurement_error * max(self.last_increase_flops, 1.0)
        return m.flops_per_s <= self.last_increase_flops + band


class DUF(Controller):
    """Uncore-only dynamic scaling — the paper's DUF baseline."""

    name = "duf"

    def __init__(self, cfg: ControllerConfig):
        super().__init__()
        cfg.validate()
        self.cfg = cfg
        self.detector = PhaseDetector(cfg)
        self._engine: UncoreDecisionEngine | None = None

    @property
    def engine(self) -> UncoreDecisionEngine:
        if self._engine is None:
            raise RuntimeError("duf: tick before attach")
        return self._engine

    def attach(self, ctx) -> None:
        super().attach(ctx)
        self._engine = UncoreDecisionEngine(self.cfg, ctx.uncore)
        # DUF takes ownership of the uncore: start pinned at the max.
        ctx.uncore.reset()

    def tick(self, now_s: float, m: Measurement) -> None:
        if not m.finite:
            # Defence in depth: the runtime withholds non-finite
            # samples, but a NaN must never reach the trackers — it
            # would poison every later comparison.  Hold everything.
            self.log(
                TickLog(
                    time_s=now_s,
                    cap_w=self.ctx.cap.cap_w,
                    uncore_hz=self.ctx.uncore.pinned_freq_hz,
                    phase_change=False,
                    uncore_action="skip",
                )
            )
            return
        changed = self.detector.update(m.operational_intensity, m.flops_per_s)
        if changed:
            self.engine.on_phase_change(m)
            action = "reset"
        else:
            action = self.engine.decide(m)
        self.log(
            TickLog(
                time_s=now_s,
                cap_w=self.ctx.cap.cap_w,
                uncore_hz=self.ctx.uncore.pinned_freq_hz,
                phase_change=changed,
                uncore_action=action,
            )
        )
