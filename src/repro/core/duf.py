"""DUF: dynamic uncore frequency scaling (André et al., CCPE 2021).

The algorithm the paper builds on, summarised in its Section II-C:
every interval DUF reads FLOPS/s and memory bandwidth, computes the
operational intensity and

* resets the uncore frequency on a phase change;
* increases it when the FLOPS/s dropped below the tolerated slowdown
  (relative to the phase maximum), or when the memory bandwidth did —
  DUF watches bandwidth in *all* phases;
* holds when the FLOPS/s are equivalent to the slowdown limit within
  measurement error;
* otherwise keeps decreasing toward the uncore minimum.

The uncore-decision core is factored into :class:`UncoreDecisionEngine`
so DUFP reuses the *identical* logic (the paper: "DUFP uses the same
algorithm as DUF when it comes to uncore frequency").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ControllerConfig
from ..papi.highlevel import Measurement
from .base import Controller, TickLog
from .capping import CapLanes
from .detector import PhaseDetector, PhaseDetectorLanes, classify_oi_lanes
from .tolerance import (
    SlowdownLanes,
    SlowdownTracker,
    ToleranceVerdict,
    VERDICT_BELOW,
    VERDICT_WITHIN,
)
from .uncore_actuator import UncoreActuator, UncoreLanes

__all__ = [
    "DUF",
    "UncoreDecisionEngine",
    "LaneControllerState",
    "LANE_HOLD",
    "LANE_INCREASE",
    "LANE_DECREASE",
    "LANE_RESET",
    "LANE_ACTIONS",
]

#: Bandwidth below this is treated as "no memory traffic": the
#: bandwidth-drop guard is meaningless on compute-only phases.
_BW_FLOOR_BYTES = 1e8

#: Integer action codes returned by ``tick_lanes`` forms; indexes into
#: :data:`LANE_ACTIONS` for the scalar tick's action strings.
LANE_HOLD, LANE_INCREASE, LANE_DECREASE, LANE_RESET = 0, 1, 2, 3
LANE_ACTIONS = ("hold", "increase", "decrease", "reset")


@dataclass
class LaneControllerState:
    """All lane-parallel controller state for one batch of lanes.

    One instance covers *every* lane of a batch; lanes whose run fell
    back to scalar scatter/gather simply never appear in the index
    arrays handed to ``tick_lanes``.  The fields mirror the scalar
    object graph one-to-one:

    * ``detector`` — :class:`~repro.core.detector.PhaseDetector`;
    * ``uncore``, ``flops``, ``bandwidth``, ``last_increase_flops`` —
      :class:`UncoreDecisionEngine` (``NaN`` encodes the scalar
      ``None`` for ``last_increase_flops``);
    * ``cap``, ``cap_flops``, ``cap_bw``, ``joint_reset_pending`` —
      DUFP's cap side (unused by plain DUF lanes);
    * the remaining arrays are per-lane ``ControllerConfig`` values
      needed at decision time.
    """

    detector: PhaseDetectorLanes
    uncore: UncoreLanes
    flops: SlowdownLanes
    bandwidth: SlowdownLanes
    last_increase_flops: np.ndarray
    cap: CapLanes
    cap_flops: SlowdownLanes
    cap_bw: SlowdownLanes
    joint_reset_pending: np.ndarray
    measurement_error: np.ndarray
    oi_highly_memory: np.ndarray
    oi_memory_boundary: np.ndarray
    oi_highly_cpu: np.ndarray


def engine_on_phase_change(
    st: LaneControllerState, idx: np.ndarray, fl: np.ndarray, by: np.ndarray
) -> None:
    """Vector :meth:`UncoreDecisionEngine.on_phase_change` on ``idx``."""
    st.uncore.reset(idx)
    st.flops.reset(idx, fl)
    st.bandwidth.reset(idx, by)
    st.last_increase_flops[idx] = np.nan


def engine_decide(
    st: LaneControllerState, idx: np.ndarray, fl: np.ndarray, by: np.ndarray
) -> np.ndarray:
    """Vector :meth:`UncoreDecisionEngine.decide`; returns action codes."""
    st.flops.observe(idx, fl)
    st.bandwidth.observe(idx, by)

    verdict = st.flops.judge(idx, fl)
    bw_violated = (st.bandwidth.phase_max[idx] > _BW_FLOOR_BYTES) & (
        st.bandwidth.judge(idx, by) == VERDICT_BELOW
    )

    action = np.zeros(len(idx), dtype=np.int8)  # LANE_HOLD
    up = (verdict == VERDICT_BELOW) | bw_violated
    pos_up = np.flatnonzero(up)
    st.last_increase_flops[idx[pos_up]] = fl[pos_up]
    moved_up = st.uncore.increase(idx[pos_up])
    action[pos_up[moved_up]] = LANE_INCREASE

    st.last_increase_flops[idx[~up]] = np.nan
    down = ~up & (verdict == VERDICT_WITHIN)
    pos_down = np.flatnonzero(down)
    moved_down = st.uncore.decrease(idx[pos_down])
    action[pos_down[moved_down]] = LANE_DECREASE
    # ~up & AT_BOUNDARY lanes keep LANE_HOLD.
    return action


def engine_increase_was_futile(
    st: LaneControllerState, idx: np.ndarray, fl: np.ndarray
) -> np.ndarray:
    """Vector :meth:`UncoreDecisionEngine.increase_was_futile`.

    ``NaN`` in ``last_increase_flops`` (the scalar ``None``) makes both
    terms False, so no ``isnan`` special-casing of the comparison is
    needed beyond the explicit guard.
    """
    last = st.last_increase_flops[idx]
    band = st.measurement_error[idx] * np.maximum(last, 1.0)
    return ~np.isnan(last) & (fl <= last + band)


@dataclass
class UncoreDecisionEngine:
    """The per-tick uncore decision, shared verbatim by DUF and DUFP."""

    cfg: ControllerConfig
    actuator: UncoreActuator
    flops: SlowdownTracker = field(init=False)
    bandwidth: SlowdownTracker = field(init=False)
    #: Set when the last action was an increase, with the FLOPS/s that
    #: motivated it — DUFP's first interaction rule reads these.
    last_increase_flops: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.cfg.validate()
        self.flops = SlowdownTracker(
            self.cfg.tolerated_slowdown, self.cfg.measurement_error
        )
        self.bandwidth = SlowdownTracker(
            self.cfg.tolerated_slowdown, self.cfg.measurement_error
        )

    def on_phase_change(self, m: Measurement) -> None:
        """Reset the uncore and restart the phase trackers."""
        self.actuator.reset()
        self.flops.reset(m.flops_per_s)
        self.bandwidth.reset(m.bytes_per_s)
        self.last_increase_flops = None

    def decide(self, m: Measurement) -> str:
        """One within-phase decision; returns the action taken."""
        self.flops.observe(m.flops_per_s)
        self.bandwidth.observe(m.bytes_per_s)

        verdict = self.flops.judge(m.flops_per_s)
        bw_violated = (
            self.bandwidth.phase_max > _BW_FLOOR_BYTES
            and self.bandwidth.judge(m.bytes_per_s) is ToleranceVerdict.BELOW
        )

        if verdict is ToleranceVerdict.BELOW or bw_violated:
            self.last_increase_flops = m.flops_per_s
            return "increase" if self.actuator.increase() else "hold"
        self.last_increase_flops = None
        if verdict is ToleranceVerdict.AT_BOUNDARY:
            return "hold"
        return "decrease" if self.actuator.decrease() else "hold"

    def increase_was_futile(self, m: Measurement) -> bool:
        """True if the last tick raised the uncore and FLOPS/s did not improve.

        The improvement test uses the measurement-error band, the same
        equivalence notion as the slowdown comparison.
        """
        if self.last_increase_flops is None:
            return False
        band = self.cfg.measurement_error * max(self.last_increase_flops, 1.0)
        return m.flops_per_s <= self.last_increase_flops + band


class DUF(Controller):
    """Uncore-only dynamic scaling — the paper's DUF baseline."""

    name = "duf"

    def __init__(self, cfg: ControllerConfig):
        super().__init__()
        cfg.validate()
        self.cfg = cfg
        self.detector = PhaseDetector(cfg)
        self._engine: UncoreDecisionEngine | None = None

    @property
    def engine(self) -> UncoreDecisionEngine:
        if self._engine is None:
            raise RuntimeError("duf: tick before attach")
        return self._engine

    def attach(self, ctx) -> None:
        super().attach(ctx)
        self._engine = UncoreDecisionEngine(self.cfg, ctx.uncore)
        # DUF takes ownership of the uncore: start pinned at the max.
        ctx.uncore.reset()

    def tick(self, now_s: float, m: Measurement) -> None:
        if not m.finite:
            # Defence in depth: the runtime withholds non-finite
            # samples, but a NaN must never reach the trackers — it
            # would poison every later comparison.  Hold everything.
            self.log(
                TickLog(
                    time_s=now_s,
                    cap_w=self.ctx.cap.cap_w,
                    uncore_hz=self.ctx.uncore.pinned_freq_hz,
                    phase_change=False,
                    uncore_action="skip",
                )
            )
            return
        changed = self.detector.update(m.operational_intensity, m.flops_per_s)
        if changed:
            self.engine.on_phase_change(m)
            action = "reset"
        else:
            action = self.engine.decide(m)
        self.log(
            TickLog(
                time_s=now_s,
                cap_w=self.ctx.cap.cap_w,
                uncore_hz=self.ctx.uncore.pinned_freq_hz,
                phase_change=changed,
                uncore_action=action,
            )
        )

    @staticmethod
    def tick_lanes(
        st: LaneControllerState,
        idx: np.ndarray,
        fl: np.ndarray,
        by: np.ndarray,
        pk: np.ndarray,
        oi: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray]:
        """Lane-parallel :meth:`tick` over the lanes in ``idx``.

        ``fl``/``by``/``pk``/``oi`` are the finite per-lane measurement
        rates aligned with ``idx`` (the batch engine only routes
        fault-free runs here, so the scalar non-finite skip branch is
        unreachable).  Returns ``(phase_change, cap_actions,
        uncore_actions)``; DUF drives no cap, so ``cap_actions`` is
        ``None``.
        """
        del pk  # DUF reads no power.
        codes = classify_oi_lanes(
            oi,
            st.oi_highly_memory[idx],
            st.oi_memory_boundary[idx],
            st.oi_highly_cpu[idx],
        )
        changed = st.detector.update(idx, codes, fl)
        action = np.full(len(idx), LANE_RESET, dtype=np.int8)
        pos_ch = np.flatnonzero(changed)
        engine_on_phase_change(st, idx[pos_ch], fl[pos_ch], by[pos_ch])
        pos_rest = np.flatnonzero(~changed)
        action[pos_rest] = engine_decide(
            st, idx[pos_rest], fl[pos_rest], by[pos_rest]
        )
        return changed, None, action
