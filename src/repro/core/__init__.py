"""The paper's contribution: DUF, DUFP and the baseline controllers.

:class:`~repro.core.dufp.DUFP` is the reproduction target — a runtime
that combines DUF's dynamic uncore frequency scaling with dynamic RAPL
power capping, both driven by per-interval FLOPS/s, memory bandwidth
and operational intensity, under a user-defined tolerated slowdown.
"""

from .tolerance import SlowdownTracker, ToleranceVerdict
from .detector import PhaseDetector, OIClass, classify_oi
from .capping import CapActuator
from .uncore_actuator import UncoreActuator
from .duf import DUF
from .dufp import DUFP
from .extensions import DUFPF, AdaptiveIntervalDUFP
from .budget import NodeBudgetCoordinator, BudgetedSocketController, allocate_budget
from .baselines import (
    Controller,
    DefaultController,
    StaticPowerCap,
    StaticUncore,
    DNPCLike,
    TimeWindowCap,
)
from .runtime import SocketContext, ControllerRuntime
from .registry import (
    PolicyInfo,
    PolicySpec,
    register_policy,
    policy_names,
    policy_info,
    make_spec,
    as_spec,
    parse_policy,
    policy_label,
    controller_factory,
    describe_policies,
)

__all__ = [
    "PolicyInfo",
    "PolicySpec",
    "register_policy",
    "policy_names",
    "policy_info",
    "make_spec",
    "as_spec",
    "parse_policy",
    "policy_label",
    "controller_factory",
    "describe_policies",
    "SlowdownTracker",
    "ToleranceVerdict",
    "PhaseDetector",
    "OIClass",
    "classify_oi",
    "CapActuator",
    "UncoreActuator",
    "DUF",
    "DUFP",
    "DUFPF",
    "AdaptiveIntervalDUFP",
    "NodeBudgetCoordinator",
    "BudgetedSocketController",
    "allocate_budget",
    "Controller",
    "DefaultController",
    "StaticPowerCap",
    "StaticUncore",
    "DNPCLike",
    "TimeWindowCap",
    "SocketContext",
    "ControllerRuntime",
]
