"""Node-level power budget distribution (GEOPM-style, beyond the paper).

The paper positions budget-distribution runtimes (GEOPM, DAPS, …) as
complementary: "they propose power budget allocation strategies across
nodes while DUFP provides node-level dynamic power-capping" (§VI), and
its future work asks about sharing a budget between heterogeneous
consumers.  This module supplies that complementary layer on top of the
repro substrate:

:class:`NodeBudgetCoordinator` owns one node-wide power budget and
splits it across sockets every re-allocation period, proportional to
each socket's measured *demand* (its uncapped consumption estimate).
Each socket runs a :class:`BudgetedSocketController` — DUF's dynamic
uncore scaling plus the coordinator-assigned cap — so a socket running
memory-bound work (cheap to cap) donates headroom to a socket running
compute-bound work (expensive to cap).

The coordinator is deliberately simple — demand-proportional water-
filling with per-socket floors — because its role here is to exercise
the multi-socket machinery end-to-end, not to reproduce GEOPM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ControllerConfig
from ..errors import ControllerError
from ..papi.highlevel import Measurement
from ..units import watts_to_uw
from .base import Controller, TickLog
from .detector import PhaseDetector
from .duf import UncoreDecisionEngine
from .tolerance import SlowdownTracker, ToleranceVerdict

__all__ = ["NodeBudgetCoordinator", "BudgetedSocketController", "allocate_budget"]


def allocate_budget(
    demands_w: list[float],
    total_w: float,
    floor_w: float,
    ceiling_w: float,
) -> list[float]:
    """Water-filling: split ``total_w`` across sockets by demand.

    Every socket gets at least ``floor_w`` and at most ``ceiling_w``.
    Demand above the floor is served proportionally from the remaining
    budget; leftover budget (from sockets demanding less than their
    share) is re-offered to the still-hungry sockets until exhausted.
    Raises if the floors alone exceed the budget.
    """
    n = len(demands_w)
    if n == 0:
        raise ControllerError("no sockets to allocate to")
    if any(d < 0 for d in demands_w):
        raise ControllerError("negative demand")
    if floor_w * n > total_w + 1e-9:
        raise ControllerError(
            f"budget {total_w} W cannot cover {n} sockets at the {floor_w} W floor"
        )
    alloc = [min(max(d, floor_w), ceiling_w) for d in demands_w]
    # Shrink proportionally (above the floor) until the sum fits.
    for _ in range(64):
        excess = sum(alloc) - total_w
        if excess <= 1e-9:
            break
        shrinkable = [max(a - floor_w, 0.0) for a in alloc]
        total_shrinkable = sum(shrinkable)
        if total_shrinkable <= 0.0:
            break
        scale = min(excess / total_shrinkable, 1.0)
        alloc = [a - s * scale for a, s in zip(alloc, shrinkable)]
    return alloc


@dataclass
class NodeBudgetCoordinator:
    """Shared state: one power budget, N reporting sockets."""

    total_budget_w: float
    cfg: ControllerConfig
    #: Re-allocate every this many controller ticks.
    period_ticks: int = 5
    #: Extra headroom granted above measured demand, watts.
    headroom_w: float = 5.0
    #: Per-socket allocation floor, watts.  Defaults to the cap floor
    #: (65 W); raise it to bound *reference drift* — a socket capped
    #: permanently low re-seeds its phase maxima from throttled
    #: measurements and stays "content" ever lower (the same root
    #: cause as the paper's UA tolerance miss, amplified by standing
    #: caps).
    per_socket_floor_w: float | None = None
    _members: list["BudgetedSocketController"] = field(default_factory=list)
    _reports: dict[int, float] = field(default_factory=dict)
    _tick_count: int = 0
    #: Last computed allocation per member index.
    allocations_w: list[float] = field(default_factory=list)
    #: History of (time_s, allocations) for analysis.
    history: list[tuple[float, tuple[float, ...]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total_budget_w <= 0:
            raise ControllerError("budget must be positive")
        if self.period_ticks < 1:
            raise ControllerError("period_ticks must be at least 1")
        self.cfg.validate()

    def socket_controller(self) -> "BudgetedSocketController":
        """Create (and register) the controller for the next socket."""
        member = BudgetedSocketController(self.cfg, self, len(self._members))
        self._members.append(member)
        self.allocations_w.append(self.cfg.cap_floor_w)
        return member

    # -- called by members ---------------------------------------------------------

    def report(self, index: int, now_s: float, demand_w: float) -> None:
        """A member reports its demand; the last report closes a round."""
        self._reports[index] = demand_w
        if len(self._reports) < len(self._members):
            return
        self._tick_count += 1
        if self._tick_count % self.period_ticks == 0:
            demands = [
                self._reports[i] + self.headroom_w
                for i in range(len(self._members))
            ]
            floor = (
                self.per_socket_floor_w
                if self.per_socket_floor_w is not None
                else self.cfg.cap_floor_w
            )
            self.allocations_w = allocate_budget(
                demands,
                self.total_budget_w,
                floor,
                ceiling_w=self._members[0].default_cap_w
                if self._members
                else 125.0,
            )
            self.history.append((now_s, tuple(self.allocations_w)))
            for member in self._members:
                member.apply_allocation()
        self._reports.clear()

    def allocation_for(self, index: int) -> float:
        return self.allocations_w[index]


class BudgetedSocketController(Controller):
    """Per-socket member: DUF uncore scaling + coordinator-assigned cap.

    The demand signal is *tolerance-aware* — the paper's future-work
    idea of matching each consumer's performance needs:

    * FLOPS/s below the tolerated slowdown → the socket is genuinely
      throttled and bids for more than its current cap;
    * FLOPS/s comfortably within the tolerance → the socket offers
      watts back (memory-bound work is cheap to cap, so it donates
      headroom to compute-bound neighbours);
    * at the boundary → demand equals current consumption.
    """

    name = "budgeted"

    def __init__(
        self,
        cfg: ControllerConfig,
        coordinator: NodeBudgetCoordinator,
        index: int,
    ):
        super().__init__()
        cfg.validate()
        self.cfg = cfg
        self.coordinator = coordinator
        self.index = index
        self.detector = PhaseDetector(cfg)
        self.flops = SlowdownTracker(cfg.tolerated_slowdown, cfg.measurement_error)
        self._engine: UncoreDecisionEngine | None = None

    @property
    def default_cap_w(self) -> float:
        return self.ctx.cap.default_cap_w

    def attach(self, ctx) -> None:
        super().attach(ctx)
        self._engine = UncoreDecisionEngine(self.cfg, ctx.uncore)
        ctx.uncore.reset()

    def apply_allocation(self) -> None:
        """Program the coordinator's current allocation as PL1 = PL2."""
        alloc = self.coordinator.allocation_for(self.index)
        cap_uw = watts_to_uw(alloc)
        self.ctx.cap.zone.set_both_limits_uw(cap_uw, cap_uw)

    def tick(self, now_s: float, m: Measurement) -> None:
        assert self._engine is not None
        changed = self.detector.update(m.operational_intensity, m.flops_per_s)
        if changed:
            self._engine.on_phase_change(m)
            self.flops.reset(m.flops_per_s)
            uncore_action = "reset"
        else:
            uncore_action = self._engine.decide(m)
            self.flops.observe(m.flops_per_s)

        cap = self.ctx.cap.cap_w
        verdict = self.flops.judge(m.flops_per_s)
        if verdict is ToleranceVerdict.BELOW:
            # Genuinely throttled: bid above the current cap.
            demand = cap + 2 * self.cfg.cap_step_w
        elif verdict is ToleranceVerdict.WITHIN:
            # Meeting the tolerance with room to spare: offer watts back.
            demand = max(
                m.package_power_w - self.cfg.cap_step_w, self.cfg.cap_floor_w
            )
        else:
            demand = m.package_power_w
        self.coordinator.report(self.index, now_s, demand)
        self.log(
            TickLog(
                time_s=now_s,
                cap_w=self.ctx.cap.cap_w,
                uncore_hz=self.ctx.uncore.pinned_freq_hz,
                phase_change=changed,
                uncore_action=uncore_action,
            )
        )
