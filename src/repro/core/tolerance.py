"""Tolerated-slowdown accounting for one monitored metric.

DUF and DUFP compare the current FLOPS/s (and memory bandwidth) to the
maximum observed in the current phase.  Three outcomes drive the
actuators (paper, Fig. 2):

* **WITHIN** — the metric is above ``max · (1 − slowdown)`` with margin:
  there is room, keep lowering the knob;
* **AT_BOUNDARY** — the metric is equivalent to the slowdown limit
  within measurement error: hold steady;
* **BELOW** — the metric dropped more than tolerated: back off.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import ControllerError

__all__ = [
    "ToleranceVerdict",
    "SlowdownTracker",
    "VERDICT_WITHIN",
    "VERDICT_AT_BOUNDARY",
    "VERDICT_BELOW",
    "SlowdownLanes",
]


class ToleranceVerdict(enum.Enum):
    """Where a metric sits relative to the tolerated slowdown."""

    WITHIN = "within"
    AT_BOUNDARY = "at_boundary"
    BELOW = "below"


#: Integer verdict codes used by the lane-parallel judge
#: (:class:`SlowdownLanes`); one per :class:`ToleranceVerdict` member.
VERDICT_WITHIN, VERDICT_AT_BOUNDARY, VERDICT_BELOW = 0, 1, 2


@dataclass
class SlowdownTracker:
    """Tracks one metric's phase maximum and judges the current value."""

    #: Tolerated slowdown as a fraction (0.05 = 5 %).
    tolerated_slowdown: float
    #: Relative half-width of the "equivalent" band around the limit.
    measurement_error: float
    #: Highest value seen in the current phase.
    phase_max: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.tolerated_slowdown < 1.0:
            raise ControllerError("tolerated_slowdown must be in [0, 1)")
        if not 0.0 <= self.measurement_error < 0.5:
            raise ControllerError("measurement_error must be in [0, 0.5)")
        if self.phase_max < 0.0:
            raise ControllerError("phase_max must be non-negative")

    def reset(self, value: float = 0.0) -> None:
        """Start a new phase; ``value`` seeds the maximum."""
        if value < 0.0:
            raise ControllerError("metric values must be non-negative")
        self.phase_max = value

    def observe(self, value: float) -> None:
        """Fold a new sample into the phase maximum."""
        if value < 0.0:
            raise ControllerError("metric values must be non-negative")
        self.phase_max = max(self.phase_max, value)

    @property
    def effective_slowdown(self) -> float:
        """The slowdown actually enforced.

        A drop smaller than the measurement error is indistinguishable
        from no drop, so the enforceable tolerance is floored at the
        error: with a 0 % user tolerance the controller still lowers
        the knobs as long as performance stays within noise of the
        maximum — this is what lets the paper report (small) savings at
        0 % tolerated slowdown.
        """
        return max(self.tolerated_slowdown, self.measurement_error)

    @property
    def threshold(self) -> float:
        """The lowest acceptable value, ``max · (1 − slowdown)``."""
        return self.phase_max * (1.0 - self.effective_slowdown)

    def judge(self, value: float) -> ToleranceVerdict:
        """Classify ``value`` against the slowdown limit.

        Does not fold ``value`` into the maximum; call :meth:`observe`
        for that (the controllers observe first, then judge).
        """
        if value < 0.0:
            raise ControllerError("metric values must be non-negative")
        if self.phase_max <= 0.0:
            # Nothing measured yet this phase: no basis to hold back.
            return ToleranceVerdict.WITHIN
        band = self.measurement_error * self.phase_max
        if value >= self.threshold + 0.5 * band:
            return ToleranceVerdict.WITHIN
        if value >= self.threshold - band:
            return ToleranceVerdict.AT_BOUNDARY
        return ToleranceVerdict.BELOW


class SlowdownLanes:
    """Lane-parallel mirror of :class:`SlowdownTracker`.

    One instance replaces an array of trackers: ``phase_max`` holds
    every lane's phase maximum and each method takes a fancy index of
    the lanes it acts on.  The float expressions replicate the scalar
    tracker's operation order exactly (``max · (1 − effective)``,
    ``error · max``) so that a lane-parallel judge is bit-identical to
    judging each lane with its own :class:`SlowdownTracker` — the
    batch engine's differential-equivalence suite depends on it.
    """

    __slots__ = ("phase_max", "_error", "_one_minus_eff")

    def __init__(self, tolerated: np.ndarray, error: np.ndarray):
        self._error = np.asarray(error, dtype=float)
        effective = np.maximum(np.asarray(tolerated, dtype=float), self._error)
        self._one_minus_eff = 1.0 - effective
        self.phase_max = np.zeros(len(self._error))

    def reset(self, idx: np.ndarray, values: np.ndarray) -> None:
        """Start a new phase on ``idx``; ``values`` seed the maxima."""
        self.phase_max[idx] = values

    def observe(self, idx: np.ndarray, values: np.ndarray) -> None:
        """Fold new samples into the phase maxima of ``idx``."""
        self.phase_max[idx] = np.maximum(self.phase_max[idx], values)

    def judge(self, idx: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Verdict codes for ``values`` on ``idx`` (no observation)."""
        pm = self.phase_max[idx]
        threshold = pm * self._one_minus_eff[idx]
        band = self._error[idx] * pm
        out = np.full(len(idx), VERDICT_BELOW, dtype=np.int8)
        out[values >= threshold - band] = VERDICT_AT_BOUNDARY
        out[values >= threshold + 0.5 * band] = VERDICT_WITHIN
        # Nothing measured yet this phase: no basis to hold back.
        out[pm <= 0.0] = VERDICT_WITHIN
        return out
