"""The uncore actuator: DUF's frequency stepping through MSR 0x620.

DUF pins the uncore by writing min-ratio = max-ratio into
``MSR_UNCORE_RATIO_LIMIT``; all movements here go through the same
register writes a real implementation issues via msr-tools.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ControllerConfig, UncoreConfig
from ..hardware.msr import MSR, set_bits
from ..interfaces.msr_tools import MSRTools

__all__ = ["UncoreActuator"]

RATIO_HZ = 100e6


@dataclass
class UncoreActuator:
    """Stepped control of one socket's uncore frequency."""

    msr: MSRTools
    uncore_cfg: UncoreConfig
    cfg: ControllerConfig

    def __post_init__(self) -> None:
        self.uncore_cfg.validate()
        self.cfg.validate()

    # -- views ------------------------------------------------------------------

    @property
    def pinned_freq_hz(self) -> float:
        """The currently programmed max ratio (the pin point)."""
        ratio = self.msr.rdmsr(MSR.MSR_UNCORE_RATIO_LIMIT, field=(6, 0))
        return ratio * RATIO_HZ

    @property
    def measured_freq_hz(self) -> float:
        """The frequency the uncore actually runs at."""
        ratio = self.msr.rdmsr(MSR.MSR_UNCORE_PERF_STATUS, field=(6, 0))
        return ratio * RATIO_HZ

    @property
    def at_max(self) -> bool:
        return self.pinned_freq_hz >= self.uncore_cfg.max_freq_hz

    @property
    def at_min(self) -> bool:
        return self.pinned_freq_hz <= self.uncore_cfg.min_freq_hz

    # -- actions ----------------------------------------------------------------

    def _pin(self, freq_hz: float) -> None:
        freq_hz = min(
            max(freq_hz, self.uncore_cfg.min_freq_hz), self.uncore_cfg.max_freq_hz
        )
        ratio = int(round(freq_hz / RATIO_HZ))
        value = set_bits(set_bits(0, 6, 0, ratio), 14, 8, ratio)
        self.msr.wrmsr(MSR.MSR_UNCORE_RATIO_LIMIT, value)

    def decrease(self) -> bool:
        """One step down; returns ``False`` at the minimum."""
        if self.at_min:
            return False
        self._pin(self.pinned_freq_hz - self.cfg.uncore_step_hz)
        return True

    def increase(self) -> bool:
        """One step up; returns ``False`` at the maximum."""
        if self.at_max:
            return False
        self._pin(self.pinned_freq_hz + self.cfg.uncore_step_hz)
        return True

    def reset(self) -> None:
        """Pin back to the maximum uncore frequency."""
        self._pin(self.uncore_cfg.max_freq_hz)

    def ensure_reset(self) -> bool:
        """Re-issue the reset if the uncore is not at the maximum.

        DUFP's second interaction rule: after a joint reset the applied
        uncore frequency can lag (the cap's effect is still visible),
        so the reset is checked and retried.  Returns ``True`` if a
        retry was needed.
        """
        if self.measured_freq_hz < self.uncore_cfg.max_freq_hz:
            self.reset()
            return True
        return False

    def release(self) -> None:
        """Hand control back to the hardware governor (full window)."""
        lo = int(round(self.uncore_cfg.min_freq_hz / RATIO_HZ))
        hi = int(round(self.uncore_cfg.max_freq_hz / RATIO_HZ))
        self.msr.wrmsr(
            MSR.MSR_UNCORE_RATIO_LIMIT, set_bits(set_bits(0, 6, 0, hi), 14, 8, lo)
        )
