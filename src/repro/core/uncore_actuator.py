"""The uncore actuator: DUF's frequency stepping through MSR 0x620.

DUF pins the uncore by writing min-ratio = max-ratio into
``MSR_UNCORE_RATIO_LIMIT``; all movements here go through the same
register writes a real implementation issues via msr-tools.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ControllerConfig, UncoreConfig
from ..hardware.msr import MSR, set_bits
from ..interfaces.msr_tools import MSRTools

__all__ = ["UncoreActuator", "UncoreLanes"]

RATIO_HZ = 100e6


@dataclass
class UncoreActuator:
    """Stepped control of one socket's uncore frequency."""

    msr: MSRTools
    uncore_cfg: UncoreConfig
    cfg: ControllerConfig

    def __post_init__(self) -> None:
        self.uncore_cfg.validate()
        self.cfg.validate()

    # -- views ------------------------------------------------------------------

    @property
    def pinned_freq_hz(self) -> float:
        """The currently programmed max ratio (the pin point)."""
        ratio = self.msr.rdmsr(MSR.MSR_UNCORE_RATIO_LIMIT, field=(6, 0))
        return ratio * RATIO_HZ

    @property
    def measured_freq_hz(self) -> float:
        """The frequency the uncore actually runs at."""
        ratio = self.msr.rdmsr(MSR.MSR_UNCORE_PERF_STATUS, field=(6, 0))
        return ratio * RATIO_HZ

    @property
    def at_max(self) -> bool:
        return self.pinned_freq_hz >= self.uncore_cfg.max_freq_hz

    @property
    def at_min(self) -> bool:
        return self.pinned_freq_hz <= self.uncore_cfg.min_freq_hz

    # -- actions ----------------------------------------------------------------

    def _pin(self, freq_hz: float) -> None:
        freq_hz = min(
            max(freq_hz, self.uncore_cfg.min_freq_hz), self.uncore_cfg.max_freq_hz
        )
        ratio = int(round(freq_hz / RATIO_HZ))
        value = set_bits(set_bits(0, 6, 0, ratio), 14, 8, ratio)
        self.msr.wrmsr(MSR.MSR_UNCORE_RATIO_LIMIT, value)

    def decrease(self) -> bool:
        """One step down; returns ``False`` at the minimum."""
        if self.at_min:
            return False
        self._pin(self.pinned_freq_hz - self.cfg.uncore_step_hz)
        return True

    def increase(self) -> bool:
        """One step up; returns ``False`` at the maximum."""
        if self.at_max:
            return False
        self._pin(self.pinned_freq_hz + self.cfg.uncore_step_hz)
        return True

    def reset(self) -> None:
        """Pin back to the maximum uncore frequency."""
        self._pin(self.uncore_cfg.max_freq_hz)

    def ensure_reset(self) -> bool:
        """Re-issue the reset if the uncore is not at the maximum.

        DUFP's second interaction rule: after a joint reset the applied
        uncore frequency can lag (the cap's effect is still visible),
        so the reset is checked and retried.  Returns ``True`` if a
        retry was needed.
        """
        if self.measured_freq_hz < self.uncore_cfg.max_freq_hz:
            self.reset()
            return True
        return False

    def release(self) -> None:
        """Hand control back to the hardware governor (full window)."""
        lo = int(round(self.uncore_cfg.min_freq_hz / RATIO_HZ))
        hi = int(round(self.uncore_cfg.max_freq_hz / RATIO_HZ))
        self.msr.wrmsr(
            MSR.MSR_UNCORE_RATIO_LIMIT, set_bits(set_bits(0, 6, 0, hi), 14, 8, lo)
        )


class UncoreLanes:
    """Lane-parallel mirror of :class:`UncoreActuator`.

    ``pin`` is the programmed ratio limit per lane (what
    :attr:`UncoreActuator.pinned_freq_hz` reads back).  The window and
    frequency arrays are *views into the batch engine's state*: a pin
    here is the vector equivalent of the MSR 0x620 write plus the
    driver's window snap, which — for ratio-grid frequencies between
    the socket's min and max — lands on the identical float.

    ``any_moved`` flags that some lane's pin actually changed value, so
    the batch engine knows to refresh its uncore-derived caches.
    """

    __slots__ = (
        "pin",
        "_win_lo",
        "_win_hi",
        "_freq",
        "_min_hz",
        "_max_hz",
        "_step_hz",
        "any_moved",
    )

    def __init__(
        self,
        *,
        pin: np.ndarray,
        win_lo: np.ndarray,
        win_hi: np.ndarray,
        freq: np.ndarray,
        min_hz: float,
        max_hz: float,
        step_hz: np.ndarray,
    ):
        self.pin = pin
        self._win_lo = win_lo
        self._win_hi = win_hi
        self._freq = freq
        self._min_hz = min_hz
        self._max_hz = max_hz
        self._step_hz = np.asarray(step_hz, dtype=float)
        self.any_moved = False

    def _pin_to(self, idx: np.ndarray, freq_hz: np.ndarray) -> None:
        clamped = np.minimum(np.maximum(freq_hz, self._min_hz), self._max_hz)
        new_pin = np.rint(clamped / RATIO_HZ) * RATIO_HZ
        if not np.array_equal(new_pin, self.pin[idx]):
            self.any_moved = True
        self.pin[idx] = new_pin
        self._win_lo[idx] = new_pin
        self._win_hi[idx] = new_pin
        # The driver clamps the running frequency into the new window
        # immediately, exactly as a pinned scalar write does.
        self._freq[idx] = new_pin

    def decrease(self, idx: np.ndarray) -> np.ndarray:
        """One step down per lane; ``False`` marks lanes at the minimum."""
        can = self.pin[idx] > self._min_hz
        sub = idx[can]
        self._pin_to(sub, self.pin[sub] - self._step_hz[sub])
        return can

    def increase(self, idx: np.ndarray) -> np.ndarray:
        """One step up per lane; ``False`` marks lanes at the maximum."""
        can = self.pin[idx] < self._max_hz
        sub = idx[can]
        self._pin_to(sub, self.pin[sub] + self._step_hz[sub])
        return can

    def reset(self, idx: np.ndarray) -> None:
        """Pin every lane in ``idx`` back to the maximum frequency."""
        self._pin_to(idx, np.full(len(idx), self._max_hz))
