"""Controller protocol shared by DUF, DUFP and the baselines."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..papi.highlevel import Measurement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runtime import SocketContext

__all__ = ["Controller", "TickLog"]


@dataclass
class TickLog:
    """What a controller did on one tick, for traces and tests."""

    time_s: float
    cap_w: float
    uncore_hz: float
    phase_change: bool = False
    cap_action: str = "hold"  # hold | decrease | increase | reset
    uncore_action: str = "hold"


class Controller(abc.ABC):
    """A per-socket runtime attached to the measurement/actuation stack.

    Lifecycle: the runtime calls :meth:`attach` once with the socket's
    context (meter, actuators, sysfs views), then :meth:`tick` every
    ``interval_s`` of simulated time with the interval's measurement.
    """

    #: Human-readable controller name (used in experiment labels).
    name: str = "controller"

    def __init__(self) -> None:
        self.ticks: list[TickLog] = []
        self._ctx: "SocketContext | None" = None

    @property
    def ctx(self) -> "SocketContext":
        if self._ctx is None:
            raise RuntimeError(f"{self.name}: tick before attach")
        return self._ctx

    def attach(self, ctx: "SocketContext") -> None:
        """Bind to a socket; override to program initial actuator state."""
        self._ctx = ctx

    @abc.abstractmethod
    def tick(self, now_s: float, m: Measurement) -> None:
        """One control interval with its measurement."""

    def log(self, entry: TickLog) -> None:
        self.ticks.append(entry)
