"""Extensions beyond the paper: the future-work controllers.

The paper's Section V-G/VII sketches two follow-ups that this module
implements so they can be evaluated against DUFP:

* :class:`DUFPF` — "better handling CPU frequency under power capping,
  instead of relying on power capping to change the CPU frequency".
  DUFPF runs the full DUFP algorithm and adds a third actuator: an
  explicit core-frequency ceiling written through ``IA32_PERF_CTL``.
  Driving the P-state directly removes RAPL's conservative guard-band
  (the firmware budgets for worst-case activity, so it typically leaves
  a few watts on the table at a given observed performance level).

* :class:`AdaptiveIntervalDUFP` — the Section V-A remedy for UA and
  LAMMPS: a shorter measurement interval catches sub-interval
  behaviour, at the price of more controller overhead.  This variant
  keeps the 200 ms cadence while behaviour is steady but temporarily
  re-arms at a finer interval after every detected phase change.
  (The simulator charges no overhead for ticks, so the benchmark for
  this extension reports the paper's trade-off qualitatively.)
"""

from __future__ import annotations

from ..config import ControllerConfig
from ..hardware.msr import MSR, set_bits
from ..papi.highlevel import Measurement
from ..units import snap_to_step, watts_to_uw
from .detector import OIClass, classify_oi
from .dufp import DUFP
from .tolerance import ToleranceVerdict

__all__ = ["DUFPF", "AdaptiveIntervalDUFP"]

#: IA32_PERF_CTL expresses the target as a ratio of 100 MHz.
RATIO_HZ = 100e6


class DUFPF(DUFP):
    """DUFP with direct CPU-frequency scaling (the paper's future work).

    DUFP lets RAPL pick the core frequency as a side effect of the cap;
    the paper proposes managing the frequency explicitly instead.  Here
    the roles are swapped:

    * the **P-state ceiling** (written through ``IA32_PERF_CTL``)
      becomes the performance-feedback actuator, reusing DUFP's exact
      cap decision logic — it is finer-grained (100 MHz ≈ 1–4 %
      performance per step vs up to two P-states per 5 W cap step) and
      latch-free, so it rides the tolerated slowdown with less
      overshoot;
    * the **power cap** stops doing performance feedback and instead
      *follows consumption*: each tick both constraints are set one cap
      step above the measured package power (floored at 65 W), so the
      budget guarantee remains while RAPL only acts on transients the
      ceiling cannot see — e.g. sub-interval power bursts.

    The uncore side is untouched (it is still exactly DUF).
    """

    name = "dufpf"

    #: The follower cap sits this many watts above measured consumption
    #: — wide enough that a one-step ceiling raise never hits it.
    FOLLOW_MARGIN_W = 12.0

    def __init__(self, cfg: ControllerConfig):
        super().__init__(cfg)
        self._ceiling_hz: float | None = None
        #: Set once the uncore has found its operating point for the
        #: current phase (first increase, or bottomed out); until then
        #: the ceiling stays parked so the two knobs don't stack.
        self._uncore_converged = False

    # -- P-state actuation -------------------------------------------------------

    def _core_cfg(self):
        return self.ctx.processor.config.core

    def _write_ceiling(self, freq_hz: float) -> None:
        cfg = self._core_cfg()
        freq_hz = min(max(freq_hz, cfg.min_freq_hz), cfg.max_freq_hz)
        ratio = int(round(freq_hz / RATIO_HZ))
        self.ctx.msr.wrmsr(MSR.IA32_PERF_CTL, set_bits(0, 15, 8, ratio))
        self._ceiling_hz = freq_hz

    @property
    def ceiling_hz(self) -> float:
        if self._ceiling_hz is None:
            return self._core_cfg().max_freq_hz
        return self._ceiling_hz

    # -- swap the actuator under DUFP's decision logic -----------------------------

    def _on_phase_change(self, m: Measurement) -> None:
        super()._on_phase_change(m)
        self._write_ceiling(self._core_cfg().max_freq_hz)
        self._uncore_converged = False

    def _cap_decision(
        self, m: Measurement, oi: float, futile_uncore_increase: bool
    ) -> str:
        # Run DUFP's verdict machinery against the frequency ceiling.
        action = self._ceiling_decision(m, oi, futile_uncore_increase)
        if action in ("increase", "reset"):
            # Recovery must not be throttled by the lagging follower:
            # give the ceiling full headroom and re-tighten next tick.
            if not self.ctx.cap.at_default:
                self.ctx.cap.reset()
        else:
            # The cap follows measured power with a safety margin.
            self._follow_power(m.package_power_w)
        return action

    def _ceiling_decision(
        self, m: Measurement, oi: float, futile_uncore_increase: bool
    ) -> str:
        cfg = self._core_cfg()
        self._observe_cap_metrics(m)
        if futile_uncore_increase:
            return self._step_ceiling(+cfg.step_hz, "increase")
        oi_class = classify_oi(oi, self.cfg)
        if oi_class is OIClass.HIGHLY_MEMORY:
            return self._step_ceiling(-cfg.step_hz, "decrease")
        verdict = self.cap_flops.judge(m.flops_per_s)
        if verdict is ToleranceVerdict.WITHIN:
            # Serialize with the uncore: dropping both knobs in one
            # tick stacks their impacts, and worse, the uncore engine
            # then blames its own step for the ceiling's slowdown and
            # strands itself high (losing the bigger savings).  The
            # ceiling waits until DUF has found its operating point —
            # its first back-off, or the uncore minimum — then spends
            # the remaining slowdown budget.
            if self._last_uncore_action in ("increase", "hold"):
                self._uncore_converged = True
            if self.ctx.uncore.at_min:
                self._uncore_converged = True
            if not self._uncore_converged:
                return "hold"
            return self._step_ceiling(-cfg.step_hz, "decrease")
        if verdict is ToleranceVerdict.AT_BOUNDARY:
            if (
                oi_class is OIClass.HIGHLY_CPU
                and self.cap_bw.judge(m.bytes_per_s) is ToleranceVerdict.BELOW
            ):
                self._write_ceiling(cfg.max_freq_hz)
                return "reset"
            return "hold"
        if oi_class is OIClass.HIGHLY_CPU:
            self._write_ceiling(cfg.max_freq_hz)
            return "reset"
        return self._step_ceiling(+cfg.step_hz, "increase")

    def _step_ceiling(self, delta_hz: float, action: str) -> str:
        cfg = self._core_cfg()
        new = self.ceiling_hz + delta_hz
        if not cfg.min_freq_hz <= new <= cfg.max_freq_hz:
            return "hold"
        self._write_ceiling(new)
        return action

    def _follow_power(self, package_power_w: float) -> None:
        default = self.ctx.cap.default_cap_w
        target = snap_to_step(
            package_power_w + self.FOLLOW_MARGIN_W, self.cfg.cap_step_w
        )
        target = min(max(target, self.cfg.cap_floor_w), default)
        if target >= default:
            if not self.ctx.cap.at_default:
                self.ctx.cap.reset()
            return
        cap_uw = watts_to_uw(target)
        self.ctx.cap.zone.set_both_limits_uw(cap_uw, cap_uw)
        self.ctx.cap.just_reset = False


class AdaptiveIntervalDUFP(DUFP):
    """DUFP with a transiently finer measurement interval.

    After a phase change the controller watches the next
    ``fine_ticks`` intervals more closely by judging against a
    smaller effective error band, converging faster on the new
    phase's operating point.  This approximates the paper's proposal
    of shrinking the interval around transitions without modelling
    the measurement overhead a real 50 ms cadence would add.
    """

    name = "dufp-adaptive"

    def __init__(self, cfg: ControllerConfig, fine_ticks: int = 3):
        super().__init__(cfg)
        if fine_ticks < 1:
            raise ValueError("fine_ticks must be at least 1")
        self.fine_ticks = fine_ticks
        self._fine_remaining = 0

    def tick(self, now_s: float, m: Measurement) -> None:
        tightened = False
        if self._fine_remaining > 0:
            # Temporarily sharpen the equivalence band: transitions are
            # judged strictly so caps release faster.
            for tracker in (self.cap_flops, self.cap_bw, self.engine.flops):
                tracker.measurement_error = self.cfg.measurement_error / 2
            tightened = True
        try:
            super().tick(now_s, m)
        finally:
            if tightened:
                for tracker in (self.cap_flops, self.cap_bw, self.engine.flops):
                    tracker.measurement_error = self.cfg.measurement_error
        if self.ticks[-1].phase_change:
            self._fine_remaining = self.fine_ticks
        elif self._fine_remaining > 0:
            self._fine_remaining -= 1
