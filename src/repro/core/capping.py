"""The power-cap actuator: DUFP's constraint-handling rules.

DUFP treats the two RAPL constraints asymmetrically (paper, §III):

* on a **decrease**, both constraints are set to the same (new, lower)
  value — the short-term burst allowance is removed so the average
  cannot hide above the cap;
* on an **increase**, the cap rises by one step with the constraints
  still tied; if the long-term constraint reaches its default value the
  cap is **reset** instead, restoring both constraints to their
  defaults (PL1 125 W / PL2 150 W on the testbed);
* one tick after a reset, if consumption is already below the cap, the
  short-term constraint is pulled down to the long-term value.

All writes go through the powercap zone (microwatt units), the same
interface the real tool uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..config import ControllerConfig
from ..errors import ControllerError
from ..interfaces.powercap import PowercapZone
from ..units import MICRO, watts_to_uw

__all__ = ["CapActuator", "CapLanes"]


@dataclass
class CapActuator:
    """Stepped control of one socket's package power cap."""

    zone: PowercapZone
    cfg: ControllerConfig
    #: Set after a reset; consumed by :meth:`after_reset_tighten`.
    just_reset: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        self.cfg.validate()
        if self.zone.domain != "package":
            raise ControllerError("cap actuator needs the package zone")

    # -- views -------------------------------------------------------------------

    @property
    def cap_w(self) -> float:
        """The long-term constraint (what "the power cap" means)."""
        return self.zone.rapl.pl1.limit_w

    @property
    def short_term_w(self) -> float:
        return self.zone.rapl.pl2.limit_w

    @property
    def default_cap_w(self) -> float:
        return self.zone.rapl.cfg.pl1_default_w

    @property
    def at_default(self) -> bool:
        return self.cap_w >= self.default_cap_w

    @property
    def at_floor(self) -> bool:
        return self.cap_w <= self.cfg.cap_floor_w

    # -- actions -----------------------------------------------------------------

    def decrease(self) -> bool:
        """Lower the cap one step (floored); ties both constraints.

        Returns ``False`` if already at the floor.
        """
        if self.at_floor:
            return False
        new_w = max(self.cap_w - self.cfg.cap_step_w, self.cfg.cap_floor_w)
        self.zone.set_both_limits_uw(watts_to_uw(new_w), watts_to_uw(new_w))
        self.just_reset = False
        return True

    def increase(self) -> bool:
        """Raise the cap one step, resetting if it reaches the default.

        Returns ``False`` if the cap was already at its default.
        """
        if self.at_default:
            return False
        new_w = self.cap_w + self.cfg.cap_step_w
        if new_w >= self.default_cap_w:
            self.reset()
        else:
            self.zone.set_both_limits_uw(watts_to_uw(new_w), watts_to_uw(new_w))
            self.just_reset = False
        return True

    def reset(self) -> None:
        """Restore both constraints to their architecture defaults."""
        self.zone.reset()
        self.just_reset = True

    def after_reset_tighten(self, package_power_w: float) -> bool:
        """The tick after a reset: tie PL2 to PL1 if power already fits.

        Returns ``True`` if the short-term constraint was tightened.
        """
        if not self.just_reset:
            return False
        self.just_reset = False
        # NaN power (a dropped meter read) must not tighten the cap;
        # the comparison below would be False for NaN anyway, but be
        # explicit — this is a hardware write gated on telemetry.
        if math.isfinite(package_power_w) and package_power_w < self.cap_w:
            cap_uw = watts_to_uw(self.cap_w)
            self.zone.set_both_limits_uw(cap_uw, cap_uw)
            return True
        return False


class CapLanes:
    """Lane-parallel mirror of :class:`CapActuator`.

    Operates directly on the batch engine's latched-limit and pending-
    write arrays: every action stages a *pending* RAPL write (value,
    window, due time), exactly like the scalar actuator's
    ``set_limits`` path — the cap the decisions read (``pl1_w``) only
    moves when the batch physics latches the pending write.

    Tied writes quantize through the microwatt round trip
    (``rint(w / MICRO) · MICRO``) that the scalar path performs via
    ``watts_to_uw``/``uw_to_watts``, and reuse each lane's currently
    latched windows; resets restore the architecture defaults with
    their explicit windows.  Masked writes are issued in scalar program
    order, so a lane written twice in one tick keeps the last write —
    the same overwrite semantics as the single pending slot in
    :class:`~repro.hardware.rapl.RAPL`.

    ``wrote_pending`` flags that some lane staged a write, so the batch
    engine re-arms its pending-latch scan.
    """

    __slots__ = (
        "pl1_w",
        "_pl1_win",
        "_pl2_win",
        "_rapl_now",
        "_pend_due",
        "_pend1_w",
        "_pend1_win",
        "_pend2_w",
        "_pend2_win",
        "_step_w",
        "_floor_w",
        "default_w",
        "_default_pl2_w",
        "_default_win1",
        "_default_win2",
        "_delay_s",
        "just_reset",
        "wrote_pending",
    )

    def __init__(
        self,
        *,
        pl1_w: np.ndarray,
        pl1_win: np.ndarray,
        pl2_win: np.ndarray,
        rapl_now: np.ndarray,
        pend_due: np.ndarray,
        pend1_w: np.ndarray,
        pend1_win: np.ndarray,
        pend2_w: np.ndarray,
        pend2_win: np.ndarray,
        step_w: np.ndarray,
        floor_w: np.ndarray,
        default_w: float,
        default_pl2_w: float,
        default_win1: float,
        default_win2: float,
        delay_s: float,
    ):
        self.pl1_w = pl1_w
        self._pl1_win = pl1_win
        self._pl2_win = pl2_win
        self._rapl_now = rapl_now
        self._pend_due = pend_due
        self._pend1_w = pend1_w
        self._pend1_win = pend1_win
        self._pend2_w = pend2_w
        self._pend2_win = pend2_win
        self._step_w = np.asarray(step_w, dtype=float)
        self._floor_w = np.asarray(floor_w, dtype=float)
        self.default_w = default_w
        self._default_pl2_w = default_pl2_w
        self._default_win1 = default_win1
        self._default_win2 = default_win2
        self._delay_s = delay_s
        self.just_reset = np.zeros(len(self._step_w), dtype=bool)
        self.wrote_pending = False

    def _write_tied(self, idx: np.ndarray, new_w: np.ndarray) -> None:
        """Stage PL1 = PL2 = quantized ``new_w``, current windows."""
        if len(idx) == 0:
            return
        q = np.rint(new_w / MICRO) * MICRO
        self._pend_due[idx] = self._rapl_now[idx] + self._delay_s
        self._pend1_w[idx] = q
        self._pend1_win[idx] = self._pl1_win[idx]
        self._pend2_w[idx] = q
        self._pend2_win[idx] = self._pl2_win[idx]
        self.wrote_pending = True

    def _write_defaults(self, idx: np.ndarray) -> None:
        """Stage the architecture-default limits and windows."""
        if len(idx) == 0:
            return
        self._pend_due[idx] = self._rapl_now[idx] + self._delay_s
        self._pend1_w[idx] = self.default_w
        self._pend1_win[idx] = self._default_win1
        self._pend2_w[idx] = self._default_pl2_w
        self._pend2_win[idx] = self._default_win2
        self.wrote_pending = True

    def decrease(self, idx: np.ndarray) -> np.ndarray:
        """Lower one step (floored), tied; ``False`` marks floored lanes."""
        cap = self.pl1_w[idx]
        can = cap > self._floor_w[idx]
        sub = idx[can]
        self._write_tied(
            sub, np.maximum(self.pl1_w[sub] - self._step_w[sub], self._floor_w[sub])
        )
        self.just_reset[sub] = False
        return can

    def increase(self, idx: np.ndarray) -> np.ndarray:
        """Raise one step (reset at the default); ``False`` at default."""
        cap = self.pl1_w[idx]
        can = cap < self.default_w
        sub = idx[can]
        new_w = self.pl1_w[sub] + self._step_w[sub]
        to_default = new_w >= self.default_w
        self.reset(sub[to_default])
        tied = sub[~to_default]
        self._write_tied(tied, new_w[~to_default])
        self.just_reset[tied] = False
        return can

    def reset(self, idx: np.ndarray) -> None:
        """Restore defaults on ``idx`` and mark them just-reset."""
        self._write_defaults(idx)
        self.just_reset[idx] = True

    def after_reset_tighten(self, idx: np.ndarray, package_power_w: np.ndarray) -> None:
        """The tick after a reset: tie PL2 to PL1 where power fits."""
        jr = self.just_reset[idx]
        sub = idx[jr]
        if len(sub) == 0:
            return
        self.just_reset[sub] = False
        power = package_power_w[jr]
        fits = np.isfinite(power) & (power < self.pl1_w[sub])
        self._write_tied(sub[fits], self.pl1_w[sub][fits])
