"""The power-cap actuator: DUFP's constraint-handling rules.

DUFP treats the two RAPL constraints asymmetrically (paper, §III):

* on a **decrease**, both constraints are set to the same (new, lower)
  value — the short-term burst allowance is removed so the average
  cannot hide above the cap;
* on an **increase**, the cap rises by one step with the constraints
  still tied; if the long-term constraint reaches its default value the
  cap is **reset** instead, restoring both constraints to their
  defaults (PL1 125 W / PL2 150 W on the testbed);
* one tick after a reset, if consumption is already below the cap, the
  short-term constraint is pulled down to the long-term value.

All writes go through the powercap zone (microwatt units), the same
interface the real tool uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..config import ControllerConfig
from ..errors import ControllerError
from ..interfaces.powercap import PowercapZone
from ..units import watts_to_uw

__all__ = ["CapActuator"]


@dataclass
class CapActuator:
    """Stepped control of one socket's package power cap."""

    zone: PowercapZone
    cfg: ControllerConfig
    #: Set after a reset; consumed by :meth:`after_reset_tighten`.
    just_reset: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        self.cfg.validate()
        if self.zone.domain != "package":
            raise ControllerError("cap actuator needs the package zone")

    # -- views -------------------------------------------------------------------

    @property
    def cap_w(self) -> float:
        """The long-term constraint (what "the power cap" means)."""
        return self.zone.rapl.pl1.limit_w

    @property
    def short_term_w(self) -> float:
        return self.zone.rapl.pl2.limit_w

    @property
    def default_cap_w(self) -> float:
        return self.zone.rapl.cfg.pl1_default_w

    @property
    def at_default(self) -> bool:
        return self.cap_w >= self.default_cap_w

    @property
    def at_floor(self) -> bool:
        return self.cap_w <= self.cfg.cap_floor_w

    # -- actions -----------------------------------------------------------------

    def decrease(self) -> bool:
        """Lower the cap one step (floored); ties both constraints.

        Returns ``False`` if already at the floor.
        """
        if self.at_floor:
            return False
        new_w = max(self.cap_w - self.cfg.cap_step_w, self.cfg.cap_floor_w)
        self.zone.set_both_limits_uw(watts_to_uw(new_w), watts_to_uw(new_w))
        self.just_reset = False
        return True

    def increase(self) -> bool:
        """Raise the cap one step, resetting if it reaches the default.

        Returns ``False`` if the cap was already at its default.
        """
        if self.at_default:
            return False
        new_w = self.cap_w + self.cfg.cap_step_w
        if new_w >= self.default_cap_w:
            self.reset()
        else:
            self.zone.set_both_limits_uw(watts_to_uw(new_w), watts_to_uw(new_w))
            self.just_reset = False
        return True

    def reset(self) -> None:
        """Restore both constraints to their architecture defaults."""
        self.zone.reset()
        self.just_reset = True

    def after_reset_tighten(self, package_power_w: float) -> bool:
        """The tick after a reset: tie PL2 to PL1 if power already fits.

        Returns ``True`` if the short-term constraint was tightened.
        """
        if not self.just_reset:
            return False
        self.just_reset = False
        # NaN power (a dropped meter read) must not tighten the cap;
        # the comparison below would be False for NaN anyway, but be
        # explicit — this is a hardware write gated on telemetry.
        if math.isfinite(package_power_w) and package_power_w < self.cap_w:
            cap_uw = watts_to_uw(self.cap_w)
            self.zone.set_both_limits_uw(cap_uw, cap_uw)
            return True
        return False
