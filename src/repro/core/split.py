"""Budget-split policies for heterogeneous (CPU + GPU) nodes.

The paper's §VII future work asks whether one shared power budget can
be shifted between a CPU and a GPU according to their needs.  This
module supplies the *policy* half of the answer as device-agnostic
strategy objects: given one demand figure per device (index 0 is the
CPU socket, 1..N the GPUs), a :class:`SplitPolicy` splits the shared
budget into per-device allocations between each device's floor and
ceiling.

Three strategies span the design space:

* :class:`StaticSplit` — the naive operator configuration: a fixed
  CPU fraction, the remainder spread evenly over the GPUs, decided
  once at t = 0 and never revisited.
* :class:`CoordinatedSplit` — the paper's dynamic-capping idea
  extended across devices: tolerance-aware demand/offer water-filling
  (a device meeting its tolerated slowdown offers watts back, a
  throttled device bids above its current limit), re-split every
  re-allocation period via :func:`repro.core.budget.allocate_budget`.
* :class:`FairShareSplit` — the FastCap-style baseline (PAPERS.md):
  every device receives the *same fraction of its dynamic range*
  (floor → ceiling), the fair many-device partitioning the
  coordinated split is compared against.

Like the per-socket controllers, concrete split policies are wired to
names only in :mod:`repro.core.registry` (``hetero-static``,
``hetero-coord``, ``hetero-fair``) and selected everywhere else via
:class:`~repro.core.registry.PolicySpec` — the registry lint enforces
it.  The policies are deliberately free of device knowledge: the
hetero engine measures demands and owns floors/ceilings; policies only
split watts.
"""

from __future__ import annotations

from ..errors import ControllerError
from .budget import allocate_budget

__all__ = [
    "SplitPolicy",
    "StaticSplit",
    "CoordinatedSplit",
    "FairShareSplit",
]


def _check_devices(
    total_w: float,
    demands_w: list[float],
    floors_w: list[float],
    ceilings_w: list[float],
) -> None:
    if not floors_w or len(floors_w) != len(ceilings_w):
        raise ControllerError("need one floor and one ceiling per device")
    if len(demands_w) != len(floors_w):
        raise ControllerError(
            f"{len(demands_w)} demands for {len(floors_w)} devices"
        )
    for lo, hi in zip(floors_w, ceilings_w):
        if not 0 < lo <= hi:
            raise ControllerError(
                f"device bounds invalid: floor {lo} W, ceiling {hi} W"
            )
    if sum(floors_w) > total_w + 1e-9:
        raise ControllerError(
            f"budget {total_w} W cannot cover the combined device floor "
            f"{sum(floors_w)} W"
        )


def _fit_budget(
    alloc: list[float], total_w: float, floors_w: list[float]
) -> list[float]:
    """Pay back any overshoot the per-device floor clamp introduced.

    Lifting an allocation up to its device floor can push the sum past
    the budget; the excess is taken back from every device above its
    floor, proportionally to its slack.  Feasibility
    (``sum(floors) <= total``) guarantees the slack covers the excess.
    """
    excess = sum(alloc) - total_w
    if excess <= 1e-9:
        return alloc
    slack = [a - lo for a, lo in zip(alloc, floors_w)]
    span = sum(slack)
    if span <= 0.0:
        # Every device already sits at its floor: the budget cannot
        # cover the combined floors.  Callers that validated via
        # _check_devices never reach this; entry points that skip the
        # check (e.g. initial()) get the same diagnostic instead of a
        # division by zero.
        raise ControllerError(
            f"budget {total_w} W cannot cover the combined device floor "
            f"{sum(floors_w)} W"
        )
    scale = max(span - excess, 0.0) / span
    return [lo + s * scale for lo, s in zip(floors_w, slack)]


class SplitPolicy:
    """How one shared power budget splits across a node's devices.

    ``allocate`` is called by the hetero engine at every re-allocation
    period with one *demand* per device (watts the device currently
    bids for); it returns one allocation per device with ``floor_i <=
    alloc_i <= ceiling_i`` and ``sum(alloc) <= total``.  Policies with
    :attr:`is_static` true are evaluated once at t = 0 and never again
    — their split depends only on the bounds, not on measurements.
    """

    #: Registry id of the policy (set by subclasses; used in labels).
    name = "split"
    #: True when the split never changes after t = 0.
    is_static = False

    def __init__(self, budget_w: float):
        if budget_w <= 0:
            raise ControllerError("shared budget must be positive")
        self.budget_w = budget_w

    def allocate(
        self,
        demands_w: list[float],
        floors_w: list[float],
        ceilings_w: list[float],
    ) -> list[float]:
        """Split the budget; see the class docstring for the contract."""
        raise NotImplementedError

    def initial(
        self, floors_w: list[float], ceilings_w: list[float]
    ) -> list[float]:
        """The t = 0 split, before any demand has been measured.

        Defaults to allocating against ceiling-level demands (every
        device bids for its maximum), which degenerates to the naive
        even split under symmetric bounds.
        """
        return self.allocate(list(ceilings_w), floors_w, ceilings_w)


class StaticSplit(SplitPolicy):
    """Fixed fractional split: the datacentre operator's naive config.

    The CPU receives ``cpu_fraction`` of the budget, the GPUs share
    the remainder evenly; everything is clamped into each device's
    ``[floor, ceiling]`` band.  Decided once, never revisited — the
    baseline every dynamic policy is measured against.
    """

    name = "hetero-static"
    is_static = True

    def __init__(self, budget_w: float, cpu_fraction: float = 0.5):
        super().__init__(budget_w)
        if not 0.0 < cpu_fraction < 1.0:
            raise ControllerError("cpu_fraction must be in (0, 1)")
        self.cpu_fraction = cpu_fraction

    def allocate(
        self,
        demands_w: list[float],
        floors_w: list[float],
        ceilings_w: list[float],
    ) -> list[float]:
        _check_devices(self.budget_w, demands_w, floors_w, ceilings_w)
        n_gpus = len(floors_w) - 1
        if n_gpus < 1:
            raise ControllerError("hetero split needs at least one GPU")
        shares = [self.budget_w * self.cpu_fraction] + [
            self.budget_w * (1.0 - self.cpu_fraction) / n_gpus
        ] * n_gpus
        alloc = [
            min(max(share, lo), hi)
            for share, lo, hi in zip(shares, floors_w, ceilings_w)
        ]
        return _fit_budget(alloc, self.budget_w, floors_w)


class CoordinatedSplit(SplitPolicy):
    """Tolerance-aware demand/offer water-filling across the devices.

    The multi-device generalisation of :func:`repro.core.budget.
    allocate_budget`'s node split: devices meeting their tolerated
    slowdown offer watts back, throttled devices bid above their
    current limit, and the water-filling serves demand above the floor
    proportionally until the budget is exhausted.
    """

    name = "hetero-coord"

    def allocate(
        self,
        demands_w: list[float],
        floors_w: list[float],
        ceilings_w: list[float],
    ) -> list[float]:
        _check_devices(self.budget_w, demands_w, floors_w, ceilings_w)
        alloc = allocate_budget(
            demands_w,
            self.budget_w,
            min(floors_w),
            ceiling_w=max(ceilings_w),
        )
        alloc = [
            min(max(a, lo), hi)
            for a, lo, hi in zip(alloc, floors_w, ceilings_w)
        ]
        return _fit_budget(alloc, self.budget_w, floors_w)

    def initial(
        self, floors_w: list[float], ceilings_w: list[float]
    ) -> list[float]:
        """Start from the naive even split (the operator default) and
        let the demand/offer loop move watts from there — matching the
        paper's framing of dynamic capping as a *correction* to a
        statically configured budget."""
        n = len(floors_w)
        alloc = [
            min(max(self.budget_w / n, lo), hi)
            for lo, hi in zip(floors_w, ceilings_w)
        ]
        return _fit_budget(alloc, self.budget_w, floors_w)


class FairShareSplit(SplitPolicy):
    """FastCap-style fair partitioning: equal fractions of each range.

    Every device receives ``floor + t · (ceiling - floor)`` with one
    common ``t`` chosen so the total meets the budget — the fair
    multi-device baseline from *FastCap* (PAPERS.md), blind to what the
    devices are actually doing.
    """

    name = "hetero-fair"
    is_static = True

    def allocate(
        self,
        demands_w: list[float],
        floors_w: list[float],
        ceilings_w: list[float],
    ) -> list[float]:
        _check_devices(self.budget_w, demands_w, floors_w, ceilings_w)
        spare = self.budget_w - sum(floors_w)
        span = sum(hi - lo for lo, hi in zip(floors_w, ceilings_w))
        t = min(max(spare / span, 0.0), 1.0) if span > 0 else 0.0
        return [
            lo + t * (hi - lo) for lo, hi in zip(floors_w, ceilings_w)
        ]
