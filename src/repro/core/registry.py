"""Policy registry: declarative, discoverable per-socket control policies.

The paper's DUFP is one point in a family of per-socket power/uncore
policies (uncore-only, cap-only, static, combined, budget-shared).
This module makes that family *data*: every controller is registered
under a short id together with a frozen parameter dataclass, display
metadata and a builder, so sweeps, the result cache, the CLI and the
docs all discover policies from one place.

Adding a new policy is one dataclass plus one decorator::

    @register_policy(
        "fastcap",
        display_name="FastCap-style fair capper",
        paper_section="VI (related work)",
        summary="Cap both sockets fairly from a shared budget.",
    )
    @dataclass(frozen=True)
    class FastCapPolicy:
        watts: float = 100.0

        def build(self, cfg: ControllerConfig) -> Callable[[], Controller]:
            return lambda: MyFastCap(cfg, self.watts)

``build`` is invoked once per protocol *run* and returns the per-socket
controller factory, so policies that share state across sockets (the
budget coordinator) get a fresh coordinator every run.

A :class:`PolicySpec` is the serialisable selection of one policy —
``name`` plus an instance of its parameter dataclass.  Specs are
frozen, picklable and canonically hashable, so they cross process
boundaries inside :class:`~repro.experiments.executor.RunSpec` and fold
into the content-addressed result-cache digest: changing any parameter
changes the cache address.

This is deliberately the *only* module that touches concrete controller
classes; everything outside ``repro.core`` reaches them through the
registry (enforced by ``scripts/lint_policy_imports.py``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from ..config import ControllerConfig
from ..errors import PolicyError
from ..units import ghz
from .base import Controller
from .baselines import (
    DefaultController,
    DNPCLike,
    StaticPowerCap,
    StaticUncore,
    TimeWindowCap,
)
from .budget import NodeBudgetCoordinator
from .duf import DUF
from .dufp import DUFP
from .extensions import DUFPF, AdaptiveIntervalDUFP
from .fleet import DemandFleet, FairShareFleet, FleetPolicy, StaticFleet
from .governors import (
    OndemandFreqGovernor,
    PerformanceFreqGovernor,
    PowersaveFreqGovernor,
    SchedutilFreqGovernor,
)
from .split import CoordinatedSplit, FairShareSplit, SplitPolicy, StaticSplit

__all__ = [
    "PolicyInfo",
    "PolicySpec",
    "register_policy",
    "policy_names",
    "policy_info",
    "make_spec",
    "as_spec",
    "parse_policy",
    "policy_label",
    "controller_factory",
    "describe_policies",
    "vector_tick_form",
    "split_policy",
    "fleet_policy",
]

#: Per-socket controller factory, as consumed by the simulation layer.
ControllerFactory = Callable[[], Controller]

#: Controllers with a registered lane-parallel tick form, keyed by
#: *exact* type: subclasses (DUFPF, the adaptive-interval variant)
#: override scalar hooks the vector kernels do not model, so they must
#: not inherit a parent's vector form.  The value is the ``tick_lanes``
#: staticmethod the batch engine dispatches to.
_VECTOR_TICKS: dict[type, Callable] = {
    DUF: DUF.tick_lanes,
    DUFP: DUFP.tick_lanes,
}


def vector_tick_form(controller: Controller) -> "Callable | None":
    """The lane-parallel tick form of ``controller``, or ``None``.

    This is the batch engine's only controller-type probe: a non-None
    return means ``type(controller)`` registered a ``tick_lanes`` form
    whose masked vector decisions are bit-identical to the scalar
    ``tick`` (the differential-equivalence suite enforces it).  Like
    everything else reaching concrete controller classes, the mapping
    lives here so ``repro.sim`` never imports them directly.
    """
    return _VECTOR_TICKS.get(type(controller))


@dataclass(frozen=True)
class PolicyInfo:
    """Registry metadata for one policy."""

    #: Short registry id (the CLI / sweep / cache-key name).
    name: str
    #: Human-readable name for listings.
    display_name: str
    #: Where the paper (or related work) describes the policy.
    paper_section: str
    #: One-line description for ``repro policies``.
    summary: str
    #: Frozen dataclass type carrying the policy's parameters; its
    #: field defaults are the policy's default parameters and its
    #: ``build(cfg)`` method produces the per-socket factory.
    param_cls: type
    #: True for heterogeneous budget-split policies: ``build(cfg)``
    #: returns a :class:`~repro.core.split.SplitPolicy` for the
    #: CPU+GPU engine instead of a per-socket controller factory, and
    #: the run spec must carry a GPU node config.
    hetero: bool = False
    #: True for fleet budget-partitioning policies: ``build(cfg)``
    #: returns a :class:`~repro.core.fleet.FleetPolicy` for the
    #: cluster engine instead of a per-socket controller factory, and
    #: the run spec must carry a cluster spec.
    fleet: bool = False

    @property
    def defaults(self):
        """A parameter instance populated with every default."""
        return self.param_cls()

    def param_fields(self) -> tuple[dataclasses.Field, ...]:
        """The parameter dataclass fields, declaration order."""
        return dataclasses.fields(self.param_cls)


_REGISTRY: dict[str, PolicyInfo] = {}


def register_policy(
    name: str,
    *,
    display_name: str,
    paper_section: str = "",
    summary: str = "",
    hetero: bool = False,
    fleet: bool = False,
):
    """Class decorator registering a parameter dataclass as a policy.

    The decorated class must be a frozen dataclass exposing
    ``build(cfg: ControllerConfig) -> Callable[[], Controller]`` — or,
    for ``hetero=True`` budget-split policies, ``build(cfg) ->
    SplitPolicy``, or, for ``fleet=True`` cluster policies,
    ``build(cfg) -> FleetPolicy``.
    """

    def decorate(param_cls: type) -> type:
        if not dataclasses.is_dataclass(param_cls):
            raise PolicyError(f"policy {name!r} params must be a dataclass")
        if not callable(getattr(param_cls, "build", None)):
            raise PolicyError(f"policy {name!r} params must define build(cfg)")
        if name in _REGISTRY:
            raise PolicyError(f"policy {name!r} registered twice")
        _REGISTRY[name] = PolicyInfo(
            name=name,
            display_name=display_name,
            paper_section=paper_section,
            summary=summary or (param_cls.__doc__ or "").strip().splitlines()[0],
            param_cls=param_cls,
            hetero=hetero,
            fleet=fleet,
        )
        return param_cls

    return decorate


def policy_names() -> tuple[str, ...]:
    """Every registered policy id, registration order."""
    return tuple(_REGISTRY)


def policy_info(name: str) -> PolicyInfo:
    """Metadata for one policy; raises :class:`PolicyError` if unknown."""
    info = _REGISTRY.get(name)
    if info is None:
        raise PolicyError(
            f"unknown policy {name!r}; available: {', '.join(_REGISTRY)}"
        )
    return info


@dataclass(frozen=True)
class PolicySpec:
    """One selected policy: registry id plus a parameter instance.

    Frozen (hashable), picklable, and canonically hashable through
    :func:`repro.config.config_digest` — the spec is exactly what the
    experiment layer threads through :class:`~repro.experiments.
    executor.RunSpec` and into the result-cache address.
    """

    name: str
    #: Instance of the policy's parameter dataclass; ``None`` at
    #: construction means "all defaults" and is resolved immediately.
    params: object = None

    def __post_init__(self) -> None:
        info = policy_info(self.name)
        params = self.params if self.params is not None else info.defaults
        if not isinstance(params, info.param_cls):
            raise PolicyError(
                f"policy {self.name!r} expects {info.param_cls.__name__} "
                f"params, got {type(params).__name__}"
            )
        object.__setattr__(self, "params", params)

    @property
    def info(self) -> PolicyInfo:
        """The registry metadata this spec refers to."""
        return policy_info(self.name)

    @property
    def label(self) -> str:
        """Display label: the policy id specialised by its parameters."""
        label_fn = getattr(self.params, "label", None)
        return label_fn() if callable(label_fn) else self.name

    def build(self, cfg: ControllerConfig) -> ControllerFactory:
        """The per-socket controller factory for one protocol run."""
        return self.params.build(cfg)


def make_spec(name: str, **params) -> PolicySpec:
    """Construct a spec from keyword parameters over the defaults."""
    info = policy_info(name)
    known = {f.name for f in info.param_fields()}
    unknown = set(params) - known
    if unknown:
        raise PolicyError(
            f"policy {name!r} has no parameter(s) {sorted(unknown)}; "
            f"accepts: {sorted(known) or 'none'}"
        )
    return PolicySpec(name, info.param_cls(**params))


def as_spec(policy: "PolicySpec | str") -> PolicySpec:
    """Coerce a policy selection (spec, id, or ``name:k=v,...``) to a spec."""
    if isinstance(policy, PolicySpec):
        return policy
    if isinstance(policy, str):
        return parse_policy(policy)
    raise PolicyError(f"cannot interpret {policy!r} as a policy")


def _coerce(value: str, target_type) -> object:
    """Parse one CLI parameter value according to the field's type."""
    if target_type is bool or target_type == "bool":
        lowered = value.lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise PolicyError(f"expected a boolean, got {value!r}")
    if target_type is int or target_type == "int":
        return int(value)
    if target_type is float or target_type == "float":
        return float(value)
    return value


def parse_policy(text: str) -> PolicySpec:
    """Parse ``name`` or ``name:key=val,key=val`` into a spec.

    The CLI syntax: ``--controller budget:watts=95`` selects the
    ``budget`` policy with ``watts=95`` and defaults elsewhere.  Value
    strings are coerced using the parameter dataclass's field types.
    """
    name, _, param_text = text.partition(":")
    name = name.strip()
    info = policy_info(name)
    params: dict[str, object] = {}
    if param_text.strip():
        types = {f.name: f.type for f in info.param_fields()}
        for item in param_text.split(","):
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq or not key:
                raise PolicyError(
                    f"malformed policy parameter {item!r} "
                    f"(expected key=value) in {text!r}"
                )
            if key not in types:
                raise PolicyError(
                    f"policy {name!r} has no parameter {key!r}; "
                    f"accepts: {sorted(types) or 'none'}"
                )
            params[key] = _coerce(value.strip(), types[key])
    return make_spec(name, **params)


def policy_label(policy: "PolicySpec | str") -> str:
    """The display label of a policy selection, via the registry only."""
    return as_spec(policy).label


def controller_factory(
    policy: "PolicySpec | str", cfg: ControllerConfig | None = None
) -> ControllerFactory:
    """Resolve a policy selection to a fresh per-socket factory.

    Call once per protocol run: policies with cross-socket shared state
    (``budget``) allocate that state here, so runs never share it.
    """
    return as_spec(policy).build(cfg or ControllerConfig())


def split_policy(
    policy: "PolicySpec | str", cfg: ControllerConfig | None = None
) -> SplitPolicy:
    """Resolve a hetero budget-split selection to a fresh policy object.

    The hetero counterpart of :func:`controller_factory`: only valid
    for registry entries flagged ``hetero=True``, whose ``build(cfg)``
    returns a :class:`~repro.core.split.SplitPolicy` rather than a
    per-socket controller factory.
    """
    spec = as_spec(policy)
    if not spec.info.hetero:
        raise PolicyError(
            f"policy {spec.name!r} is a per-socket controller, not a "
            "hetero budget-split policy; pick one of: "
            + ", ".join(n for n in policy_names() if policy_info(n).hetero)
        )
    built = spec.build(cfg or ControllerConfig())
    if not isinstance(built, SplitPolicy):
        raise PolicyError(
            f"hetero policy {spec.name!r} built {type(built).__name__}, "
            "expected a SplitPolicy"
        )
    return built


def fleet_policy(
    policy: "PolicySpec | str", cfg: ControllerConfig | None = None
) -> FleetPolicy:
    """Resolve a fleet budget-partitioning selection to a fresh policy.

    The cluster counterpart of :func:`controller_factory` and
    :func:`split_policy`: only valid for registry entries flagged
    ``fleet=True``, whose ``build(cfg)`` returns a
    :class:`~repro.core.fleet.FleetPolicy` rather than a per-socket
    controller factory.
    """
    spec = as_spec(policy)
    if not spec.info.fleet:
        raise PolicyError(
            f"policy {spec.name!r} is not a fleet budget-partitioning "
            "policy; pick one of: "
            + ", ".join(n for n in policy_names() if policy_info(n).fleet)
        )
    built = spec.build(cfg or ControllerConfig())
    if not isinstance(built, FleetPolicy):
        raise PolicyError(
            f"fleet policy {spec.name!r} built {type(built).__name__}, "
            "expected a FleetPolicy"
        )
    return built


def describe_policies() -> str:
    """The ``repro policies`` listing, one block per registered policy."""
    lines: list[str] = []
    for name in policy_names():
        info = policy_info(name)
        section = f"  [{info.paper_section}]" if info.paper_section else ""
        hetero_tag = "  (hetero split)" if info.hetero else ""
        fleet_tag = "  (fleet split)" if info.fleet else ""
        lines.append(
            f"{name:14s} {info.display_name}{section}{hetero_tag}{fleet_tag}"
        )
        lines.append(f"{'':14s}   {info.summary}")
        params = info.param_fields()
        if params:
            rendered = ", ".join(
                f"{f.name}={getattr(info.defaults, f.name)!r}" for f in params
            )
            lines.append(f"{'':14s}   params: {rendered}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Registrations: every controller in the repo, including the baselines
# that were previously unreachable from the sweep path.
# ---------------------------------------------------------------------------


@register_policy(
    "default",
    display_name="Default configuration",
    paper_section="V (baseline)",
    summary="Untouched machine: stock uncore governor, default RAPL limits.",
)
@dataclass(frozen=True)
class DefaultPolicy:
    """Parameters of the default (no-op) policy: none."""

    def build(self, cfg: ControllerConfig) -> ControllerFactory:
        """Per-socket factory for the no-op controller."""
        return DefaultController


@register_policy(
    "duf",
    display_name="DUF dynamic uncore scaling",
    paper_section="II-C",
    summary="Uncore-only dynamic frequency scaling (André et al.).",
)
@dataclass(frozen=True)
class DUFPolicy:
    """Parameters of DUF: none beyond the shared controller config."""

    def build(self, cfg: ControllerConfig) -> ControllerFactory:
        """Per-socket DUF factory over the shared controller config."""
        return lambda: DUF(cfg)


@register_policy(
    "dufp",
    display_name="DUFP uncore scaling + dynamic capping",
    paper_section="IV",
    summary="The paper's contribution: DUF plus dynamic RAPL capping.",
)
@dataclass(frozen=True)
class DUFPPolicy:
    """Parameters of DUFP: none beyond the shared controller config."""

    def build(self, cfg: ControllerConfig) -> ControllerFactory:
        """Per-socket DUFP factory over the shared controller config."""
        return lambda: DUFP(cfg)


@register_policy(
    "dufpf",
    display_name="DUFP + explicit core-frequency ceiling",
    paper_section="VII (future work)",
    summary="DUFP driving IA32_PERF_CTL instead of capping for feedback.",
)
@dataclass(frozen=True)
class DUFPFPolicy:
    """Parameters of DUFPF: none beyond the shared controller config."""

    def build(self, cfg: ControllerConfig) -> ControllerFactory:
        """Per-socket DUFPF factory over the shared controller config."""
        return lambda: DUFPF(cfg)


@register_policy(
    "dufp-adaptive",
    display_name="DUFP with transiently finer interval",
    paper_section="V-A (remedy)",
    summary="DUFP judging strictly for a few ticks after phase changes.",
)
@dataclass(frozen=True)
class AdaptiveDUFPPolicy:
    """Parameters of the adaptive-interval DUFP variant."""

    #: Ticks judged with the sharpened error band after a phase change.
    fine_ticks: int = 3

    def build(self, cfg: ControllerConfig) -> ControllerFactory:
        """Per-socket adaptive-DUFP factory."""
        return lambda: AdaptiveIntervalDUFP(cfg, fine_ticks=self.fine_ticks)


@register_policy(
    "static",
    display_name="Static power cap",
    paper_section="II-A (Fig. 1a)",
    summary="One fixed package cap for the whole run, stock uncore scaling.",
)
@dataclass(frozen=True)
class StaticCapPolicy:
    """Parameters of the whole-run static power cap."""

    #: Package power cap, watts.
    cap_w: float = 110.0

    def label(self) -> str:
        """Parameter-specialised display label."""
        return f"static-{self.cap_w:.0f}W"

    def build(self, cfg: ControllerConfig) -> ControllerFactory:
        """Per-socket static-cap factory."""
        return lambda: StaticPowerCap(self.cap_w)


@register_policy(
    "uncore",
    display_name="Static uncore frequency",
    paper_section="II-B",
    summary="The uncore pinned to one frequency for the whole run.",
)
@dataclass(frozen=True)
class StaticUncorePolicy:
    """Parameters of the pinned-uncore baseline."""

    #: Pinned uncore frequency, GHz (paper's socket: 1.2-2.4).
    freq_ghz: float = 2.4

    def label(self) -> str:
        """Parameter-specialised display label."""
        return f"uncore-{self.freq_ghz:.1f}GHz"

    def build(self, cfg: ControllerConfig) -> ControllerFactory:
        """Per-socket pinned-uncore factory."""
        return lambda: StaticUncore(ghz(self.freq_ghz))


@register_policy(
    "window",
    display_name="Time-windowed power cap",
    paper_section="II-A (Fig. 1b/1c)",
    summary="A cap active only inside [start_s, end_s), then reset.",
)
@dataclass(frozen=True)
class TimeWindowCapPolicy:
    """Parameters of the phase-local (time-windowed) cap."""

    #: Package power cap while the window is active, watts.
    cap_w: float = 110.0
    #: Window start, seconds of run time.
    start_s: float = 0.0
    #: Window end, seconds of run time.
    end_s: float = 10.0

    def label(self) -> str:
        """Parameter-specialised display label."""
        return f"window-{self.cap_w:.0f}W"

    def build(self, cfg: ControllerConfig) -> ControllerFactory:
        """Per-socket windowed-cap factory."""
        return lambda: TimeWindowCap(self.cap_w, self.start_s, self.end_s)


@register_policy(
    "dnpc",
    display_name="DNPC-style frequency-model capper",
    paper_section="VI (related work)",
    summary="Dynamic capping assuming performance scales with core frequency.",
)
@dataclass(frozen=True)
class DNPCPolicy:
    """Parameters of the DNPC-like baseline: none."""

    def build(self, cfg: ControllerConfig) -> ControllerFactory:
        """Per-socket DNPC-like factory."""
        return lambda: DNPCLike(cfg)


@register_policy(
    "budget",
    display_name="Node budget sharing (GEOPM-style)",
    paper_section="VI / VII (complementary)",
    summary="DUF uncore scaling under a coordinator-split node power budget.",
)
@dataclass(frozen=True)
class BudgetPolicy:
    """Parameters of the budget-shared policy.

    ``build`` allocates a fresh :class:`NodeBudgetCoordinator` per run;
    the returned factory registers one member controller per socket, so
    the budget genuinely spans the run's sockets and never leaks
    between runs.
    """

    #: Node-wide power budget shared by every socket of the run, watts
    #: (a 1-socket run owns the full budget).
    watts: float = 110.0
    #: Re-allocate every this many controller ticks.
    period_ticks: int = 5
    #: Extra headroom granted above measured demand, watts.
    headroom_w: float = 5.0

    def build(self, cfg: ControllerConfig) -> ControllerFactory:
        """Fresh coordinator per run; factory registers member sockets."""
        coordinator = NodeBudgetCoordinator(
            total_budget_w=self.watts,
            cfg=cfg,
            period_ticks=self.period_ticks,
            headroom_w=self.headroom_w,
        )
        return coordinator.socket_controller


# ---------------------------------------------------------------------------
# Frequency-governor baselines: the four classic Linux cpufreq policies
# as controllers, so DUFP sweeps against what a sysadmin gets with one
# command (PAPERS.md: "How to Increase Energy Efficiency with a Single
# Linux Command").
# ---------------------------------------------------------------------------


@register_policy(
    "governor-performance",
    display_name="cpufreq performance governor",
    paper_section="V (testbed default)",
    summary="Core-frequency ceiling pinned to the maximum P-state.",
)
@dataclass(frozen=True)
class GovernorPerformancePolicy:
    """Parameters of the performance-governor baseline: none."""

    def build(self, cfg: ControllerConfig) -> ControllerFactory:
        """Per-socket performance-governor factory."""
        return lambda: PerformanceFreqGovernor(cfg)


@register_policy(
    "governor-powersave",
    display_name="cpufreq powersave governor (HWP/EPP biased)",
    paper_section="VI (related work)",
    summary="EPP-biased fixed operating point below the maximum P-state.",
)
@dataclass(frozen=True)
class GovernorPowersavePolicy:
    """Parameters of the powersave-governor baseline."""

    #: Reachable fraction of the floor-to-ceiling frequency span at a
    #: full-performance EPP hint.
    range_fraction: float = 0.5

    def build(self, cfg: ControllerConfig) -> ControllerFactory:
        """Per-socket powersave-governor factory."""
        return lambda: PowersaveFreqGovernor(
            cfg, range_fraction=self.range_fraction
        )


@register_policy(
    "governor-ondemand",
    display_name="cpufreq ondemand governor",
    paper_section="VI (related work)",
    summary="Maximum P-state above up_threshold utilisation, scaled below.",
)
@dataclass(frozen=True)
class GovernorOndemandPolicy:
    """Parameters of the ondemand-governor baseline."""

    #: Utilisation above which the governor jumps to the maximum.
    up_threshold: float = 0.8
    #: Platform peak compute for the utilisation estimate, GFLOPS.
    peak_gflops: float = 180.0

    def build(self, cfg: ControllerConfig) -> ControllerFactory:
        """Per-socket ondemand-governor factory."""
        return lambda: OndemandFreqGovernor(
            cfg,
            peak_gflops=self.peak_gflops,
            up_threshold=self.up_threshold,
        )


@register_policy(
    "governor-schedutil",
    display_name="cpufreq schedutil governor",
    paper_section="VI (related work)",
    summary="The kernel's margin*f_max*util rule, clamped to the P-states.",
)
@dataclass(frozen=True)
class GovernorSchedutilPolicy:
    """Parameters of the schedutil-governor baseline."""

    #: Headroom multiplier on the utilisation-proportional target.
    margin: float = 1.25
    #: Platform peak compute for the utilisation estimate, GFLOPS.
    peak_gflops: float = 180.0

    def build(self, cfg: ControllerConfig) -> ControllerFactory:
        """Per-socket schedutil-governor factory."""
        return lambda: SchedutilFreqGovernor(
            cfg,
            peak_gflops=self.peak_gflops,
            margin=self.margin,
        )


# ---------------------------------------------------------------------------
# Heterogeneous budget-split policies (paper §VII future work): how one
# shared node budget divides between the CPU socket and the GPUs.  Their
# ``build`` returns a SplitPolicy for the hetero engine, not a per-socket
# controller factory — consumed through split_policy(), never directly.
# ---------------------------------------------------------------------------


@register_policy(
    "hetero-static",
    display_name="Static CPU/GPU budget split",
    paper_section="VII (baseline)",
    summary="Fixed CPU fraction, remainder split evenly over the GPUs.",
    hetero=True,
)
@dataclass(frozen=True)
class HeteroStaticPolicy:
    """Parameters of the fixed fractional CPU/GPU split."""

    #: Shared node power budget split across all devices, watts.
    budget_w: float = 300.0
    #: Fraction of the budget statically assigned to the CPU socket.
    cpu_fraction: float = 0.5

    def label(self) -> str:
        """Parameter-specialised display label."""
        return f"hetero-static-{self.budget_w:.0f}W"

    def build(self, cfg: ControllerConfig) -> SplitPolicy:
        """The frozen t=0 split policy."""
        return StaticSplit(self.budget_w, cpu_fraction=self.cpu_fraction)


@register_policy(
    "hetero-coord",
    display_name="Coordinated demand/offer CPU/GPU split",
    paper_section="VII (contribution)",
    summary="Tolerance-aware water-filling re-split every period.",
    hetero=True,
)
@dataclass(frozen=True)
class HeteroCoordPolicy:
    """Parameters of the coordinated demand/offer split."""

    #: Shared node power budget split across all devices, watts.
    budget_w: float = 300.0

    def label(self) -> str:
        """Parameter-specialised display label."""
        return f"hetero-coord-{self.budget_w:.0f}W"

    def build(self, cfg: ControllerConfig) -> SplitPolicy:
        """The demand/offer water-filling split policy."""
        return CoordinatedSplit(self.budget_w)


@register_policy(
    "hetero-fair",
    display_name="FastCap-style fair CPU/GPU split",
    paper_section="VI (related work)",
    summary="Equal fraction of each device's floor-to-ceiling range.",
    hetero=True,
)
@dataclass(frozen=True)
class HeteroFairPolicy:
    """Parameters of the FastCap-style fair split."""

    #: Shared node power budget split across all devices, watts.
    budget_w: float = 300.0

    def label(self) -> str:
        """Parameter-specialised display label."""
        return f"hetero-fair-{self.budget_w:.0f}W"

    def build(self, cfg: ControllerConfig) -> SplitPolicy:
        """The fair equal-fraction split policy."""
        return FairShareSplit(self.budget_w)


# ---------------------------------------------------------------------------
# Fleet budget-partitioning policies (paper §VI, ROADMAP item 2): how
# one global datacenter budget divides across a cluster's nodes.  Their
# ``build`` returns a FleetPolicy for the cluster engine, not a
# per-socket controller factory — consumed through fleet_policy(),
# never directly.
# ---------------------------------------------------------------------------


@register_policy(
    "fleet-static",
    display_name="Static equal-share fleet partition",
    paper_section="VI (baseline)",
    summary="Equal node shares decided once at t=0, never revisited.",
    fleet=True,
)
@dataclass(frozen=True)
class FleetStaticPolicy:
    """Parameters of the equal static fleet partition."""

    #: Global power budget partitioned across all nodes, watts.
    budget_w: float = 250.0

    def label(self) -> str:
        """Parameter-specialised display label."""
        return f"fleet-static-{self.budget_w:.0f}W"

    def build(self, cfg: ControllerConfig) -> FleetPolicy:
        """The frozen t=0 equal-share partition."""
        return StaticFleet(self.budget_w)


@register_policy(
    "fleet-demand",
    display_name="Demand/offer water-filling fleet partition",
    paper_section="VI (contribution)",
    summary="Nodes bid measured power; watts re-partition every period.",
    fleet=True,
)
@dataclass(frozen=True)
class FleetDemandPolicy:
    """Parameters of the demand/offer fleet partition."""

    #: Global power budget partitioned across all nodes, watts.
    budget_w: float = 250.0

    def label(self) -> str:
        """Parameter-specialised display label."""
        return f"fleet-demand-{self.budget_w:.0f}W"

    def build(self, cfg: ControllerConfig) -> FleetPolicy:
        """The demand/offer water-filling partition."""
        return DemandFleet(self.budget_w)


@register_policy(
    "fleet-fair",
    display_name="FastCap-style fair fleet partition",
    paper_section="VI (related work)",
    summary="Equal fraction of each node's floor-to-ceiling range.",
    fleet=True,
)
@dataclass(frozen=True)
class FleetFairPolicy:
    """Parameters of the FastCap-style fair fleet partition."""

    #: Global power budget partitioned across all nodes, watts.
    budget_w: float = 250.0

    def label(self) -> str:
        """Parameter-specialised display label."""
        return f"fleet-fair-{self.budget_w:.0f}W"

    def build(self, cfg: ControllerConfig) -> FleetPolicy:
        """The fair equal-fraction partition."""
        return FairShareFleet(self.budget_w)
