"""DUFP: dynamic uncore frequency scaling **and** dynamic power capping.

The paper's contribution (Section III, Fig. 2).  Every interval DUFP
measures FLOPS/s and memory bandwidth, computes the operational
intensity, and drives two actuators whose decisions are taken
separately:

**Uncore** — exactly DUF's algorithm (shared implementation in
:class:`~repro.core.duf.UncoreDecisionEngine`).

**Power cap** —

* a phase change resets the cap;
* measured power above the cap (the cap failed to latch in time, e.g.
  right after a decrease of both constraints) resets the cap;
* highly memory-intensive phases (OI < 0.02) get unconditional cap
  decreases — the paper's motivating observation that such phases run
  unharmed at the 65 W floor;
* otherwise, FLOPS/s within the tolerated slowdown → decrease; at the
  limit within measurement error → hold; below the limit → increase,
  except in highly CPU-intensive phases (OI > 100) where any violation
  of the FLOPS/s *or bandwidth* tolerance resets the cap outright;
* constraint bookkeeping follows §III: decreases tie PL1 = PL2, an
  increase that reaches the default resets both constraints, and the
  tick after a reset re-ties PL2 to PL1 once power fits.

Two interaction rules couple the actuators (paper, §III):

1. if the previous tick's *uncore increase* did not improve FLOPS/s,
   the power cap is increased even though FLOPS/s are still within the
   tolerated slowdown;
2. after a joint reset the uncore may fail to reach its maximum (the
   old cap's effect lingers), so the reset is verified and reissued.
"""

from __future__ import annotations

import numpy as np

from ..config import ControllerConfig
from ..papi.highlevel import Measurement
from .base import Controller, TickLog
from .detector import (
    OI_HIGHLY_CPU,
    OI_HIGHLY_MEMORY,
    OIClass,
    PhaseDetector,
    classify_oi,
    classify_oi_lanes,
)
from .duf import (
    LANE_DECREASE,
    LANE_INCREASE,
    LANE_RESET,
    LaneControllerState,
    UncoreDecisionEngine,
    engine_decide,
    engine_increase_was_futile,
    engine_on_phase_change,
)
from .tolerance import (
    SlowdownTracker,
    ToleranceVerdict,
    VERDICT_AT_BOUNDARY,
    VERDICT_BELOW,
    VERDICT_WITHIN,
)

__all__ = ["DUFP"]

#: Measured power above ``cap × margin`` counts as "consumed more than
#: the cap": the cap did not latch and must be reset.  The margin
#: absorbs the benign overshoot of phases whose demand at the lowest
#: P-state sits a hair above a deep cap.
OVER_CAP_MARGIN = 1.04


class DUFP(Controller):
    """The combined uncore + dynamic power capping runtime."""

    name = "dufp"

    def __init__(self, cfg: ControllerConfig):
        super().__init__()
        cfg.validate()
        self.cfg = cfg
        self.detector = PhaseDetector(cfg)
        # The cap side keeps its own metric trackers: the paper takes
        # the two actuators' decisions separately.
        self.cap_flops = SlowdownTracker(cfg.tolerated_slowdown, cfg.measurement_error)
        self.cap_bw = SlowdownTracker(cfg.tolerated_slowdown, cfg.measurement_error)
        self._engine: UncoreDecisionEngine | None = None
        self._joint_reset_pending = False
        #: The uncore action taken earlier in the current tick; lets
        #: subclasses coordinate their own actuators with DUF's.
        self._last_uncore_action = "hold"

    @property
    def engine(self) -> UncoreDecisionEngine:
        if self._engine is None:
            raise RuntimeError("dufp: tick before attach")
        return self._engine

    def attach(self, ctx) -> None:
        super().attach(ctx)
        self._engine = UncoreDecisionEngine(self.cfg, ctx.uncore)
        ctx.uncore.reset()

    # -- the tick ---------------------------------------------------------------

    def tick(self, now_s: float, m: Measurement) -> None:
        ctx = self.ctx
        if not m.finite:
            # Defence in depth: the runtime withholds non-finite
            # samples, but a NaN must never reach the trackers or the
            # cap comparisons.  Hold both actuators.
            self._log(now_s, False, "skip", "skip")
            return
        oi = m.operational_intensity
        changed = self.detector.update(oi, m.flops_per_s)

        if changed:
            self._on_phase_change(m)
            self._log(now_s, changed, "reset", "reset")
            return

        # Interaction 2: verify last tick's joint reset landed.
        if self._joint_reset_pending:
            ctx.uncore.ensure_reset()
            self._joint_reset_pending = False

        # Post-reset bookkeeping: re-tie PL2 once power fits the cap.
        ctx.cap.after_reset_tighten(m.package_power_w)

        # The cap failed to hold: consumption exceeds it.  Reset.
        if (
            not ctx.cap.at_default
            and m.package_power_w > ctx.cap.cap_w * OVER_CAP_MARGIN
        ):
            uncore_action = self.engine.decide(m)
            self._observe_cap_metrics(m)
            ctx.cap.reset()
            self._log(now_s, False, "reset", uncore_action)
            return

        # Interaction 1 is judged on the *previous* tick's uncore move,
        # so read it before the engine decides this tick.
        futile_uncore_increase = self.engine.increase_was_futile(m)

        uncore_action = self.engine.decide(m)
        self._last_uncore_action = uncore_action
        cap_action = self._cap_decision(m, oi, futile_uncore_increase)
        self._log(now_s, False, cap_action, uncore_action)

    # -- cap-side logic ------------------------------------------------------------

    def _on_phase_change(self, m: Measurement) -> None:
        self.ctx.cap.reset()
        self.engine.on_phase_change(m)
        self.cap_flops.reset(m.flops_per_s)
        self.cap_bw.reset(m.bytes_per_s)
        self._joint_reset_pending = True

    def _observe_cap_metrics(self, m: Measurement) -> None:
        self.cap_flops.observe(m.flops_per_s)
        self.cap_bw.observe(m.bytes_per_s)

    def _cap_decision(
        self, m: Measurement, oi: float, futile_uncore_increase: bool
    ) -> str:
        cap = self.ctx.cap
        self._observe_cap_metrics(m)

        # Interaction 1: the uncore went up and performance did not
        # follow — raise the cap to rule out any lingering impact.
        if futile_uncore_increase:
            return "increase" if cap.increase() else "hold"

        oi_class = classify_oi(oi, self.cfg)

        # Highly memory-intensive: capping is free, keep going down.
        if oi_class is OIClass.HIGHLY_MEMORY:
            return "decrease" if cap.decrease() else "hold"

        verdict = self.cap_flops.judge(m.flops_per_s)
        if verdict is ToleranceVerdict.WITHIN:
            return "decrease" if cap.decrease() else "hold"
        if verdict is ToleranceVerdict.AT_BOUNDARY:
            # Highly CPU-intensive phases also hold the bandwidth to the
            # tolerated slowdown; a violated bandwidth resets the cap.
            if (
                oi_class is OIClass.HIGHLY_CPU
                and self.cap_bw.judge(m.bytes_per_s) is ToleranceVerdict.BELOW
            ):
                cap.reset()
                return "reset"
            return "hold"

        # FLOPS/s dropped more than tolerated.
        if oi_class is OIClass.HIGHLY_CPU:
            cap.reset()
            return "reset"
        return "increase" if cap.increase() else "hold"

    def _log(
        self, now_s: float, changed: bool, cap_action: str, uncore_action: str
    ) -> None:
        self.log(
            TickLog(
                time_s=now_s,
                cap_w=self.ctx.cap.cap_w,
                uncore_hz=self.ctx.uncore.pinned_freq_hz,
                phase_change=changed,
                cap_action=cap_action,
                uncore_action=uncore_action,
            )
        )

    @staticmethod
    def tick_lanes(
        st: LaneControllerState,
        idx: np.ndarray,
        fl: np.ndarray,
        by: np.ndarray,
        pk: np.ndarray,
        oi: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray]:
        """Lane-parallel :meth:`tick` over the lanes in ``idx``.

        Restages the scalar tick's control flow as disjoint masked
        groups evaluated in the scalar program order.  Two scalar
        branch asymmetries collapse on the vector path:

        * both the over-cap branch and the normal branch run the
          uncore decision identically, so ``engine_decide`` is applied
          once to every non-phase-change lane;
        * ``ensure_reset`` (interaction 2) is provably a no-op here —
          the batch engine keeps a pinned uncore's applied frequency
          equal to its window, so a reset never needs re-issuing; only
          the pending flag is cleared.

        Returns ``(phase_change, cap_actions, uncore_actions)``.
        """
        codes = classify_oi_lanes(
            oi,
            st.oi_highly_memory[idx],
            st.oi_memory_boundary[idx],
            st.oi_highly_cpu[idx],
        )
        changed = st.detector.update(idx, codes, fl)
        n = len(idx)
        cap_action = np.full(n, LANE_RESET, dtype=np.int8)
        unc_action = np.full(n, LANE_RESET, dtype=np.int8)

        # Phase change: joint reset of cap, uncore and all trackers.
        pos_ch = np.flatnonzero(changed)
        ch = idx[pos_ch]
        st.cap.reset(ch)
        engine_on_phase_change(st, ch, fl[pos_ch], by[pos_ch])
        st.cap_flops.reset(ch, fl[pos_ch])
        st.cap_bw.reset(ch, by[pos_ch])
        st.joint_reset_pending[ch] = True

        pos_rest = np.flatnonzero(~changed)
        if len(pos_rest) == 0:
            return changed, cap_action, unc_action
        rest = idx[pos_rest]
        rfl, rby, rpk = fl[pos_rest], by[pos_rest], pk[pos_rest]
        rcodes = codes[pos_rest]

        # Interaction 2 (see above): clear the flag, no re-pin needed.
        st.joint_reset_pending[rest] = False

        # Post-reset bookkeeping: re-tie PL2 once power fits the cap.
        st.cap.after_reset_tighten(rest, rpk)

        # The over-cap test reads the *latched* cap, which no staged
        # pending write (including the tighten above) has moved.
        cap_w = st.cap.pl1_w[rest]
        over = (cap_w < st.cap.default_w) & (rpk > cap_w * OVER_CAP_MARGIN)

        # Interaction 1 is judged on the previous tick's uncore move,
        # so read it before the engine decides this tick.
        futile = engine_increase_was_futile(st, rest, rfl)

        unc_action[pos_rest] = engine_decide(st, rest, rfl, rby)

        # Both scalar branches observe the cap metrics before acting.
        st.cap_flops.observe(rest, rfl)
        st.cap_bw.observe(rest, rby)

        cap_action[pos_rest] = 0  # LANE_HOLD baseline

        # The cap failed to hold: consumption exceeds it.  Reset.
        pos_over = pos_rest[over]
        st.cap.reset(idx[pos_over])
        cap_action[pos_over] = LANE_RESET

        # Normal cap decision for the remaining lanes.
        norm = ~over
        verdict = st.cap_flops.judge(rest, rfl)
        bw_below = st.cap_bw.judge(rest, rby) == VERDICT_BELOW
        not_hm = rcodes != OI_HIGHLY_MEMORY
        highly_cpu = rcodes == OI_HIGHLY_CPU

        m_dec = norm & ~futile & (~not_hm | (not_hm & (verdict == VERDICT_WITHIN)))
        m_res = (
            norm
            & ~futile
            & not_hm
            & (
                ((verdict == VERDICT_AT_BOUNDARY) & highly_cpu & bw_below)
                | ((verdict == VERDICT_BELOW) & highly_cpu)
            )
        )
        m_inc = (norm & futile) | (
            norm & ~futile & not_hm & (verdict == VERDICT_BELOW) & ~highly_cpu
        )

        can_dec = st.cap.decrease(idx[pos_rest[m_dec]])
        cap_action[pos_rest[m_dec][can_dec]] = LANE_DECREASE
        can_inc = st.cap.increase(idx[pos_rest[m_inc]])
        cap_action[pos_rest[m_inc][can_inc]] = LANE_INCREASE
        st.cap.reset(idx[pos_rest[m_res]])
        cap_action[pos_rest[m_res]] = LANE_RESET

        return changed, cap_action, unc_action
