"""Trace sinks: observers of the engine's per-step samples.

The engine used to append every :class:`~repro.sim.result.TraceSample`
to an in-RAM list — fine for one run, ruinous for million-step sweep
cells.  Recording is now an observer protocol: the engine pushes each
sample into a :class:`TraceSink` and never owns the storage policy.

* :class:`InMemoryTraceSink` — today's behaviour, byte-for-byte: the
  full per-socket sample lists end up on ``SocketResult.trace``.
* :class:`StreamingTraceSink` — writes JSONL or CSV rows as they are
  produced; RAM stays O(1) regardless of run length, and the JSONL
  content is byte-identical to serialising an in-memory trace of the
  same run (``jsonl_sample_line`` is the single encoder for both).
* :class:`RingBufferTraceSink` — keeps only the last ``capacity``
  samples per socket (bounded post-mortem window).
* :class:`CompositeTraceSink` — fans each sample out to several sinks,
  so "stream to disk *and* keep the tail in RAM" composes freely.
"""

from __future__ import annotations

import csv
import json
import os
from collections import deque
from typing import IO, TYPE_CHECKING

from ..errors import SimulationError
from .result import TraceSample

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .faults import FaultEvent

__all__ = [
    "TraceSink",
    "InMemoryTraceSink",
    "RingBufferTraceSink",
    "StreamingTraceSink",
    "CompositeTraceSink",
    "jsonl_sample_line",
    "jsonl_event_line",
    "csv_sample_row",
    "CSV_HEADER",
]

#: Column order of streamed CSV rows (socket id + the trace fields).
CSV_HEADER = (
    "socket_id",
    "time_s",
    "core_freq_hz",
    "uncore_freq_hz",
    "package_power_w",
    "dram_power_w",
    "cap_w",
    "flops_rate",
    "bytes_rate",
    "temperature_c",
)


def jsonl_sample_line(socket_id: int, sample: TraceSample) -> str:
    """One JSONL record (with trailing newline) for one trace sample.

    The single encoder shared by the streaming sink and the exporter:
    a streamed file and a serialised in-memory trace of the same run
    are byte-identical because both call this function.
    """
    record = {
        "socket_id": socket_id,
        "time_s": sample.time_s,
        "core_freq_hz": sample.core_freq_hz,
        "uncore_freq_hz": sample.uncore_freq_hz,
        "package_power_w": sample.package_power_w,
        "dram_power_w": sample.dram_power_w,
        "cap_w": sample.cap_w,
        "flops_rate": sample.flops_rate,
        "bytes_rate": sample.bytes_rate,
        "temperature_c": sample.temperature_c,
    }
    return json.dumps(record, separators=(",", ":")) + "\n"


def jsonl_event_line(event: "FaultEvent") -> str:
    """One JSONL record (with trailing newline) for one fault event.

    Event records carry an ``"event"`` key (sample records never do),
    so mixed trace files stay trivially splittable.  Like
    :func:`jsonl_sample_line`, this is the single encoder shared by the
    streaming sink and the exporter, keeping the two byte-identical.
    """
    record = {
        "event": event.channel,
        "time_s": event.time_s,
        "socket_id": event.socket_id,
        "detail": event.detail,
    }
    return json.dumps(record, separators=(",", ":")) + "\n"


def csv_sample_row(socket_id: int, sample: TraceSample) -> list[str]:
    """One formatted CSV row for one trace sample (see ``CSV_HEADER``)."""
    return [
        str(socket_id),
        f"{sample.time_s:.6f}",
        f"{sample.core_freq_hz:.0f}",
        f"{sample.uncore_freq_hz:.0f}",
        f"{sample.package_power_w:.3f}",
        f"{sample.dram_power_w:.3f}",
        f"{sample.cap_w:.1f}",
        f"{sample.flops_rate:.3e}",
        f"{sample.bytes_rate:.3e}",
        "" if sample.temperature_c is None else f"{sample.temperature_c:.2f}",
    ]


class TraceSink:
    """Observer of engine trace samples; default hooks are no-ops.

    Lifecycle: the engine calls :meth:`open` once before the first
    sample, :meth:`record` for every (socket, sample) in simulation
    order, and :meth:`close` exactly once — in a ``finally``, so sinks
    holding file handles are released even when a run raises.
    """

    def open(self, socket_count: int) -> None:
        """Run is starting; ``socket_count`` sockets will report."""

    def record(self, socket_id: int, sample: TraceSample) -> None:
        """One engine-step sample of one socket."""

    def record_event(self, socket_id: int, event: "FaultEvent") -> None:
        """One injected fault event (``socket_id`` is ``-1`` for
        node-wide faults).  Only fault-injected runs ever call this, so
        sinks on the fault-free path behave exactly as before."""

    def close(self) -> None:
        """Run finished (or aborted); release any resources."""

    def collected(self, socket_id: int) -> list[TraceSample]:
        """Samples this sink retained for ``socket_id`` (may be empty).

        The engine copies these onto ``SocketResult.trace``; streaming
        sinks retain nothing and return the default empty list.
        """
        return []

    def events(self) -> "list[FaultEvent]":
        """Fault events this sink retained, in emission order."""
        return []


class InMemoryTraceSink(TraceSink):
    """Full per-socket sample lists in RAM (the classic behaviour)."""

    def __init__(self) -> None:
        self._traces: list[list[TraceSample]] = []
        self._events: "list[FaultEvent]" = []

    def open(self, socket_count: int) -> None:
        """Allocate one list per socket."""
        self._traces = [[] for _ in range(socket_count)]
        self._events = []

    def record(self, socket_id: int, sample: TraceSample) -> None:
        """Append the sample to its socket's list."""
        self._traces[socket_id].append(sample)

    def record_event(self, socket_id: int, event: "FaultEvent") -> None:
        """Retain the fault event (events are sparse; one flat list)."""
        self._events.append(event)

    def collected(self, socket_id: int) -> list[TraceSample]:
        """The socket's full sample list (the list itself, not a copy)."""
        return self._traces[socket_id]

    def events(self) -> "list[FaultEvent]":
        """All retained fault events, in emission order."""
        return self._events


class RingBufferTraceSink(TraceSink):
    """Bounded window: only the last ``capacity`` samples per socket."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError("ring buffer capacity must be at least 1")
        self.capacity = capacity
        self._buffers: list[deque[TraceSample]] = []
        self._events: "deque[FaultEvent]" = deque(maxlen=capacity)
        #: Total samples observed per socket (including evicted ones).
        self.seen: list[int] = []

    def open(self, socket_count: int) -> None:
        """Allocate one bounded deque per socket."""
        self._buffers = [
            deque(maxlen=self.capacity) for _ in range(socket_count)
        ]
        self._events = deque(maxlen=self.capacity)
        self.seen = [0] * socket_count

    def record(self, socket_id: int, sample: TraceSample) -> None:
        """Append, evicting the oldest sample once at capacity."""
        self._buffers[socket_id].append(sample)
        self.seen[socket_id] += 1

    def record_event(self, socket_id: int, event: "FaultEvent") -> None:
        """Keep the event tail, bounded by the same capacity."""
        self._events.append(event)

    def collected(self, socket_id: int) -> list[TraceSample]:
        """The retained tail, oldest first."""
        return list(self._buffers[socket_id])

    def events(self) -> "list[FaultEvent]":
        """The retained fault-event tail, oldest first."""
        return list(self._events)


class StreamingTraceSink(TraceSink):
    """Writes each sample straight to a JSONL or CSV stream.

    ``target`` is a path (opened on :meth:`open`, closed on
    :meth:`close`) or an already-open text stream (left open).  RAM use
    is constant in run length; ``rows`` counts what was written.
    """

    FORMATS = ("jsonl", "csv")

    def __init__(self, target: str | os.PathLike | IO[str], fmt: str = "jsonl"):
        if fmt not in self.FORMATS:
            raise SimulationError(
                f"unknown trace format {fmt!r}; expected one of {self.FORMATS}"
            )
        self.fmt = fmt
        self.rows = 0
        self._target = target
        self._stream: IO[str] | None = None
        self._owns_stream = False
        self._csv_writer = None
        self._events: "list[FaultEvent]" = []

    def open(self, socket_count: int) -> None:
        """Open the target (if a path) and emit the CSV header."""
        if hasattr(self._target, "write"):
            self._stream = self._target  # type: ignore[assignment]
        else:
            self._stream = open(self._target, "w", newline="")
            self._owns_stream = True
        if self.fmt == "csv":
            self._csv_writer = csv.writer(self._stream)
            self._csv_writer.writerow(CSV_HEADER)

    def record(self, socket_id: int, sample: TraceSample) -> None:
        """Write one row; nothing is retained in memory."""
        if self._stream is None:
            raise SimulationError("streaming sink used before open()")
        if self.fmt == "jsonl":
            self._stream.write(jsonl_sample_line(socket_id, sample))
        else:
            self._csv_writer.writerow(csv_sample_row(socket_id, sample))
        self.rows += 1

    def record_event(self, socket_id: int, event: "FaultEvent") -> None:
        """Buffer the event; the block is written on :meth:`close`.

        Events go out as one trailing block (not interleaved) so a
        streamed file stays byte-identical to exporting the same run's
        in-memory trace followed by its ``fault_events`` — the identity
        the fault-free path has always guaranteed.  CSV streams carry
        samples only; events are JSONL-only records.
        """
        self._events.append(event)

    def close(self) -> None:
        """Flush events + stream; close the stream if this sink opened it."""
        if self._stream is None:
            return
        if self.fmt == "jsonl":
            for event in self._events:
                self._stream.write(jsonl_event_line(event))
                self.rows += 1
        self._events = []
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()
        self._stream = None
        self._csv_writer = None


class CompositeTraceSink(TraceSink):
    """Fans every event out to several sinks, in order.

    ``collected`` answers from the first child that retained anything,
    so composing a streaming sink with an in-memory (or ring) sink
    still yields populated ``SocketResult.trace`` lists.
    """

    def __init__(self, *sinks: TraceSink):
        if not sinks:
            raise SimulationError("composite sink needs at least one child")
        self.sinks = sinks

    def open(self, socket_count: int) -> None:
        """Open every child."""
        for sink in self.sinks:
            sink.open(socket_count)

    def record(self, socket_id: int, sample: TraceSample) -> None:
        """Record into every child."""
        for sink in self.sinks:
            sink.record(socket_id, sample)

    def record_event(self, socket_id: int, event: "FaultEvent") -> None:
        """Record the fault event into every child."""
        for sink in self.sinks:
            sink.record_event(socket_id, event)

    def close(self) -> None:
        """Close every child (later children close even if one raises)."""
        errors: list[Exception] = []
        for sink in self.sinks:
            try:
                sink.close()
            except Exception as exc:  # pragma: no cover - defensive
                errors.append(exc)
        if errors:
            raise errors[0]

    def collected(self, socket_id: int) -> list[TraceSample]:
        """The first child's non-empty retained samples, if any."""
        for sink in self.sinks:
            samples = sink.collected(socket_id)
            if samples:
                return samples
        return []

    def events(self) -> "list[FaultEvent]":
        """The first child's non-empty retained fault events, if any."""
        for sink in self.sinks:
            events = sink.events()
            if events:
                return events
        return []
