"""Machine instantiation: topology plus live processor models."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import MachineConfig, yeti_machine_config
from ..errors import SimulationError
from ..hardware.processor import SimulatedProcessor
from ..hardware.topology import Machine, build_machine

__all__ = ["SimulatedMachine", "yeti_machine"]


@dataclass
class SimulatedMachine:
    """A node: static topology plus one live processor model per socket."""

    config: MachineConfig
    topology: Machine = field(init=False)
    processors: list[SimulatedProcessor] = field(init=False)

    def __post_init__(self) -> None:
        self.config.validate()
        self.topology = build_machine(self.config)
        self.processors = [
            SimulatedProcessor(self.config.socket, socket_id=s.socket_id)
            for s in self.topology.sockets
        ]

    @property
    def socket_count(self) -> int:
        return len(self.processors)

    def processor(self, socket_id: int) -> SimulatedProcessor:
        if not 0 <= socket_id < len(self.processors):
            raise SimulationError(f"no socket {socket_id}")
        return self.processors[socket_id]

    def default_power_budget_w(self) -> float:
        """Per-socket default budget (the paper's Fig. 1 denominator)."""
        return self.config.socket.rapl.pl1_default_w


def yeti_machine(socket_count: int = 1) -> SimulatedMachine:
    """A yeti-2-style machine.

    The paper's node has four identical sockets, each running its own
    DUFP instance on a statistically identical share of the OpenMP
    work; per-socket metrics are therefore independent, and the
    experiments default to simulating one socket for speed.  Pass
    ``socket_count=4`` for the full node.
    """
    cfg = yeti_machine_config(socket_count=socket_count)
    return SimulatedMachine(cfg)
