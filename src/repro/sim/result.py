"""Run results: traces, phase spans and derived per-run metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .faults import FaultEvent

__all__ = ["TraceSample", "PhaseSpan", "SocketResult", "RunResult"]


@dataclass(frozen=True)
class TraceSample:
    """One engine-step sample of a socket's observable state."""

    time_s: float
    core_freq_hz: float
    uncore_freq_hz: float
    package_power_w: float
    dram_power_w: float
    cap_w: float
    flops_rate: float
    bytes_rate: float
    #: Package temperature, °C (``None`` when thermals are disabled).
    temperature_c: float | None = None


@dataclass(frozen=True)
class PhaseSpan:
    """When one phase executed on a socket."""

    name: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class SocketResult:
    """Everything measured on one socket during a run."""

    socket_id: int
    finish_time_s: float
    package_energy_j: float
    dram_energy_j: float
    trace: list[TraceSample] = field(default_factory=list)
    phases: list[PhaseSpan] = field(default_factory=list)

    @property
    def avg_package_power_w(self) -> float:
        if self.finish_time_s <= 0:
            raise SimulationError("socket never ran")
        return self.package_energy_j / self.finish_time_s

    @property
    def avg_dram_power_w(self) -> float:
        if self.finish_time_s <= 0:
            raise SimulationError("socket never ran")
        return self.dram_energy_j / self.finish_time_s

    def window_energy_j(self, start_s: float, end_s: float) -> tuple[float, float]:
        """(package, dram) energy inside a time window, from the trace."""
        if not self.trace:
            raise SimulationError("run recorded no trace")
        if not 0.0 <= start_s < end_s:
            raise SimulationError("invalid window")
        pkg = dram = 0.0
        prev_t = 0.0
        for s in self.trace:
            dt = s.time_s - prev_t
            lo = max(prev_t, start_s)
            hi = min(s.time_s, end_s)
            if hi > lo:
                frac = (hi - lo) / dt if dt > 0 else 0.0
                pkg += s.package_power_w * dt * frac
                dram += s.dram_power_w * dt * frac
            prev_t = s.time_s
        return pkg, dram

    def phase_span(self, name_prefix: str) -> PhaseSpan:
        """The first phase whose name starts with ``name_prefix``."""
        for span in self.phases:
            if span.name.startswith(name_prefix):
                return span
        raise SimulationError(f"no phase starting with {name_prefix!r}")

    def average_core_freq_hz(self) -> float:
        """Time-weighted mean core frequency over the run (Fig. 5)."""
        if not self.trace:
            raise SimulationError("run recorded no trace")
        total = 0.0
        prev_t = 0.0
        for s in self.trace:
            total += s.core_freq_hz * (s.time_s - prev_t)
            prev_t = s.time_s
        return total / prev_t if prev_t > 0 else 0.0


@dataclass
class RunResult:
    """A complete run of one application under one controller."""

    app_name: str
    controller_name: str
    sockets: list[SocketResult]
    #: Every injected fault that fired during the run, in order
    #: (empty for runs without a fault plan).
    fault_events: "list[FaultEvent]" = field(default_factory=list)

    @property
    def execution_time_s(self) -> float:
        """Wall time: the slowest socket defines completion."""
        return max(s.finish_time_s for s in self.sockets)

    @property
    def package_energy_j(self) -> float:
        """Total processor energy across sockets."""
        return sum(s.package_energy_j for s in self.sockets)

    @property
    def dram_energy_j(self) -> float:
        return sum(s.dram_energy_j for s in self.sockets)

    @property
    def total_energy_j(self) -> float:
        """Processor + DRAM energy, the paper's Fig. 3c metric."""
        return self.package_energy_j + self.dram_energy_j

    @property
    def avg_package_power_w(self) -> float:
        """Mean per-socket package power (the paper reports per socket)."""
        return self.package_energy_j / self.execution_time_s / len(self.sockets)

    @property
    def avg_dram_power_w(self) -> float:
        return self.dram_energy_j / self.execution_time_s / len(self.sockets)

    def socket(self, socket_id: int = 0) -> SocketResult:
        for s in self.sockets:
            if s.socket_id == socket_id:
                return s
        raise SimulationError(f"no socket {socket_id} in result")
