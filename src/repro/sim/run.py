"""Top-level entry point: run one application under one controller."""

from __future__ import annotations

from typing import Callable

from ..config import ControllerConfig, EngineConfig, NoiseConfig
from ..core.base import Controller
from ..errors import SimulationError
from ..workloads.application import Application
from .engine import SimulationEngine
from .faults import FaultPlan
from .machine import SimulatedMachine, yeti_machine
from .trace import TraceSink

__all__ = ["build_engine", "run_application"]


def build_engine(
    application: Application | list[Application],
    controller_factory: Callable[[], Controller],
    *,
    controller_cfg: ControllerConfig | None = None,
    machine: SimulatedMachine | None = None,
    socket_count: int = 1,
    noise: NoiseConfig | None = None,
    engine_cfg: EngineConfig | None = None,
    seed: int | None = None,
    record_trace: bool = True,
    trace_sink: TraceSink | None = None,
    faults: FaultPlan | None = None,
) -> SimulationEngine:
    """Build (but do not run) the engine :func:`run_application` runs.

    Exposed so callers can hand several engines to
    :func:`repro.sim.batch.run_batch` for lockstep execution; each
    engine still needs its own fresh machine.
    """
    if isinstance(application, list) and machine is None and socket_count == 1:
        socket_count = len(application)
    machine = machine or yeti_machine(socket_count)
    cfg = controller_cfg or ControllerConfig()
    return SimulationEngine(
        machine=machine,
        application=application,
        controllers=[controller_factory() for _ in range(machine.socket_count)],
        controller_cfg=cfg,
        engine_cfg=engine_cfg or EngineConfig(),
        noise=noise or NoiseConfig(),
        seed=seed,
        record_trace=record_trace,
        trace_sink=trace_sink,
        faults=faults,
    )


def run_application(
    application: Application | list[Application],
    controller_factory: Callable[[], Controller],
    *,
    controller_cfg: ControllerConfig | None = None,
    machine: SimulatedMachine | None = None,
    socket_count: int = 1,
    noise: NoiseConfig | None = None,
    engine_cfg: EngineConfig | None = None,
    seed: int | None = None,
    record_trace: bool = True,
    trace_sink: TraceSink | None = None,
    faults: FaultPlan | None = None,
    engine: str = "scalar",
):
    """Simulate ``application`` with a fresh controller per socket.

    ``controller_factory`` is called once per socket, mirroring the
    paper's "one instance of DUFP is started on each socket".  Passing
    a *list* of applications assigns one per socket (a heterogeneous
    node).  A fresh machine is built unless one is supplied (machines
    are stateful and must not be reused across runs).  ``trace_sink``
    overrides the default in-memory trace recording (see
    :mod:`repro.sim.trace`).  ``faults`` injects a seeded
    :class:`~repro.sim.faults.FaultPlan`; ``None`` (or an all-zero
    plan) is the byte-identical fault-free path.

    ``engine`` selects the execution strategy: ``"scalar"`` runs the
    per-tick loop, ``"batch"`` routes the run through the vectorized
    engine (:mod:`repro.sim.batch`) — numerically identical, and
    lane-parallel controller ticks where the policy supports them (see
    ``docs/BATCHING.md``).
    """
    if engine not in ("scalar", "batch"):
        raise SimulationError(f"unknown engine {engine!r}")
    built = build_engine(
        application,
        controller_factory,
        controller_cfg=controller_cfg,
        machine=machine,
        socket_count=socket_count,
        noise=noise,
        engine_cfg=engine_cfg,
        seed=seed,
        record_trace=record_trace,
        trace_sink=trace_sink,
        faults=faults,
    )
    if engine == "batch":
        from .batch import run_batch

        return run_batch([built])[0]
    return built.run()
