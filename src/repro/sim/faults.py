"""Deterministic fault injection for the simulated substrate.

Real power-capping runtimes live with messy telemetry: ``rdmsr`` calls
fail transiently, counters go stale or wrap mid-read, power meters drop
samples, RAPL limit writes take "some time" to latch (the paper resets
the cap when consumption exceeds it for exactly this reason), and
control timers miss or jitter.  This module makes those failure modes
first-class, seeded and schedulable, so the controllers' degradation
behaviour is testable instead of theoretical.

* :class:`FaultPlan` — a frozen, picklable description of *which* fault
  channels fire and *how often*.  It threads through
  :class:`~repro.experiments.executor.RunSpec` and folds into the
  result-cache digest, so two sweeps differing only in a fault rate
  never share cached cells.  A plan with every rate at zero is
  normalised away (``active`` is ``False``) and is contractually
  indistinguishable — byte-identical traces, identical digests — from
  running with no plan at all.
* :class:`FaultInjector` — the per-run dice roller.  It draws from its
  own child RNG stream (never the engine's), so enabling a channel
  cannot perturb workload jitter or measurement noise, and emits a
  :class:`FaultEvent` through the run's
  :class:`~repro.sim.trace.TraceSink` for every fault that fires.
* :func:`parse_fault_plan` — the CLI grammar
  (``msr_fail=0.01,cap_latch_fail=0.05``), mirroring the policy
  parameter syntax.

Determinism: the injector seeds ``default_rng([seed, salt, _STREAM])``
and a channel whose rate is zero draws nothing, so runs are bitwise
reproducible for a given ``(FaultPlan, seed)`` and unaffected channels
keep their streams even as other rates change from zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..config import validate_bounded_fields
from ..errors import FaultInjectionError

__all__ = [
    "FaultPlan",
    "FaultEvent",
    "FaultInjector",
    "parse_fault_plan",
    "FAULT_CHANNELS",
    "NODE_WIDE",
]

#: Fixed stream label decorrelating the fault RNG from the engine RNG,
#: which is seeded from the same integer.
_STREAM = 0xFA17

#: ``socket_id`` used for node-wide events (missed/jittered ticks hit
#: every socket's controller at once).
NODE_WIDE = -1


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, schedulable fault channels for one run.

    All ``*_rate`` fields are per-opportunity probabilities in
    ``[0, 1]``: per meter sample for the counter channels, per RAPL
    limit write for the latch channels, per due tick for the timer
    channels.  ``start_s``/``stop_s`` bound the window of simulated
    time in which any channel may fire, making plans schedulable
    ("inject only mid-run").

    The dataclass is frozen, picklable and canonically hashable — it
    participates in :func:`repro.config.config_digest` exactly like a
    :class:`~repro.core.registry.PolicySpec`.
    """

    #: Probability a meter sample fails outright (``rdmsr`` raising,
    #: the PAPI read returning an error) — the controller tick sees no
    #: fresh measurement at all.
    msr_read_fail_rate: float = field(default=0.0, metadata={"range": (0.0, 1.0)})
    #: Probability a meter sample returns the *previous* interval's
    #: values unchanged (stale/stuck counters).
    counter_stuck_rate: float = field(default=0.0, metadata={"range": (0.0, 1.0)})
    #: Probability an energy-counter read lands exactly on a wrap the
    #: delta correction misses: the interval's package/DRAM energy
    #: reads as zero (finite but wrong).
    counter_rollover_rate: float = field(default=0.0, metadata={"range": (0.0, 1.0)})
    #: Probability the power meter drops the interval: power fields
    #: come back NaN and the runtime must recover.
    power_dropout_rate: float = field(default=0.0, metadata={"range": (0.0, 1.0)})
    #: Probability a RAPL limit write is silently lost (the cap never
    #: latches — the situation the paper's reset rule exists for).
    cap_latch_fail_rate: float = field(default=0.0, metadata={"range": (0.0, 1.0)})
    #: Probability a RAPL limit write latches late by
    #: ``latch_delay_extra_s`` on top of the configured delay.
    latch_delay_rate: float = field(default=0.0, metadata={"range": (0.0, 1.0)})
    #: Extra latch latency applied when ``latch_delay_rate`` fires, s.
    latch_delay_extra_s: float = field(
        default=0.050, metadata={"range": (0.0, 10.0)}
    )
    #: Probability a due controller tick is skipped entirely (node
    #: wide: no socket samples or acts; counters keep accumulating).
    tick_miss_rate: float = field(default=0.0, metadata={"range": (0.0, 1.0)})
    #: Probability the next tick is scheduled late (timer jitter).
    tick_jitter_rate: float = field(default=0.0, metadata={"range": (0.0, 1.0)})
    #: Upper bound of the uniform extra delay when jitter fires, s.
    tick_jitter_max_s: float = field(
        default=0.020, metadata={"range": (0.0, 10.0)}
    )
    #: Probability an ``nvidia-smi -pl``-style GPU power-limit write is
    #: silently lost (the board keeps its previous limit) — the GPU
    #: counterpart of ``cap_latch_fail_rate``.  Hetero runs only; the
    #: ``digest_omit_default`` metadata keeps every pre-existing plan's
    #: digest byte-identical while the channel is off.
    gpu_cap_latch_fail_rate: float = field(
        default=0.0,
        metadata={"range": (0.0, 1.0), "digest_omit_default": True},
    )
    #: Probability a GPU kernel launch stalls in the queue (driver
    #: hiccup, context switch) for ``gpu_stall_s`` before starting.
    gpu_queue_stall_rate: float = field(
        default=0.0,
        metadata={"range": (0.0, 1.0), "digest_omit_default": True},
    )
    #: Stall duration applied when ``gpu_queue_stall_rate`` fires, s.
    gpu_stall_s: float = field(
        default=0.25,
        metadata={"range": (0.0, 10.0), "digest_omit_default": True},
    )
    #: Probability (per step with a C-state model) the package residency
    #: counters truncate to 32 bits — the classic firmware-accounting
    #: rollover telemetry must survive.  Only sockets configured with a
    #: :class:`~repro.config.CStateConfig` consult the channel; the
    #: ``digest_omit_default`` metadata keeps pre-existing plan digests
    #: byte-identical while it is off.
    cstate_rollover_rate: float = field(
        default=0.0,
        metadata={"range": (0.0, 1.0), "digest_omit_default": True},
    )
    #: Probability an EPP (HWP request) write is dropped by the firmware
    #: mediator — the hint register keeps its previous value.  Only
    #: sockets configured with an :class:`~repro.config.EPBConfig`
    #: consult the channel.
    epp_write_latch_fail_rate: float = field(
        default=0.0,
        metadata={"range": (0.0, 1.0), "digest_omit_default": True},
    )
    #: Simulated time at which the channels arm, seconds.
    start_s: float = 0.0
    #: Simulated time at which the channels disarm, seconds.
    stop_s: float = math.inf
    #: Folded into the injector seed so two otherwise-identical plans
    #: can draw decorrelated fault streams.
    seed_salt: int = 0

    def validate(self) -> None:
        """Range-check every bounded field, naming the offender."""
        validate_bounded_fields(self)
        if self.start_s < 0 or self.stop_s < self.start_s:
            raise FaultInjectionError(
                "FaultPlan requires 0 <= start_s <= stop_s "
                f"(got start_s={self.start_s!r}, stop_s={self.stop_s!r})"
            )

    @property
    def active(self) -> bool:
        """True if any channel can ever fire."""
        return any(getattr(self, name) > 0.0 for name in FAULT_CHANNELS.values())

    @classmethod
    def zero(cls) -> "FaultPlan":
        """The all-channels-off plan (equivalent to no plan at all)."""
        return cls()


#: CLI/channel-name → rate-field map: the spec grammar's vocabulary and
#: the definition of "a channel" for :attr:`FaultPlan.active`.
FAULT_CHANNELS: dict[str, str] = {
    "msr_fail": "msr_read_fail_rate",
    "stuck": "counter_stuck_rate",
    "rollover": "counter_rollover_rate",
    "power_dropout": "power_dropout_rate",
    "cap_latch_fail": "cap_latch_fail_rate",
    "latch_delay": "latch_delay_rate",
    "tick_miss": "tick_miss_rate",
    "tick_jitter": "tick_jitter_rate",
    "gpu_cap_latch_fail": "gpu_cap_latch_fail_rate",
    "gpu_stall": "gpu_queue_stall_rate",
    "cstate_rollover": "cstate_rollover_rate",
    "epp_latch_fail": "epp_write_latch_fail_rate",
}

#: Non-rate fields settable through the spec grammar.
_EXTRA_FIELDS = (
    "latch_delay_extra_s",
    "tick_jitter_max_s",
    "gpu_stall_s",
    "start_s",
    "stop_s",
    "seed_salt",
)


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse ``"msr_fail=0.01,cap_latch_fail=0.05,start_s=2"``.

    Keys are the channel names of :data:`FAULT_CHANNELS` (or their full
    ``*_rate`` field names) plus the scheduling/magnitude fields; values
    are numbers.  Unknown keys and malformed pairs raise
    :class:`~repro.errors.FaultInjectionError`; out-of-range values
    raise :class:`~repro.errors.ConfigurationError` via
    :meth:`FaultPlan.validate`.
    """
    if not text or not text.strip():
        raise FaultInjectionError("empty fault-plan spec")
    known = dict(FAULT_CHANNELS)
    known.update({f: f for f in FAULT_CHANNELS.values()})
    known.update({f: f for f in _EXTRA_FIELDS})
    kwargs: dict[str, float | int] = {}
    for pair in text.split(","):
        pair = pair.strip()
        if not pair:
            continue
        if "=" not in pair:
            raise FaultInjectionError(
                f"fault-plan entry {pair!r} is not key=value"
            )
        key, _, raw = pair.partition("=")
        key = key.strip()
        if key not in known:
            raise FaultInjectionError(
                f"unknown fault channel {key!r}; known: "
                f"{', '.join(sorted(set(known)))}"
            )
        fld = known[key]
        try:
            value: float | int = int(raw) if fld == "seed_salt" else float(raw)
        except ValueError as exc:
            raise FaultInjectionError(
                f"fault-plan value {raw!r} for {key!r} is not a number"
            ) from exc
        if fld in kwargs:
            raise FaultInjectionError(f"duplicate fault channel {key!r}")
        kwargs[fld] = value
    plan = FaultPlan(**kwargs)
    plan.validate()
    return plan


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in traces and run results."""

    #: Simulated time the fault fired, seconds.
    time_s: float
    #: Affected socket, or ``-1`` for node-wide (tick) faults.
    socket_id: int
    #: Channel name (a key of :data:`FAULT_CHANNELS`).
    channel: str
    #: Free-form magnitude/context (e.g. the injected extra delay).
    detail: str = ""


class FaultInjector:
    """Per-run fault dice, wired into meters, RAPL and the tick loop.

    One injector serves every socket of a run.  It owns a dedicated RNG
    stream (derived from the run seed and the plan's ``seed_salt``) so
    the engine's noise streams are untouched, keeps the authoritative
    record of fired events (:attr:`events`), and forwards each event to
    the run's trace sink through ``emit`` so streamed JSONL traces show
    faults alongside the controller's actions.

    The engine advances :attr:`now_s` every step; channel draws outside
    the plan's ``[start_s, stop_s)`` window return "no fault" without
    consuming randomness.
    """

    def __init__(
        self,
        plan: FaultPlan,
        seed: int,
        emit: Callable[[int, FaultEvent], None] | None = None,
    ):
        plan.validate()
        if not plan.active:
            raise FaultInjectionError(
                "refusing to build an injector for an all-zero FaultPlan "
                "(pass faults=None instead)"
            )
        self.plan = plan
        self.rng = np.random.default_rng([abs(int(seed)), plan.seed_salt, _STREAM])
        self.emit = emit
        self.events: list[FaultEvent] = []
        self.now_s = 0.0

    # -- bookkeeping -------------------------------------------------------------

    def advance(self, now_s: float) -> None:
        """The engine's clock; timestamps every subsequent event."""
        self.now_s = now_s

    @property
    def armed(self) -> bool:
        return self.plan.start_s <= self.now_s < self.plan.stop_s

    def _fire(self, socket_id: int, channel: str, detail: str = "") -> None:
        event = FaultEvent(
            time_s=self.now_s, socket_id=socket_id, channel=channel, detail=detail
        )
        self.events.append(event)
        if self.emit is not None:
            self.emit(socket_id, event)

    def note(self, socket_id: int, channel: str, detail: str = "") -> None:
        """Record an externally-observed consequence of injected faults
        (e.g. the runtime's safe reset) in the same event stream, so
        traces show cause and effect side by side.  Consumes no
        randomness."""
        self._fire(socket_id, channel, detail)

    def _draw(self, rate: float) -> bool:
        """One Bernoulli draw; zero-rate channels consume no randomness."""
        if rate <= 0.0 or not self.armed:
            return False
        return bool(self.rng.random() < rate)

    # -- meter channels (per sample, per socket) ---------------------------------

    def msr_read_fails(self, socket_id: int) -> bool:
        """Should this sample raise like a failed ``rdmsr``?"""
        if self._draw(self.plan.msr_read_fail_rate):
            self._fire(socket_id, "msr_fail")
            return True
        return False

    def counter_stuck(self, socket_id: int) -> bool:
        """Should this sample return the previous interval's values?"""
        if self._draw(self.plan.counter_stuck_rate):
            self._fire(socket_id, "stuck")
            return True
        return False

    def counter_rollover(self, socket_id: int) -> bool:
        """Should the energy counters read a missed wrap (zero delta)?"""
        if self._draw(self.plan.counter_rollover_rate):
            self._fire(socket_id, "rollover")
            return True
        return False

    def power_dropout(self, socket_id: int) -> bool:
        """Should the power meter drop this interval (NaN readings)?"""
        if self._draw(self.plan.power_dropout_rate):
            self._fire(socket_id, "power_dropout")
            return True
        return False

    # -- RAPL latch channels (per limit write) -----------------------------------

    def latch_port(self, socket_id: int) -> Callable[[], tuple[bool, float]]:
        """The hook a socket's RAPL model consults on every limit write.

        Returns ``(dropped, extra_delay_s)``: a dropped write is
        silently lost (the cap never latches); a positive extra delay
        stretches the actuation latency for this write only.
        """

        def consult() -> tuple[bool, float]:
            if self._draw(self.plan.cap_latch_fail_rate):
                self._fire(socket_id, "cap_latch_fail")
                return True, 0.0
            if self._draw(self.plan.latch_delay_rate):
                extra = self.plan.latch_delay_extra_s
                self._fire(socket_id, "latch_delay", detail=f"+{extra:g}s")
                return False, extra
            return False, 0.0

        return consult

    # -- GPU channels (hetero runs; device_id is the trace socket id) ------------

    def gpu_cap_latch_fails(self, device_id: int) -> bool:
        """Should this GPU power-limit write be silently lost?"""
        if self._draw(self.plan.gpu_cap_latch_fail_rate):
            self._fire(device_id, "gpu_cap_latch_fail")
            return True
        return False

    def gpu_queue_stall_s(self, device_id: int) -> float:
        """Queue stall before the next kernel launch (0.0 = no stall)."""
        if self._draw(self.plan.gpu_queue_stall_rate):
            stall = self.plan.gpu_stall_s
            self._fire(device_id, "gpu_stall", detail=f"+{stall:g}s")
            return stall
        return 0.0

    # -- platform-model channels (C-state / EPB sockets only) --------------------

    def cstate_rollover(self, socket_id: int) -> bool:
        """Should the residency counters truncate to 32 bits this step?"""
        if self._draw(self.plan.cstate_rollover_rate):
            self._fire(socket_id, "cstate_rollover")
            return True
        return False

    def epp_write_latch_fails(self, socket_id: int) -> bool:
        """Should this EPP (HWP request) write be silently dropped?"""
        if self._draw(self.plan.epp_write_latch_fail_rate):
            self._fire(socket_id, "epp_latch_fail")
            return True
        return False

    # -- tick channels (per due tick, node-wide) ---------------------------------

    def tick_missed(self) -> bool:
        """Should the due controller tick be skipped outright?"""
        if self._draw(self.plan.tick_miss_rate):
            self._fire(NODE_WIDE, "tick_miss")
            return True
        return False

    def tick_jitter_s(self) -> float:
        """Extra delay before the next tick (0.0 when jitter holds off)."""
        if self._draw(self.plan.tick_jitter_rate):
            extra = float(self.rng.random() * self.plan.tick_jitter_max_s)
            self._fire(NODE_WIDE, "tick_jitter", detail=f"+{extra:.6f}s")
            return extra
        return 0.0
