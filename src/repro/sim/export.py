"""Result export: CSV traces and JSON summaries.

The paper's figures are time series and per-configuration aggregates;
downstream users will want both in standard formats.  These writers
are deliberately dependency-free (csv/json from the standard library)
and stream — a 400 s trace at 10 ms resolution is 40 k rows.
"""

from __future__ import annotations

import csv
import json
import io
from typing import IO

from ..errors import SimulationError
from .faults import NODE_WIDE, FaultEvent
from .result import RunResult, SocketResult
from .trace import jsonl_event_line, jsonl_sample_line

__all__ = [
    "trace_to_csv",
    "write_trace_csv",
    "trace_to_jsonl",
    "write_trace_jsonl",
    "run_summary",
    "write_summary_json",
]

#: Column order of the trace CSV.
TRACE_FIELDS = (
    "time_s",
    "core_freq_hz",
    "uncore_freq_hz",
    "package_power_w",
    "dram_power_w",
    "cap_w",
    "flops_rate",
    "bytes_rate",
    "temperature_c",
)


def trace_to_csv(socket: SocketResult, stream: IO[str]) -> int:
    """Write one socket's trace as CSV; returns the row count."""
    if not socket.trace:
        raise SimulationError("run recorded no trace (record_trace=False?)")
    writer = csv.writer(stream)
    writer.writerow(TRACE_FIELDS)
    rows = 0
    for s in socket.trace:
        writer.writerow(
            [
                f"{s.time_s:.6f}",
                f"{s.core_freq_hz:.0f}",
                f"{s.uncore_freq_hz:.0f}",
                f"{s.package_power_w:.3f}",
                f"{s.dram_power_w:.3f}",
                f"{s.cap_w:.1f}",
                f"{s.flops_rate:.3e}",
                f"{s.bytes_rate:.3e}",
                "" if s.temperature_c is None else f"{s.temperature_c:.2f}",
            ]
        )
        rows += 1
    return rows


def write_trace_csv(result: RunResult, path: str, socket_id: int = 0) -> int:
    """Write a socket's trace to ``path``; returns the row count."""
    with open(path, "w", newline="") as f:
        return trace_to_csv(result.socket(socket_id), f)


def trace_to_jsonl(
    socket: SocketResult,
    stream: IO[str],
    events: "list[FaultEvent] | None" = None,
) -> int:
    """Write one socket's trace as JSONL; returns the line count.

    Uses the same encoders as the streaming JSONL sink
    (:func:`repro.sim.trace.jsonl_sample_line` /
    :func:`repro.sim.trace.jsonl_event_line`), so serialising an
    in-memory trace is byte-identical to having streamed the run:
    samples first, then ``events`` (if given) as one trailing block —
    the same layout :class:`~repro.sim.trace.StreamingTraceSink`
    produces.
    """
    if not socket.trace:
        raise SimulationError("run recorded no trace (record_trace=False?)")
    lines = 0
    for s in socket.trace:
        stream.write(jsonl_sample_line(socket.socket_id, s))
        lines += 1
    for event in events or ():
        stream.write(jsonl_event_line(event))
        lines += 1
    return lines


def write_trace_jsonl(result: RunResult, path: str, socket_id: int = 0) -> int:
    """Write a socket's trace to ``path`` as JSONL; returns the line count.

    Fault events concerning the socket (and node-wide ones) are
    appended after the samples, mirroring the streamed-file layout.
    """
    events = [
        e
        for e in result.fault_events
        if e.socket_id in (socket_id, NODE_WIDE)
    ]
    with open(path, "w") as f:
        return trace_to_jsonl(result.socket(socket_id), f, events=events)


def run_summary(result: RunResult) -> dict:
    """A JSON-serialisable summary of one run.

    Fault-injected runs gain a ``fault_events`` list; fault-free runs
    keep the exact historic key set.
    """
    summary = {
        "application": result.app_name,
        "controller": result.controller_name,
        "execution_time_s": result.execution_time_s,
        "avg_package_power_w": result.avg_package_power_w,
        "avg_dram_power_w": result.avg_dram_power_w,
        "package_energy_j": result.package_energy_j,
        "dram_energy_j": result.dram_energy_j,
        "total_energy_j": result.total_energy_j,
        "sockets": [
            {
                "socket_id": s.socket_id,
                "finish_time_s": s.finish_time_s,
                "package_energy_j": s.package_energy_j,
                "dram_energy_j": s.dram_energy_j,
                "avg_core_freq_hz": (
                    s.average_core_freq_hz() if s.trace else None
                ),
                "phases": [
                    {"name": p.name, "start_s": p.start_s, "end_s": p.end_s}
                    for p in s.phases
                ],
            }
            for s in result.sockets
        ],
    }
    if result.fault_events:
        summary["fault_events"] = [
            {
                "time_s": e.time_s,
                "socket_id": e.socket_id,
                "channel": e.channel,
                "detail": e.detail,
            }
            for e in result.fault_events
        ]
    return summary


def write_summary_json(result: RunResult, path: str, *, indent: int = 1) -> None:
    """Write the run summary to ``path`` as JSON."""
    with open(path, "w") as f:
        json.dump(run_summary(result), f, indent=indent)


def trace_csv_string(result: RunResult, socket_id: int = 0) -> str:
    """The trace CSV as a string (convenience for small runs/tests)."""
    buf = io.StringIO()
    trace_to_csv(result.socket(socket_id), buf)
    return buf.getvalue()
