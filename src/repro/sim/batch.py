"""Vectorized batch simulation: N independent runs in lockstep.

:class:`BatchSimulationEngine` advances a batch of independent
:class:`~repro.sim.engine.SimulationEngine` runs (different seeds,
tolerances, controllers, applications — same :class:`~repro.config.
SocketConfig` and engine ``dt``) with one array operation per model
step across all lanes, where a *lane* is one ``(run, socket)`` pair.

The design is a synced facade, not a reimplementation of the stack:

* Each run still builds its full scalar object graph through
  :meth:`SimulationEngine.prepare` — controllers, meters, powercap
  zones, MSR files, fault injectors, trace sinks — so every controller
  decision, noise draw and fault draw happens in exactly the code that
  the scalar engine runs.
* Only the per-step hardware physics (RAPL firmware, DVFS resolution,
  uncore governor, roofline, power, thermal, counters) is vectorized.
  Just before a run's controller tick becomes due, the lane arrays are
  *scattered* back into that run's objects; after the tick the
  actuator state is *gathered* back out.
* Fault-free runs whose controllers all publish a lane-parallel tick
  form (:func:`repro.core.registry.vector_tick_form`) skip the
  per-tick scatter/gather entirely: measurement, decision and
  actuation execute as masked vector ops directly on the lane arrays
  (see :func:`controller_lane_fallback_reason` for the eligibility
  rules).  The scalar object graph of such a run is synced once, when
  the run finishes, and stays the differential-equivalence oracle.

The contract — enforced by ``tests/test_batch_equivalence.py`` — is
numerical identity with the scalar engine: exact for every integer and
boolean quantity (counters, fault draws, PROCHOT), bit-identical for
floats in practice (the kernels mirror the scalar evaluation order,
route ``exp`` through :func:`math.exp` per unique argument instead of
``np.exp``, and the roofline p-norm through :func:`repro.units.
smooth_max` — ``np.power`` is *not* bit-identical to Python ``**``).
The equivalence tests assert ≤1e-9 relative error to leave headroom
for platform libm differences.

Runs whose hardware carries a non-default governor type fall back to
the scalar engine in :func:`run_batch` (see ``docs/BATCHING.md``).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.base import TickLog
from ..core.capping import CapLanes
from ..core.detector import PhaseDetectorLanes
from ..core.duf import LANE_ACTIONS, LaneControllerState
from ..core.registry import vector_tick_form
from ..core.tolerance import SlowdownLanes
from ..core.uncore_actuator import UncoreLanes
from ..errors import SimulationError
from ..hardware.dvfs import PerformanceGovernor, PowersaveGovernor
from ..hardware.uncore import DefaultUncoreGovernor, TpmiUncore
from ..papi.events import CACHE_LINE_BYTES
from ..units import smooth_max
from .engine import _DONE_EPS, _MIN_SLICE_S, RunContext, SimulationEngine
from .result import PhaseSpan, RunResult, TraceSample

__all__ = [
    "BatchSimulationEngine",
    "run_batch",
    "batch_fallback_reason",
    "controller_lane_fallback_reason",
]


def batch_fallback_reason(engine: SimulationEngine) -> str | None:
    """Why ``engine`` cannot join a batch (``None`` when it can).

    The batch kernels hard-code the stock governor behaviours and the
    legacy single-domain platform models; any custom governor object
    could carry state or policy the arrays do not model, and the
    opt-in platform models (multi-die uncore, C-states, EPB/EPP) only
    exist in the scalar object graph, so such runs take the scalar
    path.
    """
    for proc in engine.machine.processors:
        if type(proc.dvfs.governor) not in (
            PerformanceGovernor,
            PowersaveGovernor,
        ):
            return (
                f"non-default cpufreq governor {type(proc.dvfs.governor).__name__}"
            )
        if type(proc.uncore.governor) is not DefaultUncoreGovernor:
            return (
                f"non-default uncore governor {type(proc.uncore.governor).__name__}"
            )
        if isinstance(proc.uncore, TpmiUncore):
            return (
                f"multi-die uncore ({proc.config.uncore.die_count} dies) "
                "models per-die clocks the lockstep arrays do not"
            )
        if proc.cstates is not None:
            return "C-state residency model needs the scalar power path"
        if proc.epb_model is not None:
            return "EPB/EPP hint model needs the scalar operating-point path"
    return None


def controller_lane_fallback_reason(engine: SimulationEngine) -> str | None:
    """Why ``engine``'s ticks cannot run lane-parallel (``None``: they can).

    A run stays inside the batch either way; this only decides whether
    its controller ticks execute as masked vector ops or through the
    per-run scatter/gather sync.  The vector path requires:

    * no active fault plan — injected meter/tick/latch faults flow
      through the scalar runtime's degraded-telemetry machinery, which
      only the real object graph implements;
    * a single-domain uncore — the vector actuator models one uncore
      clock per lane, so per-die (TPMI) sockets get their own pinned
      reason rather than falling through to a generic one;
    * every controller registered a lane-parallel tick form (exact
      type match: subclasses carry extra state the vector forms do not
      model and fall back automatically);
    * ``cap_floor_w`` at or above the RAPL minimum limit — a lower
      floor makes the scalar actuator raise ``RAPLError`` through the
      powercap zone, a behaviour the vector path must not paper over.
    """
    if engine.faults is not None and engine.faults.active:
        return "active fault plan needs the scalar telemetry stack"
    for proc in engine.machine.processors:
        if isinstance(proc.uncore, TpmiUncore):
            return (
                f"multi-die uncore ({proc.config.uncore.die_count} dies): "
                "lane kernels model one uncore clock per lane"
            )
    for ctrl in engine.controllers:
        if vector_tick_form(ctrl) is None:
            return (
                f"controller {type(ctrl).__name__} has no vector tick form"
            )
    min_limit = min(p.rapl.cfg.min_limit_w for p in engine.machine.processors)
    if engine.controller_cfg.cap_floor_w < min_limit:
        return (
            f"cap_floor_w {engine.controller_cfg.cap_floor_w} W below the "
            f"RAPL minimum limit {min_limit} W (scalar path raises)"
        )
    return None


class BatchSimulationEngine:
    """Lockstep execution of compatible simulation runs.

    All engines must share one :class:`~repro.config.SocketConfig`
    and one engine ``dt_s`` (the lockstep grid); everything else —
    seeds, controllers, controller configs, applications, fault plans,
    per-run socket counts, trace sinks — may differ per run.
    """

    def __init__(self, engines: Sequence[SimulationEngine]):
        if not engines:
            raise SimulationError("batch needs at least one engine")
        if len({id(e.machine) for e in engines}) != len(engines):
            raise SimulationError("batched engines must not share a machine")
        first = engines[0]
        self.socket_cfg = first.machine.config.socket
        self.dt = first.engine_cfg.dt_s
        for e in engines:
            reason = batch_fallback_reason(e)
            if reason is not None:
                raise SimulationError(f"engine is not batchable: {reason}")
            if e.machine.config.socket != self.socket_cfg:
                raise SimulationError(
                    "batched engines must share one SocketConfig"
                )
            if e.engine_cfg.dt_s != self.dt:
                raise SimulationError("batched engines must share one dt_s")
        self.engines = list(engines)

    # -- run -----------------------------------------------------------------------

    def run(self) -> list[RunResult]:
        """Execute every run to completion; results in engine order."""
        ctxs = [e.prepare() for e in self.engines]
        for ctx in ctxs:
            ctx.runtime.start()
        self._build_lanes(ctxs)

        closed: set[int] = set()
        self._tracing = any(ctx.sink is not None for ctx in ctxs)
        for e, ctx in zip(self.engines, ctxs):
            if ctx.sink is not None:
                ctx.sink.open(e.machine.socket_count)
        try:
            with np.errstate(
                divide="ignore", invalid="ignore", over="ignore"
            ):
                self._loop(ctxs, closed)
        finally:
            for r, ctx in enumerate(ctxs):
                if ctx.sink is not None and r not in closed:
                    ctx.sink.close()

        results = []
        for r, (e, ctx) in enumerate(zip(self.engines, ctxs)):
            lanes = self.run_lanes[r]
            results.append(
                e.collect(
                    ctx,
                    [float(self.finish[l]) for l in lanes],
                    [self.spans[l] for l in lanes],
                )
            )
        return results

    # -- setup ----------------------------------------------------------------------

    def _build_lanes(self, ctxs: list[RunContext]) -> None:
        engines = self.engines
        self.procs = []
        self.run_of_list: list[int] = []
        self.run_lanes: list[list[int]] = []
        self.phases: list[tuple] = []
        for r, (e, ctx) in enumerate(zip(engines, ctxs)):
            lanes = []
            for s, proc in enumerate(e.machine.processors):
                lanes.append(len(self.procs))
                self.procs.append(proc)
                self.run_of_list.append(r)
                self.phases.append(tuple(ctx.socket_apps[s].phases))
            self.run_lanes.append(lanes)
        L = self.L = len(self.procs)
        R = len(engines)
        self.run_of = np.array(self.run_of_list)

        cfg = self.socket_cfg
        core, unc, pwr, mem = cfg.core, cfg.uncore, cfg.power, cfg.memory
        self.count = core.count
        self.cmin, self.cmax, self.cstep = (
            core.min_freq_hz,
            core.max_freq_hz,
            core.step_hz,
        )
        self.base_hz = core.base_freq_hz
        self.avx_lic, self.avx_max = core.avx_license_fpc, core.avx_max_freq_hz
        self.avx_on = math.isfinite(self.avx_lic)
        self.umin, self.umax, self.ustep = (
            unc.min_freq_hz,
            unc.max_freq_hz,
            unc.step_hz,
        )
        self.static_w, self.a0, self.u0 = (
            pwr.static_w,
            pwr.core_idle_fraction,
            pwr.uncore_idle_fraction,
        )
        self.ck = core.count * pwr.k_core
        self.k_uncore = pwr.k_uncore
        self.peak_bw = mem.peak_bw_bytes
        self.bw_per_uncore = mem.bw_per_uncore_hz
        self.bw_per_core = mem.bw_per_core_hz
        self.dram_static = mem.dram_static_w
        self.dram_epb = mem.dram_energy_per_byte
        self.sat_hz = mem.peak_bw_bytes / mem.bw_per_uncore_hz
        self.has_thermal = cfg.thermal is not None
        if self.has_thermal:
            th = cfg.thermal
            self.th_r, self.th_tau = th.r_thermal_c_per_w, th.tau_s
            self.th_amb, self.th_trip = th.ambient_c, th.t_prochot_c
            self.th_hyst = th.hysteresis_c
            self.prochot_snap = self.procs[0].dvfs.snap(th.prochot_freq_hz)

        # P-state grid and the per-grid-point core power base — Python
        # floats in the scalar model's exact association order, so
        # ``core_power(f, a) == cp_base[i] * scale`` bitwise.
        n_steps = int(round((self.cmax - self.cmin) / self.cstep))
        pf = [self.cmin + i * self.cstep for i in range(n_steps + 1)]
        self.pfreqs = np.array(pf, dtype=np.float64)
        self.cp_base = np.array(
            [
                ((self.ck * core.voltage_at(f)) * core.voltage_at(f)) * (f / 1e9)
                for f in pf
            ],
            dtype=np.float64,
        )
        self.cp_grid = self.cp_base[None, :]
        self._grid_last = len(pf) - 1
        # Python-float copies of the grid for the scalar lane tail.
        self._pf_list = pf
        self._cpb_list = self.cp_base.tolist()
        # When the top grid point fits every lane's budget nobody is
        # clamped; precompute what the full search would return then.
        self._cp_top = self._cpb_list[-1]
        self._clamp_top = min(max(pf[-1], self.cmin), self.cmax)
        # ``x + (1-x)*a`` with the ``1-x`` hoisted — same product bitwise.
        self._a1 = 1.0 - self.a0
        self._u1 = 1.0 - self.u0

        z = lambda: np.zeros(L, dtype=np.float64)  # noqa: E731
        # Hardware state mirrored from the freshly built objects (the
        # controller attach hooks may already have actuated).
        self.req = np.array(
            [p.dvfs.governor.requested_freq(core) for p in self.procs]
        )
        self.ctl = np.array([p.dvfs.perf_ctl_ceiling_hz for p in self.procs])
        self.clamp = np.array([p.dvfs.rapl_clamp_hz for p in self.procs])
        self.aperf, self.mperf = z(), z()
        self.ufreq = np.array([p.uncore._freq_hz for p in self.procs])
        self.win_lo = np.array([p.uncore.window_lo_hz for p in self.procs])
        self.win_hi = np.array([p.uncore.window_hi_hz for p in self.procs])
        self.demand = np.array(
            [p.uncore.governor._current_demand for p in self.procs]
        )
        gov = [p.uncore.governor for p in self.procs]
        self.g_sat = np.array([g.saturation_util for g in gov])
        self.g_floor = np.array([g.busy_floor for g in gov])
        self.g_thresh = np.array([g.busy_threshold for g in gov])
        self.g_resp = np.array([g.response for g in gov])
        self.sharpness = [p.perf.overlap_sharpness for p in self.procs]
        self._smax_cache: dict[tuple[float, float, float], float] = {}
        # Last ``(t_c, t_m) -> t`` per lane: between clock or phase
        # moves a lane's roofline inputs repeat for many steps, so the
        # scalar ``smooth_max`` loop only visits lanes whose inputs
        # actually changed (see ``_phase_time``).  NaN never compares
        # equal, so fresh lanes always recompute.
        self._sm_tc = np.full(L, np.nan)
        self._sm_tm = np.full(L, np.nan)
        self._sm_t = np.zeros(L, dtype=np.float64)
        self._exp_cache: dict[float, float] = {}
        # Phase-time memo (see ``_phase_time``) and the log of lanes
        # whose phase changed since an entry was stored.
        self._pt_memo: dict[bytes, list] = {}
        self._pt_dirty_log: list[int] = []
        self._all_alive = True

        self.pl1_w = np.array([p.rapl.pl1.limit_w for p in self.procs])
        self.pl1_win = np.array([p.rapl.pl1.window_s for p in self.procs])
        self.pl1_en = np.array([p.rapl.pl1.enabled for p in self.procs])
        self.pl2_w = np.array([p.rapl.pl2.limit_w for p in self.procs])
        self.pl2_win = np.array([p.rapl.pl2.window_s for p in self.procs])
        self.pl2_en = np.array([p.rapl.pl2.enabled for p in self.procs])
        self.avg1 = np.array([p.rapl._avg_pl1_w for p in self.procs])
        self.avg2 = np.array([p.rapl._avg_pl2_w for p in self.procs])
        self.rapl_now = np.array([p.rapl._now_s for p in self.procs])
        self.e_pkg = np.array([p.rapl.package._energy_j for p in self.procs])
        self.e_dram = np.array([p.rapl.dram._energy_j for p in self.procs])
        self.pend_due = np.full(L, np.inf)
        self.pend1_w, self.pend1_win = z(), z()
        self.pend2_w, self.pend2_win = z(), z()
        for l, p in enumerate(self.procs):
            if p.rapl._pending is not None:
                due, pl1, pl2 = p.rapl._pending
                self.pend_due[l] = due
                self.pend1_w[l], self.pend1_win[l] = pl1.limit_w, pl1.window_s
                self.pend2_w[l], self.pend2_win[l] = pl2.limit_w, pl2.window_s
        if self.has_thermal:
            self.temp = np.array(
                [p.thermal.temperature_c for p in self.procs]
            )
            self.prochot = np.array(
                [p.thermal.prochot for p in self.procs], dtype=bool
            )

        self.prev_act, self.prev_traf = z(), z()
        self.flops_ret, self.bytes_trans, self.proc_now = z(), z(), z()

        # Workload cursor.
        self.phase_idx = [0] * L
        self.phase_done = np.array(
            [len(ph) == 0 for ph in self.phases], dtype=bool
        )
        self.unfinished = np.ones(L, dtype=bool)
        self._check_finish = bool(self.phase_done.any())
        self.frac = z()
        self.finish = np.full(L, np.nan)
        self.phase_start = [0.0] * L
        self.spans: list[list[PhaseSpan]] = [[] for _ in range(L)]
        self.cur_name = [""] * L
        self.cur_flops, self.cur_bytes = z(), z()
        self.cur_fpc = np.ones(L, dtype=np.float64)
        self.cur_peak_coef = z()
        self.cur_us, self.cur_ls, self.cur_ov = z(), z(), z()
        self.cur_us_on = np.zeros(L, dtype=bool)
        self.cur_ls_on = np.zeros(L, dtype=bool)
        self.cur_ov_on = np.zeros(L, dtype=bool)
        self.cur_boost = np.ones(L, dtype=np.float64)
        # Per-phase constants flattened to plain float tuples so
        # ``_load_phase`` is attribute-lookup free on the hot path.
        self.phase_vals = [
            tuple(
                (
                    ph.name,
                    ph.flops,
                    ph.bytes,
                    ph.fpc,
                    self.count * ph.fpc,
                    ph.uncore_sensitivity,
                    ph.latency_sensitivity,
                    ph.overfetch,
                    ph.uncore_sensitivity > 0.0 and ph.flops > 0.0,
                    ph.latency_sensitivity > 0.0,
                    ph.overfetch > 0.0,
                    ph.power_boost,
                )
                for ph in phs
            )
            for phs in self.phases
        ]
        for l in range(L):
            if not self.phase_done[l]:
                self._load_phase(l)
        self._refresh_phase_flags()

        # Last-step snapshot (the trace sample fields).
        self.st_core, self.st_uncore = z(), z()
        self.st_pkg, self.st_dram = z(), z()
        self.st_flops, self.st_bytes = z(), z()

        # Scalar flags guarding rarely-needed kernel blocks, plus
        # byte-keyed memo caches for pure functions of whole state
        # arrays (patterns repeat heavily between controller ticks).
        self._any_pending = bool(np.isfinite(self.pend_due).any())
        self._all_en = bool(self.pl1_en.all() and self.pl2_en.all())
        self._eff: np.ndarray | None = None
        self._eff_cache: dict[bytes, np.ndarray] = {}
        self._cw_cache: dict[bytes, np.ndarray] = {}
        self._exp_arr: dict[bytes, np.ndarray] = {}
        self._tracing = True
        self._refresh_uncore()
        # EMA factors for the common ``dt_l == dt`` slice; lanes with a
        # partial slice are patched per-element (see ``_ema_alphas``).
        self._alpha1 = np.zeros(L, dtype=np.float64)
        self._alpha2 = np.zeros(L, dtype=np.float64)
        self._refresh_alpha(range(L))
        if self.has_thermal:
            self._alpha_th = 1.0 - self._exp_scalar(-self.dt / self.th_tau)
            self._alpha_th_arr = np.full(L, self._alpha_th)
        # The roofline time from the last ``_step`` can serve the next
        # preview when no state it depends on moved in between; AVX
        # clamping and PROCHOT make step and preview clocks diverge,
        # so reuse is only safe without them.
        self._t_reuse = (not self.avx_on) and (not self.has_thermal)
        self._t_cache: tuple[np.ndarray, np.ndarray] | None = None

        self.next_tick = np.array(
            [ctx.runtime._next_tick_s for ctx in ctxs]
        )
        self.alive = np.ones(R, dtype=bool)
        self._lanes_left = [len(lanes) for lanes in self.run_lanes]
        self._maybe_done: list[int] = []
        self._init_lane_controllers(ctxs)

    def _init_lane_controllers(self, ctxs: list[RunContext]) -> None:
        """Build the lane-parallel controller state for eligible runs.

        Runs that fail :func:`controller_lane_fallback_reason` keep the
        per-run scatter/gather tick; their lanes simply never appear in
        the index arrays handed to the vector tick forms.
        """
        engines = self.engines
        L = self.L
        self._vec_run = [
            controller_lane_fallback_reason(e) is None for e in engines
        ]
        self._any_vec = any(self._vec_run)
        if not self._any_vec:
            return

        # Per-run tick parameters (the runtime's measurement loop).
        self._interval = [e.controller_cfg.interval_s for e in engines]
        self._rngs = [ctx.rng for ctx in ctxs]
        self._counter_noise = [e.noise.counter_noise for e in engines]
        self._power_noise = [e.noise.power_noise for e in engines]

        # Per-lane controllers and their vector tick forms, dispatched
        # by a small integer code so one due set groups by form.
        self.ctrls = [c for e in engines for c in e.controllers]
        self._tick_forms: list = []
        codes: dict = {}
        self.ctrl_kind = np.zeros(L, dtype=np.int8)
        for l, ctrl in enumerate(self.ctrls):
            form = vector_tick_form(ctrl)
            if form is None:
                continue
            code = codes.get(form)
            if code is None:
                code = codes[form] = len(self._tick_forms)
                self._tick_forms.append(form)
            self.ctrl_kind[l] = code

        def cfg_arr(name: str) -> np.ndarray:
            return np.array(
                [
                    getattr(engines[r].controller_cfg, name)
                    for r in self.run_of_list
                ]
            )

        # Mirrors of the PAPI event-set counters: the raw integer reads
        # latched at meter start (all counters are zero there, but the
        # mirrors are derived through the same read formulas so the
        # invariant is by construction, not by assumption).
        rc = self.procs[0].rapl.cfg
        self._e_unit = rc.energy_unit_j
        self._e_span = float(1 << rc.counter_bits)
        self._e_wrap = float(
            int((1 << rc.counter_bits) * rc.energy_unit_j * 1e9)
        )
        self._mt_f = np.trunc(self.flops_ret)
        self._mt_c = np.trunc(self.bytes_trans / float(CACHE_LINE_BYTES))
        self._mt_p = self._energy_raw_nj(self.e_pkg)
        self._mt_d = self._energy_raw_nj(self.e_dram)

        # The actuator pin points as the attach hooks left them.
        pin = np.zeros(L)
        for r, lanes in enumerate(self.run_lanes):
            for s, l in enumerate(lanes):
                pin[l] = ctxs[r].runtime.contexts[s].uncore.pinned_freq_hz

        tol = cfg_arr("tolerated_slowdown")
        err = cfg_arr("measurement_error")
        self._lane_state = LaneControllerState(
            detector=PhaseDetectorLanes(cfg_arr("phase_flops_jump")),
            uncore=UncoreLanes(
                pin=pin,
                win_lo=self.win_lo,
                win_hi=self.win_hi,
                freq=self.ufreq,
                min_hz=self.umin,
                max_hz=self.umax,
                step_hz=cfg_arr("uncore_step_hz"),
            ),
            flops=SlowdownLanes(tol, err),
            bandwidth=SlowdownLanes(tol, err),
            last_increase_flops=np.full(L, np.nan),
            cap=CapLanes(
                pl1_w=self.pl1_w,
                pl1_win=self.pl1_win,
                pl2_win=self.pl2_win,
                rapl_now=self.rapl_now,
                pend_due=self.pend_due,
                pend1_w=self.pend1_w,
                pend1_win=self.pend1_win,
                pend2_w=self.pend2_w,
                pend2_win=self.pend2_win,
                step_w=cfg_arr("cap_step_w"),
                floor_w=cfg_arr("cap_floor_w"),
                default_w=rc.pl1_default_w,
                default_pl2_w=rc.pl2_default_w,
                default_win1=rc.pl1_window_s,
                default_win2=rc.pl2_window_s,
                delay_s=rc.actuation_delay_s,
            ),
            cap_flops=SlowdownLanes(tol, err),
            cap_bw=SlowdownLanes(tol, err),
            joint_reset_pending=np.zeros(L, dtype=bool),
            measurement_error=err,
            oi_highly_memory=cfg_arr("oi_highly_memory"),
            oi_memory_boundary=cfg_arr("oi_memory_boundary"),
            oi_highly_cpu=cfg_arr("oi_highly_cpu"),
        )

    def _energy_raw_nj(self, energy_j: np.ndarray) -> np.ndarray:
        """The PAPI rapl component's raw nJ read, vectorized.

        Mirrors ``int(domain.counter * energy_unit_j * 1e9)`` with
        ``counter = int(energy_j / unit) % 2**bits``; every quantity is
        a non-negative integer below 2**53, so ``np.trunc``/``np.mod``
        reproduce the Python ``int()``/``%`` bit-for-bit.
        """
        counter = np.mod(np.trunc(energy_j / self._e_unit), self._e_span)
        return np.trunc((counter * self._e_unit) * 1e9)

    def _load_phase(self, l: int) -> None:
        (
            name,
            flops,
            byts,
            fpc,
            peak_coef,
            us,
            ls,
            ov,
            us_on,
            ls_on,
            ov_on,
            boost,
        ) = self.phase_vals[l][self.phase_idx[l]]
        self._pt_dirty_log.append(l)
        self.cur_name[l] = name
        self.cur_flops[l] = flops
        self.cur_bytes[l] = byts
        self.cur_fpc[l] = fpc
        self.cur_peak_coef[l] = peak_coef
        self.cur_us[l] = us
        self.cur_ls[l] = ls
        self.cur_ov[l] = ov
        self.cur_us_on[l] = us_on
        self.cur_ls_on[l] = ls_on
        self.cur_ov_on[l] = ov_on
        self.cur_boost[l] = boost

    def _refresh_phase_flags(self) -> None:
        """Batch-wide guards for optional phase terms.

        When no lane's *current* phase uses a term, the kernel skips
        it; the skipped multiplications are all exactly ``* 1.0`` or
        masked writes with an all-false mask, so skipping is bitwise
        free.  Recomputed whenever any lane crosses a phase boundary.
        """
        self._any_us = bool(self.cur_us_on.any())
        self._any_ls = bool(self.cur_ls_on.any())
        self._any_ov = bool(self.cur_ov_on.any())
        self._any_boost = bool((self.cur_boost != 1.0).any())
        self._any_phase_done = bool(self.phase_done.any())

    def _refresh_uncore(self) -> None:
        """Freeze uncore-derived terms while every window is pinned.

        DUF/DUFP pin the uncore window every decision, so after the
        first controller tick the governor is a fixed point:
        ``advance`` assigns ``window_lo`` which the frequency already
        equals.  While that holds the whole governor block is skipped
        and the uncore voltage/power/bandwidth/ratio terms are
        constants, recomputed only when a controller moves a window
        (``_gather``).
        """
        self._all_pinned = bool((self.win_lo == self.win_hi).all())
        self._u_static = self._all_pinned and bool(
            (self.ufreq == self.win_lo).all()
        )
        self._pt_memo.clear()
        self._pt_dirty_log.clear()
        if self._u_static:
            uv = self._uvolt(self.ufreq)
            self._u_coef = ((self.k_uncore * uv) * uv) * (self.ufreq / 1e9)
            self._u_ratio = self.umax / self.ufreq
            self._bw_cap = np.minimum(
                self.peak_bw, self.bw_per_uncore * self.ufreq
            )

    # -- main loop -------------------------------------------------------------------

    def _loop(self, ctxs: list[RunContext], closed: set[int]) -> None:
        now = 0.0
        dt = self.dt
        max_times = [e.engine_cfg.max_sim_time_s for e in self.engines]
        min_max_time = min(max_times)
        injector_runs = [
            r for r, ctx in enumerate(ctxs) if ctx.injector is not None
        ]
        trace_runs = [r for r, ctx in enumerate(ctxs) if ctx.sink is not None]
        alive = self.alive
        # Both caches below change only when a run finishes, so they
        # are refreshed inside the ``_maybe_done`` block rather than
        # recomputed every tick.
        lane_mask = alive[self.run_of]
        self._all_alive = bool(alive.all())
        next_due = float(self.next_tick.min())
        while alive.any():
            if now >= min_max_time:
                for r in np.nonzero(alive)[0]:
                    if now >= max_times[r]:
                        e = self.engines[r]
                        raise SimulationError(
                            f"simulation exceeded {max_times[r]}s "
                            f"(application {e.application!r} stuck?)"
                        )
            self._tick(now, lane_mask)
            if trace_runs:
                self._record(ctxs, trace_runs)
            now += dt
            for r in injector_runs:
                if alive[r]:
                    ctxs[r].injector.advance(now)
            # Mirror of ControllerRuntime.on_time's due check: the call
            # is skipped exactly when it would return early.  Finished
            # runs park their next_tick at +inf, so the scalar minimum
            # is an exact pre-filter for the array comparison.
            if now + 1e-12 >= next_due:
                due = np.nonzero(alive & (now + 1e-12 >= self.next_tick))[0]
                vec_due: list[int] = []
                sg = False
                for r in due:
                    if self._vec_run[r]:
                        vec_due.append(r)
                        continue
                    ctx = ctxs[r]
                    self._scatter(r)
                    ctx.runtime.on_time(now)
                    self._gather(r)
                    self.next_tick[r] = ctx.runtime._next_tick_s
                    sg = True
                if vec_due:
                    self._tick_lanes(vec_due, now)
                if sg:
                    self._after_gather()
                next_due = float(self.next_tick.min())
            if self._maybe_done:
                for r in self._maybe_done:
                    if alive[r] and self._lanes_left[r] == 0:
                        alive[r] = False
                        self.next_tick[r] = np.inf
                        # Final sync: ``collect`` reads energies (and
                        # any state a later caller inspects) from the
                        # objects.
                        self._scatter(r)
                        ctx = ctxs[r]
                        if self._vec_run[r]:
                            self._sync_lane_controllers(r, ctx)
                        if ctx.sink is not None:
                            ctx.sink.close()
                            closed.add(r)
                self._maybe_done.clear()
                lane_mask = alive[self.run_of]
                self._all_alive = bool(alive.all())
                next_due = float(self.next_tick.min())

    def _record(self, ctxs: list[RunContext], trace_runs: list[int]) -> None:
        """Materialise this tick's trace samples for recording runs."""
        times = self.proc_now.tolist()
        cores = self.st_core.tolist()
        uncores = self.st_uncore.tolist()
        pkgs = self.st_pkg.tolist()
        drams = self.st_dram.tolist()
        caps = self.pl1_w.tolist()
        flops = self.st_flops.tolist()
        bts = self.st_bytes.tolist()
        temps = self.temp.tolist() if self.has_thermal else None
        alive = self.alive
        for r in trace_runs:
            if not alive[r]:
                continue
            record = ctxs[r].sink.record
            for s, l in enumerate(self.run_lanes[r]):
                record(
                    s,
                    TraceSample(
                        time_s=times[l],
                        core_freq_hz=cores[l],
                        uncore_freq_hz=uncores[l],
                        package_power_w=pkgs[l],
                        dram_power_w=drams[l],
                        cap_w=caps[l],
                        flops_rate=flops[l],
                        bytes_rate=bts[l],
                        temperature_c=temps[l] if temps is not None else None,
                    ),
                )

    # -- lane-parallel controller ticks ------------------------------------------------
    #
    # The vector mirror of ``ControllerRuntime.on_time`` for eligible
    # runs: the measurement interval, the PAPI counter reads, the noise
    # draws and the controller decision all execute on the lane arrays,
    # with no scatter/gather.  Eligibility
    # (``controller_lane_fallback_reason``) guarantees the scalar
    # degraded-telemetry branches are unreachable: no injector means the
    # meter never raises and never returns non-finite rates, so every
    # tick takes the clean path — interval ``dt = interval + (now -
    # next_tick)`` with no debt or jitter, one measurement, one tick.

    def _tick_lanes(self, runs: list[int], now: float) -> None:
        """Fire the due controller ticks of ``runs`` on the lane arrays."""
        lanes: list[int] = []
        dts: list[float] = []
        for r in runs:
            interval = self._interval[r]
            dt_r = interval + (now - self.next_tick[r])
            for l in self.run_lanes[r]:
                lanes.append(l)
                dts.append(dt_r)
            self.next_tick[r] = now + interval
        idx = np.array(lanes)
        dt = np.array(dts)

        # EventSet.read_reset: raw integer counter reads and deltas
        # against the mirrors (RAPL nJ deltas modulo the wrap range).
        raw_f = np.trunc(self.flops_ret[idx])
        raw_c = np.trunc(self.bytes_trans[idx] / float(CACHE_LINE_BYTES))
        raw_p = self._energy_raw_nj(self.e_pkg[idx])
        raw_d = self._energy_raw_nj(self.e_dram[idx])
        d_f = raw_f - self._mt_f[idx]
        d_c = raw_c - self._mt_c[idx]
        d_p = np.mod(raw_p - self._mt_p[idx], self._e_wrap)
        d_d = np.mod(raw_d - self._mt_d[idx], self._e_wrap)
        self._mt_f[idx] = raw_f
        self._mt_c[idx] = raw_c
        self._mt_p[idx] = raw_p
        self._mt_d[idx] = raw_d

        # IntervalMeter.sample: deltas -> rates, in the scalar
        # association order.
        fl = d_f / dt
        by = (d_c * float(CACHE_LINE_BYTES)) / dt
        pk = (d_p * 1e-9) / dt
        dr = (d_d * 1e-9) / dt

        # Measurement noise consumes each run's shared generator in the
        # scalar draw order — per socket: flops, bytes, pkg, dram —
        # with the zero-value and zero-sigma draws skipped identically.
        # ``standard_normal(k)`` consumes the bit stream exactly like
        # ``k`` scalar draws, so each run's draws collapse to one call.
        fll, byl = fl.tolist(), by.tolist()
        pkl, drl = pk.tolist(), dr.tolist()
        pos = 0
        targets: list[tuple[list, int, float]] = []
        for r in runs:
            rng = self._rngs[r]
            cn = self._counter_noise[r]
            pn = self._power_noise[r]
            del targets[:]
            for _ in self.run_lanes[r]:
                if cn > 0.0:
                    if fll[pos] != 0.0:
                        targets.append((fll, pos, cn))
                    if byl[pos] != 0.0:
                        targets.append((byl, pos, cn))
                if pn > 0.0:
                    if pkl[pos] != 0.0:
                        targets.append((pkl, pos, pn))
                    if drl[pos] != 0.0:
                        targets.append((drl, pos, pn))
                pos += 1
            if targets:
                draws = rng.standard_normal(len(targets)).tolist()
                for (lst, i, sigma), z in zip(targets, draws):
                    lst[i] = max(lst[i] * (1.0 + sigma * z), 0.0)
        # ``dr`` exists only for noise-stream parity (no controller
        # reads the DRAM rate), so only the other three rebuild.
        fl, by = np.array(fll), np.array(byl)
        pk = np.array(pkl)

        # Measurement.operational_intensity (inf on no memory traffic).
        oi = np.where(by <= 0.0, np.inf, fl / by)

        # Dispatch per controller kind (runs usually share one form).
        st = self._lane_state
        kinds = self.ctrl_kind[idx]
        for code in np.unique(kinds):
            pos_k = np.flatnonzero(kinds == code)
            sub = idx[pos_k]
            changed, cap_act, unc_act = self._tick_forms[code](
                st, sub, fl[pos_k], by[pos_k], pk[pos_k], oi[pos_k]
            )
            self._log_lane_ticks(now, sub, changed, cap_act, unc_act)

        # Cache maintenance the scalar path performs via ``_gather`` /
        # ``_after_gather``: staged cap writes re-arm the pending-latch
        # scan; moved uncore pins invalidate the uncore-derived
        # constants and the roofline reuse cache.  ``perf_ctl`` and the
        # latched limits never move on this path, so the effective-
        # clock caches stay valid.
        if st.cap.wrote_pending:
            st.cap.wrote_pending = False
            self._any_pending = True
        if st.uncore.any_moved:
            st.uncore.any_moved = False
            self._refresh_uncore()
            self._t_cache = None

    def _log_lane_ticks(
        self,
        now: float,
        idx: np.ndarray,
        changed: np.ndarray,
        cap_act: np.ndarray | None,
        unc_act: np.ndarray,
    ) -> None:
        """Append each lane's :class:`TickLog`, as the scalar tick does.

        ``cap_w`` reads the *latched* PL1 limit (pending writes from
        this very tick have not taken effect — same as the scalar
        ``ctx.cap.cap_w`` read at log time); ``uncore_hz`` reads the
        post-action pin (the scalar MSR write is immediate).
        """
        ctrls = self.ctrls
        pl1 = self.pl1_w[idx].tolist()
        pin = self._lane_state.uncore.pin[idx].tolist()
        ch = changed.tolist()
        ca = (
            [LANE_ACTIONS[c] for c in cap_act.tolist()]
            if cap_act is not None
            else ["hold"] * len(idx)
        )
        ua = [LANE_ACTIONS[c] for c in unc_act.tolist()]
        for i, l in enumerate(idx.tolist()):
            ctrls[l].ticks.append(
                TickLog(now, pl1[i], pin[i], ch[i], ca[i], ua[i])
            )

    def _sync_lane_controllers(self, r: int, ctx: RunContext) -> None:
        """Replay a finished vector run's actuations into its objects.

        ``_scatter`` already synced everything the arrays track; what
        remains is the actuator-owned state the scalar tick would have
        written through the real objects: the uncore pin (MSR 0x620
        plus the driver's window snap — idempotent when re-applied) and
        the cap actuator's ``just_reset`` latch.  Controller-internal
        tracker state (phase maxima, detector history) is deliberately
        not synced: nothing observable reads it after the run ends.
        """
        st = self._lane_state
        for s, l in enumerate(self.run_lanes[r]):
            sctx = ctx.runtime.contexts[s]
            sctx.uncore._pin(float(st.uncore.pin[l]))
            sctx.cap.just_reset = bool(st.cap.just_reset[l])

    # -- one macro step, all lanes ---------------------------------------------------

    def _tick(self, step_start: float, lane_mask: np.ndarray) -> None:
        """One macro step: one full-width kernel pass, then a tail.

        Lanes are independent between controller syncs, so after the
        vectorized pass covers everyone's first slice, the few lanes
        split at a phase boundary finish their step through the
        bit-exact scalar mirror (``_lane_tail``) instead of dragging
        every lane through extra full-width sub-iterations.
        """
        dt = self.dt
        remaining = np.where(lane_mask, dt, 0.0)
        active = lane_mask
        if self._check_finish:
            newly = active & self.phase_done & self.unfinished
            if newly.any():
                self.finish[newly] = step_start + (dt - remaining[newly])
                self.unfinished[newly] = False
                for l in np.nonzero(newly)[0]:
                    r = self.run_of_list[l]
                    self._lanes_left[r] -= 1
                    if self._lanes_left[r] == 0:
                        self._maybe_done.append(r)
                self._check_finish = bool(
                    (self.phase_done & self.unfinished).any()
                )
        # ``_step`` and everything below treat the masks read-only, so
        # aliasing is safe when no lane has retired its phase list.
        working = (
            active & ~self.phase_done if self._any_phase_done else active
        )
        slice_ = remaining
        ttf = None
        if working.any():
            rate = self._preview(working)
            bad = working & ~(rate > 0.0)
            if bad.any():
                l = int(np.nonzero(bad)[0][0])
                raise SimulationError(
                    f"phase {self.cur_name[l]!r} makes no progress"
                )
            ttf = (1.0 - self.frac) / rate
            slice_ = np.minimum(remaining, np.maximum(ttf, _MIN_SLICE_S))
        dt_l = np.where(working, slice_, remaining)
        progress_rate = self._step(dt_l, active, working)
        # ``progress_rate`` and ``dt_l`` are exactly zero off the
        # working set, so the unmasked updates are no-ops there
        # (and ``r - r == 0.0`` retires idle lanes).
        made = np.minimum(progress_rate * dt_l, 1.0)
        self.frac += made
        remaining = remaining - dt_l
        if ttf is not None:
            done = working & (
                (self.frac >= 1.0 - _DONE_EPS)
                | (
                    (ttf <= slice_ + _MIN_SLICE_S)
                    & (self.frac >= 1.0 - 1e-3)
                )
            )
            crossed = np.nonzero(done)[0]
            for l in crossed:
                end = step_start + (dt - float(remaining[l]))
                self.spans[l].append(
                    PhaseSpan(
                        name=self.cur_name[l],
                        start_s=self.phase_start[l],
                        end_s=end,
                    )
                )
                self.phase_idx[l] += 1
                self.frac[l] = 0.0
                self.phase_start[l] = end
                if self.phase_idx[l] >= len(self.phases[l]):
                    self.phase_done[l] = True
                    self._check_finish = True
                else:
                    self._load_phase(l)
            if len(crossed):
                self._refresh_phase_flags()
                self._t_cache = None
        tail = np.nonzero(remaining > 0.0)[0]
        if len(tail):
            self._eff = None
            self._t_cache = None
            for l in tail.tolist():
                self._lane_tail(l, float(remaining[l]), step_start)
            self._refresh_phase_flags()

    # -- vector kernels ---------------------------------------------------------------

    def _csnap(self, f: np.ndarray) -> np.ndarray:
        inner = self.cmin + np.trunc((f - self.cmin) / self.cstep) * self.cstep
        return np.where(
            f <= self.cmin,
            self.cmin,
            np.where(f >= self.cmax, self.cmax, inner),
        )

    def _usnap(self, f: np.ndarray) -> np.ndarray:
        inner = self.umin + np.rint((f - self.umin) / self.ustep) * self.ustep
        return np.where(
            f <= self.umin,
            self.umin,
            np.where(f >= self.umax, self.umax, inner),
        )

    def _cvolt(self, f: np.ndarray) -> np.ndarray:
        core = self.socket_cfg.core
        if self.cmax == self.cmin:
            return np.full_like(f, core.v_max)
        t = (f - self.cmin) / (self.cmax - self.cmin)
        t = np.minimum(np.maximum(t, 0.0), 1.0)
        return core.v_min + t * (core.v_max - core.v_min)

    def _uvolt(self, f: np.ndarray) -> np.ndarray:
        unc = self.socket_cfg.uncore
        if self.umax == self.umin:
            return np.full_like(f, unc.v_max)
        t = (f - self.umin) / (self.umax - self.umin)
        t = np.minimum(np.maximum(t, 0.0), 1.0)
        return unc.v_min + t * (unc.v_max - unc.v_min)

    def _exp(self, x: np.ndarray) -> np.ndarray:
        """``exp`` elementwise, bit-identical to :func:`math.exp`.

        ``np.exp`` may differ from libm by 1 ulp (SIMD polynomial
        kernels); the scalar engine uses :func:`math.exp`, so each
        unique argument goes through :func:`math.exp` once and a memo —
        step slices repeat heavily, so this is mostly dict hits.
        """
        key = x.tobytes()
        hit = self._exp_arr.get(key)
        if hit is not None:
            return hit
        cache = self._exp_cache
        exp = math.exp
        out = [0.0] * self.L
        for i, v in enumerate(x.tolist()):
            e = cache.get(v)
            if e is None:
                e = exp(v)
                cache[v] = e
            out[i] = e
        res = np.array(out, dtype=np.float64)
        self._exp_arr[key] = res
        return res

    def _exp_scalar(self, v: float) -> float:
        e = self._exp_cache.get(v)
        if e is None:
            e = math.exp(v)
            self._exp_cache[v] = e
        return e

    def _refresh_alpha(self, lanes) -> None:
        """Recompute the full-slice EMA factors for ``lanes``."""
        exp = self._exp_scalar
        d = self.dt
        for l in lanes:
            self._alpha1[l] = 1.0 - exp(-d / self.pl1_win[l])
            self._alpha2[l] = 1.0 - exp(-d / self.pl2_win[l])

    def _ema_alphas(
        self, dt_l: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """``1 - exp(-dt_l/window)`` factors, bit-exact per lane.

        Almost every lane steps either the full macro ``dt`` (factor
        precomputed in ``_refresh_alpha``) or ``0`` (factor exactly
        ``0.0`` since ``exp(-0.0) == 1``); only lanes split at a phase
        boundary need a fresh :func:`math.exp`, patched per element.
        """
        full = dt_l == self.dt
        if full.all():
            return (
                self._alpha1,
                self._alpha2,
                self._alpha_th_arr if self.has_thermal else None,
            )
        a1 = np.where(full, self._alpha1, 0.0)
        a2 = np.where(full, self._alpha2, 0.0)
        a_th = (
            np.where(full, self._alpha_th, 0.0) if self.has_thermal else None
        )
        odd = (dt_l != 0.0) & ~full
        if odd.any():
            exp = self._exp_scalar
            for l in np.nonzero(odd)[0].tolist():
                d = dt_l[l]
                a1[l] = 1.0 - exp(-d / self.pl1_win[l])
                a2[l] = 1.0 - exp(-d / self.pl2_win[l])
                if a_th is not None:
                    a_th[l] = 1.0 - exp(-d / self.th_tau)
        return a1, a2, a_th

    def _smax(self, a: float, b: float, p: float) -> float:
        key = (a, b, p)
        v = self._smax_cache.get(key)
        if v is None:
            v = smooth_max(a, b, p)
            self._smax_cache[key] = v
        return v

    def _phase_time(
        self, core_hz: np.ndarray, need: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Roofline phase time ``t`` and compute time ``t_c``.

        Mirrors ``PhaseExecutionModel._roof_times`` + ``smooth_max``;
        values are meaningful only where ``need`` (working lanes).

        While the uncore is static, ``(t, t_c)`` is a pure function of
        the clock vector and the per-lane phase, so results memoize on
        the clock bytes; lanes that crossed a phase boundary since an
        entry was stored are re-derived scalar (``_t_lane``) instead of
        recomputing the whole batch.  Caching over shrinking ``need``
        masks is safe because ``working`` only ever shrinks, so a
        cached entry always covers at least the lanes now needed.
        """
        if self._u_static:
            key = core_hz.tobytes()
            hit = self._pt_memo.get(key)
            if hit is not None:
                ver, t, t_c = hit
                log = self._pt_dirty_log
                if ver < len(log):
                    clk = np.frombuffer(key, dtype=np.float64)
                    for l in set(log[ver:]):
                        if not self.phase_done[l]:
                            t[l], t_c[l] = self._t_lane(l, clk[l])
                    hit[0] = len(log)
                return t, t_c
        if self._any_us or self._any_ls:
            ratio = (
                self._u_ratio if self._u_static else self.umax / self.ufreq
            )
        t_c = self.cur_flops / (self.cur_peak_coef * core_hz)
        if self._any_us:
            np.copyto(
                t_c,
                t_c * (1.0 + self.cur_us * (ratio - 1.0)),
                where=self.cur_us_on,
            )
        bw_cap = (
            self._bw_cap
            if self._u_static
            else np.minimum(self.peak_bw, self.bw_per_uncore * self.ufreq)
        )
        bw = np.minimum(bw_cap, (self.bw_per_core * core_hz) * self.count)
        t_m = self.cur_bytes / bw
        if self._any_ls:
            np.copyto(
                t_m,
                t_m * (1.0 + self.cur_ls * (ratio - 1.0)),
                where=self.cur_ls_on,
            )
        t = np.where(t_m == 0.0, t_c, np.where(t_c == 0.0, t_m, np.nan))
        hole = need & np.isnan(t)
        if hole.any():
            # Reuse each lane's last smooth_max result while its
            # roofline inputs are unchanged; only moved lanes take the
            # scalar loop (bit-identity needs ``math``'s pow, and
            # ``np.power`` differs by ulps).
            same = hole & (t_c == self._sm_tc) & (t_m == self._sm_tm)
            np.copyto(t, self._sm_t, where=same)
            todo = hole & ~same
            if todo.any():
                smax = self._smax
                sharp = self.sharpness
                idxs = np.nonzero(todo)[0].tolist()
                if len(idxs) > 32:
                    tcl = t_c.tolist()
                    tml = t_m.tolist()
                    for l in idxs:
                        t[l] = smax(tcl[l], tml[l], sharp[l])
                else:
                    for l in idxs:
                        t[l] = smax(t_c.item(l), t_m.item(l), sharp[l])
                np.copyto(self._sm_tc, t_c, where=todo)
                np.copyto(self._sm_tm, t_m, where=todo)
                np.copyto(self._sm_t, t, where=todo)
        if self._u_static:
            self._pt_memo[key] = [len(self._pt_dirty_log), t, t_c]
        return t, t_c

    def _preview(self, working: np.ndarray) -> np.ndarray:
        """``preview_progress_rate`` for the working lanes."""
        cached = self._t_cache
        if cached is not None:
            t_prev, need_prev = cached
            if not (working & ~need_prev).any():
                return 1.0 / t_prev
        eff = self._eff
        if eff is None:
            key = self.clamp.tobytes()
            eff = self._eff_cache.get(key)
            if eff is None:
                eff = self._csnap(
                    np.minimum(np.minimum(self.req, self.ctl), self.clamp)
                )
                self._eff_cache[key] = eff
        core_hz = eff
        if self.avx_on:
            core_hz = np.where(
                self.cur_fpc >= self.avx_lic,
                np.minimum(eff, self.avx_max),
                eff,
            )
        t, _ = self._phase_time(core_hz, working)
        return 1.0 / t

    # -- scalar lane tail --------------------------------------------------------------
    #
    # Phase boundaries split a macro tick into sub-slices, but lanes
    # never interact between controller syncs, so only the *first*
    # slice runs through the full-width kernels; each lane split at a
    # boundary then finishes its tick alone through these pure-Python
    # mirrors.  Python float arithmetic is the same IEEE-754 double
    # arithmetic numpy applies elementwise, so as long as every formula
    # keeps the kernels' exact shape and association the tail is
    # bit-identical to the full-width path it replaces.

    def _csnap_s(self, f: float) -> float:
        if f <= self.cmin:
            return self.cmin
        if f >= self.cmax:
            return self.cmax
        # math.floor == np.trunc for the non-negative quotient here.
        return self.cmin + math.floor((f - self.cmin) / self.cstep) * self.cstep

    def _usnap_s(self, f: float) -> float:
        if f <= self.umin:
            return self.umin
        if f >= self.umax:
            return self.umax
        # round() is round-half-even like np.rint.
        return self.umin + float(round((f - self.umin) / self.ustep)) * self.ustep

    def _cvolt_s(self, f: float) -> float:
        core = self.socket_cfg.core
        if self.cmax == self.cmin:
            return core.v_max
        t = (f - self.cmin) / (self.cmax - self.cmin)
        t = min(max(t, 0.0), 1.0)
        return core.v_min + t * (core.v_max - core.v_min)

    def _uvolt_s(self, f: float) -> float:
        unc = self.socket_cfg.uncore
        if self.umax == self.umin:
            return unc.v_max
        t = (f - self.umin) / (self.umax - self.umin)
        t = min(max(t, 0.0), 1.0)
        return unc.v_min + t * (unc.v_max - unc.v_min)

    def _t_lane(self, l: int, core_hz: float) -> tuple[float, float]:
        """Scalar mirror of ``_phase_time`` for one lane."""
        if self._u_static:
            u_ratio = self._u_ratio.item(l)
            bw_cap = self._bw_cap.item(l)
        else:
            uf = self.ufreq.item(l)
            u_ratio = self.umax / uf
            bw_cap = min(self.peak_bw, self.bw_per_uncore * uf)
        t_c = self.cur_flops.item(l) / (self.cur_peak_coef.item(l) * core_hz)
        if self.cur_us_on[l]:
            t_c = t_c * (1.0 + self.cur_us.item(l) * (u_ratio - 1.0))
        bw = min(bw_cap, (self.bw_per_core * core_hz) * self.count)
        t_m = self.cur_bytes.item(l) / bw
        if self.cur_ls_on[l]:
            t_m = t_m * (1.0 + self.cur_ls.item(l) * (u_ratio - 1.0))
        if t_m == 0.0:
            t = t_c
        elif t_c == 0.0:
            t = t_m
        else:
            t = self._smax(t_c, t_m, self.sharpness[l])
        return t, t_c

    def _preview_lane(self, l: int) -> float:
        eff = self._csnap_s(
            min(min(self.req.item(l), self.ctl.item(l)), self.clamp.item(l))
        )
        if self.avx_on and self.cur_fpc.item(l) >= self.avx_lic:
            eff = min(eff, self.avx_max)
        t, _ = self._t_lane(l, eff)
        return 1.0 / t if t != 0.0 else math.inf

    def _step_lane(self, l: int, d: float, working: bool) -> float:
        """Scalar mirror of ``_step`` for one lane; returns the rate."""
        boost = self.cur_boost.item(l) if working else 1.0

        # 1. RAPL firmware budget -> clamp.
        pl1 = self.pl1_w.item(l)
        h = pl1 - self.avg1.item(l)
        b = pl1 + 2.0 * h
        if h < 0.0:
            b = max(b, 0.0)
        budget = b if self.pl1_en[l] else math.inf
        if self.pl2_en[l]:
            budget = min(budget, self.pl2_w.item(l))
        if self._u_static:
            u_coef = self._u_coef.item(l)
        else:
            uf0 = self.ufreq.item(l)
            uv = self._uvolt_s(uf0)
            u_coef = ((self.k_uncore * uv) * uv) * (uf0 / 1e9)
        prev_traf = self.prev_traf.item(l)
        prev_act = self.prev_act.item(l)
        up_prev = u_coef * (self.u0 + self._u1 * prev_traf)
        budget_cores = budget - (self.static_w + up_prev)
        scale_prev = self.a0 + self._a1 * prev_act
        best = self.cmin
        cpb = self._cpb_list
        for i in range(self._grid_last, -1, -1):
            if (cpb[i] * scale_prev) * boost <= budget_cores:
                best = self._pf_list[i]
                break
        clamp = min(max(best, self.cmin), self.cmax)
        self.clamp[l] = clamp

        # 2. Uncore governor.
        if self._u_static:
            uf = self.ufreq.item(l)
        else:
            lo = self.win_lo.item(l)
            hi = self.win_hi.item(l)
            if lo == hi:
                uf = lo
            else:
                demand_t = min(prev_traf / self.g_sat.item(l), 1.0)
                if prev_act >= self.g_thresh.item(l):
                    demand_t = max(demand_t, self.g_floor.item(l))
                dem = self.demand.item(l)
                dem = dem + self.g_resp.item(l) * (demand_t - dem)
                self.demand[l] = dem
                uf = self._usnap_s(lo + dem * (hi - lo))
            self.ufreq[l] = uf

        # 3. Core clock (+ AVX license, + PROCHOT).
        eff = self._csnap_s(
            min(min(self.req.item(l), self.ctl.item(l)), clamp)
        )
        core_hz = eff
        if (
            self.avx_on
            and working
            and self.cur_fpc.item(l) >= self.avx_lic
        ):
            core_hz = min(eff, self.avx_max)
        if self.has_thermal and self.prochot[l]:
            core_hz = min(core_hz, self.prochot_snap)

        # 4. Roofline rates.
        if working:
            t, t_c = self._t_lane(l, core_hz)
            flops_rate = self.cur_flops.item(l) / t
            bytes_rate = self.cur_bytes.item(l) / t
            activity = min(t_c / t, 1.0)
            traffic = min(bytes_rate / self.peak_bw, 1.0)
            progress_rate = 1.0 / t if t != 0.0 else math.inf
        else:
            flops_rate = bytes_rate = 0.0
            activity = traffic = progress_rate = 0.0

        # 5. Package + DRAM power.
        cv = self._cvolt_s(core_hz)
        core_w = (((self.ck * cv) * cv) * (core_hz / 1e9)) * (
            self.a0 + self._a1 * activity
        )
        core_w = core_w * boost
        if self._u_static:
            uc2 = u_coef
        else:
            uv2 = self._uvolt_s(uf)
            uc2 = ((self.k_uncore * uv2) * uv2) * (uf / 1e9)
        uncore_w = uc2 * (self.u0 + self._u1 * traffic)
        total = (self.static_w + core_w) + uncore_w
        dram_traffic = bytes_rate
        if working and self.cur_ov_on[l] and uf < self.sat_hz:
            dram_traffic = bytes_rate * (
                1.0 + self.cur_ov.item(l) * (1.0 - uf / self.sat_hz)
            )
        dram_w = self.dram_static + self.dram_epb * dram_traffic

        # 6. RAPL: latch, meter energy, windowed averages.
        rn = self.rapl_now.item(l) + d
        self.rapl_now[l] = rn
        if self._any_pending:
            due = self.pend_due.item(l)
            if due != math.inf and rn >= due:
                self.pl1_w[l] = self.pend1_w.item(l)
                self.pl1_win[l] = self.pend1_win.item(l)
                self.pl2_w[l] = self.pend2_w.item(l)
                self.pl2_win[l] = self.pend2_win.item(l)
                self.pl1_en[l] = True
                self.pl2_en[l] = True
                self.pend_due[l] = np.inf
                self._any_pending = bool(np.isfinite(self.pend_due).any())
                self._all_en = bool(self.pl1_en.all() and self.pl2_en.all())
                self._refresh_alpha((l,))
        self.e_pkg[l] = self.e_pkg.item(l) + total * d
        self.e_dram[l] = self.e_dram.item(l) + dram_w * d
        exp = self._exp_scalar
        if d == self.dt:
            a1 = self._alpha1.item(l)
            a2 = self._alpha2.item(l)
            a_th = self._alpha_th if self.has_thermal else 0.0
        elif d == 0.0:
            a1 = a2 = a_th = 0.0
        else:
            a1 = 1.0 - exp(-d / self.pl1_win.item(l))
            a2 = 1.0 - exp(-d / self.pl2_win.item(l))
            a_th = (
                1.0 - exp(-d / self.th_tau) if self.has_thermal else 0.0
            )
        avg1 = self.avg1.item(l)
        self.avg1[l] = avg1 + a1 * (total - avg1)
        avg2 = self.avg2.item(l)
        self.avg2[l] = avg2 + a2 * (total - avg2)

        # 7. Thermal RC + PROCHOT hysteresis.
        if self.has_thermal:
            temp = self.temp.item(l)
            temp = temp + a_th * ((self.th_amb + total * self.th_r) - temp)
            self.temp[l] = temp
            if temp >= self.th_trip:
                self.prochot[l] = True
            elif temp <= self.th_trip - self.th_hyst:
                self.prochot[l] = False

        # 8. Counters.
        self.aperf[l] = self.aperf.item(l) + eff * d
        self.mperf[l] = self.mperf.item(l) + self.base_hz * d
        self.flops_ret[l] = self.flops_ret.item(l) + flops_rate * d
        self.bytes_trans[l] = self.bytes_trans.item(l) + bytes_rate * d
        self.proc_now[l] = self.proc_now.item(l) + d
        self.prev_act[l] = activity
        self.prev_traf[l] = traffic

        # 9. Trace snapshot.
        if self._tracing:
            self.st_core[l] = core_hz
            self.st_uncore[l] = uf
            self.st_pkg[l] = total
            self.st_dram[l] = dram_w
            self.st_flops[l] = flops_rate
            self.st_bytes[l] = bytes_rate
        return progress_rate

    def _lane_tail(self, l: int, rem: float, step_start: float) -> None:
        """Finish lane ``l``'s macro tick alone (see ``_tick``)."""
        dt = self.dt
        while rem > 0.0:
            if self.phase_done[l]:
                if self.unfinished[l]:
                    self.finish[l] = step_start + (dt - rem)
                    self.unfinished[l] = False
                    r = self.run_of_list[l]
                    self._lanes_left[r] -= 1
                    if self._lanes_left[r] == 0:
                        self._maybe_done.append(r)
                    self._check_finish = bool(
                        (self.phase_done & self.unfinished).any()
                    )
                self._step_lane(l, rem, False)
                return
            rate = self._preview_lane(l)
            if not rate > 0.0:
                raise SimulationError(
                    f"phase {self.cur_name[l]!r} makes no progress"
                )
            frac = self.frac.item(l)
            ttf = (1.0 - frac) / rate
            slice_ = min(rem, max(ttf, _MIN_SLICE_S))
            progress_rate = self._step_lane(l, slice_, True)
            frac = frac + min(progress_rate * slice_, 1.0)
            self.frac[l] = frac
            rem = rem - slice_
            if frac >= 1.0 - _DONE_EPS or (
                ttf <= slice_ + _MIN_SLICE_S and frac >= 1.0 - 1e-3
            ):
                end = step_start + (dt - rem)
                self.spans[l].append(
                    PhaseSpan(
                        name=self.cur_name[l],
                        start_s=self.phase_start[l],
                        end_s=end,
                    )
                )
                self.phase_idx[l] += 1
                self.frac[l] = 0.0
                self.phase_start[l] = end
                if self.phase_idx[l] >= len(self.phases[l]):
                    self.phase_done[l] = True
                    self._check_finish = True
                else:
                    self._load_phase(l)

    def _step(
        self, dt_l: np.ndarray, active: np.ndarray, working: np.ndarray
    ) -> np.ndarray:
        """One ``SimulatedProcessor.step`` across all active lanes."""
        boost = (
            np.where(working, self.cur_boost, 1.0) if self._any_boost else None
        )

        # 1. RAPL firmware: windowed averages -> budget -> clamp.
        h = self.pl1_w - self.avg1
        budget = np.where(
            h < 0.0,
            np.maximum(self.pl1_w + 2.0 * h, 0.0),
            self.pl1_w + 2.0 * h,
        )
        if self._all_en:
            budget = np.minimum(budget, self.pl2_w)
        else:
            budget = np.where(self.pl1_en, budget, np.inf)
            budget = np.where(
                self.pl2_en, np.minimum(budget, self.pl2_w), budget
            )
        if self._u_static:
            u_coef = self._u_coef
        else:
            uv = self._uvolt(self.ufreq)
            u_coef = ((self.k_uncore * uv) * uv) * (self.ufreq / 1e9)
        up_prev = u_coef * (self.u0 + self._u1 * self.prev_traf)
        budget_cores = budget - (self.static_w + up_prev)
        scale_prev = self.a0 + self._a1 * self.prev_act
        top = self._cp_top * scale_prev
        if boost is not None:
            top = top * boost
        if (top <= budget_cores).all():
            # Nobody is power-limited: the search would return the top
            # grid point everywhere.  (``where=True`` is the unmasked
            # fast path when every lane is still alive.)
            np.copyto(
                self.clamp,
                self._clamp_top,
                where=True if self._all_alive else active,
            )
        else:
            fits = self.cp_grid * scale_prev[:, None]
            if boost is not None:
                fits = fits * boost[:, None]
            fits = fits <= budget_cores[:, None]
            any_fit = fits.any(axis=1)
            idx = self._grid_last - np.argmax(fits[:, ::-1], axis=1)
            best = np.where(any_fit, self.pfreqs[idx], self.cmin)
            np.copyto(
                self.clamp,
                np.minimum(np.maximum(best, self.cmin), self.cmax),
                where=active,
            )

        # 2. Hardware uncore governor moves inside its window.  When
        # every window is pinned and the frequency already sits on the
        # pin, ``advance`` is the identity (see ``_refresh_uncore``).
        if not self._u_static:
            if self._all_pinned:
                np.copyto(self.ufreq, self.win_lo, where=active)
            else:
                pinned = self.win_lo == self.win_hi
                demand_t = np.minimum(self.prev_traf / self.g_sat, 1.0)
                np.copyto(
                    demand_t,
                    np.maximum(demand_t, self.g_floor),
                    where=self.prev_act >= self.g_thresh,
                )
                new_demand = self.demand + self.g_resp * (
                    demand_t - self.demand
                )
                target = self.win_lo + new_demand * (self.win_hi - self.win_lo)
                np.copyto(self.demand, new_demand, where=active & ~pinned)
                np.copyto(
                    self.ufreq,
                    np.where(pinned, self.win_lo, self._usnap(target)),
                    where=active,
                )

        # 3. Core clock resolution (+ AVX license, + PROCHOT).
        ekey = self.clamp.tobytes()
        eff = self._eff_cache.get(ekey)
        if eff is None:
            eff = self._csnap(
                np.minimum(np.minimum(self.req, self.ctl), self.clamp)
            )
            self._eff_cache[ekey] = eff
        self._eff = eff
        core_hz = eff
        if self.avx_on:
            core_hz = np.where(
                working & (self.cur_fpc >= self.avx_lic),
                np.minimum(eff, self.avx_max),
                eff,
            )
        if self.has_thermal:
            core_hz = np.where(
                self.prochot,
                np.minimum(core_hz, self.prochot_snap),
                core_hz,
            )

        # 4. Roofline rates.
        t, t_c = self._phase_time(core_hz, working)
        if self._t_reuse:
            self._t_cache = (t, working)
        # ``x / inf == +0.0`` exactly, so masking the divisor with inf
        # zeroes every non-working rate in one shot — bit-identical to
        # the per-rate ``where(working, ..., 0.0)`` it replaces.
        tm = np.where(working, t, np.inf)
        flops_rate = self.cur_flops / tm
        bytes_rate = self.cur_bytes / tm
        activity = np.minimum(t_c / tm, 1.0)
        traffic = np.minimum(bytes_rate / self.peak_bw, 1.0)
        progress_rate = 1.0 / tm

        # 5. Package + DRAM power.  The core power coefficient is a
        # pure function of the snapped clock vector, so it memoizes on
        # the array bytes (clamp patterns repeat between EMA crossings).
        ckey = core_hz.tobytes()
        c_coef = self._cw_cache.get(ckey)
        if c_coef is None:
            cv = self._cvolt(core_hz)
            c_coef = ((self.ck * cv) * cv) * (core_hz / 1e9)
            self._cw_cache[ckey] = c_coef
        core_w = c_coef * (self.a0 + self._a1 * activity)
        if boost is not None:
            core_w = core_w * boost
        if self._u_static:
            uc2 = self._u_coef
        else:
            uv2 = self._uvolt(self.ufreq)
            uc2 = ((self.k_uncore * uv2) * uv2) * (self.ufreq / 1e9)
        uncore_w = uc2 * (self.u0 + self._u1 * traffic)
        total = (self.static_w + core_w) + uncore_w
        dram_traffic = bytes_rate
        if self._any_ov:
            ov = working & self.cur_ov_on & (self.ufreq < self.sat_hz)
            if ov.any():
                dram_traffic = np.where(
                    ov,
                    bytes_rate
                    * (1.0 + self.cur_ov * (1.0 - self.ufreq / self.sat_hz)),
                    bytes_rate,
                )
        dram_w = self.dram_static + self.dram_epb * dram_traffic

        # 6. RAPL step: latch pending limits, meter energy, averages.
        # Accumulators drop the ``active`` mask: inactive lanes have
        # ``dt_l == 0`` so their increment is an exact ``+0.0`` (and
        # the EMA factor ``1 - exp(-0/w)`` is exactly zero), both of
        # which are bitwise no-ops on the non-negative state here.
        self.rapl_now += dt_l
        if self._any_pending:
            latched = (
                active
                & np.isfinite(self.pend_due)
                & (self.rapl_now >= self.pend_due)
            )
            if latched.any():
                np.copyto(self.pl1_w, self.pend1_w, where=latched)
                np.copyto(self.pl1_win, self.pend1_win, where=latched)
                np.copyto(self.pl2_w, self.pend2_w, where=latched)
                np.copyto(self.pl2_win, self.pend2_win, where=latched)
                self.pl1_en |= latched
                self.pl2_en |= latched
                self.pend_due[latched] = np.inf
                self._any_pending = bool(np.isfinite(self.pend_due).any())
                self._all_en = bool(self.pl1_en.all() and self.pl2_en.all())
                self._refresh_alpha(np.nonzero(latched)[0].tolist())
        self.e_pkg += total * dt_l
        self.e_dram += dram_w * dt_l
        a1, a2, a_th = self._ema_alphas(dt_l)
        self.avg1 += a1 * (total - self.avg1)
        self.avg2 += a2 * (total - self.avg2)

        # 7. Thermal RC + PROCHOT hysteresis.
        if self.has_thermal:
            th_target = self.th_amb + total * self.th_r
            np.copyto(
                self.temp,
                self.temp + a_th * (th_target - self.temp),
                where=active,
            )
            self.prochot = np.where(
                active & (self.temp >= self.th_trip),
                True,
                np.where(
                    active & (self.temp <= self.th_trip - self.th_hyst),
                    False,
                    self.prochot,
                ),
            )

        # 8. APERF/MPERF and the retired-work counters (``dt_l == 0``
        # makes every inactive increment an exact no-op, as above).
        self.aperf += eff * dt_l
        self.mperf += self.base_hz * dt_l
        self.flops_ret += flops_rate * dt_l
        self.bytes_trans += bytes_rate * dt_l
        self.proc_now += dt_l
        if self._all_alive:
            np.copyto(self.prev_act, activity)
            np.copyto(self.prev_traf, traffic)
        else:
            np.copyto(self.prev_act, activity, where=active)
            np.copyto(self.prev_traf, traffic, where=active)

        # 9. Trace snapshot (skipped when no run records a trace).
        if self._tracing:
            np.copyto(self.st_core, core_hz, where=active)
            np.copyto(self.st_uncore, self.ufreq, where=active)
            np.copyto(self.st_pkg, total, where=active)
            np.copyto(self.st_dram, dram_w, where=active)
            np.copyto(self.st_flops, flops_rate, where=active)
            np.copyto(self.st_bytes, bytes_rate, where=active)
        return progress_rate

    # -- object <-> array sync --------------------------------------------------------

    def _scatter(self, r: int) -> None:
        """Write the lane arrays back into run ``r``'s object graph.

        Everything the controller tick can *read* must be current:
        the PAPI counters, RAPL limits/pending/energy, MSR read hooks
        (APERF/MPERF, uncore status, effective frequency), thermals.
        """
        from ..hardware.rapl import PowerLimit

        for l in self.run_lanes[r]:
            p = self.procs[l]
            p.flops_retired = self.flops_ret.item(l)
            p.bytes_transferred = self.bytes_trans.item(l)
            p.now_s = self.proc_now.item(l)
            d = p.dvfs
            d._aperf_cycles = self.aperf.item(l)
            d._mperf_cycles = self.mperf.item(l)
            d.rapl_clamp_hz = self.clamp.item(l)
            p.uncore._freq_hz = self.ufreq.item(l)
            ra = p.rapl
            ra._now_s = self.rapl_now.item(l)
            ra.pl1.limit_w = self.pl1_w.item(l)
            ra.pl1.window_s = self.pl1_win.item(l)
            ra.pl1.enabled = self.pl1_en.item(l)
            ra.pl2.limit_w = self.pl2_w.item(l)
            ra.pl2.window_s = self.pl2_win.item(l)
            ra.pl2.enabled = self.pl2_en.item(l)
            ra._avg_pl1_w = self.avg1.item(l)
            ra._avg_pl2_w = self.avg2.item(l)
            ra.package._energy_j = self.e_pkg.item(l)
            ra.dram._energy_j = self.e_dram.item(l)
            due = self.pend_due.item(l)
            if math.isfinite(due):
                ra._pending = (
                    due,
                    PowerLimit(
                        self.pend1_w.item(l), self.pend1_win.item(l)
                    ),
                    PowerLimit(
                        self.pend2_w.item(l), self.pend2_win.item(l)
                    ),
                )
            else:
                ra._pending = None
            if self.has_thermal:
                p.thermal.temperature_c = self.temp.item(l)
                p.thermal.prochot = self.prochot.item(l)

    def _gather(self, r: int) -> None:
        """Read back everything the controllers may have actuated."""
        for l in self.run_lanes[r]:
            p = self.procs[l]
            self.ctl[l] = p.dvfs.perf_ctl_ceiling_hz
            u = p.uncore
            self.ufreq[l] = u._freq_hz
            self.win_lo[l] = u.window_lo_hz
            self.win_hi[l] = u.window_hi_hz
            ra = p.rapl
            self.pl1_w[l] = ra.pl1.limit_w
            self.pl1_win[l] = ra.pl1.window_s
            self.pl1_en[l] = ra.pl1.enabled
            self.pl2_w[l] = ra.pl2.limit_w
            self.pl2_win[l] = ra.pl2.window_s
            self.pl2_en[l] = ra.pl2.enabled
            if ra._pending is not None:
                due, pl1, pl2 = ra._pending
                self.pend_due[l] = due
                self.pend1_w[l], self.pend1_win[l] = pl1.limit_w, pl1.window_s
                self.pend2_w[l], self.pend2_win[l] = pl2.limit_w, pl2.window_s
                self._any_pending = True
            else:
                self.pend_due[l] = np.inf
        self._refresh_alpha(self.run_lanes[r])

    def _after_gather(self) -> None:
        """Batch-wide refreshes after a group of ``_gather`` calls.

        These scan whole arrays, so one pass after all due runs have
        synced replaces a pass per run.
        """
        self._all_en = bool(self.pl1_en.all() and self.pl2_en.all())
        self._refresh_uncore()
        # ``perf_ctl`` may have moved, so clamp-keyed entries are stale.
        self._eff_cache.clear()
        self._eff = None
        self._t_cache = None


def _chunks(items: list[int], size: int) -> list[list[int]]:
    return [items[i : i + size] for i in range(0, len(items), size)]


def run_batch(
    engines: Sequence[SimulationEngine], *, max_batch: int | None = None
) -> list[RunResult]:
    """Run many engines, batching the compatible ones.

    Engines are grouped by ``(SocketConfig, dt_s)``; each group runs
    through one :class:`BatchSimulationEngine` (split into chunks of at
    most ``max_batch`` runs when given).  Engines that cannot be
    batched (see :func:`batch_fallback_reason`) run through the scalar
    engine — results are identical either way, so callers never need
    to care which path executed.  Results come back in input order.
    """
    if max_batch is not None and max_batch < 1:
        raise SimulationError("max_batch must be at least 1")
    results: list[RunResult | None] = [None] * len(engines)
    groups: dict[tuple, list[int]] = {}
    for i, e in enumerate(engines):
        if batch_fallback_reason(e) is not None:
            results[i] = e.run()
        else:
            key = (e.machine.config.socket, e.engine_cfg.dt_s)
            groups.setdefault(key, []).append(i)
    for idxs in groups.values():
        for chunk in _chunks(idxs, max_batch or len(idxs)):
            out = BatchSimulationEngine([engines[i] for i in chunk]).run()
            for i, res in zip(chunk, out):
                results[i] = res
    return [r for r in results if r is not None]
