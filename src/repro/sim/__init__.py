"""Discrete-time co-simulation of machine, workload and controllers."""

from .machine import SimulatedMachine, yeti_machine
from .result import RunResult, TraceSample, PhaseSpan, SocketResult
from .engine import SimulationEngine
from .faults import FaultEvent, FaultInjector, FaultPlan, parse_fault_plan
from .run import run_application
from .trace import (
    TraceSink,
    InMemoryTraceSink,
    RingBufferTraceSink,
    StreamingTraceSink,
    CompositeTraceSink,
)
from .export import (
    run_summary,
    trace_csv_string,
    write_summary_json,
    write_trace_csv,
    write_trace_jsonl,
)
from .hetero import HeteroEngine, HeteroResult

__all__ = [
    "SimulatedMachine",
    "yeti_machine",
    "RunResult",
    "TraceSample",
    "PhaseSpan",
    "SocketResult",
    "SimulationEngine",
    "FaultPlan",
    "FaultEvent",
    "FaultInjector",
    "parse_fault_plan",
    "run_application",
    "TraceSink",
    "InMemoryTraceSink",
    "RingBufferTraceSink",
    "StreamingTraceSink",
    "CompositeTraceSink",
    "run_summary",
    "trace_csv_string",
    "write_summary_json",
    "write_trace_csv",
    "write_trace_jsonl",
    "HeteroEngine",
    "HeteroResult",
]
