"""CPU + multi-GPU co-simulation under a shared power budget.

The paper's final future-work question (§VII): "With a specified shared
power budget to distribute over a CPU and a GPU, can we benefit from
dynamic power capping to reduce the budget of the CPU when it does not
need it and increase the GPU power budget?"  This engine answers it on
the repro substrate: one CPU socket running a phase application plus
one or more GPUs draining a kernel queue, with a
:class:`~repro.core.split.SplitPolicy` re-splitting one budget between
the CPU's RAPL cap and each GPU's software power limit every
re-allocation period.

Beyond the original two-device demo, the engine is a first-class peer
of the scalar engine:

* **Multi-GPU nodes** — a :class:`~repro.hardware.gpu.GPUNodeConfig`
  describes the accelerator count, the node-wide kernel queue
  (distributed round-robin) and the host↔device link.
* **Explicit transfer phases** — each kernel stages its input over the
  link, computes, then drains its output.  The link's effective
  bandwidth scales with the *CPU uncore* frequency
  (:meth:`~repro.hardware.gpu.GPUNodeConfig.link_bw_at`), the coupling
  measured by *Exploring Uncore Frequency Scaling for Heterogeneous
  Computing* (PAPERS.md) — so host-side uncore decisions move
  accelerator makespan.
* **Observability** — a :class:`~repro.sim.trace.TraceSink` receives
  per-tick :class:`~repro.sim.result.TraceSample` records for every
  device (the CPU is trace socket 0, GPU *i* is socket ``1+i`` with
  its board clock/power/limit mapped onto the sample fields).
* **Fault channels** — a :class:`~repro.sim.faults.FaultPlan` arms
  seeded GPU power-limit latch losses (``gpu_cap_latch_fail``) and
  kernel-queue stalls (``gpu_stall``) next to the CPU-side RAPL latch
  channel, through one per-run :class:`~repro.sim.faults.
  FaultInjector`.
* **Seeded noise** — a ``seed`` plus :class:`~repro.config.NoiseConfig`
  jitter the CPU phases and GPU kernel volumes per run, so the
  measurement protocol's trimming statistics apply to hetero cells
  exactly as to CPU-only ones.

The legacy two-device construction (``kernels=[...]``,
``total_budget_w=...``, ``coordinated=True/False``) still works: it
maps onto a single-GPU node with zero-byte transfers and a
:class:`~repro.core.split.CoordinatedSplit`/:class:`~repro.core.split.
StaticSplit` policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ControllerConfig, NoiseConfig, SocketConfig, yeti_socket_config
from ..core.split import CoordinatedSplit, SplitPolicy, StaticSplit
from ..core.tolerance import SlowdownTracker, ToleranceVerdict
from ..errors import SimulationError
from ..hardware.gpu import GPUConfig, GPUKernel, GPUNodeConfig, SimulatedGPU
from ..hardware.processor import SimulatedProcessor
from ..workloads.application import Application
from ..workloads.phase import NominalRates
from .faults import FaultEvent, FaultInjector, FaultPlan
from .result import TraceSample
from .trace import TraceSink

__all__ = ["HeteroResult", "HeteroEngine"]

#: Stream label decorrelating the hetero jitter RNG from the fault RNG
#: (which derives from the same run seed).
_JITTER_STREAM = 0x48E7


@dataclass
class HeteroResult:
    """Outcome of one shared-budget CPU+GPU run."""

    cpu_finish_s: float
    gpu_finish_s: float
    cpu_energy_j: float
    gpu_energy_j: float
    #: (time, cpu_alloc, summed_gpu_alloc) per re-allocation — the
    #: original two-column view, kept for existing consumers.
    allocations: list[tuple[float, float, float]] = field(default_factory=list)
    #: (time, (cpu_alloc, gpu0_alloc, ...)) per re-allocation.
    device_allocations: list[tuple[float, tuple[float, ...]]] = field(
        default_factory=list
    )
    #: Per-GPU finish times / energies, device order.
    gpu_finish_times_s: tuple[float, ...] = ()
    gpu_energies_j: tuple[float, ...] = ()
    #: Link-busy seconds summed over every GPU's transfer phases.
    transfer_s: float = 0.0
    #: Injected faults, emission order (empty without a plan).
    fault_events: list[FaultEvent] = field(default_factory=list)

    @property
    def makespan_s(self) -> float:
        return max(self.cpu_finish_s, self.gpu_finish_s)

    @property
    def total_energy_j(self) -> float:
        return self.cpu_energy_j + self.gpu_energy_j


class _GPUTask:
    """One GPU's progress through its kernel queue.

    Each kernel passes through three stages: ``in`` (host→device input
    over the shared link), ``compute`` (roofline execution), ``out``
    (device→host output).  Zero-byte transfers complete without
    consuming a tick, which keeps the legacy transfer-free setup
    numerically identical to the original engine.
    """

    __slots__ = (
        "queue", "refs", "idx", "stage", "frac",
        "bytes_left", "stall_left", "launched", "finish",
    )

    def __init__(self, queue: list[GPUKernel], refs: list[float]):
        self.queue = queue
        self.refs = refs
        self.idx = 0
        self.stage = "in"
        self.frac = 0.0
        self.bytes_left = 0.0
        self.stall_left = 0.0
        self.launched = False
        self.finish: float | None = None

    @property
    def done(self) -> bool:
        return self.idx >= len(self.queue)

    @property
    def transferring(self) -> bool:
        return (
            not self.done
            and self.stall_left <= 0.0
            and self.stage in ("in", "out")
            and self.bytes_left > 0.0
        )


@dataclass
class HeteroEngine:
    """One CPU socket plus a GPU node under a shared power budget."""

    application: Application
    #: Legacy explicit kernel queue (single GPU); ``None`` derives the
    #: queue from ``node``.
    kernels: list[GPUKernel] | None = None
    #: Legacy shared budget; superseded by ``policy.budget_w`` when a
    #: policy object is supplied.
    total_budget_w: float | None = None
    cfg: ControllerConfig = field(default_factory=ControllerConfig)
    socket_cfg: SocketConfig = field(default_factory=yeti_socket_config)
    #: Legacy single-GPU model; ``node`` takes precedence.
    gpu_cfg: GPUConfig = field(default_factory=GPUConfig)
    #: The GPU side of the node (count, kernel queue, link).
    node: GPUNodeConfig | None = None
    #: Budget-split strategy; ``None`` derives one from the legacy
    #: ``coordinated`` flag and ``total_budget_w``.
    policy: SplitPolicy | None = None
    dt_s: float = 0.01
    #: Re-allocate every this many seconds (dynamic policies only).
    realloc_period_s: float = 1.0
    #: Legacy mode switch; ignored when ``policy`` is supplied.
    coordinated: bool = True
    max_sim_time_s: float = 600.0
    #: Per-run seed driving jitter and fault draws.
    seed: int = 0
    #: Run-to-run noise; ``None`` disables jitter entirely.
    noise: NoiseConfig | None = None
    #: Seeded fault channels (GPU latch/stall + CPU RAPL latch).
    faults: FaultPlan | None = None
    #: Per-tick per-device observer; the CPU is trace socket 0.
    trace_sink: TraceSink | None = None

    def __post_init__(self) -> None:
        self.cfg.validate()
        self.socket_cfg.validate()
        if self.node is not None:
            self.node.validate()
            self._node = self.node
        else:
            # Legacy: a single GPU with no modelled transfers.
            self.gpu_cfg.validate()
            self._node = GPUNodeConfig(
                gpu=self.gpu_cfg, gpu_count=1, input_bytes=0.0, output_bytes=0.0
            )
        if self.kernels is not None:
            if not self.kernels:
                raise SimulationError("GPU needs at least one kernel")
            self._kernels = list(self.kernels)
        else:
            self._kernels = self._node.build_kernels()
        if self.policy is not None:
            self._policy = self.policy
        else:
            if self.total_budget_w is None:
                raise SimulationError("hetero run needs a budget or a policy")
            self._policy = (
                CoordinatedSplit(self.total_budget_w)
                if self.coordinated
                else StaticSplit(self.total_budget_w, cpu_fraction=0.5)
            )
        if self.faults is not None:
            self.faults.validate()
        floors = self._floors()
        if self._policy.budget_w < sum(floors):
            raise SimulationError(
                f"budget {self._policy.budget_w} W below the combined "
                f"floor {sum(floors)} W"
            )

    # -- device bounds ---------------------------------------------------------

    def _floors(self) -> list[float]:
        gpu_floor = self._node.gpu.power_limit_floor_w
        return [self.cfg.cap_floor_w] + [gpu_floor] * self._node.gpu_count

    def _ceilings(self) -> list[float]:
        gpu_ceiling = self._node.gpu.power_limit_default_w
        return [self.socket_cfg.rapl.pl1_default_w] + [
            gpu_ceiling
        ] * self._node.gpu_count

    # -- the run ---------------------------------------------------------------

    def run(self) -> HeteroResult:
        node = self._node
        policy = self._policy
        n_gpus = node.gpu_count
        rng = np.random.default_rng([abs(int(self.seed)), _JITTER_STREAM])
        app = self.application
        kernels = self._kernels
        if self.noise is not None and self.noise.duration_jitter > 0.0:
            app = app.jittered(rng, self.noise.duration_jitter)
            # Kernel volumes jitter multiplicatively like CPU phases.
            factors = 1.0 + self.noise.duration_jitter * rng.standard_normal(
                len(kernels)
            )
            kernels = [
                GPUKernel(k.name, flops=k.flops * max(f, 0.5), bytes=k.bytes * max(f, 0.5))
                for k, f in zip(kernels, factors)
            ]

        sink = self.trace_sink
        injector: FaultInjector | None = None
        if self.faults is not None and self.faults.active:
            injector = FaultInjector(
                self.faults,
                self.seed,
                emit=sink.record_event if sink is not None else None,
            )
        cpu_latch = injector.latch_port(0) if injector is not None else None

        cpu = SimulatedProcessor(self.socket_cfg)
        gpus = [SimulatedGPU(node.gpu) for _ in range(n_gpus)]
        cpu_tracker = SlowdownTracker(
            self.cfg.tolerated_slowdown, self.cfg.measurement_error
        )
        gpu_trackers = [
            SlowdownTracker(self.cfg.tolerated_slowdown, self.cfg.measurement_error)
            for _ in range(n_gpus)
        ]
        # Reference rates: what each phase/kernel achieves uncapped.
        # Seeding the trackers with the model-derived nominal keeps the
        # verdicts meaningful even though the devices start capped (a
        # throttled device must not mistake its first throttled sample
        # for full performance).
        nominal = NominalRates(self.socket_cfg)
        cpu_ref = [
            p.flops / nominal.duration(p) if p.flops > 0 else 0.0
            for p in app.phases
        ]
        probe = gpus[0]
        kernel_ref = [
            k.flops / probe.kernel_time(k, node.gpu.max_freq_hz) for k in kernels
        ]
        # Round-robin queue distribution across the node's GPUs.
        tasks = [
            _GPUTask(kernels[i::n_gpus], kernel_ref[i::n_gpus])
            for i in range(n_gpus)
        ]

        floors = self._floors()
        ceilings = self._ceilings()
        allocs = policy.initial(floors, ceilings)
        result = HeteroResult(0.0, 0.0, 0.0, 0.0)
        if sink is not None:
            sink.open(1 + n_gpus)

        def apply(now: float) -> None:
            nonlocal allocs
            allocs = [
                min(max(a, lo), hi)
                for a, lo, hi in zip(allocs, floors, ceilings)
            ]
            dropped = cpu_latch()[0] if cpu_latch is not None else False
            if not dropped:
                cpu.rapl.set_limits(allocs[0], allocs[0])
            for i, gpu in enumerate(gpus):
                if injector is not None and injector.gpu_cap_latch_fails(1 + i):
                    continue
                gpu.set_power_limit(allocs[1 + i])
            result.allocations.append((now, allocs[0], sum(allocs[1:])))
            result.device_allocations.append((now, tuple(allocs)))

        apply(0.0)

        now = 0.0
        next_realloc = self.realloc_period_s
        cpu_phase = 0
        cpu_done_frac = 0.0
        cpu_finish: float | None = None
        uncore_max = self.socket_cfg.uncore.max_freq_hz

        def step_gpu(i: int, link_bw: float) -> None:
            task, gpu = tasks[i], gpus[i]
            if task.done:
                gpu.step(self.dt_s, None)
                if task.finish is None:
                    task.finish = now
                return
            if task.stall_left > 0.0:
                task.stall_left = max(task.stall_left - self.dt_s, 0.0)
                gpu.step(self.dt_s, None)
                return
            kernel = task.queue[task.idx]
            if task.stage == "in":
                if not task.launched:
                    task.launched = True
                    task.bytes_left = node.input_bytes
                    if injector is not None:
                        task.stall_left = injector.gpu_queue_stall_s(1 + i)
                        if task.stall_left > 0.0:
                            gpu.step(self.dt_s, None)
                            return
                if task.bytes_left > 0.0:
                    task.bytes_left -= link_bw * self.dt_s
                    gpu.step(self.dt_s, None)
                    result.transfer_s += self.dt_s
                    if task.bytes_left <= 0.0:
                        task.stage = "compute"
                        gpu_trackers[i].reset(task.refs[task.idx])
                    return
                task.stage = "compute"
                gpu_trackers[i].reset(task.refs[task.idx])
            if task.stage == "compute":
                task.frac += gpu.step(self.dt_s, kernel)
                if task.frac >= 1.0 - 1e-9:
                    task.stage = "out"
                    task.bytes_left = node.output_bytes
                    if task.bytes_left <= 0.0:
                        task.idx += 1
                        task.stage = "in"
                        task.frac = 0.0
                        task.launched = False
                return
            # stage == "out"
            task.bytes_left -= link_bw * self.dt_s
            gpu.step(self.dt_s, None)
            result.transfer_s += self.dt_s
            if task.bytes_left <= 0.0:
                task.idx += 1
                task.stage = "in"
                task.frac = 0.0
                task.launched = False

        try:
            while cpu_finish is None or any(t.finish is None for t in tasks):
                if now >= self.max_sim_time_s:
                    raise SimulationError(
                        "hetero simulation exceeded the time limit"
                    )
                if injector is not None:
                    injector.advance(now)

                # CPU side.
                if cpu_phase < len(app.phases):
                    if cpu_done_frac == 0.0:
                        cpu_tracker.reset(cpu_ref[cpu_phase])
                    phase = app.phases[cpu_phase]
                    cpu_done_frac += cpu.step(self.dt_s, phase.to_work())
                    if cpu_done_frac >= 1.0 - 1e-9:
                        cpu_phase += 1
                        cpu_done_frac = 0.0
                else:
                    cpu.step(self.dt_s, None)
                    if cpu_finish is None:
                        cpu_finish = now

                # GPU side: the link bandwidth rides this tick's uncore
                # clock — DUF-style host decisions move transfer time.
                link_bw = node.link_bw_at(
                    cpu.state.uncore_freq_hz / uncore_max
                )
                for i in range(n_gpus):
                    step_gpu(i, link_bw)

                now += self.dt_s

                if not policy.is_static and now + 1e-9 >= next_realloc:
                    next_realloc += self.realloc_period_s
                    demands = [
                        self._demand(
                            cpu_tracker,
                            cpu.state.flops_rate,
                            cpu.state.package.total_w,
                            allocs[0],
                            floors[0],
                        )
                    ]
                    for i, gpu in enumerate(gpus):
                        demands.append(
                            self._demand(
                                gpu_trackers[i],
                                gpu.state.flops_rate,
                                gpu.state.power_w,
                                allocs[1 + i],
                                floors[1 + i],
                            )
                        )
                    allocs = policy.allocate(demands, floors, ceilings)
                    apply(now)

                if sink is not None:
                    st = cpu.state
                    sink.record(
                        0,
                        TraceSample(
                            time_s=now,
                            core_freq_hz=st.core_freq_hz,
                            uncore_freq_hz=st.uncore_freq_hz,
                            package_power_w=st.package.total_w,
                            dram_power_w=st.dram_power_w,
                            cap_w=allocs[0],
                            flops_rate=st.flops_rate,
                            bytes_rate=st.bytes_rate,
                        ),
                    )
                    for i, gpu in enumerate(gpus):
                        gs = gpu.state
                        sink.record(
                            1 + i,
                            TraceSample(
                                time_s=now,
                                core_freq_hz=gs.freq_hz,
                                uncore_freq_hz=0.0,
                                package_power_w=gs.power_w,
                                dram_power_w=0.0,
                                cap_w=gpu.power_limit_w,
                                flops_rate=gs.flops_rate,
                                bytes_rate=link_bw if tasks[i].transferring else 0.0,
                            ),
                        )
        finally:
            if sink is not None:
                sink.close()

        result.cpu_finish_s = cpu_finish
        result.gpu_finish_times_s = tuple(t.finish for t in tasks)
        result.gpu_finish_s = max(result.gpu_finish_times_s)
        result.cpu_energy_j = cpu.package_energy_j
        result.gpu_energies_j = tuple(g.energy_j for g in gpus)
        result.gpu_energy_j = sum(result.gpu_energies_j)
        if injector is not None:
            result.fault_events = list(injector.events)
        return result

    def _demand(
        self,
        tracker: SlowdownTracker,
        flops_rate: float,
        power_w: float,
        limit_w: float,
        floor_w: float,
    ) -> float:
        """One device's bid for the next period, the paper's rule: a
        throttled device bids above its limit, a device within its
        tolerance offers a step back."""
        verdict = tracker.judge(flops_rate)
        if verdict is ToleranceVerdict.BELOW:
            return limit_w + 2 * self.cfg.cap_step_w
        if verdict is ToleranceVerdict.WITHIN:
            return max(power_w - self.cfg.cap_step_w, floor_w)
        return power_w
