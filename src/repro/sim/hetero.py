"""CPU + GPU co-simulation under a shared power budget.

The paper's final future-work question (§VII): "With a specified shared
power budget to distribute over a CPU and a GPU, can we benefit from
dynamic power capping to reduce the budget of the CPU when it does not
need it and increase the GPU power budget?"  This engine answers it on
the repro substrate: one CPU socket running a phase application and one
GPU running a kernel queue, with a coordinator re-splitting one budget
between the CPU's RAPL cap and the GPU's software power limit every
re-allocation period.

The split policy mirrors :mod:`repro.core.budget`'s tolerance-aware
demand: a device meeting its tolerated slowdown offers watts back; a
throttled device bids above its current limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ControllerConfig, SocketConfig, yeti_socket_config
from ..core.budget import allocate_budget
from ..core.tolerance import SlowdownTracker, ToleranceVerdict
from ..errors import SimulationError
from ..hardware.gpu import GPUConfig, GPUKernel, SimulatedGPU
from ..hardware.processor import SimulatedProcessor
from ..workloads.application import Application
from ..workloads.phase import NominalRates

__all__ = ["HeteroResult", "HeteroEngine"]


@dataclass
class HeteroResult:
    """Outcome of one shared-budget CPU+GPU run."""

    cpu_finish_s: float
    gpu_finish_s: float
    cpu_energy_j: float
    gpu_energy_j: float
    #: (time, cpu_alloc, gpu_alloc) per re-allocation.
    allocations: list[tuple[float, float, float]] = field(default_factory=list)

    @property
    def makespan_s(self) -> float:
        return max(self.cpu_finish_s, self.gpu_finish_s)

    @property
    def total_energy_j(self) -> float:
        return self.cpu_energy_j + self.gpu_energy_j


@dataclass
class HeteroEngine:
    """One CPU socket + one GPU under a shared budget."""

    application: Application
    kernels: list[GPUKernel]
    total_budget_w: float
    cfg: ControllerConfig = field(default_factory=ControllerConfig)
    socket_cfg: SocketConfig = field(default_factory=yeti_socket_config)
    gpu_cfg: GPUConfig = field(default_factory=GPUConfig)
    dt_s: float = 0.01
    #: Re-allocate every this many seconds.
    realloc_period_s: float = 1.0
    #: Coordinated mode; ``False`` freezes a static half/half-ish split.
    coordinated: bool = True
    max_sim_time_s: float = 600.0

    def __post_init__(self) -> None:
        self.cfg.validate()
        self.socket_cfg.validate()
        self.gpu_cfg.validate()
        if not self.kernels:
            raise SimulationError("GPU needs at least one kernel")
        floor = self.cfg.cap_floor_w + self.gpu_cfg.power_limit_floor_w
        if self.total_budget_w < floor:
            raise SimulationError(
                f"budget {self.total_budget_w} W below the combined floor {floor} W"
            )

    def run(self) -> HeteroResult:
        cpu = SimulatedProcessor(self.socket_cfg)
        gpu = SimulatedGPU(self.gpu_cfg)
        cpu_tracker = SlowdownTracker(
            self.cfg.tolerated_slowdown, self.cfg.measurement_error
        )
        gpu_tracker = SlowdownTracker(
            self.cfg.tolerated_slowdown, self.cfg.measurement_error
        )
        # Reference rates: what each phase/kernel achieves uncapped.
        # Seeding the trackers with the model-derived nominal keeps the
        # verdicts meaningful even though the devices start capped (a
        # throttled device must not mistake its first throttled sample
        # for full performance).
        nominal = NominalRates(self.socket_cfg)
        cpu_ref = [
            p.flops / nominal.duration(p) if p.flops > 0 else 0.0
            for p in self.application.phases
        ]
        gpu_ref = [
            k.flops / gpu.kernel_time(k, self.gpu_cfg.max_freq_hz)
            for k in self.kernels
        ]

        # Initial split: the naive halves a datacentre operator would
        # configure without workload knowledge.  Static mode keeps it;
        # coordinated mode starts here and adapts.
        cpu_default = self.socket_cfg.rapl.pl1_default_w
        gpu_default = self.gpu_cfg.power_limit_default_w
        cpu_alloc = self.total_budget_w / 2.0
        gpu_alloc = self.total_budget_w / 2.0
        result = HeteroResult(0.0, 0.0, 0.0, 0.0)

        def apply(now: float) -> None:
            nonlocal cpu_alloc, gpu_alloc
            cpu_alloc = min(max(cpu_alloc, self.cfg.cap_floor_w), cpu_default)
            gpu_alloc = min(
                max(gpu_alloc, self.gpu_cfg.power_limit_floor_w), gpu_default
            )
            cpu.rapl.set_limits(cpu_alloc, cpu_alloc)
            gpu.set_power_limit(gpu_alloc)
            result.allocations.append((now, cpu_alloc, gpu_alloc))

        apply(0.0)

        now = 0.0
        next_realloc = self.realloc_period_s
        cpu_phase = 0
        cpu_done_frac = 0.0
        gpu_kernel = 0
        gpu_done_frac = 0.0
        cpu_finish = gpu_finish = None

        while cpu_finish is None or gpu_finish is None:
            if now >= self.max_sim_time_s:
                raise SimulationError("hetero simulation exceeded the time limit")

            # CPU side.
            if cpu_phase < len(self.application.phases):
                if cpu_done_frac == 0.0:
                    cpu_tracker.reset(cpu_ref[cpu_phase])
                phase = self.application.phases[cpu_phase]
                made = cpu.step(self.dt_s, phase.to_work())
                cpu_done_frac += made
                if cpu_done_frac >= 1.0 - 1e-9:
                    cpu_phase += 1
                    cpu_done_frac = 0.0
            else:
                cpu.step(self.dt_s, None)
                if cpu_finish is None:
                    cpu_finish = now

            # GPU side.
            if gpu_kernel < len(self.kernels):
                if gpu_done_frac == 0.0:
                    gpu_tracker.reset(gpu_ref[gpu_kernel])
                kernel = self.kernels[gpu_kernel]
                made = gpu.step(self.dt_s, kernel)
                gpu_done_frac += made
                if gpu_done_frac >= 1.0 - 1e-9:
                    gpu_kernel += 1
                    gpu_done_frac = 0.0
            else:
                gpu.step(self.dt_s, None)
                if gpu_finish is None:
                    gpu_finish = now

            now += self.dt_s

            if self.coordinated and now + 1e-9 >= next_realloc:
                next_realloc += self.realloc_period_s
                demands = []
                for tracker, power, limit, floor in (
                    (
                        cpu_tracker,
                        cpu.state.package.total_w,
                        cpu_alloc,
                        self.cfg.cap_floor_w,
                    ),
                    (
                        gpu_tracker,
                        gpu.state.power_w,
                        gpu_alloc,
                        self.gpu_cfg.power_limit_floor_w,
                    ),
                ):
                    verdict = tracker.judge(
                        cpu.state.flops_rate if tracker is cpu_tracker else gpu.state.flops_rate
                    )
                    if verdict is ToleranceVerdict.BELOW:
                        demands.append(limit + 2 * self.cfg.cap_step_w)
                    elif verdict is ToleranceVerdict.WITHIN:
                        demands.append(max(power - self.cfg.cap_step_w, floor))
                    else:
                        demands.append(power)
                floor = min(self.cfg.cap_floor_w, self.gpu_cfg.power_limit_floor_w)
                alloc = allocate_budget(
                    demands,
                    self.total_budget_w,
                    floor,
                    ceiling_w=max(cpu_default, gpu_default),
                )
                cpu_alloc, gpu_alloc = alloc
                apply(now)

        result.cpu_finish_s = cpu_finish
        result.gpu_finish_s = gpu_finish
        result.cpu_energy_j = cpu.package_energy_j
        result.gpu_energy_j = gpu.energy_j
        return result
