"""The co-simulation loop: machine, application and controllers.

Time advances in fixed macro steps (default 10 ms).  Within a step each
socket executes its current phase; steps are split at phase boundaries
so short phases (LAMMPS's 30–60 ms bursts) are timed accurately rather
than rounded to the step grid.  After every step the controller runtime
fires any measurement ticks that became due — the controllers only ever
see the machine through their PAPI meters, never the engine's ground
truth.

Trace recording is delegated to a :class:`~repro.sim.trace.TraceSink`:
``record_trace=True`` without an explicit sink keeps the classic
in-memory behaviour, while a streaming or ring-buffer sink bounds RAM
for arbitrarily long runs (see :mod:`repro.sim.trace`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ControllerConfig, EngineConfig, NoiseConfig
from ..core.base import Controller
from ..core.runtime import ControllerRuntime
from ..errors import SimulationError
from ..workloads.application import Application
from .faults import FaultInjector, FaultPlan
from .machine import SimulatedMachine
from .result import PhaseSpan, RunResult, SocketResult, TraceSample
from .trace import InMemoryTraceSink, TraceSink

__all__ = ["SimulationEngine", "SimulationStepper", "RunContext"]

#: Completion tolerance on a phase's progress fraction.
_DONE_EPS = 1e-9
#: Smallest step slice worth simulating separately.
_MIN_SLICE_S = 1e-5


@dataclass
class _SocketProgress:
    """Execution cursor of one socket through the phase list."""

    phase_index: int = 0
    fraction_done: float = 0.0
    finish_time_s: float | None = None
    phase_start_s: float = 0.0
    spans: list[PhaseSpan] = field(default_factory=list)


@dataclass
class RunContext:
    """Everything one run constructs before stepping simulated time.

    Built by :meth:`SimulationEngine.prepare` and shared with the batch
    engine (:mod:`repro.sim.batch`), so both engines consume the run's
    RNG stream in exactly the same order: the engine generator is
    created first, the per-socket applications draw their duration
    jitter from it, and the controller runtime then shares it for
    measurement noise.
    """

    rng: np.random.Generator
    socket_apps: list[Application]
    sink: TraceSink | None
    injector: FaultInjector | None
    runtime: ControllerRuntime


@dataclass
class SimulationEngine:
    """Runs one application (or one per socket) under one controller set."""

    machine: SimulatedMachine
    application: Application | list[Application]
    controllers: list[Controller]
    controller_cfg: ControllerConfig
    engine_cfg: EngineConfig = field(default_factory=EngineConfig)
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    seed: int | None = None
    record_trace: bool = True
    #: Observer receiving every trace sample.  ``None`` with
    #: ``record_trace=True`` means an in-memory sink (classic
    #: behaviour); ``None`` with ``record_trace=False`` records nothing.
    trace_sink: TraceSink | None = None
    #: Optional fault plan.  ``None`` (or an all-zero plan) keeps the
    #: fault-free fast path: no injector is built and every code path
    #: is bit-for-bit the pre-fault-injection behaviour.
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        self.engine_cfg.validate()
        self.noise.validate()
        if self.faults is not None:
            self.faults.validate()
        if len(self.controllers) != self.machine.socket_count:
            raise SimulationError(
                "one controller per socket required "
                f"({self.machine.socket_count} sockets, {len(self.controllers)} controllers)"
            )
        if isinstance(self.application, list):
            if len(self.application) != self.machine.socket_count:
                raise SimulationError(
                    "per-socket applications must match the socket count "
                    f"({self.machine.socket_count} sockets, "
                    f"{len(self.application)} applications)"
                )
        interval = self.controller_cfg.interval_s
        dt = self.engine_cfg.dt_s
        if abs(interval / dt - round(interval / dt)) > 1e-9:
            raise SimulationError(
                f"engine step {dt}s must divide the controller interval {interval}s"
            )

    def prepare(self) -> RunContext:
        """Build the run's RNG, applications, sink, injector and runtime.

        The construction *order* is part of the contract: the batch
        engine calls this too, so both engines draw duration jitter and
        measurement noise from the shared generator identically.
        """
        rng = np.random.default_rng(
            self.seed if self.seed is not None else self.noise.seed
        )
        # Per-socket work copies with run-to-run jitter.  A list gives
        # each socket its own application (heterogeneous node).
        if isinstance(self.application, list):
            base_apps = self.application
        else:
            base_apps = [self.application] * self.machine.socket_count
        socket_apps = [
            app.jittered(rng, self.noise.duration_jitter) for app in base_apps
        ]
        sink = self.trace_sink
        if sink is None and self.record_trace:
            sink = InMemoryTraceSink()
        injector: FaultInjector | None = None
        if self.faults is not None and self.faults.active:
            injector = FaultInjector(
                self.faults,
                seed=self.seed if self.seed is not None else self.noise.seed,
                emit=sink.record_event if sink is not None else None,
            )
            for sid, proc in enumerate(self.machine.processors):
                proc.rapl.latch_fault = injector.latch_port(sid)
                if proc.cstates is not None:
                    proc.cstates.rollover_fault = (
                        lambda sid=sid: injector.cstate_rollover(sid)
                    )
                if proc.epb_model is not None:
                    proc.epb_model.write_latch_fault = (
                        lambda sid=sid: injector.epp_write_latch_fails(sid)
                    )
        runtime = ControllerRuntime(
            processors=self.machine.processors,
            controllers=self.controllers,
            cfg=self.controller_cfg,
            rng=rng,
            counter_noise=self.noise.counter_noise,
            power_noise=self.noise.power_noise,
            injector=injector,
        )
        return RunContext(
            rng=rng,
            socket_apps=socket_apps,
            sink=sink,
            injector=injector,
            runtime=runtime,
        )

    def collect(
        self,
        ctx: RunContext,
        finish_times: list[float],
        spans: list[list[PhaseSpan]],
    ) -> RunResult:
        """Assemble the :class:`RunResult` once every socket finished."""
        sink = ctx.sink
        sockets = []
        for sid, proc in enumerate(self.machine.processors):
            sockets.append(
                SocketResult(
                    socket_id=sid,
                    finish_time_s=finish_times[sid],
                    package_energy_j=proc.package_energy_j,
                    dram_energy_j=proc.dram_energy_j,
                    trace=sink.collected(sid) if sink is not None else [],
                    phases=spans[sid],
                )
            )
        if isinstance(self.application, list):
            app_name = "+".join(dict.fromkeys(a.name for a in self.application))
        else:
            app_name = self.application.name
        return RunResult(
            app_name=app_name,
            controller_name=self.controllers[0].name,
            sockets=sockets,
            fault_events=list(ctx.injector.events)
            if ctx.injector is not None
            else [],
        )

    def stepper(self) -> "SimulationStepper":
        """A tick-at-a-time cursor over this engine's run loop.

        Construction performs everything :meth:`run` does before its
        first step — :meth:`prepare`, ``runtime.start()`` and the sink
        ``open`` — in the same order, so driving the stepper to
        completion is bit-identical to :meth:`run` (which is itself
        implemented on top of it).  External coordinators (the cluster
        engine) interleave ticks of several steppers to co-simulate
        multiple nodes in lockstep.
        """
        return SimulationStepper(self)

    def run(self) -> RunResult:
        """Execute the application(s) to completion on every socket."""
        stepper = self.stepper()
        try:
            while not stepper.done:
                stepper.tick()
        finally:
            stepper.close()
        return stepper.result()

    # -- one socket, one macro step ------------------------------------------------

    def _advance_socket(
        self,
        proc,
        app: Application,
        p: _SocketProgress,
        step_start_s: float,
        dt: float,
    ) -> None:
        remaining_dt = dt
        while remaining_dt > 0.0:
            if p.phase_index >= len(app.phases):
                # Application finished: the socket idles out the run
                # (waiting on the slowest socket's barrier).
                if p.finish_time_s is None:
                    p.finish_time_s = step_start_s + (dt - remaining_dt)
                proc.step(remaining_dt, None)
                return
            phase = app.phases[p.phase_index]
            work = phase.to_work()
            rate = proc.preview_progress_rate(work)
            if rate <= 0.0:
                raise SimulationError(f"phase {phase.name!r} makes no progress")
            time_to_finish = (1.0 - p.fraction_done) / rate
            slice_s = min(remaining_dt, max(time_to_finish, _MIN_SLICE_S))
            made = proc.step(slice_s, work)
            p.fraction_done += made
            remaining_dt -= slice_s
            if p.fraction_done >= 1.0 - _DONE_EPS or (
                time_to_finish <= slice_s + _MIN_SLICE_S
                and p.fraction_done >= 1.0 - 1e-3
            ):
                end = step_start_s + (dt - remaining_dt)
                p.spans.append(
                    PhaseSpan(name=phase.name, start_s=p.phase_start_s, end_s=end)
                )
                p.phase_index += 1
                p.fraction_done = 0.0
                p.phase_start_s = end


class SimulationStepper:
    """One engine's run loop, exposed one macro step at a time.

    Wraps exactly the state :meth:`SimulationEngine.run` used to keep
    on its stack — the :class:`RunContext`, per-socket progress
    cursors and the simulation clock — so a single ``tick()`` advances
    simulated time by one ``dt`` with the contractual operation order
    (advance + record every socket, then the clock, then fault
    injection, then controller ticks).  ``run()`` drives a stepper to
    completion; the cluster engine instead interleaves the ticks of
    one stepper per node, pausing nodes that finished, which is what
    makes a 1-node cluster bit-identical to a plain run.
    """

    def __init__(self, engine: SimulationEngine):
        self.engine = engine
        self.ctx = engine.prepare()
        self.ctx.runtime.start()
        self.progress = [
            _SocketProgress() for _ in range(engine.machine.socket_count)
        ]
        self.now = 0.0
        self._closed = False
        if self.ctx.sink is not None:
            self.ctx.sink.open(engine.machine.socket_count)

    @property
    def done(self) -> bool:
        """True once every socket has finished its phase list."""
        return all(p.finish_time_s is not None for p in self.progress)

    def tick(self) -> None:
        """Advance simulated time by one engine step (``dt_s``)."""
        engine = self.engine
        ctx = self.ctx
        sink = ctx.sink
        if self.now >= engine.engine_cfg.max_sim_time_s:
            raise SimulationError(
                f"simulation exceeded {engine.engine_cfg.max_sim_time_s}s "
                f"(application {engine.application!r} stuck?)"
            )
        dt = engine.engine_cfg.dt_s
        for sid, proc in enumerate(engine.machine.processors):
            engine._advance_socket(
                proc, ctx.socket_apps[sid], self.progress[sid], self.now, dt
            )
            if sink is not None:
                s = proc.state
                sink.record(
                    sid,
                    TraceSample(
                        time_s=s.time_s,
                        core_freq_hz=s.core_freq_hz,
                        uncore_freq_hz=s.uncore_freq_hz,
                        package_power_w=s.package.total_w,
                        dram_power_w=s.dram_power_w,
                        cap_w=proc.rapl.pl1.limit_w,
                        flops_rate=s.flops_rate,
                        bytes_rate=s.bytes_rate,
                        temperature_c=s.temperature_c,
                    ),
                )
        self.now += dt
        if ctx.injector is not None:
            ctx.injector.advance(self.now)
        ctx.runtime.on_time(self.now)

    def close(self) -> None:
        """Close the sink exactly once (idempotent, exception-safe)."""
        if self._closed:
            return
        self._closed = True
        if self.ctx.sink is not None:
            self.ctx.sink.close()

    def result(self) -> RunResult:
        """Assemble the run result; only valid once :attr:`done`."""
        assert all(p.finish_time_s is not None for p in self.progress)
        return self.engine.collect(
            self.ctx,
            [p.finish_time_s for p in self.progress],  # type: ignore[misc]
            [p.spans for p in self.progress],
        )
