"""Table I: target architecture characteristics."""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_table
from ..sim.machine import yeti_machine

__all__ = ["Table1Result", "table1"]


@dataclass(frozen=True)
class Table1Result:
    """The row of the paper's Table I, as reproduced by the simulator."""

    cores: int
    uncore_min_ghz: float
    uncore_max_ghz: float
    long_term_w: float
    short_term_w: float

    def render(self) -> str:
        return format_table(
            ["cores", "uncore frequency (GHz)", "long term (W)", "short term (W)"],
            [
                (
                    self.cores,
                    f"[{self.uncore_min_ghz:.1f}-{self.uncore_max_ghz:.1f}]",
                    self.long_term_w,
                    self.short_term_w,
                )
            ],
            title="Table I: Target architecture characteristics",
            float_fmt="{:.0f}",
        )


def table1() -> Table1Result:
    """Regenerate Table I from the simulated yeti-2 machine."""
    machine = yeti_machine(socket_count=4)
    desc = machine.topology.describe()
    lo, hi = desc["uncore_freq_ghz"]
    return Table1Result(
        cores=int(desc["cores"]),
        uncore_min_ghz=float(lo),
        uncore_max_ghz=float(hi),
        long_term_w=float(desc["long_term_w"]),
        short_term_w=float(desc["short_term_w"]),
    )
