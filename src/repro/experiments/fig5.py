"""Figure 5: CPU frequency under DUF vs DUFP (CG, 10 % tolerance).

The paper's explanation of DUFP's extra savings: with uncore scaling
alone the cores sit at the 2.8 GHz all-core turbo almost the entire
run, while dynamic capping pulls the average core frequency down to
≈ 2.5 GHz with the slowdown still inside the tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.series import resample_series
from ..analysis.tables import format_table
from ..config import ControllerConfig, NoiseConfig
from ..core.registry import controller_factory
from ..sim.run import run_application
from ..workloads.catalog import build_application

__all__ = ["Fig5Result", "fig5"]


@dataclass
class Fig5Result:
    """Frequency traces and averages for the two controllers."""

    #: Resampled (time, frequency GHz) series per controller.
    duf_series: tuple[list[float], list[float]]
    dufp_series: tuple[list[float], list[float]]
    duf_avg_ghz: float
    dufp_avg_ghz: float

    def render(self) -> str:
        from ..analysis.plots import sparkline

        table = format_table(
            ["controller", "average core frequency (GHz)"],
            [("duf", self.duf_avg_ghz), ("dufp", self.dufp_avg_ghz)],
            title="Fig. 5: CPU frequency for CG at 10 % tolerated slowdown",
        )
        lines = [table, ""]
        for label, (times, freqs) in (
            ("duf ", self.duf_series),
            ("dufp", self.dufp_series),
        ):
            stride = max(len(freqs) // 100, 1)
            lines.append(
                f"{label} [1.0–2.8 GHz] {sparkline(freqs[::stride], lo=1.0, hi=2.8)}"
            )
        return "\n".join(lines)


def fig5(
    tolerance_pct: float = 10.0,
    app_name: str = "CG",
    sample_interval_s: float = 0.2,
    noise: NoiseConfig | None = None,
) -> Fig5Result:
    """Trace core-0 frequency for one DUF run and one DUFP run."""
    cfg = ControllerConfig(tolerated_slowdown=tolerance_pct / 100.0)
    noise = noise or NoiseConfig()
    series = {}
    averages = {}
    for label in ("duf", "dufp"):
        run = run_application(
            build_application(app_name),
            controller_factory(label, cfg),
            controller_cfg=cfg,
            noise=noise,
            seed=noise.seed,
            record_trace=True,
        )
        sock = run.socket(0)
        times = [s.time_s for s in sock.trace]
        freqs = [s.core_freq_hz / 1e9 for s in sock.trace]
        series[label] = resample_series(times, freqs, sample_interval_s)
        averages[label] = sock.average_core_freq_hz() / 1e9
    return Fig5Result(
        duf_series=series["duf"],
        dufp_series=series["dufp"],
        duf_avg_ghz=averages["duf"],
        dufp_avg_ghz=averages["dufp"],
    )
