"""Figure 4: DUFP impact on DRAM power consumption."""

from __future__ import annotations

from .fig3 import FigPanel, _panel
from .sweep import SweepResult, run_sweep

__all__ = ["fig4"]


def fig4(sweep: SweepResult | None = None, runs: int = 10) -> FigPanel:
    """DRAM power savings (% over the default run)."""
    sweep = sweep or run_sweep(runs=runs)
    return _panel(sweep, "4", "DRAM power savings (%)", "dram_savings_pct")
