"""Content-addressed on-disk cache for protocol results.

A protocol run is a pure function of its :class:`~repro.experiments.
executor.RunSpec` — the application, controller, every config dataclass
and the seeds.  The cache therefore keys each
:class:`~repro.experiments.protocol.ProtocolResult` by a SHA-256 digest
of the spec's canonical form (see :func:`repro.config.config_digest`)
plus the package version and a digest schema tag, so results are
invalidated automatically whenever any config field *or* the code
version changes.

Two on-disk formats coexist:

* **v2 (current)** — a log-structured store: values are
  zlib-compressed pickles appended to per-writer *segment* files under
  ``<root>/segments/``, indexed by an append-only JSONL *manifest*
  (``<root>/manifest.jsonl``) mapping each key to ``(segment, offset,
  length, crc32)``.  A warm replay of a 10k-cell sweep is one manifest
  read plus sequential blob reads from a handful of kept-open segment
  handles — no per-entry ``stat``/``open`` round-trips, and compressed
  entries are typically 5-20× smaller than the raw pickles.
* **v1 (legacy)** — one raw pickle per entry, laid out
  ``<root>/<k[:2]>/<k[2:]>.pkl``.  Entries written by earlier versions
  are read transparently (the *digest* schema did not change, so their
  keys are still reachable); new writes always use v2.

Crash consistency is ordering, not locking: a blob is fully appended
and flushed before its manifest line is written, so a torn blob is
invisible and a torn trailing manifest line is skipped on load.  Every
manifest record carries the blob's CRC-32; a corrupted or unreadable
entry (either format) is treated as a miss, dropped, and recomputed —
interrupting a sweep mid-write can never poison later runs.
"""

from __future__ import annotations

import json
import os
import pickle
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO

from ..errors import ExperimentError

__all__ = [
    "CACHE_SCHEMA",
    "DIGEST_SCHEMA",
    "CacheStats",
    "ResultCache",
]

#: On-disk storage format version: 1 = one raw pickle per entry,
#: 2 = zlib-compressed blobs in segment logs behind a manifest index.
CACHE_SCHEMA = 2

#: Content-address schema folded into every :func:`~repro.experiments.
#: executor.spec_key` digest.  Deliberately *separate* from
#: ``CACHE_SCHEMA``: the storage layout changing does not change what
#: a result is a function of, so v1 entries keep their historical
#: addresses and remain readable after the v2 migration.  Bump only
#: when the *meaning* of a cached payload changes.
DIGEST_SCHEMA = 1

#: zlib level for new entries: 6 is within a few percent of level 9's
#: ratio on pickled trace arrays at a fraction of the CPU.
_COMPRESS_LEVEL = 6

_MANIFEST_NAME = "manifest.jsonl"
_SEGMENT_DIR = "segments"


@dataclass
class CacheStats:
    """Counters for one cache's lifetime (drives the run summaries)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupted: int = 0
    #: Hits served from legacy v1 per-file entries (observability for
    #: the v2 migration: a warm cache that still shows legacy hits has
    #: not been rewritten yet).
    legacy_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


@dataclass
class ResultCache:
    """Content-addressed store mapping spec digests to pickled results."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise ExperimentError(
                f"cache path {self.root} exists and is not a directory"
            ) from exc
        self.stats = CacheStats()
        #: key -> (segment name, offset, length, crc32); loaded lazily.
        self._index: dict[str, tuple[str, int, int, int]] = {}
        #: Bytes of the manifest already folded into ``_index``.
        self._manifest_pos = 0
        self._segment_readers: dict[str, BinaryIO] = {}
        self._segment_writer: BinaryIO | None = None
        self._segment_name = ""
        self._segment_offset = 0
        self._manifest_writer: BinaryIO | None = None

    # -- paths ---------------------------------------------------------

    @property
    def _manifest_path(self) -> Path:
        return self.root / _MANIFEST_NAME

    @property
    def _segment_root(self) -> Path:
        return self.root / _SEGMENT_DIR

    @staticmethod
    def _check_key(key: str) -> None:
        if len(key) < 8 or not all(c in "0123456789abcdef" for c in key):
            raise ExperimentError(f"malformed cache key {key!r}")

    def _legacy_path(self, key: str) -> Path:
        """Where a v1 (one raw pickle per entry) record would live."""
        self._check_key(key)
        return self.root / key[:2] / f"{key[2:]}.pkl"

    # -- manifest index ------------------------------------------------

    def _refresh_index(self) -> None:
        """Fold any manifest lines appended since the last read.

        Incremental: only the tail past ``_manifest_pos`` is read, so a
        long-lived cache object costs one ``stat`` per refresh, not a
        re-parse.  A torn trailing line (no newline yet — a concurrent
        writer mid-append, or a crash) is left for the next refresh.
        """
        try:
            size = self._manifest_path.stat().st_size
        except FileNotFoundError:
            return
        if size <= self._manifest_pos:
            return
        with self._manifest_path.open("rb") as fh:
            fh.seek(self._manifest_pos)
            data = fh.read()
        end = data.rfind(b"\n")
        if end < 0:
            return
        for line in data[:end].split(b"\n"):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                entry = (
                    str(rec["s"]),
                    int(rec["o"]),
                    int(rec["l"]),
                    int(rec["c"]),
                )
                key = str(rec["k"])
            except (ValueError, KeyError, TypeError):
                # A corrupt line loses one entry (recomputed on miss),
                # never the whole index.
                self.stats.corrupted += 1
                continue
            self._index[key] = entry
        self._manifest_pos += end + 1

    def _read_blob(self, seg: str, off: int, length: int, crc: int):
        reader = self._segment_readers.get(seg)
        if reader is None:
            reader = (self._segment_root / seg).open("rb")
            self._segment_readers[seg] = reader
        reader.seek(off)
        blob = reader.read(length)
        if len(blob) != length or zlib.crc32(blob) != crc:
            raise ExperimentError(f"segment {seg} entry at {off} is torn")
        return pickle.loads(zlib.decompress(blob))

    # -- writers -------------------------------------------------------

    def _open_segment(self) -> None:
        """Create this writer's private segment file (exclusive name).

        One segment per cache instance keeps appends single-writer —
        concurrent sweeps sharing a root never interleave blobs — while
        the manifest absorbs all writers through atomic O_APPEND lines.
        """
        self._segment_root.mkdir(parents=True, exist_ok=True)
        for n in range(10_000):
            name = f"{os.getpid()}-{n:03d}.seg"
            try:
                fd = os.open(
                    self._segment_root / name,
                    os.O_WRONLY | os.O_CREAT | os.O_EXCL,
                    0o644,
                )
            except FileExistsError:
                continue
            self._segment_writer = os.fdopen(fd, "wb")
            self._segment_name = name
            self._segment_offset = 0
            return
        raise ExperimentError(
            f"could not allocate a cache segment under {self._segment_root}"
        )

    def _append_manifest(self, line: bytes) -> None:
        if self._manifest_writer is None:
            fd = os.open(
                self._manifest_path,
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
            self._manifest_writer = os.fdopen(fd, "wb")
        self._manifest_writer.write(line)
        self._manifest_writer.flush()

    # -- public API ----------------------------------------------------

    def get(self, key: str):
        """The cached value for ``key``, or ``None`` on miss/corruption."""
        self._check_key(key)
        if key not in self._index:
            self._refresh_index()
        entry = self._index.get(key)
        if entry is not None:
            try:
                value = self._read_blob(*entry)
            except Exception:
                # Torn blob, bad CRC, unpicklable garbage: forget the
                # record (a later put appends a superseding one) and
                # recompute rather than fail the sweep.
                del self._index[key]
                self.stats.corrupted += 1
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return value
        # Transparent fallback to a legacy v1 per-file entry.
        path = self._legacy_path(key)
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            self.stats.corrupted += 1
            self.stats.misses += 1
            path.unlink(missing_ok=True)
            return None
        self.stats.hits += 1
        self.stats.legacy_hits += 1
        return value

    def put(self, key: str, value) -> None:
        """Append ``value`` under ``key`` (blob first, then the index line)."""
        self._check_key(key)
        blob = zlib.compress(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
            _COMPRESS_LEVEL,
        )
        if self._segment_writer is None:
            self._open_segment()
        assert self._segment_writer is not None
        offset = self._segment_offset
        self._segment_writer.write(blob)
        self._segment_writer.flush()
        self._segment_offset += len(blob)
        rec = {
            "k": key,
            "s": self._segment_name,
            "o": offset,
            "l": len(blob),
            "c": zlib.crc32(blob),
        }
        line = json.dumps(rec, sort_keys=True, separators=(",", ":")) + "\n"
        self._append_manifest(line.encode("utf-8"))
        self._index[key] = (self._segment_name, offset, len(blob), rec["c"])
        self.stats.writes += 1

    def keys(self) -> set[str]:
        """Every reachable key: the manifest index plus legacy entries."""
        self._refresh_index()
        legacy = {
            p.parent.name + p.stem
            for p in self.root.glob("[0-9a-f][0-9a-f]/*.pkl")
        }
        return set(self._index) | legacy

    def close(self) -> None:
        """Release file handles (safe to call more than once)."""
        for fh in self._segment_readers.values():
            try:
                fh.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        self._segment_readers.clear()
        for attr in ("_segment_writer", "_manifest_writer"):
            fh = getattr(self, attr)
            if fh is not None:
                try:
                    fh.close()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
                setattr(self, attr, None)

    def __contains__(self, key: str) -> bool:
        self._check_key(key)
        if key not in self._index:
            self._refresh_index()
        return key in self._index or self._legacy_path(key).exists()

    def __len__(self) -> int:
        return len(self.keys())

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
