"""Content-addressed on-disk cache for protocol results.

A protocol run is a pure function of its :class:`~repro.experiments.
executor.RunSpec` — the application, controller, every config dataclass
and the seeds.  The cache therefore keys each
:class:`~repro.experiments.protocol.ProtocolResult` by a SHA-256 digest
of the spec's canonical form (see :func:`repro.config.config_digest`)
plus the package version and an on-disk schema tag, so results are
invalidated automatically whenever any config field *or* the code
version changes.

Entries are pickles written atomically (temp file + rename), laid out
``<root>/<k[:2]>/<k[2:]>.pkl`` to keep directories small.  A corrupted
or unreadable entry is treated as a miss, deleted, and recomputed —
interrupting a sweep mid-write can never poison later runs.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ExperimentError

__all__ = ["CACHE_SCHEMA", "CacheStats", "ResultCache"]

#: Bump when the pickled payload layout changes; part of every key.
CACHE_SCHEMA = 1


@dataclass
class CacheStats:
    """Counters for one cache's lifetime (drives the run summaries)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupted: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


@dataclass
class ResultCache:
    """Content-addressed store mapping spec digests to pickled results."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise ExperimentError(
                f"cache path {self.root} exists and is not a directory"
            ) from exc
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        if len(key) < 8 or not all(c in "0123456789abcdef" for c in key):
            raise ExperimentError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key[2:]}.pkl"

    def get(self, key: str):
        """The cached value for ``key``, or ``None`` on miss/corruption."""
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            # Truncated write, stale schema, unpicklable garbage: drop
            # the entry and recompute rather than fail the sweep.
            self.stats.corrupted += 1
            self.stats.misses += 1
            path.unlink(missing_ok=True)
            return None
        self.stats.hits += 1
        return value

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key`` atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as fh:
            pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self.stats.writes += 1

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))
