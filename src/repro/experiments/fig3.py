"""Figure 3: DUF/DUFP impact on performance, power and energy.

Three panels over the same evaluation sweep (10 applications × DUF/DUFP
× tolerated slowdowns {0, 5, 10, 20} %):

* **3a** — execution-time slowdown (% over the default run);
* **3b** — processor power savings (%);
* **3c** — processor + DRAM energy savings (%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.stats import ErrorBar
from ..analysis.tables import format_table
from .sweep import SweepResult, run_sweep

__all__ = ["FigPanel", "fig3a", "fig3b", "fig3c"]


@dataclass
class FigPanel:
    """One panel: metric values per (app, controller, tolerance)."""

    figure: str
    metric: str
    #: (app, controller, tolerance_pct) -> ErrorBar of the metric (%).
    values: dict[tuple[str, str, float], ErrorBar] = field(default_factory=dict)
    tolerances_pct: tuple[float, ...] = ()
    apps: tuple[str, ...] = ()

    def get(self, app: str, controller: str, tolerance_pct: float) -> ErrorBar:
        return self.values[(app.upper(), controller, float(tolerance_pct))]

    def render(self) -> str:
        headers = ["app", "ctrl"] + [f"{t:.0f}%" for t in self.tolerances_pct]
        rows = []
        for app in self.apps:
            for ctrl in ("duf", "dufp"):
                row: list[object] = [app, ctrl]
                for tol in self.tolerances_pct:
                    bar = self.get(app, ctrl, tol)
                    row.append(f"{bar.mean:+.2f} [{bar.low:+.2f},{bar.high:+.2f}]")
                rows.append(row)
        return format_table(
            headers, rows, title=f"Fig. {self.figure}: {self.metric}"
        )

    def render_bars(self, controller: str = "dufp", width: int = 30) -> str:
        """The paper's visual form: per-app clusters, one bar per tolerance."""
        from ..analysis.plots import grouped_bar_chart

        series = {
            f"{controller} @{tol:.0f}%": {
                app: self.get(app, controller, tol).mean for app in self.apps
            }
            for tol in self.tolerances_pct
        }
        return grouped_bar_chart(
            list(self.apps),
            series,
            width=width,
            title=f"Fig. {self.figure}: {self.metric} ({controller})",
        )


def _panel(sweep: SweepResult, figure: str, metric: str, attr: str) -> FigPanel:
    panel = FigPanel(
        figure=figure,
        metric=metric,
        tolerances_pct=sweep.tolerances_pct,
        apps=sweep.apps,
    )
    for key, cmp_ in sweep.comparisons.items():
        panel.values[key] = getattr(cmp_, attr)
    return panel


def fig3a(sweep: SweepResult | None = None, runs: int = 10) -> FigPanel:
    """Slowdown (% over default execution time)."""
    sweep = sweep or run_sweep(runs=runs)
    return _panel(sweep, "3a", "slowdown (% of default time)", "slowdown_pct")


def fig3b(sweep: SweepResult | None = None, runs: int = 10) -> FigPanel:
    """Processor power savings (%)."""
    sweep = sweep or run_sweep(runs=runs)
    return _panel(
        sweep, "3b", "processor power savings (%)", "package_savings_pct"
    )


def fig3c(sweep: SweepResult | None = None, runs: int = 10) -> FigPanel:
    """Processor + DRAM energy savings (%)."""
    sweep = sweep or run_sweep(runs=runs)
    return _panel(
        sweep, "3c", "CPU+DRAM energy savings (%)", "energy_savings_pct"
    )
