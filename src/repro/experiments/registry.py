"""Experiment registry: id → harness, shared by the CLI and benches.

Every runner accepts ``workers``/``cache`` and routes any sweep it
needs through :mod:`repro.experiments.executor`, so ``python -m repro
fig3a --workers 8 --cache DIR`` parallelises and memoises exactly like
``repro sweep`` does.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ExperimentError
from .fig1 import fig1a, fig1b, fig1c
from .fig3 import fig3a, fig3b, fig3c
from .fig4 import fig4
from .fig5 import fig5
from .scorecard import run_scorecard
from .sensitivity import run_sensitivity
from .sweep import run_sweep
from .table1 import table1

__all__ = ["EXPERIMENTS", "experiment_ids", "run_experiment"]


def _render_table1(**kwargs) -> str:
    return table1().render()


def _render_fig1(fn) -> Callable[..., str]:
    def runner(runs: int = 10, **kwargs) -> str:
        return fn(runs=runs).render()

    return runner


def _render_fig3(fn) -> Callable[..., str]:
    def runner(
        runs: int = 10,
        sweep=None,
        workers: int = 1,
        cache=None,
        shard_size=None,
        **kwargs,
    ) -> str:
        sweep = sweep or run_sweep(
            runs=runs, workers=workers, cache=cache, shard_size=shard_size
        )
        return fn(sweep=sweep).render()

    return runner


def _render_fig5(**kwargs) -> str:
    return fig5().render()


def _render_all(
    runs: int = 10, workers: int = 1, cache=None, shard_size=None, **kwargs
) -> str:
    """Every table and figure, sharing one evaluation sweep."""
    sweep = run_sweep(
        runs=runs, workers=workers, cache=cache, shard_size=shard_size
    )
    parts = [
        table1().render(),
        fig1a(runs=runs).render(),
        fig1b(runs=runs).render(),
        fig1c(runs=runs).render(),
        fig3a(sweep=sweep).render(),
        fig3b(sweep=sweep).render(),
        fig3c(sweep=sweep).render(),
        fig4(sweep=sweep).render(),
        fig5().render(),
    ]
    if sweep.execution is not None:
        parts.append(sweep.execution.render())
    return "\n\n".join(parts)


def _render_scorecard(
    runs: int = 10,
    sweep=None,
    workers: int = 1,
    cache=None,
    shard_size=None,
    **kwargs,
) -> str:
    sweep = sweep or run_sweep(
        runs=runs, workers=workers, cache=cache, shard_size=shard_size
    )
    return run_scorecard(sweep=sweep, runs=runs).render()


def _render_sensitivity(
    workers: int = 1, cache=None, shard_size=None, **kwargs
) -> str:
    return run_sensitivity(
        workers=workers, cache=cache, shard_size=shard_size
    ).render()


def _render_sweep(
    runs: int = 10, workers: int = 1, cache=None, shard_size=None, **kwargs
) -> str:
    sweep = run_sweep(
        runs=runs, workers=workers, cache=cache, shard_size=shard_size
    )
    parts = [sweep.render()]
    within, total = sweep.respected_count("dufp")
    parts.append(f"dufp tolerance respected in {within}/{total} configurations")
    if sweep.execution is not None:
        parts.append(sweep.execution.render())
    return "\n".join(parts)


EXPERIMENTS: dict[str, Callable[..., str]] = {
    "table1": _render_table1,
    "scorecard": _render_scorecard,
    "sensitivity": _render_sensitivity,
    "sweep": _render_sweep,
    "fig1a": _render_fig1(fig1a),
    "fig1b": _render_fig1(fig1b),
    "fig1c": _render_fig1(fig1c),
    "fig3a": _render_fig3(fig3a),
    "fig3b": _render_fig3(fig3b),
    "fig3c": _render_fig3(fig3c),
    "fig4": _render_fig3(fig4),
    "fig5": _render_fig5,
    "all": _render_all,
}


def experiment_ids() -> tuple[str, ...]:
    """Every runnable experiment id, CLI order."""
    return tuple(EXPERIMENTS)


def run_experiment(experiment_id: str, **kwargs) -> str:
    """Run one experiment by id and return its rendered report."""
    runner = EXPERIMENTS.get(experiment_id)
    if runner is None:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(EXPERIMENTS)}"
        )
    return runner(**kwargs)
