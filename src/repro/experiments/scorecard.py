"""The reproduction scorecard: paper claims, checked programmatically.

Encodes the paper's headline claims (Sections II-A and V) as data and
evaluates them against a measured sweep + figure harnesses, producing
a pass/fail table with the measured values.  This is the library-level
version of what ``benchmarks/`` asserts — runnable on demand
(``python -m repro scorecard``) and reusable after any recalibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ..analysis.tables import format_table
from .fig1 import fig1c
from .fig5 import fig5
from .sweep import SweepResult, run_sweep

__all__ = ["ClaimResult", "Scorecard", "run_scorecard"]


@dataclass(frozen=True)
class ClaimResult:
    """One paper claim and its measured verdict."""

    claim_id: str
    paper: str
    measured: str
    passed: bool


@dataclass
class Scorecard:
    """All claim verdicts of one scorecard run."""

    claims: list[ClaimResult] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(c.passed for c in self.claims)

    @property
    def total(self) -> int:
        return len(self.claims)

    def claim(self, claim_id: str) -> ClaimResult:
        for c in self.claims:
            if c.claim_id == claim_id:
                return c
        raise KeyError(claim_id)

    def render(self) -> str:
        rows = [
            (c.claim_id, c.paper, c.measured, "PASS" if c.passed else "FAIL")
            for c in self.claims
        ]
        table = format_table(
            ["claim", "paper", "measured", "verdict"],
            rows,
            title="Reproduction scorecard",
        )
        return f"{table}\n\n{self.passed}/{self.total} claims hold"


def _sweep_claims(sweep: SweepResult) -> list[ClaimResult]:
    claims: list[ClaimResult] = []

    def add(claim_id: str, paper: str, measured: str, passed: bool) -> None:
        claims.append(ClaimResult(claim_id, paper, measured, passed))

    # V-A: tolerance respected for most configurations.
    within, total = sweep.respected_count("dufp", slack=0.5)
    add(
        "3a.respected",
        "34/40 configurations",
        f"{within}/{total}",
        within >= 30,
    )

    # V-A: the known violators stay small.
    worst_miss = max(
        sweep.get(app, "dufp", tol).slowdown_pct.mean - tol
        for app in sweep.apps
        for tol in sweep.tolerances_pct
    )
    add(
        "3a.small-misses",
        "max +3.17 over tolerance",
        f"max {worst_miss:+.2f}",
        worst_miss < 4.0,
    )

    # V-B: DUFP reduces the power consumption of all applications.
    min_saving = min(
        sweep.get(app, "dufp", 10.0).package_savings_pct.mean for app in sweep.apps
    )
    add(
        "3b.all-apps-save",
        "savings on all applications",
        f"min {min_saving:+.2f} % @10 %",
        min_saving > 0.0,
    )

    # V-B: EP posts heavy, uncore-dominated savings.
    ep_dufp = max(
        sweep.get("EP", "dufp", t).package_savings_pct.mean
        for t in sweep.tolerances_pct
    )
    ep_duf = max(
        sweep.get("EP", "duf", t).package_savings_pct.mean
        for t in sweep.tolerances_pct
    )
    add(
        "3b.ep-heavy",
        "EP best: 24.27 %, uncore-dominated",
        f"DUFP {ep_dufp:.2f} %, DUF alone {ep_duf:.2f} %",
        ep_dufp > 12.0 and ep_duf > 0.6 * ep_dufp,
    )

    # V-B: capping adds savings over DUF, biggest gap on CG @ 20.
    cg_gap = (
        sweep.get("CG", "dufp", 20.0).package_savings_pct.mean
        - sweep.get("CG", "duf", 20.0).package_savings_pct.mean
    )
    add(
        "3b.cg20-gap",
        "DUFP +7.90 over DUF",
        f"{cg_gap:+.2f}",
        cg_gap > 4.0,
    )

    # V-B: DUFP saves where DUF could not (BT).
    bt_duf = sweep.get("BT", "duf", 20.0).package_savings_pct.mean
    bt_dufp = sweep.get("BT", "dufp", 20.0).package_savings_pct.mean
    add(
        "3b.bt-rescued",
        "BT@20: DUF 0.64 vs DUFP 5.14",
        f"DUF {bt_duf:.2f} vs DUFP {bt_dufp:.2f}",
        bt_dufp > bt_duf + 2.0,
    )

    # V-F: CPU-intensive applications stay below ~7 % (DUF).
    hpl = max(
        sweep.get("HPL", "duf", t).package_savings_pct.mean
        for t in sweep.tolerances_pct
    )
    add(
        "3b.hpl-modest",
        "HPL < 7 %",
        f"{hpl:.2f} % (DUF)",
        hpl < 8.0,
    )

    # V-D: no energy loss at <= 10 % tolerance for most applications.
    losses = [
        (app, tol)
        for app in sweep.apps
        for tol in (0.0, 5.0, 10.0)
        if sweep.get(app, "dufp", tol).energy_savings_pct.mean < -1.0
    ]
    add(
        "3c.no-loss-le10",
        "no loss for most apps",
        f"{len(losses)} losing configs",
        len(losses) <= 3,
    )

    # V-D: CG @ 10 saves power and energy.
    cg10_e = sweep.get("CG", "dufp", 10.0).energy_savings_pct.mean
    cg10_p = sweep.get("CG", "dufp", 10.0).package_savings_pct.mean
    add(
        "3c.cg10-both",
        "13.98 % power, 4.7 % energy",
        f"{cg10_p:.2f} % power, {cg10_e:.2f} % energy",
        cg10_p > 8.0 and cg10_e > 1.0,
    )

    # Fig 4: DRAM savings for most configurations, best on CG @ 20.
    cg20_dram = sweep.get("CG", "dufp", 20.0).dram_savings_pct.mean
    add(
        "4.cg20-dram",
        "best 8.83 % (CG @ 20)",
        f"{cg20_dram:.2f} %",
        cg20_dram > 4.0,
    )
    return claims


def run_scorecard(
    sweep: SweepResult | None = None,
    runs: int = 10,
    include_figures: bool = True,
) -> Scorecard:
    """Evaluate every encoded claim; heavier with ``include_figures``."""
    sweep = sweep or run_sweep(runs=runs)
    card = Scorecard(claims=_sweep_claims(sweep))

    if include_figures:
        f5 = fig5()
        card.claims.append(
            ClaimResult(
                "5.freq-drop",
                "DUF 2.8 GHz vs DUFP 2.5 GHz",
                f"DUF {f5.duf_avg_ghz:.2f} vs DUFP {f5.dufp_avg_ghz:.2f}",
                f5.duf_avg_ghz > 2.75 and 2.2 < f5.dufp_avg_ghz < 2.7,
            )
        )
        f1c = fig1c(runs=max(2, runs // 2))
        worst_dt = max(
            abs(f1c.row(label).time_pct_of_default - 100.0)
            for label in ("ufs+110W", "ufs+100W")
        )
        card.claims.append(
            ClaimResult(
                "1c.free-capping",
                "no total-time impact",
                f"max {worst_dt:.2f} % deviation",
                worst_dt < 1.0,
            )
        )
    return card
