"""Sensitivity analysis: how calibration constants move the headlines.

The substrate's power/performance constants (DESIGN.md §5, SUBSTRATE.md)
are calibrated to the paper's anchors.  This harness perturbs one
constant at a time (×0.8 / ×1.2 by default) and re-measures a compact
probe — CG and EP under DUFP at 10 % tolerance — reporting how the
headline metrics shift.  A reproduction whose conclusions survive ±20 %
on every knob is trusting shapes, not lucky constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from ..analysis.tables import format_table
from ..config import (
    ControllerConfig,
    NoiseConfig,
    SocketConfig,
    yeti_socket_config,
)
from ..core.registry import as_spec
from ..errors import ExperimentError
from .cache import ResultCache
from .executor import RunSpec, run_specs

__all__ = ["SensitivityPoint", "SensitivityResult", "run_sensitivity", "PARAMETERS"]

#: name -> function producing a SocketConfig with the parameter scaled.
PARAMETERS: dict[str, Callable[[SocketConfig, float], SocketConfig]] = {
    "k_core": lambda s, f: replace(
        s, power=replace(s.power, k_core=s.power.k_core * f)
    ),
    "k_uncore": lambda s, f: replace(
        s, power=replace(s.power, k_uncore=s.power.k_uncore * f)
    ),
    "static_w": lambda s, f: replace(
        s, power=replace(s.power, static_w=s.power.static_w * f)
    ),
    "uncore_idle_fraction": lambda s, f: replace(
        s,
        power=replace(
            s.power, uncore_idle_fraction=min(s.power.uncore_idle_fraction * f, 1.0)
        ),
    ),
    "core_idle_fraction": lambda s, f: replace(
        s,
        power=replace(
            s.power, core_idle_fraction=min(s.power.core_idle_fraction * f, 1.0)
        ),
    ),
    "bw_per_uncore_hz": lambda s, f: replace(
        s, memory=replace(s.memory, bw_per_uncore_hz=s.memory.bw_per_uncore_hz * f)
    ),
    "dram_static_w": lambda s, f: replace(
        s, memory=replace(s.memory, dram_static_w=s.memory.dram_static_w * f)
    ),
}


@dataclass(frozen=True)
class SensitivityPoint:
    """The probe metrics at one (parameter, factor) setting."""

    parameter: str
    factor: float
    cg_slowdown_pct: float
    cg_savings_pct: float
    ep_savings_pct: float

    @property
    def holds(self) -> bool:
        """Do the headline shapes survive at this setting?

        CG respects ~10 % tolerance, both apps still save power.
        """
        return (
            self.cg_slowdown_pct < 13.0
            and self.cg_savings_pct > 3.0
            and self.ep_savings_pct > 5.0
        )


@dataclass
class SensitivityResult:
    """Baseline plus every perturbed probe point."""

    baseline: SensitivityPoint = None  # type: ignore[assignment]
    points: list[SensitivityPoint] = field(default_factory=list)

    def for_parameter(self, parameter: str) -> list[SensitivityPoint]:
        pts = [p for p in self.points if p.parameter == parameter]
        if not pts:
            raise ExperimentError(f"no sensitivity points for {parameter!r}")
        return pts

    @property
    def all_hold(self) -> bool:
        return all(p.holds for p in self.points) and self.baseline.holds

    def render(self) -> str:
        rows = [
            (
                p.parameter,
                f"x{p.factor:.2f}",
                p.cg_slowdown_pct,
                p.cg_savings_pct,
                p.ep_savings_pct,
                "ok" if p.holds else "BROKEN",
            )
            for p in [self.baseline] + self.points
        ]
        return format_table(
            [
                "parameter",
                "factor",
                "CG slow %",
                "CG save %",
                "EP save %",
                "shape",
            ],
            rows,
            title="Calibration sensitivity (DUFP @ 10 % on CG and EP)",
        )


def _probe_specs(
    socket: SocketConfig, noise: NoiseConfig, seed: int, tag: str
) -> list[RunSpec]:
    """Four single-run specs (CG/EP × default/DUFP) at one socket config.

    ``base_seed`` compensates ``run_protocol``'s ``noise.seed`` offset
    so the single run executes at exactly the absolute ``seed`` the
    probe has always used.
    """
    cfg = ControllerConfig(tolerated_slowdown=0.10)
    return [
        RunSpec(
            app_name=app_name,
            controller=ctrl,
            controller_cfg=cfg,
            runs=1,
            base_seed=seed - noise.seed,
            noise=noise,
            socket=socket,
            label=f"{tag}:{app_name}/{ctrl.label}",
        )
        for app_name in ("CG", "EP")
        for ctrl in (as_spec("default"), as_spec("dufp"))
    ]


def _probe_point(results) -> tuple[float, float, float]:
    """(CG slowdown %, CG savings %, EP savings %) from four results."""
    cg_default, cg_dufp, ep_default, ep_dufp = results
    return (
        100.0 * (cg_dufp.mean_time_s / cg_default.mean_time_s - 1.0),
        100.0
        * (1.0 - cg_dufp.mean_package_power_w / cg_default.mean_package_power_w),
        100.0
        * (1.0 - ep_dufp.mean_package_power_w / ep_default.mean_package_power_w),
    )


def run_sensitivity(
    parameters: list[str] | None = None,
    factors: tuple[float, ...] = (0.8, 1.2),
    noise: NoiseConfig | None = None,
    seed: int = 77,
    workers: int = 1,
    cache: ResultCache | str | None = None,
    shard_size: int | None = None,
) -> SensitivityResult:
    """Perturb each parameter and re-measure the probe.

    All probes across all parameters and factors are independent, so
    the whole analysis fans out over ``workers`` processes — sharded
    and cache-written-through exactly like the evaluation sweep
    (``shard_size`` caps cells per shard) — and reuses ``cache`` the
    same way.
    """
    names = parameters or list(PARAMETERS)
    for name in names:
        if name not in PARAMETERS:
            raise ExperimentError(
                f"unknown parameter {name!r}; available: {', '.join(PARAMETERS)}"
            )
    noise = noise or NoiseConfig(
        duration_jitter=0.001, counter_noise=0.001, power_noise=0.001
    )
    base_socket = yeti_socket_config()
    grid: list[tuple[str, float]] = [("baseline", 1.0)]
    grid += [(name, factor) for name in names for factor in factors]

    specs: list[RunSpec] = []
    for name, factor in grid:
        socket = (
            base_socket
            if name == "baseline"
            else PARAMETERS[name](base_socket, factor)
        )
        socket.validate()
        specs.extend(_probe_specs(socket, noise, seed, f"{name}x{factor:.2f}"))

    results, _summary = run_specs(
        specs, workers=workers, cache=cache, shard_size=shard_size
    )
    points = [
        SensitivityPoint(name, factor, *_probe_point(results[4 * i : 4 * i + 4]))
        for i, (name, factor) in enumerate(grid)
    ]
    return SensitivityResult(baseline=points[0], points=points[1:])
