"""Experiment harnesses: one module per table/figure of the paper.

Every harness follows the paper's protocol (Section V): 10 runs per
configuration, drop the fastest and slowest, average the remaining 8,
report percentages over the application's default-configuration values
with min/max error bars.

The registry maps experiment ids (``table1``, ``fig1a`` … ``fig5``) to
runnable harnesses; ``python -m repro <id>`` regenerates any of them.

Independent protocol runs execute through :mod:`repro.experiments.
executor` — a process-pool fan-out with deterministic per-cell seeds —
over the content-addressed result cache in :mod:`repro.experiments.
cache`; ``--workers``/``--cache`` on any experiment reach them.
"""

from .protocol import ProtocolResult, Comparison, run_protocol, compare
from .executor import (
    RunSpec,
    CellReport,
    ShardReport,
    ExecutionSummary,
    cell_seed,
    spec_key,
    execute_spec,
    estimate_spec_ticks,
    plan_shards,
    run_specs,
)
from .cache import ResultCache, CacheStats
from .sweep import SweepResult, run_sweep, sweep_specs, SWEEP_TOLERANCES_PCT
from .table1 import table1
from .fig1 import fig1a, fig1b, fig1c
from .fig3 import fig3a, fig3b, fig3c
from .fig4 import fig4
from .fig5 import fig5
from .scorecard import Scorecard, ClaimResult, run_scorecard
from .registry import EXPERIMENTS, run_experiment, experiment_ids

__all__ = [
    "ProtocolResult",
    "Comparison",
    "run_protocol",
    "compare",
    "RunSpec",
    "CellReport",
    "ShardReport",
    "ExecutionSummary",
    "cell_seed",
    "spec_key",
    "execute_spec",
    "estimate_spec_ticks",
    "plan_shards",
    "run_specs",
    "ResultCache",
    "CacheStats",
    "SweepResult",
    "run_sweep",
    "sweep_specs",
    "SWEEP_TOLERANCES_PCT",
    "table1",
    "fig1a",
    "fig1b",
    "fig1c",
    "fig3a",
    "fig3b",
    "fig3c",
    "fig4",
    "fig5",
    "Scorecard",
    "ClaimResult",
    "run_scorecard",
    "EXPERIMENTS",
    "run_experiment",
    "experiment_ids",
]
