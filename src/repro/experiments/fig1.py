"""Figure 1: the motivating experiment — power capping CG.

Three views, all on CG (Section II-A):

* **Fig. 1a** — whole-run static caps.  Configurations: the default
  uncore pinned at its maximum ("default"), the stock uncore frequency
  scaling ("ufs"), and UFS combined with 110 W and 100 W whole-run
  caps.  Execution time is a percentage of the default run; power is a
  percentage of the socket's default power *budget* (125 W), the
  paper's choice of denominator.
* **Fig. 1b** — the same caps applied only during CG's initial
  memory-access phase; the reported power is the average over that
  phase alone.
* **Fig. 1c** — the total execution time under those phase-local caps,
  showing the capping of the memory phase is performance-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.tables import format_table
from ..config import ControllerConfig, NoiseConfig
from ..core.registry import make_spec
from ..errors import ExperimentError
from ..sim.run import run_application
from ..workloads.catalog import build_application
from .protocol import run_protocol

__all__ = ["Fig1Row", "Fig1Result", "fig1a", "fig1b", "fig1c"]

#: The two static caps the paper studies, watts.
FIG1_CAPS_W = (110.0, 100.0)


@dataclass(frozen=True)
class Fig1Row:
    """One configuration of a Fig. 1 panel."""

    label: str
    time_pct_of_default: float
    power_pct_of_budget: float


@dataclass
class Fig1Result:
    """One panel of Fig. 1 (rows per configuration)."""

    panel: str
    rows: list[Fig1Row] = field(default_factory=list)

    def row(self, label: str) -> Fig1Row:
        for r in self.rows:
            if r.label == label:
                return r
        raise ExperimentError(f"fig1 panel {self.panel} has no row {label!r}")

    def render(self) -> str:
        return format_table(
            ["configuration", "time (% of default)", "power (% of budget)"],
            [(r.label, r.time_pct_of_default, r.power_pct_of_budget) for r in self.rows],
            title=f"Fig. 1{self.panel}: CG under power capping",
        )


def _cg_protocol(policy, cfg, runs, noise):
    """Run the measurement protocol for CG under a registry policy."""
    return run_protocol(
        build_application("CG"),
        policy,
        controller_cfg=cfg,
        runs=runs,
        noise=noise,
    )


def fig1a(runs: int = 10, noise: NoiseConfig | None = None) -> Fig1Result:
    """Whole-run static capping of CG."""
    cfg = ControllerConfig()
    noise = noise or NoiseConfig()
    budget = 125.0

    default = _cg_protocol(make_spec("uncore", freq_ghz=2.4), cfg, runs, noise)
    configs = [("ufs", make_spec("default"))]
    for cap in FIG1_CAPS_W:
        configs.append((f"ufs+{cap:.0f}W", make_spec("static", cap_w=cap)))

    result = Fig1Result(panel="a")
    result.rows.append(
        Fig1Row(
            "default",
            100.0,
            100.0 * default.mean_package_power_w / budget,
        )
    )
    for label, policy in configs:
        res = _cg_protocol(policy, cfg, runs, noise)
        result.rows.append(
            Fig1Row(
                label,
                100.0 * res.mean_time_s / default.mean_time_s,
                100.0 * res.mean_package_power_w / budget,
            )
        )
    return result


def _setup_window(noise: NoiseConfig) -> tuple[float, float]:
    """The time window of CG's initial memory phase in a default run."""
    run = run_application(
        build_application("CG"),
        make_spec("default").build(ControllerConfig()),
        noise=noise,
        seed=noise.seed,
        record_trace=True,
    )
    span = run.socket(0).phase_span("cg.setup")
    return span.start_s, span.end_s


def _fig1_windowed(panel: str, runs: int, noise: NoiseConfig | None) -> Fig1Result:
    cfg = ControllerConfig()
    noise = noise or NoiseConfig()
    budget = 125.0
    start_s, end_s = _setup_window(noise)
    # Generous margin: jittered runs shift the boundary slightly.
    window_end = end_s * 1.02

    def window_power(protocol) -> float:
        run = protocol.last_run
        pkg_j, _ = run.socket(0).window_energy_j(start_s, min(window_end, end_s))
        return pkg_j / (min(window_end, end_s) - start_s)

    default = run_protocol(
        build_application("CG"),
        make_spec("uncore", freq_ghz=2.4),
        controller_cfg=cfg,
        runs=runs,
        noise=noise,
        record_trace=True,
    )
    result = Fig1Result(panel=panel)
    result.rows.append(
        Fig1Row("default", 100.0, 100.0 * window_power(default) / budget)
    )
    configs = [("ufs", make_spec("default"))]
    for cap in FIG1_CAPS_W:
        configs.append(
            (
                f"ufs+{cap:.0f}W",
                make_spec("window", cap_w=cap, start_s=0.0, end_s=window_end),
            )
        )
    for label, policy in configs:
        res = run_protocol(
            build_application("CG"),
            policy,
            controller_cfg=cfg,
            runs=runs,
            noise=noise,
            record_trace=True,
        )
        result.rows.append(
            Fig1Row(
                label,
                100.0 * res.mean_time_s / default.mean_time_s,
                100.0 * window_power(res) / budget,
            )
        )
    return result


def fig1b(runs: int = 10, noise: NoiseConfig | None = None) -> Fig1Result:
    """Power of CG's first phase under phase-local caps."""
    return _fig1_windowed("b", runs, noise)


def fig1c(runs: int = 10, noise: NoiseConfig | None = None) -> Fig1Result:
    """Total execution time under the phase-local caps."""
    return _fig1_windowed("c", runs, noise)
