"""Parallel experiment execution with content-addressed caching.

Every independent protocol run — one ``(application, policy, config)``
cell of a sweep, one sensitivity probe — is described by a
:class:`RunSpec`: a frozen, picklable value object carrying everything
the run depends on, including the full
:class:`~repro.core.registry.PolicySpec` (policy id *and* parameters),
so any registered policy is runnable and cacheable.  :func:`run_specs`
fans a batch of specs out over a
:class:`concurrent.futures.ProcessPoolExecutor` (``workers=1`` keeps
the classic in-process serial path) and consults an optional
:class:`~repro.experiments.cache.ResultCache` first, so warm reruns
execute nothing at all.

Multi-worker execution is **batch-sharded**: pending cells are
bin-packed into per-worker shards by estimated simulated-tick count
(:func:`plan_shards`), each shard runs its batch-engined cells as
*one* vectorized lockstep batch inside its worker process, and shards
dispatch dynamically — a worker that drains its shard steals the next
queued one, so stragglers are absorbed by the ~3× over-decomposition
instead of defining the critical path.  Completed shards write through
to the cache immediately, so an interrupted multi-worker sweep keeps
every finished cell.

Determinism: a spec fully determines its seeds (``noise.seed + 1009·r
+ base_seed``), and :func:`cell_seed` derives ``base_seed`` from the
cell's *identity* rather than its position in the submission order.
Serial, parallel and sharded executions of the same grid are therefore
bit-identical — at any worker count, shard size or shard permutation —
and so are cold and warm (cached) reruns.
"""

from __future__ import annotations

import heapq
import os
import time
import zlib
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Iterator, Sequence

from ..analysis.tables import format_table
from ..config import (
    ControllerConfig,
    EngineConfig,
    NoiseConfig,
    SocketConfig,
    config_digest,
)
from ..cluster.spec import ClusterSpec
from ..core.registry import PolicySpec, as_spec, policy_info, policy_names
from ..errors import ExperimentError
from ..hardware.gpu import GPUNodeConfig
from ..sim.faults import FaultPlan
from ..units import smooth_max
from .cache import DIGEST_SCHEMA, ResultCache
from .protocol import ProtocolResult, run_protocol

__all__ = [
    "RunSpec",
    "CellReport",
    "ShardReport",
    "ExecutionSummary",
    "cell_seed",
    "spec_key",
    "execute_spec",
    "build_spec_protocol",
    "estimate_spec_ticks",
    "plan_shards",
    "run_specs",
]

#: Shards the planner cuts per worker.  Over-decomposition is what
#: makes dynamic dispatch a work-stealing scheduler: a worker that
#: finishes early steals queued shards, so one slow shard costs at
#: most ~1/OVERSUBSCRIPTION of the ideal per-worker load, not the
#: whole tail.  Larger values improve balance but shrink the lockstep
#: batches each shard runs; 3 is a good tradeoff at sweep scale.
SHARD_OVERSUBSCRIPTION = 3

#: Planner fallback when an application cannot be sized ahead of time
#: (the estimate only steers bin-packing; results never depend on it).
_FALLBACK_SIM_S = 60.0


@dataclass(frozen=True)
class RunSpec:
    """One protocol run, fully described by picklable values.

    Controllers are selected by :class:`~repro.core.registry.
    PolicySpec` (a policy id string coerces at construction), so a
    spec can cross a process boundary and be hashed for the result
    cache — policy *parameters* are part of the content address, so a
    parameter change invalidates cached results exactly like any other
    config change.  ``label`` is display-only and excluded from the
    cache key.
    """

    app_name: str
    controller: PolicySpec | str
    controller_cfg: ControllerConfig = field(default_factory=ControllerConfig)
    runs: int = 10
    base_seed: int = 0
    app_scale: float = 1.0
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    engine_cfg: EngineConfig = field(default_factory=EngineConfig)
    socket: SocketConfig | None = None
    socket_count: int = 1
    record_trace: bool = False
    #: Optional fault plan applied to every run of the cell.  Part of
    #: the content address — any fault parameter change invalidates
    #: cached results — but omitted from the digest while ``None``
    #: (``digest_omit_default``), so fault-free specs keep the exact
    #: digests they had before fault injection existed.
    faults: FaultPlan | None = field(
        default=None, metadata={"digest_omit_default": True}
    )
    #: Execution strategy: ``"scalar"`` (per-tick loop) or ``"batch"``
    #: (vectorized lockstep, :mod:`repro.sim.batch`).  The two produce
    #: numerically identical results — the differential test suite
    #: enforces it — so the engine is *not* part of the content
    #: address: :func:`spec_key` normalises it away and batch results
    #: share cache entries with scalar ones.
    engine: str = field(default="scalar", metadata={"digest_omit_default": True})
    #: GPU side of a heterogeneous node.  ``None`` (the default) keeps
    #: the spec CPU-only; a :class:`~repro.hardware.gpu.GPUNodeConfig`
    #: turns the cell into a CPU+GPU co-simulation whose ``controller``
    #: must be a registered hetero budget-split policy.  Omitted from
    #: the digest while ``None`` (``digest_omit_default``), so every
    #: pre-existing CPU-only spec keeps its exact cache address.
    gpu: GPUNodeConfig | None = field(
        default=None, metadata={"digest_omit_default": True}
    )
    #: Node topology of a cluster cell.  ``None`` (the default) keeps
    #: the spec single-node; a :class:`~repro.cluster.spec.ClusterSpec`
    #: turns the cell into a fleet-coordinated multi-node simulation
    #: whose ``controller`` must be a registered fleet partitioning
    #: policy.  Omitted from the digest while ``None``
    #: (``digest_omit_default``), so every pre-existing spec keeps its
    #: exact cache address.
    cluster: ClusterSpec | None = field(
        default=None, metadata={"digest_omit_default": True}
    )
    label: str = ""

    def __post_init__(self) -> None:
        # Coerce policy-id strings (including "name:key=val,...") to a
        # registry spec; unknown names fail fast, at submission time.
        object.__setattr__(self, "controller", as_spec(self.controller))
        # An all-zero plan is contractually identical to no plan;
        # normalise here so the two also share one digest.
        if self.faults is not None and not self.faults.active:
            object.__setattr__(self, "faults", None)
        # Hetero and cluster cells always run the scalar co-simulation
        # loop; the engine field is display/strategy only (never in the
        # digest), so normalising keeps mixed --engine batch sweeps
        # working.
        if (self.gpu is not None or self.cluster is not None) and (
            self.engine == "batch"
        ):
            object.__setattr__(self, "engine", "scalar")

    def validate(self) -> None:
        if self.controller.name not in policy_names():
            raise ExperimentError(
                f"unknown controller {self.controller.name!r}; "
                f"available: {', '.join(policy_names())}"
            )
        if self.runs < 1:
            raise ExperimentError("RunSpec.runs must be at least 1")
        if self.engine not in ("scalar", "batch"):
            raise ExperimentError(
                f"unknown engine {self.engine!r}; use 'scalar' or 'batch'"
            )
        if self.faults is not None:
            self.faults.validate()
        info = policy_info(self.controller.name)
        if self.gpu is not None:
            self.gpu.validate()
            if not info.hetero:
                raise ExperimentError(
                    f"hetero spec needs a hetero budget-split controller, "
                    f"got {self.controller.name!r} (see 'repro policies')"
                )
            if self.socket_count != 1:
                raise ExperimentError(
                    "hetero cells model one CPU socket per node"
                )
            if self.cluster is not None:
                raise ExperimentError(
                    "a cell is either hetero (gpu=...) or a cluster "
                    "(cluster=...), not both"
                )
        elif info.hetero:
            raise ExperimentError(
                f"controller {self.controller.name!r} splits a CPU+GPU "
                "budget; the spec needs gpu=GPUNodeConfig(...)"
            )
        if self.cluster is not None:
            self.cluster.validate()
            if not info.fleet:
                raise ExperimentError(
                    f"cluster spec needs a fleet partitioning controller, "
                    f"got {self.controller.name!r} (see 'repro policies')"
                )
            if self.socket_count != 1:
                raise ExperimentError(
                    "cluster cells size sockets via "
                    "ClusterSpec.sockets_per_node; leave socket_count at 1"
                )
        elif info.fleet:
            raise ExperimentError(
                f"controller {self.controller.name!r} partitions a fleet "
                "budget; the spec needs cluster=ClusterSpec(...)"
            )

    @property
    def display(self) -> str:
        return self.label or f"{self.app_name}/{self.controller.label}"


def cell_seed(*parts) -> int:
    """Deterministic seed offset derived from a cell's identity.

    CRC32 of the joined parts: stable across processes and sessions
    (unlike ``hash``), independent of submission order, and distinct
    per cell so sweep cells do not share noise streams.
    """
    text = "|".join(str(p) for p in parts)
    return zlib.crc32(text.encode("utf-8"))


def spec_key(spec: RunSpec) -> str:
    """The content address of ``spec``'s result.

    Covers every config dataclass in the spec plus the package version
    and the *digest* schema (:data:`~repro.experiments.cache.
    DIGEST_SCHEMA` — deliberately not the storage-format version, so
    entries written before the compressed v2 store keep their
    addresses), so editing any constant or upgrading the code
    invalidates old entries.  The engine choice is normalised to
    ``"scalar"``: batch and scalar executions of one spec are
    numerically identical, so they share one cache entry (and
    fault-free scalar specs keep their historical digests).
    """
    from .. import __version__

    return config_digest(
        {"version": __version__, "schema": DIGEST_SCHEMA},
        replace(spec, label="", engine="scalar"),
    )


def execute_spec(spec: RunSpec) -> ProtocolResult:
    """Run one spec to completion (in whichever process this is)."""
    spec.validate()
    from ..workloads.catalog import build_application

    app = build_application(
        spec.app_name, scale=spec.app_scale, socket=spec.socket
    )
    if spec.gpu is not None:
        from .protocol import run_hetero_protocol

        return run_hetero_protocol(
            app,
            spec.controller,
            spec.gpu,
            controller_cfg=spec.controller_cfg,
            runs=spec.runs,
            base_seed=spec.base_seed,
            noise=spec.noise,
            engine_cfg=spec.engine_cfg,
            socket=spec.socket,
            faults=spec.faults,
        )
    if spec.cluster is not None:
        from .protocol import run_cluster_protocol

        apps = [
            build_application(
                spec.cluster.app_for(i, spec.app_name),
                scale=spec.app_scale,
                socket=spec.socket,
            )
            for i in range(spec.cluster.node_count)
        ]
        return run_cluster_protocol(
            apps,
            spec.controller,
            spec.cluster,
            controller_cfg=spec.controller_cfg,
            runs=spec.runs,
            base_seed=spec.base_seed,
            noise=spec.noise,
            engine_cfg=spec.engine_cfg,
            socket=spec.socket,
            faults=spec.faults,
        )
    return run_protocol(
        app,
        spec.controller,
        controller_cfg=spec.controller_cfg,
        runs=spec.runs,
        base_seed=spec.base_seed,
        noise=spec.noise,
        engine_cfg=spec.engine_cfg,
        socket_count=spec.socket_count,
        record_trace=spec.record_trace,
        socket=spec.socket,
        faults=spec.faults,
        engine=spec.engine,
    )


def build_spec_protocol(spec: RunSpec):
    """One spec's result shell and unrun repetition engines.

    The pooled batch paths use this to pool the repetition engines of
    *many* specs into one lockstep batch (see :func:`run_specs`); seeds
    and wiring match :func:`execute_spec` exactly.
    """
    from ..workloads.catalog import build_application
    from .protocol import build_protocol

    if spec.gpu is not None:
        raise ExperimentError(
            "hetero cells cannot pool into a lockstep batch; "
            "execute_spec runs them through the co-simulation engine"
        )
    if spec.cluster is not None:
        raise ExperimentError(
            "cluster cells cannot pool into a lockstep batch; "
            "execute_spec runs them through the fleet engine"
        )
    app = build_application(
        spec.app_name, scale=spec.app_scale, socket=spec.socket
    )
    return build_protocol(
        app,
        spec.controller,
        controller_cfg=spec.controller_cfg,
        runs=spec.runs,
        base_seed=spec.base_seed,
        noise=spec.noise,
        engine_cfg=spec.engine_cfg,
        socket_count=spec.socket_count,
        record_trace=spec.record_trace,
        socket=spec.socket,
        faults=spec.faults,
    )


# -- cost estimation and shard planning --------------------------------


@lru_cache(maxsize=512)
def _nominal_ticks(
    app_name: str,
    app_scale: float,
    socket: SocketConfig | None,
    dt_s: float,
) -> float:
    """Engine steps one default-configuration run of the app simulates.

    Cached per distinct ``(app, scale, socket, dt)``: a 10k-cell grid
    usually reuses a handful of applications, so planning stays O(n)
    dict lookups, not n application builds.  Unknown or unbuildable
    applications get a flat fallback — the estimate steers bin-packing
    only, and execution will surface the real error in the worker.
    """
    from ..workloads.catalog import build_application

    try:
        app = build_application(app_name, scale=app_scale, socket=socket)
        duration_s = app.nominal_duration(socket)
    except Exception:
        duration_s = _FALLBACK_SIM_S
    return max(duration_s / dt_s, 1.0)


def _hetero_gpu_seconds(node: GPUNodeConfig) -> float:
    """Nominal seconds the busiest GPU of ``node`` needs for its queue.

    Round-robin gives device 0 the longest queue; each kernel costs its
    roofline compute time at the maximum boost clock plus its
    host↔device transfers at the peak link bandwidth.  Planning-only —
    throttling, uncore coupling and stalls are ignored, exactly like
    controller slowdowns on the CPU side.
    """
    gpu = node.gpu
    t_compute = smooth_max(
        node.kernel_flops / (gpu.flops_per_hz * gpu.max_freq_hz),
        node.kernel_bytes / gpu.hbm_bw_bytes,
        4.0,
    )
    t_xfer = (node.input_bytes + node.output_bytes) / node.link_bw_bytes
    queue_len = -(-node.kernel_count // node.gpu_count)
    return queue_len * (t_compute + t_xfer)


def estimate_spec_ticks(spec: RunSpec) -> float:
    """Estimated simulated ticks of one cell, for shard bin-packing.

    CPU-only cells: ``runs × sockets × nominal-duration/dt``.
    Controller slowdowns (≤ ~20 %) are deliberately ignored — load
    balance only needs the relative weight of cells, and the estimate
    must never execute anything.

    Hetero cells weigh the whole node: the co-simulation loop runs
    until *both* sides finish and steps every device each tick, so the
    weight is ``runs × (1 + gpu_count) × max(cpu ticks, busiest-GPU
    ticks)`` — without this, LPT planning would pack hetero cells as if
    they were bare CPU runs and starve workers in mixed sweeps.

    Cluster cells sum over nodes: the fleet loop steps every socket of
    every node each tick until the *slowest* node finishes, so the
    weight is ``runs × Σ_nodes(sockets_per_node × node-app ticks)`` —
    each node can run a different application, and a 4-node cell
    really does cost ~4× the matching single-node cell.
    """
    if spec.cluster is not None:
        node_ticks = sum(
            _nominal_ticks(
                spec.cluster.app_for(i, spec.app_name),
                spec.app_scale,
                spec.socket,
                spec.engine_cfg.dt_s,
            )
            for i in range(spec.cluster.node_count)
        )
        return spec.runs * spec.cluster.sockets_per_node * node_ticks
    cpu_ticks = _nominal_ticks(
        spec.app_name, spec.app_scale, spec.socket, spec.engine_cfg.dt_s
    )
    if spec.gpu is not None:
        gpu_ticks = _hetero_gpu_seconds(spec.gpu) / spec.engine_cfg.dt_s
        return (
            spec.runs * (1 + spec.gpu.gpu_count) * max(cpu_ticks, gpu_ticks)
        )
    return spec.runs * spec.socket_count * cpu_ticks


def plan_shards(
    specs: Sequence[RunSpec],
    *,
    workers: int,
    shard_size: int | None = None,
) -> list[list[int]]:
    """Partition ``specs`` into shards (lists of indices) for dispatch.

    Greedy LPT bin-packing on :func:`estimate_spec_ticks`: cells are
    placed heaviest-first onto the currently-lightest shard, over a
    target of ``workers × SHARD_OVERSUBSCRIPTION`` shards (never more
    shards than cells).  ``shard_size`` caps the number of *cells* per
    shard and raises the shard count when needed — smaller shards
    steal better but batch less; see docs/EXECUTION.md for sizing
    guidance.

    The plan is deterministic in the spec list, and — because cell
    seeds derive from cell identity — execution results are identical
    under any plan: shard membership only moves work between
    processes.  Shards come back heaviest-first, the dispatch order
    that minimises the tail.
    """
    n = len(specs)
    if workers < 1:
        raise ExperimentError("need at least one worker")
    if shard_size is not None and shard_size < 1:
        raise ExperimentError("shard_size must be at least 1")
    if n == 0:
        return []
    target = min(n, workers * SHARD_OVERSUBSCRIPTION)
    if shard_size is not None:
        target = max(target, -(-n // shard_size))
    est = [estimate_spec_ticks(s) for s in specs]
    members: list[list[int]] = [[] for _ in range(target)]
    loads = [0.0] * target
    # (load, shard) heap; shards at the cell cap drop out permanently.
    heap = [(0.0, si) for si in range(target)]
    heapq.heapify(heap)
    for i in sorted(range(n), key=lambda i: (-est[i], i)):
        load, si = heapq.heappop(heap)
        members[si].append(i)
        loads[si] = load + est[i]
        if shard_size is None or len(members[si]) < shard_size:
            heapq.heappush(heap, (loads[si], si))
    plan = [
        sorted(members[si])
        for si in sorted(range(target), key=lambda si: -loads[si])
        if members[si]
    ]
    return plan


# -- in-process cell execution -----------------------------------------


def _execute_timed(spec: RunSpec) -> tuple[ProtocolResult, float]:
    """Solo target: the result plus its execution time in seconds."""
    start = time.perf_counter()
    result = execute_spec(spec)
    return result, time.perf_counter() - start


def _solo_ticks(spec: RunSpec, result: ProtocolResult) -> float:
    """Measured ticks of a solo-executed cell, from per-run wall times."""
    return sum(result.times_s) * spec.socket_count / spec.engine_cfg.dt_s


def _iter_cells(
    specs: Sequence[RunSpec],
) -> Iterator[tuple[int, ProtocolResult, float, float]]:
    """Execute cells in-process, yielding ``(pos, result, s, ticks)``.

    The batch-engined subset (when it has two or more cells) pools its
    repetition engines into **one** lockstep ``run_batch``; the
    remaining cells — scalar-engined, or a lone batch cell whose runs
    still batch internally — execute solo, lazily, so a caller that
    writes through to a cache persists each cell before the next one
    starts.  Pooled cells' seconds apportion the batch wall clock by
    each cell's *simulated tick count* (engine-independent, from the
    run results), so ``CellReport.seconds`` stays meaningful for shard
    bin-packing and summaries.
    """
    batch_pos = [j for j, s in enumerate(specs) if s.engine == "batch"]
    solo_pos = [j for j, s in enumerate(specs) if s.engine != "batch"]
    if len(batch_pos) < 2:
        solo_pos = sorted(solo_pos + batch_pos)
        batch_pos = []
    if batch_pos:
        from ..sim.batch import run_batch
        from .protocol import fold_protocol

        shells = []
        spans = []
        engines = []
        for j in batch_pos:
            shell, cell_engines = build_spec_protocol(specs[j])
            shells.append(shell)
            spans.append((len(engines), len(engines) + len(cell_engines)))
            engines.extend(cell_engines)
        t0 = time.perf_counter()
        run_results = run_batch(engines)
        batch_wall = time.perf_counter() - t0
        ticks = [
            sum(
                s.finish_time_s
                for r in run_results[lo:hi]
                for s in r.sockets
            )
            / specs[j].engine_cfg.dt_s
            for j, (lo, hi) in zip(batch_pos, spans)
        ]
        total_ticks = sum(ticks) or 1.0
        for j, shell, (lo, hi), t in zip(batch_pos, shells, spans, ticks):
            yield (
                j,
                fold_protocol(shell, run_results[lo:hi]),
                batch_wall * t / total_ticks,
                t,
            )
    for j in solo_pos:
        result, seconds = _execute_timed(specs[j])
        yield j, result, seconds, _solo_ticks(specs[j], result)


def _run_shard(
    specs: list[RunSpec],
) -> tuple[int, float, list[tuple[int, ProtocolResult, float, float]]]:
    """Pool target: one shard, batch-pooled, in one worker process."""
    t0 = time.perf_counter()
    cells = list(_iter_cells(specs))
    return os.getpid(), time.perf_counter() - t0, cells


# -- reporting ---------------------------------------------------------


@dataclass(frozen=True)
class CellReport:
    """How one spec was satisfied: executed or served from cache."""

    label: str
    cached: bool
    seconds: float
    #: Simulated engine steps the cell accounted for (0 for cache hits).
    ticks: float = 0.0


@dataclass(frozen=True)
class ShardReport:
    """One dispatched shard: its plan weight and measured execution."""

    index: int
    cells: int
    est_ticks: float
    seconds: float
    pid: int


@dataclass
class ExecutionSummary:
    """Timing and cache accounting for one batch of specs."""

    workers: int = 1
    wall_s: float = 0.0
    cells: list[CellReport] = field(default_factory=list)
    corrupted: int = 0
    #: Sharded-dispatch accounting (empty for serial / fully-cached runs).
    shards: list[ShardReport] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def hits(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    @property
    def executed(self) -> int:
        return self.total - self.hits

    @property
    def executed_cpu_s(self) -> float:
        return sum(c.seconds for c in self.cells if not c.cached)

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def steals(self) -> int:
        """Shards a worker picked up beyond its first — dynamic dispatch
        absorbing stragglers that a static partition would have serialised."""
        if not self.shards:
            return 0
        return len(self.shards) - len({s.pid for s in self.shards})

    def merge(self, other: "ExecutionSummary") -> None:
        """Fold a later batch (e.g. a second sweep stage) into this one."""
        self.cells.extend(other.cells)
        self.wall_s += other.wall_s
        self.corrupted += other.corrupted
        self.shards.extend(other.shards)

    def render(self, *, per_cell: bool = False) -> str:
        """Human-readable account; ``per_cell`` adds the full table."""
        lines = [
            f"executed {self.executed} of {self.total} cells "
            f"({self.executed_cpu_s:.2f} s cpu) on {self.workers} "
            f"worker{'s' if self.workers != 1 else ''}, "
            f"{self.hits} cache hit{'s' if self.hits != 1 else ''}, "
            f"wall {self.wall_s:.2f} s"
        ]
        if self.shards:
            sizes = [s.cells for s in self.shards]
            procs = len({s.pid for s in self.shards})
            lines.append(
                f"{len(self.shards)} shards over {procs} worker "
                f"process{'es' if procs != 1 else ''} "
                f"(cells/shard {min(sizes)}-{max(sizes)}, "
                f"{self.steals} steal{'s' if self.steals != 1 else ''})"
            )
        if self.corrupted:
            lines.append(f"recovered {self.corrupted} corrupted cache entries")
        if self.executed:
            slow = max(
                (c for c in self.cells if not c.cached), key=lambda c: c.seconds
            )
            lines.append(f"slowest cell: {slow.label} ({slow.seconds:.2f} s)")
        if per_cell and self.cells:
            rows = [
                (c.label, "hit" if c.cached else "run", f"{c.seconds:.3f}")
                for c in self.cells
            ]
            lines.append(
                format_table(
                    ["cell", "source", "seconds"], rows, title="Per-cell timing"
                )
            )
        return "\n".join(lines)


def _as_cache(cache) -> ResultCache | None:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


# -- the scheduler -----------------------------------------------------


def run_specs(
    specs: Sequence[RunSpec],
    *,
    workers: int = 1,
    cache: ResultCache | str | None = None,
    shard_size: int | None = None,
) -> tuple[list[ProtocolResult], ExecutionSummary]:
    """Execute a batch of specs, results in spec order.

    ``workers=1`` runs in-process (the classic serial path; the
    batch-engined subset of pending cells still pools into one
    lockstep batch).  More workers shard the cache misses with
    :func:`plan_shards` and dispatch shards dynamically over a process
    pool: each shard runs its cells as one vectorized batch in its
    worker, completed shards write through to ``cache`` immediately
    (an interrupted sweep keeps every finished shard), and idle
    workers steal queued shards.  ``shard_size`` caps cells per shard;
    the default over-decomposes ~3 shards per worker.

    ``cache`` may be a :class:`ResultCache` or a directory path; hits
    skip execution entirely and the summary says which cells came from
    where.  Results are bit-identical at any worker count, shard size
    or cache state.

    If a shard fails, every *other* shard still completes and writes
    through before the first failure is re-raised — a transient crash
    costs one shard's work, not the sweep's.
    """
    if workers < 1:
        raise ExperimentError("need at least one worker")
    if shard_size is not None and shard_size < 1:
        raise ExperimentError("shard_size must be at least 1")
    for spec in specs:
        spec.validate()
    cache = _as_cache(cache)
    start = time.perf_counter()
    results: list[ProtocolResult | None] = [None] * len(specs)
    reports: list[CellReport | None] = [None] * len(specs)

    pending: list[int] = []
    corrupt_before = cache.stats.corrupted if cache is not None else 0
    for i, spec in enumerate(specs):
        hit = cache.get(spec_key(spec)) if cache is not None else None
        if hit is not None:
            results[i] = hit
            reports[i] = CellReport(spec.display, cached=True, seconds=0.0)
        else:
            pending.append(i)

    def finish_cell(i: int, result: ProtocolResult, seconds: float, ticks: float) -> None:
        results[i] = result
        reports[i] = CellReport(
            specs[i].display, cached=False, seconds=seconds, ticks=ticks
        )
        if cache is not None:
            cache.put(spec_key(specs[i]), result)

    shard_reports: list[ShardReport] = []
    if not pending:
        pass
    elif workers == 1 or len(pending) == 1:
        pend_specs = [specs[i] for i in pending]
        for j, result, seconds, ticks in _iter_cells(pend_specs):
            finish_cell(pending[j], result, seconds, ticks)
    else:
        pend_specs = [specs[i] for i in pending]
        shards = plan_shards(pend_specs, workers=workers, shard_size=shard_size)
        failure: BaseException | None = None
        pool = ProcessPoolExecutor(max_workers=min(workers, len(shards)))
        try:
            futures = {
                pool.submit(
                    _run_shard, [pend_specs[j] for j in shard]
                ): (si, shard)
                for si, shard in enumerate(shards)
            }
            for fut in as_completed(futures):
                si, shard = futures[fut]
                try:
                    pid, shard_wall, cells = fut.result()
                except Exception as exc:
                    if failure is None:
                        failure = exc
                    continue
                # Write-through: this shard's cells persist now, not
                # after the pool drains.
                for j, result, seconds, ticks in cells:
                    finish_cell(pending[shard[j]], result, seconds, ticks)
                shard_reports.append(
                    ShardReport(
                        index=si,
                        cells=len(shard),
                        est_ticks=sum(
                            estimate_spec_ticks(pend_specs[j]) for j in shard
                        ),
                        seconds=shard_wall,
                        pid=pid,
                    )
                )
        except BaseException:
            # Ctrl-C / fatal error: drop queued shards, keep what the
            # write-through already persisted.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown()
        if failure is not None:
            raise failure

    summary = ExecutionSummary(
        workers=workers,
        wall_s=time.perf_counter() - start,
        cells=[r for r in reports if r is not None],
        corrupted=(cache.stats.corrupted - corrupt_before)
        if cache is not None
        else 0,
        shards=sorted(shard_reports, key=lambda s: s.index),
    )
    return [r for r in results if r is not None], summary
