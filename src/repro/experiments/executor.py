"""Parallel experiment execution with content-addressed caching.

Every independent protocol run — one ``(application, policy, config)``
cell of a sweep, one sensitivity probe — is described by a
:class:`RunSpec`: a frozen, picklable value object carrying everything
the run depends on, including the full
:class:`~repro.core.registry.PolicySpec` (policy id *and* parameters),
so any registered policy is runnable and cacheable.  :func:`run_specs` fans a batch of specs out over a
:class:`concurrent.futures.ProcessPoolExecutor` (``workers=1`` keeps
the classic in-process serial path) and consults an optional
:class:`~repro.experiments.cache.ResultCache` first, so warm reruns
execute nothing at all.

Determinism: a spec fully determines its seeds (``noise.seed + 1009·r
+ base_seed``), and :func:`cell_seed` derives ``base_seed`` from the
cell's *identity* rather than its position in the submission order.
Serial and parallel executions of the same grid are therefore
bit-identical, and so are cold and warm (cached) reruns.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Sequence

from ..analysis.tables import format_table
from ..config import (
    ControllerConfig,
    EngineConfig,
    NoiseConfig,
    SocketConfig,
    config_digest,
)
from ..core.registry import PolicySpec, as_spec, policy_names
from ..errors import ExperimentError
from ..sim.faults import FaultPlan
from .cache import CACHE_SCHEMA, ResultCache
from .protocol import ProtocolResult, run_protocol

__all__ = [
    "RunSpec",
    "CellReport",
    "ExecutionSummary",
    "cell_seed",
    "spec_key",
    "execute_spec",
    "build_spec_protocol",
    "run_specs",
]


@dataclass(frozen=True)
class RunSpec:
    """One protocol run, fully described by picklable values.

    Controllers are selected by :class:`~repro.core.registry.
    PolicySpec` (a policy id string coerces at construction), so a
    spec can cross a process boundary and be hashed for the result
    cache — policy *parameters* are part of the content address, so a
    parameter change invalidates cached results exactly like any other
    config change.  ``label`` is display-only and excluded from the
    cache key.
    """

    app_name: str
    controller: PolicySpec | str
    controller_cfg: ControllerConfig = field(default_factory=ControllerConfig)
    runs: int = 10
    base_seed: int = 0
    app_scale: float = 1.0
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    engine_cfg: EngineConfig = field(default_factory=EngineConfig)
    socket: SocketConfig | None = None
    socket_count: int = 1
    record_trace: bool = False
    #: Optional fault plan applied to every run of the cell.  Part of
    #: the content address — any fault parameter change invalidates
    #: cached results — but omitted from the digest while ``None``
    #: (``digest_omit_default``), so fault-free specs keep the exact
    #: digests they had before fault injection existed.
    faults: FaultPlan | None = field(
        default=None, metadata={"digest_omit_default": True}
    )
    #: Execution strategy: ``"scalar"`` (per-tick loop) or ``"batch"``
    #: (vectorized lockstep, :mod:`repro.sim.batch`).  The two produce
    #: numerically identical results — the differential test suite
    #: enforces it — so the engine is *not* part of the content
    #: address: :func:`spec_key` normalises it away and batch results
    #: share cache entries with scalar ones.
    engine: str = field(default="scalar", metadata={"digest_omit_default": True})
    label: str = ""

    def __post_init__(self) -> None:
        # Coerce policy-id strings (including "name:key=val,...") to a
        # registry spec; unknown names fail fast, at submission time.
        object.__setattr__(self, "controller", as_spec(self.controller))
        # An all-zero plan is contractually identical to no plan;
        # normalise here so the two also share one digest.
        if self.faults is not None and not self.faults.active:
            object.__setattr__(self, "faults", None)

    def validate(self) -> None:
        if self.controller.name not in policy_names():
            raise ExperimentError(
                f"unknown controller {self.controller.name!r}; "
                f"available: {', '.join(policy_names())}"
            )
        if self.runs < 1:
            raise ExperimentError("RunSpec.runs must be at least 1")
        if self.engine not in ("scalar", "batch"):
            raise ExperimentError(
                f"unknown engine {self.engine!r}; use 'scalar' or 'batch'"
            )
        if self.faults is not None:
            self.faults.validate()

    @property
    def display(self) -> str:
        return self.label or f"{self.app_name}/{self.controller.label}"


def cell_seed(*parts) -> int:
    """Deterministic seed offset derived from a cell's identity.

    CRC32 of the joined parts: stable across processes and sessions
    (unlike ``hash``), independent of submission order, and distinct
    per cell so sweep cells do not share noise streams.
    """
    text = "|".join(str(p) for p in parts)
    return zlib.crc32(text.encode("utf-8"))


def spec_key(spec: RunSpec) -> str:
    """The content address of ``spec``'s result.

    Covers every config dataclass in the spec plus the package version
    and cache schema, so editing any constant or upgrading the code
    invalidates old entries.  The engine choice is normalised to
    ``"scalar"``: batch and scalar executions of one spec are
    numerically identical, so they share one cache entry (and
    fault-free scalar specs keep their historical digests).
    """
    from .. import __version__

    return config_digest(
        {"version": __version__, "schema": CACHE_SCHEMA},
        replace(spec, label="", engine="scalar"),
    )


def execute_spec(spec: RunSpec) -> ProtocolResult:
    """Run one spec to completion (in whichever process this is)."""
    spec.validate()
    from ..workloads.catalog import build_application

    app = build_application(
        spec.app_name, scale=spec.app_scale, socket=spec.socket
    )
    return run_protocol(
        app,
        spec.controller,
        controller_cfg=spec.controller_cfg,
        runs=spec.runs,
        base_seed=spec.base_seed,
        noise=spec.noise,
        engine_cfg=spec.engine_cfg,
        socket_count=spec.socket_count,
        record_trace=spec.record_trace,
        socket=spec.socket,
        faults=spec.faults,
        engine=spec.engine,
    )


def build_spec_protocol(spec: RunSpec):
    """One spec's result shell and unrun repetition engines.

    The single-process batch path uses this to pool the repetition
    engines of *many* specs into one lockstep batch (see
    :func:`run_specs`); seeds and wiring match :func:`execute_spec`
    exactly.
    """
    from ..workloads.catalog import build_application
    from .protocol import build_protocol

    app = build_application(
        spec.app_name, scale=spec.app_scale, socket=spec.socket
    )
    return build_protocol(
        app,
        spec.controller,
        controller_cfg=spec.controller_cfg,
        runs=spec.runs,
        base_seed=spec.base_seed,
        noise=spec.noise,
        engine_cfg=spec.engine_cfg,
        socket_count=spec.socket_count,
        record_trace=spec.record_trace,
        socket=spec.socket,
        faults=spec.faults,
    )


def _execute_timed(spec: RunSpec) -> tuple[ProtocolResult, float]:
    """Pool target: the result plus its execution time in seconds."""
    start = time.perf_counter()
    result = execute_spec(spec)
    return result, time.perf_counter() - start


@dataclass(frozen=True)
class CellReport:
    """How one spec was satisfied: executed or served from cache."""

    label: str
    cached: bool
    seconds: float


@dataclass
class ExecutionSummary:
    """Timing and cache accounting for one batch of specs."""

    workers: int = 1
    wall_s: float = 0.0
    cells: list[CellReport] = field(default_factory=list)
    corrupted: int = 0

    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def hits(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    @property
    def executed(self) -> int:
        return self.total - self.hits

    @property
    def executed_cpu_s(self) -> float:
        return sum(c.seconds for c in self.cells if not c.cached)

    def merge(self, other: "ExecutionSummary") -> None:
        """Fold a later batch (e.g. a second sweep stage) into this one."""
        self.cells.extend(other.cells)
        self.wall_s += other.wall_s
        self.corrupted += other.corrupted

    def render(self, *, per_cell: bool = False) -> str:
        """Human-readable account; ``per_cell`` adds the full table."""
        lines = [
            f"executed {self.executed} of {self.total} cells "
            f"({self.executed_cpu_s:.2f} s cpu) on {self.workers} "
            f"worker{'s' if self.workers != 1 else ''}, "
            f"{self.hits} cache hit{'s' if self.hits != 1 else ''}, "
            f"wall {self.wall_s:.2f} s"
        ]
        if self.corrupted:
            lines.append(f"recovered {self.corrupted} corrupted cache entries")
        if self.executed:
            slow = max(
                (c for c in self.cells if not c.cached), key=lambda c: c.seconds
            )
            lines.append(f"slowest cell: {slow.label} ({slow.seconds:.2f} s)")
        if per_cell and self.cells:
            rows = [
                (c.label, "hit" if c.cached else "run", f"{c.seconds:.3f}")
                for c in self.cells
            ]
            lines.append(
                format_table(
                    ["cell", "source", "seconds"], rows, title="Per-cell timing"
                )
            )
        return "\n".join(lines)


def _as_cache(cache) -> ResultCache | None:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def run_specs(
    specs: Sequence[RunSpec],
    *,
    workers: int = 1,
    cache: ResultCache | str | None = None,
) -> tuple[list[ProtocolResult], ExecutionSummary]:
    """Execute a batch of specs, results in spec order.

    ``workers=1`` runs in-process (the classic serial path); more fans
    the cache misses out over a process pool.  ``cache`` may be a
    :class:`ResultCache` or a directory path; hits skip execution
    entirely and the summary says which cells came from where.
    """
    if workers < 1:
        raise ExperimentError("need at least one worker")
    for spec in specs:
        spec.validate()
    cache = _as_cache(cache)
    start = time.perf_counter()
    results: list[ProtocolResult | None] = [None] * len(specs)
    reports: list[CellReport | None] = [None] * len(specs)

    pending: list[int] = []
    corrupt_before = cache.stats.corrupted if cache is not None else 0
    for i, spec in enumerate(specs):
        hit = cache.get(spec_key(spec)) if cache is not None else None
        if hit is not None:
            results[i] = hit
            reports[i] = CellReport(spec.display, cached=True, seconds=0.0)
        else:
            pending.append(i)

    if workers == 1 and len(pending) > 1 and all(
        specs[i].engine == "batch" for i in pending
    ):
        # Single-process batch path: pool every pending cell's
        # repetition engines into one lockstep batch.  ``run_batch``
        # groups compatible engines and falls back per-engine where
        # needed, so results are identical to per-cell execution; the
        # per-cell seconds are the batch wall-clock apportioned by
        # engine count (individual cells are not timed separately).
        from ..sim.batch import run_batch
        from .protocol import fold_protocol

        shells = []
        spans = []
        engines = []
        for i in pending:
            shell, cell_engines = build_spec_protocol(specs[i])
            shells.append(shell)
            spans.append((len(engines), len(engines) + len(cell_engines)))
            engines.extend(cell_engines)
        t0 = time.perf_counter()
        run_results = run_batch(engines)
        batch_wall = time.perf_counter() - t0
        timed = [
            (
                fold_protocol(shell, run_results[lo:hi]),
                batch_wall * (hi - lo) / len(engines),
            )
            for shell, (lo, hi) in zip(shells, spans)
        ]
    elif workers == 1 or len(pending) <= 1:
        timed = (_execute_timed(specs[i]) for i in pending)
    else:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(pending)))
        with pool:
            timed = list(pool.map(_execute_timed, [specs[i] for i in pending]))

    for i, (result, seconds) in zip(pending, timed):
        results[i] = result
        reports[i] = CellReport(specs[i].display, cached=False, seconds=seconds)
        if cache is not None:
            cache.put(spec_key(specs[i]), result)

    summary = ExecutionSummary(
        workers=workers,
        wall_s=time.perf_counter() - start,
        cells=[r for r in reports if r is not None],
        corrupted=(cache.stats.corrupted - corrupt_before)
        if cache is not None
        else 0,
    )
    return [r for r in results if r is not None], summary
